module natpeek

go 1.22
