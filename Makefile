# Tier-1 verification plus the race/bench targets the telemetry PR added.
#
#   make check           # vet + build + tests with -race + verify + load + cluster + segment + rebalance gates
#   make check-verify    # golden runs, conservation invariants, parser fuzzing
#   make check-load      # sharded-store stress + admission + loadgen soaks, -race
#   make check-cluster   # multi-node routing/replication/failover + chaos soak, -race
#   make check-segment   # segment engine: crash windows, fuzz seeds, goldens, -race
#   make check-rebalance # elastic scale-in/out: ring property, epoch, soaks, goldens, -race
#   make bench         # regression benchmark suite -> BENCH_9.json
#   make bench-paper   # full reproduction driver (tables/figures + ablations)

GO ?= go

# Per-target budget for the short fuzz shake-out in check-verify.
FUZZTIME ?= 10s

# Fixed per-benchmark budget so BENCH_*.json files are comparable run to run.
BENCHTIME ?= 300ms

.PHONY: check vet build test race bench bench-paper bench-telemetry \
	check-reliability check-verify check-load check-cluster check-segment \
	check-rebalance fuzz-seeds

check: vet build race check-verify check-load check-cluster check-segment check-rebalance

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The scale-regression suite. Fixed -benchtime keeps runs comparable;
# bench-report turns the text output into BENCH_9.json (per-benchmark
# metrics plus the derived ratios — single-core caveat notes are now
# attached automatically to every parallelism-derived metric whenever
# num_cpu=1, so the JSON is self-describing on any runner).
# BenchmarkIngestBatchTraced rides the same regex and tracks the tracing
# on/off delta on the ingest hot path (budget: <5% median overhead);
# BenchmarkIngestBatchWire compares the NPB1 binary batch encoding
# against JSON (targets: >= 5x rows/s/core, >= 10x fewer allocs/batch);
# the cluster trio prices the front tier; the segment/figures quartet
# prices the storage engine — flush throughput
# (segment_flush_rows_per_sec), segment-scan vs in-memory analysis
# (segment_scan_overhead), and the incremental dashboard refresh vs full
# recomputation (incremental_figure_speedup).
bench:
	{ \
	  $(GO) test -run='^$$' -bench='BenchmarkStoreAppend|BenchmarkDedupeMark|BenchmarkStoreSave|BenchmarkShardedMerge' \
	    -benchtime=$(BENCHTIME) -benchmem ./internal/dataset/ && \
	  $(GO) test -run='^$$' -bench='BenchmarkIngestBatch' -benchtime=$(BENCHTIME) -benchmem ./internal/collector/ && \
	  $(GO) test -run='^$$' -bench='BenchmarkSpoolDrain' -benchtime=$(BENCHTIME) -benchmem ./internal/spool/ && \
	  $(GO) test -run='^$$' -bench='BenchmarkWorldRunHome' -benchtime=$(BENCHTIME) -benchmem ./internal/world/ && \
	  $(GO) test -run='^$$' -bench='BenchmarkLoadgenEndToEnd' -benchtime=$(BENCHTIME) -benchmem ./internal/loadgen/ && \
	  $(GO) test -run='^$$' -bench='BenchmarkRingLookup|BenchmarkFrontRouteBatch|BenchmarkHandoffReplay' \
	    -benchtime=$(BENCHTIME) -benchmem ./internal/cluster/ && \
	  $(GO) test -run='^$$' -bench='BenchmarkSegmentFlush|BenchmarkSegmentReopen' \
	    -benchtime=$(BENCHTIME) -benchmem ./internal/segment/ && \
	  $(GO) test -run='^$$' -bench='BenchmarkAnalysisScan|BenchmarkFigureRefresh' \
	    -benchtime=$(BENCHTIME) -benchmem ./internal/figures/ ; \
	} | $(GO) run ./cmd/bench-report -pr 9 -out BENCH_9.json

# The full paper-reproduction driver (tables/figures + ablations).
bench-paper:
	$(GO) test -bench=. -benchmem

# The telemetry-overhead gate: counter/gauge/histogram updates on the
# capture hot path must stay cheap (< 25 ns/op for counter increments).
bench-telemetry:
	$(GO) test -run='^$$' -bench='BenchmarkTelemetry' -benchmem

# The upload-pipeline reliability gate, under the race detector: the
# spool suite (retry/overflow/journal/concurrency), the collector
# fault-injection suite (zero row loss through 30% failed POSTs plus a
# server restart, idempotency dedupe, journal recovery across a client
# restart), and the gateway export/throttle regressions.
check-reliability:
	$(GO) test -race ./internal/spool/
	$(GO) test -race -run 'TestZeroRowLoss|TestSpoolJournal|TestBatch|TestIdempotency|TestOversized|TestChunked|TestErrorResponses|TestClientErrSurfacesFailures|TestWire|TestGzip|TestDirectEndpoint|TestBinary' ./internal/collector/
	$(GO) test -race -run 'TestFlowExport|TestPowerOffExports|TestScanThrottle' ./internal/gateway/

# The correctness-harness gate:
#   1. golden runs — a deterministic deployment through the real
#      agent→spool→HTTP→collector path, snapshots compared against
#      testdata/golden (regenerate with: go test ./internal/verify -update);
#   2. cross-layer conservation invariants and the determinism check
#      (same seed twice → byte-identical snapshots);
#   3. round-trip and export regressions for the wire/disk formats;
#   4. a short fuzz shake-out of every wire/disk parser ($(FUZZTIME)
#      each) on top of their checked-in seed corpora.
check-verify: fuzz-seeds
	$(GO) test -race ./internal/verify/
	$(GO) test -race -run 'TestThroughput|TestWriterReaderRoundTrip|TestReaderTruncatedStream|TestJournal' \
		./internal/gateway/ ./internal/pcap/ ./internal/spool/
	$(GO) test -run='^$$' -fuzz='FuzzParse' -fuzztime=$(FUZZTIME) ./internal/dns/
	$(GO) test -run='^$$' -fuzz='FuzzReader' -fuzztime=$(FUZZTIME) ./internal/pcap/
	$(GO) test -run='^$$' -fuzz='FuzzDecode' -fuzztime=$(FUZZTIME) ./internal/packet/
	$(GO) test -run='^$$' -fuzz='FuzzJournalReplay' -fuzztime=$(FUZZTIME) ./internal/spool/
	$(GO) test -run='^$$' -fuzz='FuzzRequestDecode' -fuzztime=$(FUZZTIME) ./internal/collector/
	$(GO) test -run='^$$' -fuzz='FuzzWireDecode' -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -run='^$$' -fuzz='FuzzSegmentDecode' -fuzztime=$(FUZZTIME) ./internal/segment/

# The scale gate, under the race detector:
#   1. sharded-store stress (32 shards, concurrent appliers + replays)
#      and the CSV-identity regression against the single-lock seed store;
#   2. collector admission control — 429 + Retry-After when ingest is
#      saturated, control plane exempt;
#   3. loadgen soaks — ~200 synthetic routers with strict row accounting,
#      clean and under fault injection / throttling;
#   4. analysis figures on a 10k-router synthetic store within their
#      per-figure time budgets (O(n^2) regression guard).
check-load:
	$(GO) test -race -run 'TestSharded' ./internal/dataset/
	$(GO) test -race -run 'TestSaturatedIngest|TestControlPlaneExempt' ./internal/collector/
	$(GO) test -race ./internal/loadgen/
	$(GO) test -race -run 'TestScale' ./internal/analysis/

# The cluster gate, under the race detector:
#   1. the multi-node suite — consistent-hash routing spread, retry
#      dedupe through the front, JSON/direct endpoint proxying,
#      journal-replay failover, and rejoin manifest seeding;
#   2. the chaos soak — a 3-node cluster under a live loadgen fleet
#      with one node killed mid-run and rejoined, gated on zero lost
#      and zero duplicated rows;
#   3. a short fuzz shake-out of the NPC1 control-plane codec on top of
#      its checked-in seed corpus.
check-cluster:
	$(GO) test -race ./internal/cluster/
	$(GO) test -run='^$$' -fuzz='FuzzControlDecode' -fuzztime=$(FUZZTIME) ./internal/cluster/

# The elastic-rebalancing gate, under the race detector:
#   1. the ring relocation property/metamorphic suite — adding one node
#      moves at most its fair share of keys, and every moved key lands
#      on the added node; replica sets stay stable for unmoved keys;
#   2. the epoch state machine — CRDT-shaped merge of committed/pending
#      epochs, version precedence, commit retirement, ring selection;
#   3. the ownership-extraction suites — dataset and segment stores
#      carve out a router subset (rows + dedupe keys) without touching
#      unmatched rows, concurrent with ingest, across restarts;
#   4. the scale-event suite — mid-run join and drain with ownership
#      accounting, epoch fencing (whole-batch 429 + Retry-After during
#      cutover), two-front convergence, and the scale-out/drain chaos
#      soaks under live loadgen (short profile), gated on zero lost and
#      zero duplicated rows;
#   5. the rebalance goldens — a join and a drain fired mid-run through
#      the full verify deployment, merged snapshots byte-identical to
#      the single-node golden (JSON-wire variants run in full mode via
#      check-verify).
check-rebalance:
	$(GO) test -race -run 'TestRingRelocationProperty|TestRingReplicaSetStability|TestMembership' ./internal/cluster/
	$(GO) test -race -run 'TestKeyRouter|TestExtract|TestScanRouters|TestSplitRouters' ./internal/dataset/ ./internal/segment/
	$(GO) test -race -short -run 'TestClusterScaleOutTransfersOwnership|TestClusterDrainViaFrontEndpoint|TestFrontFencesDuringCutover|TestTwoFrontsConvergeOnEpoch|TestChaosSoakScaleOut|TestChaosSoakDrain' ./internal/cluster/
	$(GO) test -race -short -run 'TestClusterGoldenJoinMidRun|TestClusterGoldenDrainMidRun' ./internal/verify/

# The segment-storage gate, under the race detector:
#   1. the segment engine suite — encode/decode round-trips, the
#      merge-order substitution contract against the sharded store,
#      dedupe handoff across the flush boundary, crash-window
#      regressions (truncated tail, torn footer, kill between flush and
#      handoff, tmp leftovers, compaction supersession healing);
#   2. the incremental-analysis equivalence suite — partial folds,
#      merges, and the live dashboard against the batch figures;
#   3. the segment-backed verify goldens — the storage engine swapped in
#      under the full deployment (single-node, JSON wire, 3-node
#      cluster), snapshots byte-identical to the in-memory golden;
#   4. a short fuzz shake-out of the NPS1 decoder on top of its
#      checked-in seed corpus.
check-segment:
	$(GO) test -race ./internal/segment/
	$(GO) test -race -run 'TestPartialEquivalence|TestDashboard' ./internal/figures/
	$(GO) test -race -run 'Segment' ./internal/verify/
	$(GO) test -run='^$$' -fuzz='FuzzSegmentDecode' -fuzztime=$(FUZZTIME) ./internal/segment/

# Replay the checked-in fuzz corpora as plain unit tests (fast, -race).
fuzz-seeds:
	$(GO) test -race -run 'Fuzz' ./internal/dns/ ./internal/pcap/ ./internal/packet/ ./internal/spool/ ./internal/collector/ ./internal/wire/ ./internal/cluster/ ./internal/segment/
