# Tier-1 verification plus the race/bench targets the telemetry PR added.
#
#   make check        # vet + build + tests with -race + the verify gate
#   make check-verify # golden runs, conservation invariants, parser fuzzing
#   make bench        # full reproduction driver (tables/figures + ablations)

GO ?= go

# Per-target budget for the short fuzz shake-out in check-verify.
FUZZTIME ?= 10s

.PHONY: check vet build test race bench bench-telemetry check-reliability \
	check-verify fuzz-seeds

check: vet build race check-verify

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# The telemetry-overhead gate: counter/gauge/histogram updates on the
# capture hot path must stay cheap (< 25 ns/op for counter increments).
bench-telemetry:
	$(GO) test -run='^$$' -bench='BenchmarkTelemetry' -benchmem

# The upload-pipeline reliability gate, under the race detector: the
# spool suite (retry/overflow/journal/concurrency), the collector
# fault-injection suite (zero row loss through 30% failed POSTs plus a
# server restart, idempotency dedupe, journal recovery across a client
# restart), and the gateway export/throttle regressions.
check-reliability:
	$(GO) test -race ./internal/spool/
	$(GO) test -race -run 'TestZeroRowLoss|TestSpoolJournal|TestBatch|TestIdempotency|TestOversized|TestChunked|TestErrorResponses|TestClientErrSurfacesFailures' ./internal/collector/
	$(GO) test -race -run 'TestFlowExport|TestPowerOffExports|TestScanThrottle' ./internal/gateway/

# The correctness-harness gate:
#   1. golden runs — a deterministic deployment through the real
#      agent→spool→HTTP→collector path, snapshots compared against
#      testdata/golden (regenerate with: go test ./internal/verify -update);
#   2. cross-layer conservation invariants and the determinism check
#      (same seed twice → byte-identical snapshots);
#   3. round-trip and export regressions for the wire/disk formats;
#   4. a short fuzz shake-out of every wire/disk parser ($(FUZZTIME)
#      each) on top of their checked-in seed corpora.
check-verify: fuzz-seeds
	$(GO) test -race ./internal/verify/
	$(GO) test -race -run 'TestThroughput|TestWriterReaderRoundTrip|TestReaderTruncatedStream|TestJournal' \
		./internal/gateway/ ./internal/pcap/ ./internal/spool/
	$(GO) test -run='^$$' -fuzz='FuzzParse' -fuzztime=$(FUZZTIME) ./internal/dns/
	$(GO) test -run='^$$' -fuzz='FuzzReader' -fuzztime=$(FUZZTIME) ./internal/pcap/
	$(GO) test -run='^$$' -fuzz='FuzzDecode' -fuzztime=$(FUZZTIME) ./internal/packet/
	$(GO) test -run='^$$' -fuzz='FuzzJournalReplay' -fuzztime=$(FUZZTIME) ./internal/spool/
	$(GO) test -run='^$$' -fuzz='FuzzRequestDecode' -fuzztime=$(FUZZTIME) ./internal/collector/

# Replay the checked-in fuzz corpora as plain unit tests (fast, -race).
fuzz-seeds:
	$(GO) test -race -run 'Fuzz' ./internal/dns/ ./internal/pcap/ ./internal/packet/ ./internal/spool/ ./internal/collector/
