# Tier-1 verification plus the race/bench targets the telemetry PR added.
#
#   make check   # vet + build + tests with -race (what CI should run)
#   make bench   # full reproduction driver (tables/figures + ablations)

GO ?= go

.PHONY: check vet build test race bench bench-telemetry check-reliability

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# The telemetry-overhead gate: counter/gauge/histogram updates on the
# capture hot path must stay cheap (< 25 ns/op for counter increments).
bench-telemetry:
	$(GO) test -run='^$$' -bench='BenchmarkTelemetry' -benchmem

# The upload-pipeline reliability gate, under the race detector: the
# spool suite (retry/overflow/journal/concurrency), the collector
# fault-injection suite (zero row loss through 30% failed POSTs plus a
# server restart, idempotency dedupe, journal recovery across a client
# restart), and the gateway export/throttle regressions.
check-reliability:
	$(GO) test -race ./internal/spool/
	$(GO) test -race -run 'TestZeroRowLoss|TestSpoolJournal|TestBatch|TestIdempotency|TestOversized|TestChunked|TestErrorResponses|TestClientErrSurfacesFailures' ./internal/collector/
	$(GO) test -race -run 'TestFlowExport|TestPowerOffExports|TestScanThrottle' ./internal/gateway/
