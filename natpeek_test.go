package natpeek

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	study := NewStudy(StudyConfig{Seed: 11, Scale: 0.1, TrafficHomes: 2, Short: 7 * 24 * time.Hour})
	if err := study.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.WriteReports(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 6", "Figure 19", "paper:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}

	dir := t.TempDir()
	if err := study.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStudy(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Reports()) != 21 {
		t.Fatal("reload broken")
	}
}
