// Package natpeek reproduces "Peeking Behind the NAT: An Empirical Study
// of Home Networks" (Grover et al., IMC 2013): a BISmark-style gateway
// measurement platform, a synthetic world standing in for the paper's
// 126-home/19-country deployment, and the analysis pipeline that
// regenerates every table and figure of the evaluation.
//
// Quick start:
//
//	study := natpeek.NewStudy(natpeek.StudyConfig{Seed: 1, Scale: 0.2})
//	if err := study.Run(); err != nil { ... }
//	study.WriteReports(os.Stdout)
//
// The heavy lifting lives in internal packages; this façade re-exports
// the surface a downstream user needs: building/running studies, loading
// and saving datasets, and regenerating exhibits.
package natpeek

import (
	"time"

	"natpeek/internal/core"
	"natpeek/internal/figures"
)

// StudyConfig configures a reproduction run. The zero value runs the
// paper's full deployment (126 homes, full Table 2 windows) from seed 0.
type StudyConfig struct {
	// Seed drives every random draw; a study is a pure function of it.
	Seed uint64
	// Scale multiplies the 126-router roster (use <1 for quick runs).
	Scale float64
	// TrafficHomes is the number of consenting US homes (default 25).
	TrafficHomes int
	// Short caps each collection window (0 = the paper's windows).
	Short time.Duration
}

// Study is a reproduction run: a deployment, its collected datasets, and
// the analysis that regenerates the paper's exhibits.
type Study = core.Study

// Report is one regenerated table or figure.
type Report = figures.Report

// NewStudy builds a deployment per cfg; call Run to collect data.
func NewStudy(cfg StudyConfig) *Study {
	return core.New(core.Config{
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		TrafficHomes: cfg.TrafficHomes,
		Short:        cfg.Short,
	})
}

// OpenStudy loads previously saved datasets (see Study.Save).
func OpenStudy(dir string) (*Study, error) { return core.Open(dir) }

// OpenSegmentStudy loads a study from a columnar segment directory
// written by a segment-backed collector (bismark-server -segments).
func OpenSegmentStudy(dir string) (*Study, error) { return core.OpenSegments(dir) }
