package natpeek

// The benchmark harness regenerates every table and figure of the paper
// from one full study run and prints the rows/series each exhibit
// reports (once per bench), so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction driver. Timings measure the analysis
// (dataset → exhibit), not the one-time world build.
//
// Set NATPEEK_BENCH_SCALE to change the deployment scale (default 0.5;
// 1.0 is the paper's full 126 homes and takes ~25 s to build).

import (
	"fmt"
	"net/netip"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"natpeek/internal/analysis"
	"natpeek/internal/anonymize"
	"natpeek/internal/capture"
	"natpeek/internal/clock"
	"natpeek/internal/dataset"
	"natpeek/internal/domains"
	"natpeek/internal/figures"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/linksim"
	"natpeek/internal/mac"
	"natpeek/internal/packet"
	"natpeek/internal/rng"
	"natpeek/internal/shaperprobe"
	"natpeek/internal/stats"
	"natpeek/internal/telemetry"
	"natpeek/internal/trafficgen"
	"natpeek/internal/world"
)

var (
	benchOnce  sync.Once
	benchStore *dataset.Store
	benchWin   figures.Windows
	printed    sync.Map
)

func benchStudy(b *testing.B) (*dataset.Store, figures.Windows) {
	b.Helper()
	benchOnce.Do(func() {
		scale := 0.5
		if s := os.Getenv("NATPEEK_BENCH_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				scale = v
			}
		}
		w := world.Build(world.Config{Seed: 1, Scale: scale})
		if err := w.Run(); err != nil {
			panic(err)
		}
		benchStore = w.Store
		benchWin = figures.DefaultWindows()
		fmt.Printf("\n[bench deployment: %d homes, scale %.2f]\n\n", len(w.Homes), scale)
	})
	return benchStore, benchWin
}

// exhibit prints the report once, then times its regeneration.
func exhibit(b *testing.B, gen func() *figures.Report) {
	b.Helper()
	r := gen()
	if _, dup := printed.LoadOrStore(r.ID, true); !dup {
		fmt.Println(r.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen()
	}
}

func BenchmarkTable1Deployment(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Table1(st) })
}

func BenchmarkTable2Datasets(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Table2(st) })
}

func BenchmarkFig3DowntimeFrequency(b *testing.B) {
	st, w := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig3(st, w) })
}

func BenchmarkFig4DowntimeDuration(b *testing.B) {
	st, w := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig4(st, w) })
}

func BenchmarkFig5GDPScatter(b *testing.B) {
	st, w := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig5(st, w) })
}

func BenchmarkFig6AvailabilityModes(b *testing.B) {
	st, w := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig6(st, w) })
}

func BenchmarkFig7DevicesPerHome(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig7(st) })
}

func BenchmarkFig8WiredWireless(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig8(st) })
}

func BenchmarkFig9SpectrumDevices(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig9(st) })
}

func BenchmarkTable5AlwaysConnected(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Table5(st) })
}

func BenchmarkFig10UniqueDevicesPerBand(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig10(st) })
}

func BenchmarkFig11VisibleAPs(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig11(st) })
}

func BenchmarkFig12Manufacturers(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig12(st) })
}

func BenchmarkFig13Diurnal(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig13(st) })
}

func BenchmarkFig14UtilizationTimeseries(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig14(st) })
}

func BenchmarkFig15LinkSaturation(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig15(st) })
}

func BenchmarkFig16Bufferbloat(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig16(st) })
}

func BenchmarkFig17DeviceShare(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig17(st) })
}

func BenchmarkFig18PopularDomains(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig18(st) })
}

func BenchmarkFig19DomainShares(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig19(st) })
}

func BenchmarkFig20DeviceFingerprint(b *testing.B) {
	st, _ := benchStudy(b)
	exhibit(b, func() *figures.Report { return figures.Fig20(st) })
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationGapThreshold sweeps the downtime definition (the paper
// chose 10 minutes) and shows how the Fig. 3 medians move.
func BenchmarkAblationGapThreshold(b *testing.B) {
	st, w := benchStudy(b)
	if _, dup := printed.LoadOrStore("ablation-gap", true); !dup {
		fmt.Println("== Ablation: heartbeat gap threshold (downtime definition) ==")
		for _, thr := range []time.Duration{2 * time.Minute, 5 * time.Minute, 10 * time.Minute, 20 * time.Minute, time.Hour} {
			win := w.Availability
			win.Threshold = thr
			rates := analysis.DowntimesPerDayByGroup(st, win)
			fmt.Printf("   thr=%-5s developed median=%.3f/day  developing median=%.3f/day\n",
				thr, stats.Median(rates[analysis.Developed]), stats.Median(rates[analysis.Developing]))
		}
		fmt.Println()
	}
	win := w.Availability
	win.Threshold = 10 * time.Minute
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.DowntimesPerDayByGroup(st, win)
	}
}

// BenchmarkAblationProbeTrain sweeps ShaperProbe's train length on a
// PowerBoost link: short trains never exit the token bucket and
// overestimate the sustained rate.
func BenchmarkAblationProbeTrain(b *testing.B) {
	cfgUp := linksim.Config{RateBps: 5e6, PeakBps: 40e6, BurstBytes: 300_000, BufferBytes: 1 << 22}
	if _, dup := printed.LoadOrStore("ablation-train", true); !dup {
		fmt.Println("== Ablation: ShaperProbe train length on a 5 Mbps link with a 300 KB PowerBoost bucket ==")
		for _, n := range []int{20, 60, 150, 400, 1000} {
			clk := clock.NewSim(time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC))
			dir := linksim.New(clk, nil, cfgUp)
			e := shaperprobe.ProbeSync(clk, dir, shaperprobe.Config{TrainLength: n})
			fmt.Printf("   train=%-5d estimate=%6.2f Mbps (true 5.00)  burstDetected=%v\n",
				n, e.SustainedBps/1e6, e.BurstDetected)
		}
		fmt.Println()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk := clock.NewSim(time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC))
		dir := linksim.New(clk, nil, cfgUp)
		_ = shaperprobe.ProbeSync(clk, dir, shaperprobe.Config{TrainLength: 150})
	}
}

// BenchmarkAblationFlowTimeout sweeps the capture flow-table idle
// timeout: shorter timeouts shrink the live table but split long-lived
// connections into multiple records.
func BenchmarkAblationFlowTimeout(b *testing.B) {
	gw := mac.MustParse("20:4e:7f:00:00:01")
	dev := mac.MustParse("a4:b1:97:00:00:0a")
	mkFrames := func() [][]byte {
		bld := packet.NewBuilder(dev, gw)
		var frames [][]byte
		for i := 0; i < 2000; i++ {
			frames = append(frames, bld.TCPv4(
				netip.MustParseAddr("192.168.1.10"), netip.MustParseAddr("203.0.113.80"),
				packet.TCP{SrcPort: uint16(5000 + i%20), DstPort: 443, Flags: packet.FlagACK}, 64,
				make([]byte, 400)))
		}
		return frames
	}
	frames := mkFrames()
	t0 := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	run := func(timeout time.Duration) (live, total int) {
		m := capture.New(capture.Config{
			LANPrefix:   netip.MustParsePrefix("192.168.1.0/24"),
			FlowTimeout: timeout,
		}, anonymize.New([]byte("k")))
		for i, fr := range frames {
			now := t0.Add(time.Duration(i) * 3 * time.Second) // 100 min of traffic
			m.Process(fr, capture.Upstream, now)
			if i%100 == 0 {
				m.ExpireFlows(now)
			}
		}
		return m.ActiveFlows(), len(m.Flows())
	}
	if _, dup := printed.LoadOrStore("ablation-timeout", true); !dup {
		fmt.Println("== Ablation: flow-table idle timeout (memory vs record granularity) ==")
		for _, to := range []time.Duration{30 * time.Second, 2 * time.Minute, 5 * time.Minute, 30 * time.Minute} {
			live, total := run(to)
			fmt.Printf("   timeout=%-5s live=%-4d records=%d\n", to, live, total)
		}
		fmt.Println()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(5 * time.Minute)
	}
}

// BenchmarkAblationWhitelistSize sweeps the anonymization whitelist size
// (the paper used the Alexa top 200): how much traffic volume stays
// attributable vs how much privacy the tail gets.
func BenchmarkAblationWhitelistSize(b *testing.B) {
	us, _ := geo.Lookup("US")
	root := rng.New(3)
	day0 := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	var flows []trafficgen.FlowSpec
	for h := 0; h < 10; h++ {
		gen := trafficgen.New(household.Generate(us, h, root))
		dt := gen.GenerateDay(day0, []household.Interval{{Start: day0, End: day0.Add(24 * time.Hour)}})
		flows = append(flows, dt.Flows...)
	}
	share := func(size int) float64 {
		var named, total float64
		for _, f := range flows {
			v := float64(f.UpBytes + f.DownBytes)
			total += v
			if r := domains.Rank(domains.Whitelisted(f.Domain)); r > 0 && r <= size {
				named += v
			}
		}
		return named / total
	}
	if _, dup := printed.LoadOrStore("ablation-whitelist", true); !dup {
		fmt.Println("== Ablation: whitelist size vs observable traffic share (paper: 200 → ≈65%) ==")
		for _, n := range []int{10, 25, 50, 100, 200} {
			fmt.Printf("   top-%-4d observable volume = %.0f%%\n", n, 100*share(n))
		}
		fmt.Println()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = share(200)
	}
}

// BenchmarkExtUsageByCountry runs the §7 future-work extension: a
// deployment where homes outside the US also consent to Traffic
// collection, compared by country group.
func BenchmarkExtUsageByCountry(b *testing.B) {
	var st *dataset.Store
	extOnce.Do(func() {
		w := world.Build(world.Config{Seed: 1, Scale: 0.3, GlobalTraffic: true,
			TrafficHomes: 8})
		if err := w.Run(); err != nil {
			panic(err)
		}
		extStore = w.Store
	})
	st = extStore
	r := figures.ExtUsageByCountry(st)
	if _, dup := printed.LoadOrStore(r.ID, true); !dup {
		fmt.Println(r.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = figures.ExtUsageByCountry(st)
	}
}

var (
	extOnce  sync.Once
	extStore *dataset.Store
)

// --- Telemetry overhead --------------------------------------------------

// The capture hot path pays one counter increment and one counter add per
// frame (see capture.Monitor.Process). These benches gate that cost: a
// counter increment must stay below ~25 ns/op or per-packet
// instrumentation would distort the very measurements it reports.

func BenchmarkTelemetryCounterInc(b *testing.B) {
	c := telemetry.Default.Counter("bench_counter_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryCounterIncParallel(b *testing.B) {
	c := telemetry.Default.Counter("bench_counter_par_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkTelemetryGaugeSet(b *testing.B) {
	g := telemetry.Default.Gauge("bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := telemetry.Default.Histogram("bench_hist_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// BenchmarkTelemetryCaptureProcess measures the full per-frame cost of
// the instrumented capture path — the end-to-end number the counter gate
// protects.
func BenchmarkTelemetryCaptureProcess(b *testing.B) {
	gw := mac.MustParse("20:4e:7f:00:00:01")
	dev := mac.MustParse("a4:b1:97:00:00:0a")
	bld := packet.NewBuilder(dev, gw)
	frame := bld.TCPv4(
		netip.MustParseAddr("192.168.1.10"), netip.MustParseAddr("203.0.113.80"),
		packet.TCP{SrcPort: 5000, DstPort: 443, Flags: packet.FlagACK}, 64,
		make([]byte, 400))
	m := capture.New(capture.Config{
		LANPrefix: netip.MustParsePrefix("192.168.1.0/24"),
	}, anonymize.New([]byte("k")))
	t0 := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Process(frame, capture.Upstream, t0.Add(time.Duration(i)*time.Millisecond))
	}
}
