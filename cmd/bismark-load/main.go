// bismark-load drives a collection server with a synthetic router
// fleet: N routers ramp in, register, and upload world-shaped
// measurement rows through the real /v1/* and /v1/batch endpoints over
// keep-alive connections. Delivery is at-least-once with idempotency
// keys (429/5xx retried with backoff), and the run ends with strict
// accounting: generated rows vs the server's /v1/stats delta. A healthy
// run reports zero lost rows.
//
// Usage:
//
//	bismark-server -udp 127.0.0.1:8077 -http 127.0.0.1:8080 &
//	bismark-load -server http://127.0.0.1:8080 -routers 2000 -ramp 10s -cycles 5
//
// The process exits non-zero if any rows were lost or the run aborted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"natpeek/internal/loadgen"
	"natpeek/internal/telemetry"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "collector upload API base URL")
	routers := flag.Int("routers", 200, "synthetic fleet size")
	ramp := flag.Duration("ramp", 5*time.Second, "window over which router start times are spread")
	cycles := flag.Int("cycles", 3, "reporting cycles per router")
	interval := flag.Duration("interval", 0, "pause between a router's cycles (0 = back-to-back)")
	duty := flag.Float64("duty", 1, "probability a cycle reports (models powered-off homes)")
	payloads := flag.Int("payloads", 4, "uploads per active cycle")
	batch := flag.Int("batch", 32, "uploads per /v1/batch POST")
	direct := flag.Float64("direct", 0.1, "fraction of uploads POSTed individually with Idempotency-Key")
	workers := flag.Int("workers", 8, "HTTP delivery concurrency")
	seed := flag.Uint64("seed", 1, "deterministic row-generation seed")
	wireFmt := flag.String("wire", "binary", "batch encoding: binary (NPB1) or json")
	gzipOn := flag.Bool("gzip", false, "gzip-compress batch request bodies")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file (- for stdout)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and pprof on this address during the run")
	flag.Parse()

	log := telemetry.SetupLogger("bismark-load")
	if *debugAddr != "" {
		dbg, err := telemetry.StartDebug(*debugAddr, telemetry.Default)
		if err != nil {
			log.Error("debug server failed", "err", err)
			os.Exit(1)
		}
		defer dbg.Close()
		log.Info("debug server", "metrics", "http://"+dbg.Addr()+"/metrics")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := loadgen.Config{
		BaseURL:          *server,
		Routers:          *routers,
		Ramp:             *ramp,
		Cycles:           *cycles,
		Interval:         *interval,
		Duty:             *duty,
		PayloadsPerCycle: *payloads,
		BatchSize:        *batch,
		DirectFraction:   *direct,
		Workers:          *workers,
		Seed:             *seed,
		Wire:             *wireFmt,
		Gzip:             *gzipOn,
	}
	log.Info("starting load run", "server", *server, "routers", *routers,
		"cycles", *cycles, "ramp", *ramp, "workers", *workers, "wire", *wireFmt)

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Error("load run failed", "err", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	if *jsonOut != "" {
		b, _ := json.MarshalIndent(rep, "", "  ")
		b = append(b, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			log.Error("write report", "err", err)
			os.Exit(1)
		}
	}
	if rep.Lost != 0 {
		log.Error("row loss detected", "lost", rep.Lost,
			"generated", rep.Generated.Total(), "ingested", rep.StatsDelta.Total())
		os.Exit(1)
	}
	log.Info("zero lost rows", "rows", rep.Generated.Total(),
		"rows_per_sec", int(rep.RowsPerSec), "p99", rep.P99)
}
