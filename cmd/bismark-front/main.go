// bismark-front runs the client-facing tier of a collector cluster. It
// speaks the exact same UDP heartbeat + HTTP /v1/* API as a single
// bismark-server — deployed clients cannot tell the difference — and
// routes every upload by router-ID consistent hash to its owning
// collector node, replicating each acknowledged write to R-1 successor
// journals before acking.
//
// Point -peers at the control-plane (-ctrl) addresses of one or more
// cluster nodes (bismark-server -cluster); membership gossip discovers
// the rest. Run several fronts against the same node set for client-side
// load spreading — fronts are stateless apart from the heartbeat log.
//
// The front is also the cluster's rebalancing console:
// POST /v1/cluster/drain?node=<id> streams a node's ownership to the
// survivors and shrinks the ring (stop the process once the drained
// epoch commits), and GET /v1/cluster/epoch reports the committed and
// pending ring epochs while a join or drain is cutting over.
//
// Usage:
//
//	bismark-front -udp 127.0.0.1:8077 -http 127.0.0.1:8080 \
//	    -ctrl 127.0.0.1:9080 -peers 127.0.0.1:9090,127.0.0.1:9091 -replication 2
package main

import (
	"flag"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"natpeek/internal/cluster"
	"natpeek/internal/telemetry"
)

func main() {
	id := flag.String("id", "front-0", "this front's identity in membership gossip")
	udp := flag.String("udp", "127.0.0.1:8077", "UDP address for heartbeats (terminate at the front)")
	httpAddr := flag.String("http", "127.0.0.1:8080", "HTTP address for the client-facing /v1/* API")
	ctrlAddr := flag.String("ctrl", "127.0.0.1:9080", "control-plane HTTP address (membership gossip)")
	peers := flag.String("peers", "", "comma-separated control-plane addresses of cluster nodes")
	replication := flag.Int("replication", cluster.DefaultReplication, "write replication factor R: owner + R-1 successor journals per acknowledged write, clamped to the live node count")
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrent data-plane requests (429 + Retry-After beyond it); 0 for the collector default")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "how often to log cluster membership and heartbeat progress")
	flag.Parse()

	log := telemetry.SetupLogger("bismark-front")

	var seedPeers []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			seedPeers = append(seedPeers, p)
		}
	}
	if len(seedPeers) == 0 {
		log.Error("no -peers given: a front needs at least one cluster node's -ctrl address")
		os.Exit(1)
	}

	front, err := cluster.NewFront(cluster.FrontConfig{
		ID:      *id,
		UDPAddr: *udp, HTTPAddr: *httpAddr, CtrlAddr: *ctrlAddr,
		Peers:       seedPeers,
		Replication: *replication,
		MaxInflight: *maxInflight,
	})
	if err != nil {
		log.Error("start failed", "err", err)
		os.Exit(1)
	}
	log.Info("front listening",
		"front", *id,
		"heartbeats", "udp://"+front.UDPAddr(),
		"uploads", "http://"+front.HTTPAddr(),
		"stats", "http://"+front.HTTPAddr()+"/v1/stats",
		"members", "http://"+front.HTTPAddr()+"/cluster/members",
		"epoch", "http://"+front.HTTPAddr()+"/v1/cluster/epoch",
		"traces", "http://"+front.HTTPAddr()+"/debug/traces",
		"control", "http://"+front.CtrlAddr(),
		"replication", *replication)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()

	for {
		select {
		case <-ticker.C:
			alive, dead := 0, 0
			for _, mv := range front.View() {
				if mv.Role != cluster.RoleNode {
					continue
				}
				if mv.State == cluster.StateAlive {
					alive++
				} else {
					dead++
				}
			}
			beats := 0
			hb := front.Heartbeats()
			for _, rid := range hb.Routers() {
				beats += hb.Count(rid)
			}
			log.Info("cluster progress", "nodes_alive", alive, "nodes_down", dead, "heartbeats", beats)
		case <-stop:
			log.Info("shutting down")
			if err := front.Close(); err != nil {
				log.Warn("close", "err", err)
			}
			return
		}
	}
}
