// bismark-gateway runs one BISmark router agent against a real
// collection server over real sockets (UDP heartbeats + HTTP uploads).
// The home behind the gateway is a synthetic household driven in
// accelerated time: the agent's measurement schedule, anonymization, and
// upload path are the real ones; only the house is simulated.
//
// Usage (with bismark-server running):
//
//	bismark-gateway -id bismark-US-900 -country US \
//	    -server-udp 127.0.0.1:8077 -server-http 127.0.0.1:8080 \
//	    -speedup 720 -duration 30s
//
// At -speedup 720 every wall-clock second advances the home by 12
// simulated minutes, so a 30 s demo covers ~6 home-days.
package main

import (
	"context"
	"flag"
	"net/http"
	"net/netip"
	"os"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/collector"
	"natpeek/internal/dataset"
	"natpeek/internal/eventsim"
	"natpeek/internal/gateway"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/linksim"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
	"natpeek/internal/spool"
	"natpeek/internal/telemetry"
	"natpeek/internal/trace"
	"natpeek/internal/webui"
	"natpeek/internal/wifi"
)

func main() {
	id := flag.String("id", "bismark-US-900", "router identifier")
	country := flag.String("country", "US", "deployment country code")
	udp := flag.String("server-udp", "127.0.0.1:8077", "collection server heartbeat address")
	httpAddr := flag.String("server-http", "127.0.0.1:8080", "collection server upload address")
	speedup := flag.Float64("speedup", 720, "simulated seconds per wall second")
	duration := flag.Duration("duration", 30*time.Second, "wall-clock run time")
	seed := flag.Uint64("seed", 42, "household seed")
	debugAddr := flag.String("debug-addr", "", "optional listen address for /metrics and pprof (e.g. 127.0.0.1:9090)")
	spoolDir := flag.String("spool-dir", "", "optional directory for the upload spool journal (uploads survive a gateway restart, like the firmware's flash buffers)")
	wireFmt := flag.String("wire", "auto", "batch encoding: auto (negotiate NPB1 via Accept-Post), binary, or json")
	flag.Parse()

	log := telemetry.SetupLogger("bismark-gateway")

	cty, ok := geo.Lookup(*country)
	if !ok {
		log.Error("unknown country", "country", *country)
		os.Exit(1)
	}
	var wireMode collector.WireMode
	switch *wireFmt {
	case "auto":
		wireMode = collector.WireAuto
	case "binary":
		wireMode = collector.WireBinary
	case "json":
		wireMode = collector.WireJSON
	default:
		log.Error("unknown wire format", "wire", *wireFmt)
		os.Exit(1)
	}
	cli, err := collector.NewClient(*id, *country, *udp, *httpAddr,
		collector.WithWireFormat(wireMode),
		collector.WithSpool(spool.Config{Dir: *spoolDir}))
	if err != nil {
		log.Error("connect failed", "err", err)
		os.Exit(1)
	}
	defer cli.Close()

	if *debugAddr != "" {
		// The debug listener carries the gateway-side ops view: the
		// client's flight recorder (each payload's trace up to the server
		// ack) and a pipeline page fed by the spool's health sampler.
		dbg, err := telemetry.StartDebugWith(*debugAddr, nil, func(mux *http.ServeMux) {
			trace.RegisterDebug(mux, cli.TraceRecorder())
			clientSnap := webui.PipelineFromTelemetry(nil, cli.TraceRecorder(), nil)
			webui.RegisterPipeline(mux, webui.PipelineConfig{
				Title: *id,
				Snapshot: func() webui.PipelineSnapshot {
					s := clientSnap()
					for _, h := range cli.SpoolHealth() {
						s.SpoolDepth += float64(h.Depth)
					}
					return s
				},
			})
		})
		if err != nil {
			log.Error("debug listener failed", "err", err)
			os.Exit(1)
		}
		defer dbg.Close()
		log.Info("debug listener up", "metrics", "http://"+dbg.Addr()+"/metrics",
			"traces", "http://"+dbg.Addr()+"/debug/traces",
			"pipeline", "http://"+dbg.Addr()+"/pipeline",
			"pprof", "http://"+dbg.Addr()+"/debug/pprof/")
	}

	// Build the synthetic home.
	home := household.Generate(cty, 900, rng.New(*seed))
	start := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSim(start)
	sched := eventsim.New(clk, rng.New(*seed+1))

	neigh := wifi.NewEnvironment()
	for i := 0; i < home.NeighborAPs24; i++ {
		neigh.AddAP(wifi.AP{BSSID: mac.FromOUI(0x0018F8, uint32(i)), Band: wifi.Band24, Channel: 11, RSSI: -60})
	}
	env := &gateway.Env{
		Link: linksim.NewLink(clk, rng.New(*seed+2),
			linksim.Config{RateBps: home.UpBps, BufferBytes: home.BufferUpBytes},
			linksim.Config{RateBps: home.DownBps, BufferBytes: 1 << 20}),
		Radio24: wifi.NewRadio(wifi.Band24, neigh, rng.New(*seed+3)),
		Radio5:  wifi.NewRadio(wifi.Band5, neigh, rng.New(*seed+4)),
	}
	agent := gateway.New(gateway.Config{
		ID:        *id,
		LANPrefix: netip.MustParsePrefix("192.168.1.0/24"),
		AnonKey:   []byte("live-demo"),
	}, cli, env)

	// Associate the home's devices on a rotating schedule.
	sched.Every(time.Hour, 0, func(now time.Time) {
		for _, d := range home.Devices {
			online := home.DeviceOnline(d, now)
			switch d.Conn {
			case dataset.Wired:
				if online {
					env.AttachWired(d.HW)
				} else {
					env.DetachWired(d.HW)
				}
			case dataset.Wireless24:
				if online {
					env.Radio24.Associate(d.HW)
				} else {
					env.Radio24.Disassociate(d.HW)
				}
			default:
				if online {
					env.Radio5.Associate(d.HW)
				} else {
					env.Radio5.Disassociate(d.HW)
				}
			}
		}
	})

	agent.PowerOn(sched)
	log.Info("agent up", "id", *id, "devices", len(home.Devices),
		"up_mbps", home.UpBps/1e6, "down_mbps", home.DownBps/1e6, "server", *udp)

	// Drive simulated time at the requested speedup.
	wallStart := time.Now()
	tick := 100 * time.Millisecond
	for time.Since(wallStart) < *duration {
		time.Sleep(tick)
		clk.Advance(time.Duration(float64(tick) * *speedup))
	}
	agent.PowerOff(clk.Now())
	// Drain the upload spool before exiting; anything still queued after
	// the deadline survives in the journal (if -spool-dir is set).
	flushCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := cli.Flush(flushCtx); err != nil {
		log.Warn("spool not fully drained", "queued", cli.SpoolDepth(), "err", err)
	}
	cancel()
	if err := cli.Err(); err != nil {
		log.Warn("some uploads failed (retried by the spool)", "last_err", err)
	}
	simSpan := clk.Now().Sub(start)
	log.Info("done", "simulated", simSpan.Round(time.Minute).String(),
		"wall", time.Since(wallStart).Round(time.Second).String())
}
