// bismark-sim builds and runs the synthetic deployment — the stand-in
// for the paper's 126-home fleet — and writes the six Table 2 data sets
// as CSV for bismark-analyze.
//
// Usage:
//
//	bismark-sim -seed 1 -scale 1.0 -out ./data
//	bismark-sim -seed 7 -scale 0.25 -short 336h -out ./data-quick
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"natpeek"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bismark-sim: ")

	seed := flag.Uint64("seed", 1, "random seed; runs are pure functions of it")
	scale := flag.Float64("scale", 1.0, "deployment scale (1.0 = the paper's 126 routers)")
	trafficHomes := flag.Int("traffic-homes", 25, "consenting US homes contributing Traffic data")
	short := flag.Duration("short", 0, "cap each collection window (0 = the paper's full windows)")
	out := flag.String("out", "data", "output directory for the CSV data sets")
	report := flag.Bool("report", false, "also print every regenerated table and figure")
	flag.Parse()

	start := time.Now()
	study := natpeek.NewStudy(natpeek.StudyConfig{
		Seed:         *seed,
		Scale:        *scale,
		TrafficHomes: *trafficHomes,
		Short:        *short,
	})
	log.Printf("deployment built: %d homes in 19 countries", len(study.World.Homes))
	if err := study.Run(); err != nil {
		log.Fatalf("run: %v", err)
	}
	log.Printf("collection finished in %v", time.Since(start).Round(time.Millisecond))

	st := study.Store
	beats := 0
	for _, id := range st.Heartbeats.Routers() {
		beats += st.Heartbeats.Count(id)
	}
	log.Printf("datasets: heartbeats=%d uptime=%d capacity=%d counts=%d sightings=%d wifi=%d flows=%d throughput=%d",
		beats, len(st.Uptime), len(st.Capacity), len(st.Counts),
		len(st.Sightings), len(st.WiFi), len(st.Flows), len(st.Throughput))

	if err := study.Save(*out); err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("data sets written to %s", *out)

	if *report {
		fmt.Println()
		if err := study.WriteReports(os.Stdout); err != nil {
			log.Fatalf("report: %v", err)
		}
	}
}
