// bismark-sim builds and runs the synthetic deployment — the stand-in
// for the paper's 126-home fleet — and writes the six Table 2 data sets
// as CSV for bismark-analyze.
//
// With -debug-addr set, a /metrics + pprof listener runs for the
// duration of the simulation; natpeek_sim_homes_done_total,
// natpeek_sim_time_seconds, and natpeek_sim_events_total show live
// progress of a long run (events/sec is the rate of the events counter).
//
// Usage:
//
//	bismark-sim -seed 1 -scale 1.0 -out ./data
//	bismark-sim -seed 7 -scale 0.25 -short 336h -out ./data-quick -debug-addr 127.0.0.1:9091
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"natpeek"
	"natpeek/internal/telemetry"
	"natpeek/internal/verify"
)

func main() {
	seed := flag.Uint64("seed", 1, "random seed; runs are pure functions of it")
	scale := flag.Float64("scale", 1.0, "deployment scale (1.0 = the paper's 126 routers)")
	trafficHomes := flag.Int("traffic-homes", 25, "consenting US homes contributing Traffic data")
	short := flag.Duration("short", 0, "cap each collection window (0 = the paper's full windows)")
	out := flag.String("out", "data", "output directory for the CSV data sets")
	report := flag.Bool("report", false, "also print every regenerated table and figure")
	verifyRun := flag.Bool("verify", false, "run the correctness harness instead: a small deployment through a real collector, checked against the cross-layer conservation invariants")
	debugAddr := flag.String("debug-addr", "", "optional listen address for /metrics and pprof during the run")
	flag.Parse()

	log := telemetry.SetupLogger("bismark-sim")

	if *debugAddr != "" {
		dbg, err := telemetry.StartDebug(*debugAddr, nil)
		if err != nil {
			log.Error("debug listener failed", "err", err)
			os.Exit(1)
		}
		defer dbg.Close()
		log.Info("debug listener up", "metrics", "http://"+dbg.Addr()+"/metrics",
			"pprof", "http://"+dbg.Addr()+"/debug/pprof/")
	}

	if *verifyRun {
		runVerify(log, *seed)
		return
	}

	start := time.Now()
	study := natpeek.NewStudy(natpeek.StudyConfig{
		Seed:         *seed,
		Scale:        *scale,
		TrafficHomes: *trafficHomes,
		Short:        *short,
	})
	log.Info("deployment built", "homes", len(study.World.Homes), "countries", 19)
	if err := study.Run(); err != nil {
		log.Error("run failed", "err", err)
		os.Exit(1)
	}
	log.Info("collection finished", "took", time.Since(start).Round(time.Millisecond).String())

	st := study.Store
	beats := 0
	for _, id := range st.Heartbeats.Routers() {
		beats += st.Heartbeats.Count(id)
	}
	log.Info("datasets",
		"heartbeats", beats, "uptime", len(st.Uptime), "capacity", len(st.Capacity),
		"counts", len(st.Counts), "sightings", len(st.Sightings), "wifi", len(st.WiFi),
		"flows", len(st.Flows), "throughput", len(st.Throughput))

	if err := study.Save(*out); err != nil {
		log.Error("save failed", "err", err)
		os.Exit(1)
	}
	log.Info("data sets written", "dir", *out)

	if *report {
		fmt.Println()
		if err := study.WriteReports(os.Stdout); err != nil {
			log.Error("report failed", "err", err)
			os.Exit(1)
		}
	}
}

// runVerify executes the verification harness: the full agent → spool →
// HTTP → collector path on loopback, then every conservation and schema
// invariant. Exit status 1 if any invariant is violated.
func runVerify(log *slog.Logger, seed uint64) {
	start := time.Now()
	r, err := verify.Run(verify.Config{Seed: seed})
	if err != nil {
		log.Error("verify run failed", "err", err)
		os.Exit(1)
	}
	acct := r.World.Acct
	log.Info("verify run finished",
		"took", time.Since(start).Round(time.Millisecond).String(),
		"homes", acct.Homes, "frames", acct.Frames,
		"flow_records", len(r.Ingested.Flows),
		"bytes_up", acct.FrameUpBytes, "bytes_down", acct.FrameDownBytes)
	fails := verify.CheckAll(r, nil)
	if len(fails) == 0 {
		fmt.Println("all invariants hold")
		return
	}
	for _, f := range fails {
		fmt.Println("INVARIANT VIOLATED:", f)
	}
	os.Exit(1)
}
