// bismark-pcap analyzes a packet trace the way the gateway's passive
// monitor does: flows with per-device attribution, DNS-derived domain
// labels, per-device volumes, and per-second throughput — a tcpdump-like
// view of the Traffic pipeline, runnable on any LINKTYPE_ETHERNET pcap.
//
// Usage:
//
//	bismark-pcap -in trace.pcap -lan 192.168.1.0/24
//	bismark-pcap -demo -in /tmp/demo.pcap     # generate a demo trace first
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"natpeek/internal/anonymize"
	"natpeek/internal/capture"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/mac"
	"natpeek/internal/pcap"
	"natpeek/internal/rng"
	"natpeek/internal/telemetry"
	"natpeek/internal/trafficgen"
)

func main() {
	in := flag.String("in", "", "pcap file to analyze")
	lan := flag.String("lan", "192.168.1.0/24", "LAN prefix for direction inference and attribution")
	demo := flag.Bool("demo", false, "first write a synthetic home trace to -in, then analyze it")
	flows := flag.Int("flows", 15, "number of flows to print")
	flag.Parse()

	log := telemetry.SetupLogger("bismark-pcap")
	fail := func(msg string, err error) {
		log.Error(msg, "err", err)
		os.Exit(1)
	}

	if *in == "" {
		fail("-in required", nil)
	}
	prefix, err := netip.ParsePrefix(*lan)
	if err != nil {
		fail("bad -lan", err)
	}
	if *demo {
		if err := writeDemoTrace(*in, prefix); err != nil {
			fail("demo trace", err)
		}
		log.Info("demo trace written", "path", *in)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail("open", err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		fail("read pcap", err)
	}
	if r.LinkType != pcap.LinkTypeEthernet {
		fail(fmt.Sprintf("unsupported link type %d (want Ethernet)", r.LinkType), nil)
	}

	mon := capture.New(capture.Config{LANPrefix: prefix}, anonymize.New([]byte("bismark-pcap")))
	n, err := mon.Replay(r)
	if err != nil {
		fail(fmt.Sprintf("replay stopped after %d frames", n), err)
	}

	fmt.Printf("%d frames\n\n", n)
	fmt.Println("devices (anonymized, OUI preserved):")
	for _, d := range mon.Devices() {
		fmt.Printf("  %s  up=%-10d down=%-10d bytes\n", d.Device, d.UpBytes, d.DownBytes)
	}

	fmt.Println("\nflows:")
	for i, fl := range mon.Flows() {
		if i >= *flows {
			fmt.Printf("  … %d more\n", len(mon.Flows())-*flows)
			break
		}
		dom := fl.Domain
		if dom == "" {
			dom = "-"
		}
		fmt.Printf("  %s %v %v:%d ⇄ :%d  %7d↑ %9d↓  %s\n",
			fl.Key.Device, fl.Key.Proto, fl.Key.RemoteIP, fl.Key.RemotePort,
			fl.Key.LocalPort, fl.UpBytes, fl.DownBytes, dom)
	}

	up := mon.Throughput(capture.Upstream)
	down := mon.Throughput(capture.Downstream)
	fmt.Printf("\nthroughput: %d busy seconds up, %d down; whitelisted volume share %.0f%%\n",
		len(up), len(down), 100*mon.WhitelistedShare())
}

// writeDemoTrace renders one evening of a synthetic home as real frames.
func writeDemoTrace(path string, prefix netip.Prefix) error {
	us, _ := geo.Lookup("US")
	home := household.Generate(us, 5, rng.New(8))
	gen := trafficgen.New(home)
	day := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	dt := gen.GenerateDay(day, []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}})

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := pcap.NewWriter(f, 0)
	if err != nil {
		return err
	}
	gw := mac.MustParse("20:4e:7f:00:00:01")
	ips := map[string]netip.Addr{}
	next := prefix.Addr().Next().Next()
	frameRnd := rng.New(9)
	count := 0
	for _, flow := range dt.Flows {
		if count >= 60 {
			break
		}
		count++
		ip, ok := ips[flow.Device.HW.String()]
		if !ok {
			ip = next
			ips[flow.Device.HW.String()] = ip
			next = next.Next()
		}
		for _, fr := range trafficgen.FramesForFlow(flow, trafficgen.FrameOpts{
			GatewayMAC: gw, DeviceIP: ip, MaxDataPackets: 25,
		}, frameRnd) {
			if err := w.WritePacket(pcap.Packet{At: fr.At, Data: fr.Raw}); err != nil {
				return err
			}
		}
	}
	return nil
}
