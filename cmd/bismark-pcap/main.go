// bismark-pcap analyzes a packet trace the way the gateway's passive
// monitor does: flows with per-device attribution, DNS-derived domain
// labels, per-device volumes, and per-second throughput — a tcpdump-like
// view of the Traffic pipeline, runnable on any LINKTYPE_ETHERNET pcap.
//
// Usage:
//
//	bismark-pcap -in trace.pcap -lan 192.168.1.0/24
//	bismark-pcap -demo -in /tmp/demo.pcap     # generate a demo trace first
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"natpeek/internal/anonymize"
	"natpeek/internal/capture"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/mac"
	"natpeek/internal/pcap"
	"natpeek/internal/rng"
	"natpeek/internal/trafficgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bismark-pcap: ")

	in := flag.String("in", "", "pcap file to analyze")
	lan := flag.String("lan", "192.168.1.0/24", "LAN prefix for direction inference and attribution")
	demo := flag.Bool("demo", false, "first write a synthetic home trace to -in, then analyze it")
	flows := flag.Int("flows", 15, "number of flows to print")
	flag.Parse()

	if *in == "" {
		log.Fatal("-in required")
	}
	prefix, err := netip.ParsePrefix(*lan)
	if err != nil {
		log.Fatalf("bad -lan: %v", err)
	}
	if *demo {
		if err := writeDemoTrace(*in, prefix); err != nil {
			log.Fatalf("demo trace: %v", err)
		}
		log.Printf("demo trace written to %s", *in)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	if r.LinkType != pcap.LinkTypeEthernet {
		log.Fatalf("unsupported link type %d (want Ethernet)", r.LinkType)
	}

	mon := capture.New(capture.Config{LANPrefix: prefix}, anonymize.New([]byte("bismark-pcap")))
	n, err := mon.Replay(r)
	if err != nil {
		log.Fatalf("after %d frames: %v", n, err)
	}

	fmt.Printf("%d frames\n\n", n)
	fmt.Println("devices (anonymized, OUI preserved):")
	for _, d := range mon.Devices() {
		fmt.Printf("  %s  up=%-10d down=%-10d bytes\n", d.Device, d.UpBytes, d.DownBytes)
	}

	fmt.Println("\nflows:")
	for i, fl := range mon.Flows() {
		if i >= *flows {
			fmt.Printf("  … %d more\n", len(mon.Flows())-*flows)
			break
		}
		dom := fl.Domain
		if dom == "" {
			dom = "-"
		}
		fmt.Printf("  %s %v %v:%d ⇄ :%d  %7d↑ %9d↓  %s\n",
			fl.Key.Device, fl.Key.Proto, fl.Key.RemoteIP, fl.Key.RemotePort,
			fl.Key.LocalPort, fl.UpBytes, fl.DownBytes, dom)
	}

	up := mon.Throughput(capture.Upstream)
	down := mon.Throughput(capture.Downstream)
	fmt.Printf("\nthroughput: %d busy seconds up, %d down; whitelisted volume share %.0f%%\n",
		len(up), len(down), 100*mon.WhitelistedShare())
}

// writeDemoTrace renders one evening of a synthetic home as real frames.
func writeDemoTrace(path string, prefix netip.Prefix) error {
	us, _ := geo.Lookup("US")
	home := household.Generate(us, 5, rng.New(8))
	gen := trafficgen.New(home)
	day := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	dt := gen.GenerateDay(day, []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}})

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := pcap.NewWriter(f, 0)
	if err != nil {
		return err
	}
	gw := mac.MustParse("20:4e:7f:00:00:01")
	ips := map[string]netip.Addr{}
	next := prefix.Addr().Next().Next()
	frameRnd := rng.New(9)
	count := 0
	for _, flow := range dt.Flows {
		if count >= 60 {
			break
		}
		count++
		ip, ok := ips[flow.Device.HW.String()]
		if !ok {
			ip = next
			ips[flow.Device.HW.String()] = ip
			next = next.Next()
		}
		for _, fr := range trafficgen.FramesForFlow(flow, trafficgen.FrameOpts{
			GatewayMAC: gw, DeviceIP: ip, MaxDataPackets: 25,
		}, frameRnd) {
			if err := w.WritePacket(pcap.Packet{At: fr.At, Data: fr.Raw}); err != nil {
				return err
			}
		}
	}
	return nil
}
