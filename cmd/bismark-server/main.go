// bismark-server runs the central collection server: a UDP sink for
// router heartbeats and an HTTP API for measurement uploads. On SIGINT it
// persists everything it collected as CSV data sets.
//
// Usage:
//
//	bismark-server -udp 127.0.0.1:8077 -http 127.0.0.1:8080 -out ./live-data
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"natpeek/internal/collector"
	"natpeek/internal/dataset"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("bismark-server: ")

	udp := flag.String("udp", "127.0.0.1:8077", "UDP address for heartbeats")
	httpAddr := flag.String("http", "127.0.0.1:8080", "HTTP address for measurement uploads")
	out := flag.String("out", "live-data", "directory to persist data sets on shutdown")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "how often to log collection progress")
	flag.Parse()

	store := dataset.NewStore()
	srv, err := collector.NewServer(*udp, *httpAddr, store)
	if err != nil {
		log.Fatalf("start: %v", err)
	}
	log.Printf("heartbeats on udp://%s, uploads on http://%s", srv.UDPAddr(), srv.HTTPAddr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()

	for {
		select {
		case <-ticker.C:
			beats := 0
			for _, id := range store.Heartbeats.Routers() {
				beats += store.Heartbeats.Count(id)
			}
			log.Printf("routers=%d heartbeats=%d uptime=%d capacity=%d counts=%d wifi=%d flows=%d",
				len(store.RouterCountry), beats, len(store.Uptime), len(store.Capacity),
				len(store.Counts), len(store.WiFi), len(store.Flows))
		case <-stop:
			log.Printf("shutting down, persisting to %s", *out)
			srv.Close()
			if err := store.Save(*out); err != nil {
				log.Fatalf("save: %v", err)
			}
			return
		}
	}
}
