// bismark-server runs the central collection server: a UDP sink for
// router heartbeats and an HTTP API for measurement uploads. On SIGINT it
// persists everything it collected as CSV data sets.
//
// Observability: the HTTP listener also serves GET /metrics (Prometheus
// text format), GET /healthz (uptime, heartbeat-port status, row counts),
// and the pprof handlers under /debug/pprof/. Logging is structured
// (slog); tune with NATPEEK_LOG_LEVEL / NATPEEK_LOG_FORMAT.
//
// Cluster mode: -cluster runs this process as one node of a collector
// cluster — the same data plane, plus a control-plane listener for
// membership gossip, write replication journals, and failover replay.
// Point one or more bismark-front processes at the node's -ctrl address
// and clients at the fronts.
//
// Scale-out: add -join to a new cluster node and it starts OFF the
// routing ring, streams its share of ownership from the existing
// members, and only then commits a ring epoch that includes it — fronts
// fence the moving shards during the cutover, so nothing is lost or
// duplicated. Scale-in is driven from a front:
// POST /v1/cluster/drain?node=<id>.
//
// Usage:
//
//	bismark-server -udp 127.0.0.1:8077 -http 127.0.0.1:8080 -out ./live-data
//	bismark-server -cluster -node-id node-0 -ctrl 127.0.0.1:9090 -peers 127.0.0.1:9091,127.0.0.1:9092
//	bismark-server -cluster -join -node-id node-3 -ctrl 127.0.0.1:9093 -peers 127.0.0.1:9090
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"natpeek/internal/cluster"
	"natpeek/internal/collector"
	"natpeek/internal/dataset"
	"natpeek/internal/figures"
	"natpeek/internal/segment"
	"natpeek/internal/telemetry"
)

// mountFigures attaches the incremental figures dashboard to the
// collector's HTTP mux.
func mountFigures(seg *segment.Store, srv *collector.Server) error {
	d, err := figures.NewDashboard(seg, figures.DefaultWindows())
	if err != nil {
		return err
	}
	d.Register(srv.Mux())
	return nil
}

func main() {
	udp := flag.String("udp", "127.0.0.1:8077", "UDP address for heartbeats")
	httpAddr := flag.String("http", "127.0.0.1:8080", "HTTP address for measurement uploads, /metrics, /healthz, and pprof")
	out := flag.String("out", "live-data", "directory to persist data sets on shutdown")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "how often to log collection progress")
	failRate := flag.Float64("fail-rate", 0, "fault injection: fraction of uploads to fail (half rejected, half applied with the ack dropped) to exercise gateway retries and server dedupe")
	failSeed := flag.Uint64("fail-seed", 1, "fault injection RNG seed")
	traceSample := flag.Float64("trace-sample", 0.05, "tail-sampling keep probability for healthy traces (error, throttled, and slow traces are always kept)")
	traceSlow := flag.Duration("trace-slow", 500*time.Millisecond, "traces at least this slow are always kept")
	noBinary := flag.Bool("no-binary", false, "stop advertising the NPB1 binary batch encoding (clients fall back to JSON; binary uploads are still accepted)")
	clusterMode := flag.Bool("cluster", false, "run as a cluster node: serve the control plane on -ctrl, gossip with -peers, journal replicated writes, and replay them on peer failure")
	nodeID := flag.String("node-id", "node-0", "cluster mode: this node's stable hash-ring identity")
	ctrlAddr := flag.String("ctrl", "127.0.0.1:9090", "cluster mode: control-plane HTTP address (gossip, replicate, manifest)")
	peers := flag.String("peers", "", "cluster mode: comma-separated control-plane addresses of existing members (empty for the first node)")
	joinRing := flag.Bool("join", false, "cluster mode: scale-out — start off the routing ring, pull this node's share of ownership from the existing members, then commit a ring epoch that includes it (requires -peers)")
	segDir := flag.String("segments", "", "durable columnar segment directory: rows spill from memory to immutable NPS1 segments as they arrive (crash-safe, exactly-once across restarts) and the HTTP listener gains a continuously-updating GET /figures dashboard")
	segFlushAge := flag.Duration("segment-flush-age", time.Minute, "seal a non-empty memtable this long after its first row even below the row threshold, so quiet deployments still reach disk (0 disables)")
	flag.Parse()

	log := telemetry.SetupLogger("bismark-server")

	var store dataset.IngestStore = dataset.NewSharded(0)
	var segStore *segment.Store
	if *segDir != "" {
		var err error
		segStore, err = segment.Open(segment.Options{Dir: *segDir, FlushAge: *segFlushAge})
		if err != nil {
			log.Error("segment store open failed", "err", err)
			os.Exit(1)
		}
		store = segStore
		log.Info("segment storage enabled", "dir", *segDir,
			"segments", len(segStore.Segments()))
	}

	if *clusterMode {
		var seedPeers []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				seedPeers = append(seedPeers, p)
			}
		}
		if *joinRing && len(seedPeers) == 0 {
			log.Error("-join needs -peers: a joiner pulls ownership from existing members")
			os.Exit(1)
		}
		node, err := cluster.NewNode(cluster.NodeConfig{
			ID:      *nodeID,
			UDPAddr: *udp, HTTPAddr: *httpAddr, CtrlAddr: *ctrlAddr,
			Peers: seedPeers, Store: store,
			Joining: *joinRing,
		})
		if err != nil {
			log.Error("cluster node start failed", "err", err)
			os.Exit(1)
		}
		if *joinRing {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			if err := node.JoinRing(ctx); err != nil {
				cancel()
				log.Error("ring join failed", "err", err)
				node.Close()
				os.Exit(1)
			}
			cancel()
			log.Info("joined the routing ring", "node", *nodeID)
		}
		node.Collector().SetTraceSampling(*traceSample, *traceSlow)
		if segStore != nil {
			if err := mountFigures(segStore, node.Collector()); err != nil {
				log.Error("figures dashboard failed", "err", err)
				os.Exit(1)
			}
			log.Info("figures dashboard", "url", "http://"+node.DataAddr()+"/figures")
		}
		log.Info("cluster node listening",
			"node", *nodeID,
			"heartbeats", "udp://"+node.UDPAddr(),
			"uploads", "http://"+node.DataAddr(),
			"control", "http://"+node.CtrlAddr(),
			"members", "http://"+node.CtrlAddr()+"/cluster/members")

		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		log.Info("shutting down", "out", *out)
		if err := node.Close(); err != nil {
			log.Warn("close", "err", err)
		}
		if segStore != nil {
			if err := segStore.Close(); err != nil {
				log.Warn("segment store close", "err", err)
			}
		}
		if err := store.Save(*out); err != nil {
			log.Error("save failed", "err", err)
			os.Exit(1)
		}
		return
	}

	srv, err := collector.NewServer(*udp, *httpAddr, store)
	if err != nil {
		log.Error("start failed", "err", err)
		os.Exit(1)
	}
	if *failRate > 0 {
		srv.SetFaultInjection(*failRate, *failSeed)
		log.Warn("fault injection enabled", "rate", *failRate, "seed", *failSeed)
	}
	srv.SetTraceSampling(*traceSample, *traceSlow)
	if segStore != nil {
		if err := mountFigures(segStore, srv); err != nil {
			log.Error("figures dashboard failed", "err", err)
			os.Exit(1)
		}
		log.Info("figures dashboard", "url", "http://"+srv.HTTPAddr()+"/figures")
	}
	if *noBinary {
		srv.SetAdvertiseBinary(false)
		log.Info("binary batch advertisement disabled")
	}
	log.Info("listening",
		"heartbeats", "udp://"+srv.UDPAddr(),
		"uploads", "http://"+srv.HTTPAddr(),
		"metrics", "http://"+srv.HTTPAddr()+"/metrics",
		"healthz", "http://"+srv.HTTPAddr()+"/healthz",
		"traces", "http://"+srv.HTTPAddr()+"/debug/traces",
		"pipeline", "http://"+srv.HTTPAddr()+"/pipeline",
		"pprof", "http://"+srv.HTTPAddr()+"/debug/pprof/")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()

	for {
		select {
		case <-ticker.C:
			beats := 0
			hb := store.HeartbeatLog()
			for _, id := range hb.Routers() {
				beats += hb.Count(id)
			}
			rc := store.RowCounts()
			log.Info("collection progress",
				"routers", rc.Routers, "heartbeats", beats,
				"uptime", rc.Uptime, "capacity", rc.Capacity,
				"counts", rc.Counts, "wifi", rc.WiFi,
				"flows", rc.Flows)
		case <-stop:
			log.Info("shutting down", "out", *out)
			if err := srv.Close(); err != nil {
				log.Warn("close", "err", err)
			}
			if segStore != nil {
				if err := segStore.Close(); err != nil {
					log.Warn("segment store close", "err", err)
				}
			}
			if err := store.Save(*out); err != nil {
				log.Error("save failed", "err", err)
				os.Exit(1)
			}
			return
		}
	}
}
