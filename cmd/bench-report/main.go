// bench-report turns `go test -bench` text output (read from stdin)
// into the repo's benchmark-trajectory JSON (BENCH_<pr>.json). Each
// benchmark line becomes a record of its iteration count and every
// reported metric (ns/op, B/op, rows/s, ...); derived ratios the
// acceptance gates care about are computed when their inputs are
// present.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | bench-report -pr 5 -out BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkStoreAppend/mode=sharded/goroutines=8-4   431890   896.5 ns/op   1115470 uploads/s   210 B/op   1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Benchmarks that log during the run split across lines: the name is
// printed first, the results arrive later on an indented line. benchName
// and benchCont pick up the pieces.
var (
	benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\b`)
	benchCont = regexp.MustCompile(`^\s+(\d+)\s+(\d.*ns/op.*)$`)
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	PR         int                `json:"pr"`
	Go         string             `json:"go"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Benchmarks []benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
	// Notes spell out how num_cpu shapes the derived ratios, so a
	// reader of the JSON alone cannot misread a 1-CPU run as a
	// parallelism regression.
	Notes []string `json:"notes,omitempty"`
}

func main() {
	pr := flag.Int("pr", 5, "PR number for the trajectory file")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep := report{
		PR:         *pr,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Derived:    map[string]float64{},
	}

	record := func(name, iterations, metrics string) {
		iters, err := strconv.ParseInt(iterations, 10, 64)
		if err != nil {
			return
		}
		b := benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		// The metrics field alternates "<value> <unit>" pairs.
		fields := strings.Fields(metrics)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}

	pending := "" // name seen without results yet (logs split the line)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		if m := benchLine.FindStringSubmatch(line); m != nil {
			record(m[1], m[2], m[3])
			pending = ""
			continue
		}
		if m := benchName.FindStringSubmatch(line); m != nil {
			pending = m[1]
			continue
		}
		if pending != "" {
			if m := benchCont.FindStringSubmatch(line); m != nil {
				record(pending, m[1], m[2])
				pending = ""
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench-report: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench-report: no benchmark lines on stdin")
		os.Exit(1)
	}

	derive(&rep)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-report:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench-report:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench-report: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// parallelismCaveats declares, per derived-metric prefix, why the
// metric is meaningless (or misleading) on a single-CPU runner. Every
// derived metric recorded through recordDerived with parallel=true must
// have an entry here; the caveat notes are then generated automatically
// for whichever of those metrics are present, instead of being
// hand-written each PR.
var parallelismCaveats = map[string]string{
	"sharded_append_speedup_":       "lock striping has no parallelism to harvest on this runner; ~1x here is expected and >=2x holds on multi-core collectors",
	"cluster_front_route_overhead_": "the front, all nodes, and the client share one CPU, so the ratio overstates the front hop — the cluster's whole point (N cores ingesting in parallel) cannot show here",
	"segment_flush_rows_per_sec":    "the background flush goroutine competes with the writer for the single CPU, so flush throughput reads low relative to multi-core collectors",
}

// derive computes the trajectory ratios. Headline ones: the
// sharded-store speedup over the single-lock seed store (PR 5), the
// binary-wire ingest speedup (PR 7), cluster front-tier overhead
// (PR 8), and the segment-store throughput/latency ratios (PR 9).
func derive(rep *report) {
	nsop := func(name string) float64 {
		for _, b := range rep.Benchmarks {
			if b.Name == name {
				return b.Metrics["ns/op"]
			}
		}
		return 0
	}
	metric := func(name, key string) float64 {
		for _, b := range rep.Benchmarks {
			if b.Name == name {
				return b.Metrics[key]
			}
		}
		return 0
	}

	// recordDerived registers a ratio; parallel marks metrics whose value
	// depends on having CPUs to run concurrently, which triggers the
	// automatic single-core caveat below.
	var parallelMetrics []string
	recordDerived := func(name string, v float64, parallel bool) {
		rep.Derived[name] = v
		if parallel {
			parallelMetrics = append(parallelMetrics, name)
		}
	}

	for _, g := range []int{1, 8} {
		single := nsop(fmt.Sprintf("BenchmarkStoreAppend/mode=single-lock/goroutines=%d", g))
		sharded := nsop(fmt.Sprintf("BenchmarkStoreAppend/mode=sharded/goroutines=%d", g))
		if single > 0 && sharded > 0 {
			recordDerived(fmt.Sprintf("sharded_append_speedup_%d_goroutines", g), single/sharded, g > 1)
		}
	}
	// Binary wire format vs JSON on the same batch ingest workload.
	// Targets (PR 7): >= 5x rows/s/core, >= 10x fewer allocs per batch.
	jsonNs := nsop("BenchmarkIngestBatchWire/format=json")
	binNs := nsop("BenchmarkIngestBatchWire/format=binary")
	if jsonNs > 0 && binNs > 0 {
		recordDerived("binary_ingest_speedup", jsonNs/binNs, false)
	}
	jsonAllocs := metric("BenchmarkIngestBatchWire/format=json", "allocs/op")
	binAllocs := metric("BenchmarkIngestBatchWire/format=binary", "allocs/op")
	if jsonAllocs > 0 && binAllocs > 0 {
		recordDerived("binary_ingest_alloc_ratio", jsonAllocs/binAllocs, false)
	}
	// Cluster front tier (PR 8): what the routing hop and write
	// replication cost per batch relative to POSTing the same NPB1
	// bytes straight at one node, plus the failover handoff ceiling.
	direct := nsop("BenchmarkFrontRouteBatch/path=direct")
	for _, r := range []int{1, 2} {
		front := nsop(fmt.Sprintf("BenchmarkFrontRouteBatch/path=front-r%d", r))
		if direct > 0 && front > 0 {
			recordDerived(fmt.Sprintf("cluster_front_route_overhead_r%d", r), front/direct, true)
		}
	}
	if rows := metric("BenchmarkHandoffReplay", "rows/s"); rows > 0 {
		recordDerived("cluster_handoff_rows_per_sec", rows, false)
	}
	// Segment storage engine (PR 9): flush throughput, the cost of
	// scanning sealed segments relative to an in-memory store, and what
	// incremental partial-state folding saves over full recomputation
	// when one new segment seals.
	if rows := metric("BenchmarkSegmentFlush", "rows/s"); rows > 0 {
		recordDerived("segment_flush_rows_per_sec", rows, true)
	}
	memScan := nsop("BenchmarkAnalysisScan/source=memory")
	segScan := nsop("BenchmarkAnalysisScan/source=segments")
	if memScan > 0 && segScan > 0 {
		recordDerived("segment_scan_overhead", segScan/memScan, false)
	}
	fullFig := nsop("BenchmarkFigureRefresh/mode=full")
	incFig := nsop("BenchmarkFigureRefresh/mode=incremental")
	if fullFig > 0 && incFig > 0 {
		recordDerived("incremental_figure_speedup", fullFig/incFig, false)
	}

	if rep.NumCPU == 1 {
		// Single-core runner: attach the caveat to every
		// parallelism-derived metric present, so a reader of the JSON
		// alone cannot misread the numbers as a parallelism regression.
		for _, name := range parallelMetrics {
			why := ""
			for prefix, w := range parallelismCaveats {
				if strings.HasPrefix(name, prefix) {
					why = w
					break
				}
			}
			if why == "" {
				why = "this metric measures parallel speedup, which a single CPU cannot exhibit"
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf("num_cpu=1: %s: %s", name, why))
		}
	} else if _, ok := rep.Derived["cluster_front_route_overhead_r1"]; ok {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("cluster_front_route_overhead_* measured with front + 3 nodes + client sharing %d CPUs; it prices the extra hop and replication, not cluster-wide ingest capacity (which scales with nodes x cores)", rep.NumCPU))
	}
	sort.Strings(rep.Notes)
}
