// bismark-analyze loads data sets written by bismark-sim (or a live
// bismark-server) and regenerates the paper's tables and figures.
//
// Usage:
//
//	bismark-analyze -data ./data                 # every exhibit
//	bismark-analyze -data ./data -only "Figure 3"
package main

import (
	"flag"
	"fmt"
	"os"

	"natpeek"
	"natpeek/internal/telemetry"
)

func main() {
	data := flag.String("data", "data", "directory of CSV data sets")
	segments := flag.String("segments", "", "analyze a columnar segment directory (bismark-server -segments) instead of CSV data sets")
	only := flag.String("only", "", `regenerate a single exhibit, e.g. "Figure 19"`)
	flag.Parse()

	log := telemetry.SetupLogger("bismark-analyze")

	var (
		study *natpeek.Study
		err   error
	)
	if *segments != "" {
		study, err = natpeek.OpenSegmentStudy(*segments)
		if err != nil {
			log.Error("open failed", "segments", *segments, "err", err)
			os.Exit(1)
		}
	} else if study, err = natpeek.OpenStudy(*data); err != nil {
		log.Error("open failed", "dir", *data, "err", err)
		os.Exit(1)
	}
	if *only != "" {
		r, err := study.Report(*only)
		if err != nil {
			log.Error("report failed", "id", *only, "err", err)
			os.Exit(1)
		}
		fmt.Print(r.String())
		return
	}
	if err := study.WriteReports(os.Stdout); err != nil {
		log.Error("reports failed", "err", err)
		os.Exit(1)
	}
}
