// bismark-analyze loads data sets written by bismark-sim (or a live
// bismark-server) and regenerates the paper's tables and figures.
//
// Usage:
//
//	bismark-analyze -data ./data                 # every exhibit
//	bismark-analyze -data ./data -only "Figure 3"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"natpeek"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bismark-analyze: ")

	data := flag.String("data", "data", "directory of CSV data sets")
	only := flag.String("only", "", `regenerate a single exhibit, e.g. "Figure 19"`)
	flag.Parse()

	study, err := natpeek.OpenStudy(*data)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	if *only != "" {
		r, err := study.Report(*only)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r.String())
		return
	}
	if err := study.WriteReports(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
