// Spectrum survey: the §5.3 crowding comparison. We build a dense urban
// (developed) and a sparse (developing) neighbourhood, run a BISmark
// radio's same-channel scan in each, and show why the 2.4 GHz band is
// the contended one — including the scan's client-disassociation side
// effect that made the firmware throttle scanning.
//
//	go run ./examples/spectrum
package main

import (
	"fmt"

	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
	"natpeek/internal/stats"
	"natpeek/internal/wifi"
)

func main() {
	root := rng.New(31)

	fmt.Println("per-home visible APs on the default channels (200 homes per group):")
	us, _ := geo.Lookup("US")
	in, _ := geo.Lookup("IN")
	for _, c := range []geo.Country{us, in} {
		var aps24, aps5 []float64
		for i := 0; i < 200; i++ {
			p := household.Generate(c, i, root)
			aps24 = append(aps24, float64(p.NeighborAPs24))
			aps5 = append(aps5, float64(p.NeighborAPs5))
		}
		group := "developing"
		if c.Developed {
			group = "developed"
		}
		fmt.Printf("  %-10s 2.4GHz median=%.0f p90=%.0f   5GHz median=%.0f p90=%.0f\n",
			group, stats.Median(aps24), stats.Percentile(aps24, 90),
			stats.Median(aps5), stats.Percentile(aps5, 90))
	}

	// One concrete dense neighbourhood: what a channel-11 scan sees and
	// what it costs.
	fmt.Println("\na dense urban neighbourhood, seen from one router:")
	env := wifi.NewEnvironment()
	nr := rng.New(5)
	for i := 0; i < 24; i++ {
		ch := []int{1, 6, 11}[nr.Intn(3)] // neighbours cluster on 1/6/11
		env.AddAP(wifi.AP{
			BSSID: mac.FromOUI(0x0018F8, uint32(i)), SSID: fmt.Sprintf("ap-%d", i),
			Band: wifi.Band24, Channel: ch, RSSI: -40 - nr.Intn(45),
		})
	}
	env.AddAP(wifi.AP{BSSID: mac.FromOUI(0x001B11, 1), Band: wifi.Band5, Channel: 36, RSSI: -55})

	radio := wifi.NewRadio(wifi.Band24, env, rng.New(6))
	res := radio.Scan()
	fmt.Printf("  channel-11 scan: %d APs co-channel, %d interferers (overlapping channels)\n",
		len(res.VisibleAPs), len(env.InterferersOn(wifi.Band24, 11)))
	for i, ap := range res.VisibleAPs {
		if i == 5 {
			break
		}
		fmt.Printf("    %-8s ch=%d rssi=%d dBm\n", ap.SSID, ap.Channel, ap.RSSI)
	}
	radio5 := wifi.NewRadio(wifi.Band5, env, nil)
	fmt.Printf("  channel-36 scan: %d APs — the 5 GHz band is quiet\n", len(radio5.Scan().VisibleAPs))

	// Scanning isn't free: associated clients occasionally fall off.
	for i := 0; i < 8; i++ {
		radio.Associate(mac.FromOUI(0x001CB3, uint32(i)))
	}
	drops := 0
	scans := 200
	for i := 0; i < scans; i++ {
		r := radio.Scan()
		drops += r.ClientsDropped
		for i := 0; i < 8; i++ { // clients re-associate between scans
			radio.Associate(mac.FromOUI(0x001CB3, uint32(i)))
		}
	}
	fmt.Printf("\nscan side effect: %d client disassociations across %d scans of an 8-client radio\n", drops, scans)
	fmt.Println("(this is why the firmware scans every 30 minutes instead of 10 when clients are associated)")
}
