// Usage caps: the uCap-style tool the paper's deployment carried (§3.1)
// and the web interface consenting users got (§3.2.2). A capped
// household's month of traffic runs through the cap manager — alerts
// fire as thresholds pass, heavy devices get throttled near the cap —
// and the router's web dashboard serves the same numbers over HTTP.
//
//	go run ./examples/usagecaps
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"natpeek/internal/capmgmt"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/rng"
	"natpeek/internal/trafficgen"
	"natpeek/internal/webui"
)

func main() {
	log.SetFlags(0)

	us, _ := geo.Lookup("US")
	home := household.Generate(us, 23, rng.New(12))
	for i := 24; len(home.Devices) < 4; i++ {
		home = household.Generate(us, i, rng.New(12))
	}
	gen := trafficgen.New(home)

	// A 50 GB plan — tight for this home.
	plan := capmgmt.Plan{MonthlyCapBytes: 50e9, BillingDay: 1}
	start := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	mgr := capmgmt.New(plan, start)
	policy := capmgmt.ThrottlePolicy{StartAt: 0.9, HeavyShare: 0.3}

	fmt.Printf("household %s: %d devices on a %d GB/month plan\n\n",
		home.ID, len(home.Devices), plan.MonthlyCapBytes/1e9)

	// Run a month of traffic through the manager.
	for d := 0; d < 30; d++ {
		day := start.Add(time.Duration(d) * 24 * time.Hour)
		dt := gen.GenerateDay(day, []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}})
		for _, f := range dt.Flows {
			for _, alert := range mgr.Record(f.Device.HW, f.UpBytes+f.DownBytes, f.Start) {
				fmt.Printf("  day %2d  ALERT: %s\n", d+1, alert)
			}
		}
		if d == 14 || d == 29 {
			// Stay inside the billing period: projecting at the first
			// instant of the next month would roll the period over.
			at := day.Add(24*time.Hour - time.Minute)
			fmt.Printf("  day %2d  used %.1f GB, projected %.1f GB (will exceed: %v)\n",
				d+1, float64(mgr.Used())/1e9,
				float64(mgr.Projection(at))/1e9, mgr.WillExceed(at))
		}
	}

	fmt.Println("\nend-of-month usage by device:")
	for i, du := range mgr.ByDevice() {
		if i == 5 {
			break
		}
		throttled := ""
		if policy.ShouldThrottle(mgr, du.Device) {
			throttled = "  [THROTTLED]"
		}
		fmt.Printf("  %s  %6.1f GB  (%4.1f%%)%s\n",
			du.Device, float64(du.Bytes)/1e9, du.Share*100, throttled)
	}

	// The web interface over real HTTP.
	now := start.Add(30*24*time.Hour - time.Minute)
	srv, err := webui.New("127.0.0.1:0", webui.Config{
		RouterID: home.ID,
		Usage: func() webui.UsageSnapshot {
			snap := webui.UsageSnapshot{
				GeneratedAt: now,
				CapBytes:    mgr.Cap(), UsedBytes: mgr.Used(),
				RemainingBytes: mgr.Remaining(), ProjectedBytes: mgr.Projection(now),
			}
			for _, du := range mgr.ByDevice() {
				snap.Devices = append(snap.Devices, webui.DeviceRow{
					Device: du.Device.String(), Bytes: du.Bytes, Share: du.Share,
				})
			}
			return snap
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/api/usage")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\nrouter dashboard live at http://%s — /api/usage returns %d bytes of JSON\n",
		srv.Addr(), len(body))
}
