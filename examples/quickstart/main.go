// Quickstart: run a scaled-down reproduction of the IMC'13 home-network
// study and print a few of its headline exhibits.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"natpeek"
)

func main() {
	log.SetFlags(0)

	// A 20%-scale deployment (≈26 homes) over two-week windows runs in a
	// few seconds and already shows the paper's shape.
	study := natpeek.NewStudy(natpeek.StudyConfig{
		Seed:  2013,
		Scale: 0.2,
		Short: 14 * 24 * time.Hour,
	})
	fmt.Printf("deployment: %d homes across 19 countries\n\n", len(study.World.Homes))

	if err := study.Run(); err != nil {
		log.Fatal(err)
	}

	for _, id := range []string{"Table 1", "Figure 3", "Figure 7", "Figure 19"} {
		r, err := study.Report(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r.String())
	}

	fmt.Println("run `go run ./cmd/bismark-sim -report` for the full 126-home study")
}
