// NAT view: the paper's title made concrete. From the wide area, every
// flow out of a home appears to come from one address — "traffic coming
// from any device in a home network appears to all be coming from a
// single device" (§1). The gateway behind the NAT sees what the outside
// cannot: which device owns which flow. This example forwards traffic
// from several devices through the router's data plane and prints both
// vantage points side by side.
//
//	go run ./examples/natview
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/dataset"
	"natpeek/internal/eventsim"
	"natpeek/internal/gateway"
	"natpeek/internal/mac"
	"natpeek/internal/nat"
	"natpeek/internal/ouidb"
	"natpeek/internal/packet"
	"natpeek/internal/rng"
)

type memSink struct{}

func (memSink) Heartbeat(string, time.Time)                                {}
func (memSink) UptimeReport(dataset.UptimeReport)                          {}
func (memSink) CapacityMeasure(dataset.CapacityMeasure)                    {}
func (memSink) DeviceCensus(dataset.DeviceCount, []dataset.DeviceSighting) {}
func (memSink) WiFiScan([]dataset.WiFiScan)                                {}
func (memSink) TrafficFlows([]dataset.FlowRecord)                          {}
func (memSink) TrafficThroughput([]dataset.ThroughputSample)               {}

func main() {
	log.SetFlags(0)
	wan := netip.MustParseAddr("203.0.113.5")
	clk := clock.NewSim(time.Date(2013, 4, 1, 20, 0, 0, 0, time.UTC))
	sched := eventsim.New(clk, rng.New(1))
	env := &gateway.Env{NAT: nat.New(nat.Config{WANAddr: wan})}
	agent := gateway.New(gateway.Config{
		ID:        "home-1",
		LANPrefix: netip.MustParsePrefix("192.168.1.0/24"),
		AnonKey:   []byte("natview"),
	}, memSink{}, env)
	agent.PowerOn(sched)

	gw := mac.MustParse("20:4e:7f:00:00:01")
	devices := []struct {
		name string
		hw   mac.Addr
		ip   netip.Addr
		dst  netip.Addr
		what string
	}{
		{"MacBook", mac.FromOUI(0xA4B197, 0x01), netip.MustParseAddr("192.168.1.10"),
			netip.MustParseAddr("199.16.156.6"), "twitter.com"},
		{"Roku", mac.FromOUI(0xB0A737, 0x02), netip.MustParseAddr("192.168.1.11"),
			netip.MustParseAddr("198.38.96.1"), "netflix.com"},
		{"iPhone", mac.FromOUI(0x28CFDA, 0x03), netip.MustParseAddr("192.168.1.12"),
			netip.MustParseAddr("173.194.43.36"), "google.com"},
		{"Xbox", mac.FromOUI(0x7CED8D, 0x04), netip.MustParseAddr("192.168.1.13"),
			netip.MustParseAddr("208.85.58.10"), "xboxlive"},
	}

	type wanFlow struct {
		srcIP   netip.Addr
		srcPort uint16
		dst     netip.Addr
		what    string
	}
	var observed []wanFlow
	for i, d := range devices {
		frame := packet.NewBuilder(d.hw, gw).TCPv4(d.ip, d.dst,
			packet.TCP{SrcPort: uint16(50000 + i), DstPort: 443, Flags: packet.FlagSYN}, 64, nil)
		err := agent.ForwardUp(frame, clk.Now(), func(wire []byte, _ time.Time) {
			p, err := packet.Decode(wire)
			if err != nil {
				log.Fatal(err)
			}
			sp, _ := p.Ports()
			observed = append(observed, wanFlow{p.SrcIP(), sp, p.DstIP(), d.what})
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	clk.Advance(time.Second)

	fmt.Println("what the wide area sees (a measurement server, the ISP, a remote site):")
	for _, f := range observed {
		fmt.Printf("  %v:%-5d → %-16v (%s)\n", f.srcIP, f.srcPort, f.dst, f.what)
	}
	fmt.Println("  → four different devices, one source address. The home is opaque.")

	fmt.Println("\nwhat the gateway behind the NAT knows:")
	for _, f := range observed {
		ep, err := agent.AttributeExternal("tcp", f.srcPort)
		if err != nil {
			log.Fatal(err)
		}
		var name, manu string
		for _, d := range devices {
			if d.ip == ep.Addr {
				name = d.name
				manu = ouidb.Manufacturer(d.hw)
			}
		}
		fmt.Printf("  wan port %-5d = %v:%-5d  %-8s (%s)\n",
			f.srcPort, ep.Addr, ep.Port, name, manu)
	}
	fmt.Println("\nthe per-device attribution above is what makes the study's Traffic data")
	fmt.Println("set possible — and it only exists at the in-home vantage point.")
}
