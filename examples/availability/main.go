// Availability archetypes: build the three kinds of home the paper's
// Fig. 6 shows — always-on (US), router-as-appliance (CN), and a flaky
// ISP — run their heartbeat streams through the real gap analysis, and
// render the availability strips.
//
//	go run ./examples/availability
package main

import (
	"fmt"
	"strings"
	"time"

	"natpeek/internal/geo"
	"natpeek/internal/heartbeat"
	"natpeek/internal/household"
	"natpeek/internal/rng"
)

func main() {
	root := rng.New(99)
	from := time.Date(2013, 2, 22, 0, 0, 0, 0, time.UTC)
	to := from.Add(17 * 24 * time.Hour)

	us, _ := geo.Lookup("US")
	cn, _ := geo.Lookup("CN")

	// Find one home per archetype by drawing until the profile matches.
	alwaysOn := findHome(us, root, func(p *household.Profile) bool { return !p.Appliance })
	appliance := findHome(cn, root, func(p *household.Profile) bool { return p.Appliance })
	flaky := findHome(us, root, func(p *household.Profile) bool {
		if p.Appliance {
			return false
		}
		// Heavily interrupted despite staying powered: compare power vs
		// online time.
		on := household.TotalDuration(p.PowerOnIntervals(from, to))
		online := household.TotalDuration(p.OnlineIntervals(from, to))
		return on > online+12*time.Hour
	})

	show := func(name string, p *household.Profile) {
		log := heartbeat.NewLog()
		online := p.OnlineIntervals(from, to)
		for _, iv := range online {
			n := int(iv.Duration() / heartbeat.Interval)
			if n < 1 {
				n = 1
			}
			log.RecordRun(p.ID, heartbeat.Run{Start: iv.Start, Interval: heartbeat.Interval, Count: n})
		}
		downs := log.Downtimes(p.ID, from, to, 0)
		up := log.UptimeFraction(p.ID, from, to, 0)
		fmt.Printf("%s (%s): uptime %.1f%%, %d downtimes ≥10min\n",
			name, p.ID, up*100, len(downs))
		for d := 0; d < 10; d++ {
			day := from.Add(time.Duration(d) * 24 * time.Hour)
			var b strings.Builder
			fmt.Fprintf(&b, "  %s ", day.Format("01-02"))
			for h := 0; h < 24; h++ {
				at := day.Add(time.Duration(h)*time.Hour + 30*time.Minute)
				if household.CoveredAt(online, at) {
					b.WriteByte('#')
				} else {
					b.WriteByte('.')
				}
			}
			fmt.Println(b.String())
		}
		fmt.Println()
	}

	fmt.Println("(a) always-on household — typical of developed deployments")
	show("always-on", alwaysOn)
	fmt.Println("(b) router as appliance — evenings and weekends only (Fig. 6b)")
	show("appliance", appliance)
	fmt.Println("(c) powered on, flaky ISP — downtime without power-downs (Fig. 6c)")
	show("flaky-isp", flaky)
}

func findHome(c geo.Country, root *rng.Stream, pred func(*household.Profile) bool) *household.Profile {
	for i := 0; i < 500; i++ {
		p := household.Generate(c, i, root)
		if pred(p) {
			return p
		}
	}
	// Fall back to the first draw rather than failing the demo.
	return household.Generate(c, 0, root)
}
