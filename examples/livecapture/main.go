// Live capture: run the full platform over real sockets on loopback —
// a collection server, a gateway agent reporting to it, and synthetic
// device traffic rendered as real Ethernet frames pushed through the
// capture pipeline (DNS sniffing, flow attribution, anonymization).
//
//	go run ./examples/livecapture
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/collector"
	"natpeek/internal/dataset"
	"natpeek/internal/eventsim"
	"natpeek/internal/gateway"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/linksim"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
	"natpeek/internal/trafficgen"
	"natpeek/internal/wifi"
)

func main() {
	log.SetFlags(0)

	// 1. Collection server on ephemeral loopback ports.
	store := dataset.NewSharded(0)
	srv, err := collector.NewServer("127.0.0.1:0", "127.0.0.1:0", store)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("collection server: heartbeats udp://%s, uploads http://%s\n",
		srv.UDPAddr(), srv.HTTPAddr())

	// 2. Gateway agent in a synthetic US home, reporting over the wire.
	us, _ := geo.Lookup("US")
	home := household.Generate(us, 17, rng.New(4))
	cli, err := collector.NewClient("live-home-1", "US", srv.UDPAddr(), srv.HTTPAddr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	start := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewSim(start)
	sched := eventsim.New(clk, rng.New(5))
	env := &gateway.Env{
		Link: linksim.NewLink(clk, rng.New(6),
			linksim.Config{RateBps: home.UpBps, BufferBytes: home.BufferUpBytes},
			linksim.Config{RateBps: home.DownBps, BufferBytes: 1 << 20}),
		Radio24: wifi.NewRadio(wifi.Band24, wifi.NewEnvironment(), rng.New(7)),
		Radio5:  wifi.NewRadio(wifi.Band5, wifi.NewEnvironment(), rng.New(8)),
	}
	agent := gateway.New(gateway.Config{
		ID:             "live-home-1",
		LANPrefix:      netip.MustParsePrefix("192.168.1.0/24"),
		AnonKey:        []byte("live-capture-demo"),
		TrafficConsent: true,
	}, cli, env)
	agent.PowerOn(sched)

	// 3. Generate a day of flows and replay them as real frames through
	// the agent's passive monitor.
	gen := trafficgen.New(home)
	day := gen.GenerateDay(start, []household.Interval{{Start: start, End: start.Add(24 * time.Hour)}})
	gw := mac.MustParse("20:4e:7f:00:00:01")
	frames := 0
	deviceIPs := map[mac.Addr]netip.Addr{}
	nextIP := netip.MustParseAddr("192.168.1.10")
	frameRnd := rng.New(9)
	for i, flow := range day.Flows {
		if i >= 40 { // keep the demo quick
			break
		}
		ip, ok := deviceIPs[flow.Device.HW]
		if !ok {
			ip = nextIP
			deviceIPs[flow.Device.HW] = ip
			nextIP = nextIP.Next()
		}
		for _, fr := range trafficgen.FramesForFlow(flow, trafficgen.FrameOpts{
			GatewayMAC: gw, DeviceIP: ip, MaxDataPackets: 20,
		}, frameRnd) {
			agent.HandleFrame(fr.Raw, fr.Up, fr.At)
			frames++
		}
	}
	fmt.Printf("replayed %d frames from %d flows across %d devices\n",
		frames, min(40, len(day.Flows)), len(deviceIPs))

	// 4. Advance simulated time so the agent heartbeats, censuses, and
	// flushes its traffic buffers to the server.
	clk.Advance(13 * time.Hour)
	agent.PowerOff(clk.Now())

	// 5. Wait for the UDP heartbeats to drain, then inspect the server.
	deadline := time.Now().Add(3 * time.Second)
	for store.Heartbeats.Count("live-home-1") == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	st := store.Merge()
	fmt.Printf("\nserver-side view of the home:\n")
	fmt.Printf("  heartbeats received: %d\n", st.Heartbeats.Count("live-home-1"))
	fmt.Printf("  uptime reports:      %d\n", len(st.Uptime))
	fmt.Printf("  capacity measures:   %d\n", len(st.Capacity))
	for _, c := range st.Capacity {
		fmt.Printf("    up=%.2f Mbps down=%.2f Mbps (provisioned %.2f/%.2f)\n",
			c.UpBps/1e6, c.DownBps/1e6, home.UpBps/1e6, home.DownBps/1e6)
	}
	fmt.Printf("  flows exported:      %d (all anonymized)\n", len(st.Flows))
	shown := 0
	for _, f := range st.Flows {
		if f.Domain == "" || shown == 5 {
			continue
		}
		fmt.Printf("    dev=%s domain=%-24s %6.1f KB down\n",
			f.Device, f.Domain, float64(f.DownBytes)/1e3)
		shown++
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
