// Device fingerprinting: the paper's §7 extension. A device's MAC OUI
// reveals only its manufacturer; its traffic mix reveals what it *is*.
// This example reproduces the Fig. 20 observation (an iMac-style desktop
// vs a Roku-style streamer have unmistakably different domain mixes) and
// then trains the nearest-centroid classifier on synthetic homes and
// reports per-kind accuracy.
//
//	go run ./examples/fingerprint
package main

import (
	"fmt"
	"sort"
	"time"

	"natpeek/internal/domains"
	"natpeek/internal/fingerprint"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/mac"
	"natpeek/internal/ouidb"
	"natpeek/internal/rng"
	"natpeek/internal/trafficgen"
)

func main() {
	us, _ := geo.Lookup("US")
	root := rng.New(77)
	day0 := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

	// --- Part 1: the Fig. 20 contrast -----------------------------------
	fmt.Println("Fig. 20 reproduction — domain mixes of two devices in one home:")
	var desktopSig, streamerSig fingerprint.Signature
	var desktopHW, streamerHW mac.Addr
	for h := 0; h < 200 && (desktopSig == nil || streamerSig == nil); h++ {
		home := household.Generate(us, h, root)
		sigs, kinds := homeSignatures(home, day0, 7)
		for hw, sig := range sigs {
			switch kinds[hw] {
			case household.KindDesktop:
				if desktopSig == nil && sig[domains.Cloud] > 0.1 {
					desktopSig, desktopHW = sig, hw
				}
			case household.KindMediaBox:
				if streamerSig == nil {
					streamerSig, streamerHW = sig, hw
				}
			}
		}
	}
	printSig("desktop ("+ouidb.Manufacturer(desktopHW)+")", desktopSig)
	printSig("media box ("+ouidb.Manufacturer(streamerHW)+")", streamerSig)

	// --- Part 2: classification accuracy --------------------------------
	fmt.Println("\nnearest-centroid classification over 60 homes (train 30 / test 30):")
	clf := fingerprint.NewClassifier()
	var tests []fingerprint.Labeled
	interesting := map[household.DeviceKind]bool{
		household.KindMediaBox: true, household.KindConsole: true,
		household.KindNAS: true, household.KindLaptop: true,
		household.KindDesktop: true,
	}
	for h := 0; h < 60; h++ {
		home := household.Generate(us, 1000+h, root)
		sigs, kinds := homeSignatures(home, day0, 5)
		for hw, sig := range sigs {
			k := kinds[hw]
			if !interesting[k] {
				continue
			}
			l := fingerprint.Labeled{Label: string(k), Sig: sig}
			if h < 30 {
				clf.Train(l.Label, l.Sig)
			} else {
				tests = append(tests, l)
			}
		}
	}
	matrix, acc := clf.Confusion(tests)
	fmt.Printf("overall accuracy: %.0f%% over %d devices (%d kinds)\n\n",
		acc*100, len(tests), len(clf.Labels()))
	labels := clf.Labels()
	fmt.Printf("%-10s", "truth\\pred")
	for _, l := range labels {
		fmt.Printf("%10s", l)
	}
	fmt.Println()
	var truths []string
	for tr := range matrix {
		truths = append(truths, tr)
	}
	sort.Strings(truths)
	for _, tr := range truths {
		fmt.Printf("%-10s", tr)
		for _, l := range labels {
			fmt.Printf("%10d", matrix[tr][l])
		}
		fmt.Println()
	}
}

func homeSignatures(home *household.Profile, day0 time.Time, days int) (map[mac.Addr]fingerprint.Signature, map[mac.Addr]household.DeviceKind) {
	gen := trafficgen.New(home)
	sigs := map[mac.Addr]fingerprint.Signature{}
	kinds := map[mac.Addr]household.DeviceKind{}
	for d := 0; d < days; d++ {
		day := day0.Add(time.Duration(d) * 24 * time.Hour)
		dt := gen.GenerateDay(day, []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}})
		for _, f := range dt.Flows {
			sig := sigs[f.Device.HW]
			if sig == nil {
				sig = fingerprint.Signature{}
				sigs[f.Device.HW] = sig
				kinds[f.Device.HW] = f.Device.Kind
			}
			sig[f.Category] += float64(f.UpBytes + f.DownBytes)
		}
	}
	for _, sig := range sigs {
		sig.Normalize()
	}
	return sigs, kinds
}

func printSig(name string, sig fingerprint.Signature) {
	if sig == nil {
		fmt.Printf("  %-28s (not found)\n", name)
		return
	}
	type cs struct {
		c string
		v float64
	}
	var parts []cs
	for c, v := range sig {
		parts = append(parts, cs{string(c), v})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].v > parts[j].v })
	fmt.Printf("  %-28s", name)
	for i, p := range parts {
		if i == 4 {
			break
		}
		fmt.Printf(" %s=%.0f%%", p.c, p.v*100)
	}
	fmt.Println()
}
