package segment_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
	"natpeek/internal/segment"
)

var t0 = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

// addRandomRow appends one deterministic pseudo-random row for router id
// to st; kind selection and contents are pure functions of r.
func addRandomRow(st *dataset.Store, id string, i int, r *rng.Stream) {
	switch r.Intn(7) {
	case 0:
		st.Uptime = append(st.Uptime, dataset.UptimeReport{
			RouterID: id, ReportedAt: t0.Add(time.Duration(i) * time.Minute),
			Uptime: time.Duration(r.Intn(1e6)) * time.Second,
		})
	case 1:
		st.Capacity = append(st.Capacity, dataset.CapacityMeasure{
			RouterID: id, MeasuredAt: t0.Add(time.Duration(i) * time.Minute),
			UpBps: float64(r.Intn(1e7)), DownBps: float64(r.Intn(1e8)),
		})
	case 2:
		st.Counts = append(st.Counts, dataset.DeviceCount{
			RouterID: id, At: t0.Add(time.Duration(i) * time.Hour),
			Wired: r.Intn(4), W24: r.Intn(8), W5: r.Intn(5),
		})
	case 3:
		st.Sightings = append(st.Sightings, dataset.DeviceSighting{
			RouterID: id, At: t0.Add(time.Duration(i) * time.Hour),
			Device: mac.FromOUI(0x001CB3, uint32(r.Intn(1<<20))), Kind: dataset.ConnKind(r.Intn(3)),
		})
	case 4:
		st.WiFi = append(st.WiFi, dataset.WiFiScan{
			RouterID: id, At: t0.Add(time.Duration(i) * 10 * time.Minute),
			Band: "2.4GHz", Channel: 1 + r.Intn(11), VisibleAPs: r.Intn(20), Clients: r.Intn(6),
		})
	case 5:
		st.Flows = append(st.Flows, dataset.FlowRecord{
			RouterID: id, Device: mac.FromOUI(0x001CB3, uint32(r.Intn(1<<20))),
			Domain: "netflix.com", Proto: "tcp",
			First: t0.Add(time.Duration(i) * time.Minute), Last: t0.Add(time.Duration(i+5) * time.Minute),
			UpBytes: int64(r.Intn(1e6)), DownBytes: int64(r.Intn(1e7)),
			UpPkts: int64(r.Intn(1e3)), DownPkts: int64(r.Intn(1e4)), Conns: 1 + int64(r.Intn(9)),
		})
	default:
		st.Throughput = append(st.Throughput, dataset.ThroughputSample{
			RouterID: id, Minute: t0.Add(time.Duration(i) * time.Minute), Dir: "down",
			PeakBps: float64(r.Intn(1e8)), TotalBytes: int64(r.Intn(1e7)),
		})
	}
}

func randomStore(seed uint64, rows int) *dataset.Store {
	st := &dataset.Store{RouterCountry: make(map[string]string)}
	r := rng.New(seed)
	for i := 0; i < rows; i++ {
		id := fmt.Sprintf("bismark-%03d", r.Intn(12))
		st.RouterCountry[id] = "US"
		addRandomRow(st, id, i, r.Child("row").ChildN("i", i))
	}
	return st
}

func sameRows(t *testing.T, want, got *dataset.Store, what string) {
	t.Helper()
	if !reflect.DeepEqual(want.Uptime, got.Uptime) {
		t.Errorf("%s: uptime rows differ (%d vs %d)", what, len(want.Uptime), len(got.Uptime))
	}
	if !reflect.DeepEqual(want.Capacity, got.Capacity) {
		t.Errorf("%s: capacity rows differ", what)
	}
	if !reflect.DeepEqual(want.Counts, got.Counts) {
		t.Errorf("%s: counts rows differ", what)
	}
	if !reflect.DeepEqual(want.Sightings, got.Sightings) {
		t.Errorf("%s: sightings rows differ", what)
	}
	if !reflect.DeepEqual(want.WiFi, got.WiFi) {
		t.Errorf("%s: wifi rows differ", what)
	}
	if !reflect.DeepEqual(want.Flows, got.Flows) {
		t.Errorf("%s: flow rows differ (%d vs %d)", what, len(want.Flows), len(got.Flows))
	}
	if !reflect.DeepEqual(want.Throughput, got.Throughput) {
		t.Errorf("%s: throughput rows differ", what)
	}
	if !reflect.DeepEqual(want.RouterCountry, got.RouterCountry) {
		t.Errorf("%s: roster differs", what)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := randomStore(7, 4000)
	keys := []segment.Key{{Router: "bismark-000", Key: "k1"}, {Router: "bismark-001", Key: "k2"}}
	seq := segment.SeqRange{First: 3, Last: 5}
	repl := []segment.SeqRange{{First: 3, Last: 3}, {First: 4, Last: 5}}

	b := segment.Encode(st, keys, seq, repl)
	got, gotKeys, meta, err := segment.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, st, got, "round trip")
	if !reflect.DeepEqual(keys, gotKeys) {
		t.Errorf("keys differ: %v vs %v", keys, gotKeys)
	}
	if meta.Seq != seq || !reflect.DeepEqual(meta.Replaces, repl) {
		t.Errorf("meta seq/replaces differ: %+v", meta)
	}
	if !meta.HasTimeRange || meta.MinTime.After(meta.MaxTime) {
		t.Errorf("bad time range: %+v", meta)
	}
	if meta.Rows.Uptime != len(st.Uptime) || meta.Rows.Flows != len(st.Flows) {
		t.Errorf("footer row counts differ: %+v", meta.Rows)
	}

	// Size sanity: the columnar encoding should be several times
	// smaller than the CSV representation of the same rows.
	dir := t.TempDir()
	if err := st.Save(dir); err == nil {
		csvBytes := int64(0)
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if fi, err := e.Info(); err == nil {
				csvBytes += fi.Size()
			}
		}
		if int64(len(b)) >= csvBytes {
			t.Errorf("segment (%d B) not smaller than CSV (%d B)", len(b), csvBytes)
		}
	}
}

func TestEncodeDecodeEdgeTimes(t *testing.T) {
	st := &dataset.Store{RouterCountry: map[string]string{}}
	// Zero times, pre-epoch times, nanosecond precision, and a non-UTC
	// zone (decodes to the same instant in UTC).
	loc := time.FixedZone("X", 5*3600+1800)
	st.Flows = []dataset.FlowRecord{
		{RouterID: "r", Proto: "tcp", First: time.Time{}, Last: time.Time{}},
		{RouterID: "r", Proto: "udp",
			First: time.Date(1969, 7, 20, 20, 17, 40, 123456789, time.UTC),
			Last:  time.Date(2013, 4, 1, 0, 0, 0, 999999999, time.UTC)},
		{RouterID: "r", Proto: "tcp",
			First: time.Date(2013, 4, 1, 12, 0, 0, 1, loc),
			Last:  time.Date(2013, 4, 1, 12, 0, 0, 2, loc)},
	}
	b := segment.Encode(st, nil, segment.SeqRange{}, nil)
	got, _, _, err := segment.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Flows[0].First.IsZero() || !got.Flows[0].Last.IsZero() {
		t.Error("zero times did not round-trip to zero")
	}
	for i := 1; i < 3; i++ {
		for _, pair := range [][2]time.Time{
			{st.Flows[i].First, got.Flows[i].First},
			{st.Flows[i].Last, got.Flows[i].Last},
		} {
			if !pair[0].Equal(pair[1]) {
				t.Errorf("flow %d: %v decoded as %v", i, pair[0], pair[1])
			}
			if pair[1].Location() != time.UTC {
				t.Errorf("flow %d decoded in %v, want UTC", i, pair[1].Location())
			}
		}
	}
}

// applySequence drives the identical serial upload sequence into any
// IngestStore.
func applySequence(s dataset.IngestStore, n int, seed uint64) {
	applyChunked(s, n, seed, nil)
}

// applyChunked is applySequence with an optional flush hook invoked
// every chunk of 1/4 of the rows — lets tests force several sealed
// segments deterministically instead of racing the background flusher.
func applyChunked(s dataset.IngestStore, n int, seed uint64, flush func()) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("bismark-%03d", r.Intn(12))
		s.Apply(id, fmt.Sprintf("k:%s:%d", id, i), func(st *dataset.Store) {
			st.RouterCountry[id] = "US"
			addRandomRow(st, id, i, r.Child("row").ChildN("i", i))
		})
		if flush != nil && i > 0 && i%(n/4) == 0 {
			flush()
		}
	}
}

// TestMergeMatchesSharded is the substitution contract: the same serial
// upload sequence through the segment store (forcing several flushes)
// and through the plain sharded store must merge to identical per-kind
// slices — the invariant the verify golden byte-identity rests on.
func TestMergeMatchesSharded(t *testing.T) {
	const n = 3000
	plain := dataset.NewSharded(0)
	applySequence(plain, n, 99)

	s, err := segment.Open(segment.Options{Dir: t.TempDir(), FlushRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applyChunked(s, n, 99, func() { s.Flush() })
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Segments()); got < 2 {
		t.Fatalf("expected several sealed segments, got %d", got)
	}
	sameRows(t, plain.Merge(), s.Merge(), "segment vs sharded")

	rc, prc := s.RowCounts(), plain.RowCounts()
	if rc != prc {
		t.Errorf("RowCounts differ: %+v vs %+v", rc, prc)
	}
}

// TestDedupeAcrossFlush pins exactly-once across the rotation boundary:
// keys applied before a flush must be rejected when replayed after it.
func TestDedupeAcrossFlush(t *testing.T) {
	s, err := segment.Open(segment.Options{Dir: t.TempDir(), FlushRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applySequence(s, 500, 5)
	before := s.RowCounts()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Replay the identical sequence: every key must dedupe.
	applySequence(s, 500, 5)
	if after := s.RowCounts(); after != before {
		t.Fatalf("replays applied across flush: %+v vs %+v", after, before)
	}
}

// TestReopenRestoresRowsAndDedupe is the restart path: all flushed rows
// reload, and replays of flushed keys are still rejected — the durable
// half of the dedupe handoff (the key block inside the segment).
func TestReopenRestoresRowsAndDedupe(t *testing.T) {
	dir := t.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, FlushRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	applySequence(s, 1000, 11)
	want := s.Merge()
	if err := s.Close(); err != nil { // Close flushes the tail
		t.Fatal(err)
	}

	s2, err := segment.Open(segment.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameRows(t, want, s2.Merge(), "reopened")
	if s2.DedupeLen() == 0 {
		t.Fatal("dedupe index empty after reopen")
	}
	before := s2.RowCounts()
	applySequence(s2, 1000, 11) // full replay
	if after := s2.RowCounts(); after != before {
		t.Fatalf("replays applied after reopen: %+v vs %+v", after, before)
	}
}

// TestKillBetweenFlushAndHandoff simulates dying the instant the
// segment rename commits, before any in-memory dedupe handoff can be
// observed: a fresh store opened on the directory must reload the rows
// and reject replays, purely from the on-disk key block.
func TestKillBetweenFlushAndHandoff(t *testing.T) {
	dir := t.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, FlushRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	applySequence(s, 400, 21)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := s.Merge()
	// "Kill": abandon s without Close; its memtable is empty (all rows
	// flushed), so the segment file is the entire durable state.
	s2, err := segment.Open(segment.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameRows(t, want, s2.Merge(), "post-kill")
	before := s2.RowCounts()
	applySequence(s2, 400, 21)
	if after := s2.RowCounts(); after != before {
		t.Fatalf("zero-duplication violated after kill: %+v vs %+v", after, before)
	}
}

// segFiles lists *.seg in dir sorted by name.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCrashTruncatedTailSegment: a tail segment torn mid-write (no
// trailer) must be quarantined on open; surviving segments reload with
// zero lost rows, and redelivery of the torn segment's uploads applies
// exactly once.
func TestCrashTruncatedTailSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, FlushRows: 1 << 20, NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	applySequence(s, 300, 31)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	firstHalf := s.Merge()
	r := rng.New(77)
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("extra-%02d", r.Intn(6))
		s.Apply(id, fmt.Sprintf("x:%s:%d", id, i), func(st *dataset.Store) {
			st.RouterCountry[id] = "BR"
			addRandomRow(st, id, i, r.Child("row").ChildN("i", i))
		})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	files := segFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("want 2 segments, got %v", files)
	}

	// Tear the tail: drop the last 100 bytes (trailer + footer tail).
	tail := files[1]
	b, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tail, b[:len(b)-100], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := segment.Open(segment.Options{Dir: dir, NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := segFiles(t, dir); len(got) != 1 {
		t.Fatalf("torn segment not quarantined: %v", got)
	}
	if _, err := os.Stat(tail + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	sameRows(t, firstHalf, s2.Merge(), "surviving rows")

	// The torn segment's uploads redeliver (their keys died with it)
	// and apply exactly once; the surviving segment's replays dedupe.
	applySequence(s2, 300, 31) // survivors: all rejected
	r = rng.New(77)
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("extra-%02d", r.Intn(6))
		if !s2.Apply(id, fmt.Sprintf("x:%s:%d", id, i), func(st *dataset.Store) {
			st.RouterCountry[id] = "BR"
			addRandomRow(st, id, i, r.Child("row").ChildN("i", i))
		}) {
			t.Fatalf("redelivered upload %d rejected — its key should have died with the torn segment", i)
		}
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	rc := s2.RowCounts()
	total := rc.Uptime + rc.Capacity + rc.Counts + rc.Sightings + rc.WiFi + rc.Flows + rc.Throughput
	if total != 600 {
		t.Fatalf("row conservation violated: %d rows, want 600", total)
	}
}

// TestCrashTornFooter: a bit flipped inside the footer (CRC mismatch)
// quarantines the file just like a truncation.
func TestCrashTornFooter(t *testing.T) {
	dir := t.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, FlushRows: 1 << 20, NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	applySequence(s, 200, 41)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files := segFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("want 1 segment, got %v", files)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-20] ^= 0xFF // inside the footer, upstream of the trailer CRC
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := segment.Open(segment.Options{Dir: dir, NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := segFiles(t, dir); len(got) != 0 {
		t.Fatalf("torn-footer segment not quarantined: %v", got)
	}
	if rc := s2.RowCounts(); rc.Uptime+rc.Flows+rc.Throughput+rc.Capacity+rc.Counts+rc.Sightings+rc.WiFi != 0 {
		t.Fatalf("rows from a corrupt segment: %+v", rc)
	}
	// All uploads redeliver and apply exactly once.
	applySequence(s2, 200, 41)
	rc := s2.RowCounts()
	if total := rc.Uptime + rc.Capacity + rc.Counts + rc.Sightings + rc.WiFi + rc.Flows + rc.Throughput; total != 200 {
		t.Fatalf("redelivery after quarantine: %d rows, want 200", total)
	}
}

// TestCrashTmpLeftover: an interrupted commit's .tmp file is removed at
// open and never loaded.
func TestCrashTmpLeftover(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "00000000000000ff-00000000000000ff.seg.tmp")
	if err := os.WriteFile(tmp, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := segment.Open(segment.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp file survived open: %v", err)
	}
}

// TestCompactionPreservesOrderAndHealsCrash: compacting adjacent
// segments preserves the merged view byte-for-byte, and a crash between
// the compacted segment's rename and the input deletion (both files
// present at open) resolves to exactly one copy of every row.
func TestCompactionPreservesOrderAndHealsCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, FlushRows: 150, NoCompaction: true, CompactAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	applyChunked(s, 1000, 51, func() { s.Flush() })
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := s.Merge()
	inputs := segFiles(t, dir)
	if len(inputs) < 3 {
		t.Fatalf("want >=3 segments before compaction, got %v", inputs)
	}
	// Stash the inputs to resurrect them afterwards (simulating the
	// crash window where deletion never ran).
	stash := make(map[string][]byte)
	for _, p := range inputs {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		stash[p] = b
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := segFiles(t, dir)
	if len(after) >= len(inputs) {
		t.Fatalf("compaction did not reduce segments: %v -> %v", inputs, after)
	}
	sameRows(t, want, s.Merge(), "post-compaction merge")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: the replaced inputs reappear next to the
	// compacted segment.
	for p, b := range stash {
		if _, err := os.Stat(p); os.IsNotExist(err) {
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	s2, err := segment.Open(segment.Options{Dir: dir, NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameRows(t, want, s2.Merge(), "post-crash-heal merge")
	// The superseded inputs must be gone from disk again.
	if got := segFiles(t, dir); len(got) != len(after) {
		t.Fatalf("supersession did not delete covered inputs: %v", got)
	}
}

// TestSubscribeReplaysAndFollows: a subscriber sees every sealed chunk
// exactly once — existing segments at subscription, then future seals.
func TestSubscribeReplaysAndFollows(t *testing.T) {
	dir := t.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, FlushRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applySequence(s, 100, 61)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	rows := 0
	chunks := 0
	if err := s.Subscribe(func(chunk *dataset.Store) {
		chunks++
		rows += len(chunk.Uptime) + len(chunk.Capacity) + len(chunk.Counts) +
			len(chunk.Sightings) + len(chunk.WiFi) + len(chunk.Flows) + len(chunk.Throughput)
	}); err != nil {
		t.Fatal(err)
	}
	if chunks != 1 || rows != 100 {
		t.Fatalf("replay saw %d chunks / %d rows, want 1/100", chunks, rows)
	}

	r := rng.New(88)
	for i := 0; i < 50; i++ {
		id := "late-0"
		s.Apply(id, fmt.Sprintf("late:%d", i), func(st *dataset.Store) {
			st.RouterCountry[id] = "US"
			addRandomRow(st, id, i, r.ChildN("i", i))
		})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if chunks != 2 || rows != 150 {
		t.Fatalf("after second seal: %d chunks / %d rows, want 2/150", chunks, rows)
	}
}

// TestAgeFlush: a small, old memtable reaches disk via FlushAge without
// any explicit Flush.
func TestAgeFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, FlushRows: 1 << 20, FlushAge: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Append("r1", func(st *dataset.Store) {
		st.Uptime = append(st.Uptime, dataset.UptimeReport{RouterID: "r1", ReportedAt: t0})
	})
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Segments()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age-based flush never sealed the memtable")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOpenRejectsMissingDir pins the Options validation.
func TestOpenRejectsMissingDir(t *testing.T) {
	if _, err := segment.Open(segment.Options{}); err == nil ||
		!strings.Contains(err.Error(), "Dir required") {
		t.Fatalf("err = %v", err)
	}
}
