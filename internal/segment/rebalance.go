// Planned ownership transfer against the durable store. Extraction must
// reach rows that have already been sealed into NPS1 segments, not just
// the live memtable, so moved routers leave nothing behind on disk. A
// matched segment is rewritten in place (same path, same seq range, same
// replaces list) with only the surviving rows — but with its key block
// untouched: the source keeps remembering every moved upload's
// idempotency key, across restarts, so client retries that straddle the
// move still dedupe here instead of resurrecting rows that now live at
// the new owner.
package segment

import (
	"os"

	"natpeek/internal/dataset"
)

var _ dataset.RebalanceStore = (*Store)(nil)

// ScanRouters implements dataset.RebalanceStore: a snapshot of the
// matched routers' rows (segments, sealed generation, live memtable —
// in that order) plus their remembered idempotency keys. Read-only and
// advisory; ExtractRouters is the atomic operation.
func (s *Store) ScanRouters(match func(string) bool) (*dataset.Store, []dataset.RouterKey) {
	hit, _ := dataset.SplitRouters(s.Merge(), match)
	hit.Heartbeats = nil
	s.rot.RLock()
	mem := s.mem
	s.rot.RUnlock()
	return hit, mem.sh.MatchedKeys(match)
}

// ExtractRouters implements dataset.RebalanceStore. It runs under
// flushMu, so no seal, flush, or compaction can race it; appliers keep
// writing to the live memtable throughout, and because the memtable is
// extracted last, a row that lands mid-extract is either caught here or
// left for the caller's next pass — never dropped.
//
// Sealed segments are rewritten without the moved rows via the same
// tmp→fsync→rename discipline as a flush, and the in-memory Meta is
// rebuilt alongside (RowCounts serves from cached footers). A segment
// that fails to read or rewrite is skipped with the error recorded in
// LastFlushError: its rows stay at the source — misplaced but present —
// which the transfer engine prefers over any chance of loss.
func (s *Store) ExtractRouters(match func(string) bool) (*dataset.Store, []dataset.RouterKey) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	moved := &dataset.Store{RouterCountry: make(map[string]string)}

	s.segMu.RLock()
	files := append([]segFile(nil), s.segs...)
	frozen := s.frozen
	s.segMu.RUnlock()

	for _, f := range files {
		b, err := os.ReadFile(f.path)
		if err != nil {
			s.flushErr.Store(err.Error())
			continue
		}
		st, ks, _, err := Decode(b)
		if err != nil {
			s.flushErr.Store(err.Error())
			continue
		}
		hit, rest := dataset.SplitRouters(st, match)
		if rowsOf(hit) == 0 && len(hit.RouterCountry) == 0 {
			continue
		}
		nb := Encode(rest, ks, f.meta.Seq, f.meta.Replaces)
		if err := writeAtomic(f.path, nb); err != nil {
			s.flushErr.Store(err.Error())
			continue
		}
		nm := metaOf(rest, f.meta.Seq, f.meta.Replaces, len(ks))
		s.segMu.Lock()
		for i := range s.segs {
			if s.segs[i].path == f.path {
				s.segs[i].meta = nm
			}
		}
		s.segMu.Unlock()
		appendStore(moved, hit)
	}

	if frozen != nil {
		hit, _ := frozen.sh.ExtractRouters(match)
		frozen.rows.Add(-int64(rowsOf(hit)))
		appendStore(moved, hit)
	}

	s.rot.RLock()
	mem := s.mem
	s.rot.RUnlock()
	hit, keys := mem.sh.ExtractRouters(match)
	mem.rows.Add(-int64(rowsOf(hit)))
	appendStore(moved, hit)

	s.segMu.Lock()
	for id, cc := range s.roster {
		if match(id) {
			moved.RouterCountry[id] = cc
			delete(s.roster, id)
		}
	}
	s.segMu.Unlock()

	return moved, keys
}
