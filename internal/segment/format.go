// The NPS1 segment file format.
//
//	file    := magic "NPS1" | block… | footer | trailer
//	trailer := uint32le footerLen | uint32le crc32(footer) | magic "1SPN"
//	footer  := uvarint version (=1)
//	           uvarint firstSeq | uvarint lastSeq
//	           uvarint nReplaces | nReplaces × (uvarint firstSeq | uvarint lastSeq)
//	           byte hasTimeRange | [varint minSec | uvarint minNsec |
//	                                varint maxSec | uvarint maxNsec]
//	           uvarint nRoster | nRoster × (str routerID | str country)
//	           uvarint nBlocks | nBlocks × (uvarint blockKind | uvarint off |
//	                                        uvarint len | uvarint rows |
//	                                        uint32le crc32(payload))
//
// Blocks are column-major: one block per data set plus one for the
// idempotency keys the segment's rows were applied under (the durable
// half of the exactly-once handoff — see store.go). Within a block each
// column is written in full before the next, in struct-field order, so a
// reader that wants one column of one data set touches one contiguous
// byte range; the footer's offsets make the layout mmap/pread-friendly.
// The trailer is fixed-size so a reader finds the footer by seeking from
// the end; both the footer and every block carry CRC32s, and a block's
// CRC is only checked when that block is decoded.
//
// Heartbeats are deliberately absent: the heartbeat log is a shared
// run-length structure that is its own compact incremental form, and it
// is persisted by the CSV save path.
package segment

import (
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"natpeek/internal/dataset"
)

var (
	magicHead = []byte("NPS1")
	magicTail = []byte("1SPN")
)

const (
	formatVersion = 1
	trailerSize   = 4 + 4 + 4
	// maxBlocks bounds the footer's block count: one per known kind is
	// all a writer emits, but a reader tolerates (and skips) kinds it
	// does not know, within reason.
	maxBlocks = 64
)

// Block kinds. Values are stable on disk.
const (
	blkUptime = iota
	blkCapacity
	blkCounts
	blkSightings
	blkWiFi
	blkFlows
	blkThroughput
	blkKeys
)

// Key is one (router, idempotency key) pair applied into a segment's
// rows. Segments persist them so dedupe state survives restarts.
type Key struct {
	Router string
	Key    string
}

// SeqRange identifies the contiguous range of flush sequence numbers a
// segment file covers — a freshly flushed segment covers [n,n]; a
// compacted one covers the union of its inputs.
type SeqRange struct {
	First, Last uint64
}

// contains reports whether r covers all of o.
func (r SeqRange) contains(o SeqRange) bool {
	return r.First <= o.First && o.Last <= r.Last
}

type blockRef struct {
	kind uint64
	off  uint64
	len  uint64
	rows uint64
	crc  uint32
}

// Meta is everything a store needs to know about a segment without
// decoding its row blocks.
type Meta struct {
	Seq      SeqRange
	Replaces []SeqRange
	// MinTime/MaxTime span every row timestamp in the segment (zero
	// rows excluded); HasTimeRange is false for an all-metadata
	// segment. Compaction uses the range to find overlapping inputs.
	HasTimeRange     bool
	MinTime, MaxTime time.Time
	Roster           map[string]string
	Rows             dataset.RowCounts
	KeyRows          int

	blocks []blockRef
}

// Encode serializes rows (and the keys they were applied under) as one
// NPS1 segment covering seq. The store's per-kind slice order is
// preserved exactly — that invariant is what keeps Merge output, and
// therefore the verify golden snapshots, byte-identical when the segment
// store substitutes for the in-memory one.
func Encode(st *dataset.Store, keys []Key, seq SeqRange, replaces []SeqRange) []byte {
	out := make([]byte, 0, 4096)
	out = append(out, magicHead...)

	var blocks []blockRef
	addBlock := func(kind uint64, rows int, payload []byte) {
		blocks = append(blocks, blockRef{
			kind: kind,
			off:  uint64(len(out)),
			len:  uint64(len(payload)),
			rows: uint64(rows),
			crc:  crc32.ChecksumIEEE(payload),
		})
		out = append(out, payload...)
	}

	addBlock(blkUptime, len(st.Uptime), encodeUptime(st.Uptime))
	addBlock(blkCapacity, len(st.Capacity), encodeCapacity(st.Capacity))
	addBlock(blkCounts, len(st.Counts), encodeCounts(st.Counts))
	addBlock(blkSightings, len(st.Sightings), encodeSightings(st.Sightings))
	addBlock(blkWiFi, len(st.WiFi), encodeWiFi(st.WiFi))
	addBlock(blkFlows, len(st.Flows), encodeFlows(st.Flows))
	addBlock(blkThroughput, len(st.Throughput), encodeThroughput(st.Throughput))
	addBlock(blkKeys, len(keys), encodeKeys(keys))

	var f enc
	f.uvarint(formatVersion)
	f.uvarint(seq.First)
	f.uvarint(seq.Last)
	f.uvarint(uint64(len(replaces)))
	for _, r := range replaces {
		f.uvarint(r.First)
		f.uvarint(r.Last)
	}
	minT, maxT, ok := timeRange(st)
	if ok {
		f.buf = append(f.buf, 1)
		f.varint(minT.Unix())
		f.uvarint(uint64(minT.Nanosecond()))
		f.varint(maxT.Unix())
		f.uvarint(uint64(maxT.Nanosecond()))
	} else {
		f.buf = append(f.buf, 0)
	}
	ids := make([]string, 0, len(st.RouterCountry))
	for id := range st.RouterCountry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	f.uvarint(uint64(len(ids)))
	for _, id := range ids {
		f.str(id)
		f.str(st.RouterCountry[id])
	}
	f.uvarint(uint64(len(blocks)))
	for _, b := range blocks {
		f.uvarint(b.kind)
		f.uvarint(b.off)
		f.uvarint(b.len)
		f.uvarint(b.rows)
		f.buf = append(f.buf,
			byte(b.crc), byte(b.crc>>8), byte(b.crc>>16), byte(b.crc>>24))
	}

	out = append(out, f.buf...)
	fl := uint32(len(f.buf))
	fcrc := crc32.ChecksumIEEE(f.buf)
	out = append(out,
		byte(fl), byte(fl>>8), byte(fl>>16), byte(fl>>24),
		byte(fcrc), byte(fcrc>>8), byte(fcrc>>16), byte(fcrc>>24))
	out = append(out, magicTail...)
	return out
}

// timeRange scans every row timestamp (zero values excluded).
func timeRange(st *dataset.Store) (minT, maxT time.Time, ok bool) {
	obs := func(t time.Time) {
		if t.IsZero() {
			return
		}
		if !ok || t.Before(minT) {
			minT = t
		}
		if !ok || t.After(maxT) {
			maxT = t
		}
		ok = true
	}
	for _, r := range st.Uptime {
		obs(r.ReportedAt)
	}
	for _, r := range st.Capacity {
		obs(r.MeasuredAt)
	}
	for _, r := range st.Counts {
		obs(r.At)
	}
	for _, r := range st.Sightings {
		obs(r.At)
	}
	for _, r := range st.WiFi {
		obs(r.At)
	}
	for _, r := range st.Flows {
		obs(r.First)
		obs(r.Last)
	}
	for _, r := range st.Throughput {
		obs(r.Minute)
	}
	return minT, maxT, ok
}

// Reader gives access to one encoded segment: the footer is parsed and
// CRC-checked up front, row blocks decode (and CRC-check) on demand.
type Reader struct {
	buf  []byte
	meta Meta
}

// NewReader parses and validates the framing and footer of an encoded
// segment. It does not touch block payloads.
func NewReader(b []byte) (*Reader, error) {
	if len(b) < len(magicHead)+trailerSize || string(b[:4]) != string(magicHead) {
		return nil, fmt.Errorf("%w: bad magic or short file", errCorrupt)
	}
	t := b[len(b)-trailerSize:]
	if string(t[8:12]) != string(magicTail) {
		return nil, fmt.Errorf("%w: bad trailer magic (torn tail?)", errCorrupt)
	}
	flen := uint32(t[0]) | uint32(t[1])<<8 | uint32(t[2])<<16 | uint32(t[3])<<24
	fcrc := uint32(t[4]) | uint32(t[5])<<8 | uint32(t[6])<<16 | uint32(t[7])<<24
	body := len(b) - trailerSize
	if int(flen) > body-len(magicHead) {
		return nil, fmt.Errorf("%w: footer length %d exceeds file", errCorrupt, flen)
	}
	footer := b[body-int(flen) : body]
	if crc32.ChecksumIEEE(footer) != fcrc {
		return nil, fmt.Errorf("%w: footer CRC mismatch (torn footer?)", errCorrupt)
	}
	r := &Reader{buf: b}
	if err := r.parseFooter(footer, uint64(body-int(flen))); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) parseFooter(footer []byte, blockEnd uint64) error {
	d := &dec{buf: footer}
	v, err := d.uvarint()
	if err != nil {
		return err
	}
	if v != formatVersion {
		return fmt.Errorf("segment: unsupported format version %d", v)
	}
	m := &r.meta
	if m.Seq.First, err = d.uvarint(); err != nil {
		return err
	}
	if m.Seq.Last, err = d.uvarint(); err != nil {
		return err
	}
	if m.Seq.Last < m.Seq.First {
		return fmt.Errorf("%w: inverted seq range", errCorrupt)
	}
	nr, err := d.uvarint()
	if err != nil {
		return err
	}
	if nr > uint64(d.remaining()) {
		return fmt.Errorf("%w: replaces count %d", errCorrupt, nr)
	}
	for i := uint64(0); i < nr; i++ {
		var sr SeqRange
		if sr.First, err = d.uvarint(); err != nil {
			return err
		}
		if sr.Last, err = d.uvarint(); err != nil {
			return err
		}
		m.Replaces = append(m.Replaces, sr)
	}
	hasRange, err := d.take(1)
	if err != nil {
		return err
	}
	if hasRange[0] > 1 {
		return fmt.Errorf("%w: bad time-range flag", errCorrupt)
	}
	if hasRange[0] == 1 {
		m.HasTimeRange = true
		ts, err := decodeFooterTime(d)
		if err != nil {
			return err
		}
		m.MinTime = ts
		if ts, err = decodeFooterTime(d); err != nil {
			return err
		}
		m.MaxTime = ts
	}
	nRoster, err := d.uvarint()
	if err != nil {
		return err
	}
	if nRoster > uint64(d.remaining()) {
		return fmt.Errorf("%w: roster count %d", errCorrupt, nRoster)
	}
	m.Roster = make(map[string]string, nRoster)
	for i := uint64(0); i < nRoster; i++ {
		id, err := d.str()
		if err != nil {
			return err
		}
		cc, err := d.str()
		if err != nil {
			return err
		}
		m.Roster[id] = cc
	}
	nb, err := d.uvarint()
	if err != nil {
		return err
	}
	if nb > maxBlocks {
		return fmt.Errorf("%w: %d blocks", errCorrupt, nb)
	}
	for i := uint64(0); i < nb; i++ {
		var b blockRef
		if b.kind, err = d.uvarint(); err != nil {
			return err
		}
		if b.off, err = d.uvarint(); err != nil {
			return err
		}
		if b.len, err = d.uvarint(); err != nil {
			return err
		}
		if b.rows, err = d.uvarint(); err != nil {
			return err
		}
		cb, err := d.take(4)
		if err != nil {
			return err
		}
		b.crc = uint32(cb[0]) | uint32(cb[1])<<8 | uint32(cb[2])<<16 | uint32(cb[3])<<24
		if b.off < uint64(len(magicHead)) || b.off+b.len < b.off || b.off+b.len > blockEnd {
			return fmt.Errorf("%w: block %d spans [%d,%d) outside payload", errCorrupt, b.kind, b.off, b.off+b.len)
		}
		// Each row consumes at least one byte in its first column, so a
		// rows count beyond the payload size is forged.
		if b.rows > b.len && b.rows > 0 {
			return fmt.Errorf("%w: block %d claims %d rows in %d bytes", errCorrupt, b.kind, b.rows, b.len)
		}
		m.blocks = append(m.blocks, b)
		switch b.kind {
		case blkUptime:
			m.Rows.Uptime = int(b.rows)
		case blkCapacity:
			m.Rows.Capacity = int(b.rows)
		case blkCounts:
			m.Rows.Counts = int(b.rows)
		case blkSightings:
			m.Rows.Sightings = int(b.rows)
		case blkWiFi:
			m.Rows.WiFi = int(b.rows)
		case blkFlows:
			m.Rows.Flows = int(b.rows)
		case blkThroughput:
			m.Rows.Throughput = int(b.rows)
		case blkKeys:
			m.KeyRows = int(b.rows)
		}
	}
	m.Rows.Routers = len(m.Roster)
	return nil
}

func decodeFooterTime(d *dec) (time.Time, error) {
	sec, err := d.varint()
	if err != nil {
		return time.Time{}, err
	}
	nsec, err := d.uvarint()
	if err != nil {
		return time.Time{}, err
	}
	if nsec >= uint64(time.Second) {
		return time.Time{}, fmt.Errorf("%w: footer time nanoseconds", errCorrupt)
	}
	return time.Unix(sec, int64(nsec)).UTC(), nil
}

// Meta returns the parsed footer metadata.
func (r *Reader) Meta() Meta { return r.meta }

// block returns the CRC-validated payload decoder for kind, or nil if
// the segment has no such block.
func (r *Reader) block(kind uint64) (*dec, int, error) {
	for _, b := range r.meta.blocks {
		if b.kind != kind {
			continue
		}
		payload := r.buf[b.off : b.off+b.len]
		if crc32.ChecksumIEEE(payload) != b.crc {
			return nil, 0, fmt.Errorf("%w: block %d CRC mismatch", errCorrupt, kind)
		}
		return &dec{buf: payload}, int(b.rows), nil
	}
	return nil, 0, nil
}

// Keys decodes the idempotency-key block.
func (r *Reader) Keys() ([]Key, error) {
	d, n, err := r.block(blkKeys)
	if err != nil || d == nil {
		return nil, err
	}
	return decodeKeys(d, n)
}

// Rows decodes every data-set block into a plain Store (arrival order
// preserved). The returned store has no heartbeat log and an empty
// dedupe index — segments carry neither.
func (r *Reader) Rows() (*dataset.Store, error) {
	st := &dataset.Store{RouterCountry: make(map[string]string, len(r.meta.Roster))}
	for id, cc := range r.meta.Roster {
		st.RouterCountry[id] = cc
	}
	var err error
	if st.Uptime, err = r.uptime(); err != nil {
		return nil, err
	}
	if st.Capacity, err = r.capacity(); err != nil {
		return nil, err
	}
	if st.Counts, err = r.counts(); err != nil {
		return nil, err
	}
	if st.Sightings, err = r.sightings(); err != nil {
		return nil, err
	}
	if st.WiFi, err = r.wifi(); err != nil {
		return nil, err
	}
	if st.Flows, err = r.flows(); err != nil {
		return nil, err
	}
	if st.Throughput, err = r.throughput(); err != nil {
		return nil, err
	}
	return st, nil
}

// Decode is the one-shot convenience: parse, validate, and decode
// everything (the fuzz target's entry point).
func Decode(b []byte) (*dataset.Store, []Key, Meta, error) {
	r, err := NewReader(b)
	if err != nil {
		return nil, nil, Meta{}, err
	}
	st, err := r.Rows()
	if err != nil {
		return nil, nil, Meta{}, err
	}
	keys, err := r.Keys()
	if err != nil {
		return nil, nil, Meta{}, err
	}
	return st, keys, r.meta, nil
}
