// Per-data-set block schemas: each data set's rows encode column-major
// in struct-field order. Decoders must tolerate arbitrary bytes — every
// column read is bounds-checked and the block CRC has already been
// verified by the caller, so errors here mean either corruption the CRC
// missed (forged whole-block rewrites) or a version we don't speak.
package segment

import (
	"time"

	"natpeek/internal/dataset"
)

func encodeUptime(rows []dataset.UptimeReport) []byte {
	var e enc
	var routers strDict
	for _, r := range rows {
		routers.encode(&e, r.RouterID)
	}
	ts := make([]time.Time, len(rows))
	for i, r := range rows {
		ts[i] = r.ReportedAt
	}
	encodeTimes(&e, ts)
	for _, r := range rows {
		e.varint(int64(r.Uptime))
	}
	return e.buf
}

func (r *Reader) uptime() ([]dataset.UptimeReport, error) {
	d, n, err := r.block(blkUptime)
	if err != nil || d == nil || n == 0 {
		return nil, err
	}
	rows := make([]dataset.UptimeReport, n)
	var routers strUndict
	for i := range rows {
		if rows[i].RouterID, err = routers.decode(d); err != nil {
			return nil, err
		}
	}
	ts, err := decodeTimes(d, n)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].ReportedAt = ts[i]
	}
	for i := range rows {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		rows[i].Uptime = time.Duration(v)
	}
	return rows, nil
}

func encodeCapacity(rows []dataset.CapacityMeasure) []byte {
	var e enc
	var routers strDict
	for _, r := range rows {
		routers.encode(&e, r.RouterID)
	}
	ts := make([]time.Time, len(rows))
	for i, r := range rows {
		ts[i] = r.MeasuredAt
	}
	encodeTimes(&e, ts)
	for _, r := range rows {
		e.f64(r.UpBps)
	}
	for _, r := range rows {
		e.f64(r.DownBps)
	}
	return e.buf
}

func (r *Reader) capacity() ([]dataset.CapacityMeasure, error) {
	d, n, err := r.block(blkCapacity)
	if err != nil || d == nil || n == 0 {
		return nil, err
	}
	rows := make([]dataset.CapacityMeasure, n)
	var routers strUndict
	for i := range rows {
		if rows[i].RouterID, err = routers.decode(d); err != nil {
			return nil, err
		}
	}
	ts, err := decodeTimes(d, n)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].MeasuredAt = ts[i]
	}
	for i := range rows {
		if rows[i].UpBps, err = d.f64(); err != nil {
			return nil, err
		}
	}
	for i := range rows {
		if rows[i].DownBps, err = d.f64(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func encodeCounts(rows []dataset.DeviceCount) []byte {
	var e enc
	var routers strDict
	for _, r := range rows {
		routers.encode(&e, r.RouterID)
	}
	ts := make([]time.Time, len(rows))
	for i, r := range rows {
		ts[i] = r.At
	}
	encodeTimes(&e, ts)
	for _, r := range rows {
		e.varint(int64(r.Wired))
	}
	for _, r := range rows {
		e.varint(int64(r.W24))
	}
	for _, r := range rows {
		e.varint(int64(r.W5))
	}
	return e.buf
}

func (r *Reader) counts() ([]dataset.DeviceCount, error) {
	d, n, err := r.block(blkCounts)
	if err != nil || d == nil || n == 0 {
		return nil, err
	}
	rows := make([]dataset.DeviceCount, n)
	var routers strUndict
	for i := range rows {
		if rows[i].RouterID, err = routers.decode(d); err != nil {
			return nil, err
		}
	}
	ts, err := decodeTimes(d, n)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].At = ts[i]
	}
	for _, fld := range []func(*dataset.DeviceCount) *int{
		func(c *dataset.DeviceCount) *int { return &c.Wired },
		func(c *dataset.DeviceCount) *int { return &c.W24 },
		func(c *dataset.DeviceCount) *int { return &c.W5 },
	} {
		for i := range rows {
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			*fld(&rows[i]) = int(v)
		}
	}
	return rows, nil
}

func encodeSightings(rows []dataset.DeviceSighting) []byte {
	var e enc
	var routers strDict
	for _, r := range rows {
		routers.encode(&e, r.RouterID)
	}
	ts := make([]time.Time, len(rows))
	for i, r := range rows {
		ts[i] = r.At
	}
	encodeTimes(&e, ts)
	for _, r := range rows {
		e.mac(r.Device)
	}
	for _, r := range rows {
		e.uvarint(uint64(r.Kind))
	}
	return e.buf
}

func (r *Reader) sightings() ([]dataset.DeviceSighting, error) {
	d, n, err := r.block(blkSightings)
	if err != nil || d == nil || n == 0 {
		return nil, err
	}
	rows := make([]dataset.DeviceSighting, n)
	var routers strUndict
	for i := range rows {
		if rows[i].RouterID, err = routers.decode(d); err != nil {
			return nil, err
		}
	}
	ts, err := decodeTimes(d, n)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].At = ts[i]
	}
	for i := range rows {
		if rows[i].Device, err = d.mac(); err != nil {
			return nil, err
		}
	}
	for i := range rows {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		rows[i].Kind = dataset.ConnKind(v)
	}
	return rows, nil
}

func encodeWiFi(rows []dataset.WiFiScan) []byte {
	var e enc
	var routers, bands strDict
	for _, r := range rows {
		routers.encode(&e, r.RouterID)
	}
	ts := make([]time.Time, len(rows))
	for i, r := range rows {
		ts[i] = r.At
	}
	encodeTimes(&e, ts)
	for _, r := range rows {
		bands.encode(&e, r.Band)
	}
	for _, r := range rows {
		e.varint(int64(r.Channel))
	}
	for _, r := range rows {
		e.varint(int64(r.VisibleAPs))
	}
	for _, r := range rows {
		e.varint(int64(r.Clients))
	}
	return e.buf
}

func (r *Reader) wifi() ([]dataset.WiFiScan, error) {
	d, n, err := r.block(blkWiFi)
	if err != nil || d == nil || n == 0 {
		return nil, err
	}
	rows := make([]dataset.WiFiScan, n)
	var routers, bands strUndict
	for i := range rows {
		if rows[i].RouterID, err = routers.decode(d); err != nil {
			return nil, err
		}
	}
	ts, err := decodeTimes(d, n)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].At = ts[i]
	}
	for i := range rows {
		if rows[i].Band, err = bands.decode(d); err != nil {
			return nil, err
		}
	}
	for _, fld := range []func(*dataset.WiFiScan) *int{
		func(s *dataset.WiFiScan) *int { return &s.Channel },
		func(s *dataset.WiFiScan) *int { return &s.VisibleAPs },
		func(s *dataset.WiFiScan) *int { return &s.Clients },
	} {
		for i := range rows {
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			*fld(&rows[i]) = int(v)
		}
	}
	return rows, nil
}

func encodeFlows(rows []dataset.FlowRecord) []byte {
	var e enc
	var routers, domains, protos strDict
	for _, r := range rows {
		routers.encode(&e, r.RouterID)
	}
	for _, r := range rows {
		e.mac(r.Device)
	}
	for _, r := range rows {
		domains.encode(&e, r.Domain)
	}
	for _, r := range rows {
		protos.encode(&e, r.Proto)
	}
	ts := make([]time.Time, len(rows))
	for i, r := range rows {
		ts[i] = r.First
	}
	encodeTimes(&e, ts)
	for i, r := range rows {
		ts[i] = r.Last
	}
	encodeTimes(&e, ts)
	for _, fld := range []func(*dataset.FlowRecord) int64{
		func(f *dataset.FlowRecord) int64 { return f.UpBytes },
		func(f *dataset.FlowRecord) int64 { return f.DownBytes },
		func(f *dataset.FlowRecord) int64 { return f.UpPkts },
		func(f *dataset.FlowRecord) int64 { return f.DownPkts },
		func(f *dataset.FlowRecord) int64 { return f.Conns },
	} {
		for i := range rows {
			e.varint(fld(&rows[i]))
		}
	}
	return e.buf
}

func (r *Reader) flows() ([]dataset.FlowRecord, error) {
	d, n, err := r.block(blkFlows)
	if err != nil || d == nil || n == 0 {
		return nil, err
	}
	rows := make([]dataset.FlowRecord, n)
	var routers, domains, protos strUndict
	for i := range rows {
		if rows[i].RouterID, err = routers.decode(d); err != nil {
			return nil, err
		}
	}
	for i := range rows {
		if rows[i].Device, err = d.mac(); err != nil {
			return nil, err
		}
	}
	for i := range rows {
		if rows[i].Domain, err = domains.decode(d); err != nil {
			return nil, err
		}
	}
	for i := range rows {
		if rows[i].Proto, err = protos.decode(d); err != nil {
			return nil, err
		}
	}
	ts, err := decodeTimes(d, n)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].First = ts[i]
	}
	if ts, err = decodeTimes(d, n); err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Last = ts[i]
	}
	for _, fld := range []func(*dataset.FlowRecord) *int64{
		func(f *dataset.FlowRecord) *int64 { return &f.UpBytes },
		func(f *dataset.FlowRecord) *int64 { return &f.DownBytes },
		func(f *dataset.FlowRecord) *int64 { return &f.UpPkts },
		func(f *dataset.FlowRecord) *int64 { return &f.DownPkts },
		func(f *dataset.FlowRecord) *int64 { return &f.Conns },
	} {
		for i := range rows {
			if *fld(&rows[i]), err = d.varint(); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

func encodeThroughput(rows []dataset.ThroughputSample) []byte {
	var e enc
	var routers, dirs strDict
	for _, r := range rows {
		routers.encode(&e, r.RouterID)
	}
	ts := make([]time.Time, len(rows))
	for i, r := range rows {
		ts[i] = r.Minute
	}
	encodeTimes(&e, ts)
	for _, r := range rows {
		dirs.encode(&e, r.Dir)
	}
	for _, r := range rows {
		e.f64(r.PeakBps)
	}
	for _, r := range rows {
		e.varint(r.TotalBytes)
	}
	return e.buf
}

func (r *Reader) throughput() ([]dataset.ThroughputSample, error) {
	d, n, err := r.block(blkThroughput)
	if err != nil || d == nil || n == 0 {
		return nil, err
	}
	rows := make([]dataset.ThroughputSample, n)
	var routers, dirs strUndict
	for i := range rows {
		if rows[i].RouterID, err = routers.decode(d); err != nil {
			return nil, err
		}
	}
	ts, err := decodeTimes(d, n)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Minute = ts[i]
	}
	for i := range rows {
		if rows[i].Dir, err = dirs.decode(d); err != nil {
			return nil, err
		}
	}
	for i := range rows {
		if rows[i].PeakBps, err = d.f64(); err != nil {
			return nil, err
		}
	}
	for i := range rows {
		if rows[i].TotalBytes, err = d.varint(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func encodeKeys(keys []Key) []byte {
	var e enc
	var routers strDict
	for _, k := range keys {
		routers.encode(&e, k.Router)
	}
	for _, k := range keys {
		e.str(k.Key)
	}
	return e.buf
}

func decodeKeys(d *dec, n int) ([]Key, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]Key, n)
	var routers strUndict
	var err error
	for i := range out {
		if out[i].Router, err = routers.decode(d); err != nil {
			return nil, err
		}
	}
	for i := range out {
		if out[i].Key, err = d.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
