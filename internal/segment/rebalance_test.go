package segment_test

import (
	"fmt"
	"testing"

	"natpeek/internal/dataset"
	"natpeek/internal/rng"
	"natpeek/internal/segment"
)

// seedKeyed applies n deterministic rows across routers seg-rt-0..5
// under router-prefixed idempotency keys (the form real uploads use, so
// the store's key index can attribute them to a router), mirroring each
// row into ref so tests can compute the expected extract partition. A
// non-nil flush seals the store every quarter of the rows.
func seedKeyed(t *testing.T, s *segment.Store, ref *dataset.Store, n int, flush func()) {
	t.Helper()
	r := rng.New(11)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("seg-rt-%d", r.Intn(6))
		// Child derivation is pure, so deriving the row stream twice
		// from the same parent state yields identical rows for the
		// store and the reference.
		if !s.Apply(id, fmt.Sprintf("%s:k%d", id, i), func(st *dataset.Store) {
			st.RouterCountry[id] = "US"
			addRandomRow(st, id, i, r.Child("row").ChildN("i", i))
		}) {
			t.Fatalf("seed apply %d deduped", i)
		}
		if ref != nil {
			ref.RouterCountry[id] = "US"
			addRandomRow(ref, id, i, r.Child("row").ChildN("i", i))
		}
		if flush != nil && i > 0 && i%(n/4) == 0 {
			flush()
		}
	}
}

func openRebalanceStore(t *testing.T) *segment.Store {
	t.Helper()
	s, err := segment.Open(segment.Options{
		Dir: t.TempDir(), FlushRows: 1 << 20, NoCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func rcTotal(rc dataset.RowCounts) int {
	return rc.Uptime + rc.Capacity + rc.Counts + rc.Sightings + rc.WiFi + rc.Flows + rc.Throughput
}

// TestExtractReachesSealedSegments is the durable half of the extract
// contract: moved routers leave nothing behind in already-sealed NPS1
// segments, not just the memtable. Rows are spread over three sealed
// segments plus live memtable rows; after the extract, moved and
// surviving sides must together equal the reference partition exactly
// (same rows, same order), and the in-place segment rewrites must be
// reflected in the cached Meta row counts without losing a segment.
func TestExtractReachesSealedSegments(t *testing.T) {
	s := openRebalanceStore(t)
	ref := dataset.NewStore()
	seedKeyed(t, s, ref, 240, func() {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if got := len(s.Segments()); got < 3 {
		t.Fatalf("setup sealed only %d segments", got)
	}
	match := matchSegPrefixes("seg-rt-1", "seg-rt-4")
	wantMoved, wantRest := dataset.SplitRouters(ref, match)

	beforeSegs := s.Segments()
	moved, keys := s.ExtractRouters(match)
	sameRows(t, wantMoved, moved, "moved")
	rest := s.Merge()
	rest.Heartbeats = nil
	sameRows(t, wantRest, rest, "surviving")
	if s.LastFlushError() != "" {
		t.Fatalf("extract recorded an error: %s", s.LastFlushError())
	}
	for _, rk := range keys {
		if !match(rk.Router) {
			t.Fatalf("extracted key %+v for an unmatched router", rk)
		}
	}

	afterSegs := s.Segments()
	if len(afterSegs) != len(beforeSegs) {
		t.Fatalf("extract changed the segment count: %d -> %d", len(beforeSegs), len(afterSegs))
	}
	movedFromSegs := 0
	for i := range afterSegs {
		if afterSegs[i].Seq != beforeSegs[i].Seq {
			t.Fatalf("segment %d changed identity: %v -> %v", i, beforeSegs[i].Seq, afterSegs[i].Seq)
		}
		if afterSegs[i].KeyRows != beforeSegs[i].KeyRows {
			t.Fatalf("segment %v key block shrank: %d -> %d keys",
				afterSegs[i].Seq, beforeSegs[i].KeyRows, afterSegs[i].KeyRows)
		}
		movedFromSegs += rcTotal(beforeSegs[i].Rows) - rcTotal(afterSegs[i].Rows)
	}
	memMoved := rowsTotal(moved) - movedFromSegs
	if movedFromSegs <= 0 || memMoved < 0 {
		t.Fatalf("meta accounting: %d rows left segments, %d total moved", movedFromSegs, rowsTotal(moved))
	}
	if got := rcTotal(s.RowCounts()); got != rowsTotal(wantRest) {
		t.Fatalf("RowCounts after extract = %d, want %d", got, rowsTotal(wantRest))
	}
}

// TestExtractRetainsDedupeAcrossRestart pins the on-disk half of the
// exactly-once hinge: a rewritten segment keeps its key block, so after
// a restart (dedupe index reseeded from disk) a client retry of a MOVED
// upload is still refused at the old home.
func TestExtractRetainsDedupeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, FlushRows: 1 << 20, NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	seedKeyed(t, s, nil, 120, nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	moved, keys := s.ExtractRouters(matchSegPrefixes("seg-rt-2"))
	if rowsTotal(moved) == 0 || len(keys) == 0 {
		t.Fatal("nothing extracted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := segment.Open(segment.Options{Dir: dir, FlushRows: 1 << 20, NoCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := rowsTotal(s2.Merge()); got != 120-rowsTotal(moved) {
		t.Fatalf("reopened with %d rows, want %d surviving", got, 120-rowsTotal(moved))
	}
	for _, rk := range keys {
		if s2.Apply(rk.Router, rk.Key, func(st *dataset.Store) {
			st.Uptime = append(st.Uptime, dataset.UptimeReport{RouterID: rk.Router})
		}) {
			t.Fatalf("retry of moved key %q re-applied after restart", rk.Key)
		}
	}
	// Fresh keys for the moved router still land: only its history
	// moved, the router itself may legitimately be re-homed back later.
	if !s2.Apply("seg-rt-2", "seg-rt-2:fresh", func(st *dataset.Store) {
		st.Uptime = append(st.Uptime, dataset.UptimeReport{RouterID: "seg-rt-2"})
	}) {
		t.Fatal("fresh key for a moved router was refused")
	}
}

// TestScanRoutersPromisesTheExtract: Scan is the read-only dry run the
// transfer planner sizes sessions with — it must see the same rows an
// extract would move (segments, frozen generation, memtable alike)
// without mutating anything.
func TestScanRoutersPromisesTheExtract(t *testing.T) {
	s := openRebalanceStore(t)
	seedKeyed(t, s, nil, 160, func() {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	match := matchSegPrefixes("seg-rt-0", "seg-rt-5")
	scanned, skeys := s.ScanRouters(match)
	if rowsTotal(scanned) == 0 || len(skeys) == 0 {
		t.Fatal("scan found nothing")
	}
	if got := rowsTotal(s.Merge()); got != 160 {
		t.Fatalf("scan mutated the store: %d rows left", got)
	}
	moved, mkeys := s.ExtractRouters(match)
	sameRows(t, scanned, moved, "extract vs scan")
	if len(mkeys) != len(skeys) {
		t.Fatalf("extract pushed %d keys, scan promised %d", len(mkeys), len(skeys))
	}
}

// TestExtractNoMatchLeavesSegmentsUntouched: a no-op extract must not
// rewrite any segment file (rewrites cost an fsync per segment and the
// drain loop runs extract repeatedly until it drains dry).
func TestExtractNoMatchLeavesSegmentsUntouched(t *testing.T) {
	s := openRebalanceStore(t)
	seedKeyed(t, s, nil, 100, nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := s.Segments()
	moved, keys := s.ExtractRouters(func(string) bool { return false })
	if rowsTotal(moved) != 0 || len(keys) != 0 || len(moved.RouterCountry) != 0 {
		t.Fatalf("no-match extract moved %d rows, %d keys, %d roster entries",
			rowsTotal(moved), len(keys), len(moved.RouterCountry))
	}
	after := s.Segments()
	for i := range after {
		if after[i].Rows != before[i].Rows || after[i].KeyRows != before[i].KeyRows {
			t.Fatalf("no-match extract rewrote segment %v", after[i].Seq)
		}
	}
	if got := rowsTotal(s.Merge()); got != 100 {
		t.Fatalf("rows after no-op extract = %d", got)
	}
}

func matchSegPrefixes(prefixes ...string) func(string) bool {
	return func(router string) bool {
		for _, p := range prefixes {
			if router == p {
				return true
			}
		}
		return false
	}
}

func rowsTotal(st *dataset.Store) int {
	return len(st.Uptime) + len(st.Capacity) + len(st.Counts) + len(st.Sightings) +
		len(st.WiFi) + len(st.Flows) + len(st.Throughput)
}
