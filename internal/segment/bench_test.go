package segment_test

import (
	"fmt"
	"testing"

	"natpeek/internal/dataset"
	"natpeek/internal/rng"
	"natpeek/internal/segment"
)

// BenchmarkSegmentFlush prices the full durability path: ingest a batch
// of rows into the memtable, then seal it into an encoded, CRC'd,
// fsync'd segment file. rows/s here is the sustained rate at which a
// collector can push ingest to disk.
func BenchmarkSegmentFlush(b *testing.B) {
	const rows = 5000
	s, err := segment.Open(segment.Options{Dir: b.TempDir(), NoCompaction: true, FlushRows: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		for j := 0; j < rows; j++ {
			id := fmt.Sprintf("bismark-%03d", r.Intn(12))
			s.Apply(id, fmt.Sprintf("k:%d:%d", i, j), func(st *dataset.Store) {
				st.RouterCountry[id] = "US"
				addRandomRow(st, id, j, r.Child("row").ChildN("i", j))
			})
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkSegmentReopen prices crash recovery / analysis startup:
// opening a directory of sealed segments and merging them into one
// analysis-ready store.
func BenchmarkSegmentReopen(b *testing.B) {
	dir := b.TempDir()
	s, err := segment.Open(segment.Options{Dir: dir, NoCompaction: true, FlushRows: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 20000
	applyChunked(s, rows, 99, func() {
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	})
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := segment.Open(segment.Options{Dir: dir, NoCompaction: true})
		if err != nil {
			b.Fatal(err)
		}
		re.Merge()
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
