// Column codecs for the NPS1 segment format. These mirror the NPB1 wire
// codec's primitives — zigzag-varint integers, dictionary-coded strings,
// raw 6-byte MACs, little-endian IEEE-754 floats — but are written for
// storage rather than transport: every value decodes with strict bounds
// checks, and timestamps use an exact split encoding (delta-coded Unix
// seconds plus nanoseconds) instead of the wire's single delta-nano
// chain, so any time.Time instant round-trips with no sentinel value and
// no nudging. Decoded times carry the UTC location; every row the
// pipeline ingests is UTC-canonicalized already (wire and JSON decode
// both normalize), so this is an identity for stored data.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"natpeek/internal/mac"
)

var errCorrupt = errors.New("segment: corrupt data")

// enc accumulates one block's column-major payload.
type enc struct {
	buf []byte
}

func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }

func (e *enc) bytes(b []byte) { e.buf = append(e.buf, b...) }

func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// strDict dictionary-codes one string column: 0 means "literal follows,
// assign the next index", v > 0 means dictionary entry v-1. Router IDs,
// bands, directions, protocols, and domains are all low-cardinality per
// segment, so the column collapses to near one byte per row.
type strDict struct {
	idx map[string]uint64
}

func (d *strDict) encode(e *enc, s string) {
	if d.idx == nil {
		d.idx = make(map[string]uint64)
	}
	if ref, ok := d.idx[s]; ok {
		e.uvarint(ref + 1)
		return
	}
	d.idx[s] = uint64(len(d.idx))
	e.uvarint(0)
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}

// dec walks one block's payload.
type dec struct {
	buf []byte
	off int
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	d.off += n
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, errCorrupt
	}
	d.off += n
	return v, nil
}

func (d *dec) take(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, errCorrupt
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *dec) f64() (float64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// str decodes one length-prefixed string (used by footers and the key
// block, where no dictionary applies).
func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.remaining()) {
		return "", errCorrupt
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}

// strUndict decodes one dictionary-coded string column value.
type strUndict struct {
	dict []string
}

func (d *strUndict) decode(dd *dec) (string, error) {
	ref, err := dd.uvarint()
	if err != nil {
		return "", err
	}
	if ref == 0 {
		s, err := dd.str()
		if err != nil {
			return "", err
		}
		d.dict = append(d.dict, s)
		return s, nil
	}
	if ref > uint64(len(d.dict)) {
		return "", fmt.Errorf("%w: string ref %d beyond dictionary of %d", errCorrupt, ref, len(d.dict))
	}
	return d.dict[ref-1], nil
}

// encodeTimes writes one time column: a list of zero-value row indexes
// (so time.Time{} round-trips exactly), then for every non-zero row a
// zigzag-varint delta of Unix seconds against the previous non-zero row
// plus the intra-second nanoseconds. Unlike the wire codec's delta-nano
// chain there is no sentinel value to collide with and no range limit:
// any wall-clock instant representable in int64 seconds round-trips.
func encodeTimes(e *enc, ts []time.Time) {
	var zeros []uint64
	for i, t := range ts {
		if t.IsZero() {
			zeros = append(zeros, uint64(i))
		}
	}
	e.uvarint(uint64(len(zeros)))
	for _, z := range zeros {
		e.uvarint(z)
	}
	prevSec := int64(0)
	for _, t := range ts {
		if t.IsZero() {
			continue
		}
		sec := t.Unix()
		e.varint(sec - prevSec)
		prevSec = sec
		e.uvarint(uint64(t.Nanosecond()))
	}
}

// decodeTimes reads a column of n timestamps.
func decodeTimes(d *dec, n int) ([]time.Time, error) {
	nz, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nz > uint64(n) {
		return nil, fmt.Errorf("%w: %d zero-time rows in a column of %d", errCorrupt, nz, n)
	}
	zero := make(map[int]bool, nz)
	prevIdx := -1
	for i := uint64(0); i < nz; i++ {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= uint64(n) || int(v) <= prevIdx {
			return nil, fmt.Errorf("%w: zero-time index %d out of order or range", errCorrupt, v)
		}
		prevIdx = int(v)
		zero[int(v)] = true
	}
	out := make([]time.Time, n)
	prevSec := int64(0)
	for i := 0; i < n; i++ {
		if zero[i] {
			continue
		}
		dsec, err := d.varint()
		if err != nil {
			return nil, err
		}
		nsec, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nsec >= uint64(time.Second) {
			return nil, fmt.Errorf("%w: %d nanoseconds within a second", errCorrupt, nsec)
		}
		sec := prevSec + dsec
		prevSec = sec
		out[i] = time.Unix(sec, int64(nsec)).UTC()
	}
	return out, nil
}

func (e *enc) mac(a mac.Addr) { e.bytes(a[:]) }

func (d *dec) mac() (mac.Addr, error) {
	var a mac.Addr
	b, err := d.take(len(a))
	if err != nil {
		return a, err
	}
	copy(a[:], b)
	return a, nil
}
