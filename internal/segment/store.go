// The segment store: a bounded in-memory memtable (a dataset.Sharded
// generation) in front of immutable on-disk NPS1 segments.
//
// Lifecycle:
//
//   - Ingest lands in the live memtable exactly as it would in the plain
//     sharded store — same striping, same dedupe, same arrival-order
//     segment log.
//   - When the memtable exceeds FlushRows rows (or FlushAge), it is
//     sealed: a fresh memtable that has adopted the old one's dedupe
//     index is swapped in under a write lock, the sealed generation is
//     merged (no writers remain), encoded as one NPS1 segment — rows
//     plus the idempotency keys they were applied under — and committed
//     with write-tmp → fsync → rename. Only after the rename is the
//     sealed generation dropped from the in-memory view, so readers
//     never see a gap, and seal subscribers receive the sealed rows as
//     an immutable chunk.
//   - Background compaction folds runs of seq-adjacent segments with
//     overlapping time ranges into one, recording the replaced seq
//     ranges in the new footer; a crash between the rename and the
//     input deletion is healed at open time by the supersession check.
//
// Exactly-once across the flush boundary: the successor memtable adopts
// the sealed one's dedupe index before any new row lands (replays racing
// the flush stay deduped), and the sealed keys travel inside the segment
// file, so a restart re-seeds the dedupe index from disk, oldest segment
// first — the same FIFO window a long-running sharded store would hold.
//
// Ordering: Merge() concatenates segment rows in flush (seq) order, then
// the sealed-but-uncommitted generation, then the live memtable. Each
// generation preserves its own arrival order, and every row in an older
// generation arrived before every row in a newer one, so for a serial
// upload sequence the merged per-kind slices are identical to a plain
// Sharded store's — which is what keeps the verify golden snapshots
// byte-identical with this store substituted (rows racing a rotation are
// concurrent with it, so either side of the boundary is a valid order,
// exactly like rows racing each other in the plain store).
package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/heartbeat"
)

// Options configures Open.
type Options struct {
	// Dir is the segment directory. Required.
	Dir string
	// FlushRows seals the memtable when it holds at least this many
	// rows. <= 0 means DefaultFlushRows.
	FlushRows int
	// FlushAge seals a non-empty memtable this long after its first
	// row, even below FlushRows, so quiet deployments still reach disk.
	// 0 disables age-based flushing.
	FlushAge time.Duration
	// CompactAt triggers compaction when more than this many live
	// segments exist. <= 0 means DefaultCompactAt; < 0 after defaulting
	// is impossible, use NoCompaction to disable.
	CompactAt int
	// NoCompaction disables background compaction (crash-window tests
	// pin specific segment layouts).
	NoCompaction bool
	// Shards is the memtable stripe count (<= 0: dataset.DefaultShards).
	Shards int
}

// Defaults for Options.
const (
	DefaultFlushRows = 1 << 16
	DefaultCompactAt = 8
	// maxCompactInputs bounds one compaction's fan-in so a single run
	// never rewrites the whole history.
	maxCompactInputs = 8
)

// memtable is one hot generation: a sharded store plus the (router,
// idempotency key) pairs applied into it, in arrival order.
type memtable struct {
	sh   *dataset.Sharded
	rows atomic.Int64

	keyMu sync.Mutex
	keys  []Key

	// born is when the first row landed (atomically published once),
	// for FlushAge.
	born atomic.Int64
}

func newMemtable(shards int) *memtable {
	return &memtable{sh: dataset.NewSharded(shards)}
}

func (m *memtable) addKey(router, key string) {
	m.keyMu.Lock()
	m.keys = append(m.keys, Key{Router: router, Key: key})
	m.keyMu.Unlock()
}

func (m *memtable) noteRows(n int) {
	if n <= 0 {
		return
	}
	if m.rows.Add(int64(n)) == int64(n) {
		m.born.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// segFile is one committed on-disk segment.
type segFile struct {
	path string
	meta Meta
}

// Store is the segment-backed implementation of dataset.IngestStore.
type Store struct {
	opt Options
	hb  *heartbeat.Log

	// rot guards the live memtable pointer: appliers hold it shared,
	// rotation holds it exclusively.
	rot sync.RWMutex
	mem *memtable

	// flushMu serializes seal/flush/compact/subscribe.
	flushMu sync.Mutex

	// segMu guards segs, frozen, roster, and the seal-subscriber list.
	segMu  sync.RWMutex
	segs   []segFile
	frozen *memtable // sealed, not yet durable; nil otherwise
	roster map[string]string
	onSeal []func(*dataset.Store)

	nextSeq uint64

	stopc  chan struct{}
	bgDone sync.WaitGroup
	kick   chan struct{}

	flushErr atomic.Value // error string of the last failed flush, for ops
}

// Open loads (or creates) a segment store in opt.Dir: stray .tmp files
// from interrupted commits are removed, a torn tail segment (bad magic,
// short file, footer CRC mismatch) is quarantined to <name>.corrupt,
// segments fully covered by a compacted successor are deleted, and the
// dedupe index is re-seeded from every surviving segment's key block,
// oldest first.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("segment: Options.Dir required")
	}
	if opt.FlushRows <= 0 {
		opt.FlushRows = DefaultFlushRows
	}
	if opt.CompactAt <= 0 {
		opt.CompactAt = DefaultCompactAt
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	s := &Store{
		opt:    opt,
		hb:     heartbeat.NewLog(),
		mem:    newMemtable(opt.Shards),
		roster: make(map[string]string),
		stopc:  make(chan struct{}),
		kick:   make(chan struct{}, 1),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.bgDone.Add(1)
	go s.background()
	return s, nil
}

// load scans the directory, validates every segment, heals crash
// leftovers, and seeds the memtable dedupe index.
func (s *Store) load() error {
	ents, err := os.ReadDir(s.opt.Dir)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	var files []segFile
	for _, ent := range ents {
		name := ent.Name()
		path := filepath.Join(s.opt.Dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// An interrupted commit: the rename never happened, so the
			// segment was never live. Its rows are still in the
			// upstream spool's redelivery window.
			os.Remove(path)
			continue
		}
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("segment: %w", err)
		}
		r, err := NewReader(b)
		if err != nil {
			// Torn or corrupt segment. Quarantine rather than delete:
			// the bytes stay for forensics, but the store no longer
			// loads them. Rows it held re-arrive via upstream
			// redelivery and dedupe cleanly (their keys died with it).
			if qerr := os.Rename(path, path+".corrupt"); qerr != nil {
				return fmt.Errorf("segment: quarantine %s: %w", name, qerr)
			}
			continue
		}
		files = append(files, segFile{path: path, meta: r.Meta()})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].meta.Seq.First != files[j].meta.Seq.First {
			return files[i].meta.Seq.First < files[j].meta.Seq.First
		}
		// A compacted segment orders after the inputs it covers.
		return files[i].meta.Seq.Last > files[j].meta.Seq.Last
	})
	// Supersession: a crash between a compaction's rename and its input
	// deletion leaves both the compacted segment and its inputs on
	// disk. The compacted footer records what it replaces; drop (and
	// delete) any segment fully covered by another's seq range.
	live := files[:0]
	for _, f := range files {
		covered := false
		for _, g := range files {
			if g.path != f.path && g.meta.Seq.contains(f.meta.Seq) {
				covered = true
				break
			}
		}
		if covered {
			os.Remove(f.path)
			continue
		}
		live = append(live, f)
	}
	s.segs = append([]segFile(nil), live...)
	for _, f := range s.segs {
		if f.meta.Seq.Last >= s.nextSeq {
			s.nextSeq = f.meta.Seq.Last + 1
		}
		for id, cc := range f.meta.Roster {
			s.roster[id] = cc
		}
	}
	// Re-seed dedupe from every surviving segment, oldest first, so the
	// FIFO eviction window matches a store that never restarted.
	for _, f := range s.segs {
		keys, err := s.readKeys(f)
		if err != nil {
			return err
		}
		for _, k := range keys {
			s.mem.sh.Apply(k.Router, k.Key, func(*dataset.Store) {})
		}
	}
	return nil
}

func (s *Store) readKeys(f segFile) ([]Key, error) {
	b, err := os.ReadFile(f.path)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	r, err := NewReader(b)
	if err != nil {
		return nil, fmt.Errorf("segment: reread %s: %w", f.path, err)
	}
	return r.Keys()
}

// Close stops background work and flushes the memtable so every
// ingested row is durable.
func (s *Store) Close() error {
	s.flushMu.Lock()
	select {
	case <-s.stopc:
		s.flushMu.Unlock()
		return nil
	default:
	}
	close(s.stopc)
	s.flushMu.Unlock()
	s.bgDone.Wait()
	return s.Flush()
}

// background runs size-triggered flushes off the ingest path plus the
// age ticker and compaction.
func (s *Store) background() {
	defer s.bgDone.Done()
	tick := time.NewTicker(s.ageTick())
	defer tick.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-s.kick:
			s.Flush()
		case <-tick.C:
			if s.opt.FlushAge <= 0 {
				continue
			}
			s.rot.RLock()
			born := s.mem.born.Load()
			s.rot.RUnlock()
			if born != 0 && time.Since(time.Unix(0, born)) >= s.opt.FlushAge {
				s.Flush()
			}
		}
	}
}

func (s *Store) ageTick() time.Duration {
	if s.opt.FlushAge > 0 {
		if t := s.opt.FlushAge / 4; t > 0 {
			return t
		}
	}
	return time.Second
}

// rowsOf is the per-apply row accounting used to size the memtable.
func rowsOf(st *dataset.Store) int {
	return len(st.Uptime) + len(st.Capacity) + len(st.Counts) + len(st.Sightings) +
		len(st.WiFi) + len(st.Flows) + len(st.Throughput)
}

// Apply implements dataset.IngestStore: exactly-once ingest into the
// live memtable, with the applied key tracked for the next flush's key
// block.
func (s *Store) Apply(router, key string, apply func(*dataset.Store)) bool {
	s.rot.RLock()
	m := s.mem
	grown := 0
	ok := m.sh.Apply(router, key, func(st *dataset.Store) {
		before := rowsOf(st)
		apply(st)
		grown = rowsOf(st) - before
	})
	if ok {
		if key != "" {
			m.addKey(router, key)
		}
		m.noteRows(grown)
	}
	s.rot.RUnlock()
	s.maybeKick(m)
	return ok
}

// Append implements dataset.IngestStore (no dedupe, no key tracking).
func (s *Store) Append(router string, apply func(*dataset.Store)) {
	s.rot.RLock()
	m := s.mem
	grown := 0
	m.sh.Append(router, func(st *dataset.Store) {
		before := rowsOf(st)
		apply(st)
		grown = rowsOf(st) - before
	})
	m.noteRows(grown)
	s.rot.RUnlock()
	s.maybeKick(m)
}

func (s *Store) maybeKick(m *memtable) {
	if int(m.rows.Load()) < s.opt.FlushRows {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Flush seals the live memtable (if it holds any rows) and commits it
// as one segment. Safe to call concurrently; flushes serialize.
func (s *Store) Flush() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	// A generation frozen by an earlier flush whose commit failed must
	// reach disk before anything newer seals — rotating again would
	// need a second frozen slot, and segment order must match arrival
	// order anyway.
	if err := s.commitFrozen(); err != nil {
		s.flushErr.Store(err.Error())
		return err
	}

	// Swap in a successor that already rejects everything the sealed
	// generation applied. The write lock excludes appliers, so no row
	// or key lands in the sealed generation after this point and no
	// replay slips into the successor before the adoption.
	s.rot.Lock()
	old := s.mem
	old.keyMu.Lock()
	nkeys := len(old.keys)
	old.keyMu.Unlock()
	if old.rows.Load() == 0 && nkeys == 0 && len(old.sh.Roster()) == 0 {
		s.rot.Unlock()
		return nil
	}
	fresh := newMemtable(s.opt.Shards)
	fresh.sh.AdoptDedupe(old.sh)
	s.mem = fresh
	s.segMu.Lock()
	s.frozen = old
	s.segMu.Unlock()
	s.rot.Unlock()

	if err := s.commitFrozen(); err != nil {
		// The sealed generation stays in the frozen slot: still
		// queryable, still deduped (the successor adopted its keys),
		// retried on the next flush trigger.
		s.flushErr.Store(err.Error())
		return err
	}

	if !s.opt.NoCompaction {
		if err := s.compactLocked(); err != nil {
			s.flushErr.Store(err.Error())
		}
	}
	return nil
}

// commitFrozen persists the frozen generation (if any) as one segment
// and publishes it. Caller holds flushMu.
func (s *Store) commitFrozen() error {
	s.segMu.RLock()
	old := s.frozen
	s.segMu.RUnlock()
	if old == nil {
		return nil
	}
	snap := old.sh.Merge()
	seq := SeqRange{First: s.nextSeq, Last: s.nextSeq}
	b := Encode(snap, old.keys, seq, nil)
	path := filepath.Join(s.opt.Dir, segName(seq))
	if err := writeAtomic(path, b); err != nil {
		return err
	}

	s.segMu.Lock()
	s.segs = append(s.segs, segFile{path: path, meta: metaOf(snap, seq, nil, len(old.keys))})
	for id, cc := range snap.RouterCountry {
		s.roster[id] = cc
	}
	s.frozen = nil
	subs := make([]func(*dataset.Store), len(s.onSeal))
	copy(subs, s.onSeal)
	s.segMu.Unlock()
	s.nextSeq++

	for _, fn := range subs {
		fn(snap)
	}
	return nil
}

// metaOf builds the in-memory Meta for a just-encoded snapshot without
// re-parsing the file.
func metaOf(snap *dataset.Store, seq SeqRange, replaces []SeqRange, keyRows int) Meta {
	m := Meta{Seq: seq, Replaces: replaces, KeyRows: keyRows}
	m.MinTime, m.MaxTime, m.HasTimeRange = timeRange(snap)
	m.Roster = make(map[string]string, len(snap.RouterCountry))
	for id, cc := range snap.RouterCountry {
		m.Roster[id] = cc
	}
	m.Rows = dataset.RowCounts{
		Routers:    len(snap.RouterCountry),
		Uptime:     len(snap.Uptime),
		Capacity:   len(snap.Capacity),
		Counts:     len(snap.Counts),
		Sightings:  len(snap.Sightings),
		WiFi:       len(snap.WiFi),
		Flows:      len(snap.Flows),
		Throughput: len(snap.Throughput),
	}
	return m
}

func segName(seq SeqRange) string {
	return fmt.Sprintf("%016x-%016x.seg", seq.First, seq.Last)
}

// writeAtomic commits bytes with the tmp → fsync → rename discipline;
// the directory is synced after the rename so the new name survives a
// crash.
func writeAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// compactLocked folds the oldest run of seq-adjacent segments whose
// time ranges overlap into one segment when the live count exceeds
// CompactAt. Only adjacent-in-seq runs are eligible — compaction must
// not reorder rows — and the output records the replaced seq ranges so
// a crash between its rename and the input deletion heals at open.
func (s *Store) compactLocked() error {
	s.segMu.RLock()
	segs := append([]segFile(nil), s.segs...)
	s.segMu.RUnlock()
	if len(segs) <= s.opt.CompactAt {
		return nil
	}
	run := pickCompactRun(segs, maxCompactInputs)
	if len(run) < 2 {
		return nil
	}

	merged := &dataset.Store{RouterCountry: make(map[string]string)}
	var keys []Key
	var replaces []SeqRange
	for _, f := range run {
		b, err := os.ReadFile(f.path)
		if err != nil {
			return fmt.Errorf("segment: compact: %w", err)
		}
		st, ks, _, err := Decode(b)
		if err != nil {
			return fmt.Errorf("segment: compact %s: %w", f.path, err)
		}
		merged.Uptime = append(merged.Uptime, st.Uptime...)
		merged.Capacity = append(merged.Capacity, st.Capacity...)
		merged.Counts = append(merged.Counts, st.Counts...)
		merged.Sightings = append(merged.Sightings, st.Sightings...)
		merged.WiFi = append(merged.WiFi, st.WiFi...)
		merged.Flows = append(merged.Flows, st.Flows...)
		merged.Throughput = append(merged.Throughput, st.Throughput...)
		for id, cc := range st.RouterCountry {
			merged.RouterCountry[id] = cc
		}
		keys = append(keys, ks...)
		replaces = append(replaces, f.meta.Seq)
	}
	seq := SeqRange{First: run[0].meta.Seq.First, Last: run[len(run)-1].meta.Seq.Last}
	b := Encode(merged, keys, seq, replaces)
	path := filepath.Join(s.opt.Dir, segName(seq))
	if err := writeAtomic(path, b); err != nil {
		return err
	}

	// Commit point passed: swap the metas, then delete the inputs
	// (best-effort — open-time supersession covers a crash here).
	out := segFile{path: path, meta: metaOf(merged, seq, replaces, len(keys))}
	s.segMu.Lock()
	var next []segFile
	inserted := false
	for _, f := range s.segs {
		if inRun(run, f.path) {
			if !inserted {
				next = append(next, out)
				inserted = true
			}
			continue
		}
		next = append(next, f)
	}
	s.segs = next
	s.segMu.Unlock()
	for _, f := range run {
		os.Remove(f.path)
	}
	return nil
}

func inRun(run []segFile, path string) bool {
	for _, f := range run {
		if f.path == path {
			return true
		}
	}
	return false
}

// pickCompactRun extends a run from the oldest segment while the next
// segment's time range overlaps the union so far (capped at maxIn).
// Segments with disjoint time ranges are already well-partitioned and
// stay separate; the scan advances past them looking for the first
// overlapping adjacent pair.
func pickCompactRun(segs []segFile, maxIn int) []segFile {
	for start := 0; start < len(segs)-1; start++ {
		a := segs[start]
		if !a.meta.HasTimeRange {
			// Metadata-only segments merge with anything adjacent.
			return segs[start : start+2]
		}
		lo, hi := a.meta.MinTime, a.meta.MaxTime
		run := []segFile{a}
		for _, f := range segs[start+1:] {
			if len(run) >= maxIn {
				break
			}
			if f.meta.HasTimeRange && (f.meta.MaxTime.Before(lo) || f.meta.MinTime.After(hi)) {
				break // disjoint: the run ends here
			}
			if f.meta.HasTimeRange {
				if f.meta.MinTime.Before(lo) {
					lo = f.meta.MinTime
				}
				if f.meta.MaxTime.After(hi) {
					hi = f.meta.MaxTime
				}
			}
			run = append(run, f)
		}
		if len(run) >= 2 {
			return run
		}
	}
	return nil
}

// Compact runs one compaction pass regardless of thresholds (tests and
// ops tooling).
func (s *Store) Compact() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	return s.compactLocked()
}

// Merge implements dataset.IngestStore: the batch view. Sealed segments
// decode from disk in seq order, then the sealed-but-uncommitted
// generation (if a flush is mid-commit), then the live memtable.
//
// A compaction can delete a segment file between this function's
// snapshot of the list and the read; that attempt restarts with a fresh
// snapshot, and after a few restarts it runs under flushMu, which
// excludes compaction entirely.
func (s *Store) Merge() *dataset.Store {
	for i := 0; i < 3; i++ {
		if out, ok := s.mergeOnce(true); ok {
			return out
		}
	}
	// Authoritative pass: no compaction can race now. A segment that
	// still fails to read here is corrupt on disk; skipping it beats
	// returning nothing (upstream redelivery + dedupe recover its rows
	// on the next restart, when Open quarantines it).
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	out, _ := s.mergeOnce(false)
	return out
}

func (s *Store) mergeOnce(strict bool) (*dataset.Store, bool) {
	out := &dataset.Store{
		Heartbeats:    s.hb,
		RouterCountry: make(map[string]string),
	}
	s.rot.RLock()
	mem := s.mem
	s.segMu.RLock()
	segs := append([]segFile(nil), s.segs...)
	frozen := s.frozen
	s.segMu.RUnlock()
	s.rot.RUnlock()

	for _, f := range segs {
		st, err := readRows(f.path)
		if err != nil {
			if strict {
				return nil, false
			}
			s.flushErr.Store(err.Error())
			continue
		}
		appendStore(out, st)
	}
	if frozen != nil {
		appendStore(out, frozen.sh.Merge())
	}
	appendStore(out, mem.sh.Merge())
	return out, true
}

func readRows(path string) (*dataset.Store, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	r, err := NewReader(b)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: %w", filepath.Base(path), err)
	}
	return r.Rows()
}

func appendStore(dst, src *dataset.Store) {
	dst.Uptime = append(dst.Uptime, src.Uptime...)
	dst.Capacity = append(dst.Capacity, src.Capacity...)
	dst.Counts = append(dst.Counts, src.Counts...)
	dst.Sightings = append(dst.Sightings, src.Sightings...)
	dst.WiFi = append(dst.WiFi, src.WiFi...)
	dst.Flows = append(dst.Flows, src.Flows...)
	dst.Throughput = append(dst.Throughput, src.Throughput...)
	for id, cc := range src.RouterCountry {
		dst.RouterCountry[id] = cc
	}
}

// Tail returns the rows not yet covered by a sealed segment (the
// sealed-but-uncommitted generation plus the live memtable), sharing
// the heartbeat log. The incremental dashboard folds sealed chunks once
// and recomputes only this tail per render.
func (s *Store) Tail() *dataset.Store {
	out := &dataset.Store{
		Heartbeats:    s.hb,
		RouterCountry: make(map[string]string),
	}
	s.rot.RLock()
	mem := s.mem
	s.segMu.RLock()
	frozen := s.frozen
	s.segMu.RUnlock()
	s.rot.RUnlock()
	if frozen != nil {
		appendStore(out, frozen.sh.Merge())
	}
	appendStore(out, mem.sh.Merge())
	return out
}

// Subscribe registers fn to receive every sealed segment's rows as an
// immutable chunk: first each existing on-disk segment (decoded, in seq
// order), then every future seal, with no gap and no duplicate. fn runs
// on the flushing goroutine and must not call back into the store; the
// chunk is never touched by the store again, so fn may retain it but
// must not mutate it (other subscribers see the same chunk).
func (s *Store) Subscribe(fn func(chunk *dataset.Store)) error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.segMu.RLock()
	segs := append([]segFile(nil), s.segs...)
	s.segMu.RUnlock()
	for _, f := range segs {
		st, err := readRows(f.path)
		if err != nil {
			return fmt.Errorf("segment: replay: %w", err)
		}
		fn(st)
	}
	s.segMu.Lock()
	s.onSeal = append(s.onSeal, fn)
	s.segMu.Unlock()
	return nil
}

// RowCounts implements dataset.IngestStore without decoding anything:
// cached per-segment footer counts plus the in-memory generations.
func (s *Store) RowCounts() dataset.RowCounts {
	var rc dataset.RowCounts
	s.rot.RLock()
	mem := s.mem
	s.segMu.RLock()
	segs := append([]segFile(nil), s.segs...)
	frozen := s.frozen
	roster := make(map[string]struct{}, len(s.roster))
	for id := range s.roster {
		roster[id] = struct{}{}
	}
	s.segMu.RUnlock()
	s.rot.RUnlock()

	add := func(o dataset.RowCounts) {
		rc.Uptime += o.Uptime
		rc.Capacity += o.Capacity
		rc.Counts += o.Counts
		rc.Sightings += o.Sightings
		rc.WiFi += o.WiFi
		rc.Flows += o.Flows
		rc.Throughput += o.Throughput
	}
	for _, f := range segs {
		add(f.meta.Rows)
	}
	if frozen != nil {
		add(frozen.sh.RowCounts())
		for id := range frozen.sh.Roster() {
			roster[id] = struct{}{}
		}
	}
	add(mem.sh.RowCounts())
	for id := range mem.sh.Roster() {
		roster[id] = struct{}{}
	}
	rc.Routers = len(roster)
	return rc
}

// DedupeLen implements dataset.IngestStore. The live memtable's index
// is the full window: it adopted every predecessor's keys at rotation
// (and at Open, from disk).
func (s *Store) DedupeLen() int {
	s.rot.RLock()
	defer s.rot.RUnlock()
	return s.mem.sh.DedupeLen()
}

// HeartbeatLog implements dataset.IngestStore. Heartbeats live outside
// the segment files (see the package comment in format.go).
func (s *Store) HeartbeatLog() *heartbeat.Log { return s.hb }

// Save implements dataset.IngestStore: the standard CSV layout of the
// full merged view. This is the cold batch path — incremental consumers
// use Subscribe/Tail.
func (s *Store) Save(dir string) error { return s.Merge().Save(dir) }

// Segments returns the live segment metadata in seq order (ops and
// tests).
func (s *Store) Segments() []Meta {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	out := make([]Meta, len(s.segs))
	for i, f := range s.segs {
		out[i] = f.meta
	}
	return out
}

// LastFlushError reports the most recent background flush/compaction
// failure ("" when healthy).
func (s *Store) LastFlushError() string {
	if v := s.flushErr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

var _ dataset.IngestStore = (*Store)(nil)
