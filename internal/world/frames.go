package world

import (
	"net/netip"
	"sort"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/eventsim"
	"natpeek/internal/gateway"
	"natpeek/internal/household"
	"natpeek/internal/mac"
	"natpeek/internal/packet"
	"natpeek/internal/trafficgen"
)

// flowTimeout mirrors capture.Config's default idle expiry. The oracle
// below simulates the monitor's flow table, so the two must agree on
// when an idle flow finishes.
const flowTimeout = 5 * time.Minute

// liveKey identifies one capture flow pre-anonymization. The monitor
// keys flows on (anonymized device, proto, anonymized remote, remote
// port, local port); anonymization is injective, so distinctness — all
// the oracle needs — is preserved by the raw identifiers.
type liveKey struct {
	dev    mac.Addr
	proto  packet.IPProto
	remote netip.Addr
	rPort  uint16
	lPort  uint16
}

type frameEvt struct {
	fr  trafficgen.Frame
	key liveKey
}

// emitTrafficFrames generates the Traffic data set by rendering each
// statistical flow into raw Ethernet frames and feeding them to the
// agent's passive monitor — the same path a live router's capture
// takes: DNS sniffing, anonymization, flow accounting, idle expiry,
// per-minute throughput, and the periodic/final export split.
//
// While feeding, it runs a shadow flow table with the same idle-expiry
// rule as the monitor, so Acct.ExpectedFlowRecords predicts the exact
// number of flow records the agent must export. Any divergence —
// a dropped frame, a flow split or merged wrongly, an export lost —
// breaks the conservation invariants.
func (w *World) emitTrafficFrames(p *household.Profile, agent *gateway.Agent) {
	gen := trafficgen.New(p)
	online := p.OnlineIntervals(w.Cfg.TrafficFrom, w.Cfg.TrafficTo)
	frnd := p.Rand().Child("frames")

	gwMAC := mac.FromOUI(0x0018F8, uint32(p.Rand().Child("gw-mac").Uint64()&0xffffff))
	devIPs := make(map[mac.Addr]netip.Addr, len(p.Devices))
	for i, d := range p.Devices {
		devIPs[d.HW] = netip.AddrFrom4([4]byte{192, 168, 1, byte(10 + i%240)})
	}
	resolver := netip.MustParseAddr("8.8.8.8")

	// Render every flow of the window into time-stamped frames, each
	// annotated with the capture flow it belongs to.
	var evts []frameEvt
	remotes := make(map[netip.Addr]bool)
	for day := w.Cfg.TrafficFrom; day.Before(w.Cfg.TrafficTo); day = day.Add(24 * time.Hour) {
		dt := gen.GenerateDay(day, online)
		for _, f := range dt.Flows {
			ff := trafficgen.RenderFlow(f, trafficgen.FrameOpts{
				GatewayMAC: gwMAC,
				DeviceIP:   devIPs[f.Device.HW],
				ResolverIP: resolver,
			}, frnd)
			remotes[ff.Remote] = true
			dnsKey := liveKey{f.Device.HW, packet.ProtoUDP, resolver, 53, ff.DPort}
			tcpKey := liveKey{f.Device.HW, packet.ProtoTCP, ff.Remote, 443, ff.SPort}
			for _, fr := range ff.DNS {
				evts = append(evts, frameEvt{fr, dnsKey})
			}
			for _, fr := range ff.TCP {
				evts = append(evts, frameEvt{fr, tcpKey})
			}
		}
	}
	sort.SliceStable(evts, func(i, j int) bool { return evts[i].fr.At.Before(evts[j].fr.At) })

	// Flush schedule: one deliberately minute-unaligned flush mid-day
	// (periodic report tasks are jittered, so real flushes land
	// mid-minute — this is what caught the partial-minute double
	// export), plus one at each day boundary.
	var flushes []time.Time
	for day := w.Cfg.TrafficFrom; day.Before(w.Cfg.TrafficTo); day = day.Add(24 * time.Hour) {
		flushes = append(flushes, day.Add(12*time.Hour+30*time.Second), day.Add(24*time.Hour))
	}

	clk := clock.NewSim(w.Cfg.TrafficFrom)
	sched := eventsim.New(clk, p.Rand().Child("frame-sched"))
	agent.PowerOn(sched)

	live := make(map[liveKey]time.Time)
	var expected int64
	flushAt := func(t time.Time) {
		agent.FlushTrafficNow(t)
		for k, last := range live {
			if t.Sub(last) >= flowTimeout {
				delete(live, k)
				expected++
			}
		}
	}

	fi := 0
	for _, e := range evts {
		for fi < len(flushes) && !flushes[fi].After(e.fr.At) {
			flushAt(flushes[fi])
			fi++
		}
		agent.HandleFrame(e.fr.Raw, e.fr.Up, e.fr.At)
		live[e.key] = e.fr.At
		w.Acct.Frames++
		if e.fr.Up {
			w.Acct.FrameUpBytes += int64(len(e.fr.Raw))
		} else {
			w.Acct.FrameDownBytes += int64(len(e.fr.Raw))
		}
	}
	for ; fi < len(flushes); fi++ {
		flushAt(flushes[fi])
	}
	// Power-off finishes every live flow, so nothing stays in flight.
	expected += int64(len(live))
	agent.PowerOff(w.Cfg.TrafficTo)

	w.Acct.ExpectedFlowRecords += expected
	w.Acct.DNSDistinctRemotes += int64(len(remotes))
}
