// Package world builds and runs the synthetic deployment that stands in
// for the paper's 126 homes in 19 countries. It generates household
// profiles from the Table 1 roster, then fills a dataset.Store with the
// six Table 2 data sets over their original collection windows:
//
//   - Heartbeats and Uptime come from each home's power/ISP availability
//     model (run-length-encoded minute heartbeats);
//   - Devices and WiFi rows are produced by a real gateway.Agent per
//     home, driven over the census/scan schedule against simulated
//     radios and device presence — the same code path as a live router;
//   - Capacity rows come from real ShaperProbe runs through each home's
//     simulated access link (token bucket, bufferbloat and all);
//   - Traffic rows come from the statistical flow generator for the
//     consenting-home subset (25 US homes in the paper), anonymized with
//     the same policy the live capture uses.
//
// Everything is deterministic from Config.Seed.
package world

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/dataset"
	"natpeek/internal/gateway"
	"natpeek/internal/geo"
	"natpeek/internal/heartbeat"
	"natpeek/internal/household"
	"natpeek/internal/linksim"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
	"natpeek/internal/shaperprobe"
	"natpeek/internal/telemetry"
	"natpeek/internal/trafficgen"
	"natpeek/internal/wifi"
)

// Config controls a deployment build.
type Config struct {
	// Seed drives every random draw.
	Seed uint64

	// Scale multiplies each country's router count (1.0 = the paper's
	// 126 routers). Tests use smaller scales. Each country keeps ≥1
	// router so the per-country analyses stay meaningful.
	Scale float64

	// TrafficHomes is the number of consenting US homes (paper: 25).
	TrafficHomes int

	// GlobalTraffic implements the §7 extension ("expanding the study of
	// usage to more countries"): up to two homes per non-US country also
	// consent to Traffic collection.
	GlobalTraffic bool

	// Countries, when non-empty, restricts the deployment to these
	// country codes. The verify harness uses it to build small worlds
	// without dragging in one router from each of the 19 countries.
	Countries []string

	// RoutersPerCountry, when positive, fixes the router count per
	// country instead of scaling the Table 1 roster.
	RoutersPerCountry int

	// FrameTraffic routes the Traffic data set of consenting homes
	// through the real capture pipeline: flows are rendered to raw
	// Ethernet frames (DNS lookup, TCP handshake, data, FIN) and fed to
	// the agent's passive monitor, which rebuilds flow records and
	// throughput from the wire. Slower than the statistical fast path;
	// the verify harness uses it because it exercises — and byte-accounts
	// — the same code a live router runs.
	FrameTraffic bool

	// Windows; zero values default to the Table 2 windows.
	HeartbeatsFrom, HeartbeatsTo time.Time
	UptimeFrom, UptimeTo         time.Time
	WiFiFrom, WiFiTo             time.Time
	CapacityFrom, CapacityTo     time.Time
	TrafficFrom, TrafficTo       time.Time

	// ProbeTrainLength for capacity measurement (default 60).
	ProbeTrainLength int
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.TrafficHomes <= 0 {
		c.TrafficHomes = 25
	}
	def := func(t *time.Time, v time.Time) {
		if t.IsZero() {
			*t = v
		}
	}
	def(&c.HeartbeatsFrom, dataset.HeartbeatsFrom)
	def(&c.HeartbeatsTo, dataset.HeartbeatsTo)
	def(&c.UptimeFrom, dataset.UptimeFrom)
	def(&c.UptimeTo, dataset.UptimeTo)
	def(&c.WiFiFrom, dataset.WiFiFrom)
	def(&c.WiFiTo, dataset.WiFiTo)
	def(&c.CapacityFrom, dataset.CapacityFrom)
	def(&c.CapacityTo, dataset.CapacityTo)
	def(&c.TrafficFrom, dataset.TrafficFrom)
	def(&c.TrafficTo, dataset.TrafficTo)
	if c.ProbeTrainLength <= 0 {
		c.ProbeTrainLength = 60
	}
}

// Home is one deployed household.
type Home struct {
	Profile *household.Profile
	Consent bool
}

// Accounting tallies what the world generated, alongside what its
// agents exported — the "what went in" side of the verify harness's
// conservation invariants (the collector's store is "what came out").
type Accounting struct {
	Homes            int64
	HeartbeatBeats   int64 // minute beats generated from availability models
	UptimeReports    int64 // 12-hourly reports scheduled while powered
	CapacityMeasures int64 // ShaperProbe runs executed by the world

	// Statistical fast-path traffic (FrameTraffic off).
	GenFlows     int64
	GenUpBytes   int64
	GenDownBytes int64

	// Frame-mode traffic (FrameTraffic on): raw frames fed to monitors,
	// and the oracle's expectations for what capture must rebuild.
	Frames              int64
	FrameUpBytes        int64
	FrameDownBytes      int64
	ExpectedFlowRecords int64 // flow-expiry simulation, must equal exported records
	DNSDistinctRemotes  int64 // distinct server addrs answered over DNS
	DNSCacheEntries     int64 // what the monitors' sniffers actually learned

	// Export is the merged gateway-side accounting across all agents.
	Export gateway.ExportStats
}

// World is a built deployment.
type World struct {
	Cfg   Config
	Homes []*Home
	Store *dataset.Store
	Acct  Accounting

	root *rng.Stream
}

// Build generates the deployment roster.
func Build(cfg Config) *World {
	cfg.fill()
	w := &World{Cfg: cfg, Store: dataset.NewStore(), root: rng.New(cfg.Seed)}
	consentLeft := cfg.TrafficHomes
	keep := make(map[string]bool, len(cfg.Countries))
	for _, cc := range cfg.Countries {
		keep[cc] = true
	}
	for _, c := range geo.All() {
		if len(keep) > 0 && !keep[c.Code] {
			continue
		}
		n := cfg.RoutersPerCountry
		if n <= 0 {
			n = int(math.Round(float64(c.Routers) * cfg.Scale))
		}
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			p := household.Generate(c, i, w.root)
			h := &Home{Profile: p}
			// Consent concentrates in the US, as in the study ("we were
			// only able to collect passive traffic traces from 25 homes
			// in the United States").
			if c.Code == "US" && consentLeft > 0 {
				h.Consent = true
				consentLeft--
			}
			if cfg.GlobalTraffic && c.Code != "US" && i < 2 {
				h.Consent = true
			}
			w.Homes = append(w.Homes, h)
			w.Store.RouterCountry[p.ID] = c.Code
		}
	}
	// The paper's Traffic subset contained two homes that continuously
	// saturate their uplink (Fig. 16); pin that phenomenon into the
	// consenting subset so the case study always has subjects.
	consenting := w.ConsentingHomes()
	if n := len(consenting); n >= 2 {
		consenting[n/3].Profile.UplinkSaturator = true
		consenting[2*n/3].Profile.UplinkSaturator = true
	}
	return w
}

// Run fills the store with every data set. It is deterministic. Progress
// is visible on a telemetry debug listener while a large run executes:
// natpeek_sim_homes_done_total counts finished homes against the
// natpeek_sim_homes gauge, and the eventsim counters track task firings
// and simulated time inside the current home.
func (w *World) Run() error { return w.RunWith(nil) }

// RunWith runs the deployment with a caller-chosen sink per home.
// sinkFor returns the sink for one home plus an optional close func
// invoked after that home's windows finish (flush + teardown); a nil
// sinkFor (or a nil returned sink) falls back to writing the world's
// own Store directly. The verify harness passes collector clients here,
// so every row travels the agent→spool→HTTP→collector path instead.
func (w *World) RunWith(sinkFor func(h *Home) (gateway.Sink, func() error, error)) error {
	done := telemetry.Default.Counter("natpeek_sim_homes_done_total",
		"Homes whose full collection windows have been simulated.")
	telemetry.Default.Gauge("natpeek_sim_homes",
		"Homes in the deployment being simulated.").Set(float64(len(w.Homes)))
	for _, h := range w.Homes {
		sink := gateway.Sink(nil)
		var closeSink func() error
		if sinkFor != nil {
			s, cl, err := sinkFor(h)
			if err != nil {
				return fmt.Errorf("world: %s: sink: %w", h.Profile.ID, err)
			}
			sink, closeSink = s, cl
		}
		if sink == nil {
			sink = &storeSink{w.Store}
		}
		err := w.runHome(h, sink)
		if closeSink != nil {
			if cerr := closeSink(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("world: %s: %w", h.Profile.ID, err)
		}
		done.Inc()
	}
	return nil
}

// HeartbeatRunSink is an optional sink capability: accept a whole
// run-length-encoded heartbeat run in one call. Sinks without it get
// one Heartbeat call per minute beat, which is equivalent but slow for
// month-long windows.
type HeartbeatRunSink interface {
	HeartbeatRun(id string, r heartbeat.Run)
}

// storeSink adapts the dataset store to gateway.Sink.
type storeSink struct{ st *dataset.Store }

func (s *storeSink) Heartbeat(id string, at time.Time) { s.st.Heartbeats.Record(id, at) }
func (s *storeSink) UptimeReport(r dataset.UptimeReport) {
	s.st.Uptime = append(s.st.Uptime, r)
}
func (s *storeSink) CapacityMeasure(c dataset.CapacityMeasure) {
	s.st.Capacity = append(s.st.Capacity, c)
}
func (s *storeSink) DeviceCensus(c dataset.DeviceCount, sg []dataset.DeviceSighting) {
	s.st.Counts = append(s.st.Counts, c)
	s.st.Sightings = append(s.st.Sightings, sg...)
}
func (s *storeSink) WiFiScan(scans []dataset.WiFiScan) { s.st.WiFi = append(s.st.WiFi, scans...) }
func (s *storeSink) TrafficFlows(f []dataset.FlowRecord) {
	s.st.Flows = append(s.st.Flows, f...)
}
func (s *storeSink) TrafficThroughput(ts []dataset.ThroughputSample) {
	s.st.Throughput = append(s.st.Throughput, ts...)
}

func (s *storeSink) HeartbeatRun(id string, r heartbeat.Run) { s.st.Heartbeats.RecordRun(id, r) }

func (w *World) runHome(h *Home, sink gateway.Sink) error {
	p := h.Profile

	// Agent wired to simulated radios; its anonymization policy is the
	// one used for every exported identifier of this study period.
	env := w.buildEnv(p)
	agent := gateway.New(gateway.Config{
		ID:             p.ID,
		LANPrefix:      netip.MustParsePrefix("192.168.1.0/24"),
		AnonKey:        []byte("natpeek-study-2013"),
		TrafficConsent: h.Consent,
	}, sink, env)

	w.emitHeartbeats(p, sink)
	w.emitUptime(p, agent)
	w.emitDeviceCensus(p, agent, env)
	w.emitWiFiScans(p, agent, env)
	w.emitCapacity(p, sink)
	if h.Consent {
		if w.Cfg.FrameTraffic {
			w.emitTrafficFrames(p, agent)
		} else {
			w.emitTraffic(p, agent, sink)
		}
	}
	w.Acct.Homes++
	w.Acct.DNSCacheEntries += int64(agent.Monitor().DNSCacheLen())
	w.Acct.Export.Add(agent.ExportStats())
	return nil
}

func (w *World) buildEnv(p *household.Profile) *gateway.Env {
	neigh := wifi.NewEnvironment()
	nr := p.Rand().Child("neigh-aps")
	for i := 0; i < p.NeighborAPs24; i++ {
		neigh.AddAP(wifi.AP{
			BSSID: mac.FromOUI(0x0018F8, uint32(nr.Uint64()&0xffffff)),
			SSID:  fmt.Sprintf("neighbor-%d", i), Band: wifi.Band24, Channel: 11,
			RSSI: -45 - nr.Intn(40),
		})
	}
	for i := 0; i < p.NeighborAPs5; i++ {
		neigh.AddAP(wifi.AP{
			BSSID: mac.FromOUI(0x001B11, uint32(nr.Uint64()&0xffffff)),
			SSID:  fmt.Sprintf("neighbor5-%d", i), Band: wifi.Band5, Channel: 36,
			RSSI: -50 - nr.Intn(35),
		})
	}
	return &gateway.Env{
		Radio24: wifi.NewRadio(wifi.Band24, neigh, p.Rand().Child("radio24")),
		Radio5:  wifi.NewRadio(wifi.Band5, neigh, p.Rand().Child("radio5")),
	}
}

// emitHeartbeats converts the home's online intervals into minute-cadence
// heartbeat runs.
func (w *World) emitHeartbeats(p *household.Profile, sink gateway.Sink) {
	online := p.OnlineIntervals(w.Cfg.HeartbeatsFrom, w.Cfg.HeartbeatsTo)
	hrs, _ := sink.(HeartbeatRunSink)
	for _, iv := range online {
		n := int(iv.Duration() / heartbeat.Interval)
		if n < 1 {
			n = 1
		}
		run := heartbeat.Run{Start: iv.Start, Interval: heartbeat.Interval, Count: n}
		if hrs != nil {
			hrs.HeartbeatRun(p.ID, run)
		} else {
			for i := 0; i < n; i++ {
				sink.Heartbeat(p.ID, run.Start.Add(time.Duration(i)*run.Interval))
			}
		}
		w.Acct.HeartbeatBeats += int64(n)
	}
}

// emitUptime produces 12-hourly uptime reports: the router reports when
// powered, with its uptime counter measuring the current power cycle.
// ISP outages do not reset it — that distinction is how §4.2 separates
// powered-off routers from offline ones.
func (w *World) emitUptime(p *household.Profile, agent *gateway.Agent) {
	power := p.PowerOnIntervals(w.Cfg.UptimeFrom, w.Cfg.UptimeTo)
	// Reports fire every 12h of wall time, phase-anchored at the window
	// start, whenever the router happens to be up.
	for t := w.Cfg.UptimeFrom; t.Before(w.Cfg.UptimeTo); t = t.Add(12 * time.Hour) {
		for _, iv := range power {
			if iv.Contains(t) {
				agent.ReportUptimeNow(t, iv.Start)
				w.Acct.UptimeReports++
				break
			}
		}
	}
}

// emitDeviceCensus drives the agent's hourly census against the home's
// device-presence model.
func (w *World) emitDeviceCensus(p *household.Profile, agent *gateway.Agent, env *gateway.Env) {
	power := p.PowerOnIntervals(w.Cfg.UptimeFrom, w.Cfg.UptimeTo)
	for t := w.Cfg.UptimeFrom; t.Before(w.Cfg.UptimeTo); t = t.Add(time.Hour) {
		if !household.CoveredAt(power, t) {
			continue
		}
		w.syncAttachments(p, env, t)
		agent.CensusNow(t)
	}
}

// syncAttachments updates the env's wired set and radio associations to
// the devices online at instant t.
func (w *World) syncAttachments(p *household.Profile, env *gateway.Env, t time.Time) {
	for _, d := range p.Devices {
		online := p.DeviceOnline(d, t)
		switch d.Conn {
		case dataset.Wired:
			if online {
				env.AttachWired(d.HW)
			} else {
				env.DetachWired(d.HW)
			}
		case dataset.Wireless24:
			if online {
				env.Radio24.Associate(d.HW)
			} else {
				env.Radio24.Disassociate(d.HW)
			}
		default:
			if online {
				env.Radio5.Associate(d.HW)
			} else {
				env.Radio5.Disassociate(d.HW)
			}
		}
	}
}

// emitWiFiScans drives the agent's 10-minute scan schedule over the WiFi
// window (throttled when clients are associated, as on the real router).
func (w *World) emitWiFiScans(p *household.Profile, agent *gateway.Agent, env *gateway.Env) {
	power := p.PowerOnIntervals(w.Cfg.WiFiFrom, w.Cfg.WiFiTo)
	lastSync := time.Time{}
	for t := w.Cfg.WiFiFrom; t.Before(w.Cfg.WiFiTo); t = t.Add(10 * time.Minute) {
		if !household.CoveredAt(power, t) {
			continue
		}
		// Refresh associations hourly (presence is hour-stable anyway).
		if t.Sub(lastSync) >= time.Hour {
			w.syncAttachments(p, env, t)
			lastSync = t
		}
		agent.ScanNow(t)
	}
}

// emitCapacity runs real ShaperProbe trains through the home's simulated
// access link every twelve hours of the Capacity window.
func (w *World) emitCapacity(p *household.Profile, sink gateway.Sink) {
	online := p.OnlineIntervals(w.Cfg.CapacityFrom, w.Cfg.CapacityTo)
	cfg := shaperprobe.Config{TrainLength: w.Cfg.ProbeTrainLength}
	for t := w.Cfg.CapacityFrom; t.Before(w.Cfg.CapacityTo); t = t.Add(12 * time.Hour) {
		if !household.CoveredAt(online, t) {
			continue
		}
		// A fresh clock per measurement: the probe is a self-contained
		// few-hundred-millisecond experiment.
		// The probe measures the sustained tier: a PowerBoost bucket many
		// times the train size would report the burst rate instead (the
		// train-length ablation bench demonstrates exactly that failure
		// mode), so the study's capacity figure is the post-burst rate.
		clk := clock.NewSim(t)
		link := linksim.NewLink(clk, p.Rand().Child("probe").ChildN("t", int(t.Unix())),
			linksim.Config{
				RateBps: p.UpBps, BufferBytes: p.BufferUpBytes,
				PropDelay: p.PropDelay,
			},
			linksim.Config{
				RateBps: p.DownBps, BufferBytes: 1 << 20,
				PropDelay: p.PropDelay,
			},
		)
		up := shaperprobe.ProbeSync(clk, link.Up, cfg)
		down := shaperprobe.ProbeSync(clk, link.Down, cfg)
		sink.CapacityMeasure(dataset.CapacityMeasure{
			RouterID:   p.ID,
			MeasuredAt: t,
			UpBps:      up.SustainedBps,
			DownBps:    down.SustainedBps,
		})
		w.Acct.CapacityMeasures++
	}
}

// emitTraffic generates the Traffic data set for one consenting home,
// anonymizing identities with the agent's policy — the same transform
// the live capture applies.
func (w *World) emitTraffic(p *household.Profile, agent *gateway.Agent, sink gateway.Sink) {
	anon := agent.Anonymizer()
	gen := trafficgen.New(p)
	online := p.OnlineIntervals(w.Cfg.TrafficFrom, w.Cfg.TrafficTo)
	for day := w.Cfg.TrafficFrom; day.Before(w.Cfg.TrafficTo); day = day.Add(24 * time.Hour) {
		dt := gen.GenerateDay(day, online)
		recs := make([]dataset.FlowRecord, 0, len(dt.Flows))
		for _, f := range dt.Flows {
			recs = append(recs, dataset.FlowRecord{
				RouterID:  p.ID,
				Device:    anon.MAC(f.Device.HW),
				Domain:    anon.Domain(f.Domain),
				Proto:     "tcp",
				First:     f.Start,
				Last:      f.End,
				UpBytes:   f.UpBytes,
				DownBytes: f.DownBytes,
				UpPkts:    f.UpBytes/1400 + 1,
				DownPkts:  f.DownBytes/1400 + 1,
				Conns:     int64(f.Conns),
			})
			w.Acct.GenFlows++
			w.Acct.GenUpBytes += f.UpBytes
			w.Acct.GenDownBytes += f.DownBytes
		}
		if len(recs) > 0 {
			sink.TrafficFlows(recs)
		}
		var samples []dataset.ThroughputSample
		for _, m := range dt.Minutes {
			if m.UpBytes > 0 {
				samples = append(samples, dataset.ThroughputSample{
					RouterID: p.ID, Minute: m.Minute, Dir: "up",
					PeakBps: m.UpPeakBps, TotalBytes: m.UpBytes,
				})
			}
			if m.DownBytes > 0 {
				samples = append(samples, dataset.ThroughputSample{
					RouterID: p.ID, Minute: m.Minute, Dir: "down",
					PeakBps: m.DownPeakBps, TotalBytes: m.DownBytes,
				})
			}
		}
		if len(samples) > 0 {
			sink.TrafficThroughput(samples)
		}
	}
}

// HomeByID returns the home with the given router ID.
func (w *World) HomeByID(id string) *Home {
	for _, h := range w.Homes {
		if h.Profile.ID == id {
			return h
		}
	}
	return nil
}

// ConsentingHomes returns the Traffic-subset homes.
func (w *World) ConsentingHomes() []*Home {
	var out []*Home
	for _, h := range w.Homes {
		if h.Consent {
			out = append(out, h)
		}
	}
	return out
}
