package world

import (
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/geo"
	"natpeek/internal/heartbeat"
	"natpeek/internal/mac"
)

// smallConfig shrinks the deployment and windows so tests stay fast.
func smallConfig() Config {
	return Config{
		Seed:           1,
		Scale:          0.15, // a handful of homes
		TrafficHomes:   3,
		HeartbeatsFrom: time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC),
		HeartbeatsTo:   time.Date(2012, 10, 15, 0, 0, 0, 0, time.UTC),
		UptimeFrom:     time.Date(2013, 3, 6, 0, 0, 0, 0, time.UTC),
		UptimeTo:       time.Date(2013, 3, 13, 0, 0, 0, 0, time.UTC),
		WiFiFrom:       time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC),
		WiFiTo:         time.Date(2012, 11, 4, 0, 0, 0, 0, time.UTC),
		CapacityFrom:   time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC),
		CapacityTo:     time.Date(2013, 4, 4, 0, 0, 0, 0, time.UTC),
		TrafficFrom:    time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC),
		TrafficTo:      time.Date(2013, 4, 4, 0, 0, 0, 0, time.UTC),
	}
}

func runSmall(t *testing.T) *World {
	t.Helper()
	w := Build(smallConfig())
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildFullScaleRosterMatchesTable1(t *testing.T) {
	w := Build(Config{Seed: 1})
	if len(w.Homes) != 126 {
		t.Fatalf("homes = %d, Table 1 says 126", len(w.Homes))
	}
	perCountry := map[string]int{}
	for _, h := range w.Homes {
		perCountry[h.Profile.Country.Code]++
	}
	if perCountry["US"] != 63 || perCountry["IN"] != 12 || perCountry["PK"] != 5 {
		t.Fatalf("roster %v", perCountry)
	}
	if len(w.ConsentingHomes()) != 25 {
		t.Fatalf("consenting = %d, want 25", len(w.ConsentingHomes()))
	}
	for _, h := range w.ConsentingHomes() {
		if h.Profile.Country.Code != "US" {
			t.Fatal("non-US consenting home")
		}
	}
}

func TestScaledRosterKeepsEveryCountry(t *testing.T) {
	w := Build(smallConfig())
	perCountry := map[string]int{}
	for _, h := range w.Homes {
		perCountry[h.Profile.Country.Code]++
	}
	if len(perCountry) != 19 {
		t.Fatalf("countries = %d, want all 19", len(perCountry))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runSmall(t)
	b := runSmall(t)
	if len(a.Store.Flows) != len(b.Store.Flows) ||
		len(a.Store.Counts) != len(b.Store.Counts) ||
		len(a.Store.Capacity) != len(b.Store.Capacity) {
		t.Fatal("runs differ")
	}
	for i := range a.Store.Capacity {
		if a.Store.Capacity[i] != b.Store.Capacity[i] {
			t.Fatalf("capacity row %d differs", i)
		}
	}
}

func TestHeartbeatsCoverOnlineTime(t *testing.T) {
	w := runSmall(t)
	cfg := w.Cfg
	for _, h := range w.Homes[:5] {
		id := h.Profile.ID
		online := h.Profile.OnlineIntervals(cfg.HeartbeatsFrom, cfg.HeartbeatsTo)
		var onlineDur time.Duration
		for _, iv := range online {
			onlineDur += iv.Duration()
		}
		beats := w.Store.Heartbeats.Count(id)
		expect := int(onlineDur / heartbeat.Interval)
		if beats < expect-len(online) || beats > expect+len(online) {
			t.Fatalf("%s: %d beats for %v online", id, beats, onlineDur)
		}
	}
}

func TestUptimeReportsOnlyWhenPowered(t *testing.T) {
	w := runSmall(t)
	for _, r := range w.Store.Uptime {
		if r.Uptime < 0 {
			t.Fatalf("negative uptime %+v", r)
		}
		if r.ReportedAt.Before(w.Cfg.UptimeFrom) || !r.ReportedAt.Before(w.Cfg.UptimeTo) {
			t.Fatalf("report outside window %+v", r)
		}
	}
	if len(w.Store.Uptime) == 0 {
		t.Fatal("no uptime reports")
	}
}

func TestDeviceCensusRows(t *testing.T) {
	w := runSmall(t)
	if len(w.Store.Counts) == 0 || len(w.Store.Sightings) == 0 {
		t.Fatal("no census data")
	}
	ids := map[string]bool{}
	for _, c := range w.Store.Counts {
		ids[c.RouterID] = true
		if c.Wired < 0 || c.W24 < 0 || c.W5 < 0 {
			t.Fatalf("negative counts %+v", c)
		}
	}
	if len(ids) < len(w.Homes)/2 {
		t.Fatalf("census from only %d/%d homes", len(ids), len(w.Homes))
	}
	// Sightings must be anonymized but keep a registered OUI.
	for _, s := range w.Store.Sightings[:min(200, len(w.Store.Sightings))] {
		if s.Device.IsZero() {
			t.Fatal("zero MAC sighting")
		}
	}
}

func TestSightingsMatchCountTotals(t *testing.T) {
	w := runSmall(t)
	// Group sightings by (router, hour) and compare with the count row.
	type key struct {
		id string
		at time.Time
	}
	sightings := map[key]int{}
	for _, s := range w.Store.Sightings {
		sightings[key{s.RouterID, s.At}]++
	}
	checked := 0
	for _, c := range w.Store.Counts {
		if got := sightings[key{c.RouterID, c.At}]; got != c.Total() {
			t.Fatalf("%s@%v: %d sightings vs census total %d", c.RouterID, c.At, got, c.Total())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestWiFiScansWithinWindow(t *testing.T) {
	w := runSmall(t)
	if len(w.Store.WiFi) == 0 {
		t.Fatal("no wifi scans")
	}
	for _, s := range w.Store.WiFi {
		if s.At.Before(w.Cfg.WiFiFrom) || !s.At.Before(w.Cfg.WiFiTo) {
			t.Fatalf("scan outside window %+v", s)
		}
		if s.Band != "2.4GHz" && s.Band != "5GHz" {
			t.Fatalf("bad band %+v", s)
		}
		if s.VisibleAPs < 0 {
			t.Fatal("negative APs")
		}
	}
}

func TestCapacityTracksProvisionedRates(t *testing.T) {
	w := runSmall(t)
	if len(w.Store.Capacity) == 0 {
		t.Fatal("no capacity rows")
	}
	byID := map[string][]dataset.CapacityMeasure{}
	for _, c := range w.Store.Capacity {
		byID[c.RouterID] = append(byID[c.RouterID], c)
	}
	checked := 0
	for id, ms := range byID {
		h := w.HomeByID(id)
		if h == nil {
			t.Fatalf("unknown router %s", id)
		}
		for _, m := range ms {
			if m.DownBps <= 0 {
				continue // probe during marginal connectivity
			}
			ratio := m.DownBps / h.Profile.DownBps
			if ratio < 0.7 || ratio > 1.3 {
				t.Fatalf("%s: measured %0.f vs provisioned %0.f", id, m.DownBps, h.Profile.DownBps)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no measurements validated")
	}
}

func TestTrafficOnlyFromConsentingHomes(t *testing.T) {
	w := runSmall(t)
	consent := map[string]bool{}
	for _, h := range w.ConsentingHomes() {
		consent[h.Profile.ID] = true
	}
	if len(w.Store.Flows) == 0 {
		t.Fatal("no flows")
	}
	for _, f := range w.Store.Flows {
		if !consent[f.RouterID] {
			t.Fatalf("flow from non-consenting home %s", f.RouterID)
		}
	}
	for _, s := range w.Store.Throughput {
		if !consent[s.RouterID] {
			t.Fatalf("throughput from non-consenting home %s", s.RouterID)
		}
	}
}

func TestFlowDomainsAnonymizedOutsideWhitelist(t *testing.T) {
	w := runSmall(t)
	sawWhitelisted, sawAnon := false, false
	for _, f := range w.Store.Flows {
		if f.Domain == "" {
			continue
		}
		if len(f.Domain) > 5 && f.Domain[:5] == "anon-" {
			sawAnon = true
		} else {
			sawWhitelisted = true
			if containsUnlisted(f.Domain) {
				t.Fatalf("unlisted domain leaked: %q", f.Domain)
			}
		}
	}
	if !sawWhitelisted || !sawAnon {
		t.Fatalf("domain mix wrong: whitelisted=%v anon=%v", sawWhitelisted, sawAnon)
	}
}

func containsUnlisted(d string) bool {
	return len(d) > 17 && d[len(d)-17:] == ".unlisted.example"
}

func TestDeviceMACsAnonymizedButOUIPreserved(t *testing.T) {
	w := runSmall(t)
	rawMACs := map[mac.Addr]bool{}
	for _, h := range w.Homes {
		for _, d := range h.Profile.Devices {
			rawMACs[d.HW] = true
		}
	}
	for _, f := range w.Store.Flows {
		if rawMACs[f.Device] {
			t.Fatal("raw device MAC leaked into Traffic data")
		}
	}
}

func TestDevelopedVsDevelopingGrouping(t *testing.T) {
	w := runSmall(t)
	isDev := func(code string) bool {
		c, _ := geo.Lookup(code)
		return c.Developed
	}
	dev := w.Store.RoutersIn(true, isDev)
	dvg := w.Store.RoutersIn(false, isDev)
	if len(dev) == 0 || len(dvg) == 0 {
		t.Fatal("grouping empty")
	}
	if len(dev)+len(dvg) != len(w.Homes) {
		t.Fatal("groups do not partition the roster")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGlobalTrafficExtension(t *testing.T) {
	cfg := smallConfig()
	cfg.GlobalTraffic = true
	w := Build(cfg)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	countries := map[string]bool{}
	for _, h := range w.ConsentingHomes() {
		countries[h.Profile.Country.Code] = true
	}
	if len(countries) < 10 {
		t.Fatalf("consent spans only %d countries with GlobalTraffic", len(countries))
	}
	// Traffic rows exist for at least one developing-country home.
	flowsByCountry := map[string]int{}
	for _, f := range w.Store.Flows {
		flowsByCountry[w.Store.RouterCountry[f.RouterID]]++
	}
	devFlows := 0
	for code, n := range flowsByCountry {
		c, _ := geo.Lookup(code)
		if !c.Developed {
			devFlows += n
		}
	}
	if devFlows == 0 {
		t.Fatal("no developing-country traffic under GlobalTraffic")
	}
}

func TestSaturatorsPinnedIntoConsentSubset(t *testing.T) {
	w := Build(Config{Seed: 1})
	sat := 0
	for _, h := range w.ConsentingHomes() {
		if h.Profile.UplinkSaturator {
			sat++
		}
	}
	if sat < 2 {
		t.Fatalf("only %d saturators among consenting homes, want ≥2 (Fig. 16 subjects)", sat)
	}
}
