package world

import (
	"testing"
	"time"
)

// BenchmarkWorldRunHome measures one full simulated home-day: build a
// one-router world and run every emitter (heartbeats, uptime, device
// census, WiFi scans, capacity probes, statistical traffic) into the
// in-process store. This is the simulator-side cost of producing one
// router's rows — the denominator when sizing synthetic deployments —
// tracked in BENCH_*.json as homes/s.
func BenchmarkWorldRunHome(b *testing.B) {
	base := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	cfg := Config{
		Countries:         []string{"US"},
		RoutersPerCountry: 1,
		TrafficHomes:      1,
		GlobalTraffic:     true,
		ProbeTrainLength:  20,
		HeartbeatsFrom:    base, HeartbeatsTo: base.Add(24 * time.Hour),
		UptimeFrom: base, UptimeTo: base.Add(24 * time.Hour),
		WiFiFrom: base, WiFiTo: base.Add(24 * time.Hour),
		CapacityFrom: base, CapacityTo: base.Add(24 * time.Hour),
		TrafficFrom: base, TrafficTo: base.Add(24 * time.Hour),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		w := Build(cfg)
		if err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "homes/s")
}
