// Package core orchestrates the paper's primary contribution: a
// measurement *study* of home networks run from gateway vantage points.
// A Study builds the deployment (synthetic world or loaded datasets),
// runs the collection, and regenerates every table and figure of the
// evaluation.
package core

import (
	"fmt"
	"io"
	"time"

	"natpeek/internal/analysis"
	"natpeek/internal/dataset"
	"natpeek/internal/figures"
	"natpeek/internal/segment"
	"natpeek/internal/world"
)

// Config configures a study run.
type Config struct {
	// Seed makes the whole study reproducible.
	Seed uint64
	// Scale shrinks the deployment (1.0 = the paper's 126 homes).
	Scale float64
	// TrafficHomes is the consenting-home count (paper: 25).
	TrafficHomes int
	// Short trims every collection window to at most Short (0 = the
	// paper's full windows). Useful for quick experiments.
	Short time.Duration
}

// Study is one reproduction run.
type Study struct {
	Cfg     Config
	World   *world.World
	Store   *dataset.Store
	Windows figures.Windows
}

// New prepares a study (deployment built, nothing run yet).
func New(cfg Config) *Study {
	wcfg := world.Config{
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		TrafficHomes: cfg.TrafficHomes,
	}
	win := figures.DefaultWindows()
	if cfg.Short > 0 {
		clamp := func(from, to time.Time) (time.Time, time.Time) {
			if to.Sub(from) > cfg.Short {
				return from, from.Add(cfg.Short)
			}
			return from, to
		}
		wcfg.HeartbeatsFrom, wcfg.HeartbeatsTo = clamp(dataset.HeartbeatsFrom, dataset.HeartbeatsTo)
		wcfg.UptimeFrom, wcfg.UptimeTo = clamp(dataset.UptimeFrom, dataset.UptimeTo)
		wcfg.WiFiFrom, wcfg.WiFiTo = clamp(dataset.WiFiFrom, dataset.WiFiTo)
		wcfg.CapacityFrom, wcfg.CapacityTo = clamp(dataset.CapacityFrom, dataset.CapacityTo)
		wcfg.TrafficFrom, wcfg.TrafficTo = clamp(dataset.TrafficFrom, dataset.TrafficTo)
		win.Availability.From = wcfg.HeartbeatsFrom
		win.Availability.To = wcfg.HeartbeatsTo
	}
	w := world.Build(wcfg)
	return &Study{Cfg: cfg, World: w, Store: w.Store, Windows: win}
}

// Run executes the collection over the synthetic deployment.
func (s *Study) Run() error { return s.World.Run() }

// Open loads a study from datasets previously written with Save; the
// analysis windows default to the paper's.
func Open(dir string) (*Study, error) {
	st, err := dataset.Load(dir)
	if err != nil {
		return nil, err
	}
	return &Study{Store: st, Windows: figures.DefaultWindows()}, nil
}

// OpenSegments loads a study from a columnar segment directory written
// by a segment-backed collector (bismark-server -segments). The store
// is opened, merged into one analysis view, and closed again; a flush
// of any recovered-but-unsealed state is a side effect of the close.
func OpenSegments(dir string) (*Study, error) {
	seg, err := segment.Open(segment.Options{Dir: dir, NoCompaction: true})
	if err != nil {
		return nil, err
	}
	st := seg.Merge()
	if err := seg.Close(); err != nil {
		return nil, err
	}
	return &Study{Store: st, Windows: figures.DefaultWindows()}, nil
}

// Save persists the study's datasets as CSV.
func (s *Study) Save(dir string) error { return s.Store.Save(dir) }

// Reports regenerates every table and figure.
func (s *Study) Reports() []*figures.Report { return figures.All(s.Store, s.Windows) }

// Report regenerates one exhibit by ID ("Figure 3", "Table 5", …).
func (s *Study) Report(id string) (*figures.Report, error) {
	for _, r := range s.Reports() {
		if r.ID == id {
			return r, nil
		}
	}
	return nil, fmt.Errorf("core: unknown exhibit %q", id)
}

// WriteReports renders every exhibit to w.
func (s *Study) WriteReports(w io.Writer) error {
	for _, r := range s.Reports() {
		if _, err := io.WriteString(w, r.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Availability exposes the availability window used by the reports.
func (s *Study) Availability() analysis.AvailabilityWindow {
	return s.Windows.Availability
}
