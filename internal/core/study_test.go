package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func smallStudy(t *testing.T) *Study {
	t.Helper()
	s := New(Config{Seed: 3, Scale: 0.1, TrafficHomes: 2, Short: 10 * 24 * time.Hour})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStudyRunProducesAllDatasets(t *testing.T) {
	s := smallStudy(t)
	if len(s.Store.Routers()) == 0 {
		t.Fatal("no routers")
	}
	if len(s.Store.Counts) == 0 || len(s.Store.WiFi) == 0 || len(s.Store.Capacity) == 0 {
		t.Fatal("datasets missing")
	}
	if len(s.Store.Flows) == 0 {
		t.Fatal("no traffic")
	}
}

func TestShortWindowsApplied(t *testing.T) {
	s := smallStudy(t)
	w := s.Availability()
	if w.To.Sub(w.From) != 10*24*time.Hour {
		t.Fatalf("availability window %v", w.To.Sub(w.From))
	}
	for _, c := range s.Store.Counts {
		if c.At.After(time.Date(2013, 3, 16, 0, 0, 0, 0, time.UTC)) {
			t.Fatalf("census beyond short window: %v", c.At)
		}
	}
}

func TestReportsAndLookup(t *testing.T) {
	s := smallStudy(t)
	reports := s.Reports()
	if len(reports) != 21 {
		t.Fatalf("reports = %d", len(reports))
	}
	r, err := s.Report("Figure 3")
	if err != nil || r.ID != "Figure 3" {
		t.Fatalf("lookup: %v %v", r, err)
	}
	if _, err := s.Report("Figure 99"); err == nil {
		t.Fatal("unknown exhibit found")
	}
}

func TestWriteReports(t *testing.T) {
	s := smallStudy(t)
	var buf bytes.Buffer
	if err := s.WriteReports(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"Table 1", "Figure 3", "Figure 20"} {
		if !strings.Contains(out, id) {
			t.Fatalf("%s missing from output", id)
		}
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	s := smallStudy(t)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Store.Routers()) != len(s.Store.Routers()) {
		t.Fatal("roster lost")
	}
	if len(re.Store.Flows) != len(s.Store.Flows) {
		t.Fatal("flows lost")
	}
	// Reports still work on the reloaded store (windows default to the
	// paper's, so availability numbers differ — but structure holds).
	if got := len(re.Reports()); got != 21 {
		t.Fatalf("reloaded reports = %d", got)
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := smallStudy(t)
	b := smallStudy(t)
	if len(a.Store.Flows) != len(b.Store.Flows) {
		t.Fatal("non-deterministic")
	}
	ra := a.Reports()
	rb := b.Reports()
	for i := range ra {
		if ra[i].String() != rb[i].String() {
			t.Fatalf("report %s differs between identical runs", ra[i].ID)
		}
	}
}
