package nat

import (
	"net/netip"
	"testing"
	"time"

	"natpeek/internal/mac"
	"natpeek/internal/packet"
)

var (
	t0     = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)
	wanIP  = netip.MustParseAddr("203.0.113.5")
	lanA   = netip.MustParseAddr("192.168.1.10")
	lanB   = netip.MustParseAddr("192.168.1.11")
	remote = netip.MustParseAddr("173.194.43.36")
	hwA    = mac.MustParse("a4:b1:97:00:00:0a")
	hwGW   = mac.MustParse("20:4e:7f:00:00:01")
)

func newTable() *Table {
	return New(Config{WANAddr: wanIP})
}

func udpFrame(src netip.Addr, sport uint16) []byte {
	return packet.NewBuilder(hwA, hwGW).UDPv4(src, remote, sport, 53, 64, []byte("q"))
}

func tcpFrame(src netip.Addr, sport uint16) []byte {
	return packet.NewBuilder(hwA, hwGW).TCPv4(src, remote, packet.TCP{SrcPort: sport, DstPort: 443, Flags: packet.FlagSYN}, 64, nil)
}

func TestTranslateOutRewritesSource(t *testing.T) {
	nt := newTable()
	raw := udpFrame(lanA, 5000)
	m, err := nt.TranslateOut(raw, t0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Decode(raw)
	if err != nil {
		t.Fatalf("rewritten frame invalid: %v", err)
	}
	if p.SrcIP() != wanIP {
		t.Fatalf("src = %v, want WAN", p.SrcIP())
	}
	sp, _ := p.Ports()
	if sp != m.External.Port {
		t.Fatalf("sport = %d, mapping says %d", sp, m.External.Port)
	}
	if p.DstIP() != remote {
		t.Fatal("destination disturbed")
	}
}

func TestTranslateInReversesOut(t *testing.T) {
	nt := newTable()
	out := udpFrame(lanA, 5000)
	m, err := nt.TranslateOut(out, t0)
	if err != nil {
		t.Fatal(err)
	}
	// Build the reply: remote → WAN:extPort.
	reply := packet.NewBuilder(hwGW, hwA).UDPv4(remote, wanIP, 53, m.External.Port, 60, []byte("resp"))
	rm, err := nt.TranslateIn(reply, t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if rm != m {
		t.Fatal("reply matched a different mapping")
	}
	p, err := packet.Decode(reply)
	if err != nil {
		t.Fatalf("rewritten reply invalid: %v", err)
	}
	if p.DstIP() != lanA {
		t.Fatalf("reply dst = %v, want %v", p.DstIP(), lanA)
	}
	if _, dp := p.Ports(); dp != 5000 {
		t.Fatalf("reply dport = %d, want 5000", dp)
	}
}

func TestTCPTranslateRoundTrip(t *testing.T) {
	nt := newTable()
	out := tcpFrame(lanA, 49000)
	m, err := nt.TranslateOut(out, t0)
	if err != nil {
		t.Fatal(err)
	}
	reply := packet.NewBuilder(hwGW, hwA).TCPv4(remote, wanIP, packet.TCP{SrcPort: 443, DstPort: m.External.Port, Flags: packet.FlagSYN | packet.FlagACK}, 60, nil)
	if _, err := nt.TranslateIn(reply, t0); err != nil {
		t.Fatal(err)
	}
	p, _ := packet.Decode(reply)
	if p.DstIP() != lanA || p.TCP.DstPort != 49000 {
		t.Fatal("TCP reverse translation wrong")
	}
}

func TestEndpointIndependentMapping(t *testing.T) {
	nt := newTable()
	// Same internal endpoint, two destinations → same external port.
	f1 := packet.NewBuilder(hwA, hwGW).UDPv4(lanA, remote, 6000, 53, 64, nil)
	f2 := packet.NewBuilder(hwA, hwGW).UDPv4(lanA, netip.MustParseAddr("8.8.4.4"), 6000, 123, 64, nil)
	m1, _ := nt.TranslateOut(f1, t0)
	m2, _ := nt.TranslateOut(f2, t0)
	if m1.External != m2.External {
		t.Fatal("mapping not endpoint-independent")
	}
	if m1.Flows != 2 {
		t.Fatalf("flows = %d, want 2", m1.Flows)
	}
	if nt.Size() != 1 {
		t.Fatalf("size = %d", nt.Size())
	}
}

func TestDistinctDevicesGetDistinctPorts(t *testing.T) {
	nt := newTable()
	m1, _ := nt.TranslateOut(udpFrame(lanA, 5000), t0)
	m2, _ := nt.TranslateOut(udpFrame(lanB, 5000), t0)
	if m1.External.Port == m2.External.Port {
		t.Fatal("two devices share an external port")
	}
}

func TestAttribute(t *testing.T) {
	nt := newTable()
	m, _ := nt.TranslateOut(udpFrame(lanA, 5000), t0)
	in, err := nt.Attribute(packet.ProtoUDP, m.External.Port)
	if err != nil {
		t.Fatal(err)
	}
	if in.Addr != lanA || in.Port != 5000 {
		t.Fatalf("attributed to %v", in)
	}
	if _, err := nt.Attribute(packet.ProtoUDP, 1); err == nil {
		t.Fatal("unknown port attributed")
	}
}

func TestUnsolicitedInboundDropped(t *testing.T) {
	nt := newTable()
	probe := packet.NewBuilder(hwGW, hwA).UDPv4(remote, wanIP, 53, 33333, 60, nil)
	if _, err := nt.TranslateIn(probe, t0); err == nil {
		t.Fatal("unsolicited inbound translated")
	}
}

func TestUDPMappingExpires(t *testing.T) {
	nt := newTable()
	m, _ := nt.TranslateOut(udpFrame(lanA, 5000), t0)
	if n := nt.Expire(t0.Add(3 * time.Minute)); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	reply := packet.NewBuilder(hwGW, hwA).UDPv4(remote, wanIP, 53, m.External.Port, 60, nil)
	if _, err := nt.TranslateIn(reply, t0.Add(3*time.Minute)); err == nil {
		t.Fatal("expired mapping still active")
	}
}

func TestTCPOutlivesUDPTimeout(t *testing.T) {
	nt := newTable()
	nt.TranslateOut(tcpFrame(lanA, 49000), t0)
	if n := nt.Expire(t0.Add(10 * time.Minute)); n != 0 {
		t.Fatal("TCP mapping expired at UDP timeout")
	}
	if n := nt.Expire(t0.Add(3 * time.Hour)); n != 1 {
		t.Fatal("TCP mapping never expired")
	}
}

func TestActivityRefreshesMapping(t *testing.T) {
	nt := newTable()
	for i := 0; i < 5; i++ {
		raw := udpFrame(lanA, 5000)
		if _, err := nt.TranslateOut(raw, t0.Add(time.Duration(i)*90*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	// Last use at t0+6m; expiry checks idle time, not age.
	if n := nt.Expire(t0.Add(7 * time.Minute)); n != 0 {
		t.Fatal("active mapping expired")
	}
}

func TestPortExhaustionReclaimsIdle(t *testing.T) {
	nt := New(Config{WANAddr: wanIP, PortLo: 40000, PortHi: 40004})
	for i := 0; i < 5; i++ {
		if _, err := nt.TranslateOut(udpFrame(lanA, uint16(5000+i)), t0); err != nil {
			t.Fatal(err)
		}
	}
	// Range exhausted, but all mappings are idle by t1 → reclaim works.
	t1 := t0.Add(5 * time.Minute)
	if _, err := nt.TranslateOut(udpFrame(lanB, 7777), t1); err != nil {
		t.Fatalf("no reclaim under exhaustion: %v", err)
	}
	// Immediate exhaustion with live mappings must error.
	nt2 := New(Config{WANAddr: wanIP, PortLo: 40000, PortHi: 40001})
	nt2.TranslateOut(udpFrame(lanA, 1), t0)
	nt2.TranslateOut(udpFrame(lanA, 2), t0)
	if _, err := nt2.TranslateOut(udpFrame(lanA, 3), t0); err == nil {
		t.Fatal("exhaustion not reported")
	}
}

func TestNonIPv4Rejected(t *testing.T) {
	nt := newTable()
	arp := packet.NewBuilder(hwA, hwGW).ARPRequest(lanA, netip.MustParseAddr("192.168.1.1"))
	if _, err := nt.TranslateOut(arp, t0); err == nil {
		t.Fatal("ARP translated")
	}
}

func TestICMPUnsupported(t *testing.T) {
	nt := newTable()
	ping := packet.NewBuilder(hwA, hwGW).ICMPv4Echo(lanA, remote, packet.ICMPEchoRequest, 1, 1, 64, nil)
	if _, err := nt.TranslateOut(ping, t0); err == nil {
		t.Fatal("ICMP translated")
	}
}

func TestMappingsSnapshot(t *testing.T) {
	nt := newTable()
	nt.TranslateOut(udpFrame(lanA, 5000), t0)
	nt.TranslateOut(udpFrame(lanB, 5001), t0)
	if len(nt.Mappings()) != 2 {
		t.Fatalf("mappings = %d", len(nt.Mappings()))
	}
}

func TestManyFlowsStayConsistent(t *testing.T) {
	nt := newTable()
	// 200 devices × 3 ports each; every mapping must translate back.
	type probe struct {
		src   netip.Addr
		sport uint16
		ext   uint16
	}
	var probes []probe
	for d := 0; d < 200; d++ {
		src := netip.AddrFrom4([4]byte{192, 168, byte(1 + d/200), byte(10 + d%200)})
		for k := 0; k < 3; k++ {
			sport := uint16(5000 + d*3 + k)
			m, err := nt.TranslateOut(udpFrame(src, sport), t0)
			if err != nil {
				t.Fatal(err)
			}
			probes = append(probes, probe{src, sport, m.External.Port})
		}
	}
	if nt.Size() != 600 {
		t.Fatalf("size = %d", nt.Size())
	}
	seen := map[uint16]bool{}
	for _, pr := range probes {
		if seen[pr.ext] {
			t.Fatalf("external port %d reused", pr.ext)
		}
		seen[pr.ext] = true
		in, err := nt.Attribute(packet.ProtoUDP, pr.ext)
		if err != nil || in.Addr != pr.src || in.Port != pr.sport {
			t.Fatalf("attribution wrong for %d: %v, %v", pr.ext, in, err)
		}
	}
}

func BenchmarkTranslateOut(b *testing.B) {
	nt := newTable()
	pristine := udpFrame(lanA, 5000)
	raw := make([]byte, len(pristine))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// TranslateOut rewrites in place; restore the LAN frame so every
		// iteration hits the same (steady-state) mapping.
		copy(raw, pristine)
		if _, err := nt.TranslateOut(raw, t0); err != nil {
			b.Fatal(err)
		}
	}
}
