// Package nat implements the network address translator the paper's title
// points at. From outside the home, every device appears as the gateway's
// single WAN address; the NAT's binding table is exactly the information
// an external observer lacks and the in-home vantage point has. The
// gateway runs this NAT on the forwarding path and the capture pipeline
// reads its reverse mappings to attribute WAN flows back to LAN devices.
//
// The translator is endpoint-independent for mapping ("full-cone" style
// allocation: one external port per internal endpoint, reused across
// destinations) with per-flow connection tracking for expiry — the common
// home-router behaviour.
package nat

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"natpeek/internal/packet"
)

// Errors returned by the translator.
var (
	ErrPortsExhausted = errors.New("nat: external ports exhausted")
	ErrNoMapping      = errors.New("nat: no mapping")
	ErrNotIPv4        = errors.New("nat: not an IPv4 packet")
	ErrUnsupported    = errors.New("nat: unsupported transport")
)

// Endpoint is an (address, port) pair.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%v:%d", e.Addr, e.Port) }

// mappingKey identifies an internal endpoint per protocol.
type mappingKey struct {
	proto packet.IPProto
	in    Endpoint
}

// Mapping is one NAT binding: internal endpoint ↔ external port.
type Mapping struct {
	Proto    packet.IPProto
	Internal Endpoint
	External Endpoint
	Created  time.Time
	LastUsed time.Time
	// Flows counts distinct remote endpoints seen through this mapping.
	Flows int
}

// Table is the translator state. Not safe for concurrent use.
type Table struct {
	wan netip.Addr

	udpTimeout time.Duration
	tcpTimeout time.Duration

	byInternal map[mappingKey]*Mapping
	byExternal map[mappingKey]*Mapping // key.in holds the *external* endpoint
	remotes    map[mappingKey]map[Endpoint]bool

	nextPort  uint16
	portLo    uint16
	portHi    uint16
	allocated int
}

// Config tunes the translator.
type Config struct {
	// WANAddr is the gateway's public address.
	WANAddr netip.Addr
	// PortLo/PortHi bound the external port range (default 32768–60999).
	PortLo, PortHi uint16
	// UDPTimeout and TCPTimeout are idle expiries (defaults 2 min / 2 h,
	// typical consumer-router values).
	UDPTimeout, TCPTimeout time.Duration
}

// New returns an empty translator.
func New(cfg Config) *Table {
	if cfg.PortLo == 0 {
		cfg.PortLo = 32768
	}
	if cfg.PortHi == 0 {
		cfg.PortHi = 60999
	}
	if cfg.PortHi <= cfg.PortLo {
		panic("nat: invalid port range")
	}
	if cfg.UDPTimeout <= 0 {
		cfg.UDPTimeout = 2 * time.Minute
	}
	if cfg.TCPTimeout <= 0 {
		cfg.TCPTimeout = 2 * time.Hour
	}
	return &Table{
		wan:        cfg.WANAddr,
		udpTimeout: cfg.UDPTimeout,
		tcpTimeout: cfg.TCPTimeout,
		byInternal: make(map[mappingKey]*Mapping),
		byExternal: make(map[mappingKey]*Mapping),
		remotes:    make(map[mappingKey]map[Endpoint]bool),
		nextPort:   cfg.PortLo,
		portLo:     cfg.PortLo,
		portHi:     cfg.PortHi,
	}
}

// WANAddr returns the external address.
func (t *Table) WANAddr() netip.Addr { return t.wan }

// Size returns the number of active mappings.
func (t *Table) Size() int { return len(t.byInternal) }

// TranslateOut rewrites an outbound (LAN→WAN) frame in place: the source
// IP becomes the WAN address and the source port the mapped external
// port. It returns the mapping used. The frame must be Ethernet+IPv4 with
// TCP or UDP.
func (t *Table) TranslateOut(raw []byte, now time.Time) (*Mapping, error) {
	p, err := packet.Decode(raw)
	if err != nil {
		return nil, err
	}
	if p.IP4 == nil {
		return nil, ErrNotIPv4
	}
	sport, dport := p.Ports()
	if p.TCP == nil && p.UDP == nil {
		return nil, ErrUnsupported
	}
	in := Endpoint{Addr: p.IP4.Src, Port: sport}
	remote := Endpoint{Addr: p.IP4.Dst, Port: dport}
	m, err := t.mapOut(p.Proto(), in, remote, now)
	if err != nil {
		return nil, err
	}
	rewrite(raw, p, t.wan, m.External.Port, true)
	return m, nil
}

// TranslateIn rewrites an inbound (WAN→LAN) frame in place: the
// destination becomes the internal endpoint mapped to the frame's
// destination port. Frames with no mapping return ErrNoMapping (the
// paper's NAT opacity: unsolicited inbound traffic has nowhere to go).
func (t *Table) TranslateIn(raw []byte, now time.Time) (*Mapping, error) {
	p, err := packet.Decode(raw)
	if err != nil {
		return nil, err
	}
	if p.IP4 == nil {
		return nil, ErrNotIPv4
	}
	if p.TCP == nil && p.UDP == nil {
		return nil, ErrUnsupported
	}
	_, dport := p.Ports()
	key := mappingKey{p.Proto(), Endpoint{Addr: p.IP4.Dst, Port: dport}}
	m, ok := t.byExternal[key]
	if !ok {
		return nil, fmt.Errorf("%w: %v/%v", ErrNoMapping, p.Proto(), key.in)
	}
	m.LastUsed = now
	rewrite(raw, p, m.Internal.Addr, m.Internal.Port, false)
	return m, nil
}

// mapOut finds or creates the binding for an internal endpoint.
func (t *Table) mapOut(proto packet.IPProto, in, remote Endpoint, now time.Time) (*Mapping, error) {
	key := mappingKey{proto, in}
	m, ok := t.byInternal[key]
	if !ok {
		port, err := t.allocPort(proto, now)
		if err != nil {
			return nil, err
		}
		m = &Mapping{
			Proto:    proto,
			Internal: in,
			External: Endpoint{Addr: t.wan, Port: port},
			Created:  now,
		}
		t.byInternal[key] = m
		t.byExternal[mappingKey{proto, m.External}] = m
		t.remotes[key] = make(map[Endpoint]bool)
	}
	m.LastUsed = now
	if rs := t.remotes[key]; !rs[remote] {
		rs[remote] = true
		m.Flows++
	}
	return m, nil
}

func (t *Table) allocPort(proto packet.IPProto, now time.Time) (uint16, error) {
	span := int(t.portHi-t.portLo) + 1
	for i := 0; i < span; i++ {
		port := t.nextPort
		t.nextPort++
		if t.nextPort > t.portHi {
			t.nextPort = t.portLo
		}
		if _, taken := t.byExternal[mappingKey{proto, Endpoint{t.wan, port}}]; !taken {
			return port, nil
		}
	}
	// Try reclaiming idle mappings, then retry once.
	if t.Expire(now) > 0 {
		return t.allocPort(proto, now)
	}
	return 0, ErrPortsExhausted
}

// Expire drops mappings idle past their protocol timeout and returns the
// number removed.
func (t *Table) Expire(now time.Time) int {
	n := 0
	for key, m := range t.byInternal {
		timeout := t.udpTimeout
		if m.Proto == packet.ProtoTCP {
			timeout = t.tcpTimeout
		}
		if now.Sub(m.LastUsed) >= timeout {
			delete(t.byInternal, key)
			delete(t.byExternal, mappingKey{m.Proto, m.External})
			delete(t.remotes, key)
			n++
		}
	}
	return n
}

// Lookup returns the mapping for an internal endpoint, if any.
func (t *Table) Lookup(proto packet.IPProto, in Endpoint) (*Mapping, error) {
	if m, ok := t.byInternal[mappingKey{proto, in}]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("%w: %v/%v", ErrNoMapping, proto, in)
}

// Attribute answers the "peeking behind the NAT" question in reverse:
// given the external port an outside observer saw, which internal device
// (LAN address) was it? This is what the in-home vantage point adds over
// measuring from the wide area.
func (t *Table) Attribute(proto packet.IPProto, externalPort uint16) (Endpoint, error) {
	if m, ok := t.byExternal[mappingKey{proto, Endpoint{t.wan, externalPort}}]; ok {
		return m.Internal, nil
	}
	return Endpoint{}, fmt.Errorf("%w: port %d", ErrNoMapping, externalPort)
}

// Mappings returns a snapshot of all active mappings (unsorted).
func (t *Table) Mappings() []*Mapping {
	out := make([]*Mapping, 0, len(t.byInternal))
	for _, m := range t.byInternal {
		out = append(out, m)
	}
	return out
}

// rewrite updates src (outbound) or dst (inbound) address/port in the raw
// frame and fixes all checksums by re-marshaling the transport segment.
func rewrite(raw []byte, p *packet.Packet, addr netip.Addr, port uint16, outbound bool) {
	ip := *p.IP4
	if outbound {
		ip.Src = addr
	} else {
		ip.Dst = addr
	}
	var seg []byte
	switch {
	case p.TCP != nil:
		tcp := *p.TCP
		if outbound {
			tcp.SrcPort = port
		} else {
			tcp.DstPort = port
		}
		seg = tcp.Marshal(nil, ip.Src, ip.Dst, p.Payload)
	case p.UDP != nil:
		udp := *p.UDP
		if outbound {
			udp.SrcPort = port
		} else {
			udp.DstPort = port
		}
		seg = udp.Marshal(nil, ip.Src, ip.Dst, p.Payload)
	}
	eth := *p.Eth
	out := eth.Marshal(raw[:0])
	out = ip.Marshal(out, seg)
	if len(out) != len(raw) {
		panic("nat: rewrite changed frame length")
	}
}
