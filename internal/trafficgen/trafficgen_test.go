package trafficgen

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"natpeek/internal/anonymize"
	"natpeek/internal/capture"
	"natpeek/internal/domains"
	"natpeek/internal/geo"
	"natpeek/internal/household"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
	"natpeek/internal/stats"
)

var (
	root  = rng.New(7)
	day0  = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	usCty = func() geo.Country { c, _ := geo.Lookup("US"); return c }()
)

func usHome(idx int) *household.Profile {
	return household.Generate(usCty, idx, root)
}

func allDay() []household.Interval {
	return []household.Interval{{Start: day0, End: day0.Add(24 * time.Hour)}}
}

// genDays runs the generator over several homes and days and pools flows.
func genDays(homes, days int) []FlowSpec {
	var flows []FlowSpec
	for h := 0; h < homes; h++ {
		g := New(usHome(h))
		for d := 0; d < days; d++ {
			day := day0.Add(time.Duration(d) * 24 * time.Hour)
			online := []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}}
			flows = append(flows, g.GenerateDay(day, online).Flows...)
		}
	}
	return flows
}

func TestDeterministic(t *testing.T) {
	g1 := New(usHome(0))
	g2 := New(usHome(0))
	d1 := g1.GenerateDay(day0, allDay())
	d2 := g2.GenerateDay(day0, allDay())
	if len(d1.Flows) != len(d2.Flows) || len(d1.Minutes) != len(d2.Minutes) {
		t.Fatal("generation not deterministic")
	}
	for i := range d1.Flows {
		if d1.Flows[i].Domain != d2.Flows[i].Domain || d1.Flows[i].DownBytes != d2.Flows[i].DownBytes {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestOfflineDayProducesNothing(t *testing.T) {
	g := New(usHome(1))
	d := g.GenerateDay(day0, nil)
	if len(d.Flows) != 0 || len(d.Minutes) != 0 {
		t.Fatal("offline day generated traffic")
	}
}

func TestFlowsWithinOnlineWindows(t *testing.T) {
	g := New(usHome(2))
	online := []household.Interval{{Start: day0.Add(18 * time.Hour), End: day0.Add(23 * time.Hour)}}
	d := g.GenerateDay(day0, online)
	for _, f := range d.Flows {
		if f.Start.Before(online[0].Start) || !f.Start.Before(online[0].End) {
			t.Fatalf("flow starts outside online window: %v", f.Start)
		}
	}
}

func TestVolumesNonNegativeAndConsistent(t *testing.T) {
	for _, f := range genDays(5, 2) {
		if f.UpBytes < 0 || f.DownBytes < 0 || f.Conns < 1 {
			t.Fatalf("bad flow %+v", f)
		}
		if !f.End.After(f.Start) {
			t.Fatalf("non-positive flow span %+v", f)
		}
	}
}

func TestDominantDeviceShare(t *testing.T) {
	// Fig. 17: the top device carries ≈60–65% of home traffic on average.
	var shares []float64
	for h := 0; h < 30; h++ {
		g := New(usHome(h))
		byDev := map[mac.Addr]float64{}
		for d := 0; d < 7; d++ {
			day := day0.Add(time.Duration(d) * 24 * time.Hour)
			dt := g.GenerateDay(day, []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}})
			for _, f := range dt.Flows {
				byDev[f.Device.HW] += float64(f.UpBytes + f.DownBytes)
			}
		}
		if len(byDev) < 2 {
			continue
		}
		var vols []float64
		for _, v := range byDev {
			vols = append(vols, v)
		}
		s := stats.Share(vols)
		shares = append(shares, s[0])
	}
	mean := stats.Mean(shares)
	if mean < 0.45 || mean > 0.85 {
		t.Fatalf("mean top-device share = %.2f, want ≈0.6", mean)
	}
}

func TestDominantDomainVolumeVsConnections(t *testing.T) {
	// Fig. 19: top domain by volume ≈38% of bytes but ≲14% of conns.
	var volShares, connShares []float64
	for h := 0; h < 25; h++ {
		g := New(usHome(h))
		vol := map[string]float64{}
		conns := map[string]float64{}
		var volTot, connTot float64
		for d := 0; d < 7; d++ {
			day := day0.Add(time.Duration(d) * 24 * time.Hour)
			dt := g.GenerateDay(day, []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}})
			for _, f := range dt.Flows {
				b := float64(f.UpBytes + f.DownBytes)
				vol[f.Domain] += b
				volTot += b
				conns[f.Domain] += float64(f.Conns)
				connTot += float64(f.Conns)
			}
		}
		top, topV := "", 0.0
		for d, v := range vol {
			if v > topV {
				top, topV = d, v
			}
		}
		if volTot == 0 {
			continue
		}
		volShares = append(volShares, topV/volTot)
		connShares = append(connShares, conns[top]/connTot)
	}
	mv, mc := stats.Mean(volShares), stats.Mean(connShares)
	if mv < 0.2 || mv > 0.6 {
		t.Fatalf("top-domain volume share = %.2f, want ≈0.38", mv)
	}
	if mc >= mv/1.5 {
		t.Fatalf("top-domain conn share %.2f not ≪ volume share %.2f", mc, mv)
	}
}

func TestWhitelistedVolumeShare(t *testing.T) {
	// §6.4: whitelisted domains ≈65% of traffic volume.
	var wl, total float64
	for _, f := range genDays(15, 3) {
		b := float64(f.UpBytes + f.DownBytes)
		total += b
		if domains.IsWhitelisted(f.Domain) {
			wl += b
		}
	}
	share := wl / total
	if share < 0.55 || share > 0.75 {
		t.Fatalf("whitelisted share = %.2f, want ≈0.65", share)
	}
}

func TestUnlistedDomainsPresent(t *testing.T) {
	found := false
	for _, f := range genDays(3, 1) {
		if strings.HasSuffix(f.Domain, ".unlisted.example") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no unlisted domains generated")
	}
}

func TestStreamingConcentration(t *testing.T) {
	g := New(usHome(3))
	streamVol := map[string]float64{}
	for d := 0; d < 7; d++ {
		day := day0.Add(time.Duration(d) * 24 * time.Hour)
		dt := g.GenerateDay(day, []household.Interval{{Start: day, End: day.Add(24 * time.Hour)}})
		for _, f := range dt.Flows {
			if f.Category == domains.Streaming {
				streamVol[f.Domain] += float64(f.DownBytes)
			}
		}
	}
	if len(streamVol) == 0 {
		t.Skip("no streaming this draw")
	}
	primary := g.PrimaryStreamingDomain()
	var total, prim float64
	for d, v := range streamVol {
		total += v
		if d == primary {
			prim = v
		}
	}
	if prim/total < 0.4 {
		t.Fatalf("primary streamer only %.2f of streaming volume", prim/total)
	}
}

func TestMinuteLoadsDiurnal(t *testing.T) {
	// Pool many homes: evening minutes must carry more volume than
	// early-morning minutes (Fig. 14).
	evening, night := 0.0, 0.0
	for h := 0; h < 20; h++ {
		g := New(usHome(h))
		dt := g.GenerateDay(day0, allDay())
		off := usCty.UTCOffset
		for _, m := range dt.Minutes {
			lh := m.Minute.Add(off).Hour()
			v := float64(m.UpBytes + m.DownBytes)
			if lh >= 19 && lh <= 22 {
				evening += v
			}
			if lh >= 2 && lh <= 5 {
				night += v
			}
		}
	}
	if evening <= 2*night {
		t.Fatalf("evening volume %.0f not ≫ night %.0f", evening, night)
	}
}

func TestHonestHomePeaksClampAtCapacity(t *testing.T) {
	for h := 0; h < 20; h++ {
		home := usHome(h)
		if home.UplinkSaturator {
			continue
		}
		g := New(home)
		dt := g.GenerateDay(day0, allDay())
		for _, m := range dt.Minutes {
			if m.UpPeakBps > home.UpBps*1.001 {
				t.Fatalf("home %d honest uplink peak %.0f > capacity %.0f", h, m.UpPeakBps, home.UpBps)
			}
			if m.DownPeakBps > home.DownBps*1.001 {
				t.Fatalf("home %d downlink peak exceeds capacity", h)
			}
		}
	}
}

func TestSaturatorExceedsCapacity(t *testing.T) {
	// Find a saturator home (8% of US homes).
	var home *household.Profile
	for h := 0; h < 200; h++ {
		if p := usHome(h); p.UplinkSaturator {
			home = p
			break
		}
	}
	if home == nil {
		t.Fatal("no saturator in 200 US homes (p=0.08)")
	}
	g := New(home)
	dt := g.GenerateDay(day0, allDay())
	over := 0
	for _, m := range dt.Minutes {
		if m.UpPeakBps > home.UpBps {
			over++
		}
	}
	if over < 100 {
		t.Fatalf("saturator exceeded capacity in only %d minutes", over)
	}
}

func TestFramesForFlowDriveCapture(t *testing.T) {
	home := usHome(0)
	g := New(home)
	dt := g.GenerateDay(day0, allDay())
	if len(dt.Flows) == 0 {
		t.Fatal("no flows")
	}
	// Pick a whitelisted-domain flow.
	var spec *FlowSpec
	for i := range dt.Flows {
		if domains.IsWhitelisted(dt.Flows[i].Domain) {
			spec = &dt.Flows[i]
			break
		}
	}
	if spec == nil {
		t.Fatal("no whitelisted flow")
	}
	gw := mac.MustParse("20:4e:7f:00:00:01")
	devIP := netip.MustParseAddr("192.168.1.10")
	frames := FramesForFlow(*spec, FrameOpts{GatewayMAC: gw, DeviceIP: devIP}, rng.New(1))
	if len(frames) < 5 {
		t.Fatalf("only %d frames", len(frames))
	}

	mon := capture.New(capture.Config{LANPrefix: netip.MustParsePrefix("192.168.1.0/24")}, anonymize.New([]byte("k")))
	for _, fr := range frames {
		dir := capture.Downstream
		if fr.Up {
			dir = capture.Upstream
		}
		mon.Process(fr.Raw, dir, fr.At)
	}
	flows := mon.Flows()
	var tcp int
	var domainSeen bool
	for _, f := range flows {
		if f.Key.RemotePort == 443 {
			tcp++
			if f.Domain == spec.Domain {
				domainSeen = true
			}
		}
	}
	if tcp == 0 {
		t.Fatal("capture saw no TCP flow")
	}
	if !domainSeen {
		t.Fatal("capture did not attribute the flow to its domain via DNS sniffing")
	}
}

func TestFrameTimestampsOrdered(t *testing.T) {
	home := usHome(0)
	g := New(home)
	dt := g.GenerateDay(day0, allDay())
	spec := dt.Flows[0]
	frames := FramesForFlow(spec, FrameOpts{
		GatewayMAC: mac.MustParse("20:4e:7f:00:00:01"),
		DeviceIP:   netip.MustParseAddr("192.168.1.10"),
	}, rng.New(2))
	for i := 1; i < len(frames); i++ {
		if frames[i].At.Before(frames[i-1].At) {
			t.Fatalf("frame %d out of order", i)
		}
	}
}

func TestDeriveRemoteIPStable(t *testing.T) {
	r := rng.New(1)
	a := deriveRemoteIP("netflix.com", r)
	b := deriveRemoteIP("netflix.com", r)
	if a != b {
		t.Fatal("unstable remote IP")
	}
	if deriveRemoteIP("hulu.com", r) == a {
		t.Fatal("distinct domains collide (unlucky hash?)")
	}
}
