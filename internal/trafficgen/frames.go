package trafficgen

import (
	"net/netip"
	"time"

	"natpeek/internal/dns"
	"natpeek/internal/mac"
	"natpeek/internal/packet"
	"natpeek/internal/rng"
)

// Frame is one raw Ethernet frame with its capture direction and time,
// produced by frame mode for the capture pipeline.
type Frame struct {
	Raw []byte
	Up  bool // LAN → WAN
	At  time.Time
}

// FrameOpts controls frame emission.
type FrameOpts struct {
	// GatewayMAC is the router's LAN-side address.
	GatewayMAC mac.Addr
	// DeviceIP is the LAN address of the flow's device.
	DeviceIP netip.Addr
	// RemoteIP is the server address the flow talks to. If unset, one is
	// derived from the domain name.
	RemoteIP netip.Addr
	// ResolverIP is the upstream DNS server (default 8.8.8.8).
	ResolverIP netip.Addr
	// MaxDataPackets bounds emitted data frames per flow (default 40);
	// byte counts are preserved by inflating the last packets' reported
	// size only up to the MTU, so totals are approximate at small caps.
	MaxDataPackets int
	// MTU for data packets (default 1500).
	MTU int
}

// FlowFrames is a rendered flow, with the rng-drawn connection identity
// exposed so callers (the verify harness) can predict the exact flow
// keys the capture pipeline will build from these frames.
type FlowFrames struct {
	// DNS is the lookup exchange: a UDP flow device:DPort → resolver:53.
	DNS []Frame
	// TCP is the handshake, data, and FIN: device:SPort → Remote:443.
	TCP []Frame
	// Remote is the server address the flow talks to.
	Remote netip.Addr
	// SPort is the TCP client port, DPort the DNS client port.
	SPort, DPort uint16
}

// FramesForFlow renders a FlowSpec as a realistic frame sequence: a DNS
// lookup + response (so the capture's sniffer learns the IP→domain
// binding), a TCP handshake, data packets in both directions, and a FIN.
// It is used where the real capture path must be exercised end to end.
func FramesForFlow(f FlowSpec, opts FrameOpts, rnd *rng.Stream) []Frame {
	ff := RenderFlow(f, opts, rnd)
	return append(ff.DNS, ff.TCP...)
}

// RenderFlow is FramesForFlow with the frames split by flow and the
// connection identity (remote address, ports) returned alongside.
func RenderFlow(f FlowSpec, opts FrameOpts, rnd *rng.Stream) FlowFrames {
	if opts.MaxDataPackets <= 0 {
		opts.MaxDataPackets = 40
	}
	if opts.MTU <= 0 {
		opts.MTU = 1500
	}
	if !opts.ResolverIP.IsValid() {
		opts.ResolverIP = netip.MustParseAddr("8.8.8.8")
	}
	remote := opts.RemoteIP
	if !remote.IsValid() {
		remote = deriveRemoteIP(f.Domain, rnd)
	}
	devHW := f.Device.HW
	gw := opts.GatewayMAC
	devIP := opts.DeviceIP

	ff := FlowFrames{Remote: remote}
	at := f.Start
	bldUp := packet.NewBuilder(devHW, gw)
	bldDown := packet.NewBuilder(gw, devHW)

	// DNS query + response.
	qid := uint16(rnd.Uint64())
	ff.DPort = uint16(30000 + rnd.Intn(20000))
	q := dns.NewQuery(qid, f.Domain, dns.TypeA)
	ff.DNS = append(ff.DNS, Frame{bldUp.UDPv4(devIP, opts.ResolverIP, ff.DPort, 53, 64, q.Marshal()), true, at})
	resp := dns.NewQuery(qid, f.Domain, dns.TypeA).Answer(dns.RR{
		Name: f.Domain, Type: dns.TypeA, Class: dns.ClassIN, TTL: 300, Addr: remote,
	})
	at = at.Add(30 * time.Millisecond)
	ff.DNS = append(ff.DNS, Frame{bldDown.UDPv4(opts.ResolverIP, devIP, 53, ff.DPort, 60, resp.Marshal()), false, at})

	// TCP handshake.
	ff.SPort = uint16(40000 + rnd.Intn(20000))
	sport := ff.SPort
	seq := uint32(rnd.Uint64())
	at = at.Add(10 * time.Millisecond)
	var out []Frame
	out = append(out, Frame{bldUp.TCPv4(devIP, remote, packet.TCP{
		SrcPort: sport, DstPort: 443, Seq: seq, Flags: packet.FlagSYN, Window: 65535}, 64, nil), true, at})
	at = at.Add(20 * time.Millisecond)
	out = append(out, Frame{bldDown.TCPv4(remote, devIP, packet.TCP{
		SrcPort: 443, DstPort: sport, Seq: 1, Ack: seq + 1,
		Flags: packet.FlagSYN | packet.FlagACK, Window: 65535}, 60, nil), false, at})

	// Data: split volumes across bounded packet counts.
	span := f.End.Sub(f.Start)
	if span <= 0 {
		span = time.Minute
	}
	upLeft, downLeft := f.UpBytes, f.DownBytes
	nPkts := opts.MaxDataPackets
	payload := opts.MTU - 54 // eth+ip+tcp headers
	for i := 0; i < nPkts && (upLeft > 0 || downLeft > 0); i++ {
		at = f.Start.Add(time.Duration(float64(span) * float64(i+1) / float64(nPkts+1)))
		if downLeft > 0 {
			sz := int64(payload)
			if sz > downLeft {
				sz = downLeft
			}
			downLeft -= sz
			out = append(out, Frame{bldDown.TCPv4(remote, devIP, packet.TCP{
				SrcPort: 443, DstPort: sport, Flags: packet.FlagACK, Window: 65535}, 60,
				make([]byte, sz)), false, at})
		}
		if upLeft > 0 {
			sz := int64(payload)
			if sz > upLeft {
				sz = upLeft
			}
			upLeft -= sz
			out = append(out, Frame{bldUp.TCPv4(devIP, remote, packet.TCP{
				SrcPort: sport, DstPort: 443, Flags: packet.FlagACK, Window: 65535}, 64,
				make([]byte, sz)), true, at})
		}
	}

	// FIN.
	out = append(out, Frame{bldUp.TCPv4(devIP, remote, packet.TCP{
		SrcPort: sport, DstPort: 443, Flags: packet.FlagFIN | packet.FlagACK, Window: 65535}, 64, nil), true, f.End})
	ff.TCP = out
	return ff
}

// deriveRemoteIP maps a domain to a stable pseudo server address in
// TEST-NET-3 space extended across 203.0.0.0/16.
func deriveRemoteIP(domain string, rnd *rng.Stream) netip.Addr {
	h := uint32(2166136261)
	for i := 0; i < len(domain); i++ {
		h = (h ^ uint32(domain[i])) * 16777619
	}
	return netip.AddrFrom4([4]byte{203, 0, byte(h >> 8), byte(h)})
}
