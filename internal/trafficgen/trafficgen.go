// Package trafficgen synthesizes the Traffic data set: per-device flows
// to domains and per-minute throughput, shaped to reproduce the paper's
// §6 usage structure —
//
//   - one dominant device per home (≈60–65% of volume, Fig. 17);
//   - one dominant domain (≈38% of volume but <14% of connections,
//     Fig. 19) because streaming runs few, long, heavy flows;
//   - whitelisted domains ≈65% of volume (§6.4), the rest to unlisted
//     names the anonymizer will obfuscate;
//   - diurnal minute-level load with rare uplink saturators whose
//     *measured* throughput exceeds shaped capacity (Figs. 14–16).
//
// The generator has two faithfulness levels: record mode (flows +
// minute loads, used by the fleet simulator) and frame mode (real
// Ethernet frames for the capture pipeline, used by examples and
// integration tests).
package trafficgen

import (
	"fmt"
	"math"
	"time"

	"natpeek/internal/domains"
	"natpeek/internal/household"
	"natpeek/internal/rng"
)

// FlowSpec is one generated connection bundle: several connections to the
// same domain by the same device within a day, with aggregate volume.
type FlowSpec struct {
	Device    *household.Device
	Domain    string // real name; unlisted names end in ".unlisted.example"
	Category  domains.Category
	Start     time.Time
	End       time.Time
	UpBytes   int64
	DownBytes int64
	Conns     int
}

// MinuteLoad is one minute of home-level offered load.
type MinuteLoad struct {
	Minute      time.Time
	UpBytes     int64
	DownBytes   int64
	UpPeakBps   float64
	DownPeakBps float64
}

// DayTraffic is one generated home-day.
type DayTraffic struct {
	Flows   []FlowSpec
	Minutes []MinuteLoad
}

// flowShape gives per-category connection characteristics.
type flowShape struct {
	meanBytes float64 // mean connection size
	sigma     float64
	downFrac  float64 // fraction of bytes downstream
}

var shapes = map[domains.Category]flowShape{
	domains.Streaming: {60e6, 1.0, 0.97},
	domains.CDN:       {3e6, 1.2, 0.95},
	domains.Cloud:     {8e6, 1.5, 0.55}, // sync traffic is up-heavy (Fig. 20a)
	domains.Gaming:    {5e6, 1.2, 0.85},
	domains.Ads:       {150e3, 1.0, 0.9},
	domains.Search:    {350e3, 1.2, 0.9},
	domains.Social:    {700e3, 1.3, 0.88},
	domains.News:      {700e3, 1.2, 0.95},
	domains.Shopping:  {600e3, 1.2, 0.93},
	domains.Portal:    {600e3, 1.2, 0.9},
	domains.Reference: {500e3, 1.2, 0.95},
	domains.Travel:    {500e3, 1.2, 0.93},
	domains.Finance:   {400e3, 1.1, 0.9},
	domains.Tech:      {800e3, 1.4, 0.9},
	domains.Other:     {600e3, 1.3, 0.9},
}

// dailyCapBytes bounds per-device daily volume for browsing categories:
// nobody reads 40 MB of news a day, but streaming scales without bound.
// Volume clipped here reallocates to streaming/CDN — the marginal byte in
// a 2013 home is video, which is exactly what concentrates volume on one
// domain while connections stay spread out (Fig. 19's disproportion).
var dailyCapBytes = map[domains.Category]float64{
	domains.Ads:       4e6,
	domains.Search:    6e6,
	domains.Social:    30e6,
	domains.News:      25e6,
	domains.Shopping:  20e6,
	domains.Portal:    15e6,
	domains.Reference: 15e6,
	domains.Travel:    10e6,
	domains.Finance:   5e6,
	domains.Tech:      25e6,
	domains.Other:     20e6,
}

// UnlistedVolumeFrac is the share of home volume sent to domains outside
// the whitelist; the paper measures whitelisted traffic at ≈65% of
// volume, so the unlisted share is ≈35%.
const UnlistedVolumeFrac = 0.35

// Generator produces traffic for one home.
type Generator struct {
	home *household.Profile
	rnd  *rng.Stream

	// primaryStream is the home's dominant streaming service — the
	// single-subscription effect that concentrates volume on one domain.
	primaryStream   string
	secondaryStream string

	catSamplers map[domains.Category]*rng.Zipf
	catDomains  map[domains.Category][]domains.Domain
	unlisted    *rng.Zipf
	homeTag     string
}

// New returns a generator for the home. Derivation is deterministic from
// the home's stream.
func New(home *household.Profile) *Generator {
	rnd := home.Rand().Child("traffic")
	g := &Generator{
		home:        home,
		rnd:         rnd,
		catSamplers: make(map[domains.Category]*rng.Zipf),
		catDomains:  make(map[domains.Category][]domains.Domain),
		unlisted:    rng.NewZipf(120, 1.4),
	}
	for _, c := range []domains.Category{
		domains.Streaming, domains.CDN, domains.Cloud, domains.Gaming,
		domains.Ads, domains.Search, domains.Social, domains.News,
		domains.Shopping, domains.Portal, domains.Reference, domains.Travel,
		domains.Finance, domains.Tech, domains.Other,
	} {
		ds := domains.ByCategory(c)
		if len(ds) == 0 {
			continue
		}
		g.catDomains[c] = ds
		g.catSamplers[c] = rng.NewZipf(len(ds), 1.6)
	}
	// Per-home tag for unlisted domains: the paper's obfuscated tail is
	// mostly home-specific sites, not a shared universe.
	g.homeTag = fmt.Sprintf("%08x", rnd.Child("unlisted-tag").Uint64()&0xffffffff)
	// Pick the home's streaming services, biased to the big ones.
	pick := rnd.Child("stream-pick")
	streams := g.catDomains[domains.Streaming]
	g.primaryStream = streams[g.catSamplers[domains.Streaming].Sample(pick)].Name
	g.secondaryStream = streams[g.catSamplers[domains.Streaming].Sample(pick)].Name
	return g
}

// PrimaryStreamingDomain returns the home's dominant streaming service.
func (g *Generator) PrimaryStreamingDomain() string { return g.primaryStream }

// GenerateDay produces the home's flows and minute loads for the day
// starting at dayStart (UTC), constrained to the online intervals.
func (g *Generator) GenerateDay(dayStart time.Time, online []household.Interval) DayTraffic {
	var out DayTraffic
	dayEnd := dayStart.Add(24 * time.Hour)
	online = household.Clip(online, dayStart, dayEnd)
	if household.TotalDuration(online) == 0 {
		return out
	}
	dayIdx := int(dayStart.Unix() / 86400)
	rnd := g.rnd.ChildN("day", dayIdx)

	// Home volume for the day.
	volume := g.home.DailyVolumeBytes * rnd.LogNormal(0, 0.5)

	// Split volume across devices by their heavy-tailed weights, counting
	// only devices online at some point today.
	active, weights := g.activeDevices(dayStart, online)
	if len(active) == 0 {
		return out
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, d := range active {
		devVol := volume * weights[i] / total
		flows := g.deviceFlows(rnd.ChildN("dev", i), d, devVol, dayStart, online)
		out.Flows = append(out.Flows, flows...)
	}
	out.Minutes = g.minuteLoads(rnd.Child("minutes"), out.Flows, dayStart, online)
	return out
}

func (g *Generator) activeDevices(dayStart time.Time, online []household.Interval) ([]*household.Device, []float64) {
	var devs []*household.Device
	var ws []float64
	for _, d := range g.home.Devices {
		on := false
		for h := 0; h < 24 && !on; h += 2 {
			at := dayStart.Add(time.Duration(h) * time.Hour)
			if household.CoveredAt(online, at) && g.home.DeviceOnline(d, at) {
				on = true
			}
		}
		if on {
			devs = append(devs, d)
			ws = append(ws, d.VolumeWeight)
		}
	}
	return devs, ws
}

// deviceFlows splits a device's daily volume into per-domain flow specs.
func (g *Generator) deviceFlows(rnd *rng.Stream, d *household.Device, vol float64, dayStart time.Time, online []household.Interval) []FlowSpec {
	var out []FlowSpec
	if vol < 1e4 {
		return nil
	}
	// Category split by device preference.
	cats := make([]domains.Category, 0, len(d.CategoryPrefs))
	ws := make([]float64, 0, len(d.CategoryPrefs))
	for c, w := range d.CategoryPrefs {
		cats = append(cats, c)
		ws = append(ws, w)
	}
	// Deterministic ordering of the map iteration.
	sortCatsByName(cats, ws)

	wlVol := vol * (1 - UnlistedVolumeFrac)
	totalW := 0.0
	for _, w := range ws {
		totalW += w
	}
	// First pass: clamp browsing categories to their daily caps and pool
	// the excess.
	catVols := make([]float64, len(cats))
	excess := 0.0
	streamIdx := -1
	for i, c := range cats {
		catVols[i] = wlVol * ws[i] / totalW
		if c == domains.Streaming {
			streamIdx = i
		}
		if cap, ok := dailyCapBytes[c]; ok && catVols[i] > cap {
			excess += catVols[i] - cap
			catVols[i] = cap
		}
	}
	if excess > 0 {
		if streamIdx >= 0 {
			catVols[streamIdx] += excess
		} else {
			// Devices with no streaming habit push their excess to CDN.
			out = append(out, g.categoryFlows(rnd.Child("cdn-excess"), d, domains.CDN, excess, dayStart, online)...)
		}
	}
	for i, c := range cats {
		out = append(out, g.categoryFlows(rnd.ChildN("cat", i), d, c, catVols[i], dayStart, online)...)
	}
	// Unlisted tail.
	out = append(out, g.unlistedFlows(rnd.Child("unlisted"), d, vol*UnlistedVolumeFrac, dayStart, online)...)
	return out
}

func (g *Generator) categoryFlows(rnd *rng.Stream, d *household.Device, c domains.Category, vol float64, dayStart time.Time, online []household.Interval) []FlowSpec {
	shape := shapes[c]
	var out []FlowSpec
	for vol > shape.meanBytes/20 && len(out) < 200 {
		name := g.pickDomain(rnd, c)
		// Aggregate several connections to the domain into one spec.
		connBytes := rnd.LogNormal(math.Log(shape.meanBytes), shape.sigma)
		if connBytes > vol {
			connBytes = vol
		}
		conns := 1 + rnd.Poisson(connBytesToConnCount(c))
		start, end := g.placeFlow(rnd, dayStart, online, c)
		down := int64(connBytes * shape.downFrac)
		up := int64(connBytes) - down
		out = append(out, FlowSpec{
			Device: d, Domain: name, Category: c,
			Start: start, End: end,
			UpBytes: up, DownBytes: down, Conns: conns,
		})
		vol -= connBytes
	}
	return out
}

// connBytesToConnCount gives the extra-connection intensity per spec:
// browsing categories open many short connections, streaming very few.
func connBytesToConnCount(c domains.Category) float64 {
	switch c {
	case domains.Streaming:
		return 6
	case domains.Ads:
		return 2
	case domains.Social, domains.Search, domains.Portal:
		return 2
	case domains.News, domains.Shopping, domains.Reference, domains.Travel:
		return 1.5
	default:
		return 1
	}
}

func (g *Generator) pickDomain(rnd *rng.Stream, c domains.Category) string {
	ds := g.catDomains[c]
	if len(ds) == 0 {
		return "misc.unlisted.example"
	}
	if c == domains.Streaming {
		// Single-subscription concentration: most streaming volume goes
		// to the home's primary service.
		r := rnd.Float64()
		switch {
		case r < 0.82:
			return g.primaryStream
		case r < 0.93:
			return g.secondaryStream
		}
	}
	return ds[g.catSamplers[c].Sample(rnd)].Name
}

func (g *Generator) unlistedFlows(rnd *rng.Stream, d *household.Device, vol float64, dayStart time.Time, online []household.Interval) []FlowSpec {
	var out []FlowSpec
	shape := flowShape{1.2e6, 1.5, 0.9}
	for vol > 20e3 && len(out) < 300 {
		name := fmt.Sprintf("site-%03d-%s.unlisted.example", g.unlisted.Sample(rnd), g.homeTag)
		connBytes := rnd.LogNormal(math.Log(shape.meanBytes), shape.sigma)
		if connBytes > vol {
			connBytes = vol
		}
		start, end := g.placeFlow(rnd, dayStart, online, domains.Other)
		down := int64(connBytes * shape.downFrac)
		out = append(out, FlowSpec{
			Device: d, Domain: name, Category: domains.Other,
			Start: start, End: end,
			UpBytes: int64(connBytes) - down, DownBytes: down,
			Conns: 1 + rnd.Poisson(1),
		})
		vol -= connBytes
	}
	return out
}

// placeFlow picks a start within the online intervals, weighted to local
// evening hours, and a duration by category.
func (g *Generator) placeFlow(rnd *rng.Stream, dayStart time.Time, online []household.Interval, c domains.Category) (time.Time, time.Time) {
	// Rejection-sample an online minute with evening bias.
	var start time.Time
	for tries := 0; tries < 24; tries++ {
		iv := online[rnd.Intn(len(online))]
		span := iv.Duration()
		at := iv.Start.Add(time.Duration(rnd.Float64() * float64(span)))
		h := g.home.LocalHour(at)
		w := hourWeight(h)
		if rnd.Float64() < w {
			start = at
			break
		}
		start = at
	}
	var dur time.Duration
	minutes := func(lo, hi float64) time.Duration {
		return time.Duration(rnd.Range(lo, hi) * float64(time.Minute))
	}
	switch c {
	case domains.Streaming:
		dur = minutes(20, 150)
	case domains.Cloud:
		dur = minutes(5, 120)
	case domains.Gaming:
		dur = minutes(15, 90)
	default:
		dur = minutes(0.2, 15)
	}
	return start, start.Add(dur)
}

// hourWeight is the diurnal acceptance probability (peaks in the
// evening, trough mid-afternoon and small hours — Figs. 13–14).
func hourWeight(h int) float64 {
	switch {
	case h >= 19 && h <= 22:
		return 1.0
	case h >= 17 && h <= 18:
		return 0.8
	case h >= 23 || h <= 0:
		return 0.5
	case h >= 7 && h <= 9:
		return 0.45
	case h >= 10 && h <= 16:
		return 0.3
	default:
		return 0.15
	}
}

// minuteLoads spreads flow volume over minutes and derives peak-1s
// throughput, clamping honest flows near capacity but letting the
// bufferbloat saturator exceed it (§6.2).
func (g *Generator) minuteLoads(rnd *rng.Stream, flows []FlowSpec, dayStart time.Time, online []household.Interval) []MinuteLoad {
	type acc struct{ up, down float64 }
	minutes := make(map[int]*acc)
	addVol := func(start, end time.Time, up, down float64) {
		s := int(start.Sub(dayStart) / time.Minute)
		e := int(end.Sub(dayStart)/time.Minute) + 1
		if s < 0 {
			s = 0
		}
		if e > 24*60 {
			e = 24 * 60
		}
		if e <= s {
			e = s + 1
		}
		n := float64(e - s)
		for m := s; m < e && m < 24*60; m++ {
			a := minutes[m]
			if a == nil {
				a = &acc{}
				minutes[m] = a
			}
			a.up += up / n
			a.down += down / n
		}
	}
	for _, f := range flows {
		addVol(f.Start, f.End, float64(f.UpBytes), float64(f.DownBytes))
	}
	// The saturator home uploads continuously while online.
	if g.home.UplinkSaturator {
		upRate := g.home.UpBps / 8 * rnd.Range(1.0, 1.25) // offered ≥ capacity
		for _, iv := range online {
			for t := iv.Start; t.Before(iv.End); t = t.Add(time.Minute) {
				if t.Before(dayStart) || !t.Before(dayStart.Add(24*time.Hour)) {
					continue
				}
				addVol(t, t.Add(time.Minute), upRate*60, 0)
			}
		}
	}
	var out []MinuteLoad
	for m := 0; m < 24*60; m++ {
		a := minutes[m]
		if a == nil || (a.up < 1 && a.down < 1) {
			continue
		}
		burst := rnd.Pareto(1.4, 1.7)
		downPeak := a.down * 8 / 60 * burst
		if downPeak > g.home.DownBps {
			downPeak = g.home.DownBps
		}
		upPeak := a.up * 8 / 60 * rnd.Pareto(1.2, 2.0)
		// Honest uplink peaks clamp at capacity; the saturator's
		// gateway-side measurement rides above it (bufferbloat).
		if g.home.UplinkSaturator {
			if lim := g.home.UpBps * 1.35; upPeak > lim {
				upPeak = lim
			}
		} else if upPeak > g.home.UpBps {
			upPeak = g.home.UpBps
		}
		out = append(out, MinuteLoad{
			Minute:      dayStart.Add(time.Duration(m) * time.Minute),
			UpBytes:     int64(a.up),
			DownBytes:   int64(a.down),
			UpPeakBps:   upPeak,
			DownPeakBps: downPeak,
		})
	}
	return out
}

func sortCatsByName(cats []domains.Category, ws []float64) {
	for i := 1; i < len(cats); i++ {
		for j := i; j > 0 && cats[j] < cats[j-1]; j-- {
			cats[j], cats[j-1] = cats[j-1], cats[j]
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
