// Package rng provides seeded, splittable random number streams.
//
// The synthetic deployment must be reproducible from a single seed, and —
// just as important — *stable under composition*: adding a new home to the
// world must not perturb the random draws of existing homes. We get both by
// deriving independent child streams from a parent via an splitmix64-based
// key derivation, rather than sharing one sequence.
//
// The generator is xoshiro256** (Blackman & Vigna), which is small, fast,
// and has no stdlib dependency beyond math.
package rng

import "math"

// Stream is a deterministic random stream. It is not safe for concurrent
// use; derive one stream per goroutine/entity instead.
type Stream struct {
	s [4]uint64
}

// splitmix64 is used for seeding and for deriving child stream keys, as
// recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed.
func New(seed uint64) *Stream {
	s := &Stream{}
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return s
}

// Child derives an independent stream from this stream's seed material and
// a label. Deriving is pure: it does not consume from the parent, so the
// set and order of Child calls never changes the parent's sequence.
func (r *Stream) Child(label string) *Stream {
	x := r.s[0] ^ 0xa5a5a5a5a5a5a5a5
	h := splitmix64(&x)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		x = h
		h = splitmix64(&x)
	}
	h ^= r.s[3]
	x = h
	return New(splitmix64(&x))
}

// ChildN derives an independent stream keyed by an integer index.
func (r *Stream) ChildN(label string, n int) *Stream {
	c := r.Child(label)
	x := c.s[2] ^ uint64(n)*0x9e3779b97f4a7c15
	return New(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Stream) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniform value in [lo, hi).
func (r *Stream) Range(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *Stream) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given mean.
// Exponential inter-arrival times model ISP outage arrivals and flow
// arrivals throughout the simulator.
func (r *Stream) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// LogNormal returns a log-normally distributed value parameterized by the
// underlying normal's mu and sigma. Heavy-tailed durations (downtime
// lengths, flow sizes) use this.
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto-distributed value with scale xm and shape alpha.
// Traffic volume tails in the generator are Pareto, matching the paper's
// observation of long-tailed per-domain and per-device volumes.
func (r *Stream) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean (Knuth's
// method for small means, normal approximation above 30).
func (r *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(r.Norm(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a rank in [0, n) drawn from a Zipf distribution with
// exponent s. Domain popularity follows Zipf, which is what produces the
// paper's "38% of volume from one domain" concentration.
func (r *Stream) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF on the harmonic weights; n is small (≤ a few hundred)
	// everywhere we use this, so linear scan is fine and allocation-free
	// users can precompute via NewZipf.
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
	}
	u := r.Float64() * total
	acc := 0.0
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		if u <= acc {
			return k - 1
		}
	}
	return n - 1
}

// Zipf is a precomputed Zipf sampler over ranks [0, n).
type Zipf struct {
	cum []float64
}

// NewZipf precomputes the cumulative weights for a Zipf(s) distribution
// over n ranks.
func NewZipf(n int, s float64) *Zipf {
	z := &Zipf{cum: make([]float64, n)}
	acc := 0.0
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		z.cum[k-1] = acc
	}
	return z
}

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(r *Stream) int {
	u := r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes the order of n elements via the swap function
// (Fisher–Yates).
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero or negative total weight panics.
func (r *Stream) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: WeightedChoice with non-positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u <= acc {
			return i
		}
	}
	return len(weights) - 1
}
