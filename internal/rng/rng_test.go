package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws across seeds", same)
	}
}

func TestZeroSeedIsNotDegenerate(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero draws", zeros)
	}
}

func TestChildIsPure(t *testing.T) {
	a := New(7)
	b := New(7)
	// Deriving children from a must not change a's sequence.
	_ = a.Child("x")
	_ = a.Child("y")
	_ = a.ChildN("home", 12)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Child() consumed parent entropy (draw %d)", i)
		}
	}
}

func TestChildLabelsIndependent(t *testing.T) {
	r := New(7)
	x := r.Child("alpha")
	y := r.Child("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children correlate: %d/100 equal", same)
	}
}

func TestChildDeterministic(t *testing.T) {
	x := New(7).Child("home-3")
	y := New(7).Child("home-3")
	for i := 0; i < 100; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("same label, different streams")
		}
	}
}

func TestChildNDistinct(t *testing.T) {
	r := New(7)
	a := r.ChildN("home", 1).Uint64()
	b := r.ChildN("home", 2).Uint64()
	if a == b {
		t.Fatal("ChildN(1) == ChildN(2) first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(sd-3) > 0.1 {
		t.Fatalf("sd = %v", sd)
	}
}

func TestExpMean(t *testing.T) {
	r := New(12)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(5)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	if m := sum / n; math.Abs(m-5) > 0.15 {
		t.Fatalf("mean = %v, want ~5", m)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(14)
	for _, mean := range []float64{0.5, 3, 12, 50} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.1 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := New(15)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestZipfConcentration(t *testing.T) {
	r := New(16)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Zipf(100, 1.0)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[5] {
		t.Fatalf("Zipf not rank-decreasing: %v %v %v", counts[0], counts[1], counts[5])
	}
	// Rank 0 of Zipf(1.0, 100) should hold ~1/H(100) ≈ 19% of mass.
	share := float64(counts[0]) / n
	if share < 0.15 || share > 0.25 {
		t.Fatalf("rank-0 share = %v", share)
	}
}

func TestZipfSamplerMatchesDirect(t *testing.T) {
	z := NewZipf(50, 1.2)
	r := New(17)
	counts := make([]int, 50)
	for i := 0; i < 50000; i++ {
		k := z.Sample(r)
		if k < 0 || k >= 50 {
			t.Fatalf("rank out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[3] {
		t.Fatalf("precomputed Zipf not decreasing: %v vs %v", counts[0], counts[3])
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	r := New(19)
	w := []float64{1, 0, 9}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 7 || ratio > 12 {
		t.Fatalf("weight ratio = %v, want ~9", ratio)
	}
}

func TestWeightedChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestBoolProbability(t *testing.T) {
	r := New(20)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Fatalf("Bool(0.3) hit %d/10000", hits)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(21)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Range(5,10) = %v", v)
		}
	}
	// Swapped bounds normalize.
	v := r.Range(10, 5)
	if v < 5 || v >= 10 {
		t.Fatalf("Range(10,5) = %v", v)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(22)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal <= 0: %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfSampler(b *testing.B) {
	z := NewZipf(200, 1.1)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}
