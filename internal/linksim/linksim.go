// Package linksim simulates a broadband access link: a token-bucket
// shaper (the mechanism behind ISP speed tiers and "PowerBoost"-style
// bursts), a finite FIFO buffer whose oversizing is the "bufferbloat"
// phenomenon the paper cites for Fig. 16, propagation delay, random loss,
// and outage injection.
//
// The model is a deterministic fluid queue driven by the simulated clock:
// each direction tracks when its transmitter frees up; a packet arriving
// while the queue's worth of backlog exceeds the buffer is tail-dropped.
// This reproduces the two observable artifacts the paper leans on:
//
//   - ShaperProbe packet trains measure the token-fill (sustained) rate
//     once the bucket drains, and the peak rate before that;
//   - senders that keep the uplink saturated fill the buffer, so their
//     *measured* throughput momentarily exceeds the shaped capacity
//     (utilization > 1 in Fig. 15/16) while latency balloons.
package linksim

import (
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/rng"
)

// Direction is one direction of an access link. Not safe for concurrent
// use; drive it from the clock goroutine.
type Direction struct {
	clk *clock.Sim
	rnd *rng.Stream

	rate      float64 // sustained rate, bytes/sec (token fill)
	peakRate  float64 // line rate while bucket has tokens, bytes/sec
	bucketCap float64 // token bucket depth, bytes (0 = no burst)
	buffer    int     // queue capacity, bytes
	propDelay time.Duration
	lossProb  float64
	outage    bool
	mtu       int

	tokens    float64
	tokensAt  time.Time
	busyUntil time.Time
	queued    int // bytes currently in the buffer

	stats Stats
}

// Stats counts a direction's activity.
type Stats struct {
	Offered    int64 // packets handed to Send
	Delivered  int64
	DroppedBuf int64 // tail drops (buffer full)
	DroppedErr int64 // random loss
	DroppedOut int64 // outage
	Bytes      int64 // delivered bytes
}

// Config describes one direction.
type Config struct {
	// RateBps is the sustained shaped rate in bits per second.
	RateBps float64
	// PeakBps is the burst line rate in bits per second; 0 disables
	// bursting (peak = sustained).
	PeakBps float64
	// BurstBytes is the token bucket depth. 0 disables bursting.
	BurstBytes int
	// BufferBytes is the FIFO depth. Consumer gear famously oversizes
	// this; 256 KB on a 1 Mbps uplink is two seconds of bloat.
	BufferBytes int
	// PropDelay is one-way propagation delay.
	PropDelay time.Duration
	// LossProb is i.i.d. random loss probability per packet.
	LossProb float64
	// MTU bounds packet size (0 = 1500).
	MTU int
}

// New returns a direction driven by clk. The rng stream may be nil when
// LossProb is 0.
func New(clk *clock.Sim, rnd *rng.Stream, cfg Config) *Direction {
	if cfg.RateBps <= 0 {
		panic("linksim: non-positive rate")
	}
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 64 * 1024
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	peak := cfg.PeakBps
	if peak < cfg.RateBps {
		peak = cfg.RateBps
	}
	d := &Direction{
		clk:       clk,
		rnd:       rnd,
		rate:      cfg.RateBps / 8,
		peakRate:  peak / 8,
		bucketCap: float64(cfg.BurstBytes),
		buffer:    cfg.BufferBytes,
		propDelay: cfg.PropDelay,
		lossProb:  cfg.LossProb,
		mtu:       cfg.MTU,
		tokens:    float64(cfg.BurstBytes),
		tokensAt:  clk.Now(),
	}
	return d
}

// SetOutage switches the direction's outage state. During an outage every
// packet is dropped (the modem is down or the ISP path is dead).
func (d *Direction) SetOutage(down bool) { d.outage = down }

// Outage reports the current outage state.
func (d *Direction) Outage() bool { return d.outage }

// RateBps returns the sustained shaped rate in bits per second.
func (d *Direction) RateBps() float64 { return d.rate * 8 }

// Stats returns a copy of the direction's counters.
func (d *Direction) Stats() Stats { return d.stats }

// QueueBytes returns the current backlog.
func (d *Direction) QueueBytes() int { return d.queued }

// QueueDelay returns how long a packet arriving now would wait before
// transmission begins — the bufferbloat latency.
func (d *Direction) QueueDelay() time.Duration {
	now := d.clk.Now()
	if d.busyUntil.After(now) {
		return d.busyUntil.Sub(now)
	}
	return 0
}

// Send offers a packet of size bytes to the link. If accepted, deliver
// (may be nil) is invoked on the clock when the last byte arrives at the
// far end. Send reports whether the packet was accepted.
func (d *Direction) Send(size int, deliver func(at time.Time)) bool {
	now := d.clk.Now()
	d.stats.Offered++
	if size <= 0 {
		size = 1
	}
	if size > d.mtu {
		size = d.mtu
	}
	if d.outage {
		d.stats.DroppedOut++
		return false
	}
	if d.rnd != nil && d.lossProb > 0 && d.rnd.Bool(d.lossProb) {
		d.stats.DroppedErr++
		return false
	}
	// Tail drop when the backlog exceeds the buffer.
	if d.queued+size > d.buffer {
		d.stats.DroppedBuf++
		return false
	}

	// Refill tokens.
	if d.bucketCap > 0 {
		elapsed := now.Sub(d.tokensAt).Seconds()
		d.tokens += elapsed * d.rate
		if d.tokens > d.bucketCap {
			d.tokens = d.bucketCap
		}
		d.tokensAt = now
	}

	// Service rate for this packet: peak while tokens cover it, sustained
	// otherwise.
	rate := d.rate
	if d.bucketCap > 0 && d.tokens >= float64(size) {
		rate = d.peakRate
		d.tokens -= float64(size)
	}
	txTime := time.Duration(float64(size) / rate * float64(time.Second))

	start := now
	if d.busyUntil.After(start) {
		start = d.busyUntil
	}
	done := start.Add(txTime)
	d.busyUntil = done
	d.queued += size
	arrive := done.Add(d.propDelay)

	d.stats.Delivered++
	d.stats.Bytes += int64(size)
	sz := size
	d.clk.At(done, func(time.Time) { d.queued -= sz })
	if deliver != nil {
		d.clk.At(arrive, deliver)
	}
	return true
}

// Link is a bidirectional access link.
type Link struct {
	Up   *Direction
	Down *Direction
}

// NewLink builds a link from per-direction configs.
func NewLink(clk *clock.Sim, rnd *rng.Stream, up, down Config) *Link {
	var upRnd, downRnd *rng.Stream
	if rnd != nil {
		upRnd, downRnd = rnd.Child("up"), rnd.Child("down")
	}
	return &Link{
		Up:   New(clk, upRnd, up),
		Down: New(clk, downRnd, down),
	}
}

// SetOutage switches both directions at once (a modem or ISP failure
// takes the whole link down).
func (l *Link) SetOutage(down bool) {
	l.Up.SetOutage(down)
	l.Down.SetOutage(down)
}

// Outage reports whether the link is down (either direction).
func (l *Link) Outage() bool { return l.Up.Outage() || l.Down.Outage() }
