package linksim

import (
	"testing"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/rng"
)

var epoch = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)

// newDir returns a 8 Mbps direction (1 MB/s) with a 64 KB buffer.
func newDir(t *testing.T, cfg Config) (*Direction, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim(epoch)
	if cfg.RateBps == 0 {
		cfg.RateBps = 8e6
	}
	return New(clk, rng.New(1), cfg), clk
}

func TestSingleDeliveryTiming(t *testing.T) {
	d, clk := newDir(t, Config{RateBps: 8e6, PropDelay: 10 * time.Millisecond})
	var at time.Time
	ok := d.Send(1000, func(ts time.Time) { at = ts })
	if !ok {
		t.Fatal("packet rejected")
	}
	clk.Run(epoch.Add(time.Second))
	// 1000 bytes at 1 MB/s = 1 ms tx + 10 ms prop.
	want := epoch.Add(11 * time.Millisecond)
	if !at.Equal(want) {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	d, clk := newDir(t, Config{RateBps: 8e6})
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if !d.Send(500, func(time.Time) { order = append(order, i) }) {
			t.Fatalf("packet %d rejected", i)
		}
	}
	clk.Run(epoch.Add(time.Second))
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("delivered %d", len(order))
	}
}

func TestSustainedRateShapes(t *testing.T) {
	// 100 × 1000 B at 1 MB/s: last delivery ≈ 100 ms.
	d, clk := newDir(t, Config{RateBps: 8e6, BufferBytes: 200000})
	var last time.Time
	for i := 0; i < 100; i++ {
		d.Send(1000, func(ts time.Time) { last = ts })
	}
	clk.Run(epoch.Add(time.Second))
	want := epoch.Add(100 * time.Millisecond)
	if last.Before(want.Add(-time.Millisecond)) || last.After(want.Add(time.Millisecond)) {
		t.Fatalf("last delivery %v, want ≈%v", last, want)
	}
}

func TestTokenBucketBurstsThenShapes(t *testing.T) {
	// Sustained 1 MB/s, peak 10 MB/s, bucket 50 KB. A 100 KB train should
	// see the first ~50 KB depart at peak and the rest at sustained rate.
	clk := clock.NewSim(epoch)
	d := New(clk, nil, Config{RateBps: 8e6, PeakBps: 80e6, BurstBytes: 50000, BufferBytes: 1 << 20})
	var times []time.Time
	for i := 0; i < 100; i++ {
		d.Send(1000, func(ts time.Time) { times = append(times, ts) })
	}
	clk.Run(epoch.Add(time.Second))
	if len(times) != 100 {
		t.Fatalf("delivered %d", len(times))
	}
	// First 50 packets at 10 MB/s: 1000 B every 0.1 ms → packet 49 at ~5 ms.
	burstEnd := times[49].Sub(epoch)
	if burstEnd > 8*time.Millisecond {
		t.Fatalf("burst phase too slow: %v", burstEnd)
	}
	// Tail at 1 MB/s: inter-arrival ≈ 1 ms.
	tailGap := times[99].Sub(times[98])
	if tailGap < 900*time.Microsecond || tailGap > 1100*time.Microsecond {
		t.Fatalf("tail dispersion %v, want ≈1ms", tailGap)
	}
}

func TestTailDropWhenBufferFull(t *testing.T) {
	d, clk := newDir(t, Config{RateBps: 8e6, BufferBytes: 10000})
	accepted := 0
	for i := 0; i < 100; i++ {
		if d.Send(1000, nil) {
			accepted++
		}
	}
	if accepted != 10 {
		t.Fatalf("accepted %d packets into a 10-packet buffer", accepted)
	}
	st := d.Stats()
	if st.DroppedBuf != 90 {
		t.Fatalf("tail drops = %d", st.DroppedBuf)
	}
	clk.Run(epoch.Add(time.Second))
	if d.QueueBytes() != 0 {
		t.Fatalf("queue not drained: %d", d.QueueBytes())
	}
}

func TestQueueDrainReopensBuffer(t *testing.T) {
	d, clk := newDir(t, Config{RateBps: 8e6, BufferBytes: 10000})
	for i := 0; i < 10; i++ {
		d.Send(1000, nil)
	}
	if d.Send(1000, nil) {
		t.Fatal("buffer should be full")
	}
	clk.Advance(5 * time.Millisecond) // half drained
	if !d.Send(1000, nil) {
		t.Fatal("buffer did not reopen after draining")
	}
}

func TestBufferbloatDelayGrows(t *testing.T) {
	// Big buffer + saturating sender → queue delay approaches
	// buffer/rate (256 KB at 1 MB/s ≈ 256 ms of bloat).
	d, clk := newDir(t, Config{RateBps: 8e6, BufferBytes: 256 * 1024})
	for i := 0; i < 300; i++ {
		d.Send(1400, nil)
	}
	delay := d.QueueDelay()
	if delay < 200*time.Millisecond {
		t.Fatalf("queue delay %v, want bloated (>200ms)", delay)
	}
	clk.Run(epoch.Add(time.Second))
	if d.QueueDelay() != 0 {
		t.Fatal("delay persists after drain")
	}
}

func TestOutageDropsEverything(t *testing.T) {
	d, _ := newDir(t, Config{RateBps: 8e6})
	d.SetOutage(true)
	if d.Send(100, nil) {
		t.Fatal("packet delivered during outage")
	}
	if d.Stats().DroppedOut != 1 {
		t.Fatal("outage drop not counted")
	}
	d.SetOutage(false)
	if !d.Send(100, nil) {
		t.Fatal("packet dropped after outage cleared")
	}
}

func TestRandomLossRate(t *testing.T) {
	clk := clock.NewSim(epoch)
	d := New(clk, rng.New(7), Config{RateBps: 8e9, BufferBytes: 1 << 30, LossProb: 0.2})
	dropped := 0
	for i := 0; i < 10000; i++ {
		if !d.Send(100, nil) {
			dropped++
		}
	}
	if dropped < 1800 || dropped > 2200 {
		t.Fatalf("dropped %d/10000 at p=0.2", dropped)
	}
}

func TestMTUClamp(t *testing.T) {
	d, clk := newDir(t, Config{RateBps: 8e6, MTU: 1500})
	var at time.Time
	d.Send(9000, func(ts time.Time) { at = ts })
	clk.Run(epoch.Add(time.Second))
	// Clamped to 1500 B at 1 MB/s = 1.5 ms.
	if !at.Equal(epoch.Add(1500 * time.Microsecond)) {
		t.Fatalf("delivered at %v", at)
	}
}

func TestStatsAccounting(t *testing.T) {
	d, clk := newDir(t, Config{RateBps: 8e6, BufferBytes: 5000})
	for i := 0; i < 10; i++ {
		d.Send(1000, nil)
	}
	clk.Run(epoch.Add(time.Second))
	st := d.Stats()
	if st.Offered != 10 || st.Delivered != 5 || st.DroppedBuf != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes != 5000 {
		t.Fatalf("bytes %d", st.Bytes)
	}
}

func TestLinkOutageBothDirections(t *testing.T) {
	clk := clock.NewSim(epoch)
	l := NewLink(clk, rng.New(1), Config{RateBps: 1e6}, Config{RateBps: 8e6})
	l.SetOutage(true)
	if !l.Outage() || !l.Up.Outage() || !l.Down.Outage() {
		t.Fatal("outage did not propagate")
	}
	l.SetOutage(false)
	if l.Outage() {
		t.Fatal("outage did not clear")
	}
}

func TestAsymmetricRates(t *testing.T) {
	clk := clock.NewSim(epoch)
	l := NewLink(clk, nil, Config{RateBps: 1e6}, Config{RateBps: 8e6})
	var upAt, downAt time.Time
	l.Up.Send(1000, func(ts time.Time) { upAt = ts })
	l.Down.Send(1000, func(ts time.Time) { downAt = ts })
	clk.Run(epoch.Add(time.Second))
	if !upAt.After(downAt) {
		t.Fatalf("uplink (%v) should be slower than downlink (%v)", upAt, downAt)
	}
}

func TestZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(clock.NewSim(epoch), nil, Config{})
}

func TestIdleBucketRefills(t *testing.T) {
	clk := clock.NewSim(epoch)
	d := New(clk, nil, Config{RateBps: 8e6, PeakBps: 80e6, BurstBytes: 10000, BufferBytes: 1 << 20})
	// Drain the bucket.
	for i := 0; i < 10; i++ {
		d.Send(1000, nil)
	}
	clk.Run(epoch.Add(time.Second))
	// After 1 s idle at 1 MB/s fill, bucket is full again → next packet
	// goes at peak: tx 1000 B at 10 MB/s = 0.1 ms.
	var at time.Time
	d.Send(1000, func(ts time.Time) { at = ts })
	clk.Run(epoch.Add(2 * time.Second))
	gap := at.Sub(epoch.Add(time.Second))
	if gap > 200*time.Microsecond {
		t.Fatalf("bucket did not refill: tx took %v", gap)
	}
}

func TestConservationProperty(t *testing.T) {
	// Offered = delivered + dropped, and delivered bytes equal the sum of
	// accepted sizes, across randomized workloads.
	for seed := uint64(1); seed <= 20; seed++ {
		clk := clock.NewSim(epoch)
		r := rng.New(seed)
		d := New(clk, r.Child("link"), Config{
			RateBps:     1e6 + r.Float64()*20e6,
			BufferBytes: 5000 + r.Intn(100000),
			LossProb:    r.Float64() * 0.1,
			PropDelay:   time.Duration(r.Intn(50)) * time.Millisecond,
		})
		delivered := 0
		var acceptedBytes int64
		for i := 0; i < 500; i++ {
			size := 40 + r.Intn(1460)
			if d.Send(size, func(time.Time) { delivered++ }) {
				acceptedBytes += int64(size)
			}
			if r.Bool(0.1) {
				clk.Advance(time.Duration(r.Intn(50)) * time.Millisecond)
			}
		}
		clk.Run(epoch.Add(time.Hour))
		st := d.Stats()
		if st.Offered != 500 {
			t.Fatalf("seed %d: offered %d", seed, st.Offered)
		}
		if st.Delivered+st.DroppedBuf+st.DroppedErr+st.DroppedOut != st.Offered {
			t.Fatalf("seed %d: conservation broken: %+v", seed, st)
		}
		if int64(delivered) != st.Delivered {
			t.Fatalf("seed %d: callbacks %d vs stat %d", seed, delivered, st.Delivered)
		}
		if st.Bytes != acceptedBytes {
			t.Fatalf("seed %d: bytes %d vs accepted %d", seed, st.Bytes, acceptedBytes)
		}
		if d.QueueBytes() != 0 {
			t.Fatalf("seed %d: queue not drained: %d", seed, d.QueueBytes())
		}
	}
}

func TestDeliveryNeverBeforeSend(t *testing.T) {
	clk := clock.NewSim(epoch)
	r := rng.New(9)
	d := New(clk, nil, Config{RateBps: 2e6, BufferBytes: 1 << 20, PropDelay: 7 * time.Millisecond})
	violations := 0
	for i := 0; i < 200; i++ {
		sentAt := clk.Now()
		d.Send(100+r.Intn(1400), func(at time.Time) {
			if at.Before(sentAt.Add(7 * time.Millisecond)) {
				violations++
			}
		})
		clk.Advance(time.Duration(r.Intn(10)) * time.Millisecond)
	}
	clk.Run(epoch.Add(time.Hour))
	if violations > 0 {
		t.Fatalf("%d deliveries before minimum latency", violations)
	}
}
