// Package shaperprobe estimates access-link capacity the way the paper's
// routers did every twelve hours with ShaperProbe [30]: emit a back-to-back
// UDP packet train and read the shaped rate out of the train's dispersion
// at the far end. Token-bucket shapers give such trains a two-phase
// signature — an initial burst served at the peak (line) rate while the
// bucket has tokens, then a level shift down to the sustained (token-fill)
// rate. The estimator reports both levels; the sustained rate is the
// "Capacity" the study's §6.2 utilization analysis divides by.
package shaperprobe

import (
	"sort"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/linksim"
)

// Config tunes a probe.
type Config struct {
	// PacketSize is the probe packet size in bytes (default 1400).
	PacketSize int
	// TrainLength is the number of packets per train (default 100).
	TrainLength int
	// Timeout abandons the probe if deliveries stall (default 30 s).
	Timeout time.Duration
}

func (c *Config) fill() {
	if c.PacketSize <= 0 {
		c.PacketSize = 1400
	}
	if c.TrainLength <= 0 {
		c.TrainLength = 100
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
}

// Estimate is a probe result.
type Estimate struct {
	// SustainedBps is the post-burst shaped rate (bits/second) — the
	// capacity figure the study records.
	SustainedBps float64
	// PeakBps is the pre-levelshift burst rate; equal to SustainedBps on
	// links without a token bucket.
	PeakBps float64
	// BurstDetected reports whether a level shift was observed.
	BurstDetected bool
	// Delivered is how many train packets arrived.
	Delivered int
	// Lost is how many were dropped (loss, overflow, or outage).
	Lost int
	// Duration spans first to last delivery.
	Duration time.Duration
}

// Probe launches a train on dir and invokes done with the estimate once
// the train completes (or the timeout fires). It is asynchronous: the
// caller keeps driving the simulated clock. A probe over a link in outage
// reports a zero estimate with Lost == TrainLength.
func Probe(clk *clock.Sim, dir *linksim.Direction, cfg Config, done func(Estimate)) {
	cfg.fill()
	var arrivals []time.Time
	sent := 0
	lost := 0
	finished := false

	finish := func() {
		if finished {
			return
		}
		finished = true
		done(analyze(arrivals, cfg.PacketSize, lost))
	}

	for i := 0; i < cfg.TrainLength; i++ {
		ok := dir.Send(cfg.PacketSize, func(at time.Time) {
			arrivals = append(arrivals, at)
			if len(arrivals)+lost == sent && len(arrivals) == cfg.TrainLength-lost {
				finish()
			}
		})
		sent++
		if !ok {
			lost++
		}
	}
	if lost == cfg.TrainLength {
		// Nothing in flight; report immediately (still async for a
		// consistent caller contract).
		clk.AfterFunc(0, func(time.Time) { finish() })
		return
	}
	clk.AfterFunc(cfg.Timeout, func(time.Time) { finish() })
}

// analyze converts arrival timestamps into rate levels. It computes
// per-gap instantaneous rates and splits them into "burst" and
// "sustained" phases at the largest sustained level shift.
func analyze(arrivals []time.Time, pktSize, lost int) Estimate {
	e := Estimate{Delivered: len(arrivals), Lost: lost}
	if len(arrivals) < 3 {
		return e
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].Before(arrivals[j]) })
	e.Duration = arrivals[len(arrivals)-1].Sub(arrivals[0])

	rates := make([]float64, 0, len(arrivals)-1)
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i].Sub(arrivals[i-1]).Seconds()
		if gap <= 0 {
			continue
		}
		rates = append(rates, float64(pktSize*8)/gap)
	}
	if len(rates) == 0 {
		return e
	}

	// The sustained rate is the median of the last third of gaps — by
	// then any token bucket has drained.
	tail := rates[len(rates)*2/3:]
	if len(tail) == 0 {
		tail = rates
	}
	e.SustainedBps = median(tail)

	// The peak rate is the median of the first third.
	head := rates[:max(1, len(rates)/3)]
	e.PeakBps = median(head)
	if e.PeakBps < e.SustainedBps {
		e.PeakBps = e.SustainedBps
	}
	// A level shift of >25% marks a detected burst phase.
	e.BurstDetected = e.PeakBps > 1.25*e.SustainedBps
	return e
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ProbeSync is a convenience for tests and one-shot tools: it runs the
// clock forward until the probe completes and returns the estimate. The
// clock must not be concurrently driven elsewhere.
func ProbeSync(clk *clock.Sim, dir *linksim.Direction, cfg Config) Estimate {
	var result Estimate
	got := false
	Probe(clk, dir, cfg, func(e Estimate) {
		result = e
		got = true
	})
	limit := clk.Now().Add(5 * time.Minute)
	for !got && clk.Now().Before(limit) && clk.Pending() > 0 {
		clk.Run(limit)
	}
	return result
}
