package shaperprobe

import (
	"math"
	"testing"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/linksim"
	"natpeek/internal/rng"
)

var epoch = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestEstimatesPlainShapedLink(t *testing.T) {
	clk := clock.NewSim(epoch)
	// 10 Mbps, no burst, roomy buffer.
	dir := linksim.New(clk, nil, linksim.Config{RateBps: 10e6, BufferBytes: 1 << 20})
	e := ProbeSync(clk, dir, Config{})
	if !within(e.SustainedBps, 10e6, 0.05) {
		t.Fatalf("sustained = %.0f, want ≈10e6", e.SustainedBps)
	}
	if e.BurstDetected {
		t.Fatal("burst detected on a plain link")
	}
	if e.Delivered != 100 || e.Lost != 0 {
		t.Fatalf("delivered/lost = %d/%d", e.Delivered, e.Lost)
	}
}

func TestDetectsTokenBucketBurst(t *testing.T) {
	clk := clock.NewSim(epoch)
	// Sustained 5 Mbps, PowerBoost to 20 Mbps for the first 50 KB.
	dir := linksim.New(clk, nil, linksim.Config{
		RateBps: 5e6, PeakBps: 20e6, BurstBytes: 50_000, BufferBytes: 1 << 20,
	})
	e := ProbeSync(clk, dir, Config{TrainLength: 200})
	if !e.BurstDetected {
		t.Fatal("token bucket not detected")
	}
	if !within(e.SustainedBps, 5e6, 0.1) {
		t.Fatalf("sustained = %.0f, want ≈5e6", e.SustainedBps)
	}
	if !within(e.PeakBps, 20e6, 0.15) {
		t.Fatalf("peak = %.0f, want ≈20e6", e.PeakBps)
	}
}

func TestAsymmetricLinkDirections(t *testing.T) {
	clk := clock.NewSim(epoch)
	link := linksim.NewLink(clk, nil,
		linksim.Config{RateBps: 1e6, BufferBytes: 1 << 20},  // up
		linksim.Config{RateBps: 16e6, BufferBytes: 1 << 20}, // down
	)
	up := ProbeSync(clk, link.Up, Config{})
	down := ProbeSync(clk, link.Down, Config{})
	if !within(up.SustainedBps, 1e6, 0.05) {
		t.Fatalf("up = %.0f", up.SustainedBps)
	}
	if !within(down.SustainedBps, 16e6, 0.05) {
		t.Fatalf("down = %.0f", down.SustainedBps)
	}
}

func TestOutageYieldsZeroEstimate(t *testing.T) {
	clk := clock.NewSim(epoch)
	dir := linksim.New(clk, nil, linksim.Config{RateBps: 10e6})
	dir.SetOutage(true)
	e := ProbeSync(clk, dir, Config{})
	if e.SustainedBps != 0 || e.Delivered != 0 || e.Lost != 100 {
		t.Fatalf("outage estimate %+v", e)
	}
}

func TestSurvivesRandomLoss(t *testing.T) {
	clk := clock.NewSim(epoch)
	dir := linksim.New(clk, rng.New(5), linksim.Config{RateBps: 10e6, BufferBytes: 1 << 20, LossProb: 0.05})
	e := ProbeSync(clk, dir, Config{TrainLength: 200})
	if e.Lost == 0 {
		t.Fatal("no loss at p=0.05?")
	}
	if !within(e.SustainedBps, 10e6, 0.15) {
		t.Fatalf("lossy estimate %.0f, want ≈10e6", e.SustainedBps)
	}
}

func TestBufferOverflowStillEstimates(t *testing.T) {
	clk := clock.NewSim(epoch)
	// Tiny buffer: most of a 100-packet train tail-drops, but the
	// delivered prefix still reveals the rate.
	dir := linksim.New(clk, nil, linksim.Config{RateBps: 10e6, BufferBytes: 20_000})
	e := ProbeSync(clk, dir, Config{})
	if e.Lost == 0 {
		t.Fatal("expected tail drops")
	}
	if e.Delivered < 10 {
		t.Fatalf("delivered only %d", e.Delivered)
	}
	if !within(e.SustainedBps, 10e6, 0.15) {
		t.Fatalf("estimate %.0f under overflow", e.SustainedBps)
	}
}

func TestProbeIsAsync(t *testing.T) {
	clk := clock.NewSim(epoch)
	dir := linksim.New(clk, nil, linksim.Config{RateBps: 10e6, BufferBytes: 1 << 20})
	called := false
	Probe(clk, dir, Config{}, func(Estimate) { called = true })
	if called {
		t.Fatal("done invoked synchronously")
	}
	clk.Run(epoch.Add(time.Minute))
	if !called {
		t.Fatal("done never invoked")
	}
}

func TestTimeoutProducesPartialEstimate(t *testing.T) {
	clk := clock.NewSim(epoch)
	// 10 kbps: a 100×1400 B train takes ~18 min, far past the timeout.
	dir := linksim.New(clk, nil, linksim.Config{RateBps: 1e4, BufferBytes: 1 << 20})
	var e Estimate
	got := false
	Probe(clk, dir, Config{Timeout: 10 * time.Second}, func(r Estimate) { e = r; got = true })
	clk.Run(epoch.Add(time.Hour))
	if !got {
		t.Fatal("timeout never fired")
	}
	if e.Delivered >= 100 {
		t.Fatal("expected partial delivery")
	}
}

func TestShortTrainTooSmall(t *testing.T) {
	clk := clock.NewSim(epoch)
	dir := linksim.New(clk, nil, linksim.Config{RateBps: 10e6, BufferBytes: 1 << 20})
	dir.SetOutage(false)
	var e Estimate
	Probe(clk, dir, Config{TrainLength: 2}, func(r Estimate) { e = r })
	clk.Run(epoch.Add(time.Minute))
	if e.SustainedBps != 0 {
		t.Fatal("2-packet train produced an estimate")
	}
	if e.Delivered != 2 {
		t.Fatalf("delivered = %d", e.Delivered)
	}
}

func TestTrainLengthAccuracyTradeoff(t *testing.T) {
	// Longer trains should not be *less* accurate on a bursty link: the
	// short train never exits the burst phase and overestimates.
	clkA := clock.NewSim(epoch)
	burst := linksim.Config{RateBps: 5e6, PeakBps: 50e6, BurstBytes: 100_000, BufferBytes: 1 << 20}
	short := ProbeSync(clkA, linksim.New(clkA, nil, burst), Config{TrainLength: 20})
	clkB := clock.NewSim(epoch)
	long := ProbeSync(clkB, linksim.New(clkB, nil, burst), Config{TrainLength: 400})
	errShort := math.Abs(short.SustainedBps - 5e6)
	errLong := math.Abs(long.SustainedBps - 5e6)
	if errLong > errShort {
		t.Fatalf("long train worse than short: %.0f vs %.0f", errLong, errShort)
	}
	if short.SustainedBps < 5e6 {
		t.Fatalf("short train should overestimate, got %.0f", short.SustainedBps)
	}
}
