package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"

	"natpeek/internal/mac"
)

var (
	srcMAC = mac.MustParse("a4:b1:97:00:00:01")
	dstMAC = mac.MustParse("20:4e:7f:00:00:01")
	srcIP  = netip.MustParseAddr("192.168.1.10")
	dstIP  = netip.MustParseAddr("8.8.8.8")
	srcIP6 = netip.MustParseAddr("fd00::10")
	dstIP6 = netip.MustParseAddr("2001:db8::1")
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if cs := Checksum(b); cs != ^uint16(0xddf2) {
		t.Fatalf("checksum = %04x", cs)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0x01}) != ^uint16(0x0100) {
		t.Fatal("odd-length padding wrong")
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		if len(data) < 4 {
			return true
		}
		data[2], data[3] = 0, 0
		cs := Checksum(data)
		data[2], data[3] = byte(cs>>8), byte(cs)
		return Checksum(data) == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Src: srcMAC, Dst: dstMAC, Type: EtherTypeIPv4}
	b := e.Marshal(nil)
	b = append(b, 0xde, 0xad)
	var got Ethernet
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("got %+v want %+v", got, e)
	}
	if !bytes.Equal(rest, []byte{0xde, 0xad}) {
		t.Fatal("payload wrong")
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if _, err := e.Unmarshal(make([]byte, 13)); err == nil {
		t.Fatal("no error for 13-byte frame")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{Op: ARPReply, SenderHW: srcMAC, SenderIP: srcIP, TargetHW: dstMAC, TargetIP: netip.MustParseAddr("192.168.1.1")}
	b := a.Marshal(nil)
	var got ARP
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("got %+v want %+v", got, a)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	payload := []byte("hello home network")
	ip := IPv4{TOS: 0x10, ID: 0x1234, TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}
	b := ip.Marshal(nil, payload)
	var got IPv4
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != srcIP || got.Dst != dstIP || got.TTL != 64 || got.ID != 0x1234 || got.Protocol != ProtoUDP {
		t.Fatalf("got %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestIPv4ChecksumRejected(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}
	b := ip.Marshal(nil, nil)
	b[8] ^= 0xff // corrupt TTL
	var got IPv4
	if _, err := got.Unmarshal(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4TotalLengthTrims(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}
	b := ip.Marshal(nil, []byte{1, 2, 3})
	b = append(b, 0xee, 0xee) // trailing ethernet padding
	var got IPv4
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 3 {
		t.Fatalf("payload %d bytes, want 3", len(rest))
	}
}

func TestIPv4BadVersion(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}
	b := ip.Marshal(nil, nil)
	b[0] = 0x65 // version 6
	var got IPv4
	if _, err := got.Unmarshal(b); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestIPv4Options(t *testing.T) {
	ip := IPv4{TTL: 64, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP, Options: []byte{1, 1, 1, 1}}
	b := ip.Marshal(nil, []byte("x"))
	var got IPv4
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Options, []byte{1, 1, 1, 1}) {
		t.Fatalf("options = %v", got.Options)
	}
	if string(rest) != "x" {
		t.Fatal("payload wrong with options")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	payload := []byte("v6 payload")
	ip := IPv6{TrafficClass: 7, FlowLabel: 0xabcde, NextHeader: ProtoTCP, HopLimit: 60, Src: srcIP6, Dst: dstIP6}
	b := ip.Marshal(nil, payload)
	var got IPv6
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != ip {
		t.Fatalf("got %+v want %+v", got, ip)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("dns query bytes")
	u := UDP{SrcPort: 53412, DstPort: 53}
	b := u.Marshal(nil, srcIP, dstIP, payload)
	var got UDP
	rest, err := got.Unmarshal(b, srcIP, dstIP)
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Fatalf("got %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestUDPChecksumCoversAddresses(t *testing.T) {
	u := UDP{SrcPort: 1, DstPort: 2}
	b := u.Marshal(nil, srcIP, dstIP, []byte("x"))
	var got UDP
	// Verifying against different addresses must fail (pseudo-header).
	if _, err := got.Unmarshal(b, srcIP, netip.MustParseAddr("9.9.9.9")); err == nil {
		t.Fatal("checksum ignored pseudo-header")
	}
}

func TestUDPv6Checksum(t *testing.T) {
	u := UDP{SrcPort: 5000, DstPort: 53}
	b := u.Marshal(nil, srcIP6, dstIP6, []byte("six"))
	var got UDP
	if _, err := got.Unmarshal(b, srcIP6, dstIP6); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\n")
	tc := TCP{SrcPort: 49152, DstPort: 80, Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH, Window: 65535}
	b := tc.Marshal(nil, srcIP, dstIP, payload)
	var got TCP
	rest, err := got.Unmarshal(b, srcIP, dstIP)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 49152 || got.DstPort != 80 || got.Seq != 1000 || got.Ack != 2000 || got.Flags != FlagACK|FlagPSH {
		t.Fatalf("got %+v", got)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestTCPCorruptPayloadRejected(t *testing.T) {
	tc := TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN}
	b := tc.Marshal(nil, srcIP, dstIP, []byte("abcd"))
	b[len(b)-1] ^= 0xff
	var got TCP
	if _, err := got.Unmarshal(b, srcIP, dstIP); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	ic := ICMPv4{Type: ICMPEchoRequest, ID: 77, Seq: 3}
	b := ic.Marshal(nil, []byte("ping"))
	var got ICMPv4
	rest, err := got.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != ic {
		t.Fatalf("got %+v", got)
	}
	if string(rest) != "ping" {
		t.Fatal("payload mismatch")
	}
}

func TestDecodeUDPStack(t *testing.T) {
	bl := NewBuilder(srcMAC, dstMAC)
	raw := bl.UDPv4(srcIP, dstIP, 40000, 53, 64, []byte("query"))
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eth == nil || p.IP4 == nil || p.UDP == nil {
		t.Fatal("layers missing")
	}
	if p.Eth.Src != srcMAC || p.SrcIP() != srcIP || p.DstIP() != dstIP {
		t.Fatal("addresses wrong")
	}
	if sp, dp := p.Ports(); sp != 40000 || dp != 53 {
		t.Fatalf("ports %d,%d", sp, dp)
	}
	if p.Proto() != ProtoUDP {
		t.Fatal("proto wrong")
	}
	if string(p.Payload) != "query" {
		t.Fatal("payload wrong")
	}
	if p.Len() != len(raw) {
		t.Fatal("Len wrong")
	}
}

func TestDecodeTCPStack(t *testing.T) {
	bl := NewBuilder(srcMAC, dstMAC)
	raw := bl.TCPv4(srcIP, dstIP, TCP{SrcPort: 50000, DstPort: 443, Flags: FlagSYN}, 64, nil)
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCP == nil || p.TCP.Flags != FlagSYN {
		t.Fatal("TCP layer wrong")
	}
}

func TestDecodeICMPStack(t *testing.T) {
	bl := NewBuilder(srcMAC, dstMAC)
	raw := bl.ICMPv4Echo(srcIP, dstIP, ICMPEchoRequest, 1, 2, 64, []byte("x"))
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.ICMP == nil || p.ICMP.Type != ICMPEchoRequest {
		t.Fatal("ICMP layer wrong")
	}
}

func TestDecodeARPStack(t *testing.T) {
	bl := NewBuilder(srcMAC, dstMAC)
	raw := bl.ARPRequest(srcIP, netip.MustParseAddr("192.168.1.1"))
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.ARP == nil || p.ARP.Op != ARPRequest {
		t.Fatal("ARP layer wrong")
	}
	if !p.Eth.Dst.IsBroadcast() {
		t.Fatal("ARP request not broadcast")
	}
}

func TestDecodePartialKeepsPrefix(t *testing.T) {
	bl := NewBuilder(srcMAC, dstMAC)
	raw := bl.UDPv4(srcIP, dstIP, 1, 2, 64, []byte("abc"))
	// Corrupt the UDP checksum: Ethernet and IPv4 should still decode.
	raw[len(raw)-1] ^= 0xff
	p, err := Decode(raw)
	if err == nil {
		t.Fatal("expected error")
	}
	if p.Eth == nil || p.IP4 == nil {
		t.Fatal("lower layers lost")
	}
	if p.UDP != nil {
		t.Fatal("bad UDP layer kept")
	}
	if p.Err == nil {
		t.Fatal("Err not recorded")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		p, _ := Decode(raw) // must not panic
		return p != nil
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMutatedFramesNeverPanic(t *testing.T) {
	bl := NewBuilder(srcMAC, dstMAC)
	base := bl.TCPv4(srcIP, dstIP, TCP{SrcPort: 1, DstPort: 2, Flags: FlagACK}, 64, []byte("payload"))
	for i := 0; i < len(base); i++ {
		for _, bit := range []byte{0x01, 0x80, 0xff} {
			raw := append([]byte(nil), base...)
			raw[i] ^= bit
			Decode(raw)
		}
	}
	// Truncations too.
	for n := 0; n <= len(base); n++ {
		Decode(base[:n])
	}
}

func TestIPv6DecodeStack(t *testing.T) {
	u := UDP{SrcPort: 1000, DstPort: 2000}
	seg := u.Marshal(nil, srcIP6, dstIP6, []byte("v6"))
	ip := IPv6{NextHeader: ProtoUDP, HopLimit: 64, Src: srcIP6, Dst: dstIP6}
	eth := Ethernet{Src: srcMAC, Dst: dstMAC, Type: EtherTypeIPv6}
	raw := ip.Marshal(eth.Marshal(nil), seg)
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.IP6 == nil || p.UDP == nil || string(p.Payload) != "v6" {
		t.Fatalf("v6 stack decode failed: %+v", p)
	}
	if p.SrcIP() != srcIP6 {
		t.Fatal("v6 SrcIP wrong")
	}
}

func BenchmarkBuildUDPv4(b *testing.B) {
	bl := NewBuilder(srcMAC, dstMAC)
	payload := make([]byte, 1200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bl.UDPv4(srcIP, dstIP, 40000, 53, 64, payload)
	}
}

func BenchmarkDecodeTCPv4(b *testing.B) {
	bl := NewBuilder(srcMAC, dstMAC)
	raw := bl.TCPv4(srcIP, dstIP, TCP{SrcPort: 50000, DstPort: 443, Flags: FlagACK}, 64, make([]byte, 1400))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
