// Package packet implements the wire formats the gateway's passive monitor
// parses: Ethernet II, ARP, IPv4, IPv6, TCP, UDP, and ICMPv4, with a
// layered decode API in the style of gopacket. The traffic generator
// *serializes* real bytes with this package and the capture pipeline
// *parses* them back, so the passive-measurement path is exercised
// end-to-end rather than on structs passed by hand.
//
// Scope note: this is a measurement codec, not a host stack. It decodes
// what a home gateway sees; it does not reassemble IP fragments or TCP
// streams (the paper's flow statistics don't either — they count packets,
// bytes, and 5-tuples).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"natpeek/internal/mac"
)

// Common decode errors.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// EtherType values understood by the decoder.
type EtherType uint16

// Supported EtherTypes.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeIPv6 EtherType = 0x86DD
)

// IPProto values understood by the decoder.
type IPProto uint8

// Supported IP protocols.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst  mac.Addr
	Src  mac.Addr
	Type EtherType
}

const ethernetLen = 14

// Marshal appends the wire form of the header to b.
func (e *Ethernet) Marshal(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(e.Type))
}

// Unmarshal parses the header and returns the payload.
func (e *Ethernet) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < ethernetLen {
		return nil, fmt.Errorf("%w: ethernet header (%d bytes)", ErrTruncated, len(b))
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(b[12:14]))
	return b[ethernetLen:], nil
}

// ARP is an Ethernet/IPv4 ARP message.
type ARP struct {
	Op       uint16 // 1 = request, 2 = reply
	SenderHW mac.Addr
	SenderIP netip.Addr
	TargetHW mac.Addr
	TargetIP netip.Addr
}

// ARP opcodes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// Marshal appends the wire form to b.
func (a *ARP) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, 1)      // HTYPE ethernet
	b = binary.BigEndian.AppendUint16(b, 0x0800) // PTYPE IPv4
	b = append(b, 6, 4)                          // HLEN, PLEN
	b = binary.BigEndian.AppendUint16(b, a.Op)
	b = append(b, a.SenderHW[:]...)
	sip := a.SenderIP.As4()
	b = append(b, sip[:]...)
	b = append(b, a.TargetHW[:]...)
	tip := a.TargetIP.As4()
	return append(b, tip[:]...)
}

// Unmarshal parses an ARP message.
func (a *ARP) Unmarshal(b []byte) error {
	if len(b) < 28 {
		return fmt.Errorf("%w: arp (%d bytes)", ErrTruncated, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 {
		return fmt.Errorf("%w: arp types", ErrBadHeader)
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderHW[:], b[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(b[14:18]))
	copy(a.TargetHW[:], b[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(b[24:28]))
	return nil
}

// IPv4 is an IPv4 header (options are preserved opaquely).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // top 3 bits of the fragment field
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Src      netip.Addr
	Dst      netip.Addr
	Options  []byte
}

const ipv4MinLen = 20

// Marshal appends the header (with checksum) followed by payload to b.
func (ip *IPv4) Marshal(b []byte, payload []byte) []byte {
	hlen := ipv4MinLen + len(ip.Options)
	if hlen%4 != 0 {
		panic("packet: IPv4 options not 32-bit aligned")
	}
	start := len(b)
	total := hlen + len(payload)
	b = append(b, byte(4<<4|hlen/4), ip.TOS)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b = append(b, ip.TTL, byte(ip.Protocol))
	b = append(b, 0, 0) // checksum placeholder
	src, dst := ip.Src.As4(), ip.Dst.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	b = append(b, ip.Options...)
	cs := Checksum(b[start : start+hlen])
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return append(b, payload...)
}

// Unmarshal parses the header, verifies its checksum, and returns the
// payload (trimmed to the header's total length).
func (ip *IPv4) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < ipv4MinLen {
		return nil, fmt.Errorf("%w: ipv4 header (%d bytes)", ErrTruncated, len(b))
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, b[0]>>4)
	}
	hlen := int(b[0]&0x0f) * 4
	if hlen < ipv4MinLen || hlen > len(b) {
		return nil, fmt.Errorf("%w: ihl %d", ErrBadHeader, hlen)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < hlen || total > len(b) {
		return nil, fmt.Errorf("%w: total length %d of %d", ErrTruncated, total, len(b))
	}
	if Checksum(b[:hlen]) != 0 {
		return nil, fmt.Errorf("%w: ipv4 header", ErrBadChecksum)
	}
	ip.TOS = b[1]
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	frag := binary.BigEndian.Uint16(b[6:8])
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = IPProto(b[9])
	ip.Src = netip.AddrFrom4([4]byte(b[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	if hlen > ipv4MinLen {
		ip.Options = append([]byte(nil), b[ipv4MinLen:hlen]...)
	} else {
		ip.Options = nil
	}
	return b[hlen:total], nil
}

// IPv6 is a fixed IPv6 header (extension headers are not interpreted).
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	NextHeader   IPProto
	HopLimit     uint8
	Src          netip.Addr
	Dst          netip.Addr
}

const ipv6Len = 40

// Marshal appends the header followed by payload to b.
func (ip *IPv6) Marshal(b []byte, payload []byte) []byte {
	w := uint32(6)<<28 | uint32(ip.TrafficClass)<<20 | ip.FlowLabel&0xfffff
	b = binary.BigEndian.AppendUint32(b, w)
	b = binary.BigEndian.AppendUint16(b, uint16(len(payload)))
	b = append(b, byte(ip.NextHeader), ip.HopLimit)
	src, dst := ip.Src.As16(), ip.Dst.As16()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	return append(b, payload...)
}

// Unmarshal parses the header and returns the payload.
func (ip *IPv6) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < ipv6Len {
		return nil, fmt.Errorf("%w: ipv6 header (%d bytes)", ErrTruncated, len(b))
	}
	w := binary.BigEndian.Uint32(b[0:4])
	if w>>28 != 6 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, w>>28)
	}
	ip.TrafficClass = uint8(w >> 20)
	ip.FlowLabel = w & 0xfffff
	plen := int(binary.BigEndian.Uint16(b[4:6]))
	ip.NextHeader = IPProto(b[6])
	ip.HopLimit = b[7]
	ip.Src = netip.AddrFrom16([16]byte(b[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(b[24:40]))
	if ipv6Len+plen > len(b) {
		return nil, fmt.Errorf("%w: ipv6 payload %d of %d", ErrTruncated, plen, len(b)-ipv6Len)
	}
	return b[ipv6Len : ipv6Len+plen], nil
}

// UDP is a UDP header.
type UDP struct {
	SrcPort uint16
	DstPort uint16
}

const udpLen = 8

// Marshal appends the header (with pseudo-header checksum over src/dst)
// followed by payload to b.
func (u *UDP) Marshal(b []byte, src, dst netip.Addr, payload []byte) []byte {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(udpLen+len(payload)))
	b = append(b, 0, 0)
	b = append(b, payload...)
	cs := pseudoChecksum(src, dst, ProtoUDP, b[start:])
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted as all-ones
	}
	binary.BigEndian.PutUint16(b[start+6:start+8], cs)
	return b
}

// Unmarshal parses the header, verifies the checksum against the
// pseudo-header, and returns the payload.
func (u *UDP) Unmarshal(b []byte, src, dst netip.Addr) ([]byte, error) {
	if len(b) < udpLen {
		return nil, fmt.Errorf("%w: udp header (%d bytes)", ErrTruncated, len(b))
	}
	ulen := int(binary.BigEndian.Uint16(b[4:6]))
	if ulen < udpLen || ulen > len(b) {
		return nil, fmt.Errorf("%w: udp length %d of %d", ErrTruncated, ulen, len(b))
	}
	if binary.BigEndian.Uint16(b[6:8]) != 0 { // checksum present
		if pseudoChecksum(src, dst, ProtoUDP, b[:ulen]) != 0 {
			return nil, fmt.Errorf("%w: udp", ErrBadChecksum)
		}
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	return b[udpLen:ulen], nil
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// TCP is a TCP header (options preserved opaquely).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Options []byte
}

const tcpMinLen = 20

// Marshal appends the header (with pseudo-header checksum) followed by
// payload to b.
func (t *TCP) Marshal(b []byte, src, dst netip.Addr, payload []byte) []byte {
	if len(t.Options)%4 != 0 {
		panic("packet: TCP options not 32-bit aligned")
	}
	hlen := tcpMinLen + len(t.Options)
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, byte(hlen/4)<<4, t.Flags)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0, 0, 0) // checksum + urgent
	b = append(b, t.Options...)
	b = append(b, payload...)
	cs := pseudoChecksum(src, dst, ProtoTCP, b[start:])
	binary.BigEndian.PutUint16(b[start+16:start+18], cs)
	return b
}

// Unmarshal parses the header, verifies the checksum, and returns the
// payload.
func (t *TCP) Unmarshal(b []byte, src, dst netip.Addr) ([]byte, error) {
	if len(b) < tcpMinLen {
		return nil, fmt.Errorf("%w: tcp header (%d bytes)", ErrTruncated, len(b))
	}
	hlen := int(b[12]>>4) * 4
	if hlen < tcpMinLen || hlen > len(b) {
		return nil, fmt.Errorf("%w: tcp data offset %d", ErrBadHeader, hlen)
	}
	if pseudoChecksum(src, dst, ProtoTCP, b) != 0 {
		return nil, fmt.Errorf("%w: tcp", ErrBadChecksum)
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	if hlen > tcpMinLen {
		t.Options = append([]byte(nil), b[tcpMinLen:hlen]...)
	} else {
		t.Options = nil
	}
	return b[hlen:], nil
}

// ICMPv4 is an ICMP message header.
type ICMPv4 struct {
	Type uint8
	Code uint8
	ID   uint16
	Seq  uint16
}

// ICMP types used by the platform's diagnostics.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// Marshal appends the message (with checksum) and payload to b.
func (ic *ICMPv4) Marshal(b []byte, payload []byte) []byte {
	start := len(b)
	b = append(b, ic.Type, ic.Code, 0, 0)
	b = binary.BigEndian.AppendUint16(b, ic.ID)
	b = binary.BigEndian.AppendUint16(b, ic.Seq)
	b = append(b, payload...)
	cs := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+2:start+4], cs)
	return b
}

// Unmarshal parses the message, verifies the checksum, and returns the
// payload.
func (ic *ICMPv4) Unmarshal(b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: icmp (%d bytes)", ErrTruncated, len(b))
	}
	if Checksum(b) != 0 {
		return nil, fmt.Errorf("%w: icmp", ErrBadChecksum)
	}
	ic.Type = b[0]
	ic.Code = b[1]
	ic.ID = binary.BigEndian.Uint16(b[4:6])
	ic.Seq = binary.BigEndian.Uint16(b[6:8])
	return b[8:], nil
}

// Checksum computes the Internet checksum (RFC 1071) of b. Verifying a
// buffer that embeds its own correct checksum yields 0.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum including the IPv4 or IPv6
// pseudo-header for the given addresses.
func pseudoChecksum(src, dst netip.Addr, proto IPProto, segment []byte) uint16 {
	var ph []byte
	if src.Is4() && dst.Is4() {
		ph = make([]byte, 0, 12)
		s4, d4 := src.As4(), dst.As4()
		ph = append(ph, s4[:]...)
		ph = append(ph, d4[:]...)
		ph = append(ph, 0, byte(proto))
		ph = binary.BigEndian.AppendUint16(ph, uint16(len(segment)))
	} else {
		ph = make([]byte, 0, 40)
		s16, d16 := src.As16(), dst.As16()
		ph = append(ph, s16[:]...)
		ph = append(ph, d16[:]...)
		ph = binary.BigEndian.AppendUint32(ph, uint32(len(segment)))
		ph = append(ph, 0, 0, 0, byte(proto))
	}
	var sum uint32
	for i := 0; i+1 < len(ph); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ph[i : i+2]))
	}
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
