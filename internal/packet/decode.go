package packet

import (
	"fmt"
	"net/netip"

	"natpeek/internal/mac"
)

// Packet is a fully decoded frame: the layer stack plus the raw bytes it
// was parsed from. Decode follows gopacket's layered model — each layer is
// parsed in sequence and the first failure stops decoding, leaving the
// successfully parsed prefix available together with the error.
type Packet struct {
	Raw []byte

	Eth  *Ethernet
	ARP  *ARP
	IP4  *IPv4
	IP6  *IPv6
	TCP  *TCP
	UDP  *UDP
	ICMP *ICMPv4

	// Payload is the innermost payload (application data).
	Payload []byte

	// Err records where decoding stopped, if it did.
	Err error
}

// Decode parses an Ethernet frame into its layer stack. It always returns
// a Packet; check Err (also returned) for partial decodes.
func Decode(raw []byte) (*Packet, error) {
	p := &Packet{Raw: raw}
	p.Eth = &Ethernet{}
	rest, err := p.Eth.Unmarshal(raw)
	if err != nil {
		p.Eth = nil
		p.Err = err
		return p, err
	}
	switch p.Eth.Type {
	case EtherTypeARP:
		p.ARP = &ARP{}
		if err := p.ARP.Unmarshal(rest); err != nil {
			p.ARP = nil
			p.Err = err
			return p, err
		}
		return p, nil
	case EtherTypeIPv4:
		p.IP4 = &IPv4{}
		rest, err = p.IP4.Unmarshal(rest)
		if err != nil {
			p.IP4 = nil
			p.Err = err
			return p, err
		}
		return p.decodeTransport(p.IP4.Protocol, p.IP4.Src, p.IP4.Dst, rest)
	case EtherTypeIPv6:
		p.IP6 = &IPv6{}
		rest, err = p.IP6.Unmarshal(rest)
		if err != nil {
			p.IP6 = nil
			p.Err = err
			return p, err
		}
		return p.decodeTransport(p.IP6.NextHeader, p.IP6.Src, p.IP6.Dst, rest)
	default:
		p.Payload = rest
		p.Err = fmt.Errorf("packet: unsupported ethertype %#04x", uint16(p.Eth.Type))
		return p, p.Err
	}
}

func (p *Packet) decodeTransport(proto IPProto, src, dst netip.Addr, rest []byte) (*Packet, error) {
	var err error
	switch proto {
	case ProtoTCP:
		p.TCP = &TCP{}
		p.Payload, err = p.TCP.Unmarshal(rest, src, dst)
		if err != nil {
			p.TCP = nil
		}
	case ProtoUDP:
		p.UDP = &UDP{}
		p.Payload, err = p.UDP.Unmarshal(rest, src, dst)
		if err != nil {
			p.UDP = nil
		}
	case ProtoICMP:
		p.ICMP = &ICMPv4{}
		p.Payload, err = p.ICMP.Unmarshal(rest)
		if err != nil {
			p.ICMP = nil
		}
	default:
		p.Payload = rest
		err = fmt.Errorf("packet: unsupported protocol %v", proto)
	}
	p.Err = err
	return p, err
}

// SrcIP returns the network-layer source address (zero Addr if no IP
// layer decoded).
func (p *Packet) SrcIP() netip.Addr {
	switch {
	case p.IP4 != nil:
		return p.IP4.Src
	case p.IP6 != nil:
		return p.IP6.Src
	}
	return netip.Addr{}
}

// DstIP returns the network-layer destination address.
func (p *Packet) DstIP() netip.Addr {
	switch {
	case p.IP4 != nil:
		return p.IP4.Dst
	case p.IP6 != nil:
		return p.IP6.Dst
	}
	return netip.Addr{}
}

// Proto returns the transport protocol (0 if none decoded).
func (p *Packet) Proto() IPProto {
	switch {
	case p.TCP != nil:
		return ProtoTCP
	case p.UDP != nil:
		return ProtoUDP
	case p.ICMP != nil:
		return ProtoICMP
	}
	return 0
}

// Ports returns the transport src/dst ports (0, 0 for non-TCP/UDP).
func (p *Packet) Ports() (src, dst uint16) {
	switch {
	case p.TCP != nil:
		return p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		return p.UDP.SrcPort, p.UDP.DstPort
	}
	return 0, 0
}

// Len returns the frame's total length in bytes.
func (p *Packet) Len() int { return len(p.Raw) }

// Builder constructs frames layer by layer. The zero value is unusable;
// start from NewBuilder.
type Builder struct {
	eth Ethernet
}

// NewBuilder returns a Builder for frames between the given MACs.
func NewBuilder(src, dst mac.Addr) *Builder {
	return &Builder{eth: Ethernet{Src: src, Dst: dst}}
}

// UDPv4 builds a complete Ethernet+IPv4+UDP frame.
func (bl *Builder) UDPv4(src, dst netip.Addr, sport, dport uint16, ttl uint8, payload []byte) []byte {
	u := UDP{SrcPort: sport, DstPort: dport}
	seg := u.Marshal(nil, src, dst, payload)
	ip := IPv4{TTL: ttl, Protocol: ProtoUDP, Src: src, Dst: dst}
	eth := bl.eth
	eth.Type = EtherTypeIPv4
	b := eth.Marshal(nil)
	return ip.Marshal(b, seg)
}

// TCPv4 builds a complete Ethernet+IPv4+TCP frame.
func (bl *Builder) TCPv4(src, dst netip.Addr, hdr TCP, ttl uint8, payload []byte) []byte {
	seg := hdr.Marshal(nil, src, dst, payload)
	ip := IPv4{TTL: ttl, Protocol: ProtoTCP, Src: src, Dst: dst}
	eth := bl.eth
	eth.Type = EtherTypeIPv4
	b := eth.Marshal(nil)
	return ip.Marshal(b, seg)
}

// ICMPv4Echo builds an ICMP echo request/reply frame.
func (bl *Builder) ICMPv4Echo(src, dst netip.Addr, typ uint8, id, seq uint16, ttl uint8, payload []byte) []byte {
	ic := ICMPv4{Type: typ, ID: id, Seq: seq}
	seg := ic.Marshal(nil, payload)
	ip := IPv4{TTL: ttl, Protocol: ProtoICMP, Src: src, Dst: dst}
	eth := bl.eth
	eth.Type = EtherTypeIPv4
	b := eth.Marshal(nil)
	return ip.Marshal(b, seg)
}

// ARPRequest builds a who-has ARP request frame.
func (bl *Builder) ARPRequest(senderIP, targetIP netip.Addr) []byte {
	a := ARP{Op: ARPRequest, SenderHW: bl.eth.Src, SenderIP: senderIP, TargetIP: targetIP}
	eth := bl.eth
	eth.Type = EtherTypeARP
	eth.Dst = mac.Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	b := eth.Marshal(nil)
	return a.Marshal(b)
}
