package packet

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"

	"natpeek/internal/mac"
)

// FuzzDecode fuzzes the frame decoder the capture pipeline runs on every
// LAN frame. Properties:
//
//  1. Decode never panics and always returns a Packet holding the input.
//  2. decode∘encode = id: any fully decoded frame re-serialized from its
//     layer structs (the package's own Marshal methods, the encoder the
//     traffic generator uses) decodes back to identical layers and
//     payload. Raw bytes may differ — checksums are recomputed and
//     trailing garbage past the IP total length is dropped — but nothing
//     the capture pipeline reads may change.
func FuzzDecode(f *testing.F) {
	src := mac.Addr{0x00, 0x1c, 0xb3, 0x01, 0x02, 0x03}
	dst := mac.Addr{0x00, 0x18, 0xf8, 0x0a, 0x0b, 0x0c}
	bld := NewBuilder(src, dst)
	dev := netip.MustParseAddr("192.168.1.23")
	remote := netip.MustParseAddr("203.0.113.7")
	f.Add(bld.UDPv4(dev, netip.MustParseAddr("8.8.8.8"), 33000, 53, 64, []byte("dns-query")))
	f.Add(bld.TCPv4(dev, remote, TCP{SrcPort: 44123, DstPort: 443, Seq: 7, Flags: FlagSYN, Window: 65535}, 64, nil))
	f.Add(bld.TCPv4(remote, dev, TCP{SrcPort: 443, DstPort: 44123, Flags: FlagACK, Window: 65535}, 60, bytes.Repeat([]byte{0xab}, 1446)))
	f.Add(bld.ICMPv4Echo(dev, remote, ICMPEchoRequest, 9, 1, 64, []byte("ping")))
	f.Add(bld.ARPRequest(dev, netip.MustParseAddr("192.168.1.1")))
	// IPv6 UDP frame (hand-assembled; Builder only does v4).
	{
		u := UDP{SrcPort: 5353, DstPort: 5353}
		s6 := netip.MustParseAddr("fe80::1")
		d6 := netip.MustParseAddr("ff02::fb")
		seg := u.Marshal(nil, s6, d6, []byte("mdns"))
		ip := IPv6{NextHeader: ProtoUDP, HopLimit: 255, Src: s6, Dst: d6}
		eth := Ethernet{Dst: dst, Src: src, Type: EtherTypeIPv6}
		f.Add(ip.Marshal(eth.Marshal(nil), seg))
	}
	// Truncated IPv4 header (the short-frame class of crash bugs).
	f.Add([]byte("\x00\x18\xf8\x0a\x0b\x0c\x00\x1c\xb3\x01\x02\x03\x08\x00\x45\x00\x00\x14\x00\x00"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Decode(raw)
		if p == nil {
			t.Fatal("Decode returned nil packet")
		}
		if !bytes.Equal(p.Raw, raw) || p.Len() != len(raw) {
			t.Fatal("Decode did not retain the raw frame")
		}
		if err != nil {
			return // partial decode: nothing to round-trip
		}
		raw2 := reencode(t, p)
		p2, err := Decode(raw2)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n raw2=%x", err, raw2)
		}
		for _, l := range []struct {
			name string
			a, b any
		}{
			{"eth", p.Eth, p2.Eth},
			{"arp", p.ARP, p2.ARP},
			{"ip4", p.IP4, p2.IP4},
			{"ip6", p.IP6, p2.IP6},
			{"tcp", p.TCP, p2.TCP},
			{"udp", p.UDP, p2.UDP},
			{"icmp", p.ICMP, p2.ICMP},
		} {
			if !reflect.DeepEqual(l.a, l.b) {
				t.Fatalf("%s layer changed across re-encode:\n was %+v\n now %+v", l.name, l.a, l.b)
			}
		}
		if !bytes.Equal(p.Payload, p2.Payload) {
			t.Fatalf("payload changed across re-encode")
		}
	})
}

// reencode serializes a fully decoded packet from its layer structs.
func reencode(t *testing.T, p *Packet) []byte {
	t.Helper()
	b := p.Eth.Marshal(nil)
	switch {
	case p.ARP != nil:
		return p.ARP.Marshal(b)
	case p.IP4 != nil:
		return p.IP4.Marshal(b, reencodeTransport(t, p, p.IP4.Src, p.IP4.Dst))
	case p.IP6 != nil:
		return p.IP6.Marshal(b, reencodeTransport(t, p, p.IP6.Src, p.IP6.Dst))
	}
	t.Fatal("fully decoded packet with no network layer")
	return nil
}

func reencodeTransport(t *testing.T, p *Packet, src, dst netip.Addr) []byte {
	t.Helper()
	switch {
	case p.TCP != nil:
		return p.TCP.Marshal(nil, src, dst, p.Payload)
	case p.UDP != nil:
		return p.UDP.Marshal(nil, src, dst, p.Payload)
	case p.ICMP != nil:
		return p.ICMP.Marshal(nil, p.Payload)
	}
	t.Fatal("fully decoded packet with no transport layer")
	return nil
}
