// Fault injection for the upload pipeline. FaultTransport wraps an
// http.RoundTripper with configurable error, latency, and blackout
// injection so tests (and demo binaries) can prove that the spool loses
// nothing through flaky links; the matching server-side injector lives in
// the collector (SetFaultInjection / bismark-server -fail-rate).
package spool

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"natpeek/internal/rng"
)

// ErrInjected is the error type returned by FaultTransport failures, so
// tests can tell injected faults from real ones.
type ErrInjected struct{ URL string }

func (e *ErrInjected) Error() string { return "spool: injected transport fault: " + e.URL }

// FaultTransport is an http.RoundTripper that randomly fails requests
// before they reach the network. Configure it, then install it as an
// http.Client's Transport (collector.WithTransport does this for upload
// clients). Safe for concurrent use.
type FaultTransport struct {
	// Base performs real requests (nil means http.DefaultTransport).
	Base http.RoundTripper

	mu       sync.Mutex
	rng      *rng.Stream
	failRate float64
	latency  time.Duration
	blackout bool
	injected int
}

// NewFaultTransport returns a transport failing the given fraction of
// requests, deterministically driven by seed.
func NewFaultTransport(base http.RoundTripper, failRate float64, seed uint64) *FaultTransport {
	return &FaultTransport{Base: base, failRate: failRate, rng: rng.New(seed)}
}

// SetFailRate updates the failure probability.
func (t *FaultTransport) SetFailRate(p float64) {
	t.mu.Lock()
	t.failRate = p
	t.mu.Unlock()
}

// SetLatency adds a fixed delay before every request that is let through.
func (t *FaultTransport) SetLatency(d time.Duration) {
	t.mu.Lock()
	t.latency = d
	t.mu.Unlock()
}

// SetBlackout switches total-outage mode: every request fails until it is
// turned off (a multi-minute access-link outage, §3.3).
func (t *FaultTransport) SetBlackout(on bool) {
	t.mu.Lock()
	t.blackout = on
	t.mu.Unlock()
}

// Injected returns how many requests have been failed by injection.
func (t *FaultTransport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	fail := t.blackout || (t.failRate > 0 && t.rng.Bool(t.failRate))
	if fail {
		t.injected++
	}
	delay := t.latency
	t.mu.Unlock()
	if fail {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &ErrInjected{URL: req.URL.String()}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// String describes the current fault configuration (for logs).
func (t *FaultTransport) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("fault(rate=%.2f latency=%s blackout=%v injected=%d)",
		t.failRate, t.latency, t.blackout, t.injected)
}
