package spool

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalReplay fuzzes journal recovery over raw on-disk bytes — the
// one parser in the upload pipeline that reads state a crash may have
// torn. Properties:
//
//  1. replay never panics, whatever the file holds.
//  2. rewrite∘replay preserves the pending set: every recovered item
//     survives a compaction byte-for-byte (bodies canonicalized to
//     compact JSON), and a second rewrite∘replay round is the identity.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(`{"op":"put","item":{"endpoint":"/v1/uptime","key":"k1","body":{"RouterID":"r1"},"seq":1}}
{"op":"ack","key":"k1"}
{"op":"put","item":{"endpoint":"/v1/wifi","key":"k2","body":[{"RouterID":"r1"}],"seq":2}}
`))
	// Torn tail: crash mid-append of an ack record.
	f.Add([]byte(`{"op":"put","item":{"endpoint":"/v1/capacity","key":"c1","body":{},"seq":9}}
{"op":"ack","ke`))
	// Unknown ops, empty lines, and binary garbage interleaved.
	f.Add([]byte("\n{\"op\":\"nop\"}\n\x00\xff\x00garbage\n{\"op\":\"put\",\"item\":{\"endpoint\":\"/v1/devices\",\"key\":\"d\",\"body\":null,\"seq\":3}}\n"))

	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, journalFile)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		items1, err := replay(path)
		if err != nil {
			return // e.g. a single line beyond the scanner's 16MB cap
		}
		j := &journal{path: filepath.Join(dir, "compact.jsonl")}
		if err := j.rewrite(items1); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		if err := j.close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		items2, err := replay(j.path)
		if err != nil {
			t.Fatalf("replay of rewritten journal: %v", err)
		}
		if len(items2) != len(items1) {
			t.Fatalf("compaction changed pending count: %d → %d", len(items1), len(items2))
		}
		for i := range items1 {
			want := items1[i]
			want.Body = compactJSON(t, want.Body)
			if !reflect.DeepEqual(want, items2[i]) {
				t.Fatalf("item %d changed across compaction:\n was %+v\n now %+v", i, want, items2[i])
			}
		}
		// Second round must be the exact identity.
		j2 := &journal{path: filepath.Join(dir, "compact2.jsonl")}
		if err := j2.rewrite(items2); err != nil {
			t.Fatalf("second rewrite: %v", err)
		}
		if err := j2.close(); err != nil {
			t.Fatalf("second close: %v", err)
		}
		items3, err := replay(j2.path)
		if err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if !reflect.DeepEqual(items2, items3) {
			t.Fatalf("rewrite∘replay not a fixed point:\n %+v\n %+v", items2, items3)
		}
	})
}

func compactJSON(t *testing.T, b json.RawMessage) json.RawMessage {
	t.Helper()
	if b == nil {
		// An absent body field re-encodes as an explicit null, which the
		// next replay recovers as the literal "null".
		return json.RawMessage("null")
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("recovered body is not valid JSON: %v", err)
	}
	return buf.Bytes()
}
