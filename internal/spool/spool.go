// Package spool is the durability layer of the upload pipeline. The
// paper's firmware persisted measurement buffers to flash so uploads
// survived connectivity loss (§3.2.2); this package is the reproduction's
// equivalent: a bounded per-endpoint queue that the collector client
// enqueues into, drained by a background goroutine that batches queued
// payloads into single POSTs and retries under exponential backoff with
// jitter. Rows leave the spool only after the server acknowledges them,
// so transient 5xx responses, timeouts, and collector restarts cost
// retries, not data.
//
// Delivery is at-least-once: every item carries an idempotency key
// (router ID + per-run nonce + sequence number) and the collector dedupes
// replays, so the pipeline as a whole is effectively exactly-once. When a
// queue overflows, the oldest items are dropped and counted in
// natpeek_spool_dropped_total — overload degrades to bounded, observable
// loss instead of unbounded memory growth.
//
// With Config.Dir set the queue is also journaled to disk, so items
// survive a process restart (see journal.go).
package spool

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	mrand "math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"natpeek/internal/telemetry"
	"natpeek/internal/trace"
)

// Item is one queued payload awaiting delivery.
type Item struct {
	// Endpoint is the logical upload endpoint (e.g. "/v1/uptime").
	Endpoint string `json:"endpoint"`
	// Key is the item's idempotency key; the server applies each key at
	// most once, which makes redelivery safe.
	Key string `json:"key"`
	// Body is the endpoint's JSON payload.
	Body json.RawMessage `json:"body"`
	// Seq orders items within their endpoint queue (monotonic per run).
	Seq uint64 `json:"seq"`
	// EnqueuedAt timestamps admission into the spool; the drainer turns
	// it into the trace's queue-wait span. Zero for pre-tracing journals.
	EnqueuedAt time.Time `json:"enqueued_at,omitzero"`
	// Spans carries trace history accumulated before the item reached the
	// spool (e.g. the gateway's export-window span). Shipped to the
	// collector with the item so the server can assemble the full trace.
	Spans []trace.Span `json:"spans,omitempty"`
}

// Sender delivers one batch of items. A nil error acknowledges the whole
// batch; any error leaves every item queued for retry. The context
// carries the per-request timeout.
//
// The Result distinguishes "applied" from "dropped as malformed": items
// the server acknowledged but could not decode are listed in
// Result.Malformed. They will not be retried (the payload is
// machine-generated, so a decode failure is a bug, not a transient), but
// the spool dead-letters them to Dir/deadletter.jsonl and counts them
// separately from successful sends instead of silently folding them into
// the acknowledged total.
type Sender func(ctx context.Context, items []Item) (Result, error)

// Result is the per-item outcome of one delivered (2xx-acknowledged)
// batch. The zero value means every item was applied or deduplicated.
type Result struct {
	// Malformed lists the items the server rejected as undecodable,
	// keyed by idempotency key.
	Malformed []ItemError
}

// ItemError names one item the server refused, and why.
type ItemError struct {
	Key    string
	Reason string
}

// Config tunes a Spooler. The zero value gets sensible defaults.
type Config struct {
	// KeyPrefix namespaces idempotency keys (normally the router ID).
	KeyPrefix string
	// Capacity bounds each endpoint queue (default 4096 items). On
	// overflow the oldest item is dropped and counted.
	Capacity int
	// MaxBatch bounds how many items one Sender call may carry
	// (default 64).
	MaxBatch int
	// RetryMin/RetryMax bound the exponential backoff between failed
	// delivery attempts (defaults 100ms and 10s). Each wait is jittered
	// uniformly in [wait/2, wait].
	RetryMin time.Duration
	RetryMax time.Duration
	// Timeout bounds each Sender call (default 10s).
	Timeout time.Duration
	// Dir, when non-empty, journals the queue to Dir/spool.jsonl so
	// undelivered items survive a process restart.
	Dir string
}

func (c *Config) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 10 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
}

// queue is one endpoint's FIFO. Items are strictly seq-ordered; the
// drainer acknowledges deliveries by seq so enqueue/overflow during an
// in-flight batch cannot confuse removal.
type queue struct {
	items []Item
	seq   uint64
}

// Spooler owns the per-endpoint queues and the background drainer.
type Spooler struct {
	cfg  Config
	send Sender

	mu       sync.Mutex
	queues   map[string]*queue
	order    []string // endpoint registration order, for fair draining
	depth    int
	nonce    string
	journal  *journal
	closed   bool
	inflight bool

	wake chan struct{}
	done chan struct{}
	dead chan struct{} // closed when the drainer exits

	mEnqueued  *telemetry.CounterVec
	mSent      *telemetry.CounterVec
	mDropped   *telemetry.CounterVec
	mMalformed *telemetry.CounterVec
	mRetries   *telemetry.Counter
	mBatches   *telemetry.Counter
	gDepth     *telemetry.Gauge
	gDepthVec  *telemetry.GaugeVec
	gOldestAge *telemetry.GaugeVec
	gJournal   *telemetry.Gauge
}

// New starts a spooler whose drainer delivers batches through send. If
// cfg.Dir is set, previously journaled items are recovered into the
// queues before the drainer starts.
func New(cfg Config, send Sender) (*Spooler, error) {
	cfg.fill()
	var nb [4]byte
	_, _ = rand.Read(nb[:])
	reg := telemetry.Default
	s := &Spooler{
		cfg:    cfg,
		send:   send,
		queues: make(map[string]*queue),
		nonce:  hex.EncodeToString(nb[:]),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		dead:   make(chan struct{}),
		mEnqueued: reg.CounterVec("natpeek_spool_enqueued_total",
			"Payloads accepted into upload spools, per endpoint.", "endpoint"),
		mSent: reg.CounterVec("natpeek_spool_sent_total",
			"Payloads acknowledged by the collector, per endpoint.", "endpoint"),
		mDropped: reg.CounterVec("natpeek_spool_dropped_total",
			"Payloads dropped on queue overflow (oldest first), per endpoint.", "endpoint"),
		mMalformed: reg.CounterVec("natpeek_spool_malformed_total",
			"Payloads the server acknowledged but rejected as undecodable (dead-lettered, not retried), per endpoint.", "endpoint"),
		mRetries: reg.Counter("natpeek_spool_retries_total",
			"Failed delivery attempts that left the batch queued for retry."),
		mBatches: reg.Counter("natpeek_spool_batches_total",
			"Successfully delivered batches."),
		gDepth: reg.Gauge("natpeek_spool_depth",
			"Payloads currently queued across all spools in this process."),
		gDepthVec: reg.GaugeVec("natpeek_spool_queue_depth",
			"Payloads currently queued, per endpoint.", "endpoint"),
		gOldestAge: reg.GaugeVec("natpeek_spool_oldest_age_seconds",
			"Age of the oldest queued payload, per endpoint (0 when the queue is empty).", "endpoint"),
		gJournal: reg.Gauge("natpeek_spool_journal_bytes",
			"Size of the on-disk spool journal, in bytes (0 without a journal)."),
	}
	if cfg.Dir != "" {
		j, items, err := openJournal(cfg.Dir)
		if err != nil {
			return nil, fmt.Errorf("spool: journal: %w", err)
		}
		s.journal = j
		for _, it := range items {
			s.recover(it)
		}
	}
	s.mu.Lock()
	s.updateHealthLocked(time.Now())
	s.mu.Unlock()
	go s.drain()
	go s.healthLoop()
	return s, nil
}

// healthLoop refreshes the health gauges once a second so oldest-entry
// ages stay current even while the queues are quiet.
func (s *Spooler) healthLoop() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.updateHealthLocked(time.Now())
			s.mu.Unlock()
		case <-s.done:
			return
		}
	}
}

// updateHealthLocked refreshes the per-endpoint depth and oldest-age
// gauges plus the journal size. Callers hold s.mu.
func (s *Spooler) updateHealthLocked(now time.Time) {
	for _, ep := range s.order {
		q := s.queues[ep]
		s.gDepthVec.With(ep).Set(float64(len(q.items)))
		age := 0.0
		if len(q.items) > 0 && !q.items[0].EnqueuedAt.IsZero() {
			age = now.Sub(q.items[0].EnqueuedAt).Seconds()
		}
		s.gOldestAge.With(ep).Set(age)
	}
	if s.journal != nil {
		s.gJournal.Set(float64(s.journal.size()))
	}
}

// EndpointHealth is a point-in-time sample of one endpoint queue, for
// ops surfaces that want live values rather than a metrics scrape.
type EndpointHealth struct {
	Endpoint  string
	Depth     int
	OldestAge time.Duration
}

// Health samples every endpoint queue.
func (s *Spooler) Health() []EndpointHealth {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EndpointHealth, 0, len(s.order))
	for _, ep := range s.order {
		q := s.queues[ep]
		h := EndpointHealth{Endpoint: ep, Depth: len(q.items)}
		if len(q.items) > 0 && !q.items[0].EnqueuedAt.IsZero() {
			h.OldestAge = now.Sub(q.items[0].EnqueuedAt)
		}
		out = append(out, h)
	}
	return out
}

// recover re-queues one journaled item, keeping its original key (so a
// delivery that was acked but not yet compacted stays deduplicable) and
// advancing the endpoint's seq counter past it.
func (s *Spooler) recover(it Item) {
	q := s.queue(it.Endpoint)
	if it.Seq > q.seq {
		q.seq = it.Seq
	}
	it.Seq = q.seq // keep queue strictly ordered even across runs
	q.seq++
	q.items = append(q.items, it)
	s.depth++
	s.gDepth.Add(1)
}

func (s *Spooler) queue(endpoint string) *queue {
	q := s.queues[endpoint]
	if q == nil {
		q = &queue{}
		s.queues[endpoint] = q
		s.order = append(s.order, endpoint)
	}
	return q
}

// Enqueue accepts one payload for eventual delivery. It never blocks: a
// full queue drops its oldest item (counted) to make room.
func (s *Spooler) Enqueue(endpoint string, body []byte) {
	s.EnqueueSpans(endpoint, body, nil)
}

// EnqueueSpans is Enqueue with trace history: spans accumulated before
// the payload reached the spool (the gateway's export-window span) ride
// along to the collector, which folds them into the end-to-end trace.
func (s *Spooler) EnqueueSpans(endpoint string, body []byte, spans []trace.Span) {
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	q := s.queue(endpoint)
	it := Item{
		Endpoint:   endpoint,
		Seq:        q.seq,
		Key:        fmt.Sprintf("%s:%s:%s:%d", s.cfg.KeyPrefix, s.nonce, endpoint, q.seq),
		Body:       append(json.RawMessage(nil), body...),
		EnqueuedAt: now,
		Spans:      spans,
	}
	q.seq++
	if len(q.items) >= s.cfg.Capacity {
		dropped := q.items[0]
		q.items = q.items[1:]
		s.depth--
		s.gDepth.Add(-1)
		s.mDropped.With(endpoint).Inc()
		if s.journal != nil {
			s.journal.ack(dropped.Key)
		}
	}
	q.items = append(q.items, it)
	s.depth++
	s.gDepth.Add(1)
	s.mEnqueued.With(endpoint).Inc()
	if s.journal != nil {
		s.journal.put(it)
	}
	s.updateHealthLocked(now)
	s.mu.Unlock()
	s.kick()
}

func (s *Spooler) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Depth returns the number of queued, unacknowledged items.
func (s *Spooler) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// take snapshots up to MaxBatch items from the queue fronts without
// removing them; items are only removed once the batch is acknowledged.
func (s *Spooler) take() []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Item
	for _, ep := range s.order {
		q := s.queues[ep]
		for _, it := range q.items {
			if len(out) >= s.cfg.MaxBatch {
				return out
			}
			out = append(out, it)
		}
	}
	return out
}

// ack removes delivered items. Removal is by sequence number, so items
// that overflowed out of the queue mid-flight are simply not there to
// remove and freshly enqueued items (higher seq) are untouched. Items
// the server reported malformed are removed too — redelivering a payload
// the server cannot decode would retry forever — but they are counted
// apart from successful sends and dead-lettered for post-mortem.
func (s *Spooler) ack(items []Item, res Result) {
	var malformed map[string]string
	if len(res.Malformed) > 0 {
		malformed = make(map[string]string, len(res.Malformed))
		for _, e := range res.Malformed {
			malformed[e.Key] = e.Reason
		}
	}
	maxSeq := make(map[string]uint64, len(items))
	for _, it := range items {
		if cur, ok := maxSeq[it.Endpoint]; !ok || it.Seq > cur {
			maxSeq[it.Endpoint] = it.Seq
		}
		if reason, bad := malformed[it.Key]; bad {
			s.mMalformed.With(it.Endpoint).Inc()
			s.deadLetter(it, reason)
			continue
		}
		s.mSent.With(it.Endpoint).Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for ep, seq := range maxSeq {
		q := s.queues[ep]
		n := 0
		for n < len(q.items) && q.items[n].Seq <= seq {
			if s.journal != nil {
				s.journal.ack(q.items[n].Key)
			}
			n++
		}
		q.items = q.items[n:]
		s.depth -= n
		s.gDepth.Add(float64(-n))
	}
	s.updateHealthLocked(time.Now())
}

// deadLetterFile collects malformed payloads inside Config.Dir.
const deadLetterFile = "deadletter.jsonl"

// deadLetter journals one malformed item for post-mortem. The row is
// always logged; with Config.Dir set it is also appended (with its full
// body) to Dir/deadletter.jsonl. Only the drainer calls this, so the
// append needs no locking; a write error degrades to log-only.
func (s *Spooler) deadLetter(it Item, reason string) {
	slog.Warn("spool: server rejected payload as malformed, dead-lettering",
		"endpoint", it.Endpoint, "key", it.Key, "reason", reason)
	if s.cfg.Dir == "" {
		return
	}
	line, err := json.Marshal(struct {
		At     time.Time `json:"at"`
		Reason string    `json:"reason"`
		Item   Item      `json:"item"`
	}{time.Now(), reason, it})
	if err != nil {
		return
	}
	f, err := os.OpenFile(filepath.Join(s.cfg.Dir, deadLetterFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		slog.Warn("spool: dead-letter append failed", "err", err)
		return
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		slog.Warn("spool: dead-letter append failed", "err", werr)
	}
}

// drain is the background delivery loop.
func (s *Spooler) drain() {
	defer close(s.dead)
	backoff := s.cfg.RetryMin
	for {
		items := s.take()
		if len(items) == 0 {
			select {
			case <-s.wake:
				continue
			case <-s.done:
				// Final sweep: anything enqueued between take and Close.
				if items = s.take(); len(items) == 0 {
					return
				}
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
		res, err := s.send(ctx, items)
		cancel()
		if err == nil {
			s.ack(items, res)
			s.mBatches.Inc()
			backoff = s.cfg.RetryMin
			continue
		}
		s.mRetries.Inc()
		select {
		case <-time.After(jitter(backoff)):
		case <-s.done:
			return
		}
		if backoff *= 2; backoff > s.cfg.RetryMax {
			backoff = s.cfg.RetryMax
		}
	}
}

// jitter spreads a backoff wait uniformly over [d/2, d] so a fleet of
// gateways does not retry in lockstep after a collector outage.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(mrand.Int63n(int64(half)))
}

// Flush blocks until every queued item has been delivered or ctx is
// done, returning ctx's error in the latter case.
func (s *Spooler) Flush(ctx context.Context) error {
	for {
		if s.Depth() == 0 {
			return nil
		}
		s.kick()
		select {
		case <-ctx.Done():
			return fmt.Errorf("spool: flush: %d items still queued: %w", s.Depth(), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops the drainer (after at most one in-flight attempt) and
// closes the journal. Undelivered items stay journaled for the next run;
// without a journal they are lost (use Flush first to avoid that).
func (s *Spooler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.dead
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	<-s.dead
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		return s.journal.close()
	}
	return nil
}
