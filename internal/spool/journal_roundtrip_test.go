package spool

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// step is one operation against a live journal.
type step struct {
	op  string // "put", "ack", "compact"
	key string
}

func mkItem(key string, seq uint64) Item {
	return Item{
		Endpoint: "/v1/uptime",
		Key:      key,
		Body:     json.RawMessage(`{"RouterID":"` + key + `"}`),
		Seq:      seq,
	}
}

// TestJournalRoundTrip drives put/ack/rewrite sequences through a live
// journal and asserts replay-on-reopen recovers exactly the unacked
// items, in enqueue order.
func TestJournalRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		steps []step
		want  []string // keys expected from recovery, in order
	}{
		{
			name:  "puts only",
			steps: []step{{op: "put", key: "a"}, {op: "put", key: "b"}, {op: "put", key: "c"}},
			want:  []string{"a", "b", "c"},
		},
		{
			name: "ack middle",
			steps: []step{
				{op: "put", key: "a"}, {op: "put", key: "b"}, {op: "put", key: "c"},
				{op: "ack", key: "b"},
			},
			want: []string{"a", "c"},
		},
		{
			name: "ack all",
			steps: []step{
				{op: "put", key: "a"}, {op: "ack", key: "a"},
				{op: "put", key: "b"}, {op: "ack", key: "b"},
			},
			want: nil,
		},
		{
			name: "explicit compaction keeps live set",
			steps: []step{
				{op: "put", key: "a"}, {op: "put", key: "b"},
				{op: "ack", key: "a"},
				{op: "compact"},
				{op: "put", key: "c"},
			},
			want: []string{"b", "c"},
		},
		{
			name:  "ack unknown key is inert",
			steps: []step{{op: "put", key: "a"}, {op: "ack", key: "zzz"}},
			want:  []string{"a"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, recovered, err := openJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(recovered) != 0 {
				t.Fatalf("fresh journal recovered %d items", len(recovered))
			}
			seq := uint64(0)
			for _, s := range tc.steps {
				switch s.op {
				case "put":
					seq++
					j.put(mkItem(s.key, seq))
				case "ack":
					j.ack(s.key)
				case "compact":
					items, err := replay(j.path)
					if err != nil {
						t.Fatal(err)
					}
					if err := j.rewrite(items); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := j.close(); err != nil {
				t.Fatal(err)
			}
			_, got, err := openJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			assertKeys(t, got, tc.want)
		})
	}
}

// TestJournalCompactionCrashWindows walks the crash states of the
// atomic rewrite (tmp write → fsync → rename): whichever instant the
// power dies, reopening must recover a consistent pending set — the
// pre-compaction one before the rename, the compacted one after.
func TestJournalCompactionCrashWindows(t *testing.T) {
	// The live state being compacted: a acked, b and c pending.
	journalLines := `{"op":"put","item":{"endpoint":"/v1/uptime","key":"a","body":{"RouterID":"a"},"seq":1}}
{"op":"ack","key":"a"}
{"op":"put","item":{"endpoint":"/v1/uptime","key":"b","body":{"RouterID":"b"},"seq":2}}
{"op":"put","item":{"endpoint":"/v1/uptime","key":"c","body":{"RouterID":"c"},"seq":3}}
`
	compactedLines := `{"op":"put","item":{"endpoint":"/v1/uptime","key":"b","body":{"RouterID":"b"},"seq":2}}
{"op":"put","item":{"endpoint":"/v1/uptime","key":"c","body":{"RouterID":"c"},"seq":3}}
`
	cases := []struct {
		name    string
		journal string
		tmp     string // contents of spool.jsonl.tmp; "" = absent
		want    []string
	}{
		{
			name:    "crash before tmp written",
			journal: journalLines,
			tmp:     "",
			want:    []string{"b", "c"},
		},
		{
			name:    "crash mid tmp write (torn tmp, journal intact)",
			journal: journalLines,
			tmp:     compactedLines[:37], // torn mid-record
			want:    []string{"b", "c"},
		},
		{
			name:    "crash after tmp complete but before rename",
			journal: journalLines,
			tmp:     compactedLines,
			want:    []string{"b", "c"},
		},
		{
			name:    "crash after rename (compaction committed)",
			journal: compactedLines,
			tmp:     "",
			want:    []string{"b", "c"},
		},
		{
			name:    "crash mid-append after committed compaction",
			journal: compactedLines + `{"op":"put","item":{"endpoint":"/v1/upti`,
			tmp:     "",
			want:    []string{"b", "c"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, journalFile)
			if err := os.WriteFile(path, []byte(tc.journal), 0o644); err != nil {
				t.Fatal(err)
			}
			if tc.tmp != "" {
				if err := os.WriteFile(path+".tmp", []byte(tc.tmp), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			j, got, err := openJournal(dir)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			assertKeys(t, got, tc.want)
			// The journal must be fully usable after recovery: appends
			// land, and the next reopen sees them.
			j.put(mkItem("d", 4))
			if err := j.close(); err != nil {
				t.Fatal(err)
			}
			_, got2, err := openJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			assertKeys(t, got2, append(append([]string{}, tc.want...), "d"))
		})
	}
}

func assertKeys(t *testing.T, items []Item, want []string) {
	t.Helper()
	var got []string
	for _, it := range items {
		got = append(got, it.Key)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered keys %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered keys %v, want %v", got, want)
		}
	}
}
