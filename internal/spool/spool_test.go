package spool

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"natpeek/internal/telemetry"
	"natpeek/internal/trace"
)

// fastRetry keeps test backoffs tiny so retry loops converge quickly.
func fastRetry(cfg Config) Config {
	cfg.RetryMin = time.Millisecond
	cfg.RetryMax = 10 * time.Millisecond
	cfg.Timeout = time.Second
	return cfg
}

// recorder is a Sender that records the batches it acknowledged. fail
// controls whether the next call errors; both are mutex-guarded so the
// test goroutine can flip fail while the drainer delivers.
type recorder struct {
	mu      sync.Mutex
	fail    bool
	calls   int
	batches [][]Item
}

func (r *recorder) send(_ context.Context, items []Item) (Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	if r.fail {
		return Result{}, errors.New("injected send failure")
	}
	batch := make([]Item, len(items))
	copy(batch, items)
	r.batches = append(r.batches, batch)
	return Result{}, nil
}

func (r *recorder) setFail(v bool) {
	r.mu.Lock()
	r.fail = v
	r.mu.Unlock()
}

// delivered returns the bodies of every acknowledged item, in order.
func (r *recorder) delivered() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, b := range r.batches {
		for _, it := range b {
			out = append(out, string(it.Body))
		}
	}
	return out
}

func (r *recorder) keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, b := range r.batches {
		for _, it := range b {
			out = append(out, it.Key)
		}
	}
	return out
}

func mustFlush(t *testing.T, s *Spooler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

func body(i int) []byte { return []byte(fmt.Sprintf("%q", fmt.Sprintf("item-%d", i))) }

func TestBatchingAndOrder(t *testing.T) {
	rec := &recorder{}
	s, err := New(fastRetry(Config{KeyPrefix: "r1", MaxBatch: 4}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 10
	for i := 0; i < n; i++ {
		s.Enqueue("/t/batching", body(i))
	}
	mustFlush(t, s)

	got := rec.delivered()
	if len(got) != n {
		t.Fatalf("delivered %d items, want %d: %v", len(got), n, got)
	}
	for i, b := range got {
		if b != string(body(i)) {
			t.Fatalf("delivery out of order at %d: %q", i, b)
		}
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, batch := range rec.batches {
		if len(batch) > 4 {
			t.Fatalf("batch of %d exceeds MaxBatch 4", len(batch))
		}
	}
}

func TestKeysAreUniqueAndPrefixed(t *testing.T) {
	rec := &recorder{}
	s, err := New(fastRetry(Config{KeyPrefix: "router-9"}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Enqueue("/t/keys", body(0))
	s.Enqueue("/t/keys", body(1))
	s.Enqueue("/t/other", body(2))
	mustFlush(t, s)

	seen := make(map[string]bool)
	for _, k := range rec.keys() {
		if !strings.HasPrefix(k, "router-9:") {
			t.Fatalf("key %q missing router prefix", k)
		}
		if seen[k] {
			t.Fatalf("duplicate idempotency key %q", k)
		}
		seen[k] = true
	}
	if len(seen) != 3 {
		t.Fatalf("keys = %d, want 3", len(seen))
	}
}

// TestRetryUntilDelivered proves a failing collector costs retries, not
// rows: every item is eventually acknowledged exactly once.
func TestRetryUntilDelivered(t *testing.T) {
	retriesBefore := retriesCounter().Value()
	rec := &recorder{fail: true}
	s, err := New(fastRetry(Config{KeyPrefix: "r1"}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Enqueue("/t/retry", body(i))
	}
	// Let a few delivery attempts fail before the "outage" ends.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec.mu.Lock()
		calls := rec.calls
		rec.mu.Unlock()
		if calls >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drainer never attempted delivery")
		}
		time.Sleep(time.Millisecond)
	}
	rec.setFail(false)
	mustFlush(t, s)

	got := rec.delivered()
	if len(got) != 5 {
		t.Fatalf("delivered %d items, want exactly 5 (no loss, no duplication): %v", len(got), got)
	}
	if d := retriesCounter().Value() - retriesBefore; d < 3 {
		t.Fatalf("natpeek_spool_retries_total advanced by %d, want >= 3", d)
	}
}

func retriesCounter() *telemetry.Counter {
	return telemetry.Default.Counter("natpeek_spool_retries_total",
		"Failed delivery attempts that left the batch queued for retry.")
}

// TestOverflowDropsOldest fills a tiny queue past capacity while the
// sender is down: the newest items must survive, the overflow must be
// counted, and nothing may block.
func TestOverflowDropsOldest(t *testing.T) {
	const endpoint = "/t/overflow"
	droppedBefore := telemetry.Default.CounterVec("natpeek_spool_dropped_total",
		"Payloads dropped on queue overflow (oldest first), per endpoint.", "endpoint").
		With(endpoint).Value()
	rec := &recorder{fail: true}
	s, err := New(fastRetry(Config{KeyPrefix: "r1", Capacity: 3}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		s.Enqueue(endpoint, body(i))
	}
	if d := s.Depth(); d != 3 {
		t.Fatalf("depth = %d, want capacity 3", d)
	}
	dropped := telemetry.Default.CounterVec("natpeek_spool_dropped_total",
		"Payloads dropped on queue overflow (oldest first), per endpoint.", "endpoint").
		With(endpoint).Value() - droppedBefore
	if dropped != 3 {
		t.Fatalf("dropped counter advanced by %d, want 3", dropped)
	}

	rec.setFail(false)
	mustFlush(t, s)
	got := rec.delivered()
	// An attempt snapshotted before the overflow may deliver early items,
	// but the tail of the queue — the newest three — must all arrive.
	want := map[string]bool{string(body(3)): true, string(body(4)): true, string(body(5)): true}
	for _, b := range got {
		delete(want, b)
	}
	if len(want) != 0 {
		t.Fatalf("newest items lost after overflow: missing %v, delivered %v", want, got)
	}
}

func TestFlushTimesOutWhileSenderDown(t *testing.T) {
	rec := &recorder{fail: true}
	s, err := New(fastRetry(Config{KeyPrefix: "r1"}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Enqueue("/t/stuck", body(0))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Flush(ctx); err == nil {
		t.Fatal("flush succeeded with the sender down")
	}
	if s.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 (item retained)", s.Depth())
	}
}

func TestEnqueueAfterCloseDroppedAndCloseIdempotent(t *testing.T) {
	rec := &recorder{}
	s, err := New(fastRetry(Config{KeyPrefix: "r1"}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Enqueue("/t/closed", body(0))
	if s.Depth() != 0 {
		t.Fatal("enqueue accepted after close")
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close errored:", err)
	}
}

// TestJournalRecovery closes a spooler mid-outage and reopens its
// journal directory: the undelivered items must come back with their
// original idempotency keys (so an acked-but-uncompacted delivery still
// dedupes server-side) and then drain normally.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	down := &recorder{fail: true}
	s1, err := New(fastRetry(Config{KeyPrefix: "r1", Dir: dir}), down.send)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s1.Enqueue("/t/journal", body(i))
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	up := &recorder{}
	s2, err := New(fastRetry(Config{KeyPrefix: "r1", Dir: dir}), up.send)
	if err != nil {
		t.Fatal(err)
	}
	if d := s2.Depth(); d != 4 {
		t.Fatalf("recovered depth = %d, want 4", d)
	}
	mustFlush(t, s2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	got := up.delivered()
	if len(got) != 4 {
		t.Fatalf("delivered %d recovered items, want 4: %v", len(got), got)
	}
	for i, b := range got {
		if b != string(body(i)) {
			t.Fatalf("recovered order broken at %d: %q", i, b)
		}
	}
	// Keys survive the restart verbatim: they embed s1's run nonce, and
	// rewriting them would defeat dedupe of deliveries acked in run 1.
	for _, k := range up.keys() {
		if !strings.Contains(k, s1.nonce) {
			t.Fatalf("recovered key %q lost its original nonce %q", k, s1.nonce)
		}
	}
	// After a clean drain the journal holds no pending items.
	left, err := replay(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("journal still holds %d items after drain", len(left))
	}
}

// TestJournalToleratesTornTail simulates a crash mid-append: the torn
// final line is dropped, everything before it is recovered.
func TestJournalToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	for i := 0; i < 3; i++ {
		it := Item{Endpoint: "/t/torn", Key: fmt.Sprintf("k%d", i), Body: body(i), Seq: uint64(i)}
		if err := enc.Encode(record{Op: "put", Item: &it}); err != nil {
			t.Fatal(err)
		}
	}
	enc.Encode(record{Op: "ack", Key: "k0"})
	buf.WriteString(`{"op":"put","item":{"endpo`) // torn mid-write
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	items, err := replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("replayed %d items, want 2 (k0 acked, torn line dropped): %+v", len(items), items)
	}
	if items[0].Key != "k1" || items[1].Key != "k2" {
		t.Fatalf("wrong survivors: %+v", items)
	}
}

// TestConcurrentEnqueueDrain is the -race exercise: many producers
// enqueue while the drainer delivers through a sender that fails
// intermittently. Every item must be acknowledged exactly once.
// TestMalformedDeadLettered pins the applied-vs-malformed distinction:
// an item the server acknowledges but reports undecodable leaves the
// queue (it must not retry forever), is counted under the malformed
// metric rather than sent, and lands in Dir/deadletter.jsonl with its
// body and the server's reason.
func TestMalformedDeadLettered(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	send := func(_ context.Context, items []Item) (Result, error) {
		calls.Add(1)
		var res Result
		for _, it := range items {
			if strings.Contains(string(it.Body), "bad") {
				res.Malformed = append(res.Malformed, ItemError{Key: it.Key, Reason: "decode error: not a row"})
			}
		}
		return res, nil
	}
	s, err := New(fastRetry(Config{KeyPrefix: "r1", Dir: dir}), send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sentBefore := telemetry.Default.CounterVec("natpeek_spool_sent_total", "", "endpoint").With("/t/dl").Value()
	malBefore := telemetry.Default.CounterVec("natpeek_spool_malformed_total", "", "endpoint").With("/t/dl").Value()

	s.Enqueue("/t/dl", []byte(`"good-1"`))
	s.Enqueue("/t/dl", []byte(`"bad-2"`))
	s.Enqueue("/t/dl", []byte(`"good-3"`))
	mustFlush(t, s)

	if got := calls.Load(); got != 1 {
		t.Fatalf("sender called %d times; malformed items must not be retried", got)
	}
	if d := s.Depth(); d != 0 {
		t.Fatalf("depth %d after flush, want 0", d)
	}
	sent := telemetry.Default.CounterVec("natpeek_spool_sent_total", "", "endpoint").With("/t/dl").Value() - sentBefore
	mal := telemetry.Default.CounterVec("natpeek_spool_malformed_total", "", "endpoint").With("/t/dl").Value() - malBefore
	if sent != 2 || mal != 1 {
		t.Fatalf("sent=%d malformed=%d, want 2 and 1", sent, mal)
	}

	raw, err := os.ReadFile(filepath.Join(dir, deadLetterFile))
	if err != nil {
		t.Fatalf("dead-letter file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 {
		t.Fatalf("dead-letter lines = %d, want 1:\n%s", len(lines), raw)
	}
	var entry struct {
		Reason string `json:"reason"`
		Item   Item   `json:"item"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Reason != "decode error: not a row" || string(entry.Item.Body) != `"bad-2"` {
		t.Fatalf("dead-letter entry wrong: %+v", entry)
	}
}

func TestConcurrentEnqueueDrain(t *testing.T) {
	var calls atomic.Int64
	var mu sync.Mutex
	delivered := make(map[string]int)
	send := func(_ context.Context, items []Item) (Result, error) {
		if calls.Add(1)%7 == 0 {
			return Result{}, errors.New("intermittent failure")
		}
		mu.Lock()
		for _, it := range items {
			var b string
			json.Unmarshal(it.Body, &b)
			delivered[b]++
		}
		mu.Unlock()
		return Result{}, nil
	}
	s, err := New(fastRetry(Config{KeyPrefix: "r1", Capacity: 10000, MaxBatch: 16}), send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const producers, perProducer = 8, 25
	endpoints := []string{"/t/a", "/t/b", "/t/c", "/t/d"}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b, _ := json.Marshal(fmt.Sprintf("p%d-i%d", p, i))
				s.Enqueue(endpoints[(p+i)%len(endpoints)], b)
			}
		}(p)
	}
	wg.Wait()
	mustFlush(t, s)

	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != producers*perProducer {
		t.Fatalf("delivered %d distinct items, want %d", len(delivered), producers*perProducer)
	}
	for b, n := range delivered {
		if n != 1 {
			t.Fatalf("item %q acknowledged %d times", b, n)
		}
	}
}

// stubTransport returns 204 for every request and counts them.
type stubTransport struct{ hits atomic.Int64 }

func (s *stubTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	s.hits.Add(1)
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusNoContent,
		Body:       io.NopCloser(strings.NewReader("")),
		Header:     make(http.Header),
		Request:    req,
	}, nil
}

func TestFaultTransportInjectsAndPassesThrough(t *testing.T) {
	base := &stubTransport{}
	ft := NewFaultTransport(base, 1.0, 1)
	req, _ := http.NewRequest(http.MethodPost, "http://collector.test/v1/batch", strings.NewReader("x"))
	_, err := ft.RoundTrip(req)
	var inj *ErrInjected
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want *ErrInjected", err)
	}
	if inj.URL != "http://collector.test/v1/batch" {
		t.Fatalf("injected URL = %q", inj.URL)
	}
	if base.hits.Load() != 0 {
		t.Fatal("failed request reached the base transport")
	}

	ft.SetFailRate(0)
	req2, _ := http.NewRequest(http.MethodGet, "http://collector.test/healthz", nil)
	resp, err := ft.RoundTrip(req2)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("pass-through failed: %v %v", resp, err)
	}
	if base.hits.Load() != 1 {
		t.Fatalf("base hits = %d, want 1", base.hits.Load())
	}

	ft.SetBlackout(true)
	if _, err := ft.RoundTrip(req2); err == nil {
		t.Fatal("request survived a blackout")
	}
	ft.SetBlackout(false)
	if _, err := ft.RoundTrip(req2); err != nil {
		t.Fatalf("request failed after blackout lifted: %v", err)
	}
	if got := ft.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
}

// TestSpoolSurvivesBlackoutViaFaultTransport wires the two fault pieces
// together: a spooler whose sender goes through a FaultTransport in
// blackout keeps everything queued, then drains cleanly when the
// blackout lifts.
func TestSpoolSurvivesBlackoutViaFaultTransport(t *testing.T) {
	base := &stubTransport{}
	ft := NewFaultTransport(base, 0, 1)
	ft.SetBlackout(true)
	httpc := &http.Client{Transport: ft}
	var mu sync.Mutex
	var sent int
	send := func(ctx context.Context, items []Item) (Result, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			"http://collector.test/v1/batch", strings.NewReader("batch"))
		if err != nil {
			return Result{}, err
		}
		resp, err := httpc.Do(req)
		if err != nil {
			return Result{}, err
		}
		resp.Body.Close()
		mu.Lock()
		sent += len(items)
		mu.Unlock()
		return Result{}, nil
	}
	s, err := New(fastRetry(Config{KeyPrefix: "r1"}), send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		s.Enqueue("/t/blackout", body(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	err = s.Flush(ctx)
	cancel()
	if err == nil {
		t.Fatal("flush succeeded during blackout")
	}
	if ft.Injected() == 0 {
		t.Fatal("no faults injected during blackout")
	}
	ft.SetBlackout(false)
	mustFlush(t, s)
	mu.Lock()
	defer mu.Unlock()
	if sent != 6 {
		t.Fatalf("sent %d items after blackout, want 6", sent)
	}
}

func TestHealthGaugesAndSpans(t *testing.T) {
	rec := &recorder{}
	rec.setFail(true) // hold items in the queue so health is observable
	s, err := New(fastRetry(Config{KeyPrefix: "gw-h", Capacity: 16}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spans := []trace.Span{{Name: "gateway.export", Start: time.Now().Add(-time.Second), End: time.Now()}}
	s.EnqueueSpans("/v1/uptime", body(1), spans)
	s.Enqueue("/v1/uptime", body(2))
	s.Enqueue("/v1/wifi", body(3))

	h := s.Health()
	byEp := make(map[string]EndpointHealth)
	for _, e := range h {
		byEp[e.Endpoint] = e
	}
	if byEp["/v1/uptime"].Depth != 2 || byEp["/v1/wifi"].Depth != 1 {
		t.Fatalf("health depths wrong: %+v", h)
	}
	if byEp["/v1/uptime"].OldestAge <= 0 {
		t.Fatalf("oldest age not tracked: %+v", byEp["/v1/uptime"])
	}
	if g := telemetry.Default.GaugeVec("natpeek_spool_queue_depth", "", "endpoint"); g.With("/v1/uptime").Value() != 2 {
		t.Fatalf("depth gauge = %v, want 2", g.With("/v1/uptime").Value())
	}

	// Items carry their enqueue time and prior spans to the sender.
	items := s.take()
	var found *Item
	for i := range items {
		if string(items[i].Body) == string(body(1)) {
			found = &items[i]
		}
	}
	if found == nil || found.EnqueuedAt.IsZero() {
		t.Fatalf("EnqueuedAt not stamped: %+v", found)
	}
	if len(found.Spans) != 1 || found.Spans[0].Name != "gateway.export" {
		t.Fatalf("spans not carried: %+v", found.Spans)
	}

	rec.setFail(false)
	mustFlush(t, s)
	if g := telemetry.Default.GaugeVec("natpeek_spool_queue_depth", "", "endpoint"); g.With("/v1/uptime").Value() != 0 {
		t.Fatalf("depth gauge after flush = %v, want 0", g.With("/v1/uptime").Value())
	}
}

func TestJournalBytesGaugeAndSpanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := &recorder{}
	rec.setFail(true)
	s, err := New(fastRetry(Config{KeyPrefix: "gw-j", Dir: dir}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	spans := []trace.Span{{Name: "gateway.export", Start: time.Unix(100, 0).UTC(), End: time.Unix(101, 0).UTC()}}
	s.EnqueueSpans("/v1/uptime", body(1), spans)
	if g := telemetry.Default.Gauge("natpeek_spool_journal_bytes", ""); g.Value() <= 0 {
		t.Fatalf("journal bytes gauge = %v, want > 0", g.Value())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Spans and enqueue times survive a restart via the journal.
	s2, err := New(fastRetry(Config{KeyPrefix: "gw-j", Dir: dir}), rec.send)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	items := s2.take()
	if len(items) != 1 {
		t.Fatalf("recovered %d items, want 1", len(items))
	}
	if items[0].EnqueuedAt.IsZero() || len(items[0].Spans) != 1 || items[0].Spans[0].Name != "gateway.export" {
		t.Fatalf("trace context lost across restart: %+v", items[0])
	}
}
