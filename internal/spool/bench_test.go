package spool

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkSpoolDrain measures the client-side upload pipeline: enqueue
// b.N payloads into the spool and drain them through a no-op sender in
// batches. This is the gateway-side throughput ceiling — how fast a
// router can hand measurements to the network layer — tracked in
// BENCH_*.json as items/s.
func BenchmarkSpoolDrain(b *testing.B) {
	var sent atomic.Int64
	sp, err := New(Config{
		KeyPrefix: "bench-router",
		Capacity:  1 << 17,
		MaxBatch:  64,
	}, func(ctx context.Context, items []Item) (Result, error) {
		sent.Add(int64(len(items)))
		return Result{}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()

	body := []byte(`{"RouterID":"bench-router","ReportedAt":"2013-04-01T00:00:00Z","Uptime":3600000000000}`)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Enqueue("/v1/uptime", body)
		// Keep the queue bounded: drain whenever it approaches capacity so
		// arbitrarily large b.N never hits the drop path.
		if sp.Depth() >= 1<<16 {
			if err := sp.Flush(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := sp.Flush(ctx); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if got := sent.Load(); got != int64(b.N) {
		b.Fatalf("sender saw %d items, want %d", got, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "items/s")
}
