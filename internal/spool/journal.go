// Disk journal for the spool: an append-only JSONL file of put/ack
// records, compacted in place once enough acks accumulate. This is the
// reproduction's stand-in for the firmware's flash-backed measurement
// buffers — cheap sequential appends on the hot path, recovery by replay
// on startup.
package spool

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
)

// journalFile is the single journal inside Config.Dir.
const journalFile = "spool.jsonl"

// compactEvery triggers a rewrite after this many acks, bounding file
// growth to roughly the live queue plus one compaction window.
const compactEvery = 1024

// record is one journal line. Op "put" carries an Item; op "ack" marks
// the item with the same key delivered (or dropped on overflow).
type record struct {
	Op   string `json:"op"`
	Key  string `json:"key,omitempty"`
	Item *Item  `json:"item,omitempty"`
}

// journal is not safe for concurrent use; the Spooler serializes access
// under its mutex. Write errors disable the journal (the spool degrades
// to in-memory) rather than failing the measurement path.
type journal struct {
	path  string
	f     *os.File
	w     *bufio.Writer
	acks  int
	bytes int64 // current file size, for the journal-size gauge
	err   error
}

// size returns the journal's current on-disk size in bytes.
func (j *journal) size() int64 { return j.bytes }

// openJournal opens (creating if needed) dir's journal and returns the
// undelivered items found in it, in original enqueue order.
func openJournal(dir string) (*journal, []Item, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, journalFile)
	items, err := replay(path)
	if err != nil {
		return nil, nil, err
	}
	j := &journal{path: path}
	// Compact on open: the rewritten file is exactly the live items.
	if err := j.rewrite(items); err != nil {
		return nil, nil, err
	}
	return j, items, nil
}

// replay reads the journal and reduces put/ack pairs to the pending set.
// A torn final line (crash mid-append) is tolerated and dropped.
func replay(path string) ([]Item, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pending := make(map[string]int) // key → index into items; -1 = acked
	var items []Item
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			continue // torn tail or corruption: skip, keep what decodes
		}
		switch r.Op {
		case "put":
			if r.Item != nil {
				pending[r.Item.Key] = len(items)
				items = append(items, *r.Item)
			}
		case "ack":
			pending[r.Key] = -1
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, err
	}
	out := items[:0]
	for _, it := range items {
		if pending[it.Key] >= 0 {
			out = append(out, it)
		}
	}
	return out, nil
}

// rewrite atomically replaces the journal with just the given items.
func (j *journal) rewrite(items []Item) error {
	if j.f != nil {
		j.w.Flush()
		j.f.Close()
		j.f = nil
	}
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range items {
		if err := enc.Encode(record{Op: "put", Item: &items[i]}); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return err
	}
	f, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.acks = 0
	if fi, err := f.Stat(); err == nil {
		j.bytes = fi.Size()
	}
	return nil
}

func (j *journal) append(r record) {
	if j.err != nil || j.f == nil {
		return
	}
	b, err := json.Marshal(r)
	if err == nil {
		_, err = j.w.Write(append(b, '\n'))
	}
	if err == nil {
		err = j.w.Flush()
	}
	if err != nil {
		j.err = err // degrade to in-memory; Close surfaces the error
		return
	}
	j.bytes += int64(len(b)) + 1
}

func (j *journal) put(it Item) { j.append(record{Op: "put", Item: &it}) }

func (j *journal) ack(key string) {
	j.append(record{Op: "ack", Key: key})
	if j.acks++; j.acks >= compactEvery && j.err == nil {
		items, err := replay(j.path)
		if err == nil {
			err = j.rewrite(items)
		}
		if err != nil {
			j.err = err
		}
	}
}

func (j *journal) close() error {
	if j.f != nil {
		j.w.Flush()
		if err := j.f.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.f = nil
	}
	return j.err
}
