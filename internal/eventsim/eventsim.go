// Package eventsim layers recurring-task scheduling on top of the
// simulated clock. The gateway agent's duties are all periodic — heartbeats
// every minute, uptime and capacity every 12 hours, device census hourly,
// WiFi scans every 10 minutes — and the world simulator runs hundreds of
// such schedules concurrently. This package gives each a cancellable handle
// and optional jitter so the fleet does not fire in lockstep (the real
// deployment's routers were not phase-aligned either).
package eventsim

import (
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/rng"
	"natpeek/internal/telemetry"
)

// Scheduler runs recurring and one-shot tasks on a simulated clock.
type Scheduler struct {
	clk *clock.Sim
	rnd *rng.Stream

	// Simulator-progress telemetry: every fired task bumps the shared
	// event counter and stamps the simulated-time gauge, so a debug
	// listener shows how far and how fast a run has advanced
	// (rate(natpeek_sim_events_total) is the events/sec of the fleet).
	mEvents  *telemetry.Counter
	gSimTime *telemetry.Gauge
}

// New returns a Scheduler driving tasks on clk. The stream provides jitter;
// it may be nil when no task uses jitter.
func New(clk *clock.Sim, rnd *rng.Stream) *Scheduler {
	return &Scheduler{
		clk: clk,
		rnd: rnd,
		mEvents: telemetry.Default.Counter("natpeek_sim_events_total",
			"Scheduler task firings across all simulated schedules."),
		gSimTime: telemetry.Default.Gauge("natpeek_sim_time_seconds",
			"Simulated unix time of the most recent task firing."),
	}
}

// fired records one task firing for the progress telemetry.
func (s *Scheduler) fired(now time.Time) {
	s.mEvents.Inc()
	s.gSimTime.Set(float64(now.Unix()))
}

// Clock returns the underlying simulated clock.
func (s *Scheduler) Clock() *clock.Sim { return s.clk }

// Task is a handle to a scheduled task.
type Task struct {
	cancelled bool
}

// Cancel stops future firings. Cancelling an already-cancelled task is a
// no-op. Cancel must be called from the clock-driving goroutine (i.e. from
// inside a callback or between Advance calls).
func (t *Task) Cancel() { t.cancelled = true }

// Cancelled reports whether Cancel has been called.
func (t *Task) Cancelled() bool { return t.cancelled }

// At schedules fn once at the absolute instant at.
func (s *Scheduler) At(at time.Time, fn func(now time.Time)) *Task {
	t := &Task{}
	s.clk.At(at, func(now time.Time) {
		if !t.cancelled {
			s.fired(now)
			fn(now)
		}
	})
	return t
}

// After schedules fn once after d.
func (s *Scheduler) After(d time.Duration, fn func(now time.Time)) *Task {
	t := &Task{}
	s.clk.AfterFunc(d, func(now time.Time) {
		if !t.cancelled {
			s.fired(now)
			fn(now)
		}
	})
	return t
}

// Every schedules fn every interval, starting one interval from now, until
// cancelled. A positive jitter adds an independent uniform [0, jitter)
// delay to each firing; the base phase stays fixed so jitter never
// accumulates into drift.
func (s *Scheduler) Every(interval, jitter time.Duration, fn func(now time.Time)) *Task {
	if interval <= 0 {
		panic("eventsim: non-positive interval")
	}
	t := &Task{}
	next := s.clk.Now().Add(interval)
	s.scheduleRecur(t, next, interval, jitter, fn)
	return t
}

// EveryFrom is Every with an explicit first-firing instant.
func (s *Scheduler) EveryFrom(first time.Time, interval, jitter time.Duration, fn func(now time.Time)) *Task {
	if interval <= 0 {
		panic("eventsim: non-positive interval")
	}
	t := &Task{}
	s.scheduleRecur(t, first, interval, jitter, fn)
	return t
}

func (s *Scheduler) scheduleRecur(t *Task, at time.Time, interval, jitter time.Duration, fn func(now time.Time)) {
	fireAt := at
	if jitter > 0 && s.rnd != nil {
		fireAt = fireAt.Add(time.Duration(s.rnd.Int63() % int64(jitter)))
	}
	s.clk.At(fireAt, func(now time.Time) {
		if t.cancelled {
			return
		}
		s.fired(now)
		fn(now)
		if !t.cancelled {
			s.scheduleRecur(t, at.Add(interval), interval, jitter, fn)
		}
	})
}

// Window schedules fn every interval, but only for firings that fall within
// [from, to). The task self-cancels after to. This models measurement
// campaigns with bounded date ranges (each dataset in Table 2 covers a
// different window).
func (s *Scheduler) Window(from, to time.Time, interval time.Duration, fn func(now time.Time)) *Task {
	if interval <= 0 {
		panic("eventsim: non-positive interval")
	}
	t := &Task{}
	var recur func(at time.Time)
	recur = func(at time.Time) {
		if !at.Before(to) {
			t.cancelled = true
			return
		}
		s.clk.At(at, func(now time.Time) {
			if t.cancelled {
				return
			}
			s.fired(now)
			fn(now)
			if !t.cancelled {
				recur(at.Add(interval))
			}
		})
	}
	start := from
	if start.Before(s.clk.Now()) {
		start = s.clk.Now()
	}
	recur(start)
	return t
}
