package eventsim

import (
	"testing"
	"time"

	"natpeek/internal/clock"
	"natpeek/internal/rng"
)

var epoch = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)

func newSched() (*Scheduler, *clock.Sim) {
	clk := clock.NewSim(epoch)
	return New(clk, rng.New(1)), clk
}

func TestAfterFiresOnce(t *testing.T) {
	s, clk := newSched()
	n := 0
	s.After(time.Minute, func(time.Time) { n++ })
	clk.Advance(time.Hour)
	if n != 1 {
		t.Fatalf("fired %d times", n)
	}
}

func TestAtAbsolute(t *testing.T) {
	s, clk := newSched()
	var at time.Time
	s.At(epoch.Add(5*time.Minute), func(now time.Time) { at = now })
	clk.Advance(10 * time.Minute)
	if !at.Equal(epoch.Add(5 * time.Minute)) {
		t.Fatalf("fired at %v", at)
	}
}

func TestCancelBeforeFire(t *testing.T) {
	s, clk := newSched()
	n := 0
	task := s.After(time.Minute, func(time.Time) { n++ })
	task.Cancel()
	clk.Advance(time.Hour)
	if n != 0 {
		t.Fatal("cancelled task fired")
	}
	if !task.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestEveryFiresRepeatedly(t *testing.T) {
	s, clk := newSched()
	n := 0
	s.Every(time.Minute, 0, func(time.Time) { n++ })
	clk.Advance(10*time.Minute + time.Second)
	if n != 10 {
		t.Fatalf("fired %d times, want 10", n)
	}
}

func TestEveryPhaseIsStable(t *testing.T) {
	s, clk := newSched()
	var times []time.Time
	s.Every(time.Minute, 0, func(now time.Time) { times = append(times, now) })
	clk.Advance(5 * time.Minute)
	for i, ts := range times {
		want := epoch.Add(time.Duration(i+1) * time.Minute)
		if !ts.Equal(want) {
			t.Fatalf("firing %d at %v, want %v", i, ts, want)
		}
	}
}

func TestEveryCancelStopsFutureFirings(t *testing.T) {
	s, clk := newSched()
	n := 0
	var task *Task
	task = s.Every(time.Minute, 0, func(time.Time) {
		n++
		if n == 3 {
			task.Cancel()
		}
	})
	clk.Advance(time.Hour)
	if n != 3 {
		t.Fatalf("fired %d times, want 3", n)
	}
}

func TestEveryJitterBoundedAndNonDrifting(t *testing.T) {
	s, clk := newSched()
	jitter := 10 * time.Second
	var times []time.Time
	s.Every(time.Minute, jitter, func(now time.Time) { times = append(times, now) })
	clk.Advance(30 * time.Minute)
	if len(times) < 25 {
		t.Fatalf("only %d firings", len(times))
	}
	for i, ts := range times {
		base := epoch.Add(time.Duration(i+1) * time.Minute)
		off := ts.Sub(base)
		if off < 0 || off >= jitter {
			t.Fatalf("firing %d offset %v outside [0, %v)", i, off, jitter)
		}
	}
}

func TestEveryPanicsOnNonPositiveInterval(t *testing.T) {
	s, _ := newSched()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Every(0, 0, func(time.Time) {})
}

func TestWindowRespectsBounds(t *testing.T) {
	s, clk := newSched()
	from := epoch.Add(time.Hour)
	to := epoch.Add(2 * time.Hour)
	var times []time.Time
	s.Window(from, to, 10*time.Minute, func(now time.Time) { times = append(times, now) })
	clk.Advance(5 * time.Hour)
	if len(times) != 6 { // 1:00 1:10 ... 1:50
		t.Fatalf("fired %d times: %v", len(times), times)
	}
	for _, ts := range times {
		if ts.Before(from) || !ts.Before(to) {
			t.Fatalf("firing %v outside window", ts)
		}
	}
}

func TestWindowStartInPastClamps(t *testing.T) {
	s, clk := newSched()
	clk.Advance(time.Hour) // now = epoch+1h
	n := 0
	s.Window(epoch, epoch.Add(90*time.Minute), 10*time.Minute, func(time.Time) { n++ })
	clk.Advance(3 * time.Hour)
	if n == 0 {
		t.Fatal("window starting in the past never fired")
	}
}

func TestWindowCancelMidway(t *testing.T) {
	s, clk := newSched()
	n := 0
	var task *Task
	task = s.Window(epoch.Add(time.Minute), epoch.Add(time.Hour), time.Minute, func(time.Time) {
		n++
		if n == 5 {
			task.Cancel()
		}
	})
	clk.Advance(2 * time.Hour)
	if n != 5 {
		t.Fatalf("fired %d times, want 5", n)
	}
}

func TestManyTasksInterleave(t *testing.T) {
	s, clk := newSched()
	counts := make([]int, 10)
	for i := 0; i < 10; i++ {
		i := i
		s.Every(time.Duration(i+1)*time.Minute, 0, func(time.Time) { counts[i]++ })
	}
	clk.Advance(60 * time.Minute)
	for i, c := range counts {
		want := 60 / (i + 1)
		if c != want {
			t.Fatalf("task %d fired %d times, want %d", i, c, want)
		}
	}
}
