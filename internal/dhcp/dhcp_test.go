package dhcp

import (
	"net/netip"
	"testing"
	"time"

	"natpeek/internal/mac"
)

var t0 = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)

func newServer() *Server {
	return NewServer(netip.MustParsePrefix("192.168.1.0/24"), time.Hour)
}

func hw(n int) mac.Addr {
	return mac.FromOUI(0xa4b197, uint32(n))
}

func TestGatewayIsFirstUsable(t *testing.T) {
	s := newServer()
	if s.Gateway() != netip.MustParseAddr("192.168.1.1") {
		t.Fatalf("gateway = %v", s.Gateway())
	}
}

func TestLeaseAssignsDistinctAddresses(t *testing.T) {
	s := newServer()
	seen := map[netip.Addr]bool{}
	for i := 0; i < 50; i++ {
		l, err := s.Lease(hw(i), "", t0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[l.IP] {
			t.Fatalf("duplicate IP %v", l.IP)
		}
		if !s.Prefix().Contains(l.IP) {
			t.Fatalf("IP %v outside subnet", l.IP)
		}
		if l.IP == s.Gateway() {
			t.Fatal("gateway address leased")
		}
		seen[l.IP] = true
	}
}

func TestRenewalKeepsAddress(t *testing.T) {
	s := newServer()
	l1, _ := s.Lease(hw(1), "laptop", t0)
	l2, err := s.Lease(hw(1), "", t0.Add(30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if l1.IP != l2.IP {
		t.Fatal("renewal changed address")
	}
	if l2.Hostname != "laptop" {
		t.Fatal("hostname lost on renewal")
	}
	if !l2.Expiry.Equal(t0.Add(30*time.Minute + time.Hour)) {
		t.Fatalf("expiry = %v", l2.Expiry)
	}
}

func TestByIPAndByMAC(t *testing.T) {
	s := newServer()
	l, _ := s.Lease(hw(7), "tv", t0)
	got, err := s.ByIP(l.IP)
	if err != nil || got.MAC != hw(7) {
		t.Fatalf("ByIP: %v, %v", got, err)
	}
	got, err = s.ByMAC(hw(7))
	if err != nil || got.IP != l.IP {
		t.Fatalf("ByMAC: %v, %v", got, err)
	}
	if _, err := s.ByMAC(hw(99)); err == nil {
		t.Fatal("missing lease found")
	}
}

func TestRelease(t *testing.T) {
	s := newServer()
	l, _ := s.Lease(hw(1), "", t0)
	s.Release(hw(1))
	if _, err := s.ByIP(l.IP); err == nil {
		t.Fatal("released lease still resolvable")
	}
	if s.Count() != 0 {
		t.Fatal("count wrong after release")
	}
}

func TestExpire(t *testing.T) {
	s := newServer()
	s.Lease(hw(1), "", t0)
	s.Reserve(hw(2), "media-box", t0)
	n := s.Expire(t0.Add(2 * time.Hour))
	if n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	if _, err := s.ByMAC(hw(2)); err != nil {
		t.Fatal("static lease expired")
	}
}

func TestActiveSortedAndFiltered(t *testing.T) {
	s := newServer()
	for i := 0; i < 5; i++ {
		s.Lease(hw(i), "", t0)
	}
	s.Lease(hw(90), "", t0.Add(-2*time.Hour)) // long expired
	act := s.Active(t0.Add(30 * time.Minute))
	if len(act) != 5 {
		t.Fatalf("active = %d, want 5", len(act))
	}
	for i := 1; i < len(act); i++ {
		if !act[i-1].IP.Less(act[i].IP) {
			t.Fatal("not sorted")
		}
	}
}

func TestPoolExhaustionAndReclaim(t *testing.T) {
	s := NewServer(netip.MustParsePrefix("10.0.0.0/29"), time.Hour) // gw 10.0.0.1, usable .2-.6
	var leased []mac.Addr
	for i := 0; ; i++ {
		_, err := s.Lease(hw(i), "", t0)
		if err != nil {
			break
		}
		leased = append(leased, hw(i))
		if i > 10 {
			t.Fatal("never exhausted")
		}
	}
	if len(leased) != 5 {
		t.Fatalf("leased %d addrs in a /29, want 5", len(leased))
	}
	// After expiry, new devices reclaim old addresses.
	l, err := s.Lease(hw(100), "", t0.Add(3*time.Hour))
	if err != nil {
		t.Fatalf("reclaim failed: %v", err)
	}
	if !s.Prefix().Contains(l.IP) {
		t.Fatal("reclaimed IP outside subnet")
	}
}

func TestBroadcastNeverLeased(t *testing.T) {
	s := NewServer(netip.MustParsePrefix("10.0.0.0/29"), time.Hour)
	for i := 0; i < 5; i++ {
		l, err := s.Lease(hw(i), "", t0)
		if err != nil {
			t.Fatal(err)
		}
		if l.IP == netip.MustParseAddr("10.0.0.7") {
			t.Fatal("broadcast address leased")
		}
	}
}

func TestStaticReservationSurvivesReclaim(t *testing.T) {
	s := NewServer(netip.MustParsePrefix("10.0.0.0/29"), time.Minute)
	s.Reserve(hw(0), "nas", t0)
	for i := 1; i < 5; i++ {
		s.Lease(hw(i), "", t0)
	}
	// All dynamic leases expired; the static one must not be reclaimed
	// even under pressure.
	for i := 10; i < 14; i++ {
		if _, err := s.Lease(hw(i), "", t0.Add(time.Hour)); err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
	}
	l, err := s.ByMAC(hw(0))
	if err != nil || !l.Static {
		t.Fatal("static lease lost")
	}
}

func TestDefaultLeaseDuration(t *testing.T) {
	s := NewServer(netip.MustParsePrefix("192.168.1.0/24"), 0)
	l, _ := s.Lease(hw(1), "", t0)
	if !l.Expiry.Equal(t0.Add(24 * time.Hour)) {
		t.Fatalf("default expiry = %v", l.Expiry)
	}
}
