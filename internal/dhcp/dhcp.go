// Package dhcp implements the home LAN's address assignment: a lease table
// mapping device MAC addresses to private IPv4 addresses inside the
// gateway's subnet. The gateway uses it for two measurement duties the
// paper depends on: counting connected devices (the Devices data set,
// hourly) and attributing captured traffic to a specific device (the
// Traffic data set is per-device because the router knows which LAN IP
// belongs to which MAC).
package dhcp

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"natpeek/internal/mac"
)

// Errors returned by the lease table.
var (
	ErrPoolExhausted = errors.New("dhcp: address pool exhausted")
	ErrNoLease       = errors.New("dhcp: no lease")
)

// Lease records one device's address assignment.
type Lease struct {
	MAC      mac.Addr
	IP       netip.Addr
	Hostname string
	Start    time.Time
	Expiry   time.Time
	Static   bool // never expires (e.g. media boxes with reservations)
}

// Server is a DHCP lease table over one IPv4 subnet. It is not safe for
// concurrent use; the gateway serializes access.
type Server struct {
	prefix   netip.Prefix
	gateway  netip.Addr
	leaseDur time.Duration

	byMAC map[mac.Addr]*Lease
	byIP  map[netip.Addr]*Lease
	next  netip.Addr
}

// NewServer returns a lease table for prefix. The first usable address is
// reserved for the gateway itself. Lease duration defaults to 24h when
// leaseDur is zero, matching common home-router defaults.
func NewServer(prefix netip.Prefix, leaseDur time.Duration) *Server {
	if leaseDur <= 0 {
		leaseDur = 24 * time.Hour
	}
	gw := prefix.Addr().Next()
	return &Server{
		prefix:   prefix.Masked(),
		gateway:  gw,
		leaseDur: leaseDur,
		byMAC:    make(map[mac.Addr]*Lease),
		byIP:     make(map[netip.Addr]*Lease),
		next:     gw.Next(),
	}
}

// Gateway returns the router's own address.
func (s *Server) Gateway() netip.Addr { return s.gateway }

// Prefix returns the managed subnet.
func (s *Server) Prefix() netip.Prefix { return s.prefix }

// Lease grants (or renews) an address for hw at time now. Devices keep
// their previous address across renewals — device attribution depends on
// stable bindings.
func (s *Server) Lease(hw mac.Addr, hostname string, now time.Time) (*Lease, error) {
	if l, ok := s.byMAC[hw]; ok {
		l.Expiry = now.Add(s.leaseDur)
		if hostname != "" {
			l.Hostname = hostname
		}
		return l, nil
	}
	ip, err := s.allocate(now)
	if err != nil {
		return nil, err
	}
	l := &Lease{MAC: hw, IP: ip, Hostname: hostname, Start: now, Expiry: now.Add(s.leaseDur)}
	s.byMAC[hw] = l
	s.byIP[ip] = l
	return l, nil
}

// Reserve creates a static lease (e.g. for always-on media boxes).
func (s *Server) Reserve(hw mac.Addr, hostname string, now time.Time) (*Lease, error) {
	l, err := s.Lease(hw, hostname, now)
	if err != nil {
		return nil, err
	}
	l.Static = true
	return l, nil
}

func (s *Server) allocate(now time.Time) (netip.Addr, error) {
	// First pass: scan forward from the cursor for a free address.
	start := s.next
	for {
		ip := s.next
		s.next = s.next.Next()
		if !s.prefix.Contains(s.next) {
			s.next = s.gateway.Next() // wrap
		}
		if isBroadcastIn(s.prefix, ip) {
			if s.next == start {
				break
			}
			continue
		}
		if _, taken := s.byIP[ip]; !taken {
			return ip, nil
		}
		if s.next == start {
			break
		}
	}
	// Second pass: reclaim the oldest expired dynamic lease.
	var oldest *Lease
	for _, l := range s.byMAC {
		if l.Static || l.Expiry.After(now) {
			continue
		}
		if oldest == nil || l.Expiry.Before(oldest.Expiry) {
			oldest = l
		}
	}
	if oldest == nil {
		return netip.Addr{}, ErrPoolExhausted
	}
	s.release(oldest)
	return oldest.IP, nil
}

// Release frees the lease held by hw, if any.
func (s *Server) Release(hw mac.Addr) {
	if l, ok := s.byMAC[hw]; ok {
		s.release(l)
	}
}

func (s *Server) release(l *Lease) {
	delete(s.byMAC, l.MAC)
	delete(s.byIP, l.IP)
}

// Expire removes all dynamic leases whose expiry is at or before now and
// returns how many were removed.
func (s *Server) Expire(now time.Time) int {
	n := 0
	for _, l := range s.byMAC {
		if !l.Static && !l.Expiry.After(now) {
			s.release(l)
			n++
		}
	}
	return n
}

// ByIP returns the lease owning ip.
func (s *Server) ByIP(ip netip.Addr) (*Lease, error) {
	if l, ok := s.byIP[ip]; ok {
		return l, nil
	}
	return nil, fmt.Errorf("%w for %v", ErrNoLease, ip)
}

// ByMAC returns the lease held by hw.
func (s *Server) ByMAC(hw mac.Addr) (*Lease, error) {
	if l, ok := s.byMAC[hw]; ok {
		return l, nil
	}
	return nil, fmt.Errorf("%w for %v", ErrNoLease, hw)
}

// Active returns leases valid at now, sorted by IP for deterministic
// iteration.
func (s *Server) Active(now time.Time) []*Lease {
	var out []*Lease
	for _, l := range s.byMAC {
		if l.Static || l.Expiry.After(now) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP.Less(out[j].IP) })
	return out
}

// Count returns the number of leases in the table (including expired ones
// not yet reclaimed).
func (s *Server) Count() int { return len(s.byMAC) }

func isBroadcastIn(p netip.Prefix, ip netip.Addr) bool {
	if !ip.Is4() {
		return false
	}
	bits := p.Bits()
	a := ip.As4()
	host := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	mask := uint32(0xffffffff) >> bits
	return host&mask == mask
}
