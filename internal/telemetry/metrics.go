// Package telemetry is the platform's observability layer: a
// dependency-free metrics registry (atomic counters, gauges, bounded
// histograms, labeled families) with Prometheus text exposition, plus the
// slog-based structured-logging setup shared by every binary and an
// optional debug HTTP listener (/metrics + pprof).
//
// The paper's deployment lived or died on knowing whether its 126
// routers were actually reporting; this package is the reproduction's
// equivalent of that operational visibility. Every subsystem registers
// its metrics against Default at construction time, so one scrape of a
// running collector answers "are the routers alive, is anything being
// dropped, and where is the time going".
//
// Metric handles are resolved once (at component construction) and
// increments are single atomic operations, so instrumentation is cheap
// enough for the capture hot path (see BenchmarkTelemetryCounter).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use, but counters should normally be obtained from a Registry so
// they appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored to keep
// the counter monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with an approximate quantile
// snapshot. Observations are lock-free atomic adds.
type Histogram struct {
	bounds    []float64 // increasing upper bounds; +Inf bucket is implicit
	counts    []atomic.Uint64
	count     atomic.Uint64
	sum       atomic.Uint64 // float64 bits, CAS-updated
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one observation back to the trace that produced it, so
// a latency bucket on /metrics is one click away from the end-to-end
// story behind it (see internal/trace).
type Exemplar struct {
	Value   float64
	TraceID string
	At      time.Time
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// DefBuckets is the default latency bucket layout (seconds).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and remembers the trace that
// produced it as the containing bucket's exemplar (last writer wins —
// the freshest trace is the most debuggable one).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, At: time.Now()})
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 // +Inf for the overflow bucket
	Count      uint64  // cumulative count of observations ≤ UpperBound
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Buckets []Bucket
	Count   uint64
	Sum     float64
	// Exemplars holds, per bucket, the last exemplar observed into it
	// (nil for buckets with none).
	Exemplars []*Exemplar
}

// Snapshot copies the histogram's state. Because observation is
// non-atomic across buckets, a snapshot taken concurrently with writes is
// approximate, which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets:   make([]Bucket, len(h.counts)),
		Count:     h.count.Load(),
		Sum:       h.Sum(),
		Exemplars: make([]*Exemplar, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket. Returns NaN on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var lo float64
	var prev uint64
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return lo // best effort: lower edge of the overflow bucket
			}
			in := b.Count - prev
			if in == 0 {
				return b.UpperBound
			}
			frac := (rank - float64(prev)) / float64(in)
			return lo + frac*(b.UpperBound-lo)
		}
		lo = b.UpperBound
		prev = b.Count
	}
	return lo
}

// labelSep joins label values into map keys; 0xff never appears in sane
// label values.
const labelSep = "\xff"

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	labels []string
	mu     sync.RWMutex
	m      map[string]*Counter
}

// With returns (creating if needed) the counter for the given label
// values, which must match the family's label count.
func (v *CounterVec) With(values ...string) *Counter {
	key := vecKey(v.labels, values)
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[key]; c == nil {
		c = &Counter{}
		v.m[key] = c
	}
	return c
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	labels []string
	mu     sync.RWMutex
	m      map[string]*Gauge
}

// With returns (creating if needed) the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := vecKey(v.labels, values)
	v.mu.RLock()
	g := v.m[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.m[key]; g == nil {
		g = &Gauge{}
		v.m[key] = g
	}
	return g
}

// HistogramVec is a family of histograms sharing one bucket layout.
type HistogramVec struct {
	labels []string
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// With returns (creating if needed) the histogram for the given label
// values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := vecKey(v.labels, values)
	v.mu.RLock()
	h := v.m[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[key]; h == nil {
		h = newHistogram(v.bounds)
		v.m[key] = h
	}
	return h
}

// Each visits every histogram in the family in sorted label order. The
// webui pipeline page uses it to render live per-endpoint percentiles
// without reaching into the exposition text.
func (v *HistogramVec) Each(fn func(values []string, h *Histogram)) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	hists := make([]*Histogram, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		hists[i] = v.m[k]
	}
	v.mu.RUnlock()
	for i, k := range keys {
		fn(strings.Split(k, labelSep), hists[i])
	}
}

func vecKey(labels, values []string) string {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("telemetry: %d label values for %d labels", len(values), len(labels)))
	}
	return strings.Join(values, labelSep)
}

// metric is one registered name: exactly one of the concrete fields is
// set.
type metric struct {
	name, help string
	kind       string // "counter", "gauge", "histogram"
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	counterVec *CounterVec
	gaugeVec   *GaugeVec
	histVec    *HistogramVec
}

// Registry holds named metrics and renders them in Prometheus text
// format. Registration is idempotent: asking for an existing name of the
// same kind returns the existing metric, so independent components can
// share a metric by name. Asking for an existing name with a different
// kind or label set panics — that is a programming error.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*metric
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Default is the process-wide registry. Components register against it
// unless told otherwise; binaries expose it on /metrics.
var Default = NewRegistry()

func (r *Registry) lookup(name, kind string) *metric {
	m := r.byName[name]
	if m != nil && m.kind != kind {
		panic(fmt.Sprintf("telemetry: %s already registered as %s, requested %s", name, m.kind, kind))
	}
	return m
}

func (r *Registry) register(name, help, kind string) *metric {
	m := &metric{name: name, help: help, kind: kind}
	r.byName[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "counter"); m != nil {
		if m.counter == nil {
			panic("telemetry: " + name + " is a labeled counter")
		}
		return m.counter
	}
	m := r.register(name, help, "counter")
	m.counter = &Counter{}
	return m.counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "gauge"); m != nil {
		if m.gauge == nil {
			panic("telemetry: " + name + " is a labeled gauge")
		}
		return m.gauge
	}
	m := r.register(name, help, "gauge")
	m.gauge = &Gauge{}
	return m.gauge
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "histogram"); m != nil {
		if m.hist == nil {
			panic("telemetry: " + name + " is a labeled histogram")
		}
		return m.hist
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	m := r.register(name, help, "histogram")
	m.hist = newHistogram(bounds)
	return m.hist
}

// CounterVec returns the named counter family, registering it on first
// use.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "counter"); m != nil {
		if m.counterVec == nil || len(m.counterVec.labels) != len(labels) {
			panic("telemetry: " + name + " registered with a different shape")
		}
		return m.counterVec
	}
	m := r.register(name, help, "counter")
	m.counterVec = &CounterVec{labels: labels, m: make(map[string]*Counter)}
	return m.counterVec
}

// GaugeVec returns the named gauge family, registering it on first use.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "gauge"); m != nil {
		if m.gaugeVec == nil || len(m.gaugeVec.labels) != len(labels) {
			panic("telemetry: " + name + " registered with a different shape")
		}
		return m.gaugeVec
	}
	m := r.register(name, help, "gauge")
	m.gaugeVec = &GaugeVec{labels: labels, m: make(map[string]*Gauge)}
	return m.gaugeVec
}

// HistogramVec returns the named histogram family, registering it on
// first use with the given bucket bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "histogram"); m != nil {
		if m.histVec == nil || len(m.histVec.labels) != len(labels) {
			panic("telemetry: " + name + " registered with a different shape")
		}
		return m.histVec
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	m := r.register(name, help, "histogram")
	m.histVec = &HistogramVec{labels: labels, bounds: bounds, m: make(map[string]*Histogram)}
	return m.histVec
}
