package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders every registered metric in Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE headers followed by one line
// per series, sorted by metric name then label key for a stable scrape.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	metrics := make([]*metric, 0, len(names))
	for _, n := range names {
		metrics = append(metrics, r.byName[n])
	}
	r.mu.RUnlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	for _, m := range metrics {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (m *metric) write(w io.Writer) error {
	switch {
	case m.counter != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", m.name, formatValue(float64(m.counter.Value())))
		return err
	case m.gauge != nil:
		_, err := fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.gauge.Value()))
		return err
	case m.hist != nil:
		return writeHistogram(w, m.name, "", m.hist.Snapshot())
	case m.counterVec != nil:
		v := m.counterVec
		v.mu.RLock()
		keys := sortedKeys(v.m)
		type row struct {
			labels string
			val    float64
		}
		rows := make([]row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, row{formatLabels(v.labels, k), float64(v.m[k].Value())})
		}
		v.mu.RUnlock()
		for _, r := range rows {
			if _, err := fmt.Fprintf(w, "%s{%s} %s\n", m.name, r.labels, formatValue(r.val)); err != nil {
				return err
			}
		}
		return nil
	case m.gaugeVec != nil:
		v := m.gaugeVec
		v.mu.RLock()
		keys := sortedKeys(v.m)
		type row struct {
			labels string
			val    float64
		}
		rows := make([]row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, row{formatLabels(v.labels, k), v.m[k].Value()})
		}
		v.mu.RUnlock()
		for _, r := range rows {
			if _, err := fmt.Fprintf(w, "%s{%s} %s\n", m.name, r.labels, formatValue(r.val)); err != nil {
				return err
			}
		}
		return nil
	case m.histVec != nil:
		v := m.histVec
		v.mu.RLock()
		keys := sortedKeys(v.m)
		type row struct {
			labels string
			snap   HistogramSnapshot
		}
		rows := make([]row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, row{formatLabels(v.labels, k), v.m[k].Snapshot()})
		}
		v.mu.RUnlock()
		for _, r := range rows {
			if err := writeHistogram(w, m.name, r.labels, r.snap); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

func writeHistogram(w io.Writer, name, labels string, s HistogramSnapshot) error {
	for i, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, b.Count); err != nil {
			return err
		}
		// Exemplars ride as comment lines (ignored by Prometheus text
		// parsers, greppable by humans): the trace behind the bucket.
		if i < len(s.Exemplars) && s.Exemplars[i] != nil {
			e := s.Exemplars[i]
			if _, err := fmt.Fprintf(w, "# EXEMPLAR %s_bucket{%s%sle=%q} %s trace_id=%s ts=%s\n",
				name, labels, sep, le, formatValue(e.Value), e.TraceID,
				e.At.UTC().Format("2006-01-02T15:04:05.000Z07:00")); err != nil {
				return err
			}
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatValue(s.Sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count); err != nil {
		return err
	}
	// Percentile summary comment: dashboards read p50/p95/p99 straight
	// off the scrape instead of re-deriving them from buckets.
	if s.Count > 0 {
		_, err := fmt.Fprintf(w, "# QUANTILE %s%s p50=%s p95=%s p99=%s\n",
			name, suffix,
			formatValue(s.Quantile(0.50)), formatValue(s.Quantile(0.95)), formatValue(s.Quantile(0.99)))
		return err
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatLabels renders a vec map key back into label="value" pairs.
func formatLabels(labels []string, key string) string {
	values := strings.Split(key, labelSep)
	parts := make([]string, 0, len(labels))
	for i, l := range labels {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		parts = append(parts, l+`="`+escapeLabel(v)+`"`)
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
