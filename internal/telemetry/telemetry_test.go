package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10) // 0.1 .. 10.0 uniform
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.5); math.Abs(got-5) > 1.5 {
		t.Fatalf("p50 = %v, want ≈5", got)
	}
	if got := s.Quantile(0); got < 0 || got > 1 {
		t.Fatalf("p0 = %v, want within first bucket", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := newHistogram([]float64{1})
	if got := h.Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %v, want NaN", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name returned different counters")
	}
	v1 := r.CounterVec("y_total", "", "endpoint")
	v2 := r.CounterVec("y_total", "", "endpoint")
	if v1 != v2 {
		t.Fatal("same name returned different vecs")
	}
	if v1.With("a") != v2.With("a") {
		t.Fatal("same labels returned different counters")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind clash")
		}
	}()
	r.Gauge("clash", "")
}

// parseProm does a minimal parse of the exposition format, returning
// series name{labels} → value. It fails the test on any malformed line.
func parseProm(t *testing.T, rd io.Reader) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(rd)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series := line[:i]
		if strings.Count(series, "{") > 1 || strings.ContainsAny(series, " \t") {
			t.Fatalf("malformed series %q", series)
		}
		out[series] = v
	}
	return out
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("beats_total", "heartbeats received").Add(7)
	r.Gauge("depth", "queue depth").Set(3.5)
	r.CounterVec("req_total", "requests", "endpoint").With(`/v1/"x"`).Add(2)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	got := parseProm(t, strings.NewReader(text))

	if got["beats_total"] != 7 {
		t.Fatalf("beats_total = %v\n%s", got["beats_total"], text)
	}
	if got["depth"] != 3.5 {
		t.Fatalf("depth = %v", got["depth"])
	}
	if got[`req_total{endpoint="/v1/\"x\""}`] != 2 {
		t.Fatalf("labeled counter missing/escaped wrong:\n%s", text)
	}
	if got[`lat_seconds_bucket{le="+Inf"}`] != 3 || got["lat_seconds_count"] != 3 {
		t.Fatalf("histogram exposition wrong:\n%s", text)
	}
	if got[`lat_seconds_bucket{le="0.1"}`] != 1 {
		t.Fatalf("cumulative bucket wrong:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE lat_seconds histogram") {
		t.Fatalf("missing TYPE header:\n%s", text)
	}
}

func TestWritePromQuantileComment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{0.1, 1, 10})
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "# QUANTILE") {
		t.Fatalf("empty histogram emitted a quantile line:\n%s", sb.String())
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	sb.Reset()
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	line := ""
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "# QUANTILE q_seconds") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no quantile line:\n%s", text)
	}
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(line, want) {
			t.Fatalf("quantile line missing %s: %q", want, line)
		}
	}
	// The scrape must stay parseable with the comment lines present.
	parseProm(t, strings.NewReader(text))

	// Labeled histograms get the quantile comment per series.
	hv := r.HistogramVec("qv_seconds", "", []float64{1}, "endpoint")
	hv.With("/v1/uptime").Observe(0.5)
	sb.Reset()
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# QUANTILE qv_seconds{endpoint="/v1/uptime"} p50=`) {
		t.Fatalf("labeled quantile line missing:\n%s", sb.String())
	}
}

func TestExemplarRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_seconds", "", []float64{0.1, 1})
	h.Observe(0.05) // no exemplar
	h.ObserveExemplar(0.5, "deadbeefdeadbeefdeadbeefdeadbeef")
	h.ObserveExemplar(0.7, "cafecafecafecafecafecafecafecafe") // last writer wins per bucket
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `# EXEMPLAR ex_seconds_bucket{le="1"} 0.7 trace_id=cafecafecafecafecafecafecafecafe`) {
		t.Fatalf("exemplar line missing or stale:\n%s", text)
	}
	if strings.Contains(text, "deadbeef") {
		t.Fatalf("overwritten exemplar still rendered:\n%s", text)
	}
	if strings.Contains(text, `# EXEMPLAR ex_seconds_bucket{le="0.1"}`) {
		t.Fatalf("bucket without exemplar got a line:\n%s", text)
	}
	got := parseProm(t, strings.NewReader(text))
	if got[`ex_seconds_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("ObserveExemplar must also count as Observe:\n%s", text)
	}
	// Empty trace ID observes without recording an exemplar.
	h2 := r.Histogram("ex2_seconds", "", []float64{1})
	h2.ObserveExemplar(0.5, "")
	sb.Reset()
	_ = r.WriteProm(&sb)
	if strings.Contains(sb.String(), "# EXEMPLAR ex2_seconds") {
		t.Fatalf("empty trace ID produced an exemplar:\n%s", sb.String())
	}
}

func TestHistogramVecEach(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("each_seconds", "", []float64{1}, "endpoint")
	hv.With("/v1/wifi").Observe(0.5)
	hv.With("/v1/uptime").Observe(0.2)
	var order []string
	hv.Each(func(values []string, h *Histogram) {
		if len(values) != 1 {
			t.Fatalf("values = %v", values)
		}
		order = append(order, values[0])
		if h.Count() != 1 {
			t.Fatalf("histogram for %v has count %d", values, h.Count())
		}
	})
	if len(order) != 2 || order[0] != "/v1/uptime" || order[1] != "/v1/wifi" {
		t.Fatalf("Each order = %v, want sorted", order)
	}
}

func TestStartDebugWithMount(t *testing.T) {
	d, err := StartDebugWith("127.0.0.1:0", NewRegistry(), func(mux *http.ServeMux) {
		mux.HandleFunc("GET /extra", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, "mounted")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/extra")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "mounted" {
		t.Fatalf("mount hook not applied: %q", body)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	vec := r.CounterVec("conc_vec_total", "", "k")
	h := r.Histogram("conc_seconds", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				vec.With("a").Inc()
				h.Observe(float64(j) / 1000)
				if j%100 == 0 {
					var sb strings.Builder
					_ = r.WriteProm(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if vec.With("a").Value() != 8000 {
		t.Fatalf("vec counter = %d, want 8000", vec.With("a").Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestDebugServerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_test_total", "").Inc()
	d, err := StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := parseProm(t, resp.Body)
	if got["debug_test_total"] != 1 {
		t.Fatalf("metrics = %v", got)
	}

	resp2, err := http.Get("http://" + d.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp2.StatusCode)
	}
}

func TestRegisterDebugOnExistingMux(t *testing.T) {
	mux := http.NewServeMux()
	reg := NewRegistry()
	reg.Gauge("mux_gauge", "").Set(1)
	RegisterDebug(mux, reg)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "mux_gauge 1") {
		t.Fatalf("status %d body %q", rr.Code, rr.Body.String())
	}
}
