package telemetry

import (
	"io"
	"log/slog"
	"os"
	"strings"
)

// Logging environment knobs shared by every binary:
//
//	NATPEEK_LOG_LEVEL  = debug | info | warn | error   (default info)
//	NATPEEK_LOG_FORMAT = text | json                    (default text)
//
// Keeping the configuration in the environment rather than per-binary
// flags means the same invocation works for bismark-server, -gateway,
// -sim, -pcap, and -analyze.

// LogLevel parses NATPEEK_LOG_LEVEL.
func LogLevel() slog.Level {
	switch strings.ToLower(os.Getenv("NATPEEK_LOG_LEVEL")) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds the platform's structured logger for one component
// (e.g. "bismark-server"), writing to w (nil means stderr). Format and
// level come from the environment.
func NewLogger(component string, w io.Writer) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	opts := &slog.HandlerOptions{Level: LogLevel()}
	var h slog.Handler
	if strings.EqualFold(os.Getenv("NATPEEK_LOG_FORMAT"), "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h).With("component", component)
}

// SetupLogger builds the component logger and installs it as the slog
// default, so library code using slog.Default() shares the binary's
// sink. It returns the logger for direct use.
func SetupLogger(component string) *slog.Logger {
	l := NewLogger(component, nil)
	slog.SetDefault(l)
	return l
}
