package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// RegisterDebug mounts the observability endpoints on mux: the registry
// at /metrics and the standard pprof handlers under /debug/pprof/. Use it
// to add the endpoints to an existing server (the collector does); use
// StartDebug for a standalone listener (gateway, simulator).
func RegisterDebug(mux *http.ServeMux, reg *Registry) {
	if reg == nil {
		reg = Default
	}
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// DebugServer is a standalone observability listener for binaries whose
// primary job is not HTTP (bismark-gateway, bismark-sim).
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebug serves /metrics and pprof on addr ("127.0.0.1:0" for an
// ephemeral port). nil reg means Default.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	return StartDebugWith(addr, reg, nil)
}

// StartDebugWith is StartDebug with a mount hook: mount (if non-nil) is
// called with the mux before the listener starts, so callers can add
// their own endpoints (trace viewers, ops pages) to the debug server.
func StartDebugWith(addr string, reg *Registry, mount func(*http.ServeMux)) (*DebugServer, error) {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg)
	if mount != nil {
		mount(mux)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
	}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
