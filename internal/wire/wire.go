// Package wire is the compact binary batch encoding for the upload
// pipeline ("NPB1"). JSON got the platform to correctness; at fleet
// scale the collector's ingest path is decode- and alloc-bound, and the
// paper's own platform shipped compact reports from resource-starved
// home routers for the same reason. This package encodes the exact
// payloads /v1/batch carries — idempotency keys, trace spans, and the
// typed measurement rows of every /v1/* endpoint — several times
// smaller and an order of magnitude cheaper to decode than the JSON
// envelope.
//
// Format (all integers varint-encoded unless noted):
//
//	magic "NPB1"
//	uvarint item count
//	per item:
//	  uvarint meta            — bits 0..2 payload kind, bit 3 "has trace"
//	  stringRef endpoint      — KindRaw only (typed kinds imply theirs)
//	  string    key           — idempotency key, verbatim bytes
//	  trace                   — if bit 3: stringRef router, uvarint span
//	                            count, then per span stringRef name,
//	                            stringRef status, time start, time end,
//	                            uvarint attr count, per attr stringRef
//	                            key, stringRef value
//	  payload                 — per-kind row fields (see encode.go)
//
// Strings come in two shapes. A plain `string` is a uvarint length plus
// raw bytes. A `stringRef` is the inline dictionary: uvarint 0 means "a
// literal string follows; assign it the next dictionary index", any
// other value v means dictionary entry v-1. Router IDs, endpoints,
// domains, protocol names, bands, directions, span names/statuses, and
// attr keys/values are all dictionary-coded, so a batch carries each
// distinct string once.
//
// Timestamps share one delta chain across the whole batch: each time is
// the zigzag varint of its UnixNano minus the previous encoded time's
// (wrapping two's-complement arithmetic, so any in-range instant
// round-trips exactly). The zero time.Time is the sentinel absolute
// value math.MinInt64 and does not advance the chain — open trace spans
// (zero End) survive the trip byte-for-byte. A non-zero instant whose
// delta would collide with the sentinel (possible only for span times
// from absurd client clocks; payload times are range-checked) is nudged
// forward 1 ns instead of desynchronizing the chain. Durations and counters are
// zigzag varints; floats are 8-byte little-endian IEEE 754; MAC
// addresses are their 6 raw (already anonymized) bytes.
//
// Compatibility: the encoding is negotiated, never assumed. Requests
// carry Content-Type ContentTypeBinary; the collector advertises
// support via an "Accept-Post" response header and keeps serving JSON
// clients unchanged. Unknown endpoints ride inside the envelope as
// KindRaw with their JSON body verbatim, so the binary path never has
// to reject what the JSON path would have accepted.
package wire

import (
	"encoding/json"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/trace"
)

// ContentTypeBinary is the negotiated media type for NPB1-encoded batch
// requests. Anything else on /v1/batch is treated as JSON.
const ContentTypeBinary = "application/x-natpeek-batch"

// magic starts every NPB1 buffer ("natpeek binary, version 1").
const magic = "NPB1"

// Kind identifies a payload's row schema inside the binary envelope.
type Kind uint8

// Payload kinds. KindRaw carries a verbatim JSON body for endpoints the
// encoder has no schema for (registration, future endpoints); the
// decoder hands it to the same JSON applier the plain path uses.
const (
	KindRaw Kind = iota
	KindUptime
	KindCapacity
	KindDevices
	KindWiFi
	KindFlows
	KindThroughput

	kindMax = KindThroughput
)

// KindFor maps an upload endpoint to its typed payload kind (KindRaw
// for endpoints without a binary schema).
func KindFor(endpoint string) Kind {
	switch endpoint {
	case "/v1/uptime":
		return KindUptime
	case "/v1/capacity":
		return KindCapacity
	case "/v1/devices":
		return KindDevices
	case "/v1/wifi":
		return KindWiFi
	case "/v1/traffic/flows":
		return KindFlows
	case "/v1/traffic/throughput":
		return KindThroughput
	}
	return KindRaw
}

// Endpoint returns the upload endpoint a typed kind serves ("" for
// KindRaw, whose endpoint is carried explicitly).
func (k Kind) Endpoint() string {
	switch k {
	case KindUptime:
		return "/v1/uptime"
	case KindCapacity:
		return "/v1/capacity"
	case KindDevices:
		return "/v1/devices"
	case KindWiFi:
		return "/v1/wifi"
	case KindFlows:
		return "/v1/traffic/flows"
	case KindThroughput:
		return "/v1/traffic/throughput"
	}
	return ""
}

// Item is one batch entry: the binary equivalent of the JSON
// /v1/batch item (endpoint, idempotency key, payload, client trace).
type Item struct {
	Endpoint string
	Key      string
	Payload  Payload
	// Trace carries the client-side spans. The trace ID itself is not
	// shipped — the collector derives it from the idempotency key and
	// never trusts the wire — so decoded Wires have an empty TraceID.
	Trace *trace.Wire
}

// Census mirrors the /v1/devices JSON payload: one count row plus the
// per-device sightings recorded with it.
type Census struct {
	Count     dataset.DeviceCount      `json:"count"`
	Sightings []dataset.DeviceSighting `json:"sightings"`
}

// Payload is one item's measurement rows, discriminated by Kind. Only
// the fields for the active kind are meaningful. Slices produced by a
// Decoder are scratch storage owned by the decoder — valid until the
// next Next or Reset call — and Raw aliases the decoder's input buffer;
// consumers must copy anything they retain (the collector's store
// appends copy rows synchronously under the shard lock, so the ingest
// path needs no extra copies).
type Payload struct {
	Kind Kind

	Raw        []byte // KindRaw: verbatim JSON body
	Uptime     dataset.UptimeReport
	Capacity   dataset.CapacityMeasure
	Count      dataset.DeviceCount
	Sightings  []dataset.DeviceSighting
	WiFi       []dataset.WiFiScan
	Flows      []dataset.FlowRecord
	Throughput []dataset.ThroughputSample
}

// Router returns the payload's shard-routing router ID, matching the
// JSON appliers exactly: the census count's router, or the first row's
// for slice payloads (empty slices route to the empty-ID shard).
func (p *Payload) Router() string {
	switch p.Kind {
	case KindUptime:
		return p.Uptime.RouterID
	case KindCapacity:
		return p.Capacity.RouterID
	case KindDevices:
		return p.Count.RouterID
	case KindWiFi:
		if len(p.WiFi) > 0 {
			return p.WiFi[0].RouterID
		}
	case KindFlows:
		if len(p.Flows) > 0 {
			return p.Flows[0].RouterID
		}
	case KindThroughput:
		if len(p.Throughput) > 0 {
			return p.Throughput[0].RouterID
		}
	}
	return ""
}

// Rows counts the dataset rows the payload carries (0 for KindRaw,
// whose rows are only known after JSON decode).
func (p *Payload) Rows() int {
	switch p.Kind {
	case KindUptime, KindCapacity:
		return 1
	case KindDevices:
		return 1 + len(p.Sightings)
	case KindWiFi:
		return len(p.WiFi)
	case KindFlows:
		return len(p.Flows)
	case KindThroughput:
		return len(p.Throughput)
	}
	return 0
}

// JSONBody renders the payload as the JSON body the plain /v1/* path
// would have carried — the bridge for privacy scanners, journaling, and
// equivalence tests. KindRaw returns its bytes verbatim.
func (p *Payload) JSONBody() ([]byte, error) {
	switch p.Kind {
	case KindUptime:
		return json.Marshal(p.Uptime)
	case KindCapacity:
		return json.Marshal(p.Capacity)
	case KindDevices:
		return json.Marshal(Census{Count: p.Count, Sightings: p.Sightings})
	case KindWiFi:
		return json.Marshal(p.WiFi)
	case KindFlows:
		return json.Marshal(p.Flows)
	case KindThroughput:
		return json.Marshal(p.Throughput)
	}
	return p.Raw, nil
}

// PayloadFromJSON transcodes one endpoint's JSON body into a typed
// payload. Anything that does not decode cleanly — an unknown endpoint,
// a malformed body, or a timestamp outside the safely delta-encodable
// range — falls back to KindRaw with the body verbatim, so the server's
// accept/reject behaviour is byte-for-byte the JSON path's.
func PayloadFromJSON(endpoint string, body []byte) Payload {
	switch KindFor(endpoint) {
	case KindUptime:
		var v dataset.UptimeReport
		if json.Unmarshal(body, &v) == nil && timeEncodable(v.ReportedAt) {
			return Payload{Kind: KindUptime, Uptime: v}
		}
	case KindCapacity:
		var v dataset.CapacityMeasure
		if json.Unmarshal(body, &v) == nil && timeEncodable(v.MeasuredAt) {
			return Payload{Kind: KindCapacity, Capacity: v}
		}
	case KindDevices:
		var v Census
		if json.Unmarshal(body, &v) == nil && timeEncodable(v.Count.At) && timesOK(v.Sightings, func(s dataset.DeviceSighting) time.Time { return s.At }) {
			return Payload{Kind: KindDevices, Count: v.Count, Sightings: v.Sightings}
		}
	case KindWiFi:
		var v []dataset.WiFiScan
		if json.Unmarshal(body, &v) == nil && timesOK(v, func(s dataset.WiFiScan) time.Time { return s.At }) {
			return Payload{Kind: KindWiFi, WiFi: v}
		}
	case KindFlows:
		var v []dataset.FlowRecord
		if json.Unmarshal(body, &v) == nil &&
			timesOK(v, func(f dataset.FlowRecord) time.Time { return f.First }) &&
			timesOK(v, func(f dataset.FlowRecord) time.Time { return f.Last }) {
			return Payload{Kind: KindFlows, Flows: v}
		}
	case KindThroughput:
		var v []dataset.ThroughputSample
		if json.Unmarshal(body, &v) == nil && timesOK(v, func(s dataset.ThroughputSample) time.Time { return s.Minute }) {
			return Payload{Kind: KindThroughput, Throughput: v}
		}
	}
	return Payload{Kind: KindRaw, Raw: body}
}

// timeEncodable bounds the timestamps the typed encoding accepts. The
// delta chain round-trips any pair of instants whose UnixNano values
// exist and whose difference is not exactly the zero-time sentinel;
// confining typed rows to two centuries around the epoch (the study is
// 2012–2013, live clocks are "now") makes both impossible, and anything
// weirder ships as KindRaw JSON instead.
func timeEncodable(t time.Time) bool {
	if t.IsZero() {
		return true
	}
	y := t.Year()
	return y >= 1900 && y <= 2100
}

func timesOK[T any](rows []T, at func(T) time.Time) bool {
	for _, r := range rows {
		if !timeEncodable(at(r)) {
			return false
		}
	}
	return true
}
