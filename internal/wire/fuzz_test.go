package wire

import (
	"encoding/json"
	"io"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/mac"
	"natpeek/internal/trace"
)

// drain decodes every item out of buf, deep-copying each (scratch reuse),
// and reports whether the whole buffer decoded cleanly.
func drain(buf []byte) ([]Item, bool) {
	var d Decoder
	if err := d.Reset(buf); err != nil {
		return nil, false
	}
	var out []Item
	var it Item
	for {
		err := d.Next(&it)
		if err == io.EOF {
			return out, true
		}
		if err != nil {
			return nil, false
		}
		out = append(out, copyItem(it))
	}
}

// FuzzWireDecode feeds arbitrary bytes to the decoder. It must never
// panic, and any buffer it accepts must be canonically stable: re-encoding
// the decoded items and decoding again yields the same items.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("NPB1"))
	f.Add([]byte("NPB1\x00"))
	f.Add([]byte("not a batch at all"))
	f.Add(AppendBatch(nil, nil))
	f.Add(AppendBatch(nil, sampleItems()))
	f.Add(AppendBatch(nil, sampleItems()[:1]))
	hostile := AppendBatch(nil, sampleItems())
	f.Add(hostile[:len(hostile)-3])
	f.Add(append(AppendBatch(nil, sampleItems()[:2]), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		items, ok := drain(data)
		if !ok {
			return
		}
		re := AppendBatch(nil, items)
		again, ok := drain(re)
		if !ok {
			t.Fatalf("re-encoded accepted batch failed to decode")
		}
		if len(again) != len(items) {
			t.Fatalf("item count drifted: %d -> %d", len(items), len(again))
		}
		a, err := json.Marshal(items)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("decode/encode/decode not stable:\n%s\n%s", a, b)
		}
	})
}

// FuzzWireRoundTrip builds structured batches from fuzzed fields and
// asserts encode→decode preserves them exactly — keys and trace spans
// byte-for-byte, rows value-for-value (compared as JSON so timestamps
// compare by instant).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add("router-01", "pfx:n:/v1/uptime:1", "video.example.com", int64(1364817600_000000000), int64(3600_000000000), 3.5e6, true)
	f.Add("", "", "", int64(0), int64(-1), -0.0, false)
	f.Add("r\x00weird", "key\xffbytes", "ドメイン", int64(1), int64(1<<40), 1e300, true)

	f.Fuzz(func(t *testing.T, router, key, domain string, unixNano, counter int64, fval float64, withTrace bool) {
		at := time.Unix(0, unixNano%int64(4e18)).UTC()
		if !timeEncodable(at) {
			at = t0()
		}
		dev := mac.Addr{1, 2, 3, 4, 5, byte(counter)}
		items := []Item{
			{Endpoint: "/v1/uptime", Key: key, Payload: Payload{Kind: KindUptime,
				Uptime: dataset.UptimeReport{RouterID: router, ReportedAt: at, Uptime: time.Duration(counter)}}},
			{Endpoint: "/v1/traffic/flows", Key: key + "2", Payload: Payload{Kind: KindFlows,
				Flows: []dataset.FlowRecord{{RouterID: router, Device: dev, Domain: domain, Proto: "tcp",
					First: at, Last: at.Add(time.Duration(counter % int64(time.Hour))),
					UpBytes: counter, DownBytes: -counter, UpPkts: counter / 2, DownPkts: 1, Conns: 1}}}},
			{Endpoint: "/v1/traffic/throughput", Key: key + "3", Payload: Payload{Kind: KindThroughput,
				Throughput: []dataset.ThroughputSample{{RouterID: router, Minute: at, Dir: domain, PeakBps: fval, TotalBytes: counter}}}},
		}
		if withTrace {
			items[0].Trace = &trace.Wire{Router: router, Spans: []trace.Span{
				{Name: "spool.queued", Status: domain, Start: at, End: at.Add(time.Second)},
				{Name: "spool.send", Start: at, Attrs: []trace.Attr{{K: "attempt", V: key}}},
			}}
		}
		if !timeEncodable(items[1].Payload.Flows[0].Last) {
			items[1].Payload.Flows[0].Last = at
		}
		got, ok := drain(AppendBatch(nil, items))
		if !ok {
			t.Fatalf("encoded batch failed to decode")
		}
		a, _ := json.Marshal(items)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Fatalf("round trip drifted:\nin  %s\nout %s", a, b)
		}
		if got[0].Key != key || (withTrace && got[0].Trace.Spans[1].Attrs[0].V != key) {
			t.Fatalf("key bytes not preserved")
		}
	})
}
