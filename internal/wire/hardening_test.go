package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"runtime"
	"testing"
	"time"

	"natpeek/internal/trace"
)

// TestSpanTimeSentinelCollision pins the encoder's guard against a span
// timestamp whose delta against the chain is exactly math.MinInt64 —
// the zero-time sentinel. Unguarded, the collision decodes as the zero
// time AND desynchronizes the delta chain (the encoder advances its
// prev, the decoder does not), corrupting every later timestamp in the
// batch; the encoder nudges such an instant 1 ns forward instead.
// Payload times cannot get here (PayloadFromJSON's timeEncodable range
// check), so only span times — straight off client clocks — exercise
// this path.
func TestSpanTimeSentinelCollision(t *testing.T) {
	end := t0()
	items := []Item{{
		Endpoint: "/v1/register",
		Key:      "pfx:nonce:/v1/register:1",
		Payload:  Payload{Kind: KindRaw, Raw: []byte(`{}`)},
		Trace: &trace.Wire{Router: "router-01", Spans: []trace.Span{{
			Name: "absurd.clock", Status: "ok",
			// First time in the batch, so its delta against the fresh
			// chain (prev == 0) is exactly the sentinel.
			Start: time.Unix(0, math.MinInt64),
			End:   end,
		}}},
	}}
	got := decodeAll(t, AppendBatch(nil, items))
	sp := got[0].Trace.Spans[0]
	if sp.Start.IsZero() {
		t.Fatal("colliding span start decoded as the zero-time sentinel")
	}
	if want := time.Unix(0, math.MinInt64+1).UTC(); !sp.Start.Equal(want) {
		t.Fatalf("span start = %v, want the 1ns-nudged %v", sp.Start, want)
	}
	if !sp.End.Equal(end) {
		t.Fatalf("span end = %v, want %v — delta chain desynchronized", sp.End, end)
	}
}

// TestForgedAttrCountAllocationBounded is the regression for sizing the
// span-attr slice from the claimed count: count() only guarantees one
// input byte per claimed element, so an up-front make([]trace.Attr, na)
// handed a forged count ~32x amplification (a 200k claim allocated
// ~6.4 MiB before the decode failed). Allocation must track the bytes
// actually decoded instead.
func TestForgedAttrCountAllocationBounded(t *testing.T) {
	const claimed = 200_000
	buf := []byte(magic)
	buf = binary.AppendUvarint(buf, 1)                        // item count
	buf = binary.AppendUvarint(buf, uint64(KindRaw)|1<<3)     // meta: KindRaw + trace bit
	buf = append(buf, 0, 1, 'x')                              // endpoint ref: literal "x"
	buf = append(buf, 0)                                      // key: empty string
	buf = append(buf, 0, 1, 'r')                              // trace router ref: literal "r"
	buf = binary.AppendUvarint(buf, 1)                        // span count
	buf = append(buf, 0, 1, 'n')                              // span name ref
	buf = append(buf, 0, 1, 's')                              // span status ref
	buf = append(buf, 0, 0)                                   // start, end: zero deltas
	buf = binary.AppendUvarint(buf, claimed)                  // forged attr count...
	buf = append(buf, bytes.Repeat([]byte{0x80}, claimed)...) // ..."backed" by bytes that decode as nothing

	d := new(Decoder)
	var it Item
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := d.Reset(buf); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	err := d.Next(&it)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("forged attr count decoded cleanly")
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 1<<20 {
		t.Fatalf("decoding a forged attr count allocated %d bytes, want well under 1 MiB", alloc)
	}
}
