package wire

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteSeedCorpus regenerates the checked-in fuzz seed corpus from
// the canonical encoder, so the seeds track format changes instead of
// rotting. Run with WIRE_WRITE_CORPUS=1 after changing the encoding.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("WIRE_WRITE_CORPUS") == "" {
		t.Skip("set WIRE_WRITE_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	full := AppendBatch(nil, sampleItems())
	seeds := map[string][]byte{
		"empty-batch":      AppendBatch(nil, nil),
		"full-batch":       full,
		"single-item":      AppendBatch(nil, sampleItems()[:1]),
		"traced-item":      AppendBatch(nil, sampleItems()[:1]),
		"truncated":        full[:len(full)*2/3],
		"trailing-garbage": append(append([]byte(nil), full...), 0xde, 0xad),
		"bad-magic":        []byte("JSON{}"),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
