package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/mac"
	"natpeek/internal/trace"
)

// Decoder streams items out of one NPB1 buffer. It is built for a
// sync.Pool: Reset rebinds it to a new buffer while keeping every
// scratch slice (dictionary, row slices, span slice) at its high-water
// capacity, so a warmed decoder ingests a batch with close to zero
// allocations — the only per-batch allocations left are the dictionary
// string copies themselves.
//
// Hostile input is bounded, not trusted: every length and count is
// checked against the bytes actually remaining, so a forged header
// cannot make the decoder allocate beyond its input's size. A corrupt
// buffer yields an error from Reset or Next; it never panics.
//
// The Item filled by Next reuses the decoder's scratch storage — see
// Payload's doc for the aliasing rules.
type Decoder struct {
	data []byte
	off  int
	left int // items not yet decoded
	prev int64

	dict []string
	// interned caches dictionary literals across Reset calls. A pooled
	// decoder sees the same router IDs, domains, protocols, and span
	// names batch after batch; serving them from the cache makes the
	// dictionary copies a one-time cost instead of a per-batch one.
	// Bounded (entries and string length) so hostile input cannot grow
	// it past internMaxEntries strings; on overflow it is cleared and
	// re-warms from live traffic.
	interned map[string]string

	sightings  []dataset.DeviceSighting
	wifi       []dataset.WiFiScan
	flows      []dataset.FlowRecord
	throughput []dataset.ThroughputSample
	spans      []trace.Span
	tr         trace.Wire
}

// Reset binds the decoder to buf and decodes the envelope header,
// returning an error if buf is not an NPB1 batch.
func (d *Decoder) Reset(buf []byte) error {
	d.data = buf
	d.off = 0
	d.left = 0
	d.prev = 0
	d.dict = d.dict[:0]
	if len(buf) < len(magic) || string(buf[:len(magic)]) != magic {
		return fmt.Errorf("wire: not an NPB1 batch")
	}
	d.off = len(magic)
	n, err := d.count()
	if err != nil {
		return err
	}
	d.left = n
	return nil
}

// Len returns how many items remain to be decoded.
func (d *Decoder) Len() int { return d.left }

// Next decodes the next item into it, reusing the decoder's scratch
// storage. It returns io.EOF after the last item — and, like the JSON
// path post-bugfix, rejects trailing bytes after the final item.
func (d *Decoder) Next(it *Item) error {
	if d.left == 0 {
		if d.off != len(d.data) {
			return fmt.Errorf("wire: %d trailing bytes after batch", len(d.data)-d.off)
		}
		return io.EOF
	}
	d.left--
	*it = Item{}

	meta, err := d.uvarint()
	if err != nil {
		return err
	}
	kind := Kind(meta & 0x7)
	if kind > kindMax {
		return fmt.Errorf("wire: unknown payload kind %d", kind)
	}
	it.Payload.Kind = kind
	if kind == KindRaw {
		if it.Endpoint, err = d.ref(); err != nil {
			return err
		}
	} else {
		it.Endpoint = kind.Endpoint()
	}
	if it.Key, err = d.str(); err != nil {
		return err
	}
	if meta&(1<<3) != 0 {
		if err := d.decodeTrace(it); err != nil {
			return err
		}
	}
	return d.decodePayload(&it.Payload)
}

func (d *Decoder) decodeTrace(it *Item) error {
	router, err := d.ref()
	if err != nil {
		return err
	}
	n, err := d.count()
	if err != nil {
		return err
	}
	spans := d.spans[:0]
	for i := 0; i < n; i++ {
		var sp trace.Span
		if sp.Name, err = d.ref(); err != nil {
			return err
		}
		if sp.Status, err = d.ref(); err != nil {
			return err
		}
		if sp.Start, err = d.time(); err != nil {
			return err
		}
		if sp.End, err = d.time(); err != nil {
			return err
		}
		na, err := d.count()
		if err != nil {
			return err
		}
		if na > 0 {
			// Attrs are freshly allocated, never scratch: span slices are
			// copied into traces the recorder retains long after this
			// batch's buffers are reused, and that copy is shallow. Grown
			// incrementally rather than sized from na — count() only
			// guarantees one input byte per element, so an up-front make
			// would hand a forged count ~32x amplification before the
			// decode failed.
			attrs := make([]trace.Attr, 0, min(na, 8))
			for j := 0; j < na; j++ {
				var a trace.Attr
				if a.K, err = d.ref(); err != nil {
					return err
				}
				if a.V, err = d.ref(); err != nil {
					return err
				}
				attrs = append(attrs, a)
			}
			sp.Attrs = attrs
		}
		spans = append(spans, sp)
	}
	d.spans = spans
	d.tr = trace.Wire{Router: router, Spans: spans}
	it.Trace = &d.tr
	return nil
}

func (d *Decoder) decodePayload(p *Payload) error {
	var err error
	switch p.Kind {
	case KindUptime:
		r := &p.Uptime
		if r.RouterID, err = d.ref(); err != nil {
			return err
		}
		if r.ReportedAt, err = d.time(); err != nil {
			return err
		}
		up, err := d.varint()
		if err != nil {
			return err
		}
		r.Uptime = time.Duration(up)
	case KindCapacity:
		c := &p.Capacity
		if c.RouterID, err = d.ref(); err != nil {
			return err
		}
		if c.MeasuredAt, err = d.time(); err != nil {
			return err
		}
		if c.UpBps, err = d.f64(); err != nil {
			return err
		}
		if c.DownBps, err = d.f64(); err != nil {
			return err
		}
	case KindDevices:
		c := &p.Count
		if c.RouterID, err = d.ref(); err != nil {
			return err
		}
		if c.At, err = d.time(); err != nil {
			return err
		}
		if c.Wired, err = d.intField(); err != nil {
			return err
		}
		if c.W24, err = d.intField(); err != nil {
			return err
		}
		if c.W5, err = d.intField(); err != nil {
			return err
		}
		n, err := d.count()
		if err != nil {
			return err
		}
		rows := d.sightings[:0]
		for i := 0; i < n; i++ {
			var s dataset.DeviceSighting
			if s.RouterID, err = d.ref(); err != nil {
				return err
			}
			if s.At, err = d.time(); err != nil {
				return err
			}
			if s.Device, err = d.mac(); err != nil {
				return err
			}
			k, err := d.intField()
			if err != nil {
				return err
			}
			s.Kind = dataset.ConnKind(k)
			rows = append(rows, s)
		}
		d.sightings = rows
		p.Sightings = rows
	case KindWiFi:
		n, err := d.count()
		if err != nil {
			return err
		}
		rows := d.wifi[:0]
		for i := 0; i < n; i++ {
			var s dataset.WiFiScan
			if s.RouterID, err = d.ref(); err != nil {
				return err
			}
			if s.At, err = d.time(); err != nil {
				return err
			}
			if s.Band, err = d.ref(); err != nil {
				return err
			}
			if s.Channel, err = d.intField(); err != nil {
				return err
			}
			if s.VisibleAPs, err = d.intField(); err != nil {
				return err
			}
			if s.Clients, err = d.intField(); err != nil {
				return err
			}
			rows = append(rows, s)
		}
		d.wifi = rows
		p.WiFi = rows
	case KindFlows:
		n, err := d.count()
		if err != nil {
			return err
		}
		rows := d.flows[:0]
		for i := 0; i < n; i++ {
			var f dataset.FlowRecord
			if f.RouterID, err = d.ref(); err != nil {
				return err
			}
			if f.Device, err = d.mac(); err != nil {
				return err
			}
			if f.Domain, err = d.ref(); err != nil {
				return err
			}
			if f.Proto, err = d.ref(); err != nil {
				return err
			}
			if f.First, err = d.time(); err != nil {
				return err
			}
			if f.Last, err = d.time(); err != nil {
				return err
			}
			if f.UpBytes, err = d.varint(); err != nil {
				return err
			}
			if f.DownBytes, err = d.varint(); err != nil {
				return err
			}
			if f.UpPkts, err = d.varint(); err != nil {
				return err
			}
			if f.DownPkts, err = d.varint(); err != nil {
				return err
			}
			if f.Conns, err = d.varint(); err != nil {
				return err
			}
			rows = append(rows, f)
		}
		d.flows = rows
		p.Flows = rows
	case KindThroughput:
		n, err := d.count()
		if err != nil {
			return err
		}
		rows := d.throughput[:0]
		for i := 0; i < n; i++ {
			var s dataset.ThroughputSample
			if s.RouterID, err = d.ref(); err != nil {
				return err
			}
			if s.Minute, err = d.time(); err != nil {
				return err
			}
			if s.Dir, err = d.ref(); err != nil {
				return err
			}
			if s.PeakBps, err = d.f64(); err != nil {
				return err
			}
			if s.TotalBytes, err = d.varint(); err != nil {
				return err
			}
			rows = append(rows, s)
		}
		d.throughput = rows
		p.Throughput = rows
	default: // KindRaw: zero-copy alias into the input buffer
		n, err := d.count()
		if err != nil {
			return err
		}
		if p.Raw, err = d.bytes(n); err != nil {
			return err
		}
	}
	return nil
}

func (d *Decoder) corrupt(what string) error {
	return fmt.Errorf("wire: corrupt batch: bad %s at offset %d", what, d.off)
}

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.corrupt("uvarint")
	}
	d.off += n
	return v, nil
}

func (d *Decoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, d.corrupt("varint")
	}
	d.off += n
	return v, nil
}

// count reads a element/length count and bounds it by the bytes left in
// the buffer (every counted element costs at least one byte), so forged
// counts cannot drive huge allocations.
func (d *Decoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.data)-d.off) {
		return 0, d.corrupt("count")
	}
	return int(v), nil
}

func (d *Decoder) intField() (int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

func (d *Decoder) bytes(n int) ([]byte, error) {
	if n > len(d.data)-d.off {
		return nil, d.corrupt("length")
	}
	b := d.data[d.off : d.off+n : d.off+n]
	d.off += n
	return b, nil
}

// str reads a length-prefixed string, copying out of the input buffer
// (strings may be retained by the store past the buffer's lifetime).
func (d *Decoder) str() (string, error) {
	n, err := d.count()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Dictionary-literal interning bounds: strings longer than
// internMaxLen stay per-batch copies, and the cache holds at most
// internMaxEntries strings (≤1 MiB) before being cleared.
const (
	internMaxLen     = 256
	internMaxEntries = 4096
)

// internStr reads a length-prefixed string like str, but serves
// repeated values from the cross-batch intern cache without copying.
// Only dictionary literals come through here — item keys are unique by
// design and would only churn the cache.
func (d *Decoder) internStr() (string, error) {
	n, err := d.count()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(n)
	if err != nil {
		return "", err
	}
	if len(b) == 0 || len(b) > internMaxLen {
		return string(b), nil
	}
	if s, ok := d.interned[string(b)]; ok { // no alloc: map index on string(b)
		return s, nil
	}
	if len(d.interned) >= internMaxEntries {
		clear(d.interned)
	}
	if d.interned == nil {
		d.interned = make(map[string]string)
	}
	s := string(b)
	d.interned[s] = s
	return s, nil
}

// ref resolves one dictionary-coded string: 0 introduces a literal (and
// interns it), v>0 reuses entry v-1. Each distinct string is copied
// exactly once per batch, however many rows carry it — and at most once
// per pooled decoder lifetime when it fits the intern cache.
func (d *Decoder) ref() (string, error) {
	v, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if v == 0 {
		s, err := d.internStr()
		if err != nil {
			return "", err
		}
		d.dict = append(d.dict, s)
		return s, nil
	}
	if v > uint64(len(d.dict)) {
		return "", d.corrupt("dictionary reference")
	}
	return d.dict[v-1], nil
}

func (d *Decoder) f64() (float64, error) {
	if len(d.data)-d.off < 8 {
		return 0, d.corrupt("float64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v, nil
}

func (d *Decoder) mac() (mac.Addr, error) {
	var a mac.Addr
	if len(d.data)-d.off < len(a) {
		return a, d.corrupt("mac")
	}
	copy(a[:], d.data[d.off:])
	d.off += len(a)
	return a, nil
}

// time reads one link of the delta chain. Decoded times are UTC, like
// every timestamp the JSON path parses from RFC 3339 "Z" bodies, so the
// two decode paths yield identical rows.
func (d *Decoder) time() (time.Time, error) {
	delta, err := d.varint()
	if err != nil {
		return time.Time{}, err
	}
	if delta == math.MinInt64 {
		return time.Time{}, nil
	}
	d.prev += delta // wrapping, mirrors the encoder exactly
	return time.Unix(0, d.prev).UTC(), nil
}
