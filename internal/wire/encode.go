package wire

import (
	"encoding/binary"
	"math"
	"time"
)

// AppendBatch encodes a whole batch onto dst and returns the extended
// buffer. Callers on a delivery loop pass last round's buffer back in
// (sliced to [:0]) to amortize the allocation. Items whose payload kind
// disagrees with KindFor(Endpoint) must use KindRaw; PayloadFromJSON
// guarantees that invariant for transcoded items.
func AppendBatch(dst []byte, items []Item) []byte {
	e := encoder{buf: append(dst, magic...), dict: make(map[string]uint64, 16)}
	e.buf = binary.AppendUvarint(e.buf, uint64(len(items)))
	for i := range items {
		e.item(&items[i])
	}
	return e.buf
}

// encoder carries the per-batch dictionary and timestamp chain.
type encoder struct {
	buf  []byte
	dict map[string]uint64
	prev int64
}

func (e *encoder) item(it *Item) {
	meta := uint64(it.Payload.Kind)
	if it.Trace != nil {
		meta |= 1 << 3
	}
	e.buf = binary.AppendUvarint(e.buf, meta)
	if it.Payload.Kind == KindRaw {
		e.ref(it.Endpoint)
	}
	e.str(it.Key)
	if it.Trace != nil {
		e.ref(it.Trace.Router)
		e.buf = binary.AppendUvarint(e.buf, uint64(len(it.Trace.Spans)))
		for _, sp := range it.Trace.Spans {
			e.ref(sp.Name)
			e.ref(sp.Status)
			e.time(sp.Start)
			e.time(sp.End)
			e.buf = binary.AppendUvarint(e.buf, uint64(len(sp.Attrs)))
			for _, a := range sp.Attrs {
				e.ref(a.K)
				e.ref(a.V)
			}
		}
	}
	e.payload(&it.Payload)
}

func (e *encoder) payload(p *Payload) {
	switch p.Kind {
	case KindUptime:
		e.ref(p.Uptime.RouterID)
		e.time(p.Uptime.ReportedAt)
		e.varint(int64(p.Uptime.Uptime))
	case KindCapacity:
		e.ref(p.Capacity.RouterID)
		e.time(p.Capacity.MeasuredAt)
		e.f64(p.Capacity.UpBps)
		e.f64(p.Capacity.DownBps)
	case KindDevices:
		e.ref(p.Count.RouterID)
		e.time(p.Count.At)
		e.varint(int64(p.Count.Wired))
		e.varint(int64(p.Count.W24))
		e.varint(int64(p.Count.W5))
		e.buf = binary.AppendUvarint(e.buf, uint64(len(p.Sightings)))
		for _, s := range p.Sightings {
			e.ref(s.RouterID)
			e.time(s.At)
			e.buf = append(e.buf, s.Device[:]...)
			e.varint(int64(s.Kind))
		}
	case KindWiFi:
		e.buf = binary.AppendUvarint(e.buf, uint64(len(p.WiFi)))
		for _, s := range p.WiFi {
			e.ref(s.RouterID)
			e.time(s.At)
			e.ref(s.Band)
			e.varint(int64(s.Channel))
			e.varint(int64(s.VisibleAPs))
			e.varint(int64(s.Clients))
		}
	case KindFlows:
		e.buf = binary.AppendUvarint(e.buf, uint64(len(p.Flows)))
		for _, f := range p.Flows {
			e.ref(f.RouterID)
			e.buf = append(e.buf, f.Device[:]...)
			e.ref(f.Domain)
			e.ref(f.Proto)
			e.time(f.First)
			e.time(f.Last)
			e.varint(f.UpBytes)
			e.varint(f.DownBytes)
			e.varint(f.UpPkts)
			e.varint(f.DownPkts)
			e.varint(f.Conns)
		}
	case KindThroughput:
		e.buf = binary.AppendUvarint(e.buf, uint64(len(p.Throughput)))
		for _, s := range p.Throughput {
			e.ref(s.RouterID)
			e.time(s.Minute)
			e.ref(s.Dir)
			e.f64(s.PeakBps)
			e.varint(s.TotalBytes)
		}
	default: // KindRaw
		e.buf = binary.AppendUvarint(e.buf, uint64(len(p.Raw)))
		e.buf = append(e.buf, p.Raw...)
	}
}

// ref dictionary-codes a string: entry v-1 when seen before, else a 0
// marker plus the literal, which is assigned the next index.
func (e *encoder) ref(s string) {
	if idx, ok := e.dict[s]; ok {
		e.buf = binary.AppendUvarint(e.buf, idx+1)
		return
	}
	e.dict[s] = uint64(len(e.dict))
	e.buf = binary.AppendUvarint(e.buf, 0)
	e.str(s)
}

func (e *encoder) str(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// time appends one link of the batch-wide timestamp delta chain; the
// zero time is the math.MinInt64 sentinel and leaves the chain as is.
//
// A non-zero instant whose delta lands exactly on the sentinel is
// nudged forward 1 ns. Payload times never get here — PayloadFromJSON's
// timeEncodable guard confines them to a range whose deltas cannot
// reach MinInt64 — but span times come straight from client clocks, and
// without the nudge such a delta would decode as the zero time AND
// leave the decoder's chain un-advanced while the encoder's moved,
// skewing every later timestamp in the batch.
func (e *encoder) time(t time.Time) {
	if t.IsZero() {
		e.buf = binary.AppendVarint(e.buf, math.MinInt64)
		return
	}
	n := t.UnixNano()
	if n-e.prev == math.MinInt64 {
		n++
	}
	e.buf = binary.AppendVarint(e.buf, n-e.prev)
	e.prev = n
}
