package wire

import (
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/mac"
	"natpeek/internal/trace"
)

func t0() time.Time { return time.Date(2013, 4, 1, 12, 0, 0, 0, time.UTC) }

func sampleItems() []Item {
	at := t0()
	dev := mac.Addr{0xaa, 0xbb, 0xcc, 0x01, 0x02, 0x03}
	return []Item{
		{
			Endpoint: "/v1/uptime",
			Key:      "pfx:nonce:/v1/uptime:1",
			Payload: Payload{Kind: KindUptime, Uptime: dataset.UptimeReport{
				RouterID: "router-01", ReportedAt: at, Uptime: 36 * time.Hour,
			}},
			Trace: &trace.Wire{Router: "router-01", Spans: []trace.Span{
				{Name: "spool.queued", Status: "ok", Start: at.Add(-3 * time.Second), End: at.Add(-1 * time.Second)},
				{Name: "spool.send", Status: "", Start: at.Add(-time.Second), Attrs: []trace.Attr{{K: "attempt", V: "1"}}},
			}},
		},
		{
			Endpoint: "/v1/capacity",
			Key:      "pfx:nonce:/v1/capacity:2",
			Payload: Payload{Kind: KindCapacity, Capacity: dataset.CapacityMeasure{
				RouterID: "router-01", MeasuredAt: at.Add(time.Minute), UpBps: 1.5e6, DownBps: 12.25e6,
			}},
		},
		{
			Endpoint: "/v1/devices",
			Key:      "pfx:nonce:/v1/devices:3",
			Payload: Payload{Kind: KindDevices,
				Count: dataset.DeviceCount{RouterID: "router-02", At: at, Wired: 2, W24: 3, W5: 1},
				Sightings: []dataset.DeviceSighting{
					{RouterID: "router-02", At: at, Device: dev, Kind: dataset.Wireless24},
					{RouterID: "router-02", At: at.Add(time.Second), Device: dev, Kind: dataset.Wired},
				},
			},
		},
		{
			Endpoint: "/v1/wifi",
			Key:      "pfx:nonce:/v1/wifi:4",
			Payload: Payload{Kind: KindWiFi, WiFi: []dataset.WiFiScan{
				{RouterID: "router-02", At: at, Band: "2.4GHz", Channel: 6, VisibleAPs: 9, Clients: 3},
				{RouterID: "router-02", At: at, Band: "5GHz", Channel: 36, VisibleAPs: 2, Clients: 1},
			}},
		},
		{
			Endpoint: "/v1/traffic/flows",
			Key:      "pfx:nonce:/v1/traffic/flows:5",
			Payload: Payload{Kind: KindFlows, Flows: []dataset.FlowRecord{
				{RouterID: "router-01", Device: dev, Domain: "video.example.com", Proto: "tcp",
					First: at, Last: at.Add(90 * time.Second),
					UpBytes: 1 << 20, DownBytes: 50 << 20, UpPkts: 900, DownPkts: 36000, Conns: 2},
				{RouterID: "router-01", Device: dev, Domain: "dns.example.com", Proto: "udp",
					First: at, Last: at, UpBytes: 80, DownBytes: 120, UpPkts: 1, DownPkts: 1, Conns: 1},
			}},
		},
		{
			Endpoint: "/v1/traffic/throughput",
			Key:      "pfx:nonce:/v1/traffic/throughput:6",
			Payload: Payload{Kind: KindThroughput, Throughput: []dataset.ThroughputSample{
				{RouterID: "router-01", Minute: at.Truncate(time.Minute), Dir: "down", PeakBps: 4.2e6, TotalBytes: 9 << 20},
			}},
		},
		{
			Endpoint: "/v1/register",
			Key:      "",
			Payload:  Payload{Kind: KindRaw, Raw: []byte(`{"router_id":"router-01","country":"US"}`)},
		},
	}
}

// decodeAll drains a batch into deep-copied items (the decoder's scratch
// reuse means callers who retain items across Next must copy, exactly as
// the production ingest path does).
func decodeAll(t *testing.T, buf []byte) []Item {
	t.Helper()
	var d Decoder
	if err := d.Reset(buf); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var out []Item
	var it Item
	for {
		err := d.Next(&it)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, copyItem(it))
	}
}

func copyItem(it Item) Item {
	cp := it
	cp.Payload.Raw = append([]byte(nil), it.Payload.Raw...)
	if it.Payload.Kind == KindRaw && it.Payload.Raw == nil {
		cp.Payload.Raw = []byte{}
	}
	cp.Payload.Sightings = append([]dataset.DeviceSighting(nil), it.Payload.Sightings...)
	cp.Payload.WiFi = append([]dataset.WiFiScan(nil), it.Payload.WiFi...)
	cp.Payload.Flows = append([]dataset.FlowRecord(nil), it.Payload.Flows...)
	cp.Payload.Throughput = append([]dataset.ThroughputSample(nil), it.Payload.Throughput...)
	if it.Trace != nil {
		w := trace.Wire{TraceID: it.Trace.TraceID, Router: it.Trace.Router,
			Spans: append([]trace.Span(nil), it.Trace.Spans...)}
		cp.Trace = &w
	}
	return cp
}

// itemsEqual compares via JSON so time.Time values are compared by
// instant+zone text, not by internal representation.
func itemsEqual(t *testing.T, want, got []Item) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("item count: want %d got %d", len(want), len(got))
	}
	for i := range want {
		wj, err := json.Marshal(struct {
			Endpoint, Key string
			Payload       *Payload
			Trace         *trace.Wire
		}{want[i].Endpoint, want[i].Key, &want[i].Payload, want[i].Trace})
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(struct {
			Endpoint, Key string
			Payload       *Payload
			Trace         *trace.Wire
		}{got[i].Endpoint, got[i].Key, &got[i].Payload, got[i].Trace})
		if err != nil {
			t.Fatal(err)
		}
		if string(wj) != string(gj) {
			t.Errorf("item %d mismatch:\nwant %s\ngot  %s", i, wj, gj)
		}
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	items := sampleItems()
	buf := AppendBatch(nil, items)
	got := decodeAll(t, buf)
	itemsEqual(t, items, got)
}

func TestRoundTripPreservesKeyBytes(t *testing.T) {
	key := "pfx:n\x00nce:/v1/uptime:\xff7"
	items := []Item{{Endpoint: "/v1/uptime", Key: key,
		Payload: Payload{Kind: KindUptime, Uptime: dataset.UptimeReport{RouterID: "r", ReportedAt: t0()}}}}
	got := decodeAll(t, AppendBatch(nil, items))
	if got[0].Key != key {
		t.Fatalf("key not byte-identical: %q != %q", got[0].Key, key)
	}
}

func TestRoundTripZeroAndOpenSpanTimes(t *testing.T) {
	at := t0()
	items := []Item{{
		Endpoint: "/v1/uptime", Key: "k",
		Payload: Payload{Kind: KindUptime, Uptime: dataset.UptimeReport{RouterID: "r", ReportedAt: at}},
		Trace: &trace.Wire{Router: "r", Spans: []trace.Span{
			{Name: "open", Status: "", Start: at}, // zero End: still-open span
			{Name: "both-zero", Status: "x"},      // fully zero span times
			{Name: "after", Status: "ok", Start: at.Add(time.Second), End: at.Add(2 * time.Second)},
		}},
	}}
	got := decodeAll(t, AppendBatch(nil, items))
	sp := got[0].Trace.Spans
	if !sp[0].End.IsZero() || !sp[1].Start.IsZero() || !sp[1].End.IsZero() {
		t.Fatalf("zero times did not survive: %+v", sp)
	}
	if !sp[2].Start.Equal(at.Add(time.Second)) || !sp[2].End.Equal(at.Add(2*time.Second)) {
		// the zero sentinel must not have advanced the delta chain
		t.Fatalf("delta chain corrupted after zero-time sentinel: %+v", sp[2])
	}
	if !sp[0].Start.Equal(at) {
		t.Fatalf("span start: %v != %v", sp[0].Start, at)
	}
}

func TestRoundTripExtremeValues(t *testing.T) {
	at := time.Date(1900, 1, 1, 0, 0, 0, 1, time.UTC)
	late := time.Date(2100, 12, 31, 23, 59, 59, 999999999, time.UTC)
	items := []Item{
		{Endpoint: "/v1/uptime", Key: "a", Payload: Payload{Kind: KindUptime,
			Uptime: dataset.UptimeReport{RouterID: "r", ReportedAt: at, Uptime: -time.Hour}}},
		{Endpoint: "/v1/capacity", Key: "b", Payload: Payload{Kind: KindCapacity,
			Capacity: dataset.CapacityMeasure{RouterID: "r", MeasuredAt: late, UpBps: -0.0, DownBps: 1e308}}},
	}
	got := decodeAll(t, AppendBatch(nil, items))
	itemsEqual(t, items, got)
}

func TestDictionarySharing(t *testing.T) {
	// 64 rows all naming one router: the batch must carry the string once.
	var rows []dataset.WiFiScan
	for i := 0; i < 64; i++ {
		rows = append(rows, dataset.WiFiScan{RouterID: "router-with-a-long-name-0001", At: t0(), Band: "2.4GHz", Channel: 6})
	}
	buf := AppendBatch(nil, []Item{{Endpoint: "/v1/wifi", Key: "k", Payload: Payload{Kind: KindWiFi, WiFi: rows}}})
	if n := strings.Count(string(buf), "router-with-a-long-name-0001"); n != 1 {
		t.Fatalf("router ID appears %d times in encoding, want 1", n)
	}
	got := decodeAll(t, buf)
	if len(got[0].Payload.WiFi) != 64 || got[0].Payload.WiFi[63].RouterID != "router-with-a-long-name-0001" {
		t.Fatalf("dictionary decode wrong: %+v", got[0].Payload.WiFi[63])
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	buf := AppendBatch(nil, sampleItems())
	buf = append(buf, "extra"...)
	var d Decoder
	if err := d.Reset(buf); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var it Item
	var err error
	for err == nil {
		err = d.Next(&it)
	}
	if err == io.EOF {
		t.Fatal("trailing bytes after batch were silently accepted")
	}
	if !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestHostileInputs(t *testing.T) {
	good := AppendBatch(nil, sampleItems())
	cases := map[string][]byte{
		"empty":          {},
		"short magic":    []byte("NP"),
		"wrong magic":    []byte("JSON[]"),
		"header only":    []byte("NPB1"),
		"count too big":  append([]byte("NPB1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"truncated item": good[:len(good)/2],
		"truncated tail": good[:len(good)-1],
	}
	for name, buf := range cases {
		t.Run(name, func(t *testing.T) {
			var d Decoder
			err := d.Reset(buf)
			var it Item
			for err == nil {
				err = d.Next(&it)
			}
			if err == io.EOF {
				t.Fatalf("corrupt input %q decoded cleanly", name)
			}
		})
	}
}

func TestDecoderReuseAcrossBatches(t *testing.T) {
	// A pooled decoder must not leak dictionary or delta state between
	// batches: decode A, then B, and B must match a fresh decode.
	a := AppendBatch(nil, sampleItems())
	itemsB := []Item{{Endpoint: "/v1/wifi", Key: "b", Payload: Payload{Kind: KindWiFi,
		WiFi: []dataset.WiFiScan{{RouterID: "other", At: t0().Add(time.Hour), Band: "5GHz", Channel: 100}}}}}
	b := AppendBatch(nil, itemsB)

	var d Decoder
	var it Item
	if err := d.Reset(a); err != nil {
		t.Fatal(err)
	}
	for {
		if err := d.Next(&it); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Reset(b); err != nil {
		t.Fatal(err)
	}
	var got []Item
	for {
		err := d.Next(&it)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, copyItem(it))
	}
	itemsEqual(t, itemsB, got)
}

func TestPayloadFromJSONTyped(t *testing.T) {
	body := []byte(`{"RouterID":"r1","ReportedAt":"2013-04-01T12:00:00Z","Uptime":3600000000000}`)
	p := PayloadFromJSON("/v1/uptime", body)
	if p.Kind != KindUptime {
		t.Fatalf("kind = %v, want KindUptime", p.Kind)
	}
	var want dataset.UptimeReport
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Uptime, want) {
		t.Fatalf("payload %+v != %+v", p.Uptime, want)
	}
}

func TestPayloadFromJSONFallsBackToRaw(t *testing.T) {
	cases := map[string]struct {
		endpoint string
		body     string
	}{
		"unknown endpoint": {"/v1/register", `{"RouterID":"r"}`},
		"malformed body":   {"/v1/uptime", `{"RouterID":`},
		"wrong shape":      {"/v1/wifi", `{"not":"an array"}`},
		"far-future time":  {"/v1/uptime", `{"RouterID":"r","ReportedAt":"9999-01-01T00:00:00Z"}`},
		"ancient time":     {"/v1/capacity", `{"RouterID":"r","MeasuredAt":"0001-01-01T00:00:00.000000001Z"}`},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			p := PayloadFromJSON(tc.endpoint, []byte(tc.body))
			if p.Kind != KindRaw {
				t.Fatalf("kind = %v, want KindRaw", p.Kind)
			}
			if string(p.Raw) != tc.body {
				t.Fatalf("raw body not verbatim: %q", p.Raw)
			}
		})
	}
}

func TestKindEndpointMapping(t *testing.T) {
	for k := KindUptime; k <= kindMax; k++ {
		ep := k.Endpoint()
		if ep == "" {
			t.Fatalf("kind %d has no endpoint", k)
		}
		if KindFor(ep) != k {
			t.Fatalf("KindFor(%q) = %v, want %v", ep, KindFor(ep), k)
		}
	}
	if KindFor("/v1/register") != KindRaw || KindRaw.Endpoint() != "" {
		t.Fatal("raw mapping wrong")
	}
}

func TestRouterMatchesJSONAppliers(t *testing.T) {
	items := sampleItems()
	for i := range items {
		p := &items[i].Payload
		if p.Kind == KindRaw {
			continue
		}
		body, err := p.JSONBody()
		if err != nil {
			t.Fatal(err)
		}
		rt := PayloadFromJSON(items[i].Endpoint, body)
		if rt.Kind != p.Kind {
			t.Fatalf("JSONBody did not transcode back: %v vs %v", rt.Kind, p.Kind)
		}
		if rt.Router() != p.Router() {
			t.Fatalf("router mismatch after JSON round trip: %q vs %q", rt.Router(), p.Router())
		}
	}
	empty := Payload{Kind: KindWiFi}
	if empty.Router() != "" {
		t.Fatal("empty slice payload must route to empty router")
	}
}

func TestRowsCount(t *testing.T) {
	for _, it := range sampleItems() {
		p := it.Payload
		want := 0
		switch p.Kind {
		case KindUptime, KindCapacity:
			want = 1
		case KindDevices:
			want = 1 + len(p.Sightings)
		case KindWiFi:
			want = len(p.WiFi)
		case KindFlows:
			want = len(p.Flows)
		case KindThroughput:
			want = len(p.Throughput)
		}
		if got := p.Rows(); got != want {
			t.Fatalf("%s Rows() = %d, want %d", it.Endpoint, got, want)
		}
	}
}

func TestEncodingIsCompact(t *testing.T) {
	// Sanity-check the point of the exercise: the binary form of a
	// realistic batch is several times smaller than its JSON form.
	items := sampleItems()
	bin := AppendBatch(nil, items)
	var jsonSize int
	for i := range items {
		b, err := items[i].Payload.JSONBody()
		if err != nil {
			t.Fatal(err)
		}
		jsonSize += len(b) + len(items[i].Endpoint) + len(items[i].Key) + 64 // envelope overhead
	}
	if len(bin)*2 >= jsonSize {
		t.Fatalf("binary %dB not meaningfully smaller than JSON ~%dB", len(bin), jsonSize)
	}
}
