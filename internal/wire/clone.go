package wire

import (
	"natpeek/internal/dataset"
	"natpeek/internal/trace"
)

// Clone deep-copies an item out of a Decoder's scratch storage. Decoded
// payload slices and Raw bytes are only valid until the next Next or
// Reset call; anything that regroups or re-encodes items later — the
// cluster front splitting one batch across owner nodes — must clone
// them first. Span attrs are already freshly allocated per decode (the
// recorder retains them), so the span slice copy is shallow.
func (it *Item) Clone() Item {
	cp := *it
	cp.Payload.Raw = append([]byte(nil), it.Payload.Raw...)
	cp.Payload.Sightings = append([]dataset.DeviceSighting(nil), it.Payload.Sightings...)
	cp.Payload.WiFi = append([]dataset.WiFiScan(nil), it.Payload.WiFi...)
	cp.Payload.Flows = append([]dataset.FlowRecord(nil), it.Payload.Flows...)
	cp.Payload.Throughput = append([]dataset.ThroughputSample(nil), it.Payload.Throughput...)
	if it.Trace != nil {
		w := trace.Wire{TraceID: it.Trace.TraceID, Router: it.Trace.Router,
			Spans: append([]trace.Span(nil), it.Trace.Spans...)}
		cp.Trace = &w
	}
	return cp
}
