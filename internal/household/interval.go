package household

import "time"

// Interval is a half-open time span [Start, End).
type Interval struct {
	Start time.Time
	End   time.Time
}

// Duration returns the span length.
func (iv Interval) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Intersect clips two interval lists (both sorted, non-overlapping) to
// their common spans. It is used to combine "router powered on" with
// "ISP link up" into "heartbeats reachable".
func Intersect(a, b []Interval) []Interval {
	var out []Interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		start := a[i].Start
		if b[j].Start.After(start) {
			start = b[j].Start
		}
		end := a[i].End
		if b[j].End.Before(end) {
			end = b[j].End
		}
		if end.After(start) {
			out = append(out, Interval{start, end})
		}
		if a[i].End.Before(b[j].End) {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract removes the (sorted, non-overlapping) spans in cut from base
// (also sorted, non-overlapping).
func Subtract(base, cut []Interval) []Interval {
	var out []Interval
	j := 0
	for _, iv := range base {
		cur := iv.Start
		for j < len(cut) && !cut[j].End.After(cur) {
			j++
		}
		k := j
		for k < len(cut) && cut[k].Start.Before(iv.End) {
			if cut[k].Start.After(cur) {
				out = append(out, Interval{cur, cut[k].Start})
			}
			if cut[k].End.After(cur) {
				cur = cut[k].End
			}
			k++
		}
		if cur.Before(iv.End) {
			out = append(out, Interval{cur, iv.End})
		}
	}
	return out
}

// TotalDuration sums the lengths of the intervals.
func TotalDuration(ivs []Interval) time.Duration {
	var d time.Duration
	for _, iv := range ivs {
		d += iv.Duration()
	}
	return d
}

// CoveredAt reports whether t falls in any interval of the sorted list.
func CoveredAt(ivs []Interval, t time.Time) bool {
	for _, iv := range ivs {
		if iv.Contains(t) {
			return true
		}
		if iv.Start.After(t) {
			return false
		}
	}
	return false
}

// Merge normalizes an interval list: sorts by start and coalesces
// overlapping or touching spans.
func Merge(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]Interval(nil), ivs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Start.Before(sorted[j-1].Start); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if !iv.Start.After(last.End) {
			if iv.End.After(last.End) {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Clip restricts the intervals to [from, to).
func Clip(ivs []Interval, from, to time.Time) []Interval {
	var out []Interval
	for _, iv := range ivs {
		s, e := iv.Start, iv.End
		if s.Before(from) {
			s = from
		}
		if e.After(to) {
			e = to
		}
		if e.After(s) {
			out = append(out, Interval{s, e})
		}
	}
	return out
}
