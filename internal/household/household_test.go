package household

import (
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/geo"
	"natpeek/internal/heartbeat"
	"natpeek/internal/rng"
	"natpeek/internal/stats"
)

var (
	root    = rng.New(42)
	hFrom   = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)
	hTo     = time.Date(2012, 12, 1, 0, 0, 0, 0, time.UTC) // 2 months for speed
	country = func(code string) geo.Country {
		c, ok := geo.Lookup(code)
		if !ok {
			panic(code)
		}
		return c
	}
)

func genMany(code string, n int) []*Profile {
	out := make([]*Profile, n)
	for i := range out {
		out[i] = Generate(country(code), i, root)
	}
	return out
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(country("US"), 3, rng.New(42))
	b := Generate(country("US"), 3, rng.New(42))
	if a.ID != b.ID || len(a.Devices) != len(b.Devices) || a.DownBps != b.DownBps {
		t.Fatal("generation not deterministic")
	}
	for i := range a.Devices {
		if a.Devices[i].HW != b.Devices[i].HW || a.Devices[i].Kind != b.Devices[i].Kind {
			t.Fatalf("device %d differs", i)
		}
	}
	ivA := a.PowerOnIntervals(hFrom, hTo)
	ivB := b.PowerOnIntervals(hFrom, hTo)
	if len(ivA) != len(ivB) {
		t.Fatal("power intervals not deterministic")
	}
}

func TestGenerationStableUnderSiblings(t *testing.T) {
	// Generating home 5 must be identical whether or not homes 0–4 were
	// generated first (the splittable-stream property).
	fresh := Generate(country("IN"), 5, rng.New(42))
	r := rng.New(42)
	for i := 0; i < 5; i++ {
		Generate(country("IN"), i, r)
	}
	after := Generate(country("IN"), 5, r)
	if fresh.DownBps != after.DownBps || len(fresh.Devices) != len(after.Devices) {
		t.Fatal("sibling generation perturbed the draw")
	}
}

func TestPowerIntervalsIdempotent(t *testing.T) {
	p := Generate(country("CN"), 1, root)
	a := p.PowerOnIntervals(hFrom, hTo)
	b := p.PowerOnIntervals(hFrom, hTo)
	if len(a) != len(b) {
		t.Fatal("not idempotent")
	}
	for i := range a {
		if !a[i].Start.Equal(b[i].Start) || !a[i].End.Equal(b[i].End) {
			t.Fatal("intervals differ between calls")
		}
	}
}

func TestIntervalsSortedAndInWindow(t *testing.T) {
	for _, code := range []string{"US", "IN", "CN", "PK"} {
		for i := 0; i < 10; i++ {
			p := Generate(country(code), i, root)
			for _, ivs := range [][]Interval{
				p.PowerOnIntervals(hFrom, hTo),
				p.ISPOutageIntervals(hFrom, hTo),
				p.OnlineIntervals(hFrom, hTo),
			} {
				prev := hFrom
				for _, iv := range ivs {
					if iv.Start.Before(prev) || !iv.End.After(iv.Start) || iv.End.After(hTo) {
						t.Fatalf("%s/%d: bad interval %v", code, i, iv)
					}
					prev = iv.End
				}
			}
		}
	}
}

// uptimeFraction simulates the §4.2 uptime statistic for one home.
func uptimeFraction(p *Profile) float64 {
	on := p.OnlineIntervals(hFrom, hTo)
	return float64(TotalDuration(on)) / float64(hTo.Sub(hFrom))
}

func medianUptime(code string, n int) float64 {
	var ups []float64
	for i := 0; i < n; i++ {
		ups = append(ups, uptimeFraction(Generate(country(code), i, root)))
	}
	return stats.Median(ups)
}

func TestUptimeCalibrationUS(t *testing.T) {
	got := medianUptime("US", 40)
	// Paper: 98.25%. Accept a band.
	if got < 0.955 || got > 0.999 {
		t.Fatalf("US median uptime = %.4f, want ≈0.98", got)
	}
}

func TestUptimeCalibrationIndia(t *testing.T) {
	got := medianUptime("IN", 40)
	// Paper: 76.01%.
	if got < 0.62 || got > 0.88 {
		t.Fatalf("IN median uptime = %.4f, want ≈0.76", got)
	}
}

func TestUptimeCalibrationSouthAfrica(t *testing.T) {
	got := medianUptime("ZA", 40)
	// Paper: 85.57%.
	if got < 0.75 || got > 0.95 {
		t.Fatalf("ZA median uptime = %.4f, want ≈0.86", got)
	}
}

func TestUptimeOrdering(t *testing.T) {
	us := medianUptime("US", 30)
	za := medianUptime("ZA", 30)
	in := medianUptime("IN", 30)
	if !(us > za && za > in) {
		t.Fatalf("uptime ordering violated: US %.3f ZA %.3f IN %.3f", us, za, in)
	}
}

// downtimesPerDay counts gaps >10 min the way the heartbeat analysis does.
func downtimesPerDay(p *Profile) float64 {
	online := p.OnlineIntervals(hFrom, hTo)
	// Convert to synthetic heartbeat minutes: use interval edges directly
	// via GapsIn on interval-start beacons — cheaper: count gaps between
	// online intervals longer than 10 min.
	days := hTo.Sub(hFrom).Hours() / 24
	gaps := 0
	prevEnd := hFrom
	for _, iv := range online {
		if iv.Start.Sub(prevEnd) > 10*time.Minute {
			gaps++
		}
		prevEnd = iv.End
	}
	if hTo.Sub(prevEnd) > 10*time.Minute {
		gaps++
	}
	return float64(gaps) / days
}

func TestDowntimeFrequencyCalibration(t *testing.T) {
	med := func(code string, n int) float64 {
		var xs []float64
		for i := 0; i < n; i++ {
			xs = append(xs, downtimesPerDay(Generate(country(code), i, root)))
		}
		return stats.Median(xs)
	}
	us := med("US", 40)
	in := med("IN", 40)
	pk := med("PK", 40)
	// Paper: developed median time between downtimes > 1 month
	// (≲0.033/day); developing < 1 day (≳0.4/day); Pakistan ≈2/day.
	if us > 0.12 {
		t.Fatalf("US downtimes/day = %.3f, want <0.12", us)
	}
	if in < 0.4 {
		t.Fatalf("IN downtimes/day = %.3f, want >0.4", in)
	}
	if pk < 1.0 || pk > 3.5 {
		t.Fatalf("PK downtimes/day = %.3f, want ≈2", pk)
	}
	if !(pk > in && in > us) {
		t.Fatalf("ordering violated: PK %.2f IN %.2f US %.2f", pk, in, us)
	}
}

func TestApplianceHomeIsOffAtNight(t *testing.T) {
	// Find an appliance-mode Chinese home and check the Fig. 6b shape.
	var p *Profile
	for i := 0; i < 50; i++ {
		c := Generate(country("CN"), i, root)
		if c.Appliance {
			p = c
			break
		}
	}
	if p == nil {
		t.Fatal("no appliance home in 50 CN draws (prob 0.5 each)")
	}
	on := p.PowerOnIntervals(hFrom, hFrom.Add(14*24*time.Hour))
	frac := float64(TotalDuration(on)) / float64(14*24*time.Hour)
	if frac < 0.08 || frac > 0.5 {
		t.Fatalf("appliance on-fraction = %.3f, want evening-only (~0.15–0.4)", frac)
	}
	// Off at 4am local every day.
	for d := 0; d < 14; d++ {
		at := hFrom.Add(time.Duration(d)*24*time.Hour + 4*time.Hour).Add(-p.Country.UTCOffset)
		if CoveredAt(on, at) {
			t.Fatalf("appliance router on at 4am local (day %d)", d)
		}
	}
}

func TestDeviceCountDistribution(t *testing.T) {
	var counts []float64
	atLeast5 := 0
	n := 300
	for i := 0; i < n; i++ {
		p := Generate(country("US"), i, root)
		counts = append(counts, float64(len(p.Devices)))
		if len(p.Devices) >= 5 {
			atLeast5++
		}
	}
	mean := stats.Mean(counts)
	// Paper: average ≈7, more than half with ≥5.
	if mean < 5.5 || mean > 9 {
		t.Fatalf("mean devices = %.2f, want ≈7", mean)
	}
	if frac := float64(atLeast5) / float64(n); frac < 0.5 || frac > 0.9 {
		t.Fatalf("frac ≥5 devices = %.2f, want >0.5", frac)
	}
}

func TestDevelopedHomesHaveMoreDevices(t *testing.T) {
	devSum, dvgSum := 0, 0
	n := 200
	for i := 0; i < n; i++ {
		devSum += len(Generate(country("US"), i, root).Devices)
		dvgSum += len(Generate(country("IN"), i, root).Devices)
	}
	if devSum <= dvgSum {
		t.Fatalf("developed %d ≤ developing %d total devices", devSum, dvgSum)
	}
}

func TestWirelessOutnumbersWired(t *testing.T) {
	wired, wireless := 0, 0
	for i := 0; i < 200; i++ {
		for _, d := range Generate(country("US"), i, root).Devices {
			if d.Conn == dataset.Wired {
				wired++
			} else {
				wireless++
			}
		}
	}
	if wireless <= wired {
		t.Fatalf("wired %d ≥ wireless %d", wired, wireless)
	}
}

func TestBand24OutnumbersBand5(t *testing.T) {
	b24, b5 := 0, 0
	for i := 0; i < 200; i++ {
		for _, d := range Generate(country("US"), i, root).Devices {
			switch d.Conn {
			case dataset.Wireless24:
				b24++
			case dataset.Wireless5:
				b5++
			}
		}
	}
	if b24 <= 2*b5 {
		t.Fatalf("2.4 GHz %d not ≫ 5 GHz %d", b24, b5)
	}
}

func TestAlwaysConnectedRates(t *testing.T) {
	frac := func(code string, kind dataset.ConnKind) float64 {
		homes := 0
		n := 200
		for i := 0; i < n; i++ {
			p := Generate(country(code), i, root)
			for _, d := range p.Devices {
				wired := d.Conn == dataset.Wired
				if d.AlwaysOn && ((kind == dataset.Wired) == wired) {
					homes++
					break
				}
			}
		}
		return float64(homes) / float64(n)
	}
	devWired := frac("US", dataset.Wired)
	dvgWired := frac("IN", dataset.Wired)
	// Paper Table 5: developed 43% wired / 20% wireless; developing 12%/12%.
	if devWired < 0.25 || devWired > 0.65 {
		t.Fatalf("developed always-on-wired = %.2f, want ≈0.43", devWired)
	}
	if dvgWired > devWired/2 {
		t.Fatalf("developing always-on-wired %.2f not ≪ developed %.2f", dvgWired, devWired)
	}
}

func TestNeighborhoodCalibration(t *testing.T) {
	var dev, dvg []float64
	for i := 0; i < 200; i++ {
		dev = append(dev, float64(Generate(country("US"), i, root).NeighborAPs24))
		dvg = append(dvg, float64(Generate(country("IN"), i, root).NeighborAPs24))
	}
	devMed, dvgMed := stats.Median(dev), stats.Median(dvg)
	// Paper: developed median ≈20 visible APs; developing ≈2.
	if devMed < 10 || devMed > 30 {
		t.Fatalf("developed median APs = %v, want ≈20", devMed)
	}
	if dvgMed > 6 {
		t.Fatalf("developing median APs = %v, want ≈2", dvgMed)
	}
}

func TestLinkTiers(t *testing.T) {
	for i := 0; i < 100; i++ {
		p := Generate(country("US"), i, root)
		if p.UpBps > p.DownBps {
			t.Fatal("uplink faster than downlink")
		}
		if p.DownBps <= 0 || p.UpBps < 64e3 {
			t.Fatalf("degenerate link %v/%v", p.UpBps, p.DownBps)
		}
		if p.BufferUpBytes <= 0 {
			t.Fatal("no uplink buffer")
		}
	}
}

func TestDeviceOnlineStableWithinHour(t *testing.T) {
	p := Generate(country("US"), 0, root)
	var d *Device
	for _, dd := range p.Devices {
		if !dd.AlwaysOn {
			d = dd
			break
		}
	}
	if d == nil {
		t.Skip("all devices always-on in this draw")
	}
	at := hFrom.Add(19 * time.Hour)
	first := p.DeviceOnline(d, at)
	for m := 0; m < 60; m += 7 {
		if p.DeviceOnline(d, at.Add(time.Duration(m)*time.Minute)) != first {
			t.Fatal("presence flapped within the hour")
		}
	}
}

func TestAlwaysOnDeviceAlwaysOnline(t *testing.T) {
	p := Generate(country("US"), 1, root)
	for _, d := range p.Devices {
		if !d.AlwaysOn {
			continue
		}
		for h := 0; h < 48; h++ {
			if !p.DeviceOnline(d, hFrom.Add(time.Duration(h)*time.Hour)) {
				t.Fatal("always-on device went offline")
			}
		}
		return
	}
	t.Skip("no always-on device in this draw")
}

func TestEveningPeakPresence(t *testing.T) {
	// Aggregate weekday presence must peak in the evening vs afternoon
	// (Fig. 13a).
	evening, afternoon := 0, 0
	for i := 0; i < 60; i++ {
		p := Generate(country("US"), i, root)
		// A Tuesday.
		day := time.Date(2012, 10, 2, 0, 0, 0, 0, time.UTC).Add(-p.Country.UTCOffset)
		for _, d := range p.Devices {
			if p.DeviceOnline(d, day.Add(20*time.Hour)) {
				evening++
			}
			if p.DeviceOnline(d, day.Add(14*time.Hour)) {
				afternoon++
			}
		}
	}
	if evening <= afternoon {
		t.Fatalf("evening %d ≤ afternoon %d", evening, afternoon)
	}
}

func TestOnlineIntervalsFeedHeartbeatAnalysis(t *testing.T) {
	// End-to-end sanity: intervals → synthetic heartbeats → gap analysis
	// agrees with interval math.
	p := Generate(country("IN"), 2, root)
	to := hFrom.Add(14 * 24 * time.Hour)
	online := p.OnlineIntervals(hFrom, to)
	var beats []time.Time
	for _, iv := range online {
		for t := iv.Start; t.Before(iv.End); t = t.Add(heartbeat.Interval) {
			beats = append(beats, t)
		}
	}
	gaps := heartbeat.GapsIn(beats, hFrom, to, heartbeat.DefaultGapThreshold)
	// Every gap must correspond to real offline time.
	for _, g := range gaps {
		mid := g.Start.Add(g.Duration() / 2)
		if CoveredAt(online, mid) && g.Duration() > 12*time.Minute {
			t.Fatalf("gap %v–%v overlaps online time", g.Start, g.End)
		}
	}
}
