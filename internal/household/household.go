// Package household generates the synthetic homes that stand in for the
// paper's 126-home deployment. Every home is drawn from per-country
// behavioural models — router power habits, ISP reliability, device
// populations, wireless neighbourhoods, access-link tiers — calibrated to
// the population statistics the paper reports (§4–§6). The generation is
// deterministic per (seed, country, index): adding homes never perturbs
// existing ones, so experiments are reproducible and extensible.
package household

import (
	"fmt"
	"math"
	"time"

	"natpeek/internal/geo"
	"natpeek/internal/rng"
)

// Profile is one synthetic home.
type Profile struct {
	ID      string
	Country geo.Country

	// Appliance marks homes that power the router only while using it —
	// the §4.2 "router as home appliance" behaviour (Fig. 6b).
	Appliance bool

	// Availability model (for non-appliance downtime).
	outRatePerDay float64 // outage arrivals per day (ISP + power combined)
	durMedian     time.Duration
	durSigma      float64
	ispShare      float64 // fraction of outages where the router stays powered
	vacationRate  float64 // multi-day unplugs per day
	vacationMean  time.Duration

	// Access link.
	DownBps       float64
	UpBps         float64
	BurstBytes    int
	BufferUpBytes int
	PropDelay     time.Duration
	// UplinkSaturator marks the rare home that runs a continuous bulk
	// uploader (the §6.2 scientific-data user of Fig. 16a).
	UplinkSaturator bool

	// Wireless neighbourhood: APs visible on the default channels.
	NeighborAPs24 int
	NeighborAPs5  int

	// Devices in the home.
	Devices []*Device

	// DailyVolumeBytes is the home's mean daily traffic volume.
	DailyVolumeBytes float64

	rnd *rng.Stream
}

// Generate draws home number idx for a country. The stream must be the
// world's root stream; Generate derives its own children and never
// consumes from it.
func Generate(c geo.Country, idx int, root *rng.Stream) *Profile {
	rnd := root.Child("home-"+c.Code).ChildN("idx", idx)
	p := &Profile{
		ID:      fmt.Sprintf("bismark-%s-%03d", c.Code, idx),
		Country: c,
		rnd:     rnd,
	}
	p.drawAvailability(rnd.Child("avail"))
	p.drawLink(rnd.Child("link"))
	p.drawNeighborhood(rnd.Child("wifi"))
	p.drawDevices(rnd.Child("devices"))
	return p
}

// availTuning captures per-country availability behaviour. Values are
// calibrated so the §4 statistics come out near the paper's: US median
// uptime ≈98%, India ≈76%, South Africa ≈86%, Pakistan ≈2 downtimes/day,
// developed median time-between-downtimes over a month, developing under
// a day.
type availTuning struct {
	applianceProb float64
	outRate       float64 // median outages/day
	durMedian     time.Duration
	durSigma      float64
	vacationRate  float64
}

func tuningFor(c geo.Country) availTuning {
	switch c.Code {
	case "IN":
		return availTuning{0.30, 1.5, 60 * time.Minute, 1.4, 0.004}
	case "PK":
		return availTuning{0.25, 2.2, 60 * time.Minute, 1.35, 0.004}
	case "ZA":
		return availTuning{0.15, 1.5, 55 * time.Minute, 1.3, 0.003}
	case "CN":
		return availTuning{0.50, 0.6, 35 * time.Minute, 1.1, 0.003}
	}
	if c.Developed {
		// Rare outages; a small flaky tail (Fig. 6c's sporadic-ISP home).
		return availTuning{0.02, 0.03, 30 * time.Minute, 1.4, 0.0035}
	}
	// Generic developing-country home.
	return availTuning{0.25, 0.7, 35 * time.Minute, 1.25, 0.004}
}

func (p *Profile) drawAvailability(rnd *rng.Stream) {
	t := tuningFor(p.Country)
	p.Appliance = rnd.Bool(t.applianceProb)
	// Per-home heterogeneity: rates vary ×[0.4, 2.2) around the country
	// median; ~8% of developed homes are "flaky" with 10× the outage rate
	// (they populate the upper tail of Fig. 3).
	scale := rnd.Range(0.4, 2.2)
	if p.Country.Developed && rnd.Bool(0.08) {
		scale *= 10
	}
	// A slice of developing-country homes sit on solid urban
	// infrastructure — the paper found only ~50% of developing homes
	// with sub-3-day downtime intervals, not all of them. The poorest
	// countries (IN, PK — Fig. 5's outliers) don't get this mode.
	if !p.Country.Developed && p.Country.GDPPPP > 6000 && rnd.Bool(0.35) {
		scale *= 0.12
	}
	p.outRatePerDay = t.outRate * scale
	p.durMedian = t.durMedian
	p.durSigma = t.durSigma
	p.ispShare = rnd.Range(0.35, 0.75)
	p.vacationRate = t.vacationRate
	p.vacationMean = time.Duration(rnd.Range(36, 120)) * time.Hour
}

func (p *Profile) drawLink(rnd *rng.Stream) {
	if p.Country.Developed {
		p.DownBps = math.Min(105e6, rnd.LogNormal(math.Log(16e6), 0.8))
		p.UpBps = math.Min(20e6, rnd.LogNormal(math.Log(2e6), 0.8))
	} else {
		p.DownBps = math.Min(20e6, rnd.LogNormal(math.Log(2.5e6), 0.9))
		p.UpBps = math.Min(4e6, rnd.LogNormal(math.Log(0.5e6), 0.8))
	}
	if p.UpBps > p.DownBps {
		p.UpBps = p.DownBps / 2
	}
	if p.UpBps < 64e3 {
		p.UpBps = 64e3
	}
	// Cable tiers often burst ("PowerBoost"); DSL does not.
	if rnd.Bool(0.4) {
		p.BurstBytes = int(rnd.Range(2e6, 12e6))
	}
	// Consumer uplink buffers are bloated: hundreds of ms to seconds.
	p.BufferUpBytes = int(rnd.Range(0.5, 4) * p.UpBps / 8) // 0.5–4 s of buffering
	p.PropDelay = time.Duration(rnd.Range(5, 40)) * time.Millisecond
	p.UplinkSaturator = p.Country.Code == "US" && rnd.Bool(0.08)
	// Home daily volume: heavy-tailed, larger on faster links.
	base := 1.2e9
	if !p.Country.Developed {
		base = 0.35e9
	}
	p.DailyVolumeBytes = rnd.LogNormal(math.Log(base), 0.8)
}

func (p *Profile) drawNeighborhood(rnd *rng.Stream) {
	if p.Country.Developed {
		// Bimodal (Fig. 11): detached homes see a handful of APs, dense
		// housing sees dozens. Median lands near 20.
		if rnd.Bool(0.3) {
			p.NeighborAPs24 = rnd.Intn(4)
		} else {
			p.NeighborAPs24 = 8 + rnd.Intn(28)
		}
		p.NeighborAPs5 = rnd.Intn(4)
	} else {
		if rnd.Bool(0.55) {
			p.NeighborAPs24 = rnd.Intn(3)
		} else {
			p.NeighborAPs24 = 3 + rnd.Intn(6)
		}
		if rnd.Bool(0.8) {
			p.NeighborAPs5 = 0
		} else {
			p.NeighborAPs5 = 1 + rnd.Intn(2)
		}
	}
}

func (p *Profile) drawDevices(rnd *rng.Stream) {
	n := p.drawDeviceCount(rnd)
	kinds, weights := kindMix(p.Country.Developed)
	// Every home gets at least one personal device; the rest are drawn
	// from the kind mix.
	for i := 0; i < n; i++ {
		var kind DeviceKind
		if i == 0 {
			kind = KindLaptop
		} else {
			kind = kinds[rnd.WeightedChoice(weights)]
		}
		p.Devices = append(p.Devices, newDevice(kind, p.Country.Developed, rnd.ChildN("dev", i)))
	}
}

// drawDeviceCount targets Fig. 7: mean ≈7 devices, more than half of
// homes with ≥5, a ~20% tail of 1–2-device homes, developed homes about
// one device richer than developing ones (Fig. 8).
func (p *Profile) drawDeviceCount(rnd *rng.Stream) int {
	if rnd.Bool(0.15) {
		return 1 + rnd.Intn(2)
	}
	median := 7.0
	if !p.Country.Developed {
		median = 5.4
	}
	n := int(rnd.LogNormal(math.Log(median), 0.45) + 0.5)
	if n < 3 {
		n = 3
	}
	if n > 22 {
		n = 22
	}
	return n
}

// --- Availability interval generation -----------------------------------

// PowerOnIntervals returns when the router is powered, within [from, to).
// The draw is deterministic: calling it twice yields identical intervals.
func (p *Profile) PowerOnIntervals(from, to time.Time) []Interval {
	rnd := p.rnd.Child("power-draw")
	if p.Appliance {
		return p.applianceWindows(rnd, from, to)
	}
	on := []Interval{{from, to}}
	var off []Interval
	// Vacations / long unplugs.
	off = append(off, drawOutages(rnd.Child("vacation"), from, to, p.vacationRate,
		float64(p.vacationMean), 0.5)...)
	// Power-outage share of the outage process (the rest are ISP-side and
	// leave the router powered).
	powerRate := p.outRatePerDay * (1 - p.ispShare)
	off = append(off, drawLogNormalOutages(rnd.Child("power-out"), from, to, powerRate,
		p.durMedian, p.durSigma)...)
	// Reboots: short self-inflicted blips, a few per month.
	off = append(off, drawOutages(rnd.Child("reboot"), from, to, 0.08,
		float64(3*time.Minute), 0.4)...)
	return Subtract(on, Merge(off))
}

// ISPOutageIntervals returns when the access link is dead while the
// router may well be powered (Fig. 6c's mode). Deterministic.
func (p *Profile) ISPOutageIntervals(from, to time.Time) []Interval {
	rnd := p.rnd.Child("isp-draw")
	ispRate := p.outRatePerDay * p.ispShare
	return Merge(drawLogNormalOutages(rnd, from, to, ispRate, p.durMedian, p.durSigma))
}

// OnlineIntervals returns when heartbeats can reach the collection
// server: router powered AND link up.
func (p *Profile) OnlineIntervals(from, to time.Time) []Interval {
	return Subtract(p.PowerOnIntervals(from, to), p.ISPOutageIntervals(from, to))
}

// applianceWindows builds the Fig. 6b pattern: the router comes up in the
// evening on weekdays, for longer spans on weekends, and is otherwise
// off. Times follow the home country's local clock.
func (p *Profile) applianceWindows(rnd *rng.Stream, from, to time.Time) []Interval {
	var out []Interval
	loc := p.Country.UTCOffset
	day := from.Add(loc).Truncate(24 * time.Hour).Add(-loc) // local midnight
	for ; day.Before(to); day = day.Add(24 * time.Hour) {
		dow := day.Add(loc).Weekday()
		weekend := dow == time.Saturday || dow == time.Sunday
		r := rnd.ChildN("day", int(day.Unix()/86400))
		if !weekend && r.Bool(0.15) {
			continue // didn't use the Internet today
		}
		var start, end float64 // local hours
		if weekend {
			start = r.Range(9.5, 12)
			end = r.Range(21.5, 23.9)
		} else {
			start = r.Range(17.5, 19.5)
			end = r.Range(21.5, 23.5)
		}
		s := day.Add(loc).Add(time.Duration(start * float64(time.Hour))).Add(-loc)
		e := day.Add(loc).Add(time.Duration(end * float64(time.Hour))).Add(-loc)
		out = append(out, Interval{s, e})
		// Weekends sometimes get a separate morning session.
		if weekend && r.Bool(0.3) {
			s2 := day.Add(loc).Add(time.Duration(r.Range(7, 8.5) * float64(time.Hour))).Add(-loc)
			e2 := day.Add(loc).Add(time.Duration(r.Range(8.5, 9.4) * float64(time.Hour))).Add(-loc)
			out = append(out, Interval{s2, e2})
		}
	}
	return Clip(Merge(out), from, to)
}

// drawOutages draws a Poisson process of outages with exponentially
// distributed durations (mean given in nanoseconds, jittered by sigma as
// a multiplicative factor range).
func drawOutages(rnd *rng.Stream, from, to time.Time, ratePerDay float64, meanDurNs, jitter float64) []Interval {
	if ratePerDay <= 0 {
		return nil
	}
	var out []Interval
	t := from
	meanGap := 24 * float64(time.Hour) / ratePerDay
	for {
		gap := time.Duration(rnd.Exp(meanGap))
		t = t.Add(gap)
		if !t.Before(to) {
			return out
		}
		dur := time.Duration(rnd.Exp(meanDurNs) * rnd.Range(1-jitter, 1+jitter))
		if dur < time.Minute {
			dur = time.Minute
		}
		end := t.Add(dur)
		if end.After(to) {
			end = to
		}
		out = append(out, Interval{t, end})
		t = end
	}
}

// drawLogNormalOutages draws a Poisson process of outages with log-normal
// durations (median, sigma) — matching Fig. 4's heavy-tailed downtime
// durations.
func drawLogNormalOutages(rnd *rng.Stream, from, to time.Time, ratePerDay float64, median time.Duration, sigma float64) []Interval {
	if ratePerDay <= 0 {
		return nil
	}
	var out []Interval
	t := from
	meanGap := 24 * float64(time.Hour) / ratePerDay
	for {
		gap := time.Duration(rnd.Exp(meanGap))
		t = t.Add(gap)
		if !t.Before(to) {
			return out
		}
		dur := time.Duration(rnd.LogNormal(math.Log(float64(median)), sigma))
		if dur < time.Minute {
			dur = time.Minute
		}
		end := t.Add(dur)
		if end.After(to) {
			end = to
		}
		out = append(out, Interval{t, end})
		t = end
	}
}

// --- Device presence -----------------------------------------------------

// DeviceOnline reports whether device d is connected to the router at
// instant at, assuming the router itself is up. The draw is stable within
// an hour and deterministic across calls.
func (p *Profile) DeviceOnline(d *Device, at time.Time) bool {
	if d.AlwaysOn {
		return true
	}
	local := at.Add(p.Country.UTCOffset)
	hour := local.Hour()
	dow := local.Weekday()
	weekend := 0
	if dow == time.Saturday || dow == time.Sunday {
		weekend = 1
	}
	prob := d.Presence[weekend][hour]
	hourIdx := int(at.Unix() / 3600)
	draw := p.rnd.Child("presence-"+d.HW.String()).ChildN("h", hourIdx).Float64()
	return draw < prob
}

// LocalHour returns the hour of day in the home's local time.
func (p *Profile) LocalHour(at time.Time) int {
	return at.Add(p.Country.UTCOffset).Hour()
}

// IsWeekendLocal reports whether at falls on a local weekend.
func (p *Profile) IsWeekendLocal(at time.Time) bool {
	d := at.Add(p.Country.UTCOffset).Weekday()
	return d == time.Saturday || d == time.Sunday
}

// Rand exposes the profile's deterministic stream for downstream
// generators (traffic); children drawn from it never disturb the
// profile's own draws.
func (p *Profile) Rand() *rng.Stream { return p.rnd }
