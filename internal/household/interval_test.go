package household

import (
	"testing"
	"time"
)

var it0 = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)

func iv(startMin, endMin int) Interval {
	return Interval{it0.Add(time.Duration(startMin) * time.Minute), it0.Add(time.Duration(endMin) * time.Minute)}
}

func eq(a, b []Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Start.Equal(b[i].Start) || !a[i].End.Equal(b[i].End) {
			return false
		}
	}
	return true
}

func TestIntersect(t *testing.T) {
	a := []Interval{iv(0, 10), iv(20, 30)}
	b := []Interval{iv(5, 25)}
	got := Intersect(a, b)
	want := []Interval{iv(5, 10), iv(20, 25)}
	if !eq(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	if got := Intersect([]Interval{iv(0, 5)}, []Interval{iv(10, 20)}); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestIntersectEmpty(t *testing.T) {
	if Intersect(nil, []Interval{iv(0, 5)}) != nil {
		t.Fatal("nil intersect wrong")
	}
}

func TestSubtractMiddle(t *testing.T) {
	got := Subtract([]Interval{iv(0, 60)}, []Interval{iv(10, 20), iv(30, 40)})
	want := []Interval{iv(0, 10), iv(20, 30), iv(40, 60)}
	if !eq(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestSubtractEdges(t *testing.T) {
	got := Subtract([]Interval{iv(0, 60)}, []Interval{iv(0, 10), iv(50, 70)})
	want := []Interval{iv(10, 50)}
	if !eq(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestSubtractAll(t *testing.T) {
	if got := Subtract([]Interval{iv(10, 20)}, []Interval{iv(0, 30)}); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSubtractNothing(t *testing.T) {
	base := []Interval{iv(0, 10)}
	if got := Subtract(base, nil); !eq(got, base) {
		t.Fatalf("got %v", got)
	}
}

func TestSubtractCutSpanningTwoBases(t *testing.T) {
	got := Subtract([]Interval{iv(0, 10), iv(20, 30)}, []Interval{iv(5, 25)})
	want := []Interval{iv(0, 5), iv(25, 30)}
	if !eq(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestMergeCoalesces(t *testing.T) {
	got := Merge([]Interval{iv(20, 30), iv(0, 10), iv(8, 15), iv(15, 18)})
	want := []Interval{iv(0, 18), iv(20, 30)}
	if !eq(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	if Merge(nil) != nil {
		t.Fatal("merge nil wrong")
	}
}

func TestClip(t *testing.T) {
	got := Clip([]Interval{iv(-10, 5), iv(8, 20)}, it0, it0.Add(15*time.Minute))
	want := []Interval{iv(0, 5), iv(8, 15)}
	if !eq(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestTotalDuration(t *testing.T) {
	if TotalDuration([]Interval{iv(0, 10), iv(20, 25)}) != 15*time.Minute {
		t.Fatal("total wrong")
	}
}

func TestCoveredAt(t *testing.T) {
	ivs := []Interval{iv(0, 10), iv(20, 30)}
	if !CoveredAt(ivs, it0.Add(5*time.Minute)) {
		t.Fatal("inside not covered")
	}
	if CoveredAt(ivs, it0.Add(15*time.Minute)) {
		t.Fatal("gap covered")
	}
	if CoveredAt(ivs, it0.Add(10*time.Minute)) {
		t.Fatal("half-open end covered")
	}
	if !CoveredAt(ivs, it0) {
		t.Fatal("start not covered")
	}
}

func TestIntersectSubtractDuality(t *testing.T) {
	// For any window W: Intersect(base, cut) and Subtract(base, cut)
	// partition base.
	base := []Interval{iv(0, 100), iv(150, 200)}
	cut := []Interval{iv(10, 30), iv(90, 160), iv(190, 300)}
	inter := Intersect(base, Merge(cut))
	sub := Subtract(base, Merge(cut))
	if TotalDuration(inter)+TotalDuration(sub) != TotalDuration(base) {
		t.Fatalf("partition broken: %v + %v != %v",
			TotalDuration(inter), TotalDuration(sub), TotalDuration(base))
	}
}
