package household

import (
	"natpeek/internal/dataset"
	"natpeek/internal/domains"
	"natpeek/internal/mac"
	"natpeek/internal/ouidb"
	"natpeek/internal/rng"
)

// DeviceKind is the behavioural class of a home device. Kinds determine
// connection type, always-on probability, diurnal presence, and which
// domains the device talks to — the basis for the Fig. 20 fingerprinting
// observation.
type DeviceKind string

// Device kinds present in the study's homes (Fig. 12 and §5.1's
// discussion of consoles, media boxes, and phones).
const (
	KindDesktop  DeviceKind = "desktop"
	KindLaptop   DeviceKind = "laptop"
	KindPhone    DeviceKind = "phone"
	KindTablet   DeviceKind = "tablet"
	KindMediaBox DeviceKind = "mediabox" // Roku, Apple TV, TiVo
	KindConsole  DeviceKind = "console"  // Xbox, PlayStation, Wii
	KindPrinter  DeviceKind = "printer"
	KindVoIP     DeviceKind = "voip"
	KindNAS      DeviceKind = "nas"
	KindIoT      DeviceKind = "iot" // thermostats, Raspberry Pis
)

// Device is one synthetic home device.
type Device struct {
	HW   mac.Addr
	Kind DeviceKind
	Conn dataset.ConnKind
	// AlwaysOn devices stay connected whenever the router is up (media
	// boxes, VoIP phones, NAS — Table 5's never-disconnecting devices).
	AlwaysOn bool
	// Presence is the probability the device is online during a given
	// local hour, [weekday|weekend][hour]. Ignored when AlwaysOn.
	Presence [2][24]float64
	// VolumeWeight scales this device's share of home traffic; drawing
	// these from a heavy-tailed distribution is what makes one device
	// dominate (Fig. 17's ≈60–65% top share).
	VolumeWeight float64
	// CategoryPrefs weights the domain categories this device visits.
	CategoryPrefs map[domains.Category]float64
}

// kindSpec is the per-kind generation template.
type kindSpec struct {
	manufacturers []string
	wiredProb     float64 // probability of Ethernet attachment
	dualBandProb  float64 // probability the device can use 5 GHz
	alwaysOnProb  float64
	volumeScale   float64 // mean of the volume-weight draw
	prefs         map[domains.Category]float64
	presence      presenceShape
}

type presenceShape int

const (
	presAlways   presenceShape = iota // near-constant when home
	presEvening                       // strong evening peak (TVs, consoles)
	presDaytime                       // working-hours shape (printers)
	presPersonal                      // phone/laptop: evening peak, some night
)

var kindSpecs = map[DeviceKind]kindSpec{
	KindDesktop: {
		manufacturers: []string{"Apple", "Apple", "Hewlett-Packard", "Giga-Byte", "Intel"},
		wiredProb:     0.65, dualBandProb: 0.2, alwaysOnProb: 0.25, volumeScale: 1.6,
		prefs: map[domains.Category]float64{
			domains.Search: 2, domains.Social: 2, domains.News: 1.5, domains.Streaming: 5,
			domains.Cloud: 2.5, domains.Shopping: 1, domains.Tech: 1, domains.Ads: 1.5,
		},
		presence: presPersonal,
	},
	KindLaptop: {
		manufacturers: []string{"Apple", "Apple", "Apple", "Intel", "Intel", "Compal", "Hon Hai Precision", "Quanta", "Wistron InfoComm", "Asus"},
		wiredProb:     0.08, dualBandProb: 0.28, alwaysOnProb: 0.05, volumeScale: 1.3,
		prefs: map[domains.Category]float64{
			domains.Search: 2, domains.Social: 2.5, domains.Streaming: 8, domains.News: 1.5,
			domains.Shopping: 1, domains.Cloud: 1, domains.Ads: 1.5, domains.Portal: 1,
		},
		presence: presPersonal,
	},
	KindPhone: {
		manufacturers: []string{"Apple", "Apple", "Apple", "Samsung", "Samsung", "HTC", "LG Electronics", "Motorola", "Nokia", "Murata"},
		wiredProb:     0, dualBandProb: 0.04, alwaysOnProb: 0.1, volumeScale: 0.5,
		prefs: map[domains.Category]float64{
			domains.Social: 3, domains.Streaming: 2.5, domains.Search: 1.5,
			domains.Ads: 2, domains.Portal: 1,
		},
		presence: presAlways, // phones stay associated day and night
	},
	KindTablet: {
		manufacturers: []string{"Apple", "Apple", "Apple", "Samsung", "AzureWave"},
		wiredProb:     0, dualBandProb: 0.15, alwaysOnProb: 0.05, volumeScale: 0.8,
		prefs: map[domains.Category]float64{
			domains.Streaming: 8, domains.Social: 2, domains.Ads: 1.5, domains.Search: 1,
		},
		presence: presEvening,
	},
	KindMediaBox: {
		manufacturers: []string{"Roku", "TiVo", "ASRock", "Apple"},
		wiredProb:     0.5, dualBandProb: 0.25, alwaysOnProb: 0.85, volumeScale: 1.8,
		prefs: map[domains.Category]float64{
			domains.Streaming: 12, domains.Ads: 0.5, domains.CDN: 1,
		},
		presence: presEvening,
	},
	KindConsole: {
		manufacturers: []string{"Microsoft", "Sony Computer Entertainment", "Nintendo", "Mitsumi"},
		wiredProb:     0.55, dualBandProb: 0.12, alwaysOnProb: 0.3, volumeScale: 1.0,
		prefs: map[domains.Category]float64{
			domains.Gaming: 8, domains.Streaming: 3, domains.CDN: 1,
		},
		presence: presEvening,
	},
	KindPrinter: {
		manufacturers: []string{"Epson", "Hewlett-Packard"},
		wiredProb:     0.4, dualBandProb: 0, alwaysOnProb: 0.5, volumeScale: 0.02,
		prefs: map[domains.Category]float64{
			domains.Tech: 1,
		},
		presence: presDaytime,
	},
	KindVoIP: {
		manufacturers: []string{"UniData", "Polycom"},
		wiredProb:     0.3, dualBandProb: 0, alwaysOnProb: 0.9, volumeScale: 0.1,
		prefs: map[domains.Category]float64{
			domains.Other: 1, domains.Tech: 0.5,
		},
		presence: presAlways,
	},
	KindNAS: {
		manufacturers: []string{"VMware", "Giga-Byte", "Hewlett-Packard"},
		wiredProb:     0.9, dualBandProb: 0.08, alwaysOnProb: 0.9, volumeScale: 0.7,
		prefs: map[domains.Category]float64{
			domains.Cloud: 6, domains.Tech: 1,
		},
		presence: presAlways,
	},
	KindIoT: {
		manufacturers: []string{"Raspberry-Pi", "Prolifix", "GainSpan", "Microchip", "Pegatron"},
		wiredProb:     0.25, dualBandProb: 0, alwaysOnProb: 0.7, volumeScale: 0.05,
		prefs: map[domains.Category]float64{
			domains.Tech: 1, domains.Other: 1,
		},
		presence: presAlways,
	},
}

// kindMix is the draw distribution of device kinds, per country group.
// Developed homes skew toward consoles and media boxes ("we assume this
// is because gaming consoles or entertainment devices are more common in
// developed countries", §5.1).
func kindMix(developed bool) ([]DeviceKind, []float64) {
	kinds := []DeviceKind{
		KindLaptop, KindPhone, KindDesktop, KindTablet, KindMediaBox,
		KindConsole, KindPrinter, KindVoIP, KindNAS, KindIoT,
	}
	if developed {
		return kinds, []float64{24, 26, 10, 9, 10, 8, 4, 2, 3, 4}
	}
	return kinds, []float64{22, 38, 14, 7, 3, 4, 3, 2, 1, 6}
}

// newDevice draws one device of the given kind.
func newDevice(kind DeviceKind, developed bool, rnd *rng.Stream) *Device {
	spec := kindSpecs[kind]
	manu := spec.manufacturers[rnd.Intn(len(spec.manufacturers))]
	ouis := ouidb.OUIsFor(manu)
	oui := ouis[rnd.Intn(len(ouis))]
	d := &Device{
		HW:            mac.FromOUI(oui, uint32(rnd.Uint64()&0xffffff)),
		Kind:          kind,
		AlwaysOn:      rnd.Bool(spec.alwaysOnProb),
		VolumeWeight:  rnd.Pareto(spec.volumeScale*0.3, 0.75),
		CategoryPrefs: spec.prefs,
	}
	switch {
	case rnd.Bool(spec.wiredProb):
		d.Conn = dataset.Wired
	case rnd.Bool(spec.dualBandProb):
		d.Conn = dataset.Wireless5
	default:
		d.Conn = dataset.Wireless24
	}
	// Wireless "always-on" devices are much rarer than wired ones —
	// Table 5 finds 43% of developed homes with an always-connected wired
	// device but only 20% with a wireless one.
	if d.Conn != dataset.Wired && d.AlwaysOn && rnd.Bool(0.7) {
		d.AlwaysOn = false
	}
	// Developing-country homes power devices off when idle far more often
	// (Table 5's 12% vs 43%/20%).
	if !developed && d.AlwaysOn && rnd.Bool(0.65) {
		d.AlwaysOn = false
	}
	d.Presence = presenceTable(spec.presence, rnd)
	return d
}

// presenceTable builds the hourly online-probability profile. The shapes
// are what Fig. 13 aggregates into: weekday evening peak with an
// afternoon trough, flatter weekends, and only a shallow dip at night
// ("cellular devices remain on at night, as opposed to laptops").
func presenceTable(shape presenceShape, rnd *rng.Stream) [2][24]float64 {
	var p [2][24]float64
	jitter := func(v float64) float64 {
		v *= rnd.Range(0.85, 1.15)
		if v > 1 {
			v = 1
		}
		if v < 0 {
			v = 0
		}
		return v
	}
	for h := 0; h < 24; h++ {
		var wd, we float64
		switch shape {
		case presAlways:
			wd, we = 0.92, 0.92
			if h >= 2 && h <= 5 {
				wd, we = 0.85, 0.85
			}
		case presEvening:
			switch {
			case h >= 18 && h <= 22:
				wd = 0.75
			case h >= 7 && h <= 9:
				wd = 0.25
			case h >= 10 && h <= 16:
				wd = 0.15
			case h >= 23 || h <= 1:
				wd = 0.3
			default:
				wd = 0.1
			}
			switch {
			case h >= 10 && h <= 22:
				we = 0.55
			case h >= 23 || h <= 1:
				we = 0.35
			default:
				we = 0.12
			}
		case presDaytime:
			if h >= 9 && h <= 18 {
				wd, we = 0.5, 0.45
			} else {
				wd, we = 0.15, 0.15
			}
		case presPersonal:
			switch {
			case h >= 18 && h <= 23:
				wd = 0.7
			case h >= 6 && h <= 8:
				wd = 0.45
			case h >= 9 && h <= 16:
				wd = 0.3 // at work/school
			default:
				wd = 0.25
			}
			switch {
			case h >= 9 && h <= 23:
				we = 0.6
			default:
				we = 0.3
			}
		}
		p[0][h] = jitter(wd)
		p[1][h] = jitter(we)
	}
	return p
}
