package wifi

import (
	"testing"

	"natpeek/internal/mac"
	"natpeek/internal/rng"
)

func ap(b Band, ch int, rssi int, n uint32) AP {
	return AP{BSSID: mac.FromOUI(0x0018F8, n), SSID: "neighbor", Band: b, Channel: ch, RSSI: rssi}
}

func TestDefaultChannelsMatchPaper(t *testing.T) {
	if DefaultChannel(Band24) != 11 {
		t.Fatal("2.4 GHz default must be channel 11")
	}
	if DefaultChannel(Band5) != 36 {
		t.Fatal("5 GHz default must be channel 36")
	}
}

func TestValidChannels(t *testing.T) {
	if len(ValidChannels(Band24)) != 11 {
		t.Fatal("2.4 GHz channel plan wrong")
	}
	for _, c := range ValidChannels(Band5) {
		if c < 36 {
			t.Fatal("5 GHz channel below 36")
		}
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		b      Band
		c1, c2 int
		want   bool
	}{
		{Band24, 1, 1, true},
		{Band24, 1, 4, true},
		{Band24, 1, 6, false},
		{Band24, 6, 11, false},
		{Band24, 11, 8, true},
		{Band5, 36, 36, true},
		{Band5, 36, 40, false},
	}
	for _, c := range cases {
		if Overlaps(c.b, c.c1, c.c2) != c.want {
			t.Errorf("Overlaps(%v, %d, %d) != %v", c.b, c.c1, c.c2, c.want)
		}
	}
}

func TestVisibleOnFiltersBandAndChannel(t *testing.T) {
	e := NewEnvironment()
	e.AddAP(ap(Band24, 11, -60, 1))
	e.AddAP(ap(Band24, 6, -50, 2))
	e.AddAP(ap(Band5, 36, -55, 3))
	e.AddAP(ap(Band24, 11, -40, 4))
	vis := e.VisibleOn(Band24, 11)
	if len(vis) != 2 {
		t.Fatalf("visible = %d, want 2", len(vis))
	}
	// Sorted by RSSI descending.
	if vis[0].RSSI < vis[1].RSSI {
		t.Fatal("not sorted by signal strength")
	}
	if len(e.VisibleOn(Band5, 36)) != 1 {
		t.Fatal("5 GHz scan wrong")
	}
}

func TestInterferersIncludeOverlapping(t *testing.T) {
	e := NewEnvironment()
	e.AddAP(ap(Band24, 9, -60, 1))  // overlaps 11
	e.AddAP(ap(Band24, 6, -60, 2))  // does not overlap 11
	e.AddAP(ap(Band24, 11, -60, 3)) // co-channel
	if n := len(e.InterferersOn(Band24, 11)); n != 2 {
		t.Fatalf("interferers = %d, want 2", n)
	}
	// 5 GHz: only exact channel.
	e5 := NewEnvironment()
	e5.AddAP(ap(Band5, 36, -60, 1))
	e5.AddAP(ap(Band5, 40, -60, 2))
	if n := len(e5.InterferersOn(Band5, 36)); n != 1 {
		t.Fatalf("5 GHz interferers = %d, want 1", n)
	}
}

func TestAssociateDisassociate(t *testing.T) {
	r := NewRadio(Band24, NewEnvironment(), nil)
	hw := mac.FromOUI(0x001CB3, 1)
	r.Associate(hw)
	if !r.Associated(hw) || r.ClientCount() != 1 {
		t.Fatal("associate failed")
	}
	r.Associate(hw) // idempotent
	if r.ClientCount() != 1 {
		t.Fatal("double association counted twice")
	}
	r.Disassociate(hw)
	if r.Associated(hw) || r.ClientCount() != 0 {
		t.Fatal("disassociate failed")
	}
}

func TestClientsSorted(t *testing.T) {
	r := NewRadio(Band24, NewEnvironment(), nil)
	for i := 5; i > 0; i-- {
		r.Associate(mac.FromOUI(0x001CB3, uint32(i)))
	}
	cl := r.Clients()
	for i := 1; i < len(cl); i++ {
		if cl[i-1].String() >= cl[i].String() {
			t.Fatal("clients not sorted")
		}
	}
}

func TestSetChannel(t *testing.T) {
	r := NewRadio(Band24, NewEnvironment(), nil)
	if err := r.SetChannel(6); err != nil || r.Channel != 6 {
		t.Fatal("valid retune failed")
	}
	if err := r.SetChannel(36); err == nil {
		t.Fatal("5 GHz channel accepted on 2.4 GHz radio")
	}
	if err := r.SetChannel(14); err == nil {
		t.Fatal("channel 14 accepted")
	}
}

func TestScanSeesOwnChannelOnly(t *testing.T) {
	e := NewEnvironment()
	e.AddAP(ap(Band24, 11, -60, 1))
	e.AddAP(ap(Band24, 1, -60, 2))
	r := NewRadio(Band24, e, nil)
	res := r.Scan()
	if res.Channel != 11 || len(res.VisibleAPs) != 1 {
		t.Fatalf("scan result %+v", res)
	}
	if r.ScanCount() != 1 {
		t.Fatal("scan not counted")
	}
}

func TestScanCanDisassociateClients(t *testing.T) {
	r := NewRadio(Band24, NewEnvironment(), rng.New(3))
	for i := 0; i < 50; i++ {
		r.Associate(mac.FromOUI(0x001CB3, uint32(i)))
	}
	dropped := 0
	for s := 0; s < 100; s++ {
		res := r.Scan()
		dropped += res.ClientsDropped
		// Re-associate for the next round.
		for i := 0; i < 50; i++ {
			r.Associate(mac.FromOUI(0x001CB3, uint32(i)))
		}
	}
	// 100 scans × 50 clients × 2% ≈ 100 expected drops.
	if dropped < 50 || dropped > 160 {
		t.Fatalf("scan-induced drops = %d, want ≈100", dropped)
	}
	if r.Disassociations() != dropped {
		t.Fatal("disassociation counter mismatch")
	}
}

func TestScanWithoutRngNeverDrops(t *testing.T) {
	r := NewRadio(Band5, NewEnvironment(), nil)
	r.Associate(mac.FromOUI(0x001CB3, 1))
	for i := 0; i < 100; i++ {
		if res := r.Scan(); res.ClientsDropped != 0 {
			t.Fatal("deterministic radio dropped a client")
		}
	}
}

func TestBandString(t *testing.T) {
	if Band24.String() != "2.4GHz" || Band5.String() != "5GHz" {
		t.Fatal("band names wrong")
	}
}
