// Package wifi models the home's wireless environment: the two radios of
// the BISmark router (one 802.11gn on 2.4 GHz, one 802.11an on 5 GHz),
// client association per band, and the neighbourhood of competing access
// points that the router's periodic scan observes.
//
// The paper's WiFi data set comes from exactly this mechanism: "Each
// router only scans for other visible access points in the wireless
// channel that it is configured for; by default, the 2.4 GHz radio is
// configured for channel 11, and the 5 GHz radio is configured for
// channel 36" (§3.2.2) — and scanning "can sometimes cause wireless
// clients to disassociate," which is why the gateway throttles scans when
// clients are associated.
package wifi

import (
	"fmt"
	"sort"

	"natpeek/internal/mac"
	"natpeek/internal/rng"
)

// Band is a wireless spectrum band.
type Band int

// The two bands of a dual-radio home router.
const (
	Band24 Band = iota // 2.4 GHz
	Band5              // 5 GHz
)

func (b Band) String() string {
	if b == Band24 {
		return "2.4GHz"
	}
	return "5GHz"
}

// DefaultChannel returns BISmark's default channel for the band
// (channel 11 on 2.4 GHz, channel 36 on 5 GHz).
func DefaultChannel(b Band) int {
	if b == Band24 {
		return 11
	}
	return 36
}

// ValidChannels returns the usable channels per band (US allocation).
func ValidChannels(b Band) []int {
	if b == Band24 {
		return []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	}
	return []int{36, 40, 44, 48, 149, 153, 157, 161}
}

// Overlaps reports whether two channels in a band interfere. On 2.4 GHz,
// channels within 4 of each other overlap (20 MHz channels on 5 MHz
// spacing); on 5 GHz channels are disjoint.
func Overlaps(b Band, c1, c2 int) bool {
	if b == Band5 {
		return c1 == c2
	}
	d := c1 - c2
	if d < 0 {
		d = -d
	}
	return d < 5
}

// AP is one access point visible in the neighbourhood.
type AP struct {
	BSSID   mac.Addr
	SSID    string
	Band    Band
	Channel int
	// RSSI is the received signal strength at the measuring router (dBm).
	RSSI int
}

// Environment is the radio neighbourhood around one home: every foreign
// AP whose beacons reach the house.
type Environment struct {
	aps []AP
}

// NewEnvironment returns an empty neighbourhood.
func NewEnvironment() *Environment { return &Environment{} }

// AddAP registers a neighbouring access point.
func (e *Environment) AddAP(ap AP) { e.aps = append(e.aps, ap) }

// APs returns all registered APs.
func (e *Environment) APs() []AP { return e.aps }

// VisibleOn returns the APs beaconing on exactly the given channel and
// band — what a same-channel scan sees.
func (e *Environment) VisibleOn(b Band, channel int) []AP {
	var out []AP
	for _, ap := range e.aps {
		if ap.Band == b && ap.Channel == channel {
			out = append(out, ap)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RSSI > out[j].RSSI })
	return out
}

// InterferersOn returns APs whose channel overlaps the given channel —
// the contention the paper's §5.3 worries about.
func (e *Environment) InterferersOn(b Band, channel int) []AP {
	var out []AP
	for _, ap := range e.aps {
		if ap.Band == b && Overlaps(b, ap.Channel, channel) {
			out = append(out, ap)
		}
	}
	return out
}

// Radio is one of the router's radios: a band, a channel, and the set of
// associated clients.
type Radio struct {
	Band    Band
	Channel int

	clients map[mac.Addr]bool
	env     *Environment
	rnd     *rng.Stream

	// scans counts Scan calls; disassociations counts scan-induced client
	// drops.
	scans           int
	disassociations int
}

// NewRadio returns a radio on the band's default channel.
func NewRadio(b Band, env *Environment, rnd *rng.Stream) *Radio {
	return &Radio{
		Band:    b,
		Channel: DefaultChannel(b),
		clients: make(map[mac.Addr]bool),
		env:     env,
		rnd:     rnd,
	}
}

// SetChannel retunes the radio (users could reconfigure channel 11).
func (r *Radio) SetChannel(c int) error {
	for _, v := range ValidChannels(r.Band) {
		if v == c {
			r.Channel = c
			return nil
		}
	}
	return fmt.Errorf("wifi: channel %d invalid on %v", c, r.Band)
}

// Associate attaches a client to this radio.
func (r *Radio) Associate(hw mac.Addr) { r.clients[hw] = true }

// Disassociate detaches a client.
func (r *Radio) Disassociate(hw mac.Addr) { delete(r.clients, hw) }

// Associated reports whether hw is currently attached.
func (r *Radio) Associated(hw mac.Addr) bool { return r.clients[hw] }

// ClientCount returns the number of associated clients.
func (r *Radio) ClientCount() int { return len(r.clients) }

// Clients returns the associated clients, sorted for determinism.
func (r *Radio) Clients() []mac.Addr {
	out := make([]mac.Addr, 0, len(r.clients))
	for hw := range r.clients {
		out = append(out, hw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ScanResult is what one scan observed.
type ScanResult struct {
	Band           Band
	Channel        int
	VisibleAPs     []AP
	ClientsDropped int
}

// DisassocProb is the per-client probability that an active scan knocks
// the client off the radio — the side effect §3.2.2 describes.
const DisassocProb = 0.02

// Scan surveys the radio's own channel. With probability DisassocProb per
// client, the off-channel excursion disassociates that client (it will
// typically re-associate on its own shortly after; the caller decides).
func (r *Radio) Scan() ScanResult {
	r.scans++
	res := ScanResult{Band: r.Band, Channel: r.Channel}
	if r.env != nil {
		res.VisibleAPs = r.env.VisibleOn(r.Band, r.Channel)
	}
	if r.rnd != nil {
		for _, hw := range r.Clients() {
			if r.rnd.Bool(DisassocProb) {
				r.Disassociate(hw)
				res.ClientsDropped++
				r.disassociations++
			}
		}
	}
	return res
}

// ScanCount returns how many scans have run.
func (r *Radio) ScanCount() int { return r.scans }

// Disassociations returns the cumulative scan-induced client drops.
func (r *Radio) Disassociations() int { return r.disassociations }
