// Package anonymize implements the study's privacy transforms (§3.2.2,
// §3.3): MAC addresses keep their OUI but have the lower 24 bits hashed;
// domain names outside the 200-entry whitelist are replaced by opaque
// digests; and IP addresses are obfuscated with a prefix-preserving keyed
// permutation so subnet structure (LAN vs WAN, shared /24s) survives while
// identities do not.
//
// All transforms are deterministic under one Policy so a device or domain
// keeps a stable pseudonym across a study period, which is what makes
// longitudinal per-device analysis possible on anonymized data.
package anonymize

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"net/netip"
	"strings"

	"natpeek/internal/domains"
	"natpeek/internal/mac"
)

// Policy bundles the keyed transforms for one study period.
type Policy struct {
	macs *mac.Anonymizer
	key  []byte
}

// New returns a Policy keyed by key. Two policies with the same key
// produce identical pseudonyms.
func New(key []byte) *Policy {
	return &Policy{
		macs: mac.NewAnonymizer(key),
		key:  append([]byte(nil), key...),
	}
}

// MAC anonymizes a hardware address (OUI preserved, NIC hashed).
func (p *Policy) MAC(a mac.Addr) mac.Addr { return p.macs.Anonymize(a) }

// MACCacheSize returns the number of memoized MAC pseudonyms (one per
// distinct device seen under this policy) — exported by the capture
// pipeline as its anonymization-cache gauge.
func (p *Policy) MACCacheSize() int { return p.macs.CacheSize() }

// Domain returns the name unchanged when it (or a parent) is whitelisted,
// and an opaque stable token ("anon-<12 hex>") otherwise. The paper:
// "We anonymize traffic to any domain name that is not in the Alexa top
// 200 or otherwise explicitly whitelisted by the user."
func (p *Policy) Domain(name string) string {
	return p.DomainWith(name, nil)
}

// DomainWith is Domain with per-user additions to the whitelist (users
// could whitelist extra domains through the router's web UI).
func (p *Policy) DomainWith(name string, userWhitelist []string) string {
	n := strings.ToLower(strings.TrimSuffix(strings.TrimSpace(name), "."))
	if w := domains.Whitelisted(n); w != "" {
		return n
	}
	for _, u := range userWhitelist {
		u = strings.ToLower(strings.TrimSuffix(u, "."))
		if n == u || strings.HasSuffix(n, "."+u) {
			return n
		}
	}
	h := p.hash([]byte("domain:" + n))
	return "anon-" + hex.EncodeToString(h[:6])
}

// IsAnonymized reports whether a domain string is an opaque token produced
// by Domain.
func IsAnonymized(domain string) bool { return strings.HasPrefix(domain, "anon-") }

// IP obfuscates an address with a prefix-preserving keyed transform: two
// addresses sharing an n-bit prefix map to outputs sharing an n-bit
// prefix. Loopback and unspecified addresses pass through unchanged so
// diagnostics stay readable.
func (p *Policy) IP(a netip.Addr) netip.Addr {
	if !a.IsValid() || a.IsLoopback() || a.IsUnspecified() {
		return a
	}
	if a.Is4() {
		b := a.As4()
		out := p.prefixPreserve(b[:], 32)
		return netip.AddrFrom4([4]byte(out))
	}
	b := a.As16()
	out := p.prefixPreserve(b[:], 128)
	return netip.AddrFrom16([16]byte(out))
}

// prefixPreserve implements a Crypto-PAn-style bitwise walk: bit i of the
// output flips based on a PRF of the first i input bits, so shared
// prefixes stay shared and diverging bits diverge pseudorandomly.
func (p *Policy) prefixPreserve(in []byte, bits int) []byte {
	out := make([]byte, len(in))
	copy(out, in)
	for i := 0; i < bits; i++ {
		// PRF over the (i)-bit prefix of the input.
		prefix := make([]byte, len(in)+1)
		copy(prefix, in)
		// Zero the bits from i onward.
		for b := i; b < bits; b++ {
			prefix[b/8] &^= 1 << (7 - b%8)
		}
		prefix[len(in)] = byte(i)
		h := p.hash(prefix)
		if h[0]&1 == 1 {
			out[i/8] ^= 1 << (7 - i%8)
		}
	}
	return out
}

func (p *Policy) hash(data []byte) [32]byte {
	m := hmac.New(sha256.New, p.key)
	m.Write(data)
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

// FlowID derives a stable opaque identifier for a 5-tuple, used when
// exporting sampled flow statistics without raw addresses.
func (p *Policy) FlowID(srcIP, dstIP netip.Addr, proto uint8, srcPort, dstPort uint16) uint64 {
	var buf []byte
	s, d := srcIP.As16(), dstIP.As16()
	buf = append(buf, s[:]...)
	buf = append(buf, d[:]...)
	buf = append(buf, proto)
	buf = binary.BigEndian.AppendUint16(buf, srcPort)
	buf = binary.BigEndian.AppendUint16(buf, dstPort)
	h := p.hash(buf)
	return binary.BigEndian.Uint64(h[:8])
}
