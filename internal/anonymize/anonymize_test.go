package anonymize

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"natpeek/internal/mac"
)

func TestDomainWhitelistedPassesThrough(t *testing.T) {
	p := New([]byte("k"))
	for _, d := range []string{"google.com", "www.google.com", "NETFLIX.com", "cdn.hulu.com."} {
		got := p.Domain(d)
		if IsAnonymized(got) {
			t.Errorf("whitelisted %q anonymized to %q", d, got)
		}
		if got != strings.ToLower(strings.TrimSuffix(d, ".")) {
			t.Errorf("Domain(%q) = %q", d, got)
		}
	}
}

func TestDomainUnlistedAnonymized(t *testing.T) {
	p := New([]byte("k"))
	got := p.Domain("very-private-site.example")
	if !IsAnonymized(got) {
		t.Fatalf("unlisted domain not anonymized: %q", got)
	}
	if got != p.Domain("very-private-site.example") {
		t.Fatal("anonymization not stable")
	}
	if got == p.Domain("other-site.example") {
		t.Fatal("distinct domains collided")
	}
}

func TestDomainUserWhitelist(t *testing.T) {
	p := New([]byte("k"))
	got := p.DomainWith("tools.myisp.example", []string{"myisp.example"})
	if IsAnonymized(got) {
		t.Fatalf("user-whitelisted domain anonymized: %q", got)
	}
	// Suffix matching must not be fooled by lookalikes.
	if !IsAnonymized(p.DomainWith("notmyisp.example", []string{"myisp.example"})) {
		t.Fatal("lookalike passed whitelist")
	}
}

func TestDomainKeysUnlinkable(t *testing.T) {
	a := New([]byte("period-1")).Domain("secret.example")
	b := New([]byte("period-2")).Domain("secret.example")
	if a == b {
		t.Fatal("different keys produced identical domain tokens")
	}
}

func TestMACPreservesOUI(t *testing.T) {
	p := New([]byte("k"))
	a := mac.MustParse("a4:b1:97:01:02:03")
	out := p.MAC(a)
	if out.OUI() != a.OUI() {
		t.Fatal("OUI changed")
	}
	if out.NIC() == a.NIC() {
		t.Fatal("NIC unchanged")
	}
}

func TestIPPrefixPreserving(t *testing.T) {
	p := New([]byte("k"))
	a := p.IP(netip.MustParseAddr("203.0.113.7"))
	b := p.IP(netip.MustParseAddr("203.0.113.99"))
	c := p.IP(netip.MustParseAddr("198.51.100.7"))
	a4, b4, c4 := a.As4(), b.As4(), c.As4()
	// Same /24 stays same /24.
	if a4[0] != b4[0] || a4[1] != b4[1] || a4[2] != b4[2] {
		t.Fatalf("shared /24 broken: %v vs %v", a, b)
	}
	if a4[3] == b4[3] {
		t.Fatal("distinct hosts collided in last octet")
	}
	// Different /8 should (with overwhelming probability) diverge early.
	if a4 == c4 {
		t.Fatal("unrelated addresses mapped identically")
	}
}

func TestIPPrefixPropertyPairwise(t *testing.T) {
	p := New([]byte("prefix-key"))
	sharedLen := func(x, y [4]byte) int {
		for i := 0; i < 32; i++ {
			bx := x[i/8] >> (7 - i%8) & 1
			by := y[i/8] >> (7 - i%8) & 1
			if bx != by {
				return i
			}
		}
		return 32
	}
	if err := quick.Check(func(x, y [4]byte) bool {
		// Loopback and unspecified addresses pass through untransformed
		// (see Policy.IP), so the prefix property doesn't apply to them.
		if x[0] == 127 || y[0] == 127 || (x == [4]byte{}) || (y == [4]byte{}) {
			return true
		}
		ax, ay := netip.AddrFrom4(x), netip.AddrFrom4(y)
		ox, oy := p.IP(ax).As4(), p.IP(ay).As4()
		// Exact property: shared prefix length is preserved exactly,
		// because output bit i depends only on input bits < i plus input
		// bit i.
		return sharedLen(x, y) == sharedLen(ox, oy)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIPDeterministicAndKeyed(t *testing.T) {
	a := netip.MustParseAddr("10.1.2.3")
	p1, p2 := New([]byte("x")), New([]byte("x"))
	if p1.IP(a) != p2.IP(a) {
		t.Fatal("same key, different outputs")
	}
	if p1.IP(a) == New([]byte("y")).IP(a) {
		t.Fatal("different keys, same output")
	}
}

func TestIPSpecialAddressesPassThrough(t *testing.T) {
	p := New([]byte("k"))
	for _, s := range []string{"127.0.0.1", "0.0.0.0", "::1", "::"} {
		a := netip.MustParseAddr(s)
		if p.IP(a) != a {
			t.Errorf("special address %v transformed", a)
		}
	}
	var invalid netip.Addr
	if p.IP(invalid) != invalid {
		t.Error("invalid addr transformed")
	}
}

func TestIPv6Supported(t *testing.T) {
	p := New([]byte("k"))
	a := netip.MustParseAddr("2001:db8::1")
	b := netip.MustParseAddr("2001:db8::2")
	oa, ob := p.IP(a), p.IP(b)
	if !oa.Is6() || oa == a {
		t.Fatal("v6 not transformed")
	}
	oa16, ob16 := oa.As16(), ob.As16()
	for i := 0; i < 8; i++ { // shared /64 must survive
		if oa16[i] != ob16[i] {
			t.Fatal("shared /64 broken")
		}
	}
}

func TestFlowIDStableAndSensitive(t *testing.T) {
	p := New([]byte("k"))
	a := netip.MustParseAddr("192.168.1.10")
	b := netip.MustParseAddr("8.8.8.8")
	id1 := p.FlowID(a, b, 6, 5000, 443)
	if id1 != p.FlowID(a, b, 6, 5000, 443) {
		t.Fatal("FlowID unstable")
	}
	if id1 == p.FlowID(a, b, 6, 5001, 443) {
		t.Fatal("port ignored")
	}
	if id1 == p.FlowID(a, b, 17, 5000, 443) {
		t.Fatal("proto ignored")
	}
}
