package webui

import (
	"net/netip"
	"testing"
	"time"

	"natpeek/internal/anonymize"
	"natpeek/internal/capture"
	"natpeek/internal/mac"
	"natpeek/internal/packet"
)

// mkFrame builds one upstream TCP frame from the device to a public
// destination port (dstPort selects the domain bucket via SNI-less
// classification: unknown ports land in the "" domain).
func mkFrame(dev mac.Addr, dst netip.Addr, payload int) []byte {
	gwHW := mac.MustParse("20:4e:7f:00:00:01")
	return packet.NewBuilder(dev, gwHW).TCPv4(
		netip.MustParseAddr("192.168.1.10"), dst,
		packet.TCP{SrcPort: 5000, DstPort: 443, Flags: packet.FlagACK}, 64, make([]byte, payload))
}

func TestMonitorUsageDefaultsToWallClock(t *testing.T) {
	mon := capture.New(capture.Config{LANPrefix: netip.MustParsePrefix("192.168.1.0/24")},
		anonymize.New([]byte("k")))
	before := time.Now()
	snap := MonitorUsage(mon, nil, nil)()
	if snap.GeneratedAt.Before(before) {
		t.Fatalf("nil now: GeneratedAt %v before call time %v", snap.GeneratedAt, before)
	}
}

func TestMonitorUsageShareSplitsAcrossDevices(t *testing.T) {
	mon := capture.New(capture.Config{LANPrefix: netip.MustParsePrefix("192.168.1.0/24")},
		anonymize.New([]byte("k")))
	devA := mac.MustParse("a4:b1:97:00:00:0a")
	devB := mac.MustParse("00:24:54:00:00:0b")
	dst := netip.MustParseAddr("203.0.113.80")
	// Three frames for A, one for B: A's share must dominate.
	for i := 0; i < 3; i++ {
		mon.Process(mkFrame(devA, dst, 1000), capture.Upstream, t0)
	}
	mon.Process(mkFrame(devB, dst, 1000), capture.Upstream, t0)

	snap := MonitorUsage(mon, nil, func() time.Time { return t0 })()
	if len(snap.Devices) != 2 {
		t.Fatalf("devices: %+v", snap.Devices)
	}
	var shares float64
	for _, d := range snap.Devices {
		if d.Share <= 0 || d.Bytes <= 0 {
			t.Fatalf("degenerate row: %+v", d)
		}
		shares += d.Share
	}
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("shares sum to %v, want 1", shares)
	}
}

func TestMonitorUsageSkipsUnresolvedDomains(t *testing.T) {
	mon := capture.New(capture.Config{LANPrefix: netip.MustParsePrefix("192.168.1.0/24")},
		anonymize.New([]byte("k")))
	dev := mac.MustParse("a4:b1:97:00:00:0a")
	// Traffic with no DNS context lands in the unresolved ("") domain
	// bucket, which the dashboard must not render as a row.
	mon.Process(mkFrame(dev, netip.MustParseAddr("203.0.113.80"), 500), capture.Upstream, t0)

	snap := MonitorUsage(mon, nil, func() time.Time { return t0 })()
	for _, row := range snap.TopDomains {
		if row.Domain == "" {
			t.Fatalf("unresolved-domain row leaked into the dashboard: %+v", snap.TopDomains)
		}
	}
}
