// Package webui implements the router's built-in web interface. The
// paper relied on it twice: consenting households got "access to a Web
// interface that allowed them to observe and manage their usage over
// time and across devices" (§3.2.2 — "quite useful for users who have
// Internet service plans with low data caps"), and the DNS whitelist
// could be extended with "any domains that users add to this list using
// a Web interface built into our router firmware" (§6.4).
//
// The server renders a small HTML dashboard and a JSON API; its inputs
// come through callbacks so it composes with the capture monitor and
// cap manager without owning them.
package webui

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"natpeek/internal/domains"
)

// DeviceRow is one device's usage for display.
type DeviceRow struct {
	Device string  `json:"device"` // anonymized MAC
	Bytes  int64   `json:"bytes"`
	Share  float64 `json:"share"`
}

// DomainRow is one domain's usage for display.
type DomainRow struct {
	Domain string `json:"domain"`
	Bytes  int64  `json:"bytes"`
}

// UsageSnapshot is everything the dashboard shows.
type UsageSnapshot struct {
	GeneratedAt time.Time   `json:"generated_at"`
	Devices     []DeviceRow `json:"devices"`
	TopDomains  []DomainRow `json:"top_domains"`

	// Cap status (zero CapBytes = uncapped plan).
	CapBytes       int64 `json:"cap_bytes"`
	UsedBytes      int64 `json:"used_bytes"`
	RemainingBytes int64 `json:"remaining_bytes"`
	ProjectedBytes int64 `json:"projected_bytes"`
}

// Config wires the server to its data sources.
type Config struct {
	// RouterID labels the dashboard.
	RouterID string
	// Usage produces the current snapshot.
	Usage func() UsageSnapshot
	// Whitelist manages the user-extendable domain whitelist; nil
	// callbacks disable the endpoints.
	GetWhitelist    func() []string
	AddWhitelist    func(domain string) error
	RemoveWhitelist func(domain string)
}

// Server is the router's web interface.
type Server struct {
	cfg  Config
	http *http.Server
	ln   net.Listener
}

// ErrBadDomain rejects malformed whitelist additions.
var ErrBadDomain = errors.New("webui: malformed domain")

// New starts the interface on addr ("127.0.0.1:0" for ephemeral).
func New(addr string, cfg Config) (*Server, error) {
	if cfg.Usage == nil {
		return nil, errors.New("webui: Usage callback required")
	}
	s := &Server{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	mux.HandleFunc("GET /api/usage", s.handleUsage)
	mux.HandleFunc("GET /api/whitelist", s.handleWhitelistGet)
	mux.HandleFunc("POST /api/whitelist", s.handleWhitelistAdd)
	mux.HandleFunc("DELETE /api/whitelist", s.handleWhitelistRemove)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("webui: %w", err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.http.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.http.Close() }

// SharePct renders the device's share as a percentage for the template.
func (d DeviceRow) SharePct() string { return fmt.Sprintf("%.1f%%", d.Share*100) }

var dashboardTmpl = template.Must(template.New("dash").Parse(`<!doctype html>
<html><head><title>BISmark — {{.RouterID}}</title></head><body>
<h1>Home network usage — {{.RouterID}}</h1>
{{if gt .Snap.CapBytes 0}}
<p><b>Data cap:</b> {{.Snap.UsedBytes}} of {{.Snap.CapBytes}} bytes used
({{.Snap.RemainingBytes}} remaining, projected {{.Snap.ProjectedBytes}}).</p>
{{else}}<p>Uncapped plan.</p>{{end}}
<h2>By device</h2>
<table border="1"><tr><th>device</th><th>bytes</th><th>share</th></tr>
{{range .Snap.Devices}}<tr><td>{{.Device}}</td><td>{{.Bytes}}</td><td>{{.SharePct}}</td></tr>
{{end}}</table>
<h2>Top domains</h2>
<table border="1"><tr><th>domain</th><th>bytes</th></tr>
{{range .Snap.TopDomains}}<tr><td>{{.Domain}}</td><td>{{.Bytes}}</td></tr>
{{end}}</table>
<h2>Whitelist</h2>
<p>{{len .Whitelist}} user-added domains (plus the Alexa 200).</p>
</body></html>`))

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	snap := s.cfg.Usage()
	var wl []string
	if s.cfg.GetWhitelist != nil {
		wl = s.cfg.GetWhitelist()
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := dashboardTmpl.Execute(w, map[string]any{
		"RouterID":  s.cfg.RouterID,
		"Snap":      snap,
		"Whitelist": wl,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cfg.Usage())
}

func (s *Server) handleWhitelistGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.GetWhitelist == nil {
		http.Error(w, "whitelist disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cfg.GetWhitelist())
}

type whitelistReq struct {
	Domain string `json:"domain"`
}

func (s *Server) handleWhitelistAdd(w http.ResponseWriter, r *http.Request) {
	if s.cfg.AddWhitelist == nil {
		http.Error(w, "whitelist disabled", http.StatusNotFound)
		return
	}
	// Read-then-Unmarshal, not NewDecoder.Decode: a streaming decode
	// stops at the first JSON value and would silently accept a body
	// with trailing bytes.
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req whitelistReq
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.cfg.AddWhitelist(req.Domain); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWhitelistRemove(w http.ResponseWriter, r *http.Request) {
	if s.cfg.RemoveWhitelist == nil {
		http.Error(w, "whitelist disabled", http.StatusNotFound)
		return
	}
	d := r.URL.Query().Get("domain")
	if d == "" {
		http.Error(w, "domain query parameter required", http.StatusBadRequest)
		return
	}
	s.cfg.RemoveWhitelist(d)
	w.WriteHeader(http.StatusNoContent)
}

// Whitelist is a concurrency-safe user whitelist the capture pipeline
// and the web UI can share.
type Whitelist struct {
	mu      sync.Mutex
	entries map[string]bool
}

// NewWhitelist returns an empty user whitelist.
func NewWhitelist() *Whitelist {
	return &Whitelist{entries: make(map[string]bool)}
}

// Add validates and inserts a domain. Domains already covered by the
// built-in Alexa 200 are accepted as no-ops.
func (wl *Whitelist) Add(domain string) error {
	d := strings.ToLower(strings.TrimSuffix(strings.TrimSpace(domain), "."))
	if d == "" || !strings.Contains(d, ".") || strings.ContainsAny(d, " /\\") {
		return fmt.Errorf("%w: %q", ErrBadDomain, domain)
	}
	if domains.IsWhitelisted(d) {
		return nil // already public
	}
	wl.mu.Lock()
	defer wl.mu.Unlock()
	wl.entries[d] = true
	return nil
}

// Remove deletes a domain.
func (wl *Whitelist) Remove(domain string) {
	d := strings.ToLower(strings.TrimSpace(domain))
	wl.mu.Lock()
	defer wl.mu.Unlock()
	delete(wl.entries, d)
}

// Snapshot returns the entries, sorted.
func (wl *Whitelist) Snapshot() []string {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	out := make([]string, 0, len(wl.entries))
	for d := range wl.entries {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
