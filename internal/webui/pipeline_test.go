package webui

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"natpeek/internal/telemetry"
	"natpeek/internal/trace"
)

func pipelineServer(t *testing.T, cfg PipelineConfig) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	RegisterPipeline(mux, cfg)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func staticPipeline() PipelineSnapshot {
	return PipelineSnapshot{
		GeneratedAt: t0,
		Endpoints: []EndpointStat{
			{Endpoint: "/v1/uptime", Count: 42, P50ms: 1.5, P99ms: 12.25},
		},
		SpoolDepth: 7,
		Recent: []PipelineTrace{
			{ID: "aaaabbbbccccddddaaaabbbbccccdddd", Router: "gw-1", Endpoint: "/v1/uptime",
				Status: "error", DurationMS: 3.5, Spans: 4},
		},
	}
}

func TestPipelinePageRenders(t *testing.T) {
	srv := pipelineServer(t, PipelineConfig{Title: "collector", Snapshot: staticPipeline})
	resp, err := http.Get(srv.URL + "/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		"collector", "/v1/uptime", "1.50ms", "12.25ms", "spool depth 7",
		`/debug/traces/aaaabbbbccccddddaaaabbbbccccdddd?format=waterfall`, "error",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("pipeline page missing %q:\n%s", want, body)
		}
	}
}

func TestPipelineJSON(t *testing.T) {
	srv := pipelineServer(t, PipelineConfig{Snapshot: staticPipeline})
	resp, err := http.Get(srv.URL + "/api/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got PipelineSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Endpoints) != 1 || got.Endpoints[0].Count != 42 || got.SpoolDepth != 7 {
		t.Fatalf("snapshot JSON wrong: %+v", got)
	}
	if len(got.Recent) != 1 || got.Recent[0].Status != "error" {
		t.Fatalf("recent traces wrong: %+v", got)
	}
}

func TestPipelineNilSnapshotServesEmptyPage(t *testing.T) {
	srv := pipelineServer(t, PipelineConfig{Title: "empty"})
	for _, path := range []string{"/pipeline", "/api/pipeline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

func TestPipelineFromTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	lat := reg.HistogramVec("pt_seconds", "", []float64{0.001, 0.01, 0.1}, "endpoint")
	for i := 0; i < 100; i++ {
		lat.With("/v1/uptime").Observe(0.005)
	}
	lat.With("/v1/wifi").Observe(0.05)
	depth := reg.Gauge("pt_depth", "")
	depth.Set(3)

	rec := trace.NewRecorder(trace.Config{Capacity: 64, SampleRate: 1})
	for i, status := range []string{"", trace.StatusError, trace.StatusThrottled} {
		tr := &trace.Trace{
			ID: trace.IDFromKey("pt-" + string(rune('a'+i))), Router: "gw-1", Endpoint: "/v1/uptime",
			Status: status,
			Spans:  []trace.Span{{Name: "x", Start: t0, End: t0.Add(time.Millisecond)}},
		}
		rec.Finish(tr)
	}

	snap := PipelineFromTelemetry(lat, rec, depth)()
	if len(snap.Endpoints) != 2 {
		t.Fatalf("endpoints: %+v", snap.Endpoints)
	}
	// HistogramVec.Each iterates sorted by label key.
	if snap.Endpoints[0].Endpoint != "/v1/uptime" || snap.Endpoints[1].Endpoint != "/v1/wifi" {
		t.Fatalf("endpoint order: %+v", snap.Endpoints)
	}
	up := snap.Endpoints[0]
	if up.Count != 100 || up.P50ms <= 0 || up.P99ms < up.P50ms {
		t.Fatalf("percentiles wrong: %+v", up)
	}
	if snap.SpoolDepth != 3 {
		t.Fatalf("spool depth = %v", snap.SpoolDepth)
	}
	if len(snap.Recent) != 3 {
		t.Fatalf("recent: %+v", snap.Recent)
	}
	// Failures sort ahead of healthy traces.
	if snap.Recent[0].Status != trace.StatusError || snap.Recent[1].Status != trace.StatusThrottled {
		t.Fatalf("interesting-first ordering broken: %+v", snap.Recent)
	}
}

func TestPipelineFromTelemetryNilSources(t *testing.T) {
	snap := PipelineFromTelemetry(nil, nil, nil)()
	if len(snap.Endpoints) != 0 || len(snap.Recent) != 0 || snap.SpoolDepth != 0 {
		t.Fatalf("nil sources produced data: %+v", snap)
	}
	if snap.GeneratedAt.IsZero() {
		t.Fatal("GeneratedAt not stamped")
	}
}
