package webui

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"natpeek/internal/anonymize"
	"natpeek/internal/capmgmt"
	"natpeek/internal/capture"
	"natpeek/internal/mac"
	"natpeek/internal/packet"
)

var t0 = time.Date(2013, 4, 5, 12, 0, 0, 0, time.UTC)

func staticUsage() UsageSnapshot {
	return UsageSnapshot{
		GeneratedAt: t0,
		Devices: []DeviceRow{
			{Device: "a4:b1:97:11:22:33", Bytes: 900, Share: 0.9},
			{Device: "00:24:54:44:55:66", Bytes: 100, Share: 0.1},
		},
		TopDomains: []DomainRow{{Domain: "netflix.com", Bytes: 800}},
		CapBytes:   1000, UsedBytes: 700, RemainingBytes: 300, ProjectedBytes: 950,
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Usage == nil {
		cfg.Usage = staticUsage
	}
	s, err := New("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDashboardRenders(t *testing.T) {
	s := startServer(t, Config{RouterID: "gw-1", GetWhitelist: func() []string { return []string{"x.example"} }})
	resp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{"gw-1", "netflix.com", "90.0%", "Data cap", "1 user-added"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, body)
		}
	}
}

func TestUsageJSON(t *testing.T) {
	s := startServer(t, Config{})
	resp, err := http.Get("http://" + s.Addr() + "/api/usage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap UsageSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.CapBytes != 1000 || len(snap.Devices) != 2 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestWhitelistEndpoints(t *testing.T) {
	wl := NewWhitelist()
	s := startServer(t, Config{
		GetWhitelist:    wl.Snapshot,
		AddWhitelist:    wl.Add,
		RemoveWhitelist: wl.Remove,
	})
	base := "http://" + s.Addr() + "/api/whitelist"

	// Add.
	resp, err := http.Post(base, "application/json", strings.NewReader(`{"domain":"myclinic.example"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	// Get.
	resp, err = http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if len(got) != 1 || got[0] != "myclinic.example" {
		t.Fatalf("whitelist %v", got)
	}
	// Remove.
	req, _ := http.NewRequest(http.MethodDelete, base+"?domain=myclinic.example", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(wl.Snapshot()) != 0 {
		t.Fatal("remove failed")
	}
}

func TestWhitelistRejectsBadDomains(t *testing.T) {
	wl := NewWhitelist()
	s := startServer(t, Config{AddWhitelist: wl.Add})
	// The last case is the trailing-garbage regression: the old
	// json.NewDecoder(r.Body).Decode stopped after the first JSON value
	// and accepted whatever followed it.
	for _, body := range []string{`{"domain":""}`, `{"domain":"nodots"}`, `{"domain":"bad domain.example"}`, `not-json`,
		`{"domain":"ok.example"}{"domain":"smuggled.example"}`} {
		resp, err := http.Post("http://"+s.Addr()+"/api/whitelist", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d", body, resp.StatusCode)
		}
	}
}

func TestWhitelistDisabled(t *testing.T) {
	s := startServer(t, Config{})
	resp, err := http.Get("http://" + s.Addr() + "/api/whitelist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestWhitelistAlreadyPublicIsNoop(t *testing.T) {
	wl := NewWhitelist()
	if err := wl.Add("www.google.com"); err != nil {
		t.Fatal(err)
	}
	if len(wl.Snapshot()) != 0 {
		t.Fatal("public domain stored as user entry")
	}
}

func TestMonitorUsageAdapter(t *testing.T) {
	mon := capture.New(capture.Config{LANPrefix: netip.MustParsePrefix("192.168.1.0/24")},
		anonymize.New([]byte("k")))
	caps := capmgmt.New(capmgmt.Plan{MonthlyCapBytes: 1 << 30}, t0)

	devHW := mac.MustParse("a4:b1:97:00:00:0a")
	gwHW := mac.MustParse("20:4e:7f:00:00:01")
	frame := packet.NewBuilder(devHW, gwHW).TCPv4(
		netip.MustParseAddr("192.168.1.10"), netip.MustParseAddr("203.0.113.80"),
		packet.TCP{SrcPort: 5000, DstPort: 443, Flags: packet.FlagACK}, 64, make([]byte, 1000))
	mon.Process(frame, capture.Upstream, t0)
	caps.Record(devHW, int64(len(frame)), t0)

	snap := MonitorUsage(mon, caps, func() time.Time { return t0 })()
	if len(snap.Devices) != 1 || snap.Devices[0].Share != 1 {
		t.Fatalf("devices %+v", snap.Devices)
	}
	if snap.CapBytes != 1<<30 || snap.UsedBytes != int64(len(frame)) {
		t.Fatalf("cap fields %+v", snap)
	}
	if snap.ProjectedBytes < snap.UsedBytes {
		t.Fatal("projection below usage")
	}
}

func TestMonitorUsageNoCaps(t *testing.T) {
	mon := capture.New(capture.Config{LANPrefix: netip.MustParsePrefix("192.168.1.0/24")},
		anonymize.New([]byte("k")))
	snap := MonitorUsage(mon, nil, func() time.Time { return t0 })()
	if snap.CapBytes != 0 || len(snap.Devices) != 0 {
		t.Fatalf("empty snapshot %+v", snap)
	}
}
