package webui

import (
	"sort"
	"time"

	"natpeek/internal/capmgmt"
	"natpeek/internal/capture"
)

// MonitorUsage adapts a capture monitor and an optional cap manager into
// the dashboard's Usage callback. now supplies the current time (so the
// simulated clock works); nil means time.Now.
func MonitorUsage(mon *capture.Monitor, caps *capmgmt.Manager, now func() time.Time) func() UsageSnapshot {
	if now == nil {
		now = time.Now
	}
	return func() UsageSnapshot {
		at := now()
		snap := UsageSnapshot{GeneratedAt: at}

		devs := mon.Devices()
		var total int64
		for _, d := range devs {
			total += d.Total()
		}
		for _, d := range devs {
			row := DeviceRow{Device: d.Device.String(), Bytes: d.Total()}
			if total > 0 {
				row.Share = float64(d.Total()) / float64(total)
			}
			snap.Devices = append(snap.Devices, row)
		}

		byDomain := mon.DomainBytes()
		for dom, b := range byDomain {
			if dom == "" {
				continue
			}
			snap.TopDomains = append(snap.TopDomains, DomainRow{Domain: dom, Bytes: b})
		}
		sort.Slice(snap.TopDomains, func(i, j int) bool {
			if snap.TopDomains[i].Bytes != snap.TopDomains[j].Bytes {
				return snap.TopDomains[i].Bytes > snap.TopDomains[j].Bytes
			}
			return snap.TopDomains[i].Domain < snap.TopDomains[j].Domain
		})
		if len(snap.TopDomains) > 20 {
			snap.TopDomains = snap.TopDomains[:20]
		}

		if caps != nil {
			snap.CapBytes = caps.Cap()
			snap.UsedBytes = caps.Used()
			snap.RemainingBytes = caps.Remaining()
			snap.ProjectedBytes = caps.Projection(at)
		}
		return snap
	}
}
