package webui

// The pipeline page is the ops view of the ingest path: live
// per-endpoint latency percentiles, spool depth, and the most recent
// slow or failed traces from the flight recorder, each linking to its
// /debug/traces waterfall. It mounts on whatever mux the process
// already serves (the collector's API mux, the gateway's debug
// listener) — same composition-by-callback pattern as the usage
// dashboard.

import (
	"encoding/json"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"sort"
	"time"

	"natpeek/internal/telemetry"
	"natpeek/internal/trace"
)

// EndpointStat is one endpoint's live latency summary.
type EndpointStat struct {
	Endpoint string  `json:"endpoint"`
	Count    uint64  `json:"count"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// Fmt50 and Fmt99 render the percentiles for the template.
func (e EndpointStat) Fmt50() string { return fmtMs(e.P50ms) }
func (e EndpointStat) Fmt99() string { return fmtMs(e.P99ms) }

func fmtMs(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2fms", v)
}

// PipelineTrace is one recent trace on the pipeline page.
type PipelineTrace struct {
	ID         string  `json:"id"`
	Router     string  `json:"router,omitempty"`
	Endpoint   string  `json:"endpoint,omitempty"`
	Status     string  `json:"status"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
}

// FmtDur renders the duration for the template.
func (t PipelineTrace) FmtDur() string { return fmtMs(t.DurationMS) }

// PipelineSnapshot is everything the pipeline page shows.
type PipelineSnapshot struct {
	GeneratedAt time.Time       `json:"generated_at"`
	Endpoints   []EndpointStat  `json:"endpoints"`
	SpoolDepth  float64         `json:"spool_depth"`
	Recent      []PipelineTrace `json:"recent_traces"`
}

// PipelineConfig wires the pipeline page to its data sources.
type PipelineConfig struct {
	// Title labels the page (e.g. "collector", a router ID).
	Title string
	// Snapshot produces the current view; required (RegisterPipeline
	// substitutes an empty view if nil, so a misconfigured mount shows
	// an empty page rather than crashing the process's mux).
	Snapshot func() PipelineSnapshot
}

// RegisterPipeline mounts the ops view on mux: GET /pipeline (HTML) and
// GET /api/pipeline (JSON).
func RegisterPipeline(mux *http.ServeMux, cfg PipelineConfig) {
	if cfg.Snapshot == nil {
		cfg.Snapshot = func() PipelineSnapshot { return PipelineSnapshot{GeneratedAt: time.Now()} }
	}
	mux.HandleFunc("GET /pipeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		err := pipelineTmpl.Execute(w, map[string]any{
			"Title": cfg.Title,
			"Snap":  cfg.Snapshot(),
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /api/pipeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(cfg.Snapshot())
	})
}

var pipelineTmpl = template.Must(template.New("pipeline").Parse(`<!doctype html>
<html><head><title>pipeline — {{.Title}}</title></head><body>
<h1>Ingest pipeline — {{.Title}}</h1>
<p>Generated {{.Snap.GeneratedAt.Format "15:04:05.000"}} · spool depth {{.Snap.SpoolDepth}}</p>
<h2>Endpoint latency</h2>
<table border="1"><tr><th>endpoint</th><th>requests</th><th>p50</th><th>p99</th></tr>
{{range .Snap.Endpoints}}<tr><td>{{.Endpoint}}</td><td>{{.Count}}</td><td>{{.Fmt50}}</td><td>{{.Fmt99}}</td></tr>
{{end}}</table>
<h2>Recent slow / failed traces</h2>
<table border="1"><tr><th>trace</th><th>router</th><th>endpoint</th><th>status</th><th>duration</th><th>spans</th></tr>
{{range .Snap.Recent}}<tr><td><a href="/debug/traces/{{.ID}}?format=waterfall">{{.ID}}</a></td>
<td>{{.Router}}</td><td>{{.Endpoint}}</td><td>{{.Status}}</td><td>{{.FmtDur}}</td><td>{{.Spans}}</td></tr>
{{end}}</table>
</body></html>`))

// maxPipelineTraces bounds the recent-trace table.
const maxPipelineTraces = 15

// PipelineFromTelemetry adapts the standard instrumentation — a latency
// HistogramVec keyed by endpoint, a trace recorder, and the process
// spool-depth gauge — into the page's Snapshot callback. Any source may
// be nil; its section is simply empty.
func PipelineFromTelemetry(lat *telemetry.HistogramVec, rec *trace.Recorder, depth *telemetry.Gauge) func() PipelineSnapshot {
	return func() PipelineSnapshot {
		snap := PipelineSnapshot{GeneratedAt: time.Now()}
		if lat != nil {
			lat.Each(func(values []string, h *telemetry.Histogram) {
				if len(values) == 0 {
					return
				}
				s := h.Snapshot()
				snap.Endpoints = append(snap.Endpoints, EndpointStat{
					Endpoint: values[0],
					Count:    s.Count,
					P50ms:    s.Quantile(0.50) * 1000,
					P99ms:    s.Quantile(0.99) * 1000,
				})
			})
		}
		if depth != nil {
			snap.SpoolDepth = depth.Value()
		}
		if rec != nil {
			recent := rec.Traces(trace.Filter{Limit: 4 * maxPipelineTraces})
			// Interesting first: failures and throttles ahead of merely
			// sampled-in healthy traces, preserving recency within each
			// group.
			sort.SliceStable(recent, func(i, j int) bool {
				return statusRank(recent[i].Status) > statusRank(recent[j].Status)
			})
			for _, t := range recent {
				if len(snap.Recent) >= maxPipelineTraces {
					break
				}
				snap.Recent = append(snap.Recent, PipelineTrace{
					ID: t.ID, Router: t.Router, Endpoint: t.Endpoint, Status: t.Status,
					DurationMS: float64(t.Duration()) / float64(time.Millisecond),
					Spans:      len(t.Spans),
				})
			}
		}
		return snap
	}
}

func statusRank(s string) int {
	switch s {
	case trace.StatusError:
		return 3
	case trace.StatusThrottled:
		return 2
	case trace.StatusRejected, trace.StatusDuplicate:
		return 1
	default:
		return 0
	}
}
