// Package trace is the pipeline's distributed-tracing layer: lightweight
// spans threaded through the whole ingest path (gateway export → spool
// queue/backoff → HTTP attempt → collector decode/dedupe/apply), so a
// single batch or router can be followed end to end and "where did the
// latency/row go?" has an answer per payload, not just in aggregate.
//
// Identity is the existing idempotency key: a payload's trace ID is
// derived deterministically from its key (IDFromKey), so every retry of
// the same payload — across spool backoff cycles, 429 throttling, even a
// client restart replaying its journal — joins the same trace. Client-side
// spans ride inside the /v1/batch items (and a traceparent-style header
// carries the batch's representative context), and the collector merges
// them with its own server-side spans into one completed trace.
//
// Completed traces land in a bounded in-process ring buffer with
// tail-based sampling: error, throttled, and slow traces are always kept,
// the rest are sampled probabilistically (see Recorder). The ring is
// exposed at /debug/traces (list + filters) and /debug/traces/{id}
// (JSON or an ASCII waterfall) — see RegisterDebug.
//
// Tracing is on by default and cheap (a few time.Now calls and slice
// appends per payload); SetEnabled(false) reduces it to a single atomic
// load on every path.
package trace

import (
	"strings"
	"sync/atomic"
	"time"
)

// Span statuses. Empty means "ok".
const (
	StatusOK        = "ok"
	StatusError     = "error"
	StatusThrottled = "throttled"
	StatusDuplicate = "duplicate"
	StatusRejected  = "rejected"
)

var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled toggles tracing process-wide. Disabled tracing reduces every
// instrumentation site to one atomic load; existing recorded traces are
// kept.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether tracing is on.
func Enabled() bool { return enabled.Load() }

// Attr is one key=value annotation on a span.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Span is one timed operation within a trace. A zero End means the span
// was still open when shipped (e.g. the in-flight HTTP attempt); the
// waterfall renders it to the trace's end.
type Span struct {
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end,omitempty"`
	Status string    `json:"status,omitempty"`
	Attrs  []Attr    `json:"attrs,omitempty"`
}

// Dur returns the span's duration (zero-End spans report zero).
func (s Span) Dur() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace is one payload's completed end-to-end history.
type Trace struct {
	ID       string    `json:"id"`
	Router   string    `json:"router,omitempty"`
	Endpoint string    `json:"endpoint,omitempty"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Status   string    `json:"status"`
	Spans    []Span    `json:"spans"`

	// Keep forces the tail sampler to retain the trace regardless of
	// status or duration. Pre-sampled hot paths (Recorder.WantTrace) set
	// it so the sampling coin is not flipped a second time at Finish.
	Keep bool `json:"-"`
}

// Duration is the trace's wall-clock extent.
func (t *Trace) Duration() time.Duration { return t.End.Sub(t.Start) }

// Wire is the client-side half of a trace, shipped inside a batch item so
// the collector can assemble the end-to-end view. Spans typically cover
// the gateway export window, spool queueing, and failed delivery
// attempts; the server appends its own decode/dedupe/apply spans.
type Wire struct {
	TraceID string `json:"trace_id"`
	Router  string `json:"router,omitempty"`
	Spans   []Span `json:"spans,omitempty"`
}

// IDFromKey derives a payload's trace ID from its idempotency key. The
// derivation is deterministic, so every redelivery of the same key joins
// the same trace — which is exactly what makes a dropped-then-retried
// batch one story instead of several. 128 bits (two salted FNV-64a
// hashes) keeps accidental collisions out of reach at fleet scale.
// Hashing and hex-encoding are inlined: this runs once per keyed item on
// the ingest hot path, and the hash/fmt package route costs several
// allocations per call.
func IDFromKey(key string) string {
	var buf [32]byte
	idFromKeyInto(&buf, key)
	return string(buf[:])
}

// idFromKeyInto writes IDFromKey(key) into a caller-owned buffer so the
// pre-sampling path (Recorder.WantTraceKey) can probe its maps without
// materializing the ID string.
func idFromKeyInto(buf *[32]byte, key string) {
	h1 := fnvString(fnvOffset, key)
	h2 := fnvString(fnvString(fnvOffset, "natpeek:"), key)
	hexPut(buf[:16], h1)
	hexPut(buf[16:], h2)
}

// FNV-64a parameters (hash/fnv's, restated so the hot path can avoid the
// hash.Hash64 allocation and string→[]byte copies).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hexPut(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// FormatTraceparent renders a W3C traceparent-style header value for the
// given trace ID (the span-ID field carries a fixed marker; natpeek spans
// are identified by name, not ID).
func FormatTraceparent(traceID string) string {
	return "00-" + traceID + "-00000000000000a7-01"
}

// ParseTraceparent extracts the trace ID from a traceparent-style header
// value. It accepts both the 4-field W3C form and a bare trace ID.
func ParseTraceparent(v string) (string, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return "", false
	}
	parts := strings.Split(v, "-")
	if len(parts) >= 2 {
		v = parts[1]
	}
	if len(v) != 32 || !isHex(v) {
		return "", false
	}
	return v, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}
