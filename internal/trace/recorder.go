package trace

import (
	"sort"
	"sync"
	"time"

	"natpeek/internal/telemetry"
)

// Config tunes a Recorder. The zero value gets sensible defaults.
type Config struct {
	// Capacity bounds the completed-trace ring (default 512). The oldest
	// trace is evicted when a new one lands in a full ring.
	Capacity int
	// SampleRate is the probability an uninteresting trace (ok status,
	// faster than SlowThreshold) is kept (default 0.05). Error, throttled,
	// and slow traces are always kept — that is the tail-sampling
	// contract: the traces worth debugging are never the ones sampled
	// away.
	SampleRate float64
	// SlowThreshold marks a trace slow (default 500ms end-to-end).
	SlowThreshold time.Duration
}

func (c *Config) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.SampleRate <= 0 {
		c.SampleRate = 0.05
	}
	if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
}

// maxPending bounds the orphan-span buffer (spans recorded before their
// trace completes, e.g. a 429 throttle span for a batch whose retry has
// not landed yet).
const maxPending = 1024

// Recorder keeps completed traces in a bounded ring with tail-based
// sampling. It is safe for concurrent use.
type Recorder struct {
	mu           sync.Mutex
	cfg          Config
	ring         []*Trace // insertion-ordered circular buffer
	next         int
	byID         map[string]int // trace ID → ring slot, evicted with the ring
	pending      map[string][]Span
	pendingOrder []string // FIFO eviction for the pending buffer
	rng          uint64

	mKept    *telemetry.Counter
	mSampled *telemetry.Counter
	mMerged  *telemetry.Counter
}

// NewRecorder builds a recorder and registers its metrics.
func NewRecorder(cfg Config) *Recorder {
	cfg.fill()
	reg := telemetry.Default
	return &Recorder{
		cfg:     cfg,
		ring:    make([]*Trace, cfg.Capacity),
		byID:    make(map[string]int),
		pending: make(map[string][]Span),
		rng:     0x9e3779b97f4a7c15,
		mKept: reg.Counter("natpeek_trace_kept_total",
			"Completed traces kept by the tail sampler (error/slow/throttled always, others probabilistically)."),
		mSampled: reg.Counter("natpeek_trace_sampled_out_total",
			"Completed traces dropped by the tail sampler (healthy and fast)."),
		mMerged: reg.Counter("natpeek_trace_merged_total",
			"Trace completions merged into an already-recorded trace (retries joining their original)."),
	}
}

// SetSampling replaces the sampling knobs at runtime (zero values keep
// defaults). The ring capacity is fixed at construction.
func (r *Recorder) SetSampling(rate float64, slow time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cfg := r.cfg
	cfg.SampleRate = rate
	cfg.SlowThreshold = slow
	cfg.fill()
	cfg.Capacity = r.cfg.Capacity
	r.cfg = cfg
}

// AddPending records a span for a trace that has not completed yet (the
// collector uses it for 429 throttle spans: the batch was rejected before
// its items could be decoded, so the span waits for the retry to land).
// The buffer is bounded; the oldest pending trace is evicted on overflow.
func (r *Recorder) AddPending(traceID string, s Span) {
	if traceID == "" || !Enabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.pending[traceID]; !ok {
		if len(r.pendingOrder) >= maxPending {
			oldest := r.pendingOrder[0]
			r.pendingOrder = r.pendingOrder[1:]
			delete(r.pending, oldest)
		}
		r.pendingOrder = append(r.pendingOrder, traceID)
	}
	r.pending[traceID] = append(r.pending[traceID], s)
}

// Finish completes a trace: pending spans are folded in, the trace's
// extent and status are normalized, the tail-sampling decision is made,
// and kept traces land in the ring. A completion whose ID is already in
// the ring merges into (replaces) the existing entry — that is how a
// retried payload's later, more complete history wins.
func (r *Recorder) Finish(t *Trace) {
	if t == nil || t.ID == "" || !Enabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ps, ok := r.pending[t.ID]; ok {
		t.Spans = append(t.Spans, ps...)
		delete(r.pending, t.ID)
		for i, id := range r.pendingOrder {
			if id == t.ID {
				r.pendingOrder = append(r.pendingOrder[:i], r.pendingOrder[i+1:]...)
				break
			}
		}
	}
	t.normalize()

	if slot, ok := r.byID[t.ID]; ok && r.ring[slot] != nil && r.ring[slot].ID == t.ID {
		// A retry completed again (e.g. dedupe after a dropped ack): the
		// new completion carries the fuller history.
		r.ring[slot] = t
		r.mMerged.Inc()
		return
	}
	if !r.keep(t) {
		r.mSampled.Inc()
		return
	}
	r.mKept.Inc()
	if old := r.ring[r.next]; old != nil {
		delete(r.byID, old.ID)
	}
	r.ring[r.next] = t
	r.byID[t.ID] = r.next
	r.next = (r.next + 1) % len(r.ring)
}

// keep is the tail-sampling decision. Interesting traces (non-ok status
// or slow) are always kept; the rest pass with probability SampleRate.
func (r *Recorder) keep(t *Trace) bool {
	if t.Keep || t.Status != StatusOK || t.Duration() >= r.cfg.SlowThreshold {
		return true
	}
	return r.coin()
}

// coin flips the sampling coin. Caller holds r.mu.
func (r *Recorder) coin() bool {
	// xorshift64*: cheap, good-enough uniformity for sampling.
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	return float64(r.rng>>11)/float64(1<<53) < r.cfg.SampleRate
}

// WantTraceKey reports whether a trace completing around now for the
// payload with this idempotency key would be kept, so hot paths can skip
// construction entirely for the traces the sampler would drop — the
// decision, not the assembly, is what runs per payload, and a skipped
// payload costs zero allocations (the trace ID is hashed into a stack
// buffer, never materialized). It mirrors keep() exactly: pending spans
// (a 429 throttle waiting to fold in), an already-recorded trace (a
// retry joining its original), a non-ok wire span, or a span old enough
// to make the trace slow all force true; otherwise the sampling coin
// decides. A caller that builds the trace must set Trace.Keep so Finish
// honors this decision instead of flipping the coin twice; non-ok
// outcomes discovered after a false answer can still build lazily (keep
// retains them by status).
func (r *Recorder) WantTraceKey(key string, spans []Span, now time.Time) bool {
	if key == "" || !Enabled() {
		return false
	}
	var id [32]byte
	idFromKeyInto(&id, key)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.pending[string(id[:])]; ok {
		return true
	}
	if slot, ok := r.byID[string(id[:])]; ok && r.ring[slot] != nil {
		return true
	}
	slowBefore := now.Add(-r.cfg.SlowThreshold)
	for _, s := range spans {
		if s.Status != "" && s.Status != StatusOK {
			return true
		}
		if !s.Start.IsZero() && !s.Start.After(slowBefore) {
			return true
		}
	}
	return r.coin()
}

// NoteSampledOut counts a completion a pre-sampled hot path skipped
// (WantTrace said no and the payload finished healthy), keeping the
// kept/sampled-out counters consistent with the always-build path.
func (r *Recorder) NoteSampledOut() { r.mSampled.Inc() }

// normalize orders spans by start time, stretches the trace extent to
// cover them, and derives the trace status from its spans when unset
// (worst span status wins: error > throttled > duplicate/rejected > ok).
func (t *Trace) normalize() {
	// Spans arrive chronologically on the happy path (queued → send →
	// decode → apply); only sort when a merge or pending fold broke the
	// order, keeping Finish off the reflection-based sort per payload.
	sorted := true
	for i := 1; i < len(t.Spans); i++ {
		if t.Spans[i].Start.Before(t.Spans[i-1].Start) {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(t.Spans, func(i, j int) bool { return t.Spans[i].Start.Before(t.Spans[j].Start) })
	}
	for _, s := range t.Spans {
		if t.Start.IsZero() || (!s.Start.IsZero() && s.Start.Before(t.Start)) {
			t.Start = s.Start
		}
		if s.End.After(t.End) {
			t.End = s.End
		}
	}
	if t.End.Before(t.Start) {
		t.End = t.Start
	}
	if t.Status == "" {
		t.Status = StatusOK
		best := 0
		for _, s := range t.Spans {
			if rk := severity(s.Status); rk > best {
				best = rk
				t.Status = s.Status
			}
		}
	}
}

// severity ranks span statuses for worst-wins trace status derivation.
func severity(s string) int {
	switch s {
	case StatusError:
		return 4
	case StatusThrottled:
		return 3
	case StatusRejected:
		return 2
	case StatusDuplicate:
		return 1
	default:
		return 0
	}
}

// Filter selects traces from the ring. Zero fields match everything.
type Filter struct {
	Router   string
	Endpoint string
	Status   string
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// Limit caps the result count (0 = no cap). Most recent first.
	Limit int
}

// Traces returns the recorded traces matching f, most recently finished
// first.
func (r *Recorder) Traces(f Filter) []*Trace {
	r.mu.Lock()
	out := make([]*Trace, 0, len(r.byID))
	// Walk the ring backwards from the most recent insertion.
	n := len(r.ring)
	for i := 0; i < n; i++ {
		t := r.ring[((r.next-1-i)%n+n)%n]
		if t == nil {
			continue
		}
		if f.Router != "" && t.Router != f.Router {
			continue
		}
		if f.Endpoint != "" && t.Endpoint != f.Endpoint {
			continue
		}
		if f.Status != "" && t.Status != f.Status {
			continue
		}
		if f.MinDuration > 0 && t.Duration() < f.MinDuration {
			continue
		}
		out = append(out, t)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	r.mu.Unlock()
	return out
}

// Get returns the recorded trace with the given ID.
func (r *Recorder) Get(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.byID[id]
	if !ok || r.ring[slot] == nil {
		return nil, false
	}
	return r.ring[slot], true
}

// Len returns the number of traces currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}
