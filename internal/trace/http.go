package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// RegisterDebug mounts the trace endpoints on mux:
//
//	GET /debug/traces            list (filters: router, endpoint, status,
//	                             min_ms, limit; default limit 50)
//	GET /debug/traces/{id}       one trace as JSON, or as an ASCII
//	                             waterfall with ?format=waterfall
func RegisterDebug(mux *http.ServeMux, rec *Recorder) {
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		f := Filter{
			Router:   q.Get("router"),
			Endpoint: q.Get("endpoint"),
			Status:   q.Get("status"),
			Limit:    50,
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				http.Error(w, "bad min_ms", http.StatusBadRequest)
				return
			}
			f.MinDuration = time.Duration(ms * float64(time.Millisecond))
		}
		traces := rec.Traces(f)
		type summary struct {
			ID         string    `json:"id"`
			Router     string    `json:"router,omitempty"`
			Endpoint   string    `json:"endpoint,omitempty"`
			Status     string    `json:"status"`
			Start      time.Time `json:"start"`
			DurationMS float64   `json:"duration_ms"`
			Spans      int       `json:"spans"`
		}
		out := make([]summary, len(traces))
		for i, t := range traces {
			out[i] = summary{
				ID: t.ID, Router: t.Router, Endpoint: t.Endpoint,
				Status: t.Status, Start: t.Start,
				DurationMS: float64(t.Duration()) / float64(time.Millisecond),
				Spans:      len(t.Spans),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})

	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		t, ok := rec.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "trace not found (evicted or sampled out)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "waterfall" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, Waterfall(t))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(t)
	})
}

// waterfallWidth is the bar area of the ASCII rendering, in columns.
const waterfallWidth = 64

// Waterfall renders a trace as an ASCII span chart: one line per span,
// bars positioned on a shared time axis, annotated with duration, status,
// and attributes. Open spans (zero End) extend to the trace's end and are
// marked with a trailing '…'.
func Waterfall(t *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  router=%s endpoint=%s status=%s\n",
		t.ID, orDash(t.Router), orDash(t.Endpoint), t.Status)
	fmt.Fprintf(&b, "start %s  duration %s  spans %d\n\n",
		t.Start.Format(time.RFC3339Nano), t.Duration(), len(t.Spans))

	nameW := 0
	for _, s := range t.Spans {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	total := t.Duration()
	for _, s := range t.Spans {
		end, open := s.End, false
		if end.IsZero() {
			end, open = t.End, true
		}
		lo, hi := 0, waterfallWidth
		if total > 0 {
			lo = int(float64(s.Start.Sub(t.Start)) / float64(total) * waterfallWidth)
			hi = int(float64(end.Sub(t.Start)) / float64(total) * waterfallWidth)
		}
		if lo < 0 {
			lo = 0
		}
		if hi > waterfallWidth {
			hi = waterfallWidth
		}
		if hi <= lo {
			hi = lo + 1
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("▇", hi-lo) + strings.Repeat(" ", waterfallWidth-hi)
		d := end.Sub(s.Start)
		mark := ""
		if open {
			mark = "…"
		}
		fmt.Fprintf(&b, "%-*s |%s| %10s%s", nameW, s.Name, bar, d.Round(time.Microsecond), mark)
		if s.Status != "" && s.Status != StatusOK {
			fmt.Fprintf(&b, " [%s]", s.Status)
		}
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.K, a.V)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
