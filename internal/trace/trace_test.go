package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

func mkTrace(id, status string, dur time.Duration) *Trace {
	return &Trace{
		ID:     id,
		Router: "gw-1", Endpoint: "/v1/uptime",
		Status: status,
		Spans: []Span{
			{Name: "spool.queued", Start: t0, End: t0.Add(dur / 2)},
			{Name: "collector.apply", Start: t0.Add(dur / 2), End: t0.Add(dur), Status: status},
		},
	}
}

func TestIDFromKeyDeterministicAndDistinct(t *testing.T) {
	a, b := IDFromKey("gw-1:abcd:/v1/uptime:7"), IDFromKey("gw-1:abcd:/v1/uptime:7")
	if a != b {
		t.Fatalf("same key, different IDs: %s vs %s", a, b)
	}
	if len(a) != 32 || !isHex(a) {
		t.Fatalf("ID %q not 32 hex chars", a)
	}
	if IDFromKey("other") == a {
		t.Fatal("distinct keys collided")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := IDFromKey("k")
	got, ok := ParseTraceparent(FormatTraceparent(id))
	if !ok || got != id {
		t.Fatalf("round trip: got %q ok=%v, want %q", got, ok, id)
	}
	if bare, ok := ParseTraceparent(id); !ok || bare != id {
		t.Fatalf("bare ID: got %q ok=%v", bare, ok)
	}
	for _, bad := range []string{"", "00-zz-00-01", "00-1234-00-01", "nothex!"} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestTailSamplingKeepsInteresting(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 64, SampleRate: 0.0001, SlowThreshold: time.Second})
	rec.Finish(mkTrace(IDFromKey("err"), StatusError, time.Millisecond))
	rec.Finish(mkTrace(IDFromKey("thr"), StatusThrottled, time.Millisecond))
	rec.Finish(mkTrace(IDFromKey("slow"), "", 2*time.Second))
	for _, key := range []string{"err", "thr", "slow"} {
		if _, ok := rec.Get(IDFromKey(key)); !ok {
			t.Fatalf("interesting trace %q was sampled out", key)
		}
	}
	// Healthy-and-fast traces are (almost) all dropped at this rate.
	for i := 0; i < 200; i++ {
		rec.Finish(mkTrace(IDFromKey(fmt.Sprintf("ok-%d", i)), "", time.Millisecond))
	}
	if n := rec.Len(); n > 10 {
		t.Fatalf("sampler kept %d healthy traces at rate 0.0001", n)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 4, SampleRate: 1})
	for i := 0; i < 6; i++ {
		rec.Finish(mkTrace(IDFromKey(fmt.Sprintf("t-%d", i)), StatusError, time.Millisecond))
	}
	if n := rec.Len(); n != 4 {
		t.Fatalf("ring holds %d, want 4", n)
	}
	if _, ok := rec.Get(IDFromKey("t-0")); ok {
		t.Fatal("oldest trace not evicted")
	}
	if _, ok := rec.Get(IDFromKey("t-5")); !ok {
		t.Fatal("newest trace missing")
	}
}

func TestRetryMergesIntoSameTrace(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 8, SampleRate: 1})
	id := IDFromKey("retry-me")
	first := mkTrace(id, StatusError, time.Millisecond)
	rec.Finish(first)
	second := mkTrace(id, "", 2*time.Millisecond)
	second.Spans = append(second.Spans, Span{Name: "spool.attempt", Start: t0, End: t0.Add(time.Millisecond), Status: StatusError})
	rec.Finish(second)
	got, ok := rec.Get(id)
	if !ok {
		t.Fatal("merged trace missing")
	}
	if len(got.Spans) != 3 {
		t.Fatalf("merge kept %d spans, want the fuller 3", len(got.Spans))
	}
	if rec.Len() != 1 {
		t.Fatalf("retry created a second entry: %d", rec.Len())
	}
}

func TestPendingSpansJoinOnFinish(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 8, SampleRate: 1})
	id := IDFromKey("throttled-batch")
	rec.AddPending(id, Span{Name: "collector.throttle", Start: t0, End: t0.Add(time.Millisecond), Status: StatusThrottled})
	tr := mkTrace(id, "", time.Millisecond)
	rec.Finish(tr)
	got, _ := rec.Get(id)
	found := false
	for _, s := range got.Spans {
		if s.Name == "collector.throttle" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pending throttle span not folded in: %+v", got.Spans)
	}
	if got.Status != StatusThrottled {
		t.Fatalf("status %q, want throttled (worst span wins)", got.Status)
	}
}

func TestPendingBufferBounded(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 8})
	for i := 0; i < maxPending+10; i++ {
		rec.AddPending(IDFromKey(fmt.Sprintf("p-%d", i)), Span{Name: "x", Start: t0})
	}
	rec.mu.Lock()
	n := len(rec.pending)
	rec.mu.Unlock()
	if n > maxPending {
		t.Fatalf("pending buffer grew to %d, cap %d", n, maxPending)
	}
}

func TestDisabledTracingRecordsNothing(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 8, SampleRate: 1})
	SetEnabled(false)
	defer SetEnabled(true)
	rec.Finish(mkTrace(IDFromKey("off"), StatusError, time.Millisecond))
	rec.AddPending(IDFromKey("off2"), Span{Name: "x", Start: t0})
	if rec.Len() != 0 {
		t.Fatal("disabled recorder stored a trace")
	}
}

func TestNormalizeDerivesExtentAndStatus(t *testing.T) {
	tr := &Trace{ID: "x", Spans: []Span{
		{Name: "b", Start: t0.Add(time.Second), End: t0.Add(2 * time.Second)},
		{Name: "a", Start: t0, End: t0.Add(time.Second), Status: StatusDuplicate},
	}}
	tr.normalize()
	if tr.Spans[0].Name != "a" {
		t.Fatal("spans not sorted by start")
	}
	if !tr.Start.Equal(t0) || !tr.End.Equal(t0.Add(2*time.Second)) {
		t.Fatalf("extent %v..%v", tr.Start, tr.End)
	}
	if tr.Status != StatusDuplicate {
		t.Fatalf("status %q", tr.Status)
	}
}

func debugServer(t *testing.T, rec *Recorder) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	RegisterDebug(mux, rec)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestDebugListAndFilters(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 16, SampleRate: 1})
	rec.Finish(mkTrace(IDFromKey("a"), StatusError, time.Millisecond))
	okT := mkTrace(IDFromKey("b"), "", 3*time.Millisecond)
	okT.Router, okT.Endpoint = "gw-2", "/v1/wifi"
	rec.Finish(okT)
	srv := debugServer(t, rec)

	fetch := func(q string) []map[string]any {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out []map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := fetch(""); len(got) != 2 {
		t.Fatalf("unfiltered list: %d traces", len(got))
	}
	if got := fetch("?status=error"); len(got) != 1 || got[0]["status"] != "error" {
		t.Fatalf("status filter: %+v", got)
	}
	if got := fetch("?router=gw-2"); len(got) != 1 || got[0]["endpoint"] != "/v1/wifi" {
		t.Fatalf("router filter: %+v", got)
	}
	if got := fetch("?endpoint=/v1/uptime&limit=1"); len(got) != 1 {
		t.Fatalf("endpoint+limit filter: %+v", got)
	}
	if got := fetch("?min_ms=2"); len(got) != 1 || got[0]["router"] != "gw-2" {
		t.Fatalf("min_ms filter: %+v", got)
	}
	resp, err := http.Get(srv.URL + "/debug/traces?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d", resp.StatusCode)
	}
}

func TestDebugGetJSONAndWaterfall(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 16, SampleRate: 1})
	id := IDFromKey("wf")
	tr := mkTrace(id, StatusError, 4*time.Millisecond)
	tr.Spans = append(tr.Spans, Span{Name: "spool.send", Start: t0.Add(time.Millisecond),
		Attrs: []Attr{{K: "attempt", V: "2"}}})
	rec.Finish(tr)
	srv := debugServer(t, rec)

	resp, err := http.Get(srv.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || got.ID != id || len(got.Spans) != 3 {
		t.Fatalf("JSON get: %+v err=%v", got, err)
	}

	resp, err = http.Get(srv.URL + "/debug/traces/" + id + "?format=waterfall")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		b.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	wf := b.String()
	for _, want := range []string{"trace " + id, "spool.queued", "collector.apply", "▇", "[error]", "attempt=2", "…"} {
		if !strings.Contains(wf, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, wf)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace: status %d", resp.StatusCode)
	}
}
