// Package geo embeds the deployment's country roster (Table 1) and the
// per-capita GDP (PPP) figures the paper uses to split countries into
// "developed" (top-50 GDP per capita) and "developing" groups and to
// draw Fig. 5's scatter plot.
package geo

import (
	"sort"
	"time"
)

// Country is one deployment country.
type Country struct {
	// Code is the ISO 3166-1 alpha-2 code the paper's Fig. 5 labels use.
	Code string
	Name string
	// GDPPPP is per-capita GDP at purchasing power parity, international
	// dollars (IMF WEO, as Fig. 5's x-axis).
	GDPPPP float64
	// Developed follows the paper's top-50-GDP-per-capita rule.
	Developed bool
	// Routers is the deployment count from Table 1.
	Routers int
	// UTCOffset is a representative local-time offset, used to place
	// diurnal behaviour in local hours (Fig. 6's shading, Fig. 13).
	UTCOffset time.Duration
}

// table reproduces Table 1 (90 developed + 36 developing = 126 routers in
// 19 countries) with period-appropriate GDP figures.
var table = []Country{
	// Developed.
	{"US", "United States", 50000, true, 63, -5 * time.Hour},
	{"GB", "United Kingdom", 36000, true, 12, 0},
	{"NL", "Netherlands", 46000, true, 3, time.Hour},
	{"CA", "Canada", 42000, true, 2, -5 * time.Hour},
	{"DE", "Germany", 43000, true, 2, time.Hour},
	{"IE", "Ireland", 45000, true, 2, 0},
	{"JP", "Japan", 35500, true, 2, 9 * time.Hour},
	{"SG", "Singapore", 62000, true, 2, 8 * time.Hour},
	{"FR", "France", 36500, true, 1, time.Hour},
	{"IT", "Italy", 34000, true, 1, time.Hour},
	// Developing.
	{"IN", "India", 5000, false, 12, 5*time.Hour + 30*time.Minute},
	{"ZA", "South Africa", 12500, false, 10, 2 * time.Hour},
	{"PK", "Pakistan", 4300, false, 5, 5 * time.Hour},
	{"BR", "Brazil", 15000, false, 2, -3 * time.Hour},
	{"CN", "China", 11000, false, 2, 8 * time.Hour},
	{"MX", "Mexico", 16500, false, 2, -6 * time.Hour},
	{"ID", "Indonesia", 9500, false, 1, 7 * time.Hour},
	{"MY", "Malaysia", 22000, false, 1, 8 * time.Hour},
	{"TH", "Thailand", 14000, false, 1, 7 * time.Hour},
}

var byCode = func() map[string]Country {
	m := make(map[string]Country, len(table))
	for _, c := range table {
		m[c.Code] = c
	}
	return m
}()

// All returns the roster sorted by code.
func All() []Country {
	out := append([]Country(nil), table...)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Lookup returns the country for an ISO code.
func Lookup(code string) (Country, bool) {
	c, ok := byCode[code]
	return c, ok
}

// Developed returns the developed-group countries, sorted by code.
func Developed() []Country { return filter(true) }

// Developing returns the developing-group countries, sorted by code.
func Developing() []Country { return filter(false) }

func filter(dev bool) []Country {
	var out []Country
	for _, c := range All() {
		if c.Developed == dev {
			out = append(out, c)
		}
	}
	return out
}

// TotalRouters returns the deployment size per group (Table 1's totals).
func TotalRouters() (developed, developing int) {
	for _, c := range table {
		if c.Developed {
			developed += c.Routers
		} else {
			developing += c.Routers
		}
	}
	return
}
