package geo

import "testing"

func TestTable1Totals(t *testing.T) {
	dev, dvg := TotalRouters()
	if dev != 90 {
		t.Fatalf("developed routers = %d, Table 1 says 90", dev)
	}
	if dvg != 36 {
		t.Fatalf("developing routers = %d, Table 1 says 36", dvg)
	}
	if len(All()) != 19 {
		t.Fatalf("countries = %d, paper says 19", len(All()))
	}
}

func TestGroupSizes(t *testing.T) {
	if len(Developed()) != 10 {
		t.Fatalf("developed countries = %d, Table 1 lists 10", len(Developed()))
	}
	if len(Developing()) != 9 {
		t.Fatalf("developing countries = %d, Table 1 lists 9", len(Developing()))
	}
}

func TestKeyCountries(t *testing.T) {
	us, ok := Lookup("US")
	if !ok || us.Routers != 63 || !us.Developed {
		t.Fatalf("US entry %+v", us)
	}
	in, ok := Lookup("IN")
	if !ok || in.Routers != 12 || in.Developed {
		t.Fatalf("IN entry %+v", in)
	}
	pk, _ := Lookup("PK")
	if pk.Routers != 5 {
		t.Fatalf("PK routers = %d", pk.Routers)
	}
	if _, ok := Lookup("XX"); ok {
		t.Fatal("unknown code resolved")
	}
}

func TestGDPOrderingMatchesFig5(t *testing.T) {
	// India and Pakistan are "the two countries in our deployment with
	// the lowest per-capita GDP".
	for _, c := range All() {
		if c.Code == "IN" || c.Code == "PK" {
			continue
		}
		in, _ := Lookup("IN")
		pk, _ := Lookup("PK")
		if c.GDPPPP <= in.GDPPPP || c.GDPPPP <= pk.GDPPPP {
			t.Fatalf("%s GDP %.0f not above IN/PK", c.Code, c.GDPPPP)
		}
	}
}

func TestDevelopedMeansHigherGDP(t *testing.T) {
	minDev := 1e18
	for _, c := range Developed() {
		if c.GDPPPP < minDev {
			minDev = c.GDPPPP
		}
	}
	for _, c := range Developing() {
		if c.GDPPPP >= minDev {
			t.Fatalf("developing %s GDP %.0f overlaps developed minimum %.0f", c.Code, c.GDPPPP, minDev)
		}
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Code >= all[i].Code {
			t.Fatal("not sorted by code")
		}
	}
}

func TestCountriesWithAtLeastThreeRouters(t *testing.T) {
	// Fig. 5 plots only countries with ≥3 routers and labels NL, US, ZA,
	// GB, IN, PK.
	for _, code := range []string{"NL", "US", "ZA", "GB", "IN", "PK"} {
		c, ok := Lookup(code)
		if !ok || c.Routers < 3 {
			t.Errorf("%s should have ≥3 routers, got %+v", code, c)
		}
	}
}
