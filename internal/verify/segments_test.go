package verify

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenSeed1 loads the canonical single-node golden snapshot.
func goldenSeed1(t *testing.T) []byte {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "run-seed1.json"))
	if err != nil {
		t.Fatalf("no golden snapshot (generate with TestGoldenRun -update): %v", err)
	}
	return want
}

// TestGoldenSegmentBacked is the storage engine's substitution
// contract: the same deployment ingested into the columnar segment
// store — rotating through many sealed segments mid-run, then REOPENED
// from the segment files alone — must produce a snapshot byte-identical
// to the in-memory golden. Storage, like the wire format, must be
// invisible in the data.
func TestGoldenSegmentBacked(t *testing.T) {
	r, err := Run(Config{Seed: 1, SegmentDir: t.TempDir()})
	if err != nil {
		t.Fatalf("verify.Run(segments): %v", err)
	}
	if fails := CheckAll(r, nil); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("invariant %s", f)
		}
	}
	got := BuildSnapshot(r).Encode()
	if want := goldenSeed1(t); !bytes.Equal(got, want) {
		t.Errorf("segment-backed snapshot differs from golden:\n%s", snapshotDiff(want, got))
	}
}

// TestGoldenSegmentBackedJSON re-runs the substitution with the legacy
// JSON wire encoding — both axes (wire format, storage engine) swapped
// at once, still byte-identical.
func TestGoldenSegmentBackedJSON(t *testing.T) {
	r, err := Run(Config{Seed: 1, ForceJSON: true, SegmentDir: t.TempDir()})
	if err != nil {
		t.Fatalf("verify.Run(segments,json): %v", err)
	}
	got := BuildSnapshot(r).Encode()
	if want := goldenSeed1(t); !bytes.Equal(got, want) {
		t.Errorf("segment-backed JSON snapshot differs from golden:\n%s", snapshotDiff(want, got))
	}
}

// TestClusterGoldenSegmentBacked runs the 3-node cluster with every
// node's shard persisted to its own segment directory; the merged
// snapshot must still match the single-node in-memory golden.
func TestClusterGoldenSegmentBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run in -short mode")
	}
	r, err := RunCluster(Config{Seed: 1, SegmentDir: t.TempDir()}, 3)
	if err != nil {
		t.Fatalf("verify.RunCluster(segments): %v", err)
	}
	if len(r.PrivacyViolations) > 0 {
		t.Fatalf("privacy violations: %v", r.PrivacyViolations)
	}
	got := BuildSnapshot(r).Encode()
	if want := goldenSeed1(t); !bytes.Equal(got, want) {
		t.Errorf("segment-backed cluster snapshot differs from golden:\n%s", snapshotDiff(want, got))
	}
}
