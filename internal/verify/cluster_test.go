package verify

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestClusterGoldenEquivalence is the cluster's data-plane contract:
// the same seeded deployment driven through a 3-node cluster front —
// rows sharded across nodes by consistent hash, writes replicated,
// heartbeats terminating at the front — must produce a snapshot
// byte-identical to the single-node golden. Routing and replication
// are transport, not data.
func TestClusterGoldenEquivalence(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "run-seed1.json"))
	if err != nil {
		t.Fatalf("no golden snapshot (generate with TestGoldenRun -update): %v", err)
	}
	r, err := RunCluster(Config{Seed: 1}, 3)
	if err != nil {
		t.Fatalf("verify.RunCluster: %v", err)
	}
	if len(r.PrivacyViolations) > 0 {
		t.Errorf("privacy violations through the cluster path: %v", r.PrivacyViolations)
	}
	if fails := CheckAll(r, nil); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("invariant %s", f)
		}
	}
	got := BuildSnapshot(r).Encode()
	if !bytes.Equal(got, want) {
		t.Errorf("cluster-merged snapshot differs from single-node golden:\n%s",
			snapshotDiff(want, got))
	}
}

// TestClusterGoldenEquivalenceFiveNodes re-runs the equivalence at a
// wider ring: node count is a deployment knob, not a data parameter,
// so five shards must flatten to the same golden bytes as three.
func TestClusterGoldenEquivalenceFiveNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-deployment rerun; covered by the 3-node variant in short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "run-seed1.json"))
	if err != nil {
		t.Fatalf("no golden snapshot (generate with TestGoldenRun -update): %v", err)
	}
	r, err := RunCluster(Config{Seed: 1}, 5)
	if err != nil {
		t.Fatalf("verify.RunCluster(5): %v", err)
	}
	got := BuildSnapshot(r).Encode()
	if !bytes.Equal(got, want) {
		t.Errorf("5-node cluster snapshot differs from single-node golden:\n%s",
			snapshotDiff(want, got))
	}
}

// goldenRebalance drives one mid-run scale event through the seeded
// deployment and asserts the merged snapshot still matches the
// single-node golden byte for byte: ownership transfer, epoch fencing,
// and dedupe-key movement must be invisible in the data.
func goldenRebalance(t *testing.T, op string, forceJSON bool) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "run-seed1.json"))
	if err != nil {
		t.Fatalf("no golden snapshot (generate with TestGoldenRun -update): %v", err)
	}
	r, err := RunClusterRebalance(Config{Seed: 1, ForceJSON: forceJSON}, 3, op)
	if err != nil {
		t.Fatalf("verify.RunClusterRebalance(%s): %v", op, err)
	}
	if len(r.PrivacyViolations) > 0 {
		t.Errorf("privacy violations during %s: %v", op, r.PrivacyViolations)
	}
	if fails := CheckAll(r, nil); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("invariant %s", f)
		}
	}
	got := BuildSnapshot(r).Encode()
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot after mid-run %s differs from single-node golden:\n%s",
			op, snapshotDiff(want, got))
	}
}

// TestClusterGoldenJoinMidRun: a fourth node joins while clients are
// uploading; the post-join merged snapshot equals the golden.
func TestClusterGoldenJoinMidRun(t *testing.T) {
	goldenRebalance(t, "join", false)
}

// TestClusterGoldenDrainMidRun: a node drains to zero while clients
// are uploading; the post-drain merged snapshot equals the golden.
func TestClusterGoldenDrainMidRun(t *testing.T) {
	goldenRebalance(t, "drain", false)
}

// JSON-wire variants cover the front's JSON decode + regroup + NPB1
// re-encode path under a concurrent scale event.
func TestClusterGoldenJoinMidRunJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full-deployment rerun; covered by the binary-wire variant in short mode")
	}
	goldenRebalance(t, "join", true)
}

func TestClusterGoldenDrainMidRunJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full-deployment rerun; covered by the binary-wire variant in short mode")
	}
	goldenRebalance(t, "drain", true)
}

// TestClusterGoldenEquivalenceJSON re-runs the cluster equivalence with
// clients forced onto the legacy JSON batch encoding, covering the
// front's JSON decode + regroup + NPB1 re-encode path end to end.
func TestClusterGoldenEquivalenceJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full-deployment rerun; covered by the binary-wire variant in short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "run-seed1.json"))
	if err != nil {
		t.Fatalf("no golden snapshot (generate with TestGoldenRun -update): %v", err)
	}
	r, err := RunCluster(Config{Seed: 1, ForceJSON: true}, 3)
	if err != nil {
		t.Fatalf("verify.RunCluster(json): %v", err)
	}
	got := BuildSnapshot(r).Encode()
	if !bytes.Equal(got, want) {
		t.Errorf("cluster JSON-wire snapshot differs from single-node golden:\n%s",
			snapshotDiff(want, got))
	}
}
