package verify

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestClusterGoldenEquivalence is the cluster's data-plane contract:
// the same seeded deployment driven through a 3-node cluster front —
// rows sharded across nodes by consistent hash, writes replicated,
// heartbeats terminating at the front — must produce a snapshot
// byte-identical to the single-node golden. Routing and replication
// are transport, not data.
func TestClusterGoldenEquivalence(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "run-seed1.json"))
	if err != nil {
		t.Fatalf("no golden snapshot (generate with TestGoldenRun -update): %v", err)
	}
	r, err := RunCluster(Config{Seed: 1}, 3)
	if err != nil {
		t.Fatalf("verify.RunCluster: %v", err)
	}
	if len(r.PrivacyViolations) > 0 {
		t.Errorf("privacy violations through the cluster path: %v", r.PrivacyViolations)
	}
	if fails := CheckAll(r, nil); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("invariant %s", f)
		}
	}
	got := BuildSnapshot(r).Encode()
	if !bytes.Equal(got, want) {
		t.Errorf("cluster-merged snapshot differs from single-node golden:\n%s",
			snapshotDiff(want, got))
	}
}

// TestClusterGoldenEquivalenceJSON re-runs the cluster equivalence with
// clients forced onto the legacy JSON batch encoding, covering the
// front's JSON decode + regroup + NPB1 re-encode path end to end.
func TestClusterGoldenEquivalenceJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full-deployment rerun; covered by the binary-wire variant in short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "run-seed1.json"))
	if err != nil {
		t.Fatalf("no golden snapshot (generate with TestGoldenRun -update): %v", err)
	}
	r, err := RunCluster(Config{Seed: 1, ForceJSON: true}, 3)
	if err != nil {
		t.Fatalf("verify.RunCluster(json): %v", err)
	}
	got := BuildSnapshot(r).Encode()
	if !bytes.Equal(got, want) {
		t.Errorf("cluster JSON-wire snapshot differs from single-node golden:\n%s",
			snapshotDiff(want, got))
	}
}
