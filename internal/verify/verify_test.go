package verify

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/mac"
	"natpeek/internal/wire"
)

var update = flag.Bool("update", false, "rewrite the golden snapshots under testdata/golden")

// runOnce executes one verification run, failing the test on harness
// errors (the collector refusing uploads, a spool not draining, …).
func runOnce(t *testing.T, seed uint64) *Result {
	t.Helper()
	r, err := Run(Config{Seed: seed})
	if err != nil {
		t.Fatalf("verify.Run(seed=%d): %v", seed, err)
	}
	return r
}

// TestGoldenRun drives the full deployment through the real collector
// and compares the normalized snapshot against the checked-in golden.
// After an intended behaviour change, regenerate with
//
//	go test ./internal/verify -run TestGoldenRun -update
//
// and review the golden diff like any other code change.
func TestGoldenRun(t *testing.T) {
	r := runOnce(t, 1)
	if fails := CheckAll(r, nil); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("invariant %s", f)
		}
	}
	got := BuildSnapshot(r).Encode()

	path := filepath.Join("testdata", "golden", "run-seed1.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden snapshot (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot drifted from %s.\nIf the change is intended, re-run with -update and review the diff.\n%s",
			path, snapshotDiff(want, got))
	}
}

// TestGoldenDeterminism pins the harness's central promise: the run is
// a pure function of the seed. Same seed twice → byte-identical
// snapshots; a different seed → a different one (so the snapshot
// actually depends on the run, not just the config).
func TestGoldenDeterminism(t *testing.T) {
	a := BuildSnapshot(runOnce(t, 7)).Encode()
	b := BuildSnapshot(runOnce(t, 7)).Encode()
	if !bytes.Equal(a, b) {
		t.Errorf("two runs with seed 7 produced different snapshots:\n%s", snapshotDiff(a, b))
	}
	c := BuildSnapshot(runOnce(t, 8)).Encode()
	if bytes.Equal(a, c) {
		t.Error("seeds 7 and 8 produced identical snapshots; the snapshot is not sensitive to the run")
	}
}

// TestInvariantsCatchTampering guards the checker itself: a run whose
// accounting is corrupted after the fact must fail conservation.
func TestInvariantsCatchTampering(t *testing.T) {
	r := runOnce(t, 3)
	if fails := CheckAll(r, nil); len(fails) > 0 {
		t.Fatalf("clean run violates invariants: %v", fails)
	}
	r.World.Acct.FrameUpBytes += 1000 // a thousand bytes vanish between layers
	if fails := CheckAll(r, nil); len(fails) == 0 {
		t.Error("byte-conservation tampering went undetected")
	}
	r.World.Acct.FrameUpBytes -= 1000
	r.Ingested.Flows = r.Ingested.Flows[:len(r.Ingested.Flows)-1] // drop an ingested row
	if fails := CheckAll(r, nil); len(fails) == 0 {
		t.Error("dropped ingest row went undetected")
	}
}

// snapshotDiff renders the first diverging lines of two snapshots (a
// full diff of multi-KB JSON helps nobody in test output).
func snapshotDiff(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("first divergence at line %d:\n- %s\n+ %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: want %d lines, got %d", len(w), len(g))
}

// TestGoldenIdenticalAcrossWireFormats pins the tentpole's core
// promise: the NPB1 binary batch encoding is a transport detail. A run
// forced onto legacy JSON and a run left to negotiate binary must
// produce byte-identical snapshots.
func TestGoldenIdenticalAcrossWireFormats(t *testing.T) {
	auto := BuildSnapshot(runOnce(t, 1)).Encode()
	forced, err := Run(Config{Seed: 1, ForceJSON: true})
	if err != nil {
		t.Fatal(err)
	}
	jsonSnap := BuildSnapshot(forced).Encode()
	if !bytes.Equal(auto, jsonSnap) {
		t.Errorf("wire format changed the snapshot:\n%s", snapshotDiff(jsonSnap, auto))
	}
}

// TestPrivacyScannerSeesThroughBinary guards the scanner itself: a MAC
// address that ships inside an NPB1 body as 6 raw bytes — invisible to
// a textual grep of the wire bytes — must still be caught once the
// scanner decodes the batch.
func TestPrivacyScannerSeesThroughBinary(t *testing.T) {
	hw := mac.MustParse("00:1c:b3:09:0a:0b")
	body := wire.AppendBatch(nil, []wire.Item{{
		Endpoint: "/v1/devices", Key: "leak-1",
		Payload: wire.Payload{Kind: wire.KindDevices,
			Count: dataset.DeviceCount{RouterID: "r", At: time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)},
			Sightings: []dataset.DeviceSighting{{RouterID: "r",
				At: time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC), Device: hw}}},
	}})
	if bytes.Contains(bytes.ToLower(body), []byte(hw.String())) {
		t.Fatal("test premise broken: the MAC is textual on the binary wire")
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	text, err := scanText(req, body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(text), hw.String()) {
		t.Fatalf("decoded scan text misses the MAC:\n%s", text)
	}
}
