package verify

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"natpeek/internal/analysis"
	"natpeek/internal/world"
)

// Snapshot is the normalized, diff-friendly image of a verification
// run: per-dataset row counts and content digests, plus the key
// analysis outputs the paper's figures rest on. Maps encode with sorted
// keys and floats are rounded, so two runs with the same seed produce
// byte-identical encodings.
type Snapshot struct {
	Seed  uint64     `json:"seed"`
	Homes []HomeInfo `json:"homes"`

	// Rows counts ingested rows per dataset; Digests is a SHA-256 over
	// the dataset's rows in normalized sorted order, pinning content
	// without inlining thousands of rows into the golden file.
	Rows    map[string]int    `json:"rows"`
	Digests map[string]string `json:"digests"`

	// Availability is each router's heartbeat uptime fraction over the
	// Heartbeats window (threshold 2 minutes, like §4's analysis).
	Availability map[string]float64 `json:"availability"`
	// DevicesPerHome is the distinct-device count per router from the
	// census sightings (Figure 7's raw material).
	DevicesPerHome map[string]int `json:"devices_per_home"`
	// DomainVolumes is total traffic volume per (anonymized) domain
	// across the Traffic subset (§6.3's per-domain material).
	DomainVolumes map[string]int64 `json:"domain_volumes"`
	// DirVolumes is total throughput per direction.
	DirVolumes map[string]int64 `json:"dir_volumes"`

	Accounting world.Accounting `json:"accounting"`
}

// HomeInfo summarizes one deployed home.
type HomeInfo struct {
	ID      string `json:"id"`
	Country string `json:"country"`
	Consent bool   `json:"consent"`
	Devices int    `json:"devices"`
}

// BuildSnapshot condenses a run into its golden form.
func BuildSnapshot(r *Result) *Snapshot {
	st := r.Ingested
	s := &Snapshot{
		Seed:           r.Cfg.Seed,
		Rows:           make(map[string]int),
		Digests:        make(map[string]string),
		Availability:   make(map[string]float64),
		DevicesPerHome: make(map[string]int),
		DomainVolumes:  make(map[string]int64),
		DirVolumes:     make(map[string]int64),
		Accounting:     r.World.Acct,
	}
	for _, h := range r.World.Homes {
		s.Homes = append(s.Homes, HomeInfo{
			ID:      h.Profile.ID,
			Country: r.World.Store.RouterCountry[h.Profile.ID],
			Consent: h.Consent,
			Devices: len(h.Profile.Devices),
		})
	}
	sort.Slice(s.Homes, func(i, j int) bool { return s.Homes[i].ID < s.Homes[j].ID })

	beats := 0
	var beatRows []string
	for _, id := range st.Heartbeats.Routers() {
		beats += st.Heartbeats.Count(id)
		beatRows = append(beatRows, fmt.Sprintf("%s|%d", id, st.Heartbeats.Count(id)))
		s.Availability[id] = round6(st.Heartbeats.UptimeFraction(
			id, r.World.Cfg.HeartbeatsFrom, r.World.Cfg.HeartbeatsTo, 2*time.Minute))
	}
	s.Rows["heartbeats"] = beats
	s.Digests["heartbeats"] = digestRows(beatRows)

	s.Rows["uptime"] = len(st.Uptime)
	s.Digests["uptime"] = digestJSON(st.Uptime)
	s.Rows["capacity"] = len(st.Capacity)
	s.Digests["capacity"] = digestJSON(st.Capacity)
	s.Rows["counts"] = len(st.Counts)
	s.Digests["counts"] = digestJSON(st.Counts)
	s.Rows["sightings"] = len(st.Sightings)
	s.Digests["sightings"] = digestJSON(st.Sightings)
	s.Rows["wifi"] = len(st.WiFi)
	s.Digests["wifi"] = digestJSON(st.WiFi)
	s.Rows["flows"] = len(st.Flows)
	s.Digests["flows"] = digestJSON(st.Flows)
	s.Rows["throughput"] = len(st.Throughput)
	s.Digests["throughput"] = digestJSON(st.Throughput)

	for id, n := range analysis.UniqueDevicesPerHome(st) {
		s.DevicesPerHome[id] = n
	}
	for _, f := range st.Flows {
		s.DomainVolumes[f.Domain] += f.UpBytes + f.DownBytes
	}
	for _, t := range st.Throughput {
		s.DirVolumes[t.Dir] += t.TotalBytes
	}
	return s
}

// Encode renders the snapshot as stable, indented JSON (encoding/json
// sorts map keys, so equal snapshots encode to equal bytes).
func (s *Snapshot) Encode() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // all field types are marshalable
	}
	return append(b, '\n')
}

func round6(f float64) float64 { return math.Round(f*1e6) / 1e6 }

// digestJSON hashes a dataset slice in normalized order: each row is
// marshaled on its own, the rows are sorted, and the sorted list is
// hashed — so the digest is independent of upload/ingest interleaving.
func digestJSON[T any](rows []T) string {
	enc := make([]string, len(rows))
	for i, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			panic(err)
		}
		enc[i] = string(b)
	}
	return digestRows(enc)
}

func digestRows(rows []string) string {
	sorted := append([]string(nil), rows...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, r := range sorted {
		h.Write([]byte(r))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
