package verify

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"natpeek/internal/cluster"
	"natpeek/internal/collector"
	"natpeek/internal/dataset"
	"natpeek/internal/gateway"
	"natpeek/internal/segment"
	"natpeek/internal/spool"
	"natpeek/internal/world"
)

// RunCluster executes the same golden deployment as Run, but through a
// multi-node collector cluster: every client points at a front-tier
// router that consistent-hashes uploads across n collector nodes, and
// the ingested store is the merge of every node's shard plus the
// front's heartbeat log. The equivalence test asserts the resulting
// snapshot is byte-identical to the single-node golden — sharding,
// routing, and replication must be invisible in the data.
func RunCluster(cfg Config, n int) (*Result, error) {
	return runCluster(cfg, n, "")
}

// RunClusterRebalance is RunCluster with a planned membership change
// fired while client traffic is in flight: op "join" grows the ring by
// one node mid-run (started with Joining so the legacy ring never
// routed to it early), op "drain" streams the last node's ownership to
// the survivors and shrinks the ring. The golden equivalence tests
// assert the merged snapshot is STILL byte-identical to the single-node
// golden — a scale event must be invisible in the data, not just
// row-conserving.
func RunClusterRebalance(cfg Config, n int, op string) (*Result, error) {
	switch op {
	case "join", "drain":
		return runCluster(cfg, n, op)
	}
	return nil, fmt.Errorf("verify: unknown rebalance op %q", op)
}

func runCluster(cfg Config, n int, op string) (*Result, error) {
	if n <= 0 {
		n = 3
	}
	w := world.Build(worldConfig(cfg))

	// Snappy gossip so membership converges well before traffic starts;
	// the run itself is failure-free, so detector timing does not shape
	// the data.
	gossip := cluster.GossipConfig{
		Interval:     25 * time.Millisecond,
		SuspectAfter: 250 * time.Millisecond,
		DeadAfter:    time.Second,
	}
	var nodes []*cluster.Node
	var peers []string
	var segStores []*segment.Store
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for _, s := range segStores {
			s.Close()
		}
	}()
	total := n
	if op == "join" {
		// The joiner exists from the start but holds itself out of the
		// ring (Joining) until JoinRing commits an epoch mid-run.
		total = n + 1
	}
	for i := 0; i < total; i++ {
		ncfg := cluster.NodeConfig{
			ID:      fmt.Sprintf("verify-node-%d", i),
			UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
			Peers: append([]string(nil), peers...), Gossip: gossip,
			Joining: op == "join" && i == n,
		}
		if cfg.SegmentDir != "" {
			// Each node persists its shard to its own segment directory.
			store, seg, err := openVerifyStore(cfg, filepath.Join(cfg.SegmentDir, ncfg.ID))
			if err != nil {
				return nil, err
			}
			segStores = append(segStores, seg)
			ncfg.Store = store
		}
		nd, err := cluster.NewNode(ncfg)
		if err != nil {
			return nil, fmt.Errorf("verify: cluster node %d: %w", i, err)
		}
		nodes = append(nodes, nd)
		peers = append(peers, nd.CtrlAddr())
	}
	front, err := cluster.NewFront(cluster.FrontConfig{
		ID:      "verify-front",
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Peers: peers, Gossip: gossip,
	})
	if err != nil {
		return nil, fmt.Errorf("verify: cluster front: %w", err)
	}
	defer front.Close()
	if err := waitAlive(front, total, 10*time.Second); err != nil {
		return nil, err
	}

	// Fire the membership change shortly after traffic starts, so the
	// transfer races live uploads and the fenced cutover window.
	var opCh chan error
	if op != "" {
		opCh = make(chan error, 1)
		go func() {
			time.Sleep(300 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			switch op {
			case "join":
				opCh <- nodes[n].JoinRing(ctx)
			case "drain":
				opCh <- nodes[n-1].Drain(ctx)
			}
		}()
	}

	scanner := newPrivacyScanner(w)
	wireMode := collector.WireAuto
	if cfg.ForceJSON {
		wireMode = collector.WireJSON
	}
	err = w.RunWith(func(h *world.Home) (gateway.Sink, func() error, error) {
		cli, err := collector.NewClient(h.Profile.ID, w.Store.RouterCountry[h.Profile.ID],
			front.UDPAddr(), front.HTTPAddr(),
			collector.WithTransport(scanner),
			collector.WithWireFormat(wireMode),
			collector.WithSpool(spool.Config{Capacity: 1 << 17, MaxBatch: 256}))
		if err != nil {
			return nil, nil, err
		}
		sink := &clientSink{Client: cli, hb: front.Heartbeats()}
		closeFn := func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			ferr := cli.Flush(ctx)
			depth := cli.SpoolDepth()
			uerr := cli.Err()
			cerr := cli.Close()
			if ferr != nil {
				return fmt.Errorf("flush: %w", ferr)
			}
			if depth != 0 {
				return fmt.Errorf("%d uploads still spooled after flush", depth)
			}
			if uerr != nil {
				return fmt.Errorf("upload error: %w", uerr)
			}
			return cerr
		}
		return sink, closeFn, nil
	})
	if err != nil {
		return nil, err
	}
	if opCh != nil {
		select {
		case operr := <-opCh:
			if operr != nil {
				return nil, fmt.Errorf("verify: cluster %s: %w", op, operr)
			}
		case <-time.After(3 * time.Minute):
			return nil, fmt.Errorf("verify: cluster %s did not finish", op)
		}
	}
	// Merging across EVERY node (a drained node included — it must hold
	// nothing) keeps the equivalence check honest: a row left behind or
	// applied twice during the move shows up as a snapshot diff.
	merged := mergeClusterStores(front, nodes)
	return &Result{Cfg: cfg, World: w, Ingested: merged, PrivacyViolations: scanner.take()}, nil
}

// waitAlive blocks until the front judges exactly n collector nodes
// alive.
func waitAlive(front *cluster.Front, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		alive := 0
		for _, mv := range front.View() {
			if mv.Role == cluster.RoleNode && mv.State == cluster.StateAlive {
				alive++
			}
		}
		if alive == n {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("verify: cluster membership did not converge to %d nodes", n)
}

// mergeClusterStores builds the cluster-wide store image: measurement
// rows concatenated across every node's shard (snapshot digests sort
// rows, so concatenation order cannot show through), router countries
// unioned, and the heartbeat log taken from the front, where cluster
// heartbeats terminate.
func mergeClusterStores(front *cluster.Front, nodes []*cluster.Node) *dataset.Store {
	merged := &dataset.Store{
		Heartbeats:    front.Heartbeats(),
		RouterCountry: make(map[string]string),
	}
	for _, nd := range nodes {
		st := nd.Store()
		merged.Uptime = append(merged.Uptime, st.Uptime...)
		merged.Capacity = append(merged.Capacity, st.Capacity...)
		merged.Counts = append(merged.Counts, st.Counts...)
		merged.Sightings = append(merged.Sightings, st.Sightings...)
		merged.WiFi = append(merged.WiFi, st.WiFi...)
		merged.Flows = append(merged.Flows, st.Flows...)
		merged.Throughput = append(merged.Throughput, st.Throughput...)
		for id, cc := range st.RouterCountry {
			merged.RouterCountry[id] = cc
		}
	}
	return merged
}
