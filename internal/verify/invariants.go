package verify

import (
	"fmt"
	"time"
)

// Failure is one violated invariant.
type Failure struct {
	Name   string
	Detail string
}

func (f Failure) String() string { return f.Name + ": " + f.Detail }

// Invariant is one named conservation law or schema property checked
// against a completed run. Check returns one detail string per
// violation (nil when the invariant holds).
type Invariant struct {
	Name string
	// Tolerance is the permitted absolute slack for count/byte
	// comparisons. The standard set runs at zero: power-off finishes
	// every in-flight flow, so nothing is legitimately in transit when
	// the run ends. A harness that flushes mid-flight can relax this.
	Tolerance int64
	Check     func(r *Result, tol int64) []string
}

// CheckAll evaluates invs (or the standard set when nil) against r.
func CheckAll(r *Result, invs []Invariant) []Failure {
	if invs == nil {
		invs = Invariants()
	}
	var out []Failure
	for _, inv := range invs {
		for _, d := range inv.Check(r, inv.Tolerance) {
			out = append(out, Failure{Name: inv.Name, Detail: d})
		}
	}
	return out
}

// eq3 checks a three-layer conservation chain generated == exported ==
// ingested within tol.
func eq3(what string, gen, exported, ingested, tol int64) []string {
	var out []string
	if d := gen - exported; d > tol || d < -tol {
		out = append(out, fmt.Sprintf("%s: generated %d, gateway exported %d", what, gen, exported))
	}
	if d := exported - ingested; d > tol || d < -tol {
		out = append(out, fmt.Sprintf("%s: gateway exported %d, collector ingested %d", what, exported, ingested))
	}
	return out
}

// Invariants returns the standard cross-layer invariant set.
func Invariants() []Invariant {
	return []Invariant{
		{Name: "conservation/heartbeats", Check: func(r *Result, tol int64) []string {
			var ingested int64
			for _, id := range r.Ingested.Heartbeats.Routers() {
				ingested += int64(r.Ingested.Heartbeats.Count(id))
			}
			gen := r.World.Acct.HeartbeatBeats
			if d := gen - ingested; d > tol || d < -tol {
				return []string{fmt.Sprintf("beats: generated %d, ingested %d", gen, ingested)}
			}
			return nil
		}},
		{Name: "conservation/uptime", Check: func(r *Result, tol int64) []string {
			return eq3("reports", r.World.Acct.UptimeReports,
				r.World.Acct.Export.UptimeReports, int64(len(r.Ingested.Uptime)), tol)
		}},
		{Name: "conservation/capacity", Check: func(r *Result, tol int64) []string {
			// Capacity probes run in the world (ShaperProbe over the
			// simulated link), not in the agent, so the chain here is
			// two layers: generated == ingested.
			gen, ing := r.World.Acct.CapacityMeasures, int64(len(r.Ingested.Capacity))
			if d := gen - ing; d > tol || d < -tol {
				return []string{fmt.Sprintf("measures: generated %d, ingested %d", gen, ing)}
			}
			return nil
		}},
		{Name: "conservation/census", Check: func(r *Result, tol int64) []string {
			exp := r.World.Acct.Export.DeviceCensusRows
			ing := int64(len(r.Ingested.Counts) + len(r.Ingested.Sightings))
			if d := exp - ing; d > tol || d < -tol {
				return []string{fmt.Sprintf("rows: exported %d, ingested %d", exp, ing)}
			}
			return nil
		}},
		{Name: "conservation/wifi", Check: func(r *Result, tol int64) []string {
			exp, ing := r.World.Acct.Export.WiFiScanRows, int64(len(r.Ingested.WiFi))
			if d := exp - ing; d > tol || d < -tol {
				return []string{fmt.Sprintf("rows: exported %d, ingested %d", exp, ing)}
			}
			return nil
		}},
		{Name: "conservation/flow-records", Check: func(r *Result, tol int64) []string {
			return eq3("records", r.World.Acct.ExpectedFlowRecords,
				r.World.Acct.Export.FlowRecords, int64(len(r.Ingested.Flows)), tol)
		}},
		{Name: "conservation/flow-bytes", Check: func(r *Result, tol int64) []string {
			var ingUp, ingDown int64
			for _, f := range r.Ingested.Flows {
				ingUp += f.UpBytes
				ingDown += f.DownBytes
			}
			a := r.World.Acct
			return append(
				eq3("up bytes", a.FrameUpBytes, a.Export.FlowUpBytes, ingUp, tol),
				eq3("down bytes", a.FrameDownBytes, a.Export.FlowDownBytes, ingDown, tol)...)
		}},
		{Name: "conservation/flow-packets", Check: func(r *Result, tol int64) []string {
			var ing int64
			for _, f := range r.Ingested.Flows {
				ing += f.UpPkts + f.DownPkts
			}
			a := r.World.Acct
			return eq3("packets", a.Frames, a.Export.FlowUpPkts+a.Export.FlowDownPkts, ing, tol)
		}},
		{Name: "conservation/throughput-bytes", Check: func(r *Result, tol int64) []string {
			var ingUp, ingDown int64
			for _, s := range r.Ingested.Throughput {
				switch s.Dir {
				case "up":
					ingUp += s.TotalBytes
				case "down":
					ingDown += s.TotalBytes
				}
			}
			a := r.World.Acct
			return append(
				eq3("up bytes", a.FrameUpBytes, a.Export.ThroughputUpBytes, ingUp, tol),
				eq3("down bytes", a.FrameDownBytes, a.Export.ThroughputDownBytes, ingDown, tol)...)
		}},
		{Name: "conservation/throughput-rows", Check: func(r *Result, tol int64) []string {
			exp, ing := r.World.Acct.Export.ThroughputRows, int64(len(r.Ingested.Throughput))
			if d := exp - ing; d > tol || d < -tol {
				return []string{fmt.Sprintf("rows: exported %d, ingested %d", exp, ing)}
			}
			return nil
		}},
		{Name: "conservation/dns", Check: func(r *Result, tol int64) []string {
			// Every distinct remote answered over DNS must be learned by
			// the capture's sniffer (valid while each home stays under
			// the sniffer cache's limit, which these worlds do).
			gen, got := r.World.Acct.DNSDistinctRemotes, r.World.Acct.DNSCacheEntries
			if d := gen - got; d > tol || d < -tol {
				return []string{fmt.Sprintf("remotes: answered %d, sniffer learned %d", gen, got)}
			}
			return nil
		}},
		{Name: "schema/privacy", Check: func(r *Result, _ int64) []string {
			return r.PrivacyViolations
		}},
		{Name: "schema/anonymized-devices", Check: func(r *Result, _ int64) []string {
			real := make(map[string]bool)
			for _, h := range r.World.Homes {
				for _, d := range h.Profile.Devices {
					real[d.HW.String()] = true
				}
			}
			var out []string
			for _, f := range r.Ingested.Flows {
				if real[f.Device.String()] {
					out = append(out, fmt.Sprintf("flow for %s carries a real device MAC", f.RouterID))
				}
			}
			for _, sg := range r.Ingested.Sightings {
				if real[sg.Device.String()] {
					out = append(out, fmt.Sprintf("sighting for %s carries a real device MAC", sg.RouterID))
				}
			}
			return out
		}},
		{Name: "schema/throughput-dedupe", Check: func(r *Result, _ int64) []string {
			seen := make(map[string]bool, len(r.Ingested.Throughput))
			var out []string
			for _, s := range r.Ingested.Throughput {
				k := s.RouterID + "|" + s.Minute.UTC().Format(time.RFC3339) + "|" + s.Dir
				if seen[k] {
					out = append(out, "duplicate (router, minute, dir) row: "+k)
				}
				seen[k] = true
				if !s.Minute.Equal(s.Minute.Truncate(time.Minute)) {
					out = append(out, "minute not aligned: "+k)
				}
			}
			return out
		}},
		{Name: "schema/uptime-dedupe", Check: func(r *Result, _ int64) []string {
			seen := make(map[string]bool, len(r.Ingested.Uptime))
			var out []string
			for _, u := range r.Ingested.Uptime {
				k := u.RouterID + "|" + u.ReportedAt.UTC().Format(time.RFC3339)
				if seen[k] {
					out = append(out, "duplicate (router, reportedAt) row: "+k)
				}
				seen[k] = true
			}
			return out
		}},
		{Name: "schema/flow-times", Check: func(r *Result, _ int64) []string {
			// Flows must start inside the Traffic window and be
			// internally ordered. Their tails may legitimately outlive
			// the window: a transfer begun at 23:58 of the last day
			// keeps flowing past midnight, and the capture reports its
			// true Last.
			from, to := r.World.Cfg.TrafficFrom, r.World.Cfg.TrafficTo
			var out []string
			for _, f := range r.Ingested.Flows {
				if f.Last.Before(f.First) {
					out = append(out, fmt.Sprintf("flow for %s: Last %v before First %v", f.RouterID, f.Last, f.First))
				}
				if f.First.Before(from) || !f.First.Before(to) {
					out = append(out, fmt.Sprintf("flow for %s: First %v outside the Traffic window", f.RouterID, f.First))
				}
			}
			return out
		}},
	}
}
