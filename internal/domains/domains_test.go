package domains

import (
	"strings"
	"testing"
)

func TestCountIs200(t *testing.T) {
	if Count() != 200 {
		t.Fatalf("whitelist has %d entries, paper used 200", Count())
	}
}

func TestNoDuplicates(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range All() {
		if seen[d.Name] {
			t.Fatalf("duplicate domain %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestEntriesWellFormed(t *testing.T) {
	for _, d := range All() {
		if d.Name == "" || d.Category == "" {
			t.Fatalf("malformed entry %+v", d)
		}
		if d.Name != strings.ToLower(d.Name) {
			t.Fatalf("domain %q not lower case", d.Name)
		}
		if !strings.Contains(d.Name, ".") {
			t.Fatalf("domain %q has no dot", d.Name)
		}
	}
}

func TestRankOrder(t *testing.T) {
	if Rank("google.com") != 1 {
		t.Fatalf("google.com rank = %d", Rank("google.com"))
	}
	if Rank("facebook.com") != 2 {
		t.Fatalf("facebook.com rank = %d", Rank("facebook.com"))
	}
	if Rank("youtube.com") != 3 {
		t.Fatalf("youtube.com rank = %d", Rank("youtube.com"))
	}
	if Rank("not-a-real-site.example") != 0 {
		t.Fatal("unlisted domain has a rank")
	}
}

func TestSubdomainWhitelisting(t *testing.T) {
	for in, want := range map[string]string{
		"www.google.com":       "google.com",
		"mail.google.com":      "google.com",
		"a.b.c.netflix.com":    "netflix.com",
		"GOOGLE.COM":           "google.com",
		"google.com.":          "google.com",
		"notgoogle.example":    "",
		"com":                  "",
		"evil-google.com.evil": "",
	} {
		if got := Whitelisted(in); got != want {
			t.Errorf("Whitelisted(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsWhitelisted(t *testing.T) {
	if !IsWhitelisted("hulu.com") || IsWhitelisted("example.test") {
		t.Fatal("IsWhitelisted wrong")
	}
}

func TestCategoryOf(t *testing.T) {
	for in, want := range map[string]Category{
		"netflix.com":       Streaming,
		"cdn1.hulu.com":     Streaming,
		"google.com":        Search,
		"doubleclick.net":   Ads,
		"dropbox.com":       Cloud,
		"unknown-site.test": Other,
	} {
		if got := CategoryOf(in); got != want {
			t.Errorf("CategoryOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStreamingDomainsPresent(t *testing.T) {
	// Fig. 20 depends on these specific services being in the universe.
	for _, d := range []string{"pandora.com", "hulu.com", "netflix.com", "youtube.com", "dropbox.com", "apple.com"} {
		if !IsWhitelisted(d) {
			t.Errorf("%q missing from whitelist", d)
		}
	}
}

func TestByCategory(t *testing.T) {
	streams := ByCategory(Streaming)
	if len(streams) < 10 {
		t.Fatalf("only %d streaming domains", len(streams))
	}
	// Must be in rank order.
	prev := 0
	for _, d := range streams {
		r := Rank(d.Name)
		if r <= prev {
			t.Fatal("ByCategory not rank ordered")
		}
		prev = r
	}
}

func TestPopularDomainsOfFig18(t *testing.T) {
	// "The most consistently popular domains on this list are as expected:
	// Google, YouTube, Facebook, Amazon, Apple, and Twitter."
	for _, d := range []string{"google.com", "youtube.com", "facebook.com", "amazon.com", "apple.com", "twitter.com"} {
		r := Rank(d)
		if r == 0 || r > 30 {
			t.Errorf("%q rank %d, want a top-30 presence", d, r)
		}
	}
}
