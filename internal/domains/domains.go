// Package domains embeds the study's domain whitelist — the paper used
// "the 200 most popular domains in the United States according to Alexa"
// (§3.2.2) as the anonymization boundary for DNS and flow data: traffic to
// whitelisted domains is reported by name, everything else is obfuscated.
//
// The embedded list reconstructs a 2013-era Alexa-US-style top 200 and
// tags each domain with a service category. Categories matter because the
// traffic generator gives them different flow shapes (streaming = few
// long-lived heavy connections; ads = many tiny ones), which is what
// reproduces the paper's volume-vs-connection disproportionality
// (Fig. 19: 38% of volume but <14% of connections for the top domain).
package domains

import "strings"

// Category describes what kind of service a domain is.
type Category string

// Service categories used by the traffic generator.
const (
	Search    Category = "search"
	Social    Category = "social"
	Streaming Category = "streaming" // long-lived video/audio flows
	Portal    Category = "portal"    // webmail, news portals
	Shopping  Category = "shopping"
	News      Category = "news"
	CDN       Category = "cdn"
	Ads       Category = "ads"
	Cloud     Category = "cloud" // sync/storage (Dropbox et al.)
	Gaming    Category = "gaming"
	Reference Category = "reference"
	Travel    Category = "travel"
	Finance   Category = "finance"
	Tech      Category = "tech"
	Other     Category = "other"
)

// Domain is one whitelist entry, in Alexa rank order (Rank 1 = index 0).
type Domain struct {
	Name     string
	Category Category
}

// top200 is the embedded whitelist in rank order.
var top200 = []Domain{
	{"google.com", Search}, {"facebook.com", Social}, {"youtube.com", Streaming},
	{"yahoo.com", Portal}, {"amazon.com", Shopping}, {"wikipedia.org", Reference},
	{"ebay.com", Shopping}, {"twitter.com", Social}, {"craigslist.org", Shopping},
	{"linkedin.com", Social}, {"blogspot.com", Other}, {"live.com", Portal},
	{"bing.com", Search}, {"pinterest.com", Social}, {"msn.com", Portal},
	{"tumblr.com", Social}, {"go.com", Portal}, {"paypal.com", Finance},
	{"wordpress.com", Other}, {"instagram.com", Social}, {"netflix.com", Streaming},
	{"imdb.com", Reference}, {"aol.com", Portal}, {"apple.com", Tech},
	{"reddit.com", Social}, {"huffingtonpost.com", News}, {"cnn.com", News},
	{"espn.com", News}, {"bankofamerica.com", Finance}, {"chase.com", Finance},
	{"wellsfargo.com", Finance}, {"weather.com", Reference}, {"microsoft.com", Tech},
	{"hulu.com", Streaming}, {"pandora.com", Streaming}, {"nytimes.com", News},
	{"imgur.com", Social}, {"groupon.com", Shopping}, {"dropbox.com", Cloud},
	{"adobe.com", Tech}, {"cnet.com", Tech}, {"walmart.com", Shopping},
	{"about.com", Reference}, {"vimeo.com", Streaming}, {"flickr.com", Social},
	{"bestbuy.com", Shopping}, {"foxnews.com", News}, {"zillow.com", Reference},
	{"github.com", Tech}, {"stackoverflow.com", Tech}, {"etsy.com", Shopping},
	{"target.com", Shopping}, {"yelp.com", Reference}, {"usps.com", Other},
	{"comcast.net", Portal}, {"verizon.com", Portal}, {"att.com", Portal},
	{"spotify.com", Streaming}, {"soundcloud.com", Streaming}, {"twitch.tv", Streaming},
	{"wikia.com", Reference}, {"dailymotion.com", Streaming}, {"ask.com", Search},
	{"salesforce.com", Tech}, {"indeed.com", Reference}, {"homedepot.com", Shopping},
	{"wsj.com", News}, {"usatoday.com", News}, {"washingtonpost.com", News},
	{"bbc.co.uk", News}, {"buzzfeed.com", News}, {"slate.com", News},
	{"engadget.com", Tech}, {"techcrunch.com", Tech}, {"gizmodo.com", Tech},
	{"mashable.com", Tech}, {"deviantart.com", Social}, {"photobucket.com", Social},
	{"skype.com", Tech}, {"mozilla.org", Tech}, {"akamaihd.net", CDN},
	{"cloudfront.net", CDN}, {"googlevideo.com", Streaming}, {"ytimg.com", CDN},
	{"fbcdn.net", CDN}, {"googleusercontent.com", CDN}, {"gstatic.com", CDN},
	{"doubleclick.net", Ads}, {"googlesyndication.com", Ads},
	{"googleadservices.com", Ads}, {"scorecardresearch.com", Ads},
	{"2mdn.net", Ads}, {"adnxs.com", Ads}, {"quantserve.com", Ads},
	{"outbrain.com", Ads}, {"taboola.com", Ads}, {"steampowered.com", Gaming},
	{"ign.com", Gaming}, {"gamespot.com", Gaming}, {"ea.com", Gaming},
	{"blizzard.com", Gaming}, {"roblox.com", Gaming}, {"minecraft.net", Gaming},
	{"mlb.com", News}, {"nfl.com", News}, {"nba.com", News},
	{"nbcnews.com", News}, {"cbsnews.com", News}, {"latimes.com", News},
	{"forbes.com", News}, {"bloomberg.com", Finance}, {"reuters.com", News},
	{"time.com", News}, {"theatlantic.com", News}, {"theguardian.com", News},
	{"dailymail.co.uk", News}, {"politico.com", News}, {"npr.org", News},
	{"pbs.org", Streaming}, {"nationalgeographic.com", Reference},
	{"vevo.com", Streaming}, {"mtv.com", Streaming}, {"cbs.com", Streaming},
	{"nbc.com", Streaming}, {"abc.com", Streaming}, {"fox.com", Streaming},
	{"amc.com", Streaming}, {"hbo.com", Streaming}, {"crackle.com", Streaming},
	{"funnyordie.com", Streaming}, {"collegehumor.com", Streaming},
	{"theonion.com", News}, {"9gag.com", Social}, {"4chan.org", Social},
	{"fark.com", News}, {"digg.com", News}, {"slashdot.org", Tech},
	{"arstechnica.com", Tech}, {"wired.com", Tech}, {"theverge.com", Tech},
	{"zdnet.com", Tech}, {"pcmag.com", Tech}, {"tomshardware.com", Tech},
	{"anandtech.com", Tech}, {"newegg.com", Shopping}, {"overstock.com", Shopping},
	{"wayfair.com", Shopping}, {"sears.com", Shopping}, {"kohls.com", Shopping},
	{"macys.com", Shopping}, {"nordstrom.com", Shopping}, {"gap.com", Shopping},
	{"zappos.com", Shopping}, {"costco.com", Shopping}, {"kroger.com", Shopping},
	{"safeway.com", Shopping}, {"cvs.com", Shopping}, {"walgreens.com", Shopping},
	{"ticketmaster.com", Other}, {"stubhub.com", Other}, {"fandango.com", Other},
	{"rottentomatoes.com", Reference}, {"metacritic.com", Reference},
	{"goodreads.com", Reference}, {"barnesandnoble.com", Shopping},
	{"audible.com", Streaming}, {"kickstarter.com", Other},
	{"wikihow.com", Reference}, {"ehow.com", Reference}, {"answers.com", Reference},
	{"quora.com", Reference}, {"urbandictionary.com", Reference},
	{"dictionary.com", Reference}, {"wolframalpha.com", Reference},
	{"wunderground.com", Reference}, {"accuweather.com", Reference},
	{"tripadvisor.com", Travel}, {"expedia.com", Travel},
	{"priceline.com", Travel}, {"kayak.com", Travel}, {"southwest.com", Travel}, {"delta.com", Travel}, {"united.com", Travel},
	{"airbnb.com", Travel}, {"booking.com", Travel}, {"hotels.com", Travel},
	{"match.com", Social}, {"okcupid.com", Social},
	{"icloud.com", Cloud}, {"box.com", Cloud},
	{"drive.google.com", Cloud}, {"onedrive.live.com", Cloud},
	{"evernote.com", Cloud}, {"sourceforge.net", Tech},
	{"wikimedia.org", Reference}, {"archive.org", Reference},
	{"godaddy.com", Tech},
	{"mediafire.com", Cloud}, {"thepiratebay.se", Other}, {"speedtest.net", Tech},
}

// Count returns the whitelist size (200, per the paper).
func Count() int { return len(top200) }

// All returns the whitelist in rank order. Callers must not modify it.
func All() []Domain { return top200 }

var rankIndex = func() map[string]int {
	m := make(map[string]int, len(top200))
	for i, d := range top200 {
		m[d.Name] = i
	}
	return m
}()

// Rank returns the 1-based Alexa-style rank of name, or 0 if the domain is
// not whitelisted.
func Rank(name string) int {
	if i, ok := rankIndex[normalize(name)]; ok {
		return i + 1
	}
	return 0
}

// IsWhitelisted reports whether name (or a subdomain of a whitelisted name)
// is on the list. Subdomains inherit whitelisting: www.google.com matches
// google.com, mirroring how DNS whitelisting behaved on the router.
func IsWhitelisted(name string) bool { return Whitelisted(name) != "" }

// Whitelisted returns the whitelist entry name that covers name (exact
// match or registered parent), or "" if none does.
func Whitelisted(name string) string {
	n := normalize(name)
	for {
		if _, ok := rankIndex[n]; ok {
			return n
		}
		dot := strings.IndexByte(n, '.')
		if dot < 0 {
			return ""
		}
		n = n[dot+1:]
		if !strings.Contains(n, ".") {
			return "" // bare TLD
		}
	}
}

// CategoryOf returns the category of a whitelisted domain (searching parent
// domains like Whitelisted does), or Other for unlisted names.
func CategoryOf(name string) Category {
	if w := Whitelisted(name); w != "" {
		return top200[rankIndex[w]].Category
	}
	return Other
}

// ByCategory returns the whitelisted domains of the given category, in
// rank order.
func ByCategory(c Category) []Domain {
	var out []Domain
	for _, d := range top200 {
		if d.Category == c {
			out = append(out, d)
		}
	}
	return out
}

func normalize(name string) string {
	return strings.TrimSuffix(strings.ToLower(strings.TrimSpace(name)), ".")
}
