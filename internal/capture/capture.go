// Package capture is the gateway's passive monitor. It sits on the
// forwarding path and produces the four kinds of Traffic data the paper
// collects (§3.2.2):
//
//  1. packet statistics — size and timestamp of every packet relayed to
//     and from the Internet (aggregated here into per-second throughput,
//     which is what §6.2's utilization analysis consumes);
//  2. flow statistics — 5-tuples with byte/packet counts, attributed to
//     the LAN device behind the NAT;
//  3. DNS responses — A/CNAME records sniffed off port 53, whitelisted
//     or obfuscated;
//  4. MAC addresses — device identities with the lower 24 bits hashed.
//
// Everything leaving this package is already anonymized; raw identifiers
// never reach the collection side, mirroring the deployed firmware.
package capture

import (
	"errors"
	"io"
	"net/netip"
	"sort"
	"time"

	"natpeek/internal/anonymize"
	"natpeek/internal/dns"
	"natpeek/internal/domains"
	"natpeek/internal/mac"
	"natpeek/internal/packet"
	"natpeek/internal/pcap"
	"natpeek/internal/telemetry"
)

// Dir is the packet direction relative to the home.
type Dir int

// Directions.
const (
	Upstream   Dir = iota // LAN → WAN
	Downstream            // WAN → LAN
)

func (d Dir) String() string {
	if d == Upstream {
		return "up"
	}
	return "down"
}

// FlowKey identifies a flow from the home's perspective: the LAN device,
// the remote endpoint, and the transport.
type FlowKey struct {
	Device     mac.Addr // anonymized device MAC
	Proto      packet.IPProto
	RemoteIP   netip.Addr // obfuscated remote address
	RemotePort uint16
	LocalPort  uint16
}

// Flow is one tracked connection.
type Flow struct {
	Key       FlowKey
	Domain    string // whitelisted name or "anon-…" token; "" if unknown
	First     time.Time
	Last      time.Time
	UpBytes   int64
	DownBytes int64
	UpPkts    int64
	DownPkts  int64
}

// DeviceStats aggregates per-device usage.
type DeviceStats struct {
	Device    mac.Addr // anonymized
	UpBytes   int64
	DownBytes int64
	FirstSeen time.Time
	LastSeen  time.Time
}

// Total returns the device's combined traffic volume.
func (d *DeviceStats) Total() int64 { return d.UpBytes + d.DownBytes }

// SecondSample is one second of directional throughput.
type SecondSample struct {
	Second time.Time // truncated to the second
	Bytes  int64
}

// Config tunes the monitor.
type Config struct {
	// LANPrefix distinguishes home addresses from Internet addresses.
	LANPrefix netip.Prefix
	// FlowTimeout idles out flows (default 5 minutes).
	FlowTimeout time.Duration
	// MaxFlows caps the flow table (default 65536). When full, the
	// longest-idle flow is evicted into the finished list.
	MaxFlows int
	// UserWhitelist adds user-chosen domains to the Alexa 200.
	UserWhitelist []string
}

// Monitor is the passive capture engine. Not safe for concurrent use.
type Monitor struct {
	cfg    Config
	anon   *anonymize.Policy
	dns    *dns.Cache
	flows  map[FlowKey]*Flow
	done   []*Flow
	devs   map[mac.Addr]*DeviceStats
	perSec map[Dir]*secondTracker
	trace  *pcap.Writer

	// Hot-path telemetry, resolved once at New: each Process call costs
	// two atomic adds plus occasional gauge stores on flow-table changes.
	// The counters aggregate across every monitor in the process (the
	// whole simulated fleet, or the one live gateway).
	mPackets  *telemetry.Counter
	mBytes    *telemetry.Counter
	mFinished *telemetry.Counter
	mEvicted  *telemetry.Counter
	gFlows    *telemetry.Gauge
	gAnon     *telemetry.Gauge
	anonSeen  int // last MACCacheSize pushed into gAnon (delta updates)
}

// SetTrace mirrors every processed frame into a pcap stream (tcpdump/
// Wireshark compatible) — the raw form of the paper's "size and
// timestamp of every packet" collection. Pass nil to stop tracing.
// Privacy note: traces contain raw, un-anonymized frames; the deployed
// firmware never exported them, and neither should callers.
func (m *Monitor) SetTrace(w *pcap.Writer) { m.trace = w }

type secondTracker struct {
	cur     time.Time
	bytes   int64
	history []SecondSample
}

func (s *secondTracker) add(now time.Time, n int64) {
	sec := now.Truncate(time.Second)
	if !sec.Equal(s.cur) {
		if s.bytes > 0 {
			s.history = append(s.history, SecondSample{Second: s.cur, Bytes: s.bytes})
		}
		s.cur = sec
		s.bytes = 0
	}
	s.bytes += n
}

func (s *secondTracker) flush() {
	if s.bytes > 0 {
		s.history = append(s.history, SecondSample{Second: s.cur, Bytes: s.bytes})
		s.bytes = 0
	}
}

// New returns a monitor anonymizing with policy.
func New(cfg Config, policy *anonymize.Policy) *Monitor {
	if cfg.FlowTimeout <= 0 {
		cfg.FlowTimeout = 5 * time.Minute
	}
	if cfg.MaxFlows <= 0 {
		cfg.MaxFlows = 65536
	}
	reg := telemetry.Default
	return &Monitor{
		cfg:   cfg,
		anon:  policy,
		dns:   dns.NewCache(0),
		flows: make(map[FlowKey]*Flow),
		devs:  make(map[mac.Addr]*DeviceStats),
		perSec: map[Dir]*secondTracker{
			Upstream:   {},
			Downstream: {},
		},
		mPackets: reg.Counter("natpeek_capture_packets_total",
			"Frames processed by the passive capture pipeline."),
		mBytes: reg.Counter("natpeek_capture_bytes_total",
			"IP payload bytes seen by the passive capture pipeline."),
		mFinished: reg.Counter("natpeek_capture_flows_finished_total",
			"Flows moved to the finished list by idle timeout."),
		mEvicted: reg.Counter("natpeek_capture_flows_evicted_total",
			"Flows force-evicted because the flow table hit MaxFlows."),
		gFlows: reg.Gauge("natpeek_capture_active_flows",
			"Live flow-table entries across all capture monitors."),
		gAnon: reg.Gauge("natpeek_capture_anon_cache_entries",
			"Memoized MAC pseudonyms across all capture monitors."),
	}
}

// Process ingests one frame seen on the LAN side of the NAT (so LAN
// addresses and device MACs are still visible), with its direction and
// capture timestamp.
func (m *Monitor) Process(raw []byte, dir Dir, now time.Time) {
	if m.trace != nil {
		// Trace before any filtering: a capture file records the wire.
		_ = m.trace.WritePacket(pcap.Packet{At: now, Data: raw})
	}
	m.mPackets.Inc()
	p, err := packet.Decode(raw)
	if err != nil || (p.IP4 == nil && p.IP6 == nil) {
		return // non-IP or undecodable frames carry no usage signal
	}

	size := int64(p.Len())
	m.mBytes.Add(size)
	m.perSec[dir].add(now, size)

	// Identify the device and the remote endpoint.
	var devHW mac.Addr
	var local, remote netip.Addr
	var localPort, remotePort uint16
	sp, dp := p.Ports()
	if dir == Upstream {
		devHW = p.Eth.Src
		local, remote = p.SrcIP(), p.DstIP()
		localPort, remotePort = sp, dp
	} else {
		devHW = p.Eth.Dst
		local, remote = p.DstIP(), p.SrcIP()
		localPort, remotePort = dp, sp
	}
	if m.cfg.LANPrefix.IsValid() && !m.cfg.LANPrefix.Contains(local) {
		// Not home-attributable (e.g. router's own WAN chatter).
		return
	}

	// Sniff DNS responses before anonymizing anything.
	if p.UDP != nil && sp == 53 && dir == Downstream {
		if msg, err := dns.Parse(p.Payload); err == nil {
			m.dns.Observe(msg)
		}
	}

	dev := m.anon.MAC(devHW)
	ds, ok := m.devs[dev]
	if !ok {
		ds = &DeviceStats{Device: dev, FirstSeen: now}
		m.devs[dev] = ds
		// New device ⇒ the anonymizer may have grown; push the delta so
		// the gauge stays an exact sum across monitors.
		if n := m.anon.MACCacheSize(); n != m.anonSeen {
			m.gAnon.Add(float64(n - m.anonSeen))
			m.anonSeen = n
		}
	}
	ds.LastSeen = now
	if dir == Upstream {
		ds.UpBytes += size
	} else {
		ds.DownBytes += size
	}

	proto := p.Proto()
	if proto != packet.ProtoTCP && proto != packet.ProtoUDP {
		return // flows are TCP/UDP only
	}

	// Resolve the remote to a domain while we still hold the real
	// address, then obfuscate.
	domain := ""
	if name := m.dns.Domain(remote); name != "" {
		domain = m.anon.DomainWith(name, m.cfg.UserWhitelist)
	}
	key := FlowKey{
		Device:     dev,
		Proto:      proto,
		RemoteIP:   m.anon.IP(remote),
		RemotePort: remotePort,
		LocalPort:  localPort,
	}
	f, ok := m.flows[key]
	if !ok {
		if len(m.flows) >= m.cfg.MaxFlows {
			m.evictOldest()
		}
		f = &Flow{Key: key, First: now}
		m.flows[key] = f
		m.gFlows.Add(1)
	}
	f.Last = now
	if domain != "" {
		f.Domain = domain
	}
	if dir == Upstream {
		f.UpBytes += size
		f.UpPkts++
	} else {
		f.DownBytes += size
		f.DownPkts++
	}
}

func (m *Monitor) evictOldest() {
	var oldest *Flow
	for _, f := range m.flows {
		if oldest == nil || f.Last.Before(oldest.Last) {
			oldest = f
		}
	}
	if oldest != nil {
		delete(m.flows, oldest.Key)
		m.done = append(m.done, oldest)
		m.mEvicted.Inc()
		m.gFlows.Add(-1)
	}
}

// ExpireFlows moves flows idle past the timeout to the finished list and
// returns how many moved.
func (m *Monitor) ExpireFlows(now time.Time) int {
	n := 0
	for k, f := range m.flows {
		if now.Sub(f.Last) >= m.cfg.FlowTimeout {
			delete(m.flows, k)
			m.done = append(m.done, f)
			n++
		}
	}
	if n > 0 {
		m.mFinished.Add(int64(n))
		m.gFlows.Add(float64(-n))
	}
	return n
}

// FinishAll moves every live flow to the finished list, regardless of
// idle time, and returns how many moved. The gateway calls this on
// power-off so the final export carries complete totals.
func (m *Monitor) FinishAll() int {
	n := 0
	for k, f := range m.flows {
		delete(m.flows, k)
		m.done = append(m.done, f)
		n++
	}
	if n > 0 {
		m.mFinished.Add(int64(n))
		m.gFlows.Add(float64(-n))
	}
	return n
}

// TakeFinishedFlows drains the finished list (idle-expired, evicted, or
// FinishAll'd flows), sorted by first-seen time then key. Each finished
// flow is returned exactly once, with its final byte/packet totals —
// this is the export watermark for incremental flow upload: live flows
// are never exported, so no flow is ever exported twice or with partial
// counts.
func (m *Monitor) TakeFinishedFlows() []*Flow {
	out := m.done
	m.done = nil
	sort.Slice(out, func(i, j int) bool {
		if !out[i].First.Equal(out[j].First) {
			return out[i].First.Before(out[j].First)
		}
		return flowKeyLess(out[i].Key, out[j].Key)
	})
	return out
}

// ActiveFlows returns the number of live flows.
func (m *Monitor) ActiveFlows() int { return len(m.flows) }

// Flows returns every flow seen (finished first, then live), sorted by
// first-seen time then key for determinism.
func (m *Monitor) Flows() []*Flow {
	out := make([]*Flow, 0, len(m.done)+len(m.flows))
	out = append(out, m.done...)
	for _, f := range m.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].First.Equal(out[j].First) {
			return out[i].First.Before(out[j].First)
		}
		return flowKeyLess(out[i].Key, out[j].Key)
	})
	return out
}

func flowKeyLess(a, b FlowKey) bool {
	if a.Device != b.Device {
		return a.Device.String() < b.Device.String()
	}
	if a.RemoteIP != b.RemoteIP {
		return a.RemoteIP.Less(b.RemoteIP)
	}
	if a.LocalPort != b.LocalPort {
		return a.LocalPort < b.LocalPort
	}
	return a.RemotePort < b.RemotePort
}

// Devices returns per-device stats sorted by descending total volume.
func (m *Monitor) Devices() []*DeviceStats {
	out := make([]*DeviceStats, 0, len(m.devs))
	for _, d := range m.devs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Device.String() < out[j].Device.String()
	})
	return out
}

// Throughput returns the per-second samples for a direction (flushing the
// current second first).
func (m *Monitor) Throughput(dir Dir) []SecondSample {
	t := m.perSec[dir]
	t.flush()
	return t.history
}

// TakeThroughput returns the per-second samples and clears the history,
// for incremental export.
func (m *Monitor) TakeThroughput(dir Dir) []SecondSample {
	t := m.perSec[dir]
	t.flush()
	out := t.history
	t.history = nil
	return out
}

// TakeThroughputBefore returns and clears only the samples strictly
// before cutoff, leaving later ones (and the live second, unless it is
// already past) buffered. Periodic exporters use a minute-aligned
// cutoff so an in-progress minute is never split across two uploads.
func (m *Monitor) TakeThroughputBefore(dir Dir, cutoff time.Time) []SecondSample {
	t := m.perSec[dir]
	if t.bytes > 0 && t.cur.Before(cutoff) {
		t.flush()
	}
	var out, keep []SecondSample
	for _, s := range t.history {
		if s.Second.Before(cutoff) {
			out = append(out, s)
		} else {
			keep = append(keep, s)
		}
	}
	t.history = keep
	return out
}

// DNSCacheLen reports how many distinct remote addresses currently have
// a sniffed domain mapping — an oracle for end-to-end verification.
func (m *Monitor) DNSCacheLen() int { return m.dns.Len() }

// DomainBytes aggregates traffic volume per domain across all flows.
// Flows with no resolved domain are grouped under "" (the caller decides
// whether to count them as unattributed).
func (m *Monitor) DomainBytes() map[string]int64 {
	out := make(map[string]int64)
	for _, f := range m.Flows() {
		out[f.Domain] += f.UpBytes + f.DownBytes
	}
	return out
}

// DomainConnections counts distinct flows per domain.
func (m *Monitor) DomainConnections() map[string]int {
	out := make(map[string]int)
	for _, f := range m.Flows() {
		out[f.Domain]++
	}
	return out
}

// WhitelistedShare returns the fraction of total flow volume attributed
// to whitelisted (non-anonymized, non-empty) domains — the paper reports
// this is ~65% (§6.4).
func (m *Monitor) WhitelistedShare() float64 {
	var wl, total int64
	for d, b := range m.DomainBytes() {
		total += b
		if d != "" && !anonymize.IsAnonymized(d) && domains.IsWhitelisted(d) {
			wl += b
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wl) / float64(total)
}

// Replay feeds a pcap stream through the monitor. The direction of each
// frame is inferred from which side of the LAN prefix its source sits
// on. It returns the number of frames processed.
func (m *Monitor) Replay(r *pcap.Reader) (int, error) {
	n := 0
	for {
		pkt, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		dir := Downstream
		if p, derr := packet.Decode(pkt.Data); derr == nil && m.cfg.LANPrefix.Contains(p.SrcIP()) {
			dir = Upstream
		}
		m.Process(pkt.Data, dir, pkt.At)
		n++
	}
}
