package capture

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"natpeek/internal/anonymize"
	"natpeek/internal/dns"
	"natpeek/internal/mac"
	"natpeek/internal/packet"
	"natpeek/internal/pcap"
)

var (
	t0     = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	lanPfx = netip.MustParsePrefix("192.168.1.0/24")
	devIP  = netip.MustParseAddr("192.168.1.10")
	dev2IP = netip.MustParseAddr("192.168.1.11")
	webIP  = netip.MustParseAddr("173.194.43.36")
	devHW  = mac.MustParse("a4:b1:97:00:00:0a")
	dev2HW = mac.MustParse("00:24:54:00:00:0b")
	gwHW   = mac.MustParse("20:4e:7f:00:00:01")
)

func newMonitor() *Monitor {
	return New(Config{LANPrefix: lanPfx}, anonymize.New([]byte("test")))
}

func upTCP(src netip.Addr, hw mac.Addr, sport uint16, n int) []byte {
	return packet.NewBuilder(hw, gwHW).TCPv4(src, webIP,
		packet.TCP{SrcPort: sport, DstPort: 443, Flags: packet.FlagACK}, 64, make([]byte, n))
}

func downTCP(dst netip.Addr, hw mac.Addr, dport uint16, n int) []byte {
	return packet.NewBuilder(gwHW, hw).TCPv4(webIP, dst,
		packet.TCP{SrcPort: 443, DstPort: dport, Flags: packet.FlagACK}, 60, make([]byte, n))
}

func dnsReply(qname string, addr netip.Addr, dport uint16) []byte {
	msg := dns.NewQuery(1, qname, dns.TypeA).Answer(dns.RR{
		Name: qname, Type: dns.TypeA, Class: dns.ClassIN, TTL: 60, Addr: addr,
	})
	return packet.NewBuilder(gwHW, devHW).UDPv4(netip.MustParseAddr("8.8.8.8"), devIP, 53, dport, 60, msg.Marshal())
}

func TestFlowTrackingBothDirections(t *testing.T) {
	m := newMonitor()
	m.Process(upTCP(devIP, devHW, 5000, 100), Upstream, t0)
	m.Process(downTCP(devIP, devHW, 5000, 1400), Downstream, t0.Add(time.Millisecond))
	flows := m.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1 (both directions one flow)", len(flows))
	}
	f := flows[0]
	if f.UpPkts != 1 || f.DownPkts != 1 {
		t.Fatalf("pkts %d/%d", f.UpPkts, f.DownPkts)
	}
	if f.UpBytes <= 100 || f.DownBytes <= 1400 {
		t.Fatalf("bytes %d/%d (must include headers)", f.UpBytes, f.DownBytes)
	}
}

func TestDeviceAttributionAnonymized(t *testing.T) {
	m := newMonitor()
	m.Process(upTCP(devIP, devHW, 5000, 10), Upstream, t0)
	devs := m.Devices()
	if len(devs) != 1 {
		t.Fatalf("devices = %d", len(devs))
	}
	if devs[0].Device == devHW {
		t.Fatal("device MAC not anonymized")
	}
	if devs[0].Device.OUI() != devHW.OUI() {
		t.Fatal("OUI lost in anonymization")
	}
}

func TestPerDeviceByteSplit(t *testing.T) {
	m := newMonitor()
	m.Process(upTCP(devIP, devHW, 5000, 100), Upstream, t0)
	m.Process(upTCP(dev2IP, dev2HW, 5001, 100), Upstream, t0)
	m.Process(downTCP(dev2IP, dev2HW, 5001, 5000), Downstream, t0)
	devs := m.Devices()
	if len(devs) != 2 {
		t.Fatalf("devices = %d", len(devs))
	}
	// Sorted by volume: dev2 first.
	if devs[0].DownBytes == 0 || devs[1].DownBytes != 0 {
		t.Fatal("per-device split wrong")
	}
	if devs[0].Total() <= devs[1].Total() {
		t.Fatal("not sorted by volume")
	}
}

func TestDNSSniffAttributesDomains(t *testing.T) {
	m := newMonitor()
	m.Process(dnsReply("www.google.com", webIP, 40000), Downstream, t0)
	m.Process(upTCP(devIP, devHW, 5000, 10), Upstream, t0.Add(time.Second))
	flows := m.Flows()
	var tcp *Flow
	for _, f := range flows {
		if f.Key.Proto == packet.ProtoTCP {
			tcp = f
		}
	}
	if tcp == nil {
		t.Fatal("tcp flow missing")
	}
	if tcp.Domain != "www.google.com" {
		t.Fatalf("domain = %q", tcp.Domain)
	}
}

func TestUnlistedDomainObfuscated(t *testing.T) {
	m := newMonitor()
	m.Process(dnsReply("private-clinic.example", webIP, 40000), Downstream, t0)
	m.Process(upTCP(devIP, devHW, 5000, 10), Upstream, t0.Add(time.Second))
	for _, f := range m.Flows() {
		if f.Key.Proto != packet.ProtoTCP {
			continue
		}
		if !anonymize.IsAnonymized(f.Domain) {
			t.Fatalf("unlisted domain leaked: %q", f.Domain)
		}
	}
}

func TestUserWhitelistHonored(t *testing.T) {
	m := New(Config{LANPrefix: lanPfx, UserWhitelist: []string{"myhome.example"}}, anonymize.New([]byte("k")))
	m.Process(dnsReply("nas.myhome.example", webIP, 40000), Downstream, t0)
	m.Process(upTCP(devIP, devHW, 5000, 10), Upstream, t0.Add(time.Second))
	for _, f := range m.Flows() {
		if f.Key.Proto == packet.ProtoTCP && f.Domain != "nas.myhome.example" {
			t.Fatalf("user whitelist ignored: %q", f.Domain)
		}
	}
}

func TestRemoteIPObfuscated(t *testing.T) {
	m := newMonitor()
	m.Process(upTCP(devIP, devHW, 5000, 10), Upstream, t0)
	f := m.Flows()[0]
	if f.Key.RemoteIP == webIP {
		t.Fatal("remote IP not obfuscated")
	}
}

func TestNonLANTrafficIgnoredForFlows(t *testing.T) {
	m := newMonitor()
	// A frame whose "local" side is not in the LAN prefix (router WAN
	// chatter) must not create device stats.
	outside := packet.NewBuilder(devHW, gwHW).TCPv4(
		netip.MustParseAddr("203.0.113.5"), webIP,
		packet.TCP{SrcPort: 5000, DstPort: 443, Flags: packet.FlagACK}, 64, nil)
	m.Process(outside, Upstream, t0)
	if len(m.Devices()) != 0 {
		t.Fatal("non-LAN traffic attributed to a device")
	}
}

func TestGarbageFramesIgnored(t *testing.T) {
	m := newMonitor()
	m.Process([]byte{1, 2, 3}, Upstream, t0)
	m.Process(nil, Downstream, t0)
	arp := packet.NewBuilder(devHW, gwHW).ARPRequest(devIP, netip.MustParseAddr("192.168.1.1"))
	m.Process(arp, Upstream, t0)
	if len(m.Flows()) != 0 || len(m.Devices()) != 0 {
		t.Fatal("garbage created state")
	}
}

func TestFlowExpiry(t *testing.T) {
	m := New(Config{LANPrefix: lanPfx, FlowTimeout: time.Minute}, anonymize.New([]byte("k")))
	m.Process(upTCP(devIP, devHW, 5000, 10), Upstream, t0)
	if n := m.ExpireFlows(t0.Add(30 * time.Second)); n != 0 {
		t.Fatal("expired too early")
	}
	if n := m.ExpireFlows(t0.Add(2 * time.Minute)); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if m.ActiveFlows() != 0 {
		t.Fatal("flow still active")
	}
	// Finished flows still reported.
	if len(m.Flows()) != 1 {
		t.Fatal("finished flow lost")
	}
}

func TestFlowTableCapEvicts(t *testing.T) {
	m := New(Config{LANPrefix: lanPfx, MaxFlows: 10}, anonymize.New([]byte("k")))
	for i := 0; i < 20; i++ {
		m.Process(upTCP(devIP, devHW, uint16(5000+i), 10), Upstream, t0.Add(time.Duration(i)*time.Second))
	}
	if m.ActiveFlows() > 10 {
		t.Fatalf("active = %d, cap 10", m.ActiveFlows())
	}
	if len(m.Flows()) != 20 {
		t.Fatalf("total flows = %d, want 20", len(m.Flows()))
	}
}

func TestThroughputPerSecond(t *testing.T) {
	m := newMonitor()
	// 3 packets in second 0, 1 packet in second 2.
	m.Process(upTCP(devIP, devHW, 5000, 1000), Upstream, t0)
	m.Process(upTCP(devIP, devHW, 5000, 1000), Upstream, t0.Add(100*time.Millisecond))
	m.Process(upTCP(devIP, devHW, 5000, 1000), Upstream, t0.Add(900*time.Millisecond))
	m.Process(upTCP(devIP, devHW, 5000, 1000), Upstream, t0.Add(2*time.Second))
	samples := m.Throughput(Upstream)
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2 busy seconds", len(samples))
	}
	if samples[0].Bytes <= 2*samples[1].Bytes {
		t.Fatalf("second-0 bytes %d vs second-2 bytes %d", samples[0].Bytes, samples[1].Bytes)
	}
	if !samples[0].Second.Equal(t0) || !samples[1].Second.Equal(t0.Add(2*time.Second)) {
		t.Fatal("sample timestamps wrong")
	}
}

func TestDomainAggregates(t *testing.T) {
	m := newMonitor()
	m.Process(dnsReply("www.google.com", webIP, 40000), Downstream, t0)
	for i := 0; i < 3; i++ {
		m.Process(upTCP(devIP, devHW, uint16(5000+i), 100), Upstream, t0.Add(time.Second))
	}
	conns := m.DomainConnections()
	if conns["www.google.com"] != 3 {
		t.Fatalf("connections = %v", conns)
	}
	bytes := m.DomainBytes()
	if bytes["www.google.com"] <= 0 {
		t.Fatalf("bytes = %v", bytes)
	}
}

func TestWhitelistedShare(t *testing.T) {
	m := newMonitor()
	m.Process(dnsReply("www.google.com", webIP, 40000), Downstream, t0)
	m.Process(upTCP(devIP, devHW, 5000, 1000), Upstream, t0.Add(time.Second))
	share := m.WhitelistedShare()
	if share <= 0.5 {
		t.Fatalf("share = %v with only whitelisted flow traffic", share)
	}
}

func BenchmarkProcessUpstream(b *testing.B) {
	m := newMonitor()
	frame := upTCP(devIP, devHW, 5000, 1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Process(frame, Upstream, t0.Add(time.Duration(i)*time.Millisecond))
	}
}

func TestTraceMirrorsFrames(t *testing.T) {
	m := newMonitor()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTrace(w)
	f1 := upTCP(devIP, devHW, 5000, 100)
	m.Process(f1, Upstream, t0)
	m.Process([]byte{1, 2, 3}, Upstream, t0) // undecodable frames trace too
	m.SetTrace(nil)
	m.Process(f1, Upstream, t0.Add(time.Second)) // not traced

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("traced %d packets, want 2", len(pkts))
	}
	if !bytes.Equal(pkts[0].Data, f1) {
		t.Fatal("trace corrupted the frame")
	}
	if !pkts[0].At.Equal(t0) {
		t.Fatalf("trace timestamp %v", pkts[0].At)
	}
}

func TestReplayPcap(t *testing.T) {
	// Write a trace with one monitor, replay it into a fresh one, and
	// compare the resulting flow tables.
	rec := newMonitor()
	var buf bytes.Buffer
	w, _ := pcap.NewWriter(&buf, 0)
	rec.SetTrace(w)
	rec.Process(dnsReply("www.google.com", webIP, 40000), Downstream, t0)
	rec.Process(upTCP(devIP, devHW, 5000, 100), Upstream, t0.Add(time.Second))
	rec.Process(downTCP(devIP, devHW, 5000, 900), Downstream, t0.Add(2*time.Second))

	replayed := newMonitor()
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := replayed.Replay(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("replayed %d frames", n)
	}
	a, b := rec.Flows(), replayed.Flows()
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].UpBytes != b[i].UpBytes || a[i].Domain != b[i].Domain {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
