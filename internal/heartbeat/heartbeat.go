// Package heartbeat implements the availability-measurement primitive of
// §4: "Every router sends a 'heartbeat' packet to the central BISmark
// server approximately once a minute... We define downtime as any gap in
// the heartbeat logs that lasts longer than ten minutes."
//
// The package has three parts: the wire format, a UDP sender/receiver
// pair for running over real sockets, and the Log with the gap analysis
// that turns heartbeat timestamps into the downtime statistics behind
// Figs. 3–6.
package heartbeat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"natpeek/internal/telemetry"
)

// Interval is the nominal heartbeat period.
const Interval = time.Minute

// DefaultGapThreshold is the paper's downtime definition: a gap of ten
// minutes or longer.
const DefaultGapThreshold = 10 * time.Minute

// magic identifies heartbeat datagrams ("BSHB", version 1).
var magic = [4]byte{'B', 'S', 'H', 'B'}

// Beat is one heartbeat datagram.
type Beat struct {
	RouterID string
	Seq      uint64
	SentAt   time.Time
}

// Marshal encodes the beat.
func (b *Beat) Marshal() []byte {
	id := []byte(b.RouterID)
	if len(id) > 255 {
		id = id[:255]
	}
	out := make([]byte, 0, 4+1+1+len(id)+8+8)
	out = append(out, magic[:]...)
	out = append(out, 1) // version
	out = append(out, byte(len(id)))
	out = append(out, id...)
	out = binary.BigEndian.AppendUint64(out, b.Seq)
	out = binary.BigEndian.AppendUint64(out, uint64(b.SentAt.UnixNano()))
	return out
}

// ErrBadBeat reports an undecodable datagram.
var ErrBadBeat = errors.New("heartbeat: bad datagram")

// ParseBeat decodes a datagram.
func ParseBeat(raw []byte) (Beat, error) {
	var b Beat
	if len(raw) < 6 || [4]byte(raw[:4]) != magic {
		return b, fmt.Errorf("%w: magic", ErrBadBeat)
	}
	if raw[4] != 1 {
		return b, fmt.Errorf("%w: version %d", ErrBadBeat, raw[4])
	}
	idLen := int(raw[5])
	if len(raw) < 6+idLen+16 {
		return b, fmt.Errorf("%w: truncated", ErrBadBeat)
	}
	b.RouterID = string(raw[6 : 6+idLen])
	b.Seq = binary.BigEndian.Uint64(raw[6+idLen:])
	b.SentAt = time.Unix(0, int64(binary.BigEndian.Uint64(raw[6+idLen+8:]))).UTC()
	return b, nil
}

// Sender emits heartbeats over a real UDP socket. Heartbeats are
// fire-and-forget: "These heartbeats can be lost, and the router makes no
// attempt to retransmit them."
type Sender struct {
	routerID string
	conn     net.Conn
	seq      uint64
}

// NewSender dials the collection server (addr like "host:port").
func NewSender(routerID, addr string) (*Sender, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("heartbeat: dial %s: %w", addr, err)
	}
	return &Sender{routerID: routerID, conn: conn}, nil
}

// Send emits one beat stamped now. Transmission errors are returned but a
// caller following the protocol ignores them.
func (s *Sender) Send(now time.Time) error {
	s.seq++
	b := Beat{RouterID: s.routerID, Seq: s.seq, SentAt: now}
	_, err := s.conn.Write(b.Marshal())
	return err
}

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// Receiver accepts heartbeats on a UDP socket and appends them to a Log.
type Receiver struct {
	pc  net.PacketConn
	log *Log

	mReceived  *telemetry.Counter
	mMalformed *telemetry.Counter
	gLastSeen  *telemetry.GaugeVec

	mu     sync.Mutex
	closed bool
	bad    int
}

// NewReceiver listens on addr ("host:port", port 0 for ephemeral) and
// records beats into log, stamping them with receive time from recvNow
// (nil means time.Now — receive-side stamping is what the study used, so
// clock skew on routers doesn't corrupt the log).
func NewReceiver(addr string, log *Log, recvNow func() time.Time) (*Receiver, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("heartbeat: listen %s: %w", addr, err)
	}
	if recvNow == nil {
		recvNow = time.Now
	}
	r := &Receiver{
		pc:  pc,
		log: log,
		mReceived: telemetry.Default.Counter("natpeek_heartbeats_received_total",
			"Heartbeat datagrams successfully decoded and recorded."),
		mMalformed: telemetry.Default.Counter("natpeek_heartbeats_malformed_total",
			"Datagrams on the heartbeat port that failed to decode."),
		gLastSeen: telemetry.Default.GaugeVec("natpeek_heartbeat_last_seen_seconds",
			"Receive-side unix timestamp of the last heartbeat, per router.", "router"),
	}
	go r.loop(recvNow)
	return r, nil
}

// Addr returns the bound address.
func (r *Receiver) Addr() net.Addr { return r.pc.LocalAddr() }

// BadDatagrams returns how many undecodable datagrams arrived.
func (r *Receiver) BadDatagrams() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bad
}

func (r *Receiver) loop(recvNow func() time.Time) {
	buf := make([]byte, 2048)
	for {
		n, _, err := r.pc.ReadFrom(buf)
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		beat, err := ParseBeat(buf[:n])
		if err != nil {
			r.mu.Lock()
			r.bad++
			r.mu.Unlock()
			r.mMalformed.Inc()
			continue
		}
		at := recvNow()
		r.log.Record(beat.RouterID, at)
		r.mReceived.Inc()
		r.gLastSeen.With(beat.RouterID).Set(float64(at.Unix()))
	}
}

// Close stops the receiver.
func (r *Receiver) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.pc.Close()
}

// Run is a maximal arithmetic sequence of heartbeats: Count beats
// starting at Start, Interval apart. A 6.5-month deployment produces tens
// of millions of beats; storing them as runs keeps the log compact while
// the gap analysis stays exact (see coverage).
type Run struct {
	Start    time.Time
	Interval time.Duration
	Count    int
}

// End returns the time of the run's last beat.
func (r Run) End() time.Time {
	if r.Count <= 1 {
		return r.Start
	}
	return r.Start.Add(time.Duration(r.Count-1) * r.Interval)
}

// Log stores heartbeat arrival times per router, run-length encoded. It
// is safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	runs map[string][]Run
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{runs: make(map[string][]Run)}
}

// Record appends an arrival for router id.
func (l *Log) Record(id string, at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Extend the last run when the arrival continues its cadence.
	rs := l.runs[id]
	if n := len(rs); n > 0 {
		last := &rs[n-1]
		switch {
		case last.Count == 1 && at.After(last.Start):
			last.Interval = at.Sub(last.Start)
			last.Count = 2
			return
		case last.Count > 1 && at.Sub(last.End()) == last.Interval:
			last.Count++
			return
		}
	}
	l.runs[id] = append(rs, Run{Start: at, Count: 1})
}

// RecordRun appends a whole run (the simulator's fast path).
func (l *Log) RecordRun(id string, r Run) {
	if r.Count <= 0 {
		return
	}
	if r.Count > 1 && r.Interval <= 0 {
		r.Interval = Interval
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.runs[id] = append(l.runs[id], r)
}

// RecordBulk appends many arrivals at once.
func (l *Log) RecordBulk(id string, ats []time.Time) {
	for _, at := range ats {
		l.Record(id, at)
	}
}

// Routers returns the IDs present in the log, sorted.
func (l *Log) Routers() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.runs))
	for id := range l.runs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Runs returns a copy of the stored runs for id, sorted by start.
func (l *Log) Runs(id string) []Run {
	l.mu.Lock()
	rs := append([]Run(nil), l.runs[id]...)
	l.mu.Unlock()
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start.Before(rs[j].Start) })
	return rs
}

// Beats returns a sorted copy of the arrivals for id, expanded from the
// runs. Use only where the beat count is known to be small (tests,
// single-home views); fleet-scale analysis should use Downtimes, which
// works on runs directly.
func (l *Log) Beats(id string) []time.Time {
	var ats []time.Time
	for _, r := range l.Runs(id) {
		for i := 0; i < r.Count; i++ {
			ats = append(ats, r.Start.Add(time.Duration(i)*r.Interval))
		}
	}
	sort.Slice(ats, func(i, j int) bool { return ats[i].Before(ats[j]) })
	return ats
}

// Count returns the number of beats recorded for id.
func (l *Log) Count(id string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, r := range l.runs[id] {
		n += r.Count
	}
	return n
}

// Downtime is one connectivity gap.
type Downtime struct {
	Start time.Time // last heartbeat before the gap (or window start)
	End   time.Time // first heartbeat after the gap (or window end)
}

// Duration returns the gap length.
func (d Downtime) Duration() time.Duration { return d.End.Sub(d.Start) }

// Downtimes extracts the gaps longer than threshold from the router's
// beats within [from, to). Leading and trailing silence against the
// window edges count as downtime too — a router that never reported
// during the window is one long downtime. The computation runs on the
// run-length encoding directly and is exactly equivalent to GapsIn over
// the expanded beats.
func (l *Log) Downtimes(id string, from, to time.Time, threshold time.Duration) []Downtime {
	if !to.After(from) {
		return nil
	}
	if threshold <= 0 {
		threshold = DefaultGapThreshold
	}
	// Convert each run to its beat-coverage span inside the window. Runs
	// whose internal spacing exceeds the threshold contribute per-beat
	// point spans instead.
	type span struct{ first, last time.Time }
	var spans []span
	for _, r := range l.Runs(id) {
		if r.Count > 1 && r.Interval > threshold {
			for i := 0; i < r.Count; i++ {
				b := r.Start.Add(time.Duration(i) * r.Interval)
				if !b.Before(from) && b.Before(to) {
					spans = append(spans, span{b, b})
				}
			}
			continue
		}
		first, last := r.Start, r.End()
		if r.Count > 1 && first.Before(from) {
			// First beat at or after `from`.
			k := (from.Sub(first) + r.Interval - 1) / r.Interval
			first = first.Add(k * r.Interval)
		}
		if r.Count > 1 && !last.Before(to) {
			// Last beat strictly before `to`.
			k := (last.Sub(to))/r.Interval + 1
			last = last.Add(-k * r.Interval)
		}
		if first.Before(from) || !first.Before(to) || last.Before(first) {
			continue
		}
		spans = append(spans, span{first, last})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].first.Before(spans[j].first) })
	// Tolerance-merge: adjacent spans within the threshold are one
	// covered stretch (no gap between beats ≤ threshold apart).
	var merged []span
	for _, s := range spans {
		if n := len(merged); n > 0 && s.first.Sub(merged[n-1].last) <= threshold {
			if s.last.After(merged[n-1].last) {
				merged[n-1].last = s.last
			}
			continue
		}
		merged = append(merged, s)
	}
	var out []Downtime
	prev := from
	for _, s := range merged {
		if s.first.Sub(prev) > threshold {
			out = append(out, Downtime{Start: prev, End: s.first})
		}
		if s.last.After(prev) {
			prev = s.last
		}
	}
	if to.Sub(prev) > threshold {
		out = append(out, Downtime{Start: prev, End: to})
	}
	return out
}

// GapsIn is the pure-function core of Downtimes, usable on any sorted (or
// unsorted — it sorts a copy) series of heartbeat timestamps.
func GapsIn(beats []time.Time, from, to time.Time, threshold time.Duration) []Downtime {
	if !to.After(from) {
		return nil
	}
	if threshold <= 0 {
		threshold = DefaultGapThreshold
	}
	in := make([]time.Time, 0, len(beats))
	for _, b := range beats {
		if !b.Before(from) && b.Before(to) {
			in = append(in, b)
		}
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Before(in[j]) })

	var out []Downtime
	prev := from
	for _, b := range in {
		if b.Sub(prev) > threshold {
			out = append(out, Downtime{Start: prev, End: b})
		}
		prev = b
	}
	if to.Sub(prev) > threshold {
		out = append(out, Downtime{Start: prev, End: to})
	}
	return out
}

// UptimeFraction returns the fraction of [from, to) not covered by
// downtime — the §4.2 "median US user has his router on 98.25% of time"
// statistic.
func (l *Log) UptimeFraction(id string, from, to time.Time, threshold time.Duration) float64 {
	if !to.After(from) {
		return 0
	}
	var down time.Duration
	for _, d := range l.Downtimes(id, from, to, threshold) {
		down += d.Duration()
	}
	return 1 - float64(down)/float64(to.Sub(from))
}

// DowntimesPerDay returns the router's average number of downtimes per
// day over the window — Fig. 3's x-axis.
func (l *Log) DowntimesPerDay(id string, from, to time.Time, threshold time.Duration) float64 {
	days := to.Sub(from).Hours() / 24
	if days <= 0 {
		return 0
	}
	return float64(len(l.Downtimes(id, from, to, threshold))) / days
}
