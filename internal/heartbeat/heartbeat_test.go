package heartbeat

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)

func TestBeatRoundTrip(t *testing.T) {
	b := Beat{RouterID: "gt-router-001", Seq: 42, SentAt: t0}
	got, err := ParseBeat(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.RouterID != b.RouterID || got.Seq != 42 || !got.SentAt.Equal(t0) {
		t.Fatalf("got %+v", got)
	}
}

func TestParseBeatRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{nil, {1, 2}, []byte("XXXX rest"), append(magic[:], 9)} {
		if _, err := ParseBeat(raw); err == nil {
			t.Fatalf("accepted %v", raw)
		}
	}
	// Truncated valid prefix.
	full := (&Beat{RouterID: "r", Seq: 1, SentAt: t0}).Marshal()
	for n := 0; n < len(full); n++ {
		if _, err := ParseBeat(full[:n]); err == nil {
			t.Fatalf("accepted truncation to %d", n)
		}
	}
}

func TestParseBeatNeverPanics(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		ParseBeat(raw)
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLongRouterIDTruncated(t *testing.T) {
	id := make([]byte, 300)
	for i := range id {
		id[i] = 'a'
	}
	b := Beat{RouterID: string(id), SentAt: t0}
	got, err := ParseBeat(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.RouterID) != 255 {
		t.Fatalf("id length %d", len(got.RouterID))
	}
}

func beatsEvery(from time.Time, interval time.Duration, n int) []time.Time {
	out := make([]time.Time, n)
	for i := range out {
		out[i] = from.Add(time.Duration(i) * interval)
	}
	return out
}

func TestNoGapsOnSteadyBeats(t *testing.T) {
	beats := beatsEvery(t0, Interval, 60*24) // one full day
	gaps := GapsIn(beats, t0, t0.Add(24*time.Hour), DefaultGapThreshold)
	if len(gaps) != 0 {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestSingleGapDetected(t *testing.T) {
	day := t0.Add(24 * time.Hour)
	beats := append(beatsEvery(t0, Interval, 60), // first hour
		beatsEvery(t0.Add(2*time.Hour), Interval, 60*22)...) // resumes at hour 2
	gaps := GapsIn(beats, t0, day, DefaultGapThreshold)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %d", len(gaps))
	}
	g := gaps[0]
	if !g.Start.Equal(t0.Add(59*time.Minute)) || !g.End.Equal(t0.Add(2*time.Hour)) {
		t.Fatalf("gap %v–%v", g.Start, g.End)
	}
	if g.Duration() != time.Hour+time.Minute {
		t.Fatalf("duration %v", g.Duration())
	}
}

func TestGapAtExactlyThresholdIgnored(t *testing.T) {
	// Paper: "lasts longer than ten minutes" — a gap of exactly the
	// threshold is not downtime.
	beats := []time.Time{t0, t0.Add(10 * time.Minute)}
	if gaps := GapsIn(beats, t0, t0.Add(11*time.Minute), DefaultGapThreshold); len(gaps) != 0 {
		t.Fatalf("10-minute gap flagged: %v", gaps)
	}
	beats = []time.Time{t0, t0.Add(10*time.Minute + time.Second)}
	if gaps := GapsIn(beats, t0, t0.Add(11*time.Minute), DefaultGapThreshold); len(gaps) != 1 {
		t.Fatal("10m1s gap missed")
	}
}

func TestLeadingAndTrailingSilence(t *testing.T) {
	end := t0.Add(3 * time.Hour)
	beats := beatsEvery(t0.Add(time.Hour), Interval, 60) // active only hour 1–2
	gaps := GapsIn(beats, t0, end, DefaultGapThreshold)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %d, want leading+trailing", len(gaps))
	}
	if !gaps[0].Start.Equal(t0) {
		t.Fatal("leading gap missing")
	}
	if !gaps[1].End.Equal(end) {
		t.Fatal("trailing gap missing")
	}
}

func TestSilentRouterIsOneLongDowntime(t *testing.T) {
	gaps := GapsIn(nil, t0, t0.Add(24*time.Hour), DefaultGapThreshold)
	if len(gaps) != 1 || gaps[0].Duration() != 24*time.Hour {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestBeatsOutsideWindowIgnored(t *testing.T) {
	beats := append(beatsEvery(t0.Add(-time.Hour), Interval, 60),
		beatsEvery(t0.Add(25*time.Hour), Interval, 60)...)
	gaps := GapsIn(beats, t0, t0.Add(24*time.Hour), DefaultGapThreshold)
	if len(gaps) != 1 {
		t.Fatalf("out-of-window beats leaked in: %v", gaps)
	}
}

func TestUnsortedInputHandled(t *testing.T) {
	beats := []time.Time{t0.Add(25 * time.Minute), t0, t0.Add(5 * time.Minute)}
	gaps := GapsIn(beats, t0, t0.Add(26*time.Minute), DefaultGapThreshold)
	if len(gaps) != 1 { // 5m→25m gap only
		t.Fatalf("gaps = %v", gaps)
	}
	if !gaps[0].Start.Equal(t0.Add(5 * time.Minute)) {
		t.Fatalf("gap start %v", gaps[0].Start)
	}
}

func TestEmptyWindow(t *testing.T) {
	if GapsIn([]time.Time{t0}, t0, t0, DefaultGapThreshold) != nil {
		t.Fatal("empty window produced gaps")
	}
}

func TestLogUptimeFraction(t *testing.T) {
	l := NewLog()
	// On for 12 h of a 24 h window.
	l.RecordBulk("r1", beatsEvery(t0, Interval, 60*12))
	got := l.UptimeFraction("r1", t0, t0.Add(24*time.Hour), DefaultGapThreshold)
	// Downtime = 24h − 11h59m ≈ 12h1m → uptime ≈ 0.4993
	if got < 0.49 || got > 0.51 {
		t.Fatalf("uptime fraction = %v", got)
	}
}

func TestLogDowntimesPerDay(t *testing.T) {
	l := NewLog()
	var beats []time.Time
	// 10 days; a 30-minute outage every day at noon.
	for d := 0; d < 10; d++ {
		day := t0.Add(time.Duration(d) * 24 * time.Hour)
		beats = append(beats, beatsEvery(day, Interval, 12*60)...)
		beats = append(beats, beatsEvery(day.Add(12*time.Hour+30*time.Minute), Interval, 11*60+30)...)
	}
	l.RecordBulk("r", beats)
	got := l.DowntimesPerDay("r", t0, t0.Add(10*24*time.Hour), DefaultGapThreshold)
	if got < 0.9 || got > 1.1 {
		t.Fatalf("downtimes/day = %v, want ≈1", got)
	}
}

func TestLogRoutersSorted(t *testing.T) {
	l := NewLog()
	l.Record("zz", t0)
	l.Record("aa", t0)
	ids := l.Routers()
	if len(ids) != 2 || ids[0] != "aa" {
		t.Fatalf("routers = %v", ids)
	}
	if l.Count("zz") != 1 || l.Count("missing") != 0 {
		t.Fatal("counts wrong")
	}
}

func TestSenderReceiverOverLoopback(t *testing.T) {
	log := NewLog()
	rx, err := NewReceiver("127.0.0.1:0", log, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	tx, err := NewSender("router-xyz", rx.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	for i := 0; i < 5; i++ {
		if err := tx.Send(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for log.Count("router-xyz") < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := log.Count("router-xyz"); got != 5 {
		t.Fatalf("received %d/5 beats", got)
	}
}

func TestReceiverCountsBadDatagrams(t *testing.T) {
	log := NewLog()
	rx, err := NewReceiver("127.0.0.1:0", log, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	tx, err := NewSender("r", rx.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	// Send raw garbage on the same socket path.
	if _, err := tx.conn.Write([]byte("not a heartbeat")); err != nil {
		t.Fatal(err)
	}
	tx.Send(time.Now())
	deadline := time.Now().Add(5 * time.Second)
	for log.Count("r") < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rx.BadDatagrams() != 1 {
		t.Fatalf("bad datagrams = %d", rx.BadDatagrams())
	}
}

func TestGapsInvariantNoOverlapAndInWindow(t *testing.T) {
	if err := quick.Check(func(offsets []uint16) bool {
		from := t0
		to := t0.Add(48 * time.Hour)
		beats := make([]time.Time, 0, len(offsets))
		for _, o := range offsets {
			beats = append(beats, t0.Add(time.Duration(o)*time.Minute))
		}
		gaps := GapsIn(beats, from, to, DefaultGapThreshold)
		prevEnd := from
		for _, g := range gaps {
			if g.Start.Before(prevEnd) || g.End.After(to) || !g.End.After(g.Start) {
				return false
			}
			if g.Duration() <= DefaultGapThreshold {
				return false
			}
			prevEnd = g.End
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEncodingMatchesExpandedGaps(t *testing.T) {
	// Property: Downtimes over the run-length encoding must equal GapsIn
	// over the expanded beats, for arbitrary run layouts.
	if err := quick.Check(func(starts []uint16, counts []uint8) bool {
		l := NewLog()
		var beats []time.Time
		for i, s := range starts {
			n := 1
			if i < len(counts) {
				n = int(counts[i]%30) + 1
			}
			start := t0.Add(time.Duration(s%2880) * time.Minute)
			l.RecordRun("r", Run{Start: start, Interval: Interval, Count: n})
			for k := 0; k < n; k++ {
				beats = append(beats, start.Add(time.Duration(k)*Interval))
			}
		}
		from, to := t0, t0.Add(72*time.Hour)
		got := l.Downtimes("r", from, to, DefaultGapThreshold)
		want := GapsIn(beats, from, to, DefaultGapThreshold)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !got[i].Start.Equal(want[i].Start) || !got[i].End.Equal(want[i].End) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCompressesSteadyCadence(t *testing.T) {
	l := NewLog()
	for i := 0; i < 1000; i++ {
		l.Record("r", t0.Add(time.Duration(i)*Interval))
	}
	if runs := l.Runs("r"); len(runs) != 1 {
		t.Fatalf("1000 steady beats stored as %d runs", len(runs))
	}
	if l.Count("r") != 1000 {
		t.Fatalf("count = %d", l.Count("r"))
	}
}

func TestRecordRunIgnoresEmpty(t *testing.T) {
	l := NewLog()
	l.RecordRun("r", Run{Start: t0, Count: 0})
	if l.Count("r") != 0 {
		t.Fatal("empty run recorded")
	}
}

func TestRunWithSparseIntervalSplits(t *testing.T) {
	// Beats 30 min apart: every gap exceeds the 10-min threshold, so a
	// 4-beat run has 3 internal gaps plus window edges.
	l := NewLog()
	l.RecordRun("r", Run{Start: t0, Interval: 30 * time.Minute, Count: 4})
	gaps := l.Downtimes("r", t0, t0.Add(91*time.Minute), DefaultGapThreshold)
	if len(gaps) != 3 {
		t.Fatalf("gaps = %d, want 3", len(gaps))
	}
}

// BenchmarkDowntimesSixMonthLog measures gap analysis over a realistic
// router history (6.5 months of minute heartbeats with ~200 outages),
// exercising the run-length encoding the fleet store relies on.
func BenchmarkDowntimesSixMonthLog(b *testing.B) {
	l := NewLog()
	from := t0
	to := t0.Add(197 * 24 * time.Hour)
	cur := from
	for i := 0; cur.Before(to); i++ {
		on := time.Duration(20+i%30) * time.Hour
		off := time.Duration(10+i%50) * time.Minute
		end := cur.Add(on)
		if end.After(to) {
			end = to
		}
		l.RecordRun("r", Run{Start: cur, Interval: Interval, Count: int(end.Sub(cur) / Interval)})
		cur = end.Add(off)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Downtimes("r", from, to, DefaultGapThreshold)
	}
}
