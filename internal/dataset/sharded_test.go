package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"natpeek/internal/heartbeat"
	"natpeek/internal/mac"
	"natpeek/internal/rng"
)

var shardT0 = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

// applyRandomRow appends one deterministic pseudo-random row for router
// id to st; kind selection and row contents are pure functions of r.
func applyRandomRow(st *Store, id string, i int, r *rng.Stream) {
	switch r.Intn(7) {
	case 0:
		st.Uptime = append(st.Uptime, UptimeReport{
			RouterID: id, ReportedAt: shardT0.Add(time.Duration(i) * time.Minute),
			Uptime: time.Duration(r.Intn(1e6)) * time.Second,
		})
	case 1:
		st.Capacity = append(st.Capacity, CapacityMeasure{
			RouterID: id, MeasuredAt: shardT0.Add(time.Duration(i) * time.Minute),
			UpBps: float64(r.Intn(1e7)), DownBps: float64(r.Intn(1e8)),
		})
	case 2:
		st.Counts = append(st.Counts, DeviceCount{
			RouterID: id, At: shardT0.Add(time.Duration(i) * time.Hour),
			Wired: r.Intn(4), W24: r.Intn(8), W5: r.Intn(5),
		})
	case 3:
		st.Sightings = append(st.Sightings, DeviceSighting{
			RouterID: id, At: shardT0.Add(time.Duration(i) * time.Hour),
			Device: mac.FromOUI(0x001CB3, uint32(r.Intn(1<<20))), Kind: ConnKind(r.Intn(3)),
		})
	case 4:
		st.WiFi = append(st.WiFi, WiFiScan{
			RouterID: id, At: shardT0.Add(time.Duration(i) * 10 * time.Minute),
			Band: "2.4GHz", Channel: 1 + r.Intn(11), VisibleAPs: r.Intn(20), Clients: r.Intn(6),
		})
	case 5:
		st.Flows = append(st.Flows, FlowRecord{
			RouterID: id, Device: mac.FromOUI(0x001CB3, uint32(r.Intn(1<<20))),
			Domain: "anon-0123456789abcdef", Proto: "tcp",
			First: shardT0.Add(time.Duration(i) * time.Minute), Last: shardT0.Add(time.Duration(i+5) * time.Minute),
			UpBytes: int64(r.Intn(1e6)), DownBytes: int64(r.Intn(1e7)),
			UpPkts: int64(r.Intn(1e3)), DownPkts: int64(r.Intn(1e4)), Conns: 1 + int64(r.Intn(9)),
		})
	default:
		st.Throughput = append(st.Throughput, ThroughputSample{
			RouterID: id, Minute: shardT0.Add(time.Duration(i) * time.Minute), Dir: "down",
			PeakBps: float64(r.Intn(1e8)), TotalBytes: int64(r.Intn(1e7)),
		})
	}
}

// TestShardedMatchesSeedStoreCSV is the behavior-preservation regression
// for the sharding refactor: the same serial append sequence, run once
// through a plain (seed) Store and once through the striped store, must
// produce byte-identical CSV files — same rows, same order, same
// digests.
func TestShardedMatchesSeedStoreCSV(t *testing.T) {
	seed := NewStore()
	striped := NewSharded(8)

	r := rng.New(42)
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("bismark-%03d", r.Intn(40))
		// Child derivation is pure, so both stores see the identical row.
		seed.RouterCountry[id] = "US"
		applyRandomRow(seed, id, i, r.Child("row").ChildN("i", i))
		applied := striped.Apply(id, fmt.Sprintf("k:%s:%d", id, i), func(st *Store) {
			st.RouterCountry[id] = "US"
			applyRandomRow(st, id, i, r.Child("row").ChildN("i", i))
		})
		if !applied {
			t.Fatalf("fresh key %d reported duplicate", i)
		}
	}

	// Identical heartbeat state on both sides.
	seed.Heartbeats.RecordRun("bismark-000", heartbeat.Run{Start: shardT0, Interval: time.Minute, Count: 500})
	striped.Heartbeats.RecordRun("bismark-000", heartbeat.Run{Start: shardT0, Interval: time.Minute, Count: 500})

	dirSeed, dirStriped := t.TempDir(), t.TempDir()
	if err := seed.Save(dirSeed); err != nil {
		t.Fatal(err)
	}
	if err := striped.Save(dirStriped); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		FileRoster, FileHeartbeats, FileUptime, FileCapacity, FileCounts,
		FileSightings, FileWiFi, FileFlows, FileThroughput,
	} {
		a := mustRead(t, filepath.Join(dirSeed, name))
		b := mustRead(t, filepath.Join(dirStriped, name))
		da, db := sha256.Sum256(a), sha256.Sum256(b)
		if da != db {
			t.Errorf("%s differs: seed %s != striped %s (rows or order changed)",
				name, hex.EncodeToString(da[:8]), hex.EncodeToString(db[:8]))
		}
	}

	// The merged view must equal the seed store field-for-field too.
	m := striped.Merge()
	if !reflect.DeepEqual(seed.Uptime, m.Uptime) || !reflect.DeepEqual(seed.Flows, m.Flows) ||
		!reflect.DeepEqual(seed.Sightings, m.Sightings) || !reflect.DeepEqual(seed.Throughput, m.Throughput) {
		t.Error("merged store differs from seed store")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedConcurrentStress hammers the striped store from many
// goroutines — fresh appends, key replays, and Save/Merge/RowCounts
// running mid-flight — and then checks exact row conservation: every
// distinct key's row lands exactly once. Run under -race this is the
// striping's data-race gate.
func TestShardedConcurrentStress(t *testing.T) {
	const (
		writers  = 16
		routers  = 64
		perGoro  = 400
		replayEv = 5 // every 5th apply replays the previous key
	)
	s := NewSharded(0)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				id := fmt.Sprintf("r-%03d", (w*perGoro+i)%routers)
				key := fmt.Sprintf("%s:w%d:%d", id, w, i)
				apply := func(st *Store) {
					st.RouterCountry[id] = "US"
					st.Uptime = append(st.Uptime, UptimeReport{
						RouterID: id, ReportedAt: shardT0,
						Uptime: time.Duration(w*perGoro+i) * time.Second,
					})
				}
				if !s.Apply(id, key, apply) {
					t.Errorf("fresh key %s deduped", key)
					return
				}
				if i%replayEv == 0 {
					if s.Apply(id, key, apply) {
						t.Errorf("replayed key %s applied twice", key)
						return
					}
				}
			}
		}(w)
	}
	// Concurrent readers: snapshots and saves must not race the writers.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		dir := t.TempDir()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.RowCounts()
			m := s.Merge()
			if i%10 == 0 {
				if err := m.Save(dir); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	m := s.Merge()
	const want = writers * perGoro
	if len(m.Uptime) != want {
		t.Fatalf("uptime rows = %d, want exactly %d", len(m.Uptime), want)
	}
	seen := make(map[time.Duration]bool, want)
	for _, r := range m.Uptime {
		if seen[r.Uptime] {
			t.Fatalf("row %v merged twice", r.Uptime)
		}
		seen[r.Uptime] = true
	}
	if got := len(m.RouterCountry); got != routers {
		t.Fatalf("roster = %d, want %d", got, routers)
	}
	if rc := s.RowCounts(); rc.Uptime != want || rc.Routers != routers {
		t.Fatalf("RowCounts = %+v", rc)
	}
	if s.DedupeLen() != want {
		t.Fatalf("dedupe index = %d keys, want %d", s.DedupeLen(), want)
	}
}

// TestShardedMergeOrderSequential pins the order contract explicitly: a
// serial append sequence merges back in exactly the order it was
// applied, across routers that land on different shards.
func TestShardedMergeOrderSequential(t *testing.T) {
	s := NewSharded(4)
	const n = 200
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("router-%d", i%13)
		i := i
		s.Apply(id, fmt.Sprintf("k%d", i), func(st *Store) {
			st.Uptime = append(st.Uptime, UptimeReport{
				RouterID: id, ReportedAt: shardT0, Uptime: time.Duration(i) * time.Second,
			})
		})
	}
	m := s.Merge()
	if len(m.Uptime) != n {
		t.Fatalf("rows = %d", len(m.Uptime))
	}
	for i, r := range m.Uptime {
		if r.Uptime != time.Duration(i)*time.Second {
			t.Fatalf("row %d out of order: %v", i, r.Uptime)
		}
	}
}

// TestShardedLoadRoundTrip: Save (concurrent fan-out) then Load
// (concurrent fan-in) must reproduce the rows.
func TestShardedLoadRoundTrip(t *testing.T) {
	s := NewSharded(0)
	r := rng.New(7)
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("rt-%02d", i%9)
		s.Apply(id, fmt.Sprintf("key-%d", i), func(st *Store) {
			st.RouterCountry[id] = "IN"
			applyRandomRow(st, id, i, r.ChildN("row", i))
		})
	}
	s.Heartbeats.RecordRun("rt-00", heartbeat.Run{Start: shardT0, Interval: time.Minute, Count: 60})
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Merge()
	if len(got.Uptime) != len(want.Uptime) || len(got.Flows) != len(want.Flows) ||
		len(got.Sightings) != len(want.Sightings) || len(got.WiFi) != len(want.WiFi) ||
		len(got.Counts) != len(want.Counts) || len(got.Capacity) != len(want.Capacity) ||
		len(got.Throughput) != len(want.Throughput) {
		t.Fatalf("row counts changed across save/load")
	}
	if got.Heartbeats.Count("rt-00") != 60 {
		t.Fatalf("heartbeats = %d", got.Heartbeats.Count("rt-00"))
	}
	if !reflect.DeepEqual(got.RouterCountry, want.RouterCountry) {
		t.Fatalf("roster changed across save/load")
	}
}

// TestAdoptDedupe pins the dedupe handoff the segment store relies on at
// memtable rotation: after adoption, the successor rejects exactly the
// keys the sealed store had applied, including across FIFO eviction
// order, and fresh keys still apply.
func TestAdoptDedupe(t *testing.T) {
	old := NewSharded(4)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("bismark-%03d", i%9)
		if !old.Apply(id, fmt.Sprintf("k:%s:%d", id, i), func(st *Store) {
			st.Uptime = append(st.Uptime, UptimeReport{RouterID: id, ReportedAt: shardT0})
		}) {
			t.Fatalf("fresh key %d reported duplicate", i)
		}
	}

	fresh := NewSharded(4)
	fresh.AdoptDedupe(old)
	if got, want := fresh.DedupeLen(), old.DedupeLen(); got != want {
		t.Fatalf("adopted %d keys, want %d", got, want)
	}
	// Every replay must be rejected without touching the rows.
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("bismark-%03d", i%9)
		if fresh.Apply(id, fmt.Sprintf("k:%s:%d", id, i), func(st *Store) {
			st.Uptime = append(st.Uptime, UptimeReport{RouterID: id, ReportedAt: shardT0})
		}) {
			t.Fatalf("replayed key %d applied after adoption", i)
		}
	}
	if rc := fresh.RowCounts(); rc.Uptime != 0 {
		t.Fatalf("replays appended %d rows", rc.Uptime)
	}
	// New keys still apply.
	if !fresh.Apply("bismark-000", "k:new", func(st *Store) {}) {
		t.Fatal("fresh key rejected")
	}

	// Keys() preserves FIFO order.
	var a AppliedIndex
	for _, k := range []string{"a", "b", "c"} {
		a.Mark(k)
	}
	if got := a.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Keys() = %v, want [a b c]", got)
	}
}

// TestShardedSaveStreamsWithoutMerge documents the streaming-save
// contract on an empty and a tiny store (the byte-identity against the
// seed store is TestShardedMatchesSeedStoreCSV).
func TestShardedSaveStreamsWithoutMerge(t *testing.T) {
	s := NewSharded(2)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	ld, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ld.Uptime)+len(ld.Flows) != 0 {
		t.Fatal("empty save loaded rows")
	}
}
