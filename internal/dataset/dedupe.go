// Idempotency bookkeeping for the collection pipeline. The upload path
// is at-least-once (the gateway's spool redelivers until acknowledged),
// so the store remembers which idempotency keys it has already applied
// and the collector skips replays. The index lives with the data it
// guards: a collector restart that reuses the store keeps its dedupe
// state, so retries that straddle the restart still apply exactly once.
package dataset

// appliedCap bounds the dedupe index. Keys are evicted FIFO, so the
// window covers the most recent appliedCap uploads — far longer than any
// client's retry horizon.
const appliedCap = 1 << 20

// AppliedIndex is a bounded set of idempotency keys with FIFO eviction.
type AppliedIndex struct {
	seen  map[string]bool
	order []string
	head  int
}

// Mark records key and reports whether it was new (i.e. the caller
// should apply the payload). The empty key is always new: unkeyed
// uploads opt out of deduplication.
func (a *AppliedIndex) Mark(key string) bool {
	if key == "" {
		return true
	}
	if a.seen == nil {
		a.seen = make(map[string]bool)
	}
	if a.seen[key] {
		return false
	}
	if len(a.seen) >= appliedCap {
		old := a.order[a.head]
		a.order[a.head] = ""
		a.head++
		delete(a.seen, old)
		if a.head > appliedCap { // amortized compaction of the evicted prefix
			a.order = append([]string(nil), a.order[a.head:]...)
			a.head = 0
		}
	}
	a.seen[key] = true
	a.order = append(a.order, key)
	return true
}

// Len returns the number of remembered keys.
func (a *AppliedIndex) Len() int { return len(a.seen) }

// Keys returns the remembered keys in insertion (FIFO) order, oldest
// first. Copying them in that order into a fresh index reproduces this
// index's eviction window exactly — that is how the segment store hands
// dedupe state from a sealed memtable to its successor.
func (a *AppliedIndex) Keys() []string {
	if len(a.seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(a.seen))
	for _, k := range a.order[a.head:] {
		if k != "" && a.seen[k] {
			out = append(out, k)
		}
	}
	return out
}

// MarkApplied is Store's entry point to the dedupe index; callers must
// hold whatever lock serializes store mutation (the collector's).
func (s *Store) MarkApplied(key string) bool { return s.Applied.Mark(key) }
