package dataset

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// The store-append benchmarks are the heart of the scale trajectory
// (BENCH_*.json). The measured unit is one upload apply exactly as the
// collector performs it: check the idempotency key, then append the
// upload's rows, atomically. mode=single-lock is the seed architecture —
// one mutex in front of a plain Store and its AppliedIndex, which every
// upload serialized through — and mode=sharded is the striped
// replacement. make bench records both at 1/2/4/8 goroutines; the
// acceptance gate is sharded ≥ 2x single-lock throughput at 8.
//
// Both variants cap slice growth the same way (reset at benchCap rows)
// so arbitrarily large b.N measures applies, not allocator churn.

const (
	benchCap          = 1 << 13
	benchRowsPerApply = 4       // a realistic upload carries a handful of rows
	benchRoutersPerG  = 64      // each worker cycles its own router pool
	benchBurst        = 8       // consecutive applies per router (spool batches are per-router)
	benchWarmup       = 1 << 16 // applies before the clock starts
)

var benchRow = UptimeReport{
	RouterID:   "bench-router",
	ReportedAt: time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC),
	Uptime:     42 * time.Second,
}

// runAppliers spreads b.N upload applies across g goroutines. Each worker
// owns a disjoint router pool (the fleet case: contention comes from the
// store, not from row identity) and stamps every apply with a fresh
// idempotency key, built with one small allocation per op — the same cost
// an HTTP header string carries in the real ingest path.
//
// An untimed warmup pass runs first so both modes are measured at steady
// state: with the growth cap in applyUpload, a fresh store spends its
// first tens of thousands of applies growing (and memmoving) slices, and
// the striped store has NumShards times as many slices to fill. Without
// the warmup that allocation phase, not the apply path, dominates short
// benchtime runs.
func runAppliers(b *testing.B, g int, applyOne func(worker int, router, key string)) {
	b.Helper()
	pass := func(per int, keyspace uint64) {
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				routers := make([]string, benchRoutersPerG)
				for i := range routers {
					routers[i] = fmt.Sprintf("bench-%03d-%03d", w, i)
				}
				buf := make([]byte, 0, 64)
				for i := 0; i < per; i++ {
					router := routers[(i/benchBurst)%benchRoutersPerG]
					buf = append(buf[:0], router...)
					buf = append(buf, ':')
					buf = appendUint(buf, keyspace+uint64(w))
					buf = append(buf, ':')
					buf = appendUint(buf, uint64(i))
					applyOne(w, router, string(buf))
				}
			}(w)
		}
		wg.Wait()
	}
	pass(benchWarmup/g, 1<<32) // warmup keys can never collide with timed keys
	b.ResetTimer()
	pass(b.N/g, 0)
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// applyUpload appends one upload's worth of rows, with the same growth
// cap in both modes.
func applyUpload(st *Store, router string) {
	if len(st.Uptime) >= benchCap {
		st.Uptime = st.Uptime[:0]
	}
	row := benchRow
	row.RouterID = router
	for i := 0; i < benchRowsPerApply; i++ {
		st.Uptime = append(st.Uptime, row)
	}
}

func BenchmarkStoreAppend(b *testing.B) {
	goroutines := []int{1, 2, 4, 8}

	for _, g := range goroutines {
		b.Run(fmt.Sprintf("mode=single-lock/goroutines=%d", g), func(b *testing.B) {
			var mu sync.Mutex
			st := NewStore()
			b.ReportAllocs()
			runAppliers(b, g, func(w int, router, key string) {
				mu.Lock()
				if st.Applied.Mark(key) {
					applyUpload(st, router)
				}
				mu.Unlock()
			})
			reportUploadsPerSec(b)
		})
	}
	for _, g := range goroutines {
		b.Run(fmt.Sprintf("mode=sharded/goroutines=%d", g), func(b *testing.B) {
			s := NewSharded(0)
			b.ReportAllocs()
			runAppliers(b, g, func(w int, router, key string) {
				s.Apply(router, key, func(st *Store) {
					applyUpload(st, router)
				})
			})
			reportUploadsPerSec(b)
		})
	}
}

func reportUploadsPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "uploads/s")
}

// BenchmarkDedupeMark isolates the bounded idempotency index.
func BenchmarkDedupeMark(b *testing.B) {
	var idx AppliedIndex
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("router:nonce:/v1/uptime:%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Mark(keys[i&(len(keys)-1)])
	}
}

func benchRouterIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("bench-router-%03d", i)
	}
	return out
}

// benchPopulated builds a sharded store with rows across every data set,
// shared by the save/merge benchmarks.
var (
	benchPopOnce sync.Once
	benchPop     *Sharded
)

func populatedSharded() *Sharded {
	benchPopOnce.Do(func() {
		s := NewSharded(0)
		t0 := benchRow.ReportedAt
		for r := 0; r < 200; r++ {
			id := fmt.Sprintf("save-router-%03d", r)
			s.Append(id, func(st *Store) {
				st.RouterCountry[id] = "US"
				for i := 0; i < 50; i++ {
					st.Uptime = append(st.Uptime, UptimeReport{RouterID: id, ReportedAt: t0, Uptime: time.Duration(i) * time.Second})
					st.Throughput = append(st.Throughput, ThroughputSample{RouterID: id, Minute: t0, Dir: "up", PeakBps: 1e6, TotalBytes: 1 << 20})
					st.Flows = append(st.Flows, FlowRecord{RouterID: id, Proto: "tcp", First: t0, Last: t0, UpBytes: 1000, DownBytes: 9000, UpPkts: 10, DownPkts: 70, Conns: 1})
				}
			})
		}
		benchPop = s
	})
	return benchPop
}

func BenchmarkStoreSave(b *testing.B) {
	s := populatedSharded()
	m := s.Merge()
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Save(dir); err != nil {
			b.Fatal(err)
		}
	}
	rows := len(m.Uptime) + len(m.Throughput) + len(m.Flows)
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkShardedMerge(b *testing.B) {
	s := populatedSharded()
	b.ReportAllocs()
	b.ResetTimer()
	var m *Store
	for i := 0; i < b.N; i++ {
		m = s.Merge()
	}
	rows := len(m.Uptime) + len(m.Throughput) + len(m.Flows)
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
