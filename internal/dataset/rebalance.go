// Planned ownership transfer: when the cluster resizes, a node must
// hand a router's full row set — not just its journaled tail — to the
// router's new owner. The store side of that hand-off lives here: a
// consistent scan of everything a set of routers owns, and an atomic
// extract that removes those rows while *retaining* their idempotency
// keys, so a client retry that arrives after the move still dedupes at
// the old home instead of resurrecting a row that now lives elsewhere.
package dataset

import "strings"

// RouterKey pairs an idempotency key with the router whose rows it
// guarded. The router is recovered from the key's "<router>:..." prefix
// (the convention every keyed client follows), so the set can be
// re-seeded at a destination with the same stripe routing.
type RouterKey struct {
	Router string
	Key    string
}

// KeyRouter extracts the router prefix of an idempotency key
// ("<router>:..."). Keys without a prefix belong to the unattributed
// router "".
func KeyRouter(key string) string {
	if i := strings.IndexByte(key, ':'); i > 0 {
		return key[:i]
	}
	return ""
}

// RebalanceStore is the store surface the cluster's transfer engine
// needs on top of plain ingestion. Both IngestStore implementations
// (*Sharded and the segment store) provide it.
//
// ScanRouters returns a consistent snapshot of the rows, roster entries,
// and remembered idempotency keys belonging to routers selected by
// match, without modifying the store. ExtractRouters additionally
// removes the matched rows and roster entries — atomically with the
// snapshot, so no concurrently-arriving row is ever silently dropped
// between scan and eviction. Extracted dedupe keys are returned but NOT
// forgotten: the source keeps rejecting replays of moved uploads, which
// is what keeps exactly-once intact while a retry horizon straddles the
// move. Heartbeat logs are not part of either snapshot (in cluster mode
// they live at the front tier).
type RebalanceStore interface {
	IngestStore
	ScanRouters(match func(router string) bool) (*Store, []RouterKey)
	ExtractRouters(match func(router string) bool) (*Store, []RouterKey)
}

var _ RebalanceStore = (*Sharded)(nil)

// SplitRouters partitions a plain Store's rows and roster by router:
// rows whose RouterID is selected by match land in hit, everything else
// in rest, with per-slice order preserved on both sides. Neither output
// carries a heartbeat log or dedupe state. The segment store uses this
// to filter decoded segment files during an extract.
func SplitRouters(st *Store, match func(string) bool) (hit, rest *Store) {
	hit = &Store{RouterCountry: make(map[string]string)}
	rest = &Store{RouterCountry: make(map[string]string)}
	for id, cc := range st.RouterCountry {
		if match(id) {
			hit.RouterCountry[id] = cc
		} else {
			rest.RouterCountry[id] = cc
		}
	}
	hit.Uptime, rest.Uptime = splitRows(st.Uptime, func(r UptimeReport) string { return r.RouterID }, match)
	hit.Capacity, rest.Capacity = splitRows(st.Capacity, func(r CapacityMeasure) string { return r.RouterID }, match)
	hit.Counts, rest.Counts = splitRows(st.Counts, func(r DeviceCount) string { return r.RouterID }, match)
	hit.Sightings, rest.Sightings = splitRows(st.Sightings, func(r DeviceSighting) string { return r.RouterID }, match)
	hit.WiFi, rest.WiFi = splitRows(st.WiFi, func(r WiFiScan) string { return r.RouterID }, match)
	hit.Flows, rest.Flows = splitRows(st.Flows, func(r FlowRecord) string { return r.RouterID }, match)
	hit.Throughput, rest.Throughput = splitRows(st.Throughput, func(r ThroughputSample) string { return r.RouterID }, match)
	return hit, rest
}

func splitRows[T any](rows []T, router func(T) string, match func(string) bool) (hit, rest []T) {
	for _, r := range rows {
		if match(router(r)) {
			hit = append(hit, r)
		} else {
			rest = append(rest, r)
		}
	}
	return hit, rest
}

// ScanRouters implements RebalanceStore: a consistent (all stripes
// locked) snapshot of the matched routers' rows in global arrival
// order, their roster entries, and their remembered idempotency keys.
func (s *Sharded) ScanRouters(match func(string) bool) (*Store, []RouterKey) {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	moved := &Store{RouterCountry: make(map[string]string)}
	s.collectMatchedLocked(moved, match)
	return moved, s.matchedKeysLocked(match)
}

// ExtractRouters implements RebalanceStore: ScanRouters plus removal of
// the matched rows and roster entries under the same lock acquisition.
// Dedupe keys stay in the index (see RebalanceStore). Each stripe is
// rebuilt seg-by-seg so the surviving rows keep their arrival-order
// segment stamps — a later Merge interleaves them exactly as if the
// moved rows had never arrived.
func (s *Sharded) ExtractRouters(match func(string) bool) (*Store, []RouterKey) {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	moved := &Store{RouterCountry: make(map[string]string)}
	s.collectMatchedLocked(moved, match)
	keys := s.matchedKeysLocked(match)
	for _, sh := range s.shards {
		for id := range sh.store.RouterCountry {
			if match(id) {
				delete(sh.store.RouterCountry, id)
			}
		}
		extractShardRows(sh, match)
	}
	return moved, keys
}

// MatchedKeys returns the remembered idempotency keys whose router
// prefix is selected by match, without touching any rows. The segment
// store serves its key scans from the live memtable's index (which has
// adopted every predecessor generation's keys) through this.
func (s *Sharded) MatchedKeys(match func(string) bool) []RouterKey {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	return s.matchedKeysLocked(match)
}

// collectMatchedLocked appends every matched row into out in global
// arrival order, and copies matched roster entries. Caller holds all
// stripe locks.
func (s *Sharded) collectMatchedLocked(out *Store, match func(string) bool) {
	nsegs := 0
	for _, sh := range s.shards {
		nsegs += len(sh.segs)
		for id, cc := range sh.store.RouterCountry {
			if match(id) {
				out.RouterCountry[id] = cc
			}
		}
	}
	for _, r := range s.orderedRefs(nsegs) {
		st, seg := r.st, r.seg
		switch seg.kind {
		case kindUptime:
			for _, row := range st.Uptime[seg.off : seg.off+seg.n] {
				if match(row.RouterID) {
					out.Uptime = append(out.Uptime, row)
				}
			}
		case kindCapacity:
			for _, row := range st.Capacity[seg.off : seg.off+seg.n] {
				if match(row.RouterID) {
					out.Capacity = append(out.Capacity, row)
				}
			}
		case kindCounts:
			for _, row := range st.Counts[seg.off : seg.off+seg.n] {
				if match(row.RouterID) {
					out.Counts = append(out.Counts, row)
				}
			}
		case kindSightings:
			for _, row := range st.Sightings[seg.off : seg.off+seg.n] {
				if match(row.RouterID) {
					out.Sightings = append(out.Sightings, row)
				}
			}
		case kindWiFi:
			for _, row := range st.WiFi[seg.off : seg.off+seg.n] {
				if match(row.RouterID) {
					out.WiFi = append(out.WiFi, row)
				}
			}
		case kindFlows:
			for _, row := range st.Flows[seg.off : seg.off+seg.n] {
				if match(row.RouterID) {
					out.Flows = append(out.Flows, row)
				}
			}
		case kindThroughput:
			for _, row := range st.Throughput[seg.off : seg.off+seg.n] {
				if match(row.RouterID) {
					out.Throughput = append(out.Throughput, row)
				}
			}
		}
	}
}

// matchedKeysLocked copies out the remembered idempotency keys whose
// router prefix matches. Caller holds all stripe locks. The seen guard
// flattens duplicates: adopted dedupe state (segment-store memtable
// handoff) can re-mark a key in a different stripe than the one its
// router hashes to.
func (s *Sharded) matchedKeysLocked(match func(string) bool) []RouterKey {
	var out []RouterKey
	seen := make(map[string]bool)
	for _, sh := range s.shards {
		for _, k := range sh.applied.Keys() {
			r := KeyRouter(k)
			if match(r) && !seen[k] {
				seen[k] = true
				out = append(out, RouterKey{Router: r, Key: k})
			}
		}
	}
	return out
}

// extractShardRows rebuilds one stripe's slices and segment log without
// the matched rows. Surviving rows keep their segment's sequence stamp;
// offsets re-base onto the rebuilt slices. Segments left empty vanish.
// Caller holds the stripe lock.
func extractShardRows(sh *shard, match func(string) bool) {
	keep := func(router string) bool { return !match(router) }
	ns := &Store{RouterCountry: sh.store.RouterCountry}
	segs := make([]segment, 0, len(sh.segs))
	for _, seg := range sh.segs {
		var off, end int
		st := sh.store
		switch seg.kind {
		case kindUptime:
			off = len(ns.Uptime)
			for _, row := range st.Uptime[seg.off : seg.off+seg.n] {
				if keep(row.RouterID) {
					ns.Uptime = append(ns.Uptime, row)
				}
			}
			end = len(ns.Uptime)
		case kindCapacity:
			off = len(ns.Capacity)
			for _, row := range st.Capacity[seg.off : seg.off+seg.n] {
				if keep(row.RouterID) {
					ns.Capacity = append(ns.Capacity, row)
				}
			}
			end = len(ns.Capacity)
		case kindCounts:
			off = len(ns.Counts)
			for _, row := range st.Counts[seg.off : seg.off+seg.n] {
				if keep(row.RouterID) {
					ns.Counts = append(ns.Counts, row)
				}
			}
			end = len(ns.Counts)
		case kindSightings:
			off = len(ns.Sightings)
			for _, row := range st.Sightings[seg.off : seg.off+seg.n] {
				if keep(row.RouterID) {
					ns.Sightings = append(ns.Sightings, row)
				}
			}
			end = len(ns.Sightings)
		case kindWiFi:
			off = len(ns.WiFi)
			for _, row := range st.WiFi[seg.off : seg.off+seg.n] {
				if keep(row.RouterID) {
					ns.WiFi = append(ns.WiFi, row)
				}
			}
			end = len(ns.WiFi)
		case kindFlows:
			off = len(ns.Flows)
			for _, row := range st.Flows[seg.off : seg.off+seg.n] {
				if keep(row.RouterID) {
					ns.Flows = append(ns.Flows, row)
				}
			}
			end = len(ns.Flows)
		case kindThroughput:
			off = len(ns.Throughput)
			for _, row := range st.Throughput[seg.off : seg.off+seg.n] {
				if keep(row.RouterID) {
					ns.Throughput = append(ns.Throughput, row)
				}
			}
			end = len(ns.Throughput)
		}
		if n := end - off; n > 0 {
			segs = append(segs, segment{kind: seg.kind, off: off, n: n, seq: seg.seq})
		}
	}
	sh.store = ns
	sh.segs = segs
}
