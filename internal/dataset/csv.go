package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"natpeek/internal/heartbeat"
	"natpeek/internal/mac"
)

// File names used by Save/Load. One CSV per data set, mirroring the
// public release layout the paper describes (§3.2: "we have released the
// data collected from this study").
const (
	FileHeartbeats = "heartbeats.csv"
	FileUptime     = "uptime.csv"
	FileCapacity   = "capacity.csv"
	FileCounts     = "devices_counts.csv"
	FileSightings  = "devices_sightings.csv"
	FileWiFi       = "wifi.csv"
	FileFlows      = "traffic_flows.csv"
	FileThroughput = "traffic_throughput.csv"
	FileRoster     = "roster.csv"
)

const timeLayout = time.RFC3339Nano

// Column headers, shared by the Store and Sharded save paths.
var (
	rosterHeader     = []string{"router", "country"}
	heartbeatsHeader = []string{"router", "start", "interval_sec", "count"}
	uptimeHeader     = []string{"router", "reported_at", "uptime_sec"}
	capacityHeader   = []string{"router", "measured_at", "up_bps", "down_bps"}
	countsHeader     = []string{"router", "at", "wired", "w24", "w5"}
	sightingsHeader  = []string{"router", "at", "device", "kind"}
	wifiHeader       = []string{"router", "at", "band", "channel", "visible_aps", "clients"}
	flowsHeader      = []string{"router", "device", "domain", "proto", "first", "last",
		"up_bytes", "down_bytes", "up_pkts", "down_pkts", "conns"}
	throughputHeader = []string{"router", "minute", "dir", "peak_bps", "total_bytes"}
)

// csvFile names one output file and the function that writes it.
type csvFile struct {
	name string
	fn   func(w *csv.Writer) error
}

// saveCSVFiles writes the given files into dir (created if needed)
// concurrently — the files touch disjoint data, so on a fleet-size store
// the save is bounded by the largest file instead of the sum. Each
// file's contents depend only on its writer, never on the fan-out, so
// saves stay byte-identical to a sequential write.
func saveCSVFiles(dir string, files []csvFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	errs := make([]error, len(files))
	var wg sync.WaitGroup
	for i, wr := range files {
		wg.Add(1)
		go func(i int, name string, fn func(w *csv.Writer) error) {
			defer wg.Done()
			errs[i] = writeFile(filepath.Join(dir, name), fn)
		}(i, wr.name, wr.fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Save writes every data set as CSV into dir (created if needed), one
// file per data set.
func (s *Store) Save(dir string) error {
	return saveCSVFiles(dir, []csvFile{
		{FileRoster, s.writeRoster},
		{FileHeartbeats, s.writeHeartbeats},
		{FileUptime, s.writeUptime},
		{FileCapacity, s.writeCapacity},
		{FileCounts, s.writeCounts},
		{FileSightings, s.writeSightings},
		{FileWiFi, s.writeWiFi},
		{FileFlows, s.writeFlows},
		{FileThroughput, s.writeThroughput},
	})
}

func writeFile(path string, fn func(w *csv.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	w := csv.NewWriter(f)
	if err := fn(w); err != nil {
		f.Close()
		return fmt.Errorf("dataset: write %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	return f.Close()
}

// The row writers below emit data rows only (no header); both Store.Save
// and the streaming Sharded.Save call them, the latter once per shard
// segment so rows flow straight from shard slices to disk.

func writeRosterCSV(w *csv.Writer, roster map[string]string) error {
	if err := w.Write(rosterHeader); err != nil {
		return err
	}
	ids := make([]string, 0, len(roster))
	for id := range roster {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := w.Write([]string{id, roster[id]}); err != nil {
			return err
		}
	}
	return nil
}

// writeHeartbeatsCSV persists the run-length encoding: expanding a
// fleet's multi-month minute cadence to individual rows would be
// gigabytes.
func writeHeartbeatsCSV(w *csv.Writer, log *heartbeat.Log) error {
	if err := w.Write(heartbeatsHeader); err != nil {
		return err
	}
	if log == nil {
		return nil
	}
	for _, id := range log.Routers() {
		for _, r := range log.Runs(id) {
			if err := w.Write([]string{id, r.Start.Format(timeLayout),
				strconv.FormatFloat(r.Interval.Seconds(), 'f', 3, 64),
				strconv.Itoa(r.Count)}); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeUptimeRows(w *csv.Writer, rows []UptimeReport) error {
	for _, r := range rows {
		if err := w.Write([]string{r.RouterID, r.ReportedAt.Format(timeLayout),
			strconv.FormatFloat(r.Uptime.Seconds(), 'f', 0, 64)}); err != nil {
			return err
		}
	}
	return nil
}

func writeCapacityRows(w *csv.Writer, rows []CapacityMeasure) error {
	for _, c := range rows {
		if err := w.Write([]string{c.RouterID, c.MeasuredAt.Format(timeLayout),
			strconv.FormatFloat(c.UpBps, 'f', 0, 64),
			strconv.FormatFloat(c.DownBps, 'f', 0, 64)}); err != nil {
			return err
		}
	}
	return nil
}

func writeCountRows(w *csv.Writer, rows []DeviceCount) error {
	for _, c := range rows {
		if err := w.Write([]string{c.RouterID, c.At.Format(timeLayout),
			strconv.Itoa(c.Wired), strconv.Itoa(c.W24), strconv.Itoa(c.W5)}); err != nil {
			return err
		}
	}
	return nil
}

func writeSightingRows(w *csv.Writer, rows []DeviceSighting) error {
	for _, d := range rows {
		if err := w.Write([]string{d.RouterID, d.At.Format(timeLayout),
			d.Device.String(), d.Kind.String()}); err != nil {
			return err
		}
	}
	return nil
}

func writeWiFiRows(w *csv.Writer, rows []WiFiScan) error {
	for _, sc := range rows {
		if err := w.Write([]string{sc.RouterID, sc.At.Format(timeLayout), sc.Band,
			strconv.Itoa(sc.Channel), strconv.Itoa(sc.VisibleAPs), strconv.Itoa(sc.Clients)}); err != nil {
			return err
		}
	}
	return nil
}

func writeFlowRows(w *csv.Writer, rows []FlowRecord) error {
	for _, f := range rows {
		if err := w.Write([]string{f.RouterID, f.Device.String(), f.Domain, f.Proto,
			f.First.Format(timeLayout), f.Last.Format(timeLayout),
			strconv.FormatInt(f.UpBytes, 10), strconv.FormatInt(f.DownBytes, 10),
			strconv.FormatInt(f.UpPkts, 10), strconv.FormatInt(f.DownPkts, 10),
			strconv.FormatInt(f.Conns, 10)}); err != nil {
			return err
		}
	}
	return nil
}

func writeThroughputRows(w *csv.Writer, rows []ThroughputSample) error {
	for _, t := range rows {
		if err := w.Write([]string{t.RouterID, t.Minute.Format(timeLayout), t.Dir,
			strconv.FormatFloat(t.PeakBps, 'f', 0, 64),
			strconv.FormatInt(t.TotalBytes, 10)}); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) writeRoster(w *csv.Writer) error { return writeRosterCSV(w, s.RouterCountry) }

func (s *Store) writeHeartbeats(w *csv.Writer) error { return writeHeartbeatsCSV(w, s.Heartbeats) }

func (s *Store) writeUptime(w *csv.Writer) error {
	if err := w.Write(uptimeHeader); err != nil {
		return err
	}
	return writeUptimeRows(w, s.Uptime)
}

func (s *Store) writeCapacity(w *csv.Writer) error {
	if err := w.Write(capacityHeader); err != nil {
		return err
	}
	return writeCapacityRows(w, s.Capacity)
}

func (s *Store) writeCounts(w *csv.Writer) error {
	if err := w.Write(countsHeader); err != nil {
		return err
	}
	return writeCountRows(w, s.Counts)
}

func (s *Store) writeSightings(w *csv.Writer) error {
	if err := w.Write(sightingsHeader); err != nil {
		return err
	}
	return writeSightingRows(w, s.Sightings)
}

func (s *Store) writeWiFi(w *csv.Writer) error {
	if err := w.Write(wifiHeader); err != nil {
		return err
	}
	return writeWiFiRows(w, s.WiFi)
}

func (s *Store) writeFlows(w *csv.Writer) error {
	if err := w.Write(flowsHeader); err != nil {
		return err
	}
	return writeFlowRows(w, s.Flows)
}

func (s *Store) writeThroughput(w *csv.Writer) error {
	if err := w.Write(throughputHeader); err != nil {
		return err
	}
	return writeThroughputRows(w, s.Throughput)
}

// Load reads a directory written by Save.
func Load(dir string) (*Store, error) {
	s := NewStore()
	loaders := []struct {
		name string
		fn   func(rec []string) error
	}{
		{FileRoster, func(r []string) error {
			s.RouterCountry[r[0]] = r[1]
			return nil
		}},
		{FileHeartbeats, func(r []string) error {
			at, err := parseTime(r[1])
			if err != nil {
				return err
			}
			sec, err := strconv.ParseFloat(r[2], 64)
			if err != nil {
				return err
			}
			count, err := strconv.Atoi(r[3])
			if err != nil {
				return err
			}
			s.Heartbeats.RecordRun(r[0], heartbeat.Run{
				Start: at, Interval: time.Duration(sec * float64(time.Second)), Count: count,
			})
			return nil
		}},
		{FileUptime, func(r []string) error {
			at, err := parseTime(r[1])
			if err != nil {
				return err
			}
			sec, err := strconv.ParseFloat(r[2], 64)
			if err != nil {
				return err
			}
			s.Uptime = append(s.Uptime, UptimeReport{r[0], at, time.Duration(sec * float64(time.Second))})
			return nil
		}},
		{FileCapacity, func(r []string) error {
			at, err := parseTime(r[1])
			if err != nil {
				return err
			}
			up, err1 := strconv.ParseFloat(r[2], 64)
			down, err2 := strconv.ParseFloat(r[3], 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad capacity row %v", r)
			}
			s.Capacity = append(s.Capacity, CapacityMeasure{r[0], at, up, down})
			return nil
		}},
		{FileCounts, func(r []string) error {
			at, err := parseTime(r[1])
			if err != nil {
				return err
			}
			wired, _ := strconv.Atoi(r[2])
			w24, _ := strconv.Atoi(r[3])
			w5, _ := strconv.Atoi(r[4])
			s.Counts = append(s.Counts, DeviceCount{r[0], at, wired, w24, w5})
			return nil
		}},
		{FileSightings, func(r []string) error {
			at, err := parseTime(r[1])
			if err != nil {
				return err
			}
			hw, err := mac.Parse(r[2])
			if err != nil {
				return err
			}
			s.Sightings = append(s.Sightings, DeviceSighting{r[0], at, hw, parseKind(r[3])})
			return nil
		}},
		{FileWiFi, func(r []string) error {
			at, err := parseTime(r[1])
			if err != nil {
				return err
			}
			ch, _ := strconv.Atoi(r[3])
			aps, _ := strconv.Atoi(r[4])
			cl, _ := strconv.Atoi(r[5])
			s.WiFi = append(s.WiFi, WiFiScan{r[0], at, r[2], ch, aps, cl})
			return nil
		}},
		{FileFlows, func(r []string) error {
			first, err := parseTime(r[4])
			if err != nil {
				return err
			}
			last, err := parseTime(r[5])
			if err != nil {
				return err
			}
			hw, err := mac.Parse(r[1])
			if err != nil {
				return err
			}
			ub, _ := strconv.ParseInt(r[6], 10, 64)
			db, _ := strconv.ParseInt(r[7], 10, 64)
			up, _ := strconv.ParseInt(r[8], 10, 64)
			dp, _ := strconv.ParseInt(r[9], 10, 64)
			conns := int64(1)
			if len(r) > 10 {
				conns, _ = strconv.ParseInt(r[10], 10, 64)
			}
			s.Flows = append(s.Flows, FlowRecord{r[0], hw, r[2], r[3], first, last, ub, db, up, dp, conns})
			return nil
		}},
		{FileThroughput, func(r []string) error {
			at, err := parseTime(r[1])
			if err != nil {
				return err
			}
			peak, _ := strconv.ParseFloat(r[3], 64)
			total, _ := strconv.ParseInt(r[4], 10, 64)
			s.Throughput = append(s.Throughput, ThroughputSample{r[0], at, r[2], peak, total})
			return nil
		}},
	}
	// The loaders touch disjoint Store fields (the heartbeat log is
	// internally synchronized), so the files parse concurrently.
	errs := make([]error, len(loaders))
	var wg sync.WaitGroup
	for i, ld := range loaders {
		wg.Add(1)
		go func(i int, name string, fn func(rec []string) error) {
			defer wg.Done()
			errs[i] = readFile(filepath.Join(dir, name), fn)
		}(i, ld.name, ld.fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func readFile(path string, fn func(rec []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	first := true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dataset: read %s: %w", path, err)
		}
		if first {
			first = false // skip header
			continue
		}
		if err := fn(rec); err != nil {
			return fmt.Errorf("dataset: parse %s: %w", path, err)
		}
	}
}

func parseTime(s string) (time.Time, error) {
	return time.Parse(timeLayout, s)
}

func parseKind(s string) ConnKind {
	switch s {
	case "wired":
		return Wired
	case "wifi2.4":
		return Wireless24
	default:
		return Wireless5
	}
}
