// Sharded is the concurrent variant of Store: the ingest-side data
// structure a collector serving thousands of routers appends into. The
// plain Store is a single struct of slices that forces every writer
// through one lock; Sharded stripes rows across per-router shards, each
// with its own mutex and its own slice of the dedupe index, so appends
// for different routers proceed in parallel and the idempotency check
// and the append stay atomic under one (shard) lock.
//
// The striping is an ingest-time optimization only — analyses and CSV
// persistence still see a plain Store. Merge reassembles one by global
// arrival order: every apply records a segment stamped from one atomic
// sequence counter, and Merge replays the segments in sequence order.
// For a serial sequence of appends the merged store is therefore
// slice-for-slice identical to what the same appends would have built in
// a plain Store, which is what keeps the verify harness's golden
// snapshots byte-identical across the sharding (see
// TestShardedMatchesSeedStoreCSV).
package dataset

import (
	"encoding/csv"
	"sort"
	"sync"
	"sync/atomic"

	"natpeek/internal/heartbeat"
)

// DefaultShards is the shard count NewSharded uses for n <= 0. Striping
// wins as long as the count comfortably exceeds the number of writer
// goroutines; 32 covers every deployment size the collector sees while
// keeping Merge's fan-in small.
const DefaultShards = 32

// rowKind indexes the per-data-set slices a segment can cover.
type rowKind uint8

const (
	kindUptime rowKind = iota
	kindCapacity
	kindCounts
	kindSightings
	kindWiFi
	kindFlows
	kindThroughput
	numKinds
)

// segment records one contiguous append to one shard slice, stamped with
// the global arrival sequence so Merge can restore cross-shard order.
type segment struct {
	kind rowKind
	off  int
	n    int
	seq  uint64
}

// shard is one stripe: a private Store (its Heartbeats field is unused —
// the heartbeat log is shared and internally synchronized) plus the
// stripe's slice of the dedupe index.
type shard struct {
	mu      sync.Mutex
	store   *Store
	segs    []segment
	applied AppliedIndex
}

// Sharded is a lock-striped store for concurrent ingestion.
type Sharded struct {
	// Heartbeats is the shared heartbeat log. It has its own internal
	// locking (UDP datagrams arrive on a receiver goroutine), so it is
	// not striped.
	Heartbeats *heartbeat.Log

	shards []*shard
	seq    atomic.Uint64
}

// NewSharded returns an empty sharded store with n stripes (n <= 0 means
// DefaultShards).
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Sharded{Heartbeats: heartbeat.NewLog(), shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{store: &Store{RouterCountry: make(map[string]string)}}
	}
	return s
}

// NumShards returns the stripe count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// shardFor routes a router ID to its stripe (FNV-1a; the empty ID lands
// on a fixed stripe, so unattributed payloads still serialize safely).
func (s *Sharded) shardFor(router string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(router); i++ {
		h = (h ^ uint32(router[i])) * 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// Apply runs one upload's store mutation under the router's shard lock,
// honoring the idempotency key: a key already applied anywhere in this
// store is skipped and Apply reports false. The apply closure must only
// append rows and set roster entries — it sees the shard's private
// Store, and anything else it does is invisible to Merge.
//
// The dedupe index is striped alongside the data: keys are prefixed with
// the router ID by every client, so a key's replays always route to the
// same shard and the mark-then-append pair stays atomic without any
// global lock.
func (s *Sharded) Apply(router, key string, apply func(*Store)) bool {
	sh := s.shardFor(router)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.applied.Mark(key) {
		return false
	}
	before := kindLens(sh.store)
	apply(sh.store)
	s.record(sh, before)
	return true
}

// Append is Apply without deduplication, for writers that manage their
// own exactly-once semantics (the simulator's direct sink, benchmarks).
func (s *Sharded) Append(router string, apply func(*Store)) {
	sh := s.shardFor(router)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	before := kindLens(sh.store)
	apply(sh.store)
	s.record(sh, before)
}

func kindLens(st *Store) [numKinds]int {
	return [numKinds]int{
		kindUptime:     len(st.Uptime),
		kindCapacity:   len(st.Capacity),
		kindCounts:     len(st.Counts),
		kindSightings:  len(st.Sightings),
		kindWiFi:       len(st.WiFi),
		kindFlows:      len(st.Flows),
		kindThroughput: len(st.Throughput),
	}
}

// record turns the slice growth of one apply into sequence-stamped
// segments. Must be called with the shard lock held; the sequence is
// taken after the apply so segments within a shard are seq-ordered.
//
// Consecutive same-kind growth coalesces: if this shard's last segment
// holds the globally-latest sequence number, no segment anywhere orders
// after it, so extending it in place preserves merge order exactly. (If
// another shard races past the atomic load, its rows and these rows are
// concurrent — either merge order is valid.) Real ingest is bursty —
// spool batches deliver one router's backlog back-to-back — so this
// keeps the segment log near-empty in both the serial verify runs and
// steady-state collection.
func (s *Sharded) record(sh *shard, before [numKinds]int) {
	after := kindLens(sh.store)
	for k := rowKind(0); k < numKinds; k++ {
		grown := after[k] - before[k]
		if grown <= 0 {
			continue
		}
		if n := len(sh.segs); n > 0 {
			last := &sh.segs[n-1]
			if last.kind == k && last.off+last.n == before[k] && s.seq.Load() == last.seq {
				last.n += grown
				continue
			}
		}
		sh.segs = append(sh.segs, segment{kind: k, off: before[k], n: grown, seq: s.seq.Add(1)})
	}
}

// AdoptDedupe copies src's remembered idempotency keys into s, stripe by
// stripe and in each stripe's insertion order, so s rejects exactly the
// replays src would have rejected. Both stores must have the same stripe
// count (keys carry no router, so cross-stripe routing can't be
// recomputed). The segment store calls this when it seals a memtable and
// swaps in an empty successor: exactly-once must not reset at the flush
// boundary.
func (s *Sharded) AdoptDedupe(src *Sharded) {
	if len(s.shards) != len(src.shards) {
		panic("dataset: AdoptDedupe across different stripe counts")
	}
	for i, sh := range s.shards {
		ssh := src.shards[i]
		ssh.mu.Lock()
		keys := ssh.applied.Keys()
		ssh.mu.Unlock()
		sh.mu.Lock()
		for _, k := range keys {
			sh.applied.Mark(k)
		}
		sh.mu.Unlock()
	}
}

// DedupeLen returns the number of idempotency keys remembered across all
// stripes.
func (s *Sharded) DedupeLen() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.applied.Len()
		sh.mu.Unlock()
	}
	return n
}

// RowCounts summarizes the store without merging it — one lock
// acquisition per stripe, no copying. Fleet-size progress logs poll
// this.
type RowCounts struct {
	Routers    int
	Uptime     int
	Capacity   int
	Counts     int
	Sightings  int
	WiFi       int
	Flows      int
	Throughput int
}

// RowCounts sums the per-stripe slice lengths.
func (s *Sharded) RowCounts() RowCounts {
	var rc RowCounts
	for _, sh := range s.shards {
		sh.mu.Lock()
		rc.Routers += len(sh.store.RouterCountry)
		rc.Uptime += len(sh.store.Uptime)
		rc.Capacity += len(sh.store.Capacity)
		rc.Counts += len(sh.store.Counts)
		rc.Sightings += len(sh.store.Sightings)
		rc.WiFi += len(sh.store.WiFi)
		rc.Flows += len(sh.store.Flows)
		rc.Throughput += len(sh.store.Throughput)
		sh.mu.Unlock()
	}
	return rc
}

// Roster returns a merged copy of the router→country metadata across
// all stripes (one lock acquisition per stripe, no row copying).
func (s *Sharded) Roster() map[string]string {
	out := make(map[string]string)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, cc := range sh.store.RouterCountry {
			out[id] = cc
		}
		sh.mu.Unlock()
	}
	return out
}

// Merge reassembles a plain Store snapshot in global arrival order. The
// snapshot shares the (internally synchronized) heartbeat log and copies
// every row; its dedupe index is empty — dedupe state stays with the
// sharded store. All stripes are locked for the duration, so the
// snapshot is consistent.
func (s *Sharded) Merge() *Store {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()

	out := &Store{
		Heartbeats:    s.Heartbeats,
		RouterCountry: make(map[string]string),
	}
	var total [numKinds]int
	nsegs := 0
	for _, sh := range s.shards {
		for id, cc := range sh.store.RouterCountry {
			out.RouterCountry[id] = cc
		}
		lens := kindLens(sh.store)
		for k := rowKind(0); k < numKinds; k++ {
			total[k] += lens[k]
		}
		nsegs += len(sh.segs)
	}
	out.Uptime = make([]UptimeReport, 0, total[kindUptime])
	out.Capacity = make([]CapacityMeasure, 0, total[kindCapacity])
	out.Counts = make([]DeviceCount, 0, total[kindCounts])
	out.Sightings = make([]DeviceSighting, 0, total[kindSightings])
	out.WiFi = make([]WiFiScan, 0, total[kindWiFi])
	out.Flows = make([]FlowRecord, 0, total[kindFlows])
	out.Throughput = make([]ThroughputSample, 0, total[kindThroughput])

	all := s.orderedRefs(nsegs)
	for _, r := range all {
		st, seg := r.st, r.seg
		switch seg.kind {
		case kindUptime:
			out.Uptime = append(out.Uptime, st.Uptime[seg.off:seg.off+seg.n]...)
		case kindCapacity:
			out.Capacity = append(out.Capacity, st.Capacity[seg.off:seg.off+seg.n]...)
		case kindCounts:
			out.Counts = append(out.Counts, st.Counts[seg.off:seg.off+seg.n]...)
		case kindSightings:
			out.Sightings = append(out.Sightings, st.Sightings[seg.off:seg.off+seg.n]...)
		case kindWiFi:
			out.WiFi = append(out.WiFi, st.WiFi[seg.off:seg.off+seg.n]...)
		case kindFlows:
			out.Flows = append(out.Flows, st.Flows[seg.off:seg.off+seg.n]...)
		case kindThroughput:
			out.Throughput = append(out.Throughput, st.Throughput[seg.off:seg.off+seg.n]...)
		}
	}
	return out
}

// ref pairs one shard-local segment with the store that holds its rows.
type ref struct {
	st  *Store
	seg segment
}

// orderedRefs collects every shard's segments sorted by global arrival
// sequence. Callers must hold all stripe locks. Per-shard segment lists
// are already seq-sorted (seqs are taken under the shard lock), so a
// k-way merge would do; a plain sort is simpler and both callers (Merge,
// Save) are far off the hot path.
func (s *Sharded) orderedRefs(nsegs int) []ref {
	all := make([]ref, 0, nsegs)
	for _, sh := range s.shards {
		for _, seg := range sh.segs {
			all = append(all, ref{st: sh.store, seg: seg})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seg.seq < all[j].seg.seq })
	return all
}

// Save persists a consistent snapshot of the store as the standard CSV
// layout (one file per data set, written concurrently, byte-identical to
// Merge().Save). Rows stream straight from the shard slices in global
// arrival order — the previous implementation materialized a full merged
// copy of every slice just to write CSV, doubling peak memory at exactly
// the fleet sizes where Save matters. The price is that all stripe locks
// are held for the duration of the write; Save runs at shutdown or
// checkpoint time, never on the ingest path.
func (s *Sharded) Save(dir string) error {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()

	nsegs := 0
	roster := make(map[string]string)
	for _, sh := range s.shards {
		nsegs += len(sh.segs)
		for id, cc := range sh.store.RouterCountry {
			roster[id] = cc
		}
	}
	all := s.orderedRefs(nsegs)
	kindRefs := func(k rowKind) []ref {
		out := make([]ref, 0, 8)
		for _, r := range all {
			if r.seg.kind == k {
				out = append(out, r)
			}
		}
		return out
	}
	return saveCSVFiles(dir, []csvFile{
		{FileRoster, func(w *csv.Writer) error { return writeRosterCSV(w, roster) }},
		{FileHeartbeats, func(w *csv.Writer) error { return writeHeartbeatsCSV(w, s.Heartbeats) }},
		{FileUptime, func(w *csv.Writer) error {
			if err := w.Write(uptimeHeader); err != nil {
				return err
			}
			for _, r := range kindRefs(kindUptime) {
				if err := writeUptimeRows(w, r.st.Uptime[r.seg.off:r.seg.off+r.seg.n]); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileCapacity, func(w *csv.Writer) error {
			if err := w.Write(capacityHeader); err != nil {
				return err
			}
			for _, r := range kindRefs(kindCapacity) {
				if err := writeCapacityRows(w, r.st.Capacity[r.seg.off:r.seg.off+r.seg.n]); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileCounts, func(w *csv.Writer) error {
			if err := w.Write(countsHeader); err != nil {
				return err
			}
			for _, r := range kindRefs(kindCounts) {
				if err := writeCountRows(w, r.st.Counts[r.seg.off:r.seg.off+r.seg.n]); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileSightings, func(w *csv.Writer) error {
			if err := w.Write(sightingsHeader); err != nil {
				return err
			}
			for _, r := range kindRefs(kindSightings) {
				if err := writeSightingRows(w, r.st.Sightings[r.seg.off:r.seg.off+r.seg.n]); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileWiFi, func(w *csv.Writer) error {
			if err := w.Write(wifiHeader); err != nil {
				return err
			}
			for _, r := range kindRefs(kindWiFi) {
				if err := writeWiFiRows(w, r.st.WiFi[r.seg.off:r.seg.off+r.seg.n]); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileFlows, func(w *csv.Writer) error {
			if err := w.Write(flowsHeader); err != nil {
				return err
			}
			for _, r := range kindRefs(kindFlows) {
				if err := writeFlowRows(w, r.st.Flows[r.seg.off:r.seg.off+r.seg.n]); err != nil {
					return err
				}
			}
			return nil
		}},
		{FileThroughput, func(w *csv.Writer) error {
			if err := w.Write(throughputHeader); err != nil {
				return err
			}
			for _, r := range kindRefs(kindThroughput) {
				if err := writeThroughputRows(w, r.st.Throughput[r.seg.off:r.seg.off+r.seg.n]); err != nil {
					return err
				}
			}
			return nil
		}},
	})
}
