package dataset

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// seedRebalance fills a Sharded with uptime rows for routers rt-0..rt-8
// (keyed, arrival-ordered by the Uptime duration) plus roster entries.
func seedRebalance(t *testing.T, stripes, rows int) *Sharded {
	t.Helper()
	s := NewSharded(stripes)
	for i := 0; i < rows; i++ {
		id := fmt.Sprintf("rt-%d", i%9)
		i := i
		if !s.Apply(id, fmt.Sprintf("%s:k%d", id, i), func(st *Store) {
			st.RouterCountry[id] = "US"
			st.Uptime = append(st.Uptime, UptimeReport{
				RouterID: id, ReportedAt: shardT0, Uptime: time.Duration(i) * time.Second,
			})
		}) {
			t.Fatalf("seed apply %d deduped", i)
		}
	}
	return s
}

func matchPrefixes(prefixes ...string) func(string) bool {
	return func(router string) bool {
		for _, p := range prefixes {
			if router == p {
				return true
			}
		}
		return false
	}
}

func TestKeyRouter(t *testing.T) {
	cases := map[string]string{
		"rt-1:nonce:3": "rt-1",
		"rt-1:":        "rt-1",
		":nonce":       "", // empty prefix is not a router
		"no-colon":     "",
		"":             "",
	}
	for key, want := range cases {
		if got := KeyRouter(key); got != want {
			t.Errorf("KeyRouter(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestExtractRoutersMovesOnlyMatched is the core extract contract:
// matched rows and roster entries leave, unmatched ones stay, and BOTH
// sides keep their global arrival order exactly — the destination
// replays the moved rows in the order they originally arrived, and the
// source's surviving merge looks as if the moved rows never existed.
func TestExtractRoutersMovesOnlyMatched(t *testing.T) {
	const rows = 300
	s := seedRebalance(t, 4, rows)
	match := matchPrefixes("rt-2", "rt-5")

	moved, keys := s.ExtractRouters(match)

	wantMoved := 0
	for i := 0; i < rows; i++ {
		if match(fmt.Sprintf("rt-%d", i%9)) {
			wantMoved++
		}
	}
	if len(moved.Uptime) != wantMoved {
		t.Fatalf("moved %d rows, want %d", len(moved.Uptime), wantMoved)
	}
	if len(keys) != wantMoved {
		t.Fatalf("extracted %d keys, want %d", len(keys), wantMoved)
	}
	for _, rk := range keys {
		if !match(rk.Router) || !strings.HasPrefix(rk.Key, rk.Router+":") {
			t.Fatalf("extracted key %+v does not belong to a matched router", rk)
		}
	}
	if len(moved.RouterCountry) != 2 || moved.RouterCountry["rt-2"] != "US" {
		t.Fatalf("moved roster = %v, want the two matched routers", moved.RouterCountry)
	}

	// Both sides ascend in arrival stamps (the seeded Uptime duration),
	// and together they partition the original sequence.
	assertAscending := func(name string, got []UptimeReport) {
		last := -1 * time.Second
		for _, r := range got {
			if r.Uptime <= last {
				t.Fatalf("%s rows out of arrival order at %v", name, r.Uptime)
			}
			last = r.Uptime
		}
	}
	rest := s.Merge()
	assertAscending("moved", moved.Uptime)
	assertAscending("surviving", rest.Uptime)
	if len(rest.Uptime)+len(moved.Uptime) != rows {
		t.Fatalf("rows vanished: %d moved + %d left != %d", len(moved.Uptime), len(rest.Uptime), rows)
	}
	for _, r := range rest.Uptime {
		if match(r.RouterID) {
			t.Fatalf("matched router %s still has rows at the source", r.RouterID)
		}
	}
	if _, stillThere := rest.RouterCountry["rt-2"]; stillThere {
		t.Fatal("matched roster entry survived the extract")
	}
	if rest.RouterCountry["rt-0"] != "US" {
		t.Fatal("unmatched roster entry lost in the extract")
	}
}

// TestExtractRetainsDedupeKeys pins the design's exactly-once hinge: an
// extracted router's idempotency keys stay in the source's dedupe index,
// so a client retry landing at the old home AFTER the move is flagged
// duplicate instead of re-creating a row that now lives elsewhere.
func TestExtractRetainsDedupeKeys(t *testing.T) {
	s := seedRebalance(t, 2, 90)
	moved, keys := s.ExtractRouters(matchPrefixes("rt-3"))
	if len(moved.Uptime) == 0 || len(keys) == 0 {
		t.Fatal("nothing extracted")
	}
	for _, rk := range keys {
		if s.Apply(rk.Router, rk.Key, func(st *Store) {
			st.Uptime = append(st.Uptime, UptimeReport{RouterID: rk.Router})
		}) {
			t.Fatalf("retry of moved key %q re-applied at the source", rk.Key)
		}
	}
	if got := len(s.Merge().Uptime); got != 90-len(moved.Uptime) {
		t.Fatalf("source rows = %d after retries, want %d", got, 90-len(moved.Uptime))
	}
	// A second extract finds no rows but still reports the retained
	// keys — the transfer engine re-pushes them on retried sessions.
	again, keys2 := s.ExtractRouters(matchPrefixes("rt-3"))
	if len(again.Uptime) != 0 {
		t.Fatalf("second extract found %d rows", len(again.Uptime))
	}
	if len(keys2) != len(keys) {
		t.Fatalf("second extract reports %d keys, want the retained %d", len(keys2), len(keys))
	}
}

// TestScanRoutersIsReadOnly: Scan must report the same snapshot an
// extract would move, without changing the store.
func TestScanRoutersIsReadOnly(t *testing.T) {
	s := seedRebalance(t, 3, 120)
	match := matchPrefixes("rt-1", "rt-7")
	scanned, keys := s.ScanRouters(match)
	if len(scanned.Uptime) == 0 || len(keys) != len(scanned.Uptime) {
		t.Fatalf("scan: %d rows, %d keys", len(scanned.Uptime), len(keys))
	}
	if got := len(s.Merge().Uptime); got != 120 {
		t.Fatalf("scan mutated the store: %d rows left", got)
	}
	moved, _ := s.ExtractRouters(match)
	if len(moved.Uptime) != len(scanned.Uptime) {
		t.Fatalf("extract moved %d rows, scan promised %d", len(moved.Uptime), len(scanned.Uptime))
	}
}

// TestSplitRoutersPartitionsEveryKind drives the row-set partition
// helper across all seven measurement kinds plus the roster, checking
// order preservation per slice and that hit+rest is a clean partition.
func TestSplitRoutersPartitionsEveryKind(t *testing.T) {
	st := NewStore()
	ids := []string{"rt-a", "rt-b", "rt-a", "rt-c", "rt-b", "rt-a"}
	for i, id := range ids {
		st.RouterCountry[id] = "US"
		st.Uptime = append(st.Uptime, UptimeReport{RouterID: id, Uptime: time.Duration(i)})
		st.Capacity = append(st.Capacity, CapacityMeasure{RouterID: id})
		st.Counts = append(st.Counts, DeviceCount{RouterID: id, Wired: i})
		st.Sightings = append(st.Sightings, DeviceSighting{RouterID: id, Kind: ConnKind(i % 3)})
		st.WiFi = append(st.WiFi, WiFiScan{RouterID: id, Channel: i})
		st.Flows = append(st.Flows, FlowRecord{RouterID: id, UpBytes: int64(i)})
		st.Throughput = append(st.Throughput, ThroughputSample{RouterID: id, TotalBytes: int64(i)})
	}
	hit, rest := SplitRouters(st, matchPrefixes("rt-a"))
	if len(hit.Uptime) != 3 || len(rest.Uptime) != 3 {
		t.Fatalf("uptime split %d/%d, want 3/3", len(hit.Uptime), len(rest.Uptime))
	}
	if len(hit.Flows) != 3 || len(rest.Throughput) != 3 || len(hit.Sightings) != 3 {
		t.Fatal("a kind was not partitioned")
	}
	if hit.Uptime[0].Uptime != 0 || hit.Uptime[1].Uptime != 2 || hit.Uptime[2].Uptime != 5 {
		t.Fatalf("hit order perturbed: %v", hit.Uptime)
	}
	if rest.Uptime[0].Uptime != 1 || rest.Uptime[1].Uptime != 3 || rest.Uptime[2].Uptime != 4 {
		t.Fatalf("rest order perturbed: %v", rest.Uptime)
	}
	if len(hit.RouterCountry) != 1 || len(rest.RouterCountry) != 2 {
		t.Fatalf("roster split %d/%d", len(hit.RouterCountry), len(rest.RouterCountry))
	}
}

// TestExtractConcurrentWithIngest races extraction against live keyed
// ingest: every row must end up in exactly one place — extracted, or
// still at the source — and the dedupe index must keep every key.
func TestExtractConcurrentWithIngest(t *testing.T) {
	s := NewSharded(4)
	const writers, perWriter = 4, 200
	done := make(chan int, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			applied := 0
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("rt-%d", i%7)
				key := fmt.Sprintf("%s:w%d:%d", id, w, i)
				if s.Apply(id, key, func(st *Store) {
					st.Uptime = append(st.Uptime, UptimeReport{RouterID: id})
				}) {
					applied++
				}
			}
			done <- applied
		}(w)
	}
	var movedRows int
	match := matchPrefixes("rt-0", "rt-3", "rt-6")
	for i := 0; i < 50; i++ {
		moved, _ := s.ExtractRouters(match)
		movedRows += len(moved.Uptime)
	}
	applied := 0
	for w := 0; w < writers; w++ {
		applied += <-done
	}
	final, _ := s.ExtractRouters(match)
	movedRows += len(final.Uptime)
	if got := movedRows + len(s.Merge().Uptime); got != applied {
		t.Fatalf("rows lost or duplicated under concurrent extract: %d accounted, %d applied", got, applied)
	}
}
