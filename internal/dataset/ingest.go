package dataset

import "natpeek/internal/heartbeat"

// IngestStore is the contract the collector (and everything above it —
// cluster nodes, verify harness, loadgen targets) writes into. Two
// implementations exist: *Sharded, the all-in-memory lock-striped store,
// and segment.Store, which fronts a bounded Sharded memtable with
// immutable on-disk columnar segments. Keeping the collector against
// this interface is what lets the storage engine change underneath a
// running pipeline without touching ingest, routing, or verification.
type IngestStore interface {
	// Apply runs one upload's mutation exactly once per idempotency
	// key; it reports false for a replayed key.
	Apply(router, key string, apply func(*Store)) bool
	// Append is Apply without deduplication.
	Append(router string, apply func(*Store))
	// Merge materializes a consistent plain-Store snapshot in global
	// arrival order (the analysis/CSV view).
	Merge() *Store
	// RowCounts summarizes per-data-set row totals without merging.
	RowCounts() RowCounts
	// DedupeLen reports how many idempotency keys are remembered.
	DedupeLen() int
	// HeartbeatLog exposes the shared, internally-synchronized
	// heartbeat log (UDP datagrams bypass the row path entirely).
	HeartbeatLog() *heartbeat.Log
	// Save persists the standard CSV layout into dir.
	Save(dir string) error
}

// HeartbeatLog returns the shared heartbeat log, satisfying IngestStore.
func (s *Sharded) HeartbeatLog() *heartbeat.Log { return s.Heartbeats }

var _ IngestStore = (*Sharded)(nil)
