// Package dataset defines the six data sets of Table 2 — Heartbeats,
// Uptime, Capacity, Devices, WiFi, and Traffic — with their collection
// windows, row schemas, and CSV persistence. Everything the analysis and
// figure code consumes comes from this package, so the boundary between
// "what the platform collected" and "what the paper computed" is explicit.
package dataset

import (
	"sort"
	"time"

	"natpeek/internal/heartbeat"
	"natpeek/internal/mac"
)

// Collection windows from Table 2.
var (
	// HeartbeatsFrom/To: October 1, 2012 – April 15, 2013.
	HeartbeatsFrom = time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)
	HeartbeatsTo   = time.Date(2013, 4, 15, 0, 0, 0, 0, time.UTC)
	// CapacityFrom/To: April 1 – April 15, 2013.
	CapacityFrom = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	CapacityTo   = time.Date(2013, 4, 15, 0, 0, 0, 0, time.UTC)
	// UptimeFrom/To and DevicesFrom/To: March 6 – April 15, 2013.
	UptimeFrom  = time.Date(2013, 3, 6, 0, 0, 0, 0, time.UTC)
	UptimeTo    = time.Date(2013, 4, 15, 0, 0, 0, 0, time.UTC)
	DevicesFrom = UptimeFrom
	DevicesTo   = UptimeTo
	// WiFiFrom/To: November 1 – November 15, 2012.
	WiFiFrom = time.Date(2012, 11, 1, 0, 0, 0, 0, time.UTC)
	WiFiTo   = time.Date(2012, 11, 15, 0, 0, 0, 0, time.UTC)
	// TrafficFrom/To: April 1 – April 15, 2013.
	TrafficFrom = CapacityFrom
	TrafficTo   = CapacityTo
)

// UptimeReport is one row of the Uptime data set: "each router sends its
// uptime every twelve hours" (§3.2.2). It distinguishes powered-off
// routers from offline-but-running ones.
type UptimeReport struct {
	RouterID   string
	ReportedAt time.Time
	// Uptime is the router's time since boot at the report.
	Uptime time.Duration
}

// CapacityMeasure is one ShaperProbe run (every twelve hours).
type CapacityMeasure struct {
	RouterID   string
	MeasuredAt time.Time
	UpBps      float64
	DownBps    float64
}

// ConnKind is how a device attaches to the gateway.
type ConnKind int

// Attachment kinds.
const (
	Wired ConnKind = iota
	Wireless24
	Wireless5
)

func (k ConnKind) String() string {
	switch k {
	case Wired:
		return "wired"
	case Wireless24:
		return "wifi2.4"
	default:
		return "wifi5"
	}
}

// DeviceCount is one row of the hourly Devices census: "most routers
// count the number of devices connected to their wired Ethernet ports and
// the number of associated clients on each wireless frequency".
type DeviceCount struct {
	RouterID string
	At       time.Time
	Wired    int
	W24      int
	W5       int
}

// Total returns all connected devices at the census instant.
func (d DeviceCount) Total() int { return d.Wired + d.W24 + d.W5 }

// DeviceSighting is one (device, hour) observation with the anonymized
// MAC, recorded alongside the counts. Per-device rows are what Table 5's
// always-connected analysis and Fig. 7/10's unique-device counts need.
type DeviceSighting struct {
	RouterID string
	At       time.Time
	Device   mac.Addr // anonymized (lower 24 bits hashed)
	Kind     ConnKind
}

// WiFiScan is one row of the WiFi data set: a same-channel scan every ten
// minutes.
type WiFiScan struct {
	RouterID   string
	At         time.Time
	Band       string // "2.4GHz" or "5GHz"
	Channel    int
	VisibleAPs int
	Clients    int
}

// FlowRecord is one row of the Traffic data set's flow statistics.
type FlowRecord struct {
	RouterID  string
	Device    mac.Addr // anonymized
	Domain    string   // whitelisted name, "anon-…", or ""
	Proto     string   // "tcp"/"udp"
	First     time.Time
	Last      time.Time
	UpBytes   int64
	DownBytes int64
	UpPkts    int64
	DownPkts  int64
	// Conns is the number of TCP/UDP connections this record covers. The
	// live capture path emits one record per 5-tuple (Conns = 1); the
	// fleet simulator aggregates a device-domain-day bundle into one row.
	Conns int64
}

// Bytes returns the flow's total volume.
func (f FlowRecord) Bytes() int64 { return f.UpBytes + f.DownBytes }

// ThroughputSample is one row of the Traffic data set's packet
// statistics, aggregated the way §6.2 uses them: "computing the maximum
// per-second throughput every minute".
type ThroughputSample struct {
	RouterID string
	Minute   time.Time
	Dir      string // "up"/"down"
	// PeakBps is the maximum one-second throughput inside the minute, in
	// bits per second.
	PeakBps float64
	// TotalBytes is the minute's volume.
	TotalBytes int64
}

// Store bundles all six data sets for a study.
type Store struct {
	Heartbeats *heartbeat.Log
	Uptime     []UptimeReport
	Capacity   []CapacityMeasure
	Counts     []DeviceCount
	Sightings  []DeviceSighting
	WiFi       []WiFiScan
	Flows      []FlowRecord
	Throughput []ThroughputSample

	// RouterCountry maps router IDs to ISO country codes (deployment
	// metadata, the join key for all per-country analyses).
	RouterCountry map[string]string

	// Applied remembers which upload idempotency keys have already been
	// ingested, making the at-least-once upload pipeline safe to retry
	// (see dedupe.go). Not persisted: the retry horizon is far shorter
	// than a study, and replays across studies carry fresh keys.
	Applied AppliedIndex
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		Heartbeats:    heartbeat.NewLog(),
		RouterCountry: make(map[string]string),
	}
}

// Routers returns the router IDs known to the store's metadata, i.e. the
// deployment roster.
func (s *Store) Routers() []string {
	out := make([]string, 0, len(s.RouterCountry))
	for id := range s.RouterCountry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RoutersIn returns the router IDs deployed in the given country group.
func (s *Store) RoutersIn(developed bool, isDeveloped func(code string) bool) []string {
	var out []string
	for id, code := range s.RouterCountry {
		if isDeveloped(code) == developed {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
