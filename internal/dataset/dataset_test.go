package dataset

import (
	"path/filepath"
	"testing"
	"time"

	"natpeek/internal/mac"
)

var t0 = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

func sampleStore() *Store {
	s := NewStore()
	s.RouterCountry["r-us-1"] = "US"
	s.RouterCountry["r-in-1"] = "IN"
	s.Heartbeats.Record("r-us-1", t0)
	s.Heartbeats.Record("r-us-1", t0.Add(time.Minute))
	s.Uptime = append(s.Uptime, UptimeReport{"r-us-1", t0, 36 * time.Hour})
	s.Capacity = append(s.Capacity, CapacityMeasure{"r-us-1", t0, 1e6, 16e6})
	s.Counts = append(s.Counts, DeviceCount{"r-us-1", t0, 1, 4, 2})
	s.Sightings = append(s.Sightings, DeviceSighting{"r-us-1", t0, mac.MustParse("a4:b1:97:01:02:03"), Wireless24})
	s.WiFi = append(s.WiFi, WiFiScan{"r-us-1", t0, "2.4GHz", 11, 17, 3})
	s.Flows = append(s.Flows, FlowRecord{
		RouterID: "r-us-1", Device: mac.MustParse("a4:b1:97:01:02:03"),
		Domain: "netflix.com", Proto: "tcp", First: t0, Last: t0.Add(time.Hour),
		UpBytes: 1000, DownBytes: 900000, UpPkts: 10, DownPkts: 700,
	})
	s.Throughput = append(s.Throughput, ThroughputSample{"r-us-1", t0, "down", 12e6, 90000000})
	return s
}

func TestWindowsMatchTable2(t *testing.T) {
	if HeartbeatsFrom.Month() != time.October || HeartbeatsTo.Month() != time.April {
		t.Fatal("heartbeats window wrong")
	}
	if WiFiFrom.Month() != time.November || WiFiTo.Sub(WiFiFrom) != 14*24*time.Hour {
		t.Fatal("wifi window wrong")
	}
	if TrafficTo.Sub(TrafficFrom) != 14*24*time.Hour {
		t.Fatal("traffic window wrong")
	}
	if !DevicesFrom.Equal(UptimeFrom) {
		t.Fatal("devices/uptime windows should coincide")
	}
}

func TestDeviceCountTotal(t *testing.T) {
	c := DeviceCount{Wired: 1, W24: 4, W5: 2}
	if c.Total() != 7 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestFlowBytes(t *testing.T) {
	f := FlowRecord{UpBytes: 3, DownBytes: 4}
	if f.Bytes() != 7 {
		t.Fatal("Bytes wrong")
	}
}

func TestConnKindStrings(t *testing.T) {
	if Wired.String() != "wired" || Wireless24.String() != "wifi2.4" || Wireless5.String() != "wifi5" {
		t.Fatal("kind strings wrong")
	}
	for _, k := range []ConnKind{Wired, Wireless24, Wireless5} {
		if parseKind(k.String()) != k {
			t.Fatalf("kind %v does not round trip", k)
		}
	}
}

func TestRoutersSorted(t *testing.T) {
	s := sampleStore()
	ids := s.Routers()
	if len(ids) != 2 || ids[0] != "r-in-1" || ids[1] != "r-us-1" {
		t.Fatalf("routers = %v", ids)
	}
}

func TestRoutersInGroup(t *testing.T) {
	s := sampleStore()
	isDev := func(code string) bool { return code == "US" }
	if got := s.RoutersIn(true, isDev); len(got) != 1 || got[0] != "r-us-1" {
		t.Fatalf("developed = %v", got)
	}
	if got := s.RoutersIn(false, isDev); len(got) != 1 || got[0] != "r-in-1" {
		t.Fatalf("developing = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	orig := sampleStore()
	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.RouterCountry) != 2 || got.RouterCountry["r-us-1"] != "US" {
		t.Fatalf("roster = %v", got.RouterCountry)
	}
	if got.Heartbeats.Count("r-us-1") != 2 {
		t.Fatalf("heartbeats = %d", got.Heartbeats.Count("r-us-1"))
	}
	if len(got.Uptime) != 1 || got.Uptime[0].Uptime != 36*time.Hour {
		t.Fatalf("uptime = %+v", got.Uptime)
	}
	if len(got.Capacity) != 1 || got.Capacity[0].DownBps != 16e6 {
		t.Fatalf("capacity = %+v", got.Capacity)
	}
	if len(got.Counts) != 1 || got.Counts[0].Total() != 7 {
		t.Fatalf("counts = %+v", got.Counts)
	}
	if len(got.Sightings) != 1 || got.Sightings[0].Kind != Wireless24 {
		t.Fatalf("sightings = %+v", got.Sightings)
	}
	if len(got.WiFi) != 1 || got.WiFi[0].VisibleAPs != 17 {
		t.Fatalf("wifi = %+v", got.WiFi)
	}
	if len(got.Flows) != 1 {
		t.Fatalf("flows = %d", len(got.Flows))
	}
	f := got.Flows[0]
	if f.Domain != "netflix.com" || f.DownBytes != 900000 || !f.Last.Equal(t0.Add(time.Hour)) {
		t.Fatalf("flow = %+v", f)
	}
	if len(got.Throughput) != 1 || got.Throughput[0].PeakBps != 12e6 {
		t.Fatalf("throughput = %+v", got.Throughput)
	}
}

func TestLoadMissingDirErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir loaded")
	}
}

func TestSaveEmptyStoreAndReload(t *testing.T) {
	dir := t.TempDir()
	if err := NewStore().Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Routers()) != 0 || len(got.Flows) != 0 {
		t.Fatal("empty store not empty after reload")
	}
}
