package collector

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"natpeek/internal/dataset"
)

// TestSaturatedIngestReturns429 pins the admission-control contract:
// when the in-flight limit is reached, further data-plane uploads are
// answered 429 with a Retry-After header immediately — the server sheds
// load onto the clients' retrying spools instead of parking request
// goroutines (and their bodies) until capacity frees up.
func TestSaturatedIngestReturns429(t *testing.T) {
	srv, _ := startPair(t)
	srv.SetMaxInflight(1)

	// Occupy the single slot with an upload whose body never finishes
	// arriving: the handler blocks in ReadAll holding the semaphore.
	pr, pw := io.Pipe()
	blocked := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, "http://"+srv.HTTPAddr()+"/v1/uptime", pr)
		if err != nil {
			blocked <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		blocked <- err
	}()
	pw.Write([]byte(`{"RouterID":`)) // partial body: handler is now inside ReadAll

	// Every further upload must be rejected, not queued.
	body, _ := json.Marshal(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: time.Hour})
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/uptime", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		status, retryAfter := resp.StatusCode, resp.Header.Get("Retry-After")
		resp.Body.Close()
		if status == http.StatusTooManyRequests {
			if retryAfter == "" {
				t.Fatal("429 without Retry-After header")
			}
			break
		}
		// The slot-holder may not have entered the handler yet; retry
		// briefly before declaring admission control absent.
		if time.Now().After(deadline) {
			t.Fatalf("saturated server answered %d, want 429", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.stats().Uptime; got != 0 {
		t.Fatalf("uptime rows = %d, want 0 (throttled uploads must not apply)", got)
	}

	// Finish the blocked upload and confirm the slot frees: the same POST
	// that was throttled now lands.
	pw.Close() // ReadAll returns (truncated JSON decodes to an error; slot released either way)
	<-blocked
	ok := false
	for time.Now().Before(deadline) {
		resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/uptime", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		status := resp.StatusCode
		resp.Body.Close()
		if status == http.StatusNoContent {
			ok = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatal("slot never freed after blocked upload finished")
	}

	// The throttle is observable.
	key := `natpeek_collector_throttled_total{endpoint="/v1/uptime"}`
	if m := scrape(t, srv.HTTPAddr()); m[key] <= 0 {
		t.Fatalf("throttle counter = %v, want > 0", m[key])
	}
}

// TestControlPlaneExemptFromAdmission: registration and stats must work
// even when the data plane is saturated — operators debug through them.
func TestControlPlaneExemptFromAdmission(t *testing.T) {
	srv, _ := startPair(t)
	srv.SetMaxInflight(1)

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest(http.MethodPost, "http://"+srv.HTTPAddr()+"/v1/uptime", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	pw.Write([]byte(`{`))
	defer func() { pw.Close(); <-done }()

	// Wait until the data plane actually throttles, so the slot is held.
	body, _ := json.Marshal(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: time.Hour})
	waitFor(t, func() bool {
		resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/uptime", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusTooManyRequests
	})

	reg, _ := json.Marshal(registerReq{RouterID: "router-adm", Country: "US"})
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/register", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("register during saturation: status %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats during saturation: status %d, want 200", resp.StatusCode)
	}
}
