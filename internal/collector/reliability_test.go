package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/spool"
)

// fastSpool keeps client retry backoffs tiny so outage tests converge.
func fastSpool(cfg spool.Config) spool.Config {
	cfg.RetryMin = time.Millisecond
	cfg.RetryMax = 20 * time.Millisecond
	cfg.Timeout = 2 * time.Second
	return cfg
}

// restartServer brings a replacement server up on the exact addresses a
// closed one used, retrying briefly while the kernel releases the ports.
func restartServer(t *testing.T, udpAddr, httpAddr string, store *dataset.Sharded) *Server {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv, err := NewServer(udpAddr, httpAddr, store)
		if err == nil {
			return srv
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s / %s: %v", udpAddr, httpAddr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestZeroRowLossThroughFaultsAndRestart is the acceptance test for the
// reliable upload pipeline: with 30% of upload POSTs failing (half
// rejected outright, half applied with the acknowledgment dropped) AND a
// full collector restart mid-run, every row produced by the gateway must
// land in the store exactly once, with the retries and dedupes visible
// on /metrics.
func TestZeroRowLossThroughFaultsAndRestart(t *testing.T) {
	store := dataset.NewSharded(0)
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	udpAddr, httpAddr := srv.UDPAddr(), srv.HTTPAddr()
	m0 := scrape(t, httpAddr)
	srv.SetFaultInjection(0.3, 7)

	cli, err := NewClient("r-rel", "US", udpAddr, httpAddr,
		WithSpool(fastSpool(spool.Config{MaxBatch: 8})))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const phase1, phase2 = 120, 80
	report := func(i int) dataset.UptimeReport {
		// A unique Uptime value identifies each logical row, so both loss
		// and duplication are detectable.
		return dataset.UptimeReport{
			RouterID:   "r-rel",
			ReportedAt: t0,
			Uptime:     time.Duration(i+1) * time.Second,
		}
	}
	for i := 0; i < phase1; i++ {
		cli.UptimeReport(report(i))
	}
	// Let some rows land through the flaky server, then kill it with the
	// spool still carrying the rest.
	waitFor(t, func() bool { return srv.stats().Uptime >= 20 })
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// The outage: the gateway keeps measuring and keeps retrying.
	for i := phase1; i < phase1+phase2; i++ {
		cli.UptimeReport(report(i))
	}

	srv2 := restartServer(t, udpAddr, httpAddr, store)
	defer srv2.Close()
	srv2.SetFaultInjection(0.3, 9)
	flush(t, cli)

	const want = phase1 + phase2
	if got := srv2.stats().Uptime; got != want {
		t.Fatalf("uptime rows = %d, want exactly %d (lost or duplicated through faults/restart)", got, want)
	}
	// Exactly-once by content, not just by count.
	m1 := scrape(t, httpAddr)
	srv2.Close()
	seen := make(map[time.Duration]bool, want)
	for _, r := range store.Merge().Uptime {
		if seen[r.Uptime] {
			t.Fatalf("row %v ingested twice", r.Uptime)
		}
		seen[r.Uptime] = true
	}

	// The reliability machinery must have visibly worked for its living.
	if d := m1["natpeek_spool_retries_total"] - m0["natpeek_spool_retries_total"]; d <= 0 {
		t.Errorf("spool retries delta = %v, want > 0", d)
	}
	injected := m1[`natpeek_collector_injected_failures_total{mode="reject"}`] -
		m0[`natpeek_collector_injected_failures_total{mode="reject"}`] +
		m1[`natpeek_collector_injected_failures_total{mode="drop-ack"}`] -
		m0[`natpeek_collector_injected_failures_total{mode="drop-ack"}`]
	if injected <= 0 {
		t.Errorf("injected failures delta = %v, want > 0", injected)
	}
	dedupeKey := `natpeek_collector_dedupe_total{endpoint="/v1/uptime"}`
	if d := m1[dedupeKey] - m0[dedupeKey]; d <= 0 {
		t.Errorf("dedupe delta = %v, want > 0 (drop-ack faults must force replays)", d)
	}
	if cli.SpoolDepth() != 0 {
		t.Errorf("spool depth = %d after flush", cli.SpoolDepth())
	}
}

// TestSpoolJournalSurvivesClientRestart drives the client-side half of
// the durability story: rows spooled during a total outage survive the
// gateway process dying and are delivered by its replacement.
func TestSpoolJournalSurvivesClientRestart(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dir := t.TempDir()

	// Run 1 registers, then the link blacks out entirely: no upload
	// reaches the server at all (server-side injection would not do —
	// its drop-ack mode stores rows on purpose).
	ft := spool.NewFaultTransport(nil, 0, 3)
	cli1, err := NewClient("r-dur", "US", srv.UDPAddr(), srv.HTTPAddr(),
		WithTransport(ft), WithSpool(fastSpool(spool.Config{Dir: dir})))
	if err != nil {
		t.Fatal(err)
	}
	ft.SetBlackout(true)
	for i := 0; i < 5; i++ {
		cli1.UptimeReport(dataset.UptimeReport{
			RouterID: "r-dur", ReportedAt: t0, Uptime: time.Duration(i+1) * time.Minute,
		})
	}
	waitFor(t, func() bool { return cli1.Err() != nil })
	if err := cli1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Store().Uptime); got != 0 {
		t.Fatalf("rows landed during blackout: %d", got)
	}

	// Run 2 recovers the journal and drains it.
	cli2, err := NewClient("r-dur", "US", srv.UDPAddr(), srv.HTTPAddr(),
		WithSpool(fastSpool(spool.Config{Dir: dir})))
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	flush(t, cli2)
	if got := len(srv.Store().Uptime); got != 5 {
		t.Fatalf("uptime rows after journal recovery = %d, want 5", got)
	}
}

func TestBatchReplayDeduped(t *testing.T) {
	srv, _ := startPair(t)
	row := func(uptime time.Duration) json.RawMessage {
		b, _ := json.Marshal(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: uptime})
		return b
	}
	batch := []BatchItem{
		{Endpoint: "/v1/uptime", Key: "k1", Body: row(time.Hour)},
		{Endpoint: "/v1/uptime", Key: "k2", Body: row(2 * time.Hour)},
	}
	post := func() BatchResult {
		t.Helper()
		body, _ := json.Marshal(batch)
		resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res BatchResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := post(); res.Applied != 2 || res.Duplicates != 0 {
		t.Fatalf("first batch: %+v", res)
	}
	// The retry of the whole batch — the lost-ack case — must be a no-op.
	if res := post(); res.Applied != 0 || res.Duplicates != 2 {
		t.Fatalf("replayed batch: %+v", res)
	}
	if got := len(srv.Store().Uptime); got != 2 {
		t.Fatalf("uptime rows = %d, want 2", got)
	}
}

func TestBatchRejectsUnknownEndpointAndBadItem(t *testing.T) {
	srv, _ := startPair(t)
	good, _ := json.Marshal(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: time.Hour})
	batch := []BatchItem{
		{Endpoint: "/v1/uptime", Key: "ok-1", Body: good},
		{Endpoint: "/v1/nonsense", Key: "bad-1", Body: good},
		{Endpoint: "/v1/uptime", Key: "bad-2", Body: json.RawMessage(`"not an uptime report"`)},
	}
	body, _ := json.Marshal(batch)
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Rejected != 2 {
		t.Fatalf("result %+v, want 1 applied / 2 rejected", res)
	}
	if got := len(srv.Store().Uptime); got != 1 {
		t.Fatalf("uptime rows = %d, want 1", got)
	}
}

func TestIdempotencyKeyHeaderOnDirectPost(t *testing.T) {
	srv, _ := startPair(t)
	body, _ := json.Marshal(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: time.Hour})
	for i := 0; i < 3; i++ {
		req, err := http.NewRequest(http.MethodPost, "http://"+srv.HTTPAddr()+"/v1/uptime", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "direct-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	if got := len(srv.Store().Uptime); got != 1 {
		t.Fatalf("uptime rows = %d, want 1 (header replays deduped)", got)
	}
}

// TestOversizedUploadRejected proves MaxBytesReader bounds request
// bodies: a body past the limit is refused and stores nothing.
func TestOversizedUploadRejected(t *testing.T) {
	srv, _ := startPair(t)
	big := make([]byte, maxUploadBytes+2)
	for i := range big {
		big[i] = ' '
	}
	big[0] = '['
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/wifi", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 400 {
		t.Fatalf("oversized upload accepted: status %d", resp.StatusCode)
	}
	if got := len(srv.Store().WiFi); got != 0 {
		t.Fatalf("wifi rows = %d after oversized upload", got)
	}
}

// TestChunkedUploadPayloadCounted regresses the payload-accounting fix:
// a chunked request (ContentLength -1) must count the bytes actually
// read, not zero.
func TestChunkedUploadPayloadCounted(t *testing.T) {
	srv, _ := startPair(t)
	key := `natpeek_http_payload_bytes_total{endpoint="/v1/uptime"}`
	m0 := scrape(t, srv.HTTPAddr())

	body, _ := json.Marshal(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: time.Hour})
	pr, pw := io.Pipe()
	go func() {
		pw.Write(body)
		pw.Close()
	}()
	// A pipe reader has no known length, forcing chunked transfer.
	req, err := http.NewRequest(http.MethodPost, "http://"+srv.HTTPAddr()+"/v1/uptime", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	m1 := scrape(t, srv.HTTPAddr())
	if d := m1[key] - m0[key]; d != float64(len(body)) {
		t.Fatalf("payload bytes delta = %v, want %d (chunked body must be counted)", d, len(body))
	}
}

// TestErrorResponsesReuseConnection regresses the drain-before-close
// fix: repeated 5xx responses must ride one keep-alive connection, not
// dial per attempt.
func TestErrorResponsesReuseConnection(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var dials atomic.Int64
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}
	cli, err := NewClient("r-ka", "US", srv.UDPAddr(), srv.HTTPAddr(),
		WithTransport(tr), WithSpool(fastSpool(spool.Config{})))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Every upload now 503s (with an error body the client must drain).
	// The request counter is process-global, so judge by delta.
	attemptsKey := `natpeek_http_requests_total{endpoint="/v1/batch"}`
	before := scrape(t, srv.HTTPAddr())[attemptsKey]
	srv.SetFaultInjection(1.0, 5)
	cli.UptimeReport(dataset.UptimeReport{RouterID: "r-ka", ReportedAt: t0, Uptime: time.Hour})
	waitFor(t, func() bool {
		return scrape(t, srv.HTTPAddr())[attemptsKey]-before >= failedAttemptsWanted
	})
	if got := dials.Load(); got > 2 {
		t.Fatalf("dials = %d across %v+ failed attempts; error bodies not drained, keep-alive lost",
			got, failedAttemptsWanted)
	}
	srv.SetFaultInjection(0, 0)
	flush(t, cli)
	if got := len(srv.Store().Uptime); got != 1 {
		t.Fatalf("uptime rows = %d, want 1", got)
	}
}

// failedAttemptsWanted is how many 503'd batch POSTs the keep-alive
// test waits for before judging connection reuse.
const failedAttemptsWanted = 6
