package collector

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"natpeek/internal/dataset"
)

// FuzzRequestDecode fuzzes the upload API's decode surface: every /v1/*
// endpoint's payload decoder plus the /v1/batch envelope, applied to a
// throwaway store — the exact code path a hostile POST body reaches.
// Properties:
//
//  1. No decoder panics, and an accepted payload applies cleanly.
//  2. decode∘encode = id for every typed endpoint payload: a decoded
//     value re-encoded by the client's encoder (encoding/json, the same
//     one collector.Client uses) decodes back to the same encoding.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"RouterID":"bismark-US-001","ReportedAt":"2013-04-01T00:00:00Z","Uptime":3600000000000}`))
	f.Add([]byte(`{"RouterID":"bismark-IN-002","MeasuredAt":"2013-04-02T12:00:00Z","UpBps":450000,"DownBps":8000000}`))
	f.Add([]byte(`{"count":{"RouterID":"r","At":"2013-03-06T00:00:00Z","Wired":1,"W24":2,"W5":0},` +
		`"sightings":[{"RouterID":"r","At":"2013-03-06T00:00:00Z","Device":"00:1c:b3:a1:b2:c3","Kind":1}]}`))
	f.Add([]byte(`[{"RouterID":"r","At":"2012-11-01T00:10:00Z","Band":"2.4GHz","Channel":11,"VisibleAPs":7,"Clients":2}]`))
	f.Add([]byte(`[{"RouterID":"r","Device":"00:1c:b3:a1:b2:c3","Domain":"anon-0123456789abcdef","Proto":"tcp",` +
		`"First":"2013-04-01T10:00:00Z","Last":"2013-04-01T10:05:00Z","UpBytes":1000,"DownBytes":90000,` +
		`"UpPkts":10,"DownPkts":70,"Conns":1}]`))
	f.Add([]byte(`[{"RouterID":"r","Minute":"2013-04-01T10:00:00Z","Dir":"up","PeakBps":1048576,"TotalBytes":500000}]`))
	f.Add([]byte(`{"router_id":"bismark-US-001","country":"US"}`))
	f.Add([]byte(`[{"endpoint":"/v1/uptime","key":"k1","body":{"RouterID":"r"}},` +
		`{"endpoint":"/v1/nope","key":"k2","body":{}},{"endpoint":"/v1/wifi","key":"k3","body":"notanarray"}]`))
	f.Add([]byte(`null`))

	appliers := newAppliers()
	var endpoints []string
	for ep := range appliers {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direct endpoint decode: the body is offered to every endpoint,
		// as a mis-routed client could.
		for _, ep := range endpoints {
			if _, apply, err := appliers[ep](data); err == nil {
				apply(dataset.NewStore())
			}
		}
		// Batch envelope: items route to per-endpoint decoders; unknown
		// endpoints and undecodable bodies must be skipped, not fatal.
		var items []BatchItem
		if json.Unmarshal(data, &items) == nil {
			st := dataset.NewStore()
			for _, it := range items {
				af := appliers[it.Endpoint]
				if af == nil {
					continue
				}
				if _, apply, err := af(it.Body); err == nil {
					apply(st)
				}
			}
		}
		// Round-trip every typed payload the client can encode.
		roundTrip[dataset.UptimeReport](t, data)
		roundTrip[dataset.CapacityMeasure](t, data)
		roundTrip[censusUpload](t, data)
		roundTrip[[]dataset.WiFiScan](t, data)
		roundTrip[[]dataset.FlowRecord](t, data)
		roundTrip[[]dataset.ThroughputSample](t, data)
		roundTrip[registerReq](t, data)
		roundTrip[[]BatchItem](t, data)
	})
}

// roundTrip asserts that once data decodes as T, encode→decode→encode
// is stable: the server always accepts what the client encodes.
func roundTrip[T any](t *testing.T, data []byte) {
	t.Helper()
	var v T
	if json.Unmarshal(data, &v) != nil {
		return
	}
	b2, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("%T: decoded value does not re-encode: %v", v, err)
	}
	var v2 T
	if err := json.Unmarshal(b2, &v2); err != nil {
		t.Fatalf("%T: own encoding rejected on re-decode: %v\n b2=%s", v, err, b2)
	}
	b3, err := json.Marshal(v2)
	if err != nil {
		t.Fatalf("%T: re-encode failed: %v", v, err)
	}
	if !bytes.Equal(b2, b3) {
		t.Fatalf("%T: encode not stable:\n b2=%s\n b3=%s", v, b2, b3)
	}
}
