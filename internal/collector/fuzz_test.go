package collector

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/wire"
)

// FuzzRequestDecode fuzzes the upload API's decode surface: every /v1/*
// endpoint's payload decoder plus the /v1/batch envelope, applied to a
// throwaway store — the exact code path a hostile POST body reaches.
// Properties:
//
//  1. No decoder panics, and an accepted payload applies cleanly.
//  2. decode∘encode = id for every typed endpoint payload: a decoded
//     value re-encoded by the client's encoder (encoding/json, the same
//     one collector.Client uses) decodes back to the same encoding.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"RouterID":"bismark-US-001","ReportedAt":"2013-04-01T00:00:00Z","Uptime":3600000000000}`))
	f.Add([]byte(`{"RouterID":"bismark-IN-002","MeasuredAt":"2013-04-02T12:00:00Z","UpBps":450000,"DownBps":8000000}`))
	f.Add([]byte(`{"count":{"RouterID":"r","At":"2013-03-06T00:00:00Z","Wired":1,"W24":2,"W5":0},` +
		`"sightings":[{"RouterID":"r","At":"2013-03-06T00:00:00Z","Device":"00:1c:b3:a1:b2:c3","Kind":1}]}`))
	f.Add([]byte(`[{"RouterID":"r","At":"2012-11-01T00:10:00Z","Band":"2.4GHz","Channel":11,"VisibleAPs":7,"Clients":2}]`))
	f.Add([]byte(`[{"RouterID":"r","Device":"00:1c:b3:a1:b2:c3","Domain":"anon-0123456789abcdef","Proto":"tcp",` +
		`"First":"2013-04-01T10:00:00Z","Last":"2013-04-01T10:05:00Z","UpBytes":1000,"DownBytes":90000,` +
		`"UpPkts":10,"DownPkts":70,"Conns":1}]`))
	f.Add([]byte(`[{"RouterID":"r","Minute":"2013-04-01T10:00:00Z","Dir":"up","PeakBps":1048576,"TotalBytes":500000}]`))
	f.Add([]byte(`{"router_id":"bismark-US-001","country":"US"}`))
	f.Add([]byte(`[{"endpoint":"/v1/uptime","key":"k1","body":{"RouterID":"r"}},` +
		`{"endpoint":"/v1/nope","key":"k2","body":{}},{"endpoint":"/v1/wifi","key":"k3","body":"notanarray"}]`))
	f.Add([]byte(`null`))

	appliers := newAppliers()
	var endpoints []string
	for ep := range appliers {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direct endpoint decode: the body is offered to every endpoint,
		// as a mis-routed client could.
		for _, ep := range endpoints {
			if _, apply, err := appliers[ep](data); err == nil {
				apply(dataset.NewStore())
			}
		}
		// Batch envelope: items route to per-endpoint decoders; unknown
		// endpoints and undecodable bodies must be skipped, not fatal.
		var items []BatchItem
		if json.Unmarshal(data, &items) == nil {
			st := dataset.NewStore()
			for _, it := range items {
				af := appliers[it.Endpoint]
				if af == nil {
					continue
				}
				if _, apply, err := af(it.Body); err == nil {
					apply(st)
				}
			}
		}
		// Round-trip every typed payload the client can encode.
		roundTrip[dataset.UptimeReport](t, data)
		roundTrip[dataset.CapacityMeasure](t, data)
		roundTrip[censusUpload](t, data)
		roundTrip[[]dataset.WiFiScan](t, data)
		roundTrip[[]dataset.FlowRecord](t, data)
		roundTrip[[]dataset.ThroughputSample](t, data)
		roundTrip[registerReq](t, data)
		roundTrip[[]BatchItem](t, data)
	})
}

// FuzzBatchTranscode cross-checks the two /v1/batch encodings: any JSON
// batch the server accepts, transcoded to the binary wire format the
// client's encoder would produce, must yield the same BatchResult and
// the same store rows when replayed against a fresh server. Divergence
// means a gateway switching wire formats would silently change what the
// dataset records.
func FuzzBatchTranscode(f *testing.F) {
	f.Add([]byte(`[{"endpoint":"/v1/uptime","key":"k1","body":{"RouterID":"r","ReportedAt":"2013-04-01T00:00:00Z","Uptime":3600000000000}}]`))
	f.Add([]byte(`[{"endpoint":"/v1/capacity","key":"","body":{"RouterID":"r","MeasuredAt":"2013-04-02T12:00:00+05:30","UpBps":450000,"DownBps":8000000}}]`))
	f.Add([]byte(`[{"endpoint":"/v1/devices","key":"c1","body":{"count":{"RouterID":"r","At":"2013-03-06T00:00:00Z","Wired":1,"W24":2,"W5":0},` +
		`"sightings":[{"RouterID":"r","At":"2013-03-06T00:00:00Z","Device":"00:1c:b3:a1:b2:c3","Kind":1}]}}]`))
	f.Add([]byte(`[{"endpoint":"/v1/wifi","key":"w","body":[{"RouterID":"r","At":"2012-11-01T00:10:00Z","Band":"2.4GHz","Channel":11,"VisibleAPs":7,"Clients":2}]},` +
		`{"endpoint":"/v1/wifi","key":"w","body":[]}]`))
	f.Add([]byte(`[{"endpoint":"/v1/traffic/flows","key":"f","body":[{"RouterID":"r","Device":"00:1c:b3:a1:b2:c3","Domain":"anon-0123","Proto":"tcp",` +
		`"First":"2013-04-01T10:00:00Z","Last":"2013-04-01T10:05:00Z","UpBytes":1000,"DownBytes":90000,"UpPkts":10,"DownPkts":70,"Conns":1}]}]`))
	f.Add([]byte(`[{"endpoint":"/v1/traffic/throughput","key":"t","body":[{"RouterID":"r","Minute":"2013-04-01T10:00:00Z","Dir":"up","PeakBps":1048576,"TotalBytes":500000}]}]`))
	f.Add([]byte(`[{"endpoint":"/v1/uptime","key":"old","body":{"RouterID":"r","ReportedAt":"1899-12-31T23:59:59Z"}}]`))
	f.Add([]byte(`[{"endpoint":"/v1/nope","key":"k2","body":{}},{"endpoint":"/v1/wifi","key":"k3","body":"notanarray"}]`))
	f.Add([]byte(`[{"endpoint":"/v1/uptime","key":"z","body":null}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4<<10 {
			return
		}
		var items []BatchItem
		if json.Unmarshal(data, &items) != nil || len(items) > 32 {
			return
		}
		// Re-marshal so both encodings start from the same canonical
		// envelope (no trailing bytes, no duplicate-field ambiguity).
		jsonBody, err := json.Marshal(items)
		if err != nil {
			return
		}
		wireItems := make([]wire.Item, len(items))
		for i, it := range items {
			wireItems[i] = wire.Item{Endpoint: it.Endpoint, Key: it.Key,
				Payload: wire.PayloadFromJSON(it.Endpoint, it.Body)}
		}
		binBody := wire.AppendBatch(nil, wireItems)

		jsonRes, jsonStore := replayBatch(t, "application/json", jsonBody)
		binRes, binStore := replayBatch(t, wire.ContentTypeBinary, binBody)
		if jsonRes != binRes {
			t.Fatalf("batch results diverge:\n json   %s\n binary %s", jsonRes, binRes)
		}
		if jsonStore != binStore {
			t.Fatalf("stores diverge:\n json   %s\n binary %s", jsonStore, binStore)
		}
	})
}

// replayBatch posts one batch body to a fresh server and returns the
// canonicalised BatchResult and store contents.
func replayBatch(t *testing.T, contentType string, body []byte) (string, string) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	rec := httptest.NewRecorder()
	srv.handleBatch(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s batch: status %d: %s", contentType, rec.Code, rec.Body)
	}
	st := srv.Store()
	rows, err := json.Marshal([]any{st.Uptime, st.Capacity, st.Counts, st.Sightings, st.WiFi, st.Flows, st.Throughput})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Body.String(), canonTimes(t, rows)
}

// canonTimes rewrites every RFC 3339 string in a JSON document to UTC.
// The binary codec carries instants (UnixNano), so a zoned timestamp
// decodes as the same instant in UTC — a representation change, not a
// data change — and a byte compare must not flag it.
func canonTimes(t *testing.T, doc []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		t.Fatalf("canonTimes: %v", err)
	}
	var walk func(any) any
	walk = func(n any) any {
		switch x := n.(type) {
		case map[string]any:
			for k, vv := range x {
				x[k] = walk(vv)
			}
			return x
		case []any:
			for i := range x {
				x[i] = walk(x[i])
			}
			return x
		case string:
			if ts, err := time.Parse(time.RFC3339Nano, x); err == nil {
				return ts.UTC().Format(time.RFC3339Nano)
			}
			return x
		default:
			return n
		}
	}
	out, err := json.Marshal(walk(v))
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// roundTrip asserts that once data decodes as T, encode→decode→encode
// is stable: the server always accepts what the client encodes.
func roundTrip[T any](t *testing.T, data []byte) {
	t.Helper()
	var v T
	if json.Unmarshal(data, &v) != nil {
		return
	}
	b2, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("%T: decoded value does not re-encode: %v", v, err)
	}
	var v2 T
	if err := json.Unmarshal(b2, &v2); err != nil {
		t.Fatalf("%T: own encoding rejected on re-decode: %v\n b2=%s", v, err, b2)
	}
	b3, err := json.Marshal(v2)
	if err != nil {
		t.Fatalf("%T: re-encode failed: %v", v, err)
	}
	if !bytes.Equal(b2, b3) {
		t.Fatalf("%T: encode not stable:\n b2=%s\n b3=%s", v, b2, b3)
	}
}
