package collector

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"natpeek/internal/dataset"
)

// scrape fetches and minimally parses /metrics: every non-comment line
// must be `series value`, which is what a Prometheus scraper requires.
func scrape(t *testing.T, httpAddr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStatsEndpointRowCounts(t *testing.T) {
	srv, cli := startPair(t)
	cli.UptimeReport(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: time.Hour})
	cli.WiFiScan([]dataset.WiFiScan{{RouterID: "router-1", At: t0}})
	flush(t, cli)

	resp, err := http.Get("http://" + srv.HTTPAddr() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Routers != 1 || st.Uptime != 1 || st.WiFi != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv, cli := startPair(t)
	cli.UptimeReport(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0})
	flush(t, cli)

	resp, err := http.Get("http://" + srv.HTTPAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", h.UptimeSeconds)
	}
	if h.HeartbeatAddr != srv.UDPAddr() || h.HTTPAddr != srv.HTTPAddr() {
		t.Fatalf("addrs = %+v", h)
	}
	if h.Rows.Uptime != 1 || h.Rows.Routers != 1 {
		t.Fatalf("rows = %+v", h.Rows)
	}
}

// TestMetricsExposition drives an upload burst and checks that the
// counters appear on /metrics in parseable form and move monotonically
// under a second burst.
func TestMetricsExposition(t *testing.T) {
	srv, cli := startPair(t)

	burst := func() {
		for i := 0; i < 5; i++ {
			cli.Heartbeat("router-1", time.Now())
			cli.UptimeReport(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0})
			cli.WiFiScan([]dataset.WiFiScan{{RouterID: "router-1", At: t0}})
		}
		flush(t, cli)
	}
	before := srv.Store().Heartbeats.Count("router-1")
	burst()
	waitFor(t, func() bool { return srv.Store().Heartbeats.Count("router-1") >= before+5 })

	// Uploads ride the spooled batch path, so the HTTP-level series live
	// on /v1/batch while per-logical-endpoint accounting moves to the
	// spool and batch-item counters.
	m1 := scrape(t, srv.HTTPAddr())
	checks := []string{
		"natpeek_heartbeats_received_total",
		`natpeek_http_requests_total{endpoint="/v1/batch"}`,
		`natpeek_http_payload_bytes_total{endpoint="/v1/batch"}`,
		`natpeek_http_request_seconds_count{endpoint="/v1/batch"}`,
		`natpeek_collector_batch_items_total{endpoint="/v1/uptime"}`,
		`natpeek_collector_batch_items_total{endpoint="/v1/wifi"}`,
		`natpeek_spool_enqueued_total{endpoint="/v1/uptime"}`,
		`natpeek_spool_sent_total{endpoint="/v1/uptime"}`,
		"natpeek_spool_batches_total",
		`natpeek_client_uploads_total{endpoint="/v1/uptime"}`,
		`natpeek_client_uploads_total{endpoint="heartbeat"}`,
	}
	for _, k := range checks {
		if m1[k] <= 0 {
			t.Errorf("%s = %v, want > 0", k, m1[k])
		}
	}
	if _, ok := m1[`natpeek_heartbeat_last_seen_seconds{router="router-1"}`]; !ok {
		t.Error("per-router last-seen gauge missing")
	}

	before = srv.Store().Heartbeats.Count("router-1")
	burst()
	waitFor(t, func() bool { return srv.Store().Heartbeats.Count("router-1") >= before+5 })
	m2 := scrape(t, srv.HTTPAddr())
	for _, k := range checks {
		if m2[k] < m1[k] {
			t.Errorf("%s went backwards: %v -> %v", k, m1[k], m2[k])
		}
	}
	if m2[`natpeek_collector_batch_items_total{endpoint="/v1/uptime"}`] <
		m1[`natpeek_collector_batch_items_total{endpoint="/v1/uptime"}`]+5 {
		t.Errorf("uptime item counter did not advance by the burst size: %v -> %v",
			m1[`natpeek_collector_batch_items_total{endpoint="/v1/uptime"}`],
			m2[`natpeek_collector_batch_items_total{endpoint="/v1/uptime"}`])
	}
}

func TestMalformedHeartbeatAndDecodeErrorCounted(t *testing.T) {
	srv, _ := startPair(t)
	m0 := scrape(t, srv.HTTPAddr())

	// Undecodable JSON on an upload endpoint.
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/uptime", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("decode error status = %d", resp.StatusCode)
	}

	// Raw garbage datagram on the heartbeat port.
	udp, err := net.Dial("udp", srv.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	udp.Write([]byte("definitely not a heartbeat"))
	udp.Close()

	waitFor(t, func() bool { return srv.hbRx.BadDatagrams() >= 1 })
	m1 := scrape(t, srv.HTTPAddr())
	if m1["natpeek_heartbeats_malformed_total"] < m0["natpeek_heartbeats_malformed_total"]+1 {
		t.Errorf("malformed counter: %v -> %v",
			m0["natpeek_heartbeats_malformed_total"], m1["natpeek_heartbeats_malformed_total"])
	}
	key := `natpeek_http_decode_errors_total{endpoint="/v1/uptime"}`
	if m1[key] < m0[key]+1 {
		t.Errorf("decode error counter: %v -> %v", m0[key], m1[key])
	}
}

// TestConcurrentHeartbeatsAndUploads exercises the heartbeat receiver,
// the upload handlers, and the shared counters from many goroutines at
// once; run with -race it proves the telemetry layer is data-race free
// on the serving path.
func TestConcurrentHeartbeatsAndUploads(t *testing.T) {
	srv, _ := startPair(t)

	const routers, perRouter = 8, 20
	var wg sync.WaitGroup
	for i := 0; i < routers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("rt-%d", i)
			cli, err := NewClient(id, "US", srv.UDPAddr(), srv.HTTPAddr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for j := 0; j < perRouter; j++ {
				cli.Heartbeat(id, time.Now())
				cli.UptimeReport(dataset.UptimeReport{RouterID: id, ReportedAt: t0})
				cli.WiFiScan([]dataset.WiFiScan{{RouterID: id, At: t0}})
			}
			flush(t, cli)
		}(i)
	}
	// Scrape concurrently with the upload storm.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			scrape(t, srv.HTTPAddr())
		}
	}()
	wg.Wait()
	<-done

	st := srv.Store()
	if got := len(st.Uptime); got != routers*perRouter {
		t.Fatalf("uptime rows = %d, want %d", got, routers*perRouter)
	}
	waitFor(t, func() bool {
		total := 0
		for _, id := range st.Heartbeats.Routers() {
			total += st.Heartbeats.Count(id)
		}
		return total >= routers*perRouter
	})
}

func TestCloseGracefulAndIdempotent(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if d := time.Since(start); d > closeTimeout {
		t.Fatalf("idle close took %v", d)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := http.Get("http://" + srv.HTTPAddr() + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}

func TestClientErrSurfacesFailures(t *testing.T) {
	srv, cli := startPair(t)
	if cli.Err() != nil {
		t.Fatalf("unexpected initial error: %v", cli.Err())
	}
	srv.Close()
	cli.UptimeReport(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0})
	// The spool's drainer surfaces the failure asynchronously (and keeps
	// the row queued for retry).
	waitFor(t, func() bool { return cli.Err() != nil })
	if cli.SpoolDepth() == 0 {
		t.Fatal("failed upload was not retained for retry")
	}
}
