package collector

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/mac"
)

var t0 = time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)

func startPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := NewClient("router-1", "US", srv.UDPAddr(), srv.HTTPAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// flush drains cli's upload spool so the rows it produced are visible in
// the server's store (uploads are asynchronous by design).
func flush(t *testing.T, cli *Client) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cli.Flush(ctx); err != nil {
		// t.Error, not t.Fatal: flush is also used from helper goroutines.
		t.Error(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRegisterOnConnect(t *testing.T) {
	srv, _ := startPair(t)
	if srv.Store().RouterCountry["router-1"] != "US" {
		t.Fatalf("roster = %v", srv.Store().RouterCountry)
	}
}

func TestHeartbeatOverUDP(t *testing.T) {
	srv, cli := startPair(t)
	for i := 0; i < 3; i++ {
		cli.Heartbeat("router-1", time.Now())
	}
	waitFor(t, func() bool { return srv.Store().Heartbeats.Count("router-1") >= 3 })
}

func TestUploadsLandInStore(t *testing.T) {
	srv, cli := startPair(t)
	cli.UptimeReport(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: time.Hour})
	cli.CapacityMeasure(dataset.CapacityMeasure{RouterID: "router-1", MeasuredAt: t0, UpBps: 1e6, DownBps: 16e6})
	cli.DeviceCensus(
		dataset.DeviceCount{RouterID: "router-1", At: t0, Wired: 1, W24: 3, W5: 1},
		[]dataset.DeviceSighting{{RouterID: "router-1", At: t0, Device: mac.MustParse("a4:b1:97:01:02:03"), Kind: dataset.Wireless24}},
	)
	cli.WiFiScan([]dataset.WiFiScan{{RouterID: "router-1", At: t0, Band: "2.4GHz", Channel: 11, VisibleAPs: 17}})
	cli.TrafficFlows([]dataset.FlowRecord{{
		RouterID: "router-1", Device: mac.MustParse("a4:b1:97:01:02:03"),
		Domain: "netflix.com", Proto: "tcp", First: t0, Last: t0.Add(time.Hour),
		UpBytes: 100, DownBytes: 1e6,
	}})
	cli.TrafficThroughput([]dataset.ThroughputSample{{
		RouterID: "router-1", Minute: t0, Dir: "down", PeakBps: 12e6, TotalBytes: 9e7,
	}})
	flush(t, cli)

	st := srv.Store()
	if len(st.Uptime) != 1 || st.Uptime[0].Uptime != time.Hour {
		t.Fatalf("uptime %+v", st.Uptime)
	}
	if len(st.Capacity) != 1 || st.Capacity[0].DownBps != 16e6 {
		t.Fatalf("capacity %+v", st.Capacity)
	}
	if len(st.Counts) != 1 || st.Counts[0].Total() != 5 {
		t.Fatalf("counts %+v", st.Counts)
	}
	if len(st.Sightings) != 1 || st.Sightings[0].Device != mac.MustParse("a4:b1:97:01:02:03") {
		t.Fatalf("sightings %+v", st.Sightings)
	}
	if len(st.WiFi) != 1 || st.WiFi[0].VisibleAPs != 17 {
		t.Fatalf("wifi %+v", st.WiFi)
	}
	if len(st.Flows) != 1 || st.Flows[0].Domain != "netflix.com" {
		t.Fatalf("flows %+v", st.Flows)
	}
	if len(st.Throughput) != 1 || st.Throughput[0].PeakBps != 12e6 {
		t.Fatalf("throughput %+v", st.Throughput)
	}
}

func TestEmptyTrafficUploadsSkipped(t *testing.T) {
	srv, cli := startPair(t)
	cli.TrafficFlows(nil)
	cli.TrafficThroughput(nil)
	flush(t, cli)
	if len(srv.Store().Flows) != 0 || len(srv.Store().Throughput) != 0 {
		t.Fatal("empty uploads created rows")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, cli := startPair(t)
	cli.UptimeReport(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0})
	flush(t, cli)
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Routers != 1 || st.Uptime != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBadUploadsRejected(t *testing.T) {
	srv, _ := startPair(t)
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/uptime", "application/json",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Register without an ID.
	resp, err = http.Post("http://"+srv.HTTPAddr()+"/v1/register", "application/json",
		strings.NewReader(`{"country":"US"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
}

func TestMACSurvivesJSONRoundTrip(t *testing.T) {
	srv, cli := startPair(t)
	hw := mac.MustParse("b0:a7:37:12:34:56")
	cli.DeviceCensus(dataset.DeviceCount{RouterID: "router-1", At: t0},
		[]dataset.DeviceSighting{{RouterID: "router-1", At: t0, Device: hw, Kind: dataset.Wired}})
	flush(t, cli)
	if srv.Store().Sightings[0].Device != hw {
		t.Fatalf("MAC mangled: %v", srv.Store().Sightings[0].Device)
	}
}
