package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"natpeek/internal/trace"
	"natpeek/internal/wire"
)

// benchBatchBody builds one /v1/batch payload: `items` uptime uploads
// spread across `routers` routers, with empty idempotency keys so the
// same body can be replayed every iteration (an empty key is always
// fresh — dedupe applies only to keyed uploads).
func benchBatchBody(b *testing.B, routers, items int) []byte {
	b.Helper()
	batch := make([]BatchItem, items)
	for i := range batch {
		body, err := json.Marshal(uptimeRow(fmt.Sprintf("bench-%03d", i%routers), time.Duration(i)*time.Second))
		if err != nil {
			b.Fatal(err)
		}
		batch[i] = BatchItem{Endpoint: "/v1/uptime", Body: body}
	}
	body, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func uptimeRow(router string, uptime time.Duration) any {
	return map[string]any{"RouterID": router, "ReportedAt": t0, "Uptime": uptime}
}

// BenchmarkIngestBatch measures the collector's ingest path — batch
// envelope decode, per-item payload decode, and sharded store apply —
// without sockets. This is the per-request server cost a fleet's POSTs
// pay; BENCH_*.json tracks it as rows/s.
func BenchmarkIngestBatch(b *testing.B) {
	const routers, items = 16, 32
	for _, g := range []int{1, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			body := benchBatchBody(b, routers, items)

			var wg sync.WaitGroup
			per := b.N / g
			b.ReportAllocs()
			b.ResetTimer()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
						rec := httptest.NewRecorder()
						srv.handleBatch(rec, req)
						if rec.Code != http.StatusOK {
							b.Errorf("status %d", rec.Code)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)*items/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkIngestBatchWire compares the two batch encodings on the same
// logical payload — the headline number for the binary wire format.
// format=json decodes the envelope with encoding/json and each item body
// per endpoint; format=binary runs the pooled wire.Decoder with in-place
// row decoding. BENCH_*.json derives binary_ingest_speedup (rows/s) and
// binary_ingest_alloc_ratio (allocs/batch) from the pair.
func BenchmarkIngestBatchWire(b *testing.B) {
	const routers, items = 16, 32
	jsonBody := benchBatchBody(b, routers, items)
	var batch []BatchItem
	if err := json.Unmarshal(jsonBody, &batch); err != nil {
		b.Fatal(err)
	}
	wireItems := make([]wire.Item, len(batch))
	for i, it := range batch {
		wireItems[i] = wire.Item{Endpoint: it.Endpoint, Key: it.Key,
			Payload: wire.PayloadFromJSON(it.Endpoint, it.Body)}
		if wireItems[i].Payload.Kind == wire.KindRaw {
			b.Fatalf("item %d fell back to raw JSON; benchmark would not measure the typed path", i)
		}
	}
	binBody := wire.AppendBatch(nil, wireItems)

	for _, bc := range []struct {
		format string
		ct     string
		body   []byte
	}{
		{"json", "application/json", jsonBody},
		{"binary", wire.ContentTypeBinary, binBody},
	} {
		b.Run("format="+bc.format, func(b *testing.B) {
			srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(bc.body))
				req.Header.Set("Content-Type", bc.ct)
				rec := httptest.NewRecorder()
				srv.handleBatch(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d", rec.Code)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*items/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// benchNoncePlaceholder is the fixed-width run-counter slot inside every
// benchmark idempotency key; patching it per iteration makes each batch
// fresh (real store applies, no dedupe short-circuit) without
// re-marshaling the payload inside the timed loop.
const benchNoncePlaceholder = "n0000000000"

// benchTracedBatchBody builds a keyed /v1/batch payload whose items
// carry wire spans, the shape a spooling gateway actually sends. It
// returns the body plus the byte offsets of every nonce placeholder.
func benchTracedBatchBody(b *testing.B, routers, items int) ([]byte, []int) {
	b.Helper()
	batch := make([]BatchItem, items)
	for i := range batch {
		router := fmt.Sprintf("bench-%03d", i%routers)
		body, err := json.Marshal(uptimeRow(router, time.Duration(i)*time.Second))
		if err != nil {
			b.Fatal(err)
		}
		// Span times track the wall clock: a spool.queued span stamped in
		// 2013 would read as a years-slow trace and force the tail sampler
		// to keep every item, turning the benchmark into the 100%-keep
		// worst case instead of the shipped steady state.
		qs := time.Now().Add(-time.Millisecond)
		key := fmt.Sprintf("%s:%s:%d", router, benchNoncePlaceholder, i)
		batch[i] = BatchItem{Endpoint: "/v1/uptime", Key: key, Body: body,
			Trace: &trace.Wire{TraceID: trace.IDFromKey(key), Router: router,
				Spans: []trace.Span{{Name: "spool.queued", Start: qs, End: qs.Add(time.Millisecond)}}}}
	}
	body, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}
	var offs []int
	for at := 0; ; {
		i := bytes.Index(body[at:], []byte(benchNoncePlaceholder))
		if i < 0 {
			break
		}
		offs = append(offs, at+i+1) // +1: skip the "n", patch the digits
		at += i + len(benchNoncePlaceholder)
	}
	if len(offs) != items {
		b.Fatalf("found %d nonce slots, want %d", len(offs), items)
	}
	return body, offs
}

// BenchmarkIngestBatchTraced measures what end-to-end tracing costs the
// ingest hot path at the shipped defaults (5% tail sampling). Both
// variants decode the same keyed payload with embedded wire spans and
// apply fresh rows every iteration; only the tracing switch differs, so
// the delta isolates ID derivation, the pre-sampling decision, and the
// sampled minority's trace assembly. The overhead budget is <5%. The
// slow threshold is raised past the benchmark's own run time so the
// synthetic span ages never read as "slow" and force a 100% keep rate.
func BenchmarkIngestBatchTraced(b *testing.B) {
	const routers, items = 16, 32
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("tracing=%v", on), func(b *testing.B) {
			defer trace.SetEnabled(true)
			trace.SetEnabled(on)
			srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			srv.SetTraceSampling(0.05, time.Hour)
			body, offs := benchTracedBatchBody(b, routers, items)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var digits [10]byte
				for d, v := len(digits)-1, i; d >= 0; d, v = d-1, v/10 {
					digits[d] = byte('0' + v%10)
				}
				for _, off := range offs {
					copy(body[off:off+len(digits)], digits[:])
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.handleBatch(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d", rec.Code)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*items/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
