package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// benchBatchBody builds one /v1/batch payload: `items` uptime uploads
// spread across `routers` routers, with empty idempotency keys so the
// same body can be replayed every iteration (an empty key is always
// fresh — dedupe applies only to keyed uploads).
func benchBatchBody(b *testing.B, routers, items int) []byte {
	b.Helper()
	batch := make([]BatchItem, items)
	for i := range batch {
		body, err := json.Marshal(uptimeRow(fmt.Sprintf("bench-%03d", i%routers), time.Duration(i)*time.Second))
		if err != nil {
			b.Fatal(err)
		}
		batch[i] = BatchItem{Endpoint: "/v1/uptime", Body: body}
	}
	body, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func uptimeRow(router string, uptime time.Duration) any {
	return map[string]any{"RouterID": router, "ReportedAt": t0, "Uptime": uptime}
}

// BenchmarkIngestBatch measures the collector's ingest path — batch
// envelope decode, per-item payload decode, and sharded store apply —
// without sockets. This is the per-request server cost a fleet's POSTs
// pay; BENCH_*.json tracks it as rows/s.
func BenchmarkIngestBatch(b *testing.B) {
	const routers, items = 16, 32
	for _, g := range []int{1, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			body := benchBatchBody(b, routers, items)

			var wg sync.WaitGroup
			per := b.N / g
			b.ReportAllocs()
			b.ResetTimer()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
						rec := httptest.NewRecorder()
						srv.handleBatch(rec, req)
						if rec.Code != http.StatusOK {
							b.Errorf("status %d", rec.Code)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)*items/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
