// Binary batch ingest: the server half of the NPB1 wire format
// (internal/wire) plus the pooled request-body plumbing both decode
// paths share. The hot loop here is deliberately allocation-free: the
// request body lands in a pooled buffer sized from Content-Length, items
// decode in place through a pooled wire.Decoder whose scratch rows the
// store appends copy under the shard lock, and the per-item apply runs
// through one method value bound per request — no closure and no
// interface boxing per item.
package collector

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/trace"
	"natpeek/internal/wire"
)

// bodyBuf is a pooled request-body buffer. Pooling these (instead of
// io.ReadAll per request) removes the largest per-request allocation on
// the ingest path; buffers keep their high-water capacity across
// requests.
type bodyBuf struct{ b []byte }

var bodyPool = sync.Pool{New: func() any { return new(bodyBuf) }}

func putBody(bb *bodyBuf) { bodyPool.Put(bb) }

// readAllInto is io.ReadAll into a reused buffer, growing dst from the
// size hint (Content-Length) so a right-sized request reads without any
// growth copies.
func readAllInto(dst []byte, r io.Reader, sizeHint int64) ([]byte, error) {
	// The hint is attacker-controlled (a Content-Length header nobody
	// has read a byte against yet): clamp it to the upload cap before it
	// becomes allocation capacity, so a forged multi-GiB header cannot
	// drive a huge make() that MaxBytesReader would never let fill.
	if sizeHint > maxUploadBytes+1 {
		sizeHint = maxUploadBytes + 1
	}
	if n := int(sizeHint); n > 0 && int64(n) == sizeHint && cap(dst) < n+1 {
		dst = append(make([]byte, 0, n+1), dst...)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// readBody reads a request body into a pooled buffer, transparently
// decompressing Content-Encoding: gzip. On failure it writes the error
// response itself and returns nil: oversized bodies (the MaxBytesReader
// bound, or a gzip bomb expanding past it) get a 413 naming the limit
// and count under the oversized metric — not decode_errors, which would
// bury a misconfigured client in the corruption noise. The caller owns
// the returned buffer and must putBody it.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, endpoint string) *bodyBuf {
	bb := bodyPool.Get().(*bodyBuf)
	var err error
	bb.b, err = readAllInto(bb.b[:0], r.Body, r.ContentLength)
	if err == nil && r.Header.Get("Content-Encoding") == "gzip" {
		bb, err = s.gunzipBody(bb)
	}
	if err != nil {
		putBody(bb)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.oversized(w, endpoint, mbe.Limit)
			return nil
		}
		s.mDecodeErrs.With(endpoint).Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil
	}
	return bb
}

// gunzipBody swaps a compressed pooled buffer for a decompressed one,
// bounding the expansion at maxUploadBytes (a *http.MaxBytesError, so
// readBody's caller sees a 413 exactly like an oversized plain body).
func (s *Server) gunzipBody(bb *bodyBuf) (*bodyBuf, error) {
	zr, err := gzip.NewReader(bytes.NewReader(bb.b))
	if err != nil {
		return bb, err
	}
	out := bodyPool.Get().(*bodyBuf)
	out.b, err = readAllInto(out.b[:0], io.LimitReader(zr, maxUploadBytes+1), int64(len(bb.b))*3)
	if err == nil {
		err = zr.Close()
	}
	if err == nil && len(out.b) > maxUploadBytes {
		err = &http.MaxBytesError{Limit: maxUploadBytes}
	}
	if err != nil {
		putBody(out)
		return bb, err
	}
	putBody(bb)
	return out, nil
}

// oversized answers 413 with the limit spelled out in the body.
func (s *Server) oversized(w http.ResponseWriter, endpoint string, limit int64) {
	s.mOversized.With(endpoint).Inc()
	http.Error(w, fmt.Sprintf("request body exceeds %d-byte limit", limit),
		http.StatusRequestEntityTooLarge)
}

// batchIngest is the state one /v1/batch request threads through its
// item loop — outcome counts, assembled traces, and the envelope-decode
// timestamps every item's trace shares. It is the common core of the
// JSON and binary batch handlers, so the two paths cannot drift on
// sampling, dedupe, or failure-reporting semantics.
type batchIngest struct {
	s           *Server
	tracing     bool
	decodeStart time.Time
	decodeEnd   time.Time
	res         BatchResult
	traces      []*trace.Trace
}

// maxFailWarnings bounds per-batch server-side logging of rejected
// items; the full list still returns to the client in BatchResult.
const maxFailWarnings = 3

func (b *batchIngest) begin(s *Server, decodeStart time.Time) {
	b.s = s
	b.tracing = trace.Enabled()
	b.decodeStart = decodeStart
	b.decodeEnd = time.Now()
}

// pre makes the keep/skip sampling decision for one item before any
// trace is assembled. It returns the eager trace (pre-sampler says
// keep), or the key to build one lazily should the item's outcome turn
// out interesting.
func (b *batchIngest) pre(key string, w *trace.Wire, endpoint string) (t *trace.Trace, lazyKey string) {
	if !b.tracing || key == "" {
		return nil, ""
	}
	var wireSpans []trace.Span
	if w != nil {
		wireSpans = w.Spans
	}
	if b.s.rec.WantTraceKey(key, wireSpans, b.decodeEnd) {
		t = itemTrace(trace.IDFromKey(key), w, endpoint, b.decodeStart, b.decodeEnd)
		b.traces = append(b.traces, t)
		return t, ""
	}
	return nil, key
}

// reject records one undecodable item: the rejection counts, the
// per-item failure report the spool uses to dead-letter instead of
// retry, a bounded server-side warning, and the item's trace.
func (b *batchIngest) reject(t *trace.Trace, lazyKey string, w *trace.Wire, endpoint, key, reason string, at time.Time) {
	b.res.Rejected++
	b.res.Failed = append(b.res.Failed, BatchFailure{Endpoint: endpoint, Key: key, Reason: reason})
	if len(b.res.Failed) <= maxFailWarnings {
		b.s.log.Warn("batch item rejected", "endpoint", endpoint, "key", key, "reason", reason)
	}
	t = lazyTrace(t, lazyKey, w, endpoint, b.decodeStart, b.decodeEnd, &b.traces)
	addApply(t, at, trace.StatusRejected, reason)
}

// settle does the post-apply bookkeeping for one decodable item and
// returns its trace (possibly built lazily for a duplicate).
func (b *batchIngest) settle(applied bool, t *trace.Trace, lazyKey string, w *trace.Wire, endpoint string, applyStart time.Time) *trace.Trace {
	if applied {
		b.res.Applied++
		addApply(t, applyStart, trace.StatusOK, "")
		if t == nil && lazyKey != "" {
			b.s.rec.NoteSampledOut()
		}
		return t
	}
	b.res.Duplicates++
	t = lazyTrace(t, lazyKey, w, endpoint, b.decodeStart, b.decodeEnd, &b.traces)
	addApply(t, applyStart, trace.StatusDuplicate, "")
	return t
}

// finish flushes the batch's traces and writes the result.
func (b *batchIngest) finish(w http.ResponseWriter) {
	for _, t := range b.traces {
		b.s.rec.Finish(t)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(b.res)
}

// payloadApplier applies one decoded binary payload under its shard
// lock. One value lives per request and the apply method value is bound
// once, so the per-item cost is a pointer store — no closure allocation
// and no interface boxing per item (the decoded rows are copied by the
// store's appends while the shard lock is held, which is what makes the
// decoder's scratch reuse safe).
type payloadApplier struct{ p *wire.Payload }

func (ap *payloadApplier) apply(st *dataset.Store) {
	switch p := ap.p; p.Kind {
	case wire.KindUptime:
		st.Uptime = append(st.Uptime, p.Uptime)
	case wire.KindCapacity:
		st.Capacity = append(st.Capacity, p.Capacity)
	case wire.KindDevices:
		if p.Count != (dataset.DeviceCount{}) {
			st.Counts = append(st.Counts, p.Count)
		}
		st.Sightings = append(st.Sightings, p.Sightings...)
	case wire.KindWiFi:
		st.WiFi = append(st.WiFi, p.WiFi...)
	case wire.KindFlows:
		st.Flows = append(st.Flows, p.Flows...)
	case wire.KindThroughput:
		st.Throughput = append(st.Throughput, p.Throughput...)
	}
}

var decoderPool = sync.Pool{New: func() any { return new(wire.Decoder) }}

// handleBatchWire ingests an NPB1-encoded batch. Typed payloads skip
// JSON entirely: rows decode in place into the pooled decoder's scratch
// slices and append straight into the store. KindRaw items (unknown
// endpoints, payloads the client could not transcode) run through the
// same JSON appliers as the plain path, so accept/reject behaviour is
// identical across encodings.
//
// A mid-stream decode error fails the whole request with 400 — unlike a
// per-item decode failure, envelope corruption means nothing after the
// break can be trusted. Items applied before the break stay applied;
// the client's retry is deduplicated by its idempotency keys.
func (s *Server) handleBatchWire(w http.ResponseWriter, body []byte, decodeStart time.Time) {
	d := decoderPool.Get().(*wire.Decoder)
	defer decoderPool.Put(d)
	if err := d.Reset(body); err != nil {
		s.mDecodeErrs.With("/v1/batch").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var b batchIngest
	b.begin(s, decodeStart)
	var ap payloadApplier
	applyFn := ap.apply
	var it wire.Item
	for {
		err := d.Next(&it)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.mDecodeErrs.With("/v1/batch").Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		t, lazyKey := b.pre(it.Key, it.Trace, it.Endpoint)
		if it.Payload.Kind == wire.KindRaw {
			s.batchItemJSON(&b, BatchItem{
				Endpoint: it.Endpoint, Key: it.Key,
				Body: json.RawMessage(it.Payload.Raw), Trace: it.Trace,
			}, t, lazyKey)
			continue
		}
		applyStart := time.Now()
		s.mItems.With(it.Endpoint).Inc()
		ap.p = &it.Payload
		applied := s.ingest(it.Endpoint, it.Key, it.Payload.Router(), applyFn)
		t = b.settle(applied, t, lazyKey, it.Trace, it.Endpoint, applyStart)
		if t != nil && t.Router == "" {
			t.Router = it.Payload.Router()
		}
	}
	b.finish(w)
}

// batchItemJSON runs one JSON-bodied batch item (every item of a JSON
// batch; KindRaw items of a binary one) through its endpoint's applier.
func (s *Server) batchItemJSON(b *batchIngest, it BatchItem, t *trace.Trace, lazyKey string) {
	af := s.appliers[it.Endpoint]
	if af == nil {
		s.mDecodeErrs.With("/v1/batch").Inc()
		b.reject(t, lazyKey, it.Trace, it.Endpoint, it.Key, "unknown endpoint", b.decodeEnd)
		return
	}
	applyStart := time.Now()
	router, apply, err := af(it.Body)
	if err != nil {
		s.mDecodeErrs.With(it.Endpoint).Inc()
		b.reject(t, lazyKey, it.Trace, it.Endpoint, it.Key, decodeReason(err), applyStart)
		return
	}
	s.mItems.With(it.Endpoint).Inc()
	applied := s.ingest(it.Endpoint, it.Key, router, apply)
	t = b.settle(applied, t, lazyKey, it.Trace, it.Endpoint, applyStart)
	if t != nil && t.Router == "" {
		t.Router = router
	}
}

// decodeReason renders a decode failure for BatchResult.Failed, bounded
// so one hostile payload cannot balloon the response.
func decodeReason(err error) string {
	msg := "decode error: " + err.Error()
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return msg
}
