package collector

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/spool"
	"natpeek/internal/trace"
)

// spanNames collects the set of span names on a trace.
func spanNames(tr *trace.Trace) map[string]int {
	out := make(map[string]int)
	for _, sp := range tr.Spans {
		out[sp.Name]++
	}
	return out
}

// TestDroppedThenRetriedBatchIsOneTrace pins the tentpole acceptance
// scenario: a batch whose first delivery attempts die on the wire (spool
// blackout) must be retrievable afterwards as a SINGLE end-to-end trace
// — gateway export window, spool queueing, the failed attempts, the
// successful send, and the collector's decode/apply — because the trace
// ID is derived from the idempotency key and every redelivery joins it.
func TestDroppedThenRetriedBatchIsOneTrace(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.SetTraceSampling(0, 0) // only error/slow/throttled kept: the retried batch must qualify

	ft := spool.NewFaultTransport(nil, 0, 1)
	cli, err := NewClient("router-e2e", "US", srv.UDPAddr(), srv.HTTPAddr(),
		WithTransport(ft),
		WithSpool(spool.Config{RetryMin: 10 * time.Millisecond, RetryMax: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	// Outage starts after registration; the upload below is generated
	// inside an export window, spooled, and repeatedly dropped.
	ft.SetBlackout(true)
	cli.BeginExportWindow("census", t0)
	cli.UptimeReport(dataset.UptimeReport{RouterID: "router-e2e", ReportedAt: t0, Uptime: time.Hour})
	cli.EndExportWindow(t0)
	waitFor(t, func() bool { return ft.Injected() >= 2 })

	ft.SetBlackout(false)
	flush(t, cli)

	traces := srv.TraceRecorder().Traces(trace.Filter{Endpoint: "/v1/uptime"})
	if len(traces) != 1 {
		t.Fatalf("server traces for /v1/uptime = %d, want 1 (retries must merge, not fork)", len(traces))
	}
	tr := traces[0]
	names := spanNames(tr)
	for _, want := range []string{"gateway.export", "spool.queued", "spool.attempt", "spool.send",
		"collector.decode", "collector.apply"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q span; got %v", want, names)
		}
	}
	if names["spool.attempt"] < 1 {
		t.Fatalf("no failed-attempt spans survived the retry: %v", names)
	}
	var sawInjected bool
	for _, sp := range tr.Spans {
		if sp.Name == "spool.attempt" && sp.Status == trace.StatusError {
			sawInjected = true
		}
	}
	if !sawInjected {
		t.Fatalf("no error-status attempt span recorded: %+v", tr.Spans)
	}

	// The client's local recorder finished the same trace ID: both ends
	// of the pipeline agree on the payload's identity.
	if _, ok := cli.TraceRecorder().Get(tr.ID); !ok {
		t.Fatalf("client recorder has no trace %s", tr.ID)
	}

	// And the operator path works: /debug/traces/{id} serves the story.
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/debug/traces/" + tr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got trace.Trace
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || got.ID != tr.ID {
		t.Fatalf("GET /debug/traces/%s: err=%v id=%q", tr.ID, err, got.ID)
	}
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/debug/traces/" + tr.ID + "?format=waterfall")
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(wf), "spool.attempt") || !strings.Contains(string(wf), "collector.apply") {
		t.Fatalf("waterfall missing spans:\n%s", wf)
	}
}

// TestThrottledUploadIsOneTraceWithCorrelation pins the 429 story: a
// throttled upload's rejection is correlated back to the client via the
// X-Natpeek-Trace header and response body, and once the retry lands the
// finished trace contains the throttle span next to the apply span — one
// trace covering both the shed and the success.
func TestThrottledUploadIsOneTraceWithCorrelation(t *testing.T) {
	srv, _ := startPair(t)
	srv.SetMaxInflight(1)
	srv.SetTraceSampling(0, 0) // the throttled trace must be kept by status alone

	// Hold the single admission slot with a never-finishing body.
	pr, pw := io.Pipe()
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		req, _ := http.NewRequest(http.MethodPost, "http://"+srv.HTTPAddr()+"/v1/uptime", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	pw.Write([]byte(`{"RouterID":`))

	key := "router-1:e2e-throttle:1"
	traceID := trace.IDFromKey(key)
	body, _ := json.Marshal(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0, Uptime: time.Hour})
	post := func() *http.Response {
		req, err := http.NewRequest(http.MethodPost, "http://"+srv.HTTPAddr()+"/v1/uptime", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		req.Header.Set("Traceparent", trace.FormatTraceparent(traceID))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	var throttled bool
	waitFor(t, func() bool {
		resp := post()
		rbody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			return false
		}
		if got := resp.Header.Get("X-Natpeek-Trace"); got != traceID {
			t.Fatalf("X-Natpeek-Trace = %q, want %q", got, traceID)
		}
		if !strings.Contains(string(rbody), traceID) {
			t.Fatalf("429 body does not name the trace: %q", rbody)
		}
		throttled = true
		return true
	})
	if !throttled {
		t.Fatal("never throttled")
	}

	// Free the slot; the retried upload must land.
	pw.Close()
	<-blocked
	waitFor(t, func() bool {
		resp := post()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusNoContent
	})

	tr, ok := srv.TraceRecorder().Get(traceID)
	if !ok {
		t.Fatalf("throttled trace %s not in recorder", traceID)
	}
	names := spanNames(tr)
	if names["collector.throttle"] == 0 || names["collector.apply"] == 0 {
		t.Fatalf("trace spans = %v, want throttle + apply in one trace", names)
	}
	if tr.Status != trace.StatusThrottled {
		t.Fatalf("trace status = %q, want %q (worst span wins)", tr.Status, trace.StatusThrottled)
	}

	// The successful POST carried the trace ID into a latency exemplar.
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "# EXEMPLAR natpeek_http_request_seconds_bucket") ||
		!strings.Contains(string(prom), "trace_id="+traceID) {
		t.Fatal("/metrics missing the request-latency exemplar for the traced upload")
	}

	// The live ops view renders against the same recorder.
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/pipeline")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), "/v1/uptime") {
		t.Fatalf("/pipeline status=%d, endpoint row missing:\n%s", resp.StatusCode, page)
	}
}
