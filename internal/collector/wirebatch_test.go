package collector

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/mac"
	"natpeek/internal/spool"
	"natpeek/internal/trace"
	"natpeek/internal/wire"
)

func postBatch(t *testing.T, srv *Server, contentType string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/batch", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(msg)
}

func uptimeBatchJSON(t *testing.T, keys ...string) []byte {
	t.Helper()
	var items []BatchItem
	for i, k := range keys {
		body, err := json.Marshal(dataset.UptimeReport{
			RouterID: "router-1", ReportedAt: t0.Add(time.Duration(i) * time.Minute), Uptime: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, BatchItem{Endpoint: "/v1/uptime", Key: k, Body: body})
	}
	b, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchRejectsTrailingGarbage is the regression for the old
// json.NewDecoder(r.Body).Decode(&items) envelope decode, which read the
// first JSON value and silently ignored everything after it — a request
// whose tail was a second batch would be acknowledged with the tail
// unapplied. Both encodings must reject trailing bytes with 400.
func TestBatchRejectsTrailingGarbage(t *testing.T) {
	srv, _ := startPair(t)

	body := append(uptimeBatchJSON(t, "tg-json-1"), `[{"endpoint":"/v1/uptime","key":"tg-json-lost","body":{}}]`...)
	resp, msg := postBatch(t, srv, "application/json", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("JSON batch with trailing bytes: status %d (%s), want 400", resp.StatusCode, msg)
	}

	bin := wire.AppendBatch(nil, []wire.Item{{
		Endpoint: "/v1/uptime", Key: "tg-bin-1",
		Payload: wire.Payload{Kind: wire.KindUptime,
			Uptime: dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0}},
	}})
	resp, msg = postBatch(t, srv, wire.ContentTypeBinary, append(bin, "garbage"...))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("binary batch with trailing bytes: status %d (%s), want 400", resp.StatusCode, msg)
	}
	if !strings.Contains(msg, "trailing") {
		t.Fatalf("binary rejection should name the trailing bytes: %q", msg)
	}
}

// TestWhitelistAddRejectsTrailingGarbage covers the other NewDecoder
// call site found in the audit (webui.handleWhitelistAdd) — exercised
// through the webui package's own tests; here we pin the collector's
// single-row endpoints, which already read-then-Unmarshal.
func TestDirectEndpointRejectsTrailingGarbage(t *testing.T) {
	srv, _ := startPair(t)
	body := `{"RouterID":"router-1","ReportedAt":"2013-04-01T00:00:00Z"}{"RouterID":"x"}`
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/v1/uptime", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestOversizedBodyGets413 is the regression for oversized bodies
// surfacing as generic 400 decode errors: the MaxBytesReader bound must
// come back as 413 naming the limit, counted under the dedicated
// oversized metric rather than decode_errors.
func TestOversizedBodyGets413(t *testing.T) {
	srv, _ := startPair(t)
	overBefore := srv.mOversized.With("/v1/batch").Value()
	decodeBefore := srv.mDecodeErrs.With("/v1/batch").Value()

	huge := bytes.Repeat([]byte("x"), maxUploadBytes+1)
	resp, msg := postBatch(t, srv, "application/json", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, msg)
	}
	if want := fmt.Sprintf("%d-byte limit", maxUploadBytes); !strings.Contains(msg, want) {
		t.Fatalf("413 body %q does not name the limit %q", msg, want)
	}
	if got := srv.mOversized.With("/v1/batch").Value() - overBefore; got != 1 {
		t.Fatalf("oversized counter advanced by %d, want 1", got)
	}
	if got := srv.mDecodeErrs.With("/v1/batch").Value() - decodeBefore; got != 0 {
		t.Fatalf("decode_errors advanced by %d for an oversized body, want 0", got)
	}
}

// TestGzipBombGets413 bounds the decompressed size too: a tiny request
// that inflates past the upload limit is refused like an oversized
// plain body, before the decoded bytes can pile up.
func TestGzipBombGets413(t *testing.T) {
	srv, _ := startPair(t)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(bytes.Repeat([]byte("0"), maxUploadBytes+2)); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	req, err := http.NewRequest(http.MethodPost, "http://"+srv.HTTPAddr()+"/v1/batch", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, msg)
	}
}

// TestReadAllIntoClampsForgedSizeHint is the regression for sizing the
// pooled body buffer straight from Content-Length: the header is
// attacker-controlled and nobody has read a byte against it yet, so a
// forged multi-GiB value must not become allocation capacity — across
// 256 admitted requests that pre-allocation alone could exhaust memory
// before MaxBytesReader ever rejected the bodies.
func TestReadAllIntoClampsForgedSizeHint(t *testing.T) {
	buf, err := readAllInto(nil, strings.NewReader("tiny body"), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "tiny body" {
		t.Fatalf("read %q, want %q", buf, "tiny body")
	}
	if cap(buf) > maxUploadBytes+2 {
		t.Fatalf("forged 1 TiB size hint grew the buffer to cap %d, want ≤ %d", cap(buf), maxUploadBytes+2)
	}
}

// TestBatchReportsMalformedItems pins satellite 3: undecodable items are
// acknowledged (2xx, not retried) but reported per item in
// BatchResult.Failed, and the client's sendBatch surfaces them as the
// spool.Result that triggers dead-lettering.
func TestBatchReportsMalformedItems(t *testing.T) {
	srv, cli := startPair(t)
	good, err := json.Marshal(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0})
	if err != nil {
		t.Fatal(err)
	}
	items := []spool.Item{
		{Endpoint: "/v1/uptime", Key: "mf-good", Body: good, Seq: 1},
		{Endpoint: "/v1/uptime", Key: "mf-bad", Body: []byte(`{"RouterID":42}`), Seq: 2},
		{Endpoint: "/v1/nope", Key: "mf-unknown", Body: []byte(`{}`), Seq: 3},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := cli.sendBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Malformed) != 2 {
		t.Fatalf("malformed = %+v, want 2 entries", res.Malformed)
	}
	byKey := map[string]string{}
	for _, e := range res.Malformed {
		byKey[e.Key] = e.Reason
	}
	if !strings.Contains(byKey["mf-bad"], "decode error") {
		t.Fatalf("mf-bad reason = %q", byKey["mf-bad"])
	}
	if byKey["mf-unknown"] != "unknown endpoint" {
		t.Fatalf("mf-unknown reason = %q", byKey["mf-unknown"])
	}
	if n := len(srv.Store().Uptime); n != 1 {
		t.Fatalf("store has %d uptime rows, want 1 (the good item)", n)
	}
}

// wireModeClient builds a second client against srv with an explicit
// wire mode, registered under its own router ID.
func wireModeClient(t *testing.T, srv *Server, router string, opts ...Option) *Client {
	t.Helper()
	cli, err := NewClient(router, "US", srv.UDPAddr(), srv.HTTPAddr(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func driveSink(cli *Client, router string) {
	cli.UptimeReport(dataset.UptimeReport{RouterID: router, ReportedAt: t0, Uptime: 36 * time.Hour})
	cli.CapacityMeasure(dataset.CapacityMeasure{RouterID: router, MeasuredAt: t0, UpBps: 1e6, DownBps: 16e6})
	cli.DeviceCensus(
		dataset.DeviceCount{RouterID: router, At: t0, Wired: 1, W24: 2, W5: 1},
		[]dataset.DeviceSighting{{RouterID: router, At: t0, Device: mac.MustParse("a4:b1:97:01:02:03"), Kind: dataset.Wireless24}})
	cli.WiFiScan([]dataset.WiFiScan{{RouterID: router, At: t0, Band: "2.4GHz", Channel: 6, VisibleAPs: 9, Clients: 2}})
	cli.TrafficFlows([]dataset.FlowRecord{{
		RouterID: router, Device: mac.MustParse("a4:b1:97:01:02:03"),
		Domain: "netflix.com", Proto: "tcp", First: t0, Last: t0.Add(90 * time.Second),
		UpBytes: 1 << 20, DownBytes: 50 << 20, UpPkts: 900, DownPkts: 36000, Conns: 2}})
	cli.TrafficThroughput([]dataset.ThroughputSample{{
		RouterID: router, Minute: t0, Dir: "down", PeakBps: 4.2e6, TotalBytes: 9 << 20}})
}

// normalizeRows renders a store's rows as JSON with router IDs unified,
// so stores fed by different clients compare structurally.
func normalizeRows(t *testing.T, st *dataset.Store, router string) string {
	t.Helper()
	b, err := json.Marshal(struct {
		U []dataset.UptimeReport
		C []dataset.CapacityMeasure
		N []dataset.DeviceCount
		S []dataset.DeviceSighting
		W []dataset.WiFiScan
		F []dataset.FlowRecord
		T []dataset.ThroughputSample
	}{st.Uptime, st.Capacity, st.Counts, st.Sightings, st.WiFi, st.Flows, st.Throughput})
	if err != nil {
		t.Fatal(err)
	}
	return strings.ReplaceAll(string(b), router, "ROUTER")
}

// TestBinaryBatchMatchesJSON drives the same sink calls through a
// JSON-pinned client and a binary-pinned client against two servers and
// requires the resulting stores to be row-for-row identical — the
// encoding must be invisible to the dataset.
func TestBinaryBatchMatchesJSON(t *testing.T) {
	stores := map[WireMode]string{}
	for mode, name := range map[WireMode]string{WireJSON: "json-router", WireBinary: "bin-router"} {
		srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cli := wireModeClient(t, srv, name, WithWireFormat(mode))
		driveSink(cli, name)
		flush(t, cli)
		stores[mode] = normalizeRows(t, srv.Store(), name)
	}
	if stores[WireJSON] != stores[WireBinary] {
		t.Fatalf("stores differ:\njson   %s\nbinary %s", stores[WireJSON], stores[WireBinary])
	}
}

// TestWireNegotiation pins the Accept-Post handshake: an auto client
// flips to binary against an advertising server, stays on JSON when the
// advertisement is off, and the rows land either way.
func TestWireNegotiation(t *testing.T) {
	srv, cli := startPair(t)
	if !cli.binary.Load() {
		t.Fatal("auto client did not pick up the binary advertisement")
	}
	itemsBefore := srv.mItems.With("/v1/uptime").Value()
	cli.UptimeReport(dataset.UptimeReport{RouterID: "router-1", ReportedAt: t0})
	flush(t, cli)
	if got := srv.mItems.With("/v1/uptime").Value() - itemsBefore; got != 1 {
		t.Fatalf("binary-path items = %d, want 1", got)
	}

	srv.SetAdvertiseBinary(false)
	legacy := wireModeClient(t, srv, "legacy-router")
	if legacy.binary.Load() {
		t.Fatal("client negotiated binary against a non-advertising server")
	}
	legacy.UptimeReport(dataset.UptimeReport{RouterID: "legacy-router", ReportedAt: t0})
	flush(t, legacy)
	if n := len(srv.Store().Uptime); n != 2 {
		t.Fatalf("uptime rows = %d, want 2", n)
	}
}

// TestGzipUploads runs both encodings compressed end to end.
func TestGzipUploads(t *testing.T) {
	for mode, name := range map[WireMode]string{WireJSON: "gz-json", WireBinary: "gz-bin"} {
		srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cli := wireModeClient(t, srv, name, WithWireFormat(mode), WithGzip(true))
		driveSink(cli, name)
		flush(t, cli)
		st := srv.Store()
		if len(st.Uptime) != 1 || len(st.Flows) != 1 || len(st.Throughput) != 1 {
			t.Fatalf("%s: rows missing after gzip upload: %d/%d/%d", name,
				len(st.Uptime), len(st.Flows), len(st.Throughput))
		}
	}
}

// TestBinaryBatchPreservesTraces runs a traced binary upload end to end
// and requires the server-assembled trace to contain the client's spans
// (queue wait and send attempt) — trace spans must survive the binary
// encoding byte-for-byte.
func TestBinaryBatchPreservesTraces(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.SetTraceSampling(1.0, time.Hour) // keep everything
	cli := wireModeClient(t, srv, "traced-router", WithWireFormat(WireBinary))
	cli.UptimeReport(dataset.UptimeReport{RouterID: "traced-router", ReportedAt: t0})
	flush(t, cli)

	traces := srv.TraceRecorder().Traces(trace.Filter{Router: "traced-router"})
	if len(traces) == 0 {
		t.Fatal("no traces recorded")
	}
	var names []string
	for _, sp := range traces[0].Spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"spool.queued", "spool.send", "collector.decode", "collector.apply"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q span: %v", want, names)
		}
	}
	if traces[0].Router != "traced-router" {
		t.Fatalf("trace router = %q", traces[0].Router)
	}
}
