package collector

import (
	"net"
	"testing"
	"time"

	"natpeek/internal/dataset"
)

// The gateway must keep functioning when the collection server vanishes:
// heartbeats are fire-and-forget and uploads drop their errors (§3.3
// lists collection interruptions as a fact of life; the firmware never
// let them take the router down).

func TestClientSurvivesServerDeath(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient("r1", "US", srv.UDPAddr(), srv.HTTPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	srv.Close()

	// None of these may panic or block; errors are swallowed by design.
	done := make(chan struct{})
	go func() {
		defer close(done)
		cli.Heartbeat("r1", time.Now())
		cli.UptimeReport(dataset.UptimeReport{RouterID: "r1", ReportedAt: time.Now()})
		cli.CapacityMeasure(dataset.CapacityMeasure{RouterID: "r1"})
		cli.DeviceCensus(dataset.DeviceCount{RouterID: "r1"}, nil)
		cli.WiFiScan([]dataset.WiFiScan{{RouterID: "r1"}})
		cli.TrafficFlows([]dataset.FlowRecord{{RouterID: "r1"}})
		cli.TrafficThroughput([]dataset.ThroughputSample{{RouterID: "r1"}})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("client blocked after server death")
	}
}

func TestClientConnectFailsCleanly(t *testing.T) {
	// Reserve a TCP port and close it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := NewClient("r1", "US", "127.0.0.1:1", addr); err == nil {
		t.Fatal("connect to dead server succeeded")
	}
}

func TestServerSurvivesDatagramFlood(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("udp", srv.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Garbage of every size, including oversized datagrams.
	for size := 0; size < 1500; size += 37 {
		conn.Write(make([]byte, size))
	}
	// A valid client still works afterwards.
	cli, err := NewClient("r-after", "US", srv.UDPAddr(), srv.HTTPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Heartbeat("r-after", time.Now())
	deadline := time.Now().Add(5 * time.Second)
	for srv.Store().Heartbeats.Count("r-after") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server stopped accepting heartbeats after flood")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentUploads(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			cli, err := NewClient("rc", "US", srv.UDPAddr(), srv.HTTPAddr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 20; j++ {
				cli.UptimeReport(dataset.UptimeReport{RouterID: "rc", ReportedAt: time.Now()})
			}
			flush(t, cli)
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(srv.Store().Uptime); got != n*20 {
		t.Fatalf("uptime rows = %d, want %d (lost under concurrency)", got, n*20)
	}
}
