// Package collector implements the central BISmark server: a UDP sink
// for heartbeats and an HTTP API for measurement uploads, storing
// everything in a dataset.Store. The matching Client implements
// gateway.Sink over the network, so the same agent code that runs in the
// simulator can report to a real server (cmd/bismark-gateway →
// cmd/bismark-server).
package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/heartbeat"
)

// Server is the collection server.
type Server struct {
	mu    sync.Mutex
	store *dataset.Store

	hbRx *heartbeat.Receiver
	http *http.Server
	ln   net.Listener
}

// NewServer starts a collection server with a UDP heartbeat port and an
// HTTP upload API. Pass "127.0.0.1:0" style addresses; zero ports pick
// ephemeral ones.
func NewServer(udpAddr, httpAddr string, store *dataset.Store) (*Server, error) {
	if store == nil {
		store = dataset.NewStore()
	}
	s := &Server{store: store}
	rx, err := heartbeat.NewReceiver(udpAddr, store.Heartbeats, nil)
	if err != nil {
		return nil, err
	}
	s.hbRx = rx

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", s.handleRegister)
	mux.HandleFunc("POST /v1/uptime", jsonHandler(s, func(st *dataset.Store, r dataset.UptimeReport) {
		st.Uptime = append(st.Uptime, r)
	}))
	mux.HandleFunc("POST /v1/capacity", jsonHandler(s, func(st *dataset.Store, c dataset.CapacityMeasure) {
		st.Capacity = append(st.Capacity, c)
	}))
	mux.HandleFunc("POST /v1/devices", s.handleDevices)
	mux.HandleFunc("POST /v1/wifi", jsonHandler(s, func(st *dataset.Store, scans []dataset.WiFiScan) {
		st.WiFi = append(st.WiFi, scans...)
	}))
	mux.HandleFunc("POST /v1/traffic/flows", jsonHandler(s, func(st *dataset.Store, fl []dataset.FlowRecord) {
		st.Flows = append(st.Flows, fl...)
	}))
	mux.HandleFunc("POST /v1/traffic/throughput", jsonHandler(s, func(st *dataset.Store, ts []dataset.ThroughputSample) {
		st.Throughput = append(st.Throughput, ts...)
	}))
	mux.HandleFunc("GET /v1/stats", s.handleStats)

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		rx.Close()
		return nil, fmt.Errorf("collector: listen %s: %w", httpAddr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.http.Serve(ln)
	return s, nil
}

// UDPAddr returns the heartbeat address.
func (s *Server) UDPAddr() string { return s.hbRx.Addr().String() }

// HTTPAddr returns the upload API address.
func (s *Server) HTTPAddr() string { return s.ln.Addr().String() }

// Store returns the server's dataset store. Callers must not mutate it
// while the server is running; use Snapshot-style access after Close.
func (s *Server) Store() *dataset.Store { return s.store }

// Close shuts the server down.
func (s *Server) Close() error {
	s.hbRx.Close()
	return s.http.Close()
}

func jsonHandler[T any](s *Server, apply func(*dataset.Store, T)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var v T
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		apply(s.store, v)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}
}

type registerReq struct {
	RouterID string `json:"router_id"`
	Country  string `json:"country"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.RouterID == "" {
		http.Error(w, "bad register", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.store.RouterCountry[req.RouterID] = req.Country
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

type censusUpload struct {
	Count     dataset.DeviceCount      `json:"count"`
	Sightings []dataset.DeviceSighting `json:"sightings"`
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	var up censusUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.store.Counts = append(s.store.Counts, up.Count)
	s.store.Sightings = append(s.store.Sightings, up.Sightings...)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// Stats summarizes what the server has collected.
type Stats struct {
	Routers    int `json:"routers"`
	Heartbeats int `json:"heartbeats"`
	Uptime     int `json:"uptime"`
	Capacity   int `json:"capacity"`
	Counts     int `json:"device_counts"`
	Sightings  int `json:"device_sightings"`
	WiFi       int `json:"wifi_scans"`
	Flows      int `json:"flows"`
	Throughput int `json:"throughput_samples"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{
		Routers:    len(s.store.RouterCountry),
		Uptime:     len(s.store.Uptime),
		Capacity:   len(s.store.Capacity),
		Counts:     len(s.store.Counts),
		Sightings:  len(s.store.Sightings),
		WiFi:       len(s.store.WiFi),
		Flows:      len(s.store.Flows),
		Throughput: len(s.store.Throughput),
	}
	for _, id := range s.store.Heartbeats.Routers() {
		st.Heartbeats += s.store.Heartbeats.Count(id)
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// Client reports a gateway's measurements to a Server over the network.
// It implements gateway.Sink.
type Client struct {
	routerID string
	baseURL  string
	hb       *heartbeat.Sender
	httpc    *http.Client
}

// NewClient dials the server. udpAddr receives heartbeats, httpAddr the
// uploads.
func NewClient(routerID, country, udpAddr, httpAddr string) (*Client, error) {
	hb, err := heartbeat.NewSender(routerID, udpAddr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		routerID: routerID,
		baseURL:  "http://" + httpAddr,
		hb:       hb,
		httpc:    &http.Client{Timeout: 10 * time.Second},
	}
	if err := c.post("/v1/register", registerReq{RouterID: routerID, Country: country}); err != nil {
		hb.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the client's sockets.
func (c *Client) Close() error { return c.hb.Close() }

func (c *Client) post(path string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Post(c.baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("collector: POST %s: %w", path, err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("collector: POST %s: status %d", path, resp.StatusCode)
	}
	return nil
}

// Heartbeat implements gateway.Sink. Errors are dropped by design —
// heartbeats are fire-and-forget.
func (c *Client) Heartbeat(_ string, at time.Time) { _ = c.hb.Send(at) }

// UptimeReport implements gateway.Sink.
func (c *Client) UptimeReport(r dataset.UptimeReport) { _ = c.post("/v1/uptime", r) }

// CapacityMeasure implements gateway.Sink.
func (c *Client) CapacityMeasure(m dataset.CapacityMeasure) { _ = c.post("/v1/capacity", m) }

// DeviceCensus implements gateway.Sink.
func (c *Client) DeviceCensus(count dataset.DeviceCount, sightings []dataset.DeviceSighting) {
	_ = c.post("/v1/devices", censusUpload{Count: count, Sightings: sightings})
}

// WiFiScan implements gateway.Sink.
func (c *Client) WiFiScan(scans []dataset.WiFiScan) { _ = c.post("/v1/wifi", scans) }

// TrafficFlows implements gateway.Sink.
func (c *Client) TrafficFlows(flows []dataset.FlowRecord) {
	if len(flows) > 0 {
		_ = c.post("/v1/traffic/flows", flows)
	}
}

// TrafficThroughput implements gateway.Sink.
func (c *Client) TrafficThroughput(samples []dataset.ThroughputSample) {
	if len(samples) > 0 {
		_ = c.post("/v1/traffic/throughput", samples)
	}
}
