// Package collector implements the central BISmark server: a UDP sink
// for heartbeats and an HTTP API for measurement uploads, storing
// everything in a dataset.Store. The matching Client implements
// gateway.Sink over the network, so the same agent code that runs in the
// simulator can report to a real server (cmd/bismark-gateway →
// cmd/bismark-server).
//
// The server is instrumented end to end: every /v1/* endpoint counts
// requests, decode errors, payload bytes, and latency; the telemetry
// registry is exposed at /metrics (Prometheus text format) alongside
// /healthz and the pprof handlers. See DESIGN.md §"Operating the
// platform" for the metric names.
package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/heartbeat"
	"natpeek/internal/telemetry"
)

// closeTimeout bounds how long Close waits for in-flight uploads before
// force-closing connections.
const closeTimeout = 3 * time.Second

// Server is the collection server.
type Server struct {
	mu    sync.Mutex
	store *dataset.Store

	hbRx *heartbeat.Receiver
	http *http.Server
	ln   net.Listener
	log  *slog.Logger

	startedAt time.Time

	mReqs       *telemetry.CounterVec
	mDecodeErrs *telemetry.CounterVec
	mPayload    *telemetry.CounterVec
	hLatency    *telemetry.HistogramVec

	closeOnce sync.Once
	closeErr  error
	closed    chan struct{}
}

// NewServer starts a collection server with a UDP heartbeat port and an
// HTTP upload API. Pass "127.0.0.1:0" style addresses; zero ports pick
// ephemeral ones.
func NewServer(udpAddr, httpAddr string, store *dataset.Store) (*Server, error) {
	if store == nil {
		store = dataset.NewStore()
	}
	reg := telemetry.Default
	s := &Server{
		store:     store,
		log:       slog.Default().With("component", "collector"),
		startedAt: time.Now(),
		closed:    make(chan struct{}),
		mReqs: reg.CounterVec("natpeek_http_requests_total",
			"Upload API requests received, per endpoint.", "endpoint"),
		mDecodeErrs: reg.CounterVec("natpeek_http_decode_errors_total",
			"Upload API requests rejected with a body decode error, per endpoint.", "endpoint"),
		mPayload: reg.CounterVec("natpeek_http_payload_bytes_total",
			"Upload API request payload bytes received, per endpoint.", "endpoint"),
		hLatency: reg.HistogramVec("natpeek_http_request_seconds",
			"Upload API request handling latency.", nil, "endpoint"),
	}
	rx, err := heartbeat.NewReceiver(udpAddr, store.Heartbeats, nil)
	if err != nil {
		return nil, err
	}
	s.hbRx = rx

	mux := http.NewServeMux()
	handle := func(endpoint string, h http.HandlerFunc) {
		mux.HandleFunc("POST "+endpoint, s.instrument(endpoint, h))
	}
	handle("/v1/register", s.handleRegister)
	handle("/v1/uptime", jsonHandler(s, "/v1/uptime", func(st *dataset.Store, r dataset.UptimeReport) {
		st.Uptime = append(st.Uptime, r)
	}))
	handle("/v1/capacity", jsonHandler(s, "/v1/capacity", func(st *dataset.Store, c dataset.CapacityMeasure) {
		st.Capacity = append(st.Capacity, c)
	}))
	handle("/v1/devices", s.handleDevices)
	handle("/v1/wifi", jsonHandler(s, "/v1/wifi", func(st *dataset.Store, scans []dataset.WiFiScan) {
		st.WiFi = append(st.WiFi, scans...)
	}))
	handle("/v1/traffic/flows", jsonHandler(s, "/v1/traffic/flows", func(st *dataset.Store, fl []dataset.FlowRecord) {
		st.Flows = append(st.Flows, fl...)
	}))
	handle("/v1/traffic/throughput", jsonHandler(s, "/v1/traffic/throughput", func(st *dataset.Store, ts []dataset.ThroughputSample) {
		st.Throughput = append(st.Throughput, ts...)
	}))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	telemetry.RegisterDebug(mux, reg)

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		rx.Close()
		return nil, fmt.Errorf("collector: listen %s: %w", httpAddr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.http.Serve(ln)
	s.log.Debug("listening", "udp", s.UDPAddr(), "http", s.HTTPAddr())
	return s, nil
}

// UDPAddr returns the heartbeat address.
func (s *Server) UDPAddr() string { return s.hbRx.Addr().String() }

// HTTPAddr returns the upload API address.
func (s *Server) HTTPAddr() string { return s.ln.Addr().String() }

// Store returns the server's dataset store. Callers must not mutate it
// while the server is running; use Snapshot-style access after Close.
func (s *Server) Store() *dataset.Store { return s.store }

// Close shuts the server down gracefully: the heartbeat socket stops
// immediately, while in-flight uploads get closeTimeout to finish
// decoding before their connections are force-closed. Close is
// idempotent; the TCP listener is closed exactly once (by Shutdown).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		err := s.hbRx.Close()
		ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
		defer cancel()
		if serr := s.http.Shutdown(ctx); serr != nil {
			// Drain window expired; drop whatever is still in flight.
			s.log.Warn("graceful shutdown incomplete, force-closing", "err", serr)
			cerr := s.http.Close()
			if err == nil {
				err = serr
			}
			_ = cerr
		}
		s.closeErr = err
	})
	return s.closeErr
}

// instrument wraps an endpoint handler with the request/latency/payload
// metrics. Metric handles are resolved once per endpoint at mux build
// time, so the per-request cost is three atomic updates and a clock read.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.mReqs.With(endpoint)
	payload := s.mPayload.With(endpoint)
	lat := s.hLatency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		if r.ContentLength > 0 {
			payload.Add(r.ContentLength)
		}
		h(w, r)
		lat.Observe(time.Since(start).Seconds())
	}
}

func jsonHandler[T any](s *Server, endpoint string, apply func(*dataset.Store, T)) http.HandlerFunc {
	decodeErrs := s.mDecodeErrs.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		var v T
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			decodeErrs.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		apply(s.store, v)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}
}

type registerReq struct {
	RouterID string `json:"router_id"`
	Country  string `json:"country"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.RouterID == "" {
		s.mDecodeErrs.With("/v1/register").Inc()
		http.Error(w, "bad register", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.store.RouterCountry[req.RouterID] = req.Country
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

type censusUpload struct {
	Count     dataset.DeviceCount      `json:"count"`
	Sightings []dataset.DeviceSighting `json:"sightings"`
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	var up censusUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		s.mDecodeErrs.With("/v1/devices").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.store.Counts = append(s.store.Counts, up.Count)
	s.store.Sightings = append(s.store.Sightings, up.Sightings...)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// Stats summarizes what the server has collected.
type Stats struct {
	Routers    int `json:"routers"`
	Heartbeats int `json:"heartbeats"`
	Uptime     int `json:"uptime"`
	Capacity   int `json:"capacity"`
	Counts     int `json:"device_counts"`
	Sightings  int `json:"device_sightings"`
	WiFi       int `json:"wifi_scans"`
	Flows      int `json:"flows"`
	Throughput int `json:"throughput_samples"`
}

func (s *Server) stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Routers:    len(s.store.RouterCountry),
		Uptime:     len(s.store.Uptime),
		Capacity:   len(s.store.Capacity),
		Counts:     len(s.store.Counts),
		Sightings:  len(s.store.Sightings),
		WiFi:       len(s.store.WiFi),
		Flows:      len(s.store.Flows),
		Throughput: len(s.store.Throughput),
	}
	for _, id := range s.store.Heartbeats.Routers() {
		st.Heartbeats += s.store.Heartbeats.Count(id)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.stats())
}

// Health is the /healthz response: liveness plus enough state to see at
// a glance whether the deployment is actually reporting.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	HeartbeatAddr string  `json:"heartbeat_addr"`
	HeartbeatBad  int     `json:"heartbeat_bad_datagrams"`
	HTTPAddr      string  `json:"http_addr"`
	Rows          Stats   `json:"rows"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.startedAt).Seconds(),
		HeartbeatAddr: s.UDPAddr(),
		HeartbeatBad:  s.hbRx.BadDatagrams(),
		HTTPAddr:      s.HTTPAddr(),
		Rows:          s.stats(),
	}
	select {
	case <-s.closed:
		h.Status = "closing"
	default:
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// Client reports a gateway's measurements to a Server over the network.
// It implements gateway.Sink.
type Client struct {
	routerID string
	baseURL  string
	hb       *heartbeat.Sender
	httpc    *http.Client

	mUploads  *telemetry.CounterVec
	mFailures *telemetry.CounterVec

	mu      sync.Mutex
	lastErr error
}

// NewClient dials the server. udpAddr receives heartbeats, httpAddr the
// uploads.
func NewClient(routerID, country, udpAddr, httpAddr string) (*Client, error) {
	hb, err := heartbeat.NewSender(routerID, udpAddr)
	if err != nil {
		return nil, err
	}
	reg := telemetry.Default
	c := &Client{
		routerID: routerID,
		baseURL:  "http://" + httpAddr,
		hb:       hb,
		httpc:    &http.Client{Timeout: 10 * time.Second},
		mUploads: reg.CounterVec("natpeek_client_uploads_total",
			"Upload attempts from this process's collector clients, per endpoint.", "endpoint"),
		mFailures: reg.CounterVec("natpeek_client_upload_failures_total",
			"Failed upload attempts, per endpoint.", "endpoint"),
	}
	if err := c.post("/v1/register", registerReq{RouterID: routerID, Country: country}); err != nil {
		hb.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the client's sockets.
func (c *Client) Close() error { return c.hb.Close() }

// Err returns the most recent upload or heartbeat error, or nil if no
// attempt has failed yet. Uploads stay fire-and-forget on the measurement
// path (gateway.Sink has no error returns, matching the firmware), but
// the failure is no longer invisible: it lands here and in
// natpeek_client_upload_failures_total.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

func (c *Client) fail(endpoint string, err error) error {
	c.mFailures.With(endpoint).Inc()
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
	return err
}

func (c *Client) post(path string, v any) error {
	c.mUploads.With(path).Inc()
	body, err := json.Marshal(v)
	if err != nil {
		return c.fail(path, err)
	}
	resp, err := c.httpc.Post(c.baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return c.fail(path, fmt.Errorf("collector: POST %s: %w", path, err))
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return c.fail(path, fmt.Errorf("collector: POST %s: status %d", path, resp.StatusCode))
	}
	return nil
}

// Heartbeat implements gateway.Sink. Errors are dropped by design —
// heartbeats are fire-and-forget — but counted.
func (c *Client) Heartbeat(_ string, at time.Time) {
	c.mUploads.With("heartbeat").Inc()
	if err := c.hb.Send(at); err != nil {
		_ = c.fail("heartbeat", err)
	}
}

// UptimeReport implements gateway.Sink.
func (c *Client) UptimeReport(r dataset.UptimeReport) { _ = c.post("/v1/uptime", r) }

// CapacityMeasure implements gateway.Sink.
func (c *Client) CapacityMeasure(m dataset.CapacityMeasure) { _ = c.post("/v1/capacity", m) }

// DeviceCensus implements gateway.Sink.
func (c *Client) DeviceCensus(count dataset.DeviceCount, sightings []dataset.DeviceSighting) {
	_ = c.post("/v1/devices", censusUpload{Count: count, Sightings: sightings})
}

// WiFiScan implements gateway.Sink.
func (c *Client) WiFiScan(scans []dataset.WiFiScan) { _ = c.post("/v1/wifi", scans) }

// TrafficFlows implements gateway.Sink.
func (c *Client) TrafficFlows(flows []dataset.FlowRecord) {
	if len(flows) > 0 {
		_ = c.post("/v1/traffic/flows", flows)
	}
}

// TrafficThroughput implements gateway.Sink.
func (c *Client) TrafficThroughput(samples []dataset.ThroughputSample) {
	if len(samples) > 0 {
		_ = c.post("/v1/traffic/throughput", samples)
	}
}
