// Package collector implements the central BISmark server: a UDP sink
// for heartbeats and an HTTP API for measurement uploads, storing
// everything in a dataset.Store. The matching Client implements
// gateway.Sink over the network, so the same agent code that runs in the
// simulator can report to a real server (cmd/bismark-gateway →
// cmd/bismark-server).
//
// The upload path is reliable end to end. The client never posts
// measurements inline: every payload is enqueued into an internal/spool
// queue with an idempotency key and delivered by a background drainer
// that batches queued payloads into single POSTs (/v1/batch) and retries
// under exponential backoff. The server applies each idempotency key at
// most once (the dedupe index lives in the dataset.Store, so it survives
// a server restart that keeps the store), which makes redelivery safe:
// at-least-once transport plus server dedupe is exactly-once ingestion.
//
// The server is instrumented end to end: every /v1/* endpoint counts
// requests, decode errors, payload bytes, and latency; the telemetry
// registry is exposed at /metrics (Prometheus text format) alongside
// /healthz and the pprof handlers. See DESIGN.md §"Operating the
// platform" for the metric names. SetFaultInjection (bismark-server
// -fail-rate) makes the server randomly reject or drop-ack uploads so
// the retry/dedupe path can be demonstrated against a live deployment.
package collector

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"natpeek/internal/dataset"
	"natpeek/internal/heartbeat"
	"natpeek/internal/rng"
	"natpeek/internal/spool"
	"natpeek/internal/telemetry"
	"natpeek/internal/trace"
	"natpeek/internal/webui"
	"natpeek/internal/wire"
)

// closeTimeout bounds how long Close waits for in-flight uploads before
// force-closing connections.
const closeTimeout = 3 * time.Second

// maxUploadBytes bounds every upload request body. A single oversized
// POST must not be able to exhaust the collector's memory; the gateway's
// batches sit far below this.
const maxUploadBytes = 8 << 20

// DefaultMaxInflight is the admission-control limit: the number of
// data-plane uploads the server will decode and apply concurrently
// before answering 429. It bounds memory (each in-flight request may
// hold up to maxUploadBytes of body) rather than CPU; the sharded store
// itself has no global serialization to protect.
const DefaultMaxInflight = 256

// applyFunc decodes one endpoint's payload outside any store lock and
// returns the originating router plus the mutation to run under that
// router's shard lock.
type applyFunc func(body json.RawMessage) (string, func(*dataset.Store), error)

// decodeApply builds an applyFunc from a router extractor and a typed
// store mutation. The router ID picks the store shard, so extraction
// happens at decode time, outside any lock.
func decodeApply[T any](router func(T) string, apply func(*dataset.Store, T)) applyFunc {
	return func(body json.RawMessage) (string, func(*dataset.Store), error) {
		var v T
		if err := json.Unmarshal(body, &v); err != nil {
			return "", nil, err
		}
		return router(v), func(st *dataset.Store) { apply(st, v) }, nil
	}
}

// Server is the collection server. The store is lock-striped
// (dataset.Sharded): uploads for different routers decode and append
// concurrently, with no global serialization on the ingest path. The
// server's own mutex only guards the fault injector.
type Server struct {
	mu    sync.Mutex // guards faults only
	store dataset.IngestStore
	admit atomic.Value // chan struct{}; see SetMaxInflight

	appliers map[string]applyFunc

	hbRx *heartbeat.Receiver
	http *http.Server
	mux  *http.ServeMux
	ln   net.Listener
	log  *slog.Logger

	startedAt time.Time

	mReqs       *telemetry.CounterVec
	mDecodeErrs *telemetry.CounterVec
	mOversized  *telemetry.CounterVec
	mPayload    *telemetry.CounterVec
	mItems      *telemetry.CounterVec
	mDedupe     *telemetry.CounterVec
	mInjected   *telemetry.CounterVec
	mThrottled  *telemetry.CounterVec
	hLatency    *telemetry.HistogramVec

	rec    *trace.Recorder
	faults *faultInjector

	// advertiseBinary gates the Accept-Post header through which clients
	// discover NPB1 support (default on; bismark-server -no-binary).
	advertiseBinary atomic.Bool

	// ingestObs, when set, sees every keyed ingest decision; see
	// SetIngestObserver.
	ingestObs atomic.Pointer[func(endpoint, key, router string, applied bool)]
	// ingestGate, when set, runs before every keyed apply; see
	// SetIngestGate.
	ingestGate atomic.Pointer[func(router string)]

	closeOnce sync.Once
	closeErr  error
	closed    chan struct{}
}

// NewServer starts a collection server with a UDP heartbeat port and an
// HTTP upload API. Pass "127.0.0.1:0" style addresses; zero ports pick
// ephemeral ones.
func NewServer(udpAddr, httpAddr string, store dataset.IngestStore) (*Server, error) {
	if store == nil {
		store = dataset.NewSharded(0)
	}
	reg := telemetry.Default
	s := &Server{
		store:     store,
		log:       slog.Default().With("component", "collector"),
		startedAt: time.Now(),
		closed:    make(chan struct{}),
		mReqs: reg.CounterVec("natpeek_http_requests_total",
			"Upload API requests received, per endpoint.", "endpoint"),
		mDecodeErrs: reg.CounterVec("natpeek_http_decode_errors_total",
			"Upload API requests rejected with a body decode error, per endpoint.", "endpoint"),
		mOversized: reg.CounterVec("natpeek_http_oversized_total",
			"Upload API requests rejected with 413 because the body exceeded the upload limit, per endpoint.", "endpoint"),
		mPayload: reg.CounterVec("natpeek_http_payload_bytes_total",
			"Upload API request payload bytes actually read, per endpoint.", "endpoint"),
		mItems: reg.CounterVec("natpeek_collector_batch_items_total",
			"Spooled payloads ingested through /v1/batch, per logical endpoint.", "endpoint"),
		mDedupe: reg.CounterVec("natpeek_collector_dedupe_total",
			"Uploads skipped because their idempotency key was already applied, per endpoint.", "endpoint"),
		mInjected: reg.CounterVec("natpeek_collector_injected_failures_total",
			"Failures injected by SetFaultInjection, per mode (reject=before apply, drop-ack=after).", "mode"),
		mThrottled: reg.CounterVec("natpeek_collector_throttled_total",
			"Uploads answered 429 because the in-flight limit was reached, per endpoint.", "endpoint"),
		hLatency: reg.HistogramVec("natpeek_http_request_seconds",
			"Upload API request handling latency.", nil, "endpoint"),
		rec: trace.NewRecorder(trace.Config{}),
	}
	s.appliers = newAppliers()
	s.admit.Store(make(chan struct{}, DefaultMaxInflight))
	s.advertiseBinary.Store(true)
	rx, err := heartbeat.NewReceiver(udpAddr, store.HeartbeatLog(), nil)
	if err != nil {
		return nil, err
	}
	s.hbRx = rx

	mux := http.NewServeMux()
	for path := range s.appliers {
		// Registration is exempt from fault injection: it is the one
		// synchronous control-plane call, and failing it would keep
		// demo gateways from ever coming up.
		injectable := path != "/v1/register"
		mux.HandleFunc("POST "+path, s.instrument(path, injectable, s.jsonEndpoint(path)))
	}
	mux.HandleFunc("POST /v1/batch", s.instrument("/v1/batch", true, s.handleBatch))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", false, s.handleStats))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	telemetry.RegisterDebug(mux, reg)
	trace.RegisterDebug(mux, s.rec)
	webui.RegisterPipeline(mux, webui.PipelineConfig{
		Title: "collector",
		Snapshot: webui.PipelineFromTelemetry(s.hLatency, s.rec,
			reg.Gauge("natpeek_spool_depth",
				"Payloads currently queued across all spools in this process.")),
	})

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		rx.Close()
		return nil, fmt.Errorf("collector: listen %s: %w", httpAddr, err)
	}
	s.ln = ln
	s.mux = mux
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.http.Serve(ln)
	s.log.Debug("listening", "udp", s.UDPAddr(), "http", s.HTTPAddr())
	return s, nil
}

// Endpoints returns every logical upload endpoint the server serves
// ("/v1/register", "/v1/uptime", ...), sorted. The cluster front tier
// proxies exactly this set.
func Endpoints() []string {
	m := newAppliers()
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// newAppliers builds the decode table for every logical upload
// endpoint. It is a package-level constructor (rather than inline in
// NewServer) so request decoding can be exercised — and fuzzed —
// without sockets or a live server.
func newAppliers() map[string]applyFunc {
	return map[string]applyFunc{
		"/v1/register": decodeApplyRegister(),
		"/v1/uptime": decodeApply(
			func(r dataset.UptimeReport) string { return r.RouterID },
			func(st *dataset.Store, r dataset.UptimeReport) {
				st.Uptime = append(st.Uptime, r)
			}),
		"/v1/capacity": decodeApply(
			func(c dataset.CapacityMeasure) string { return c.RouterID },
			func(st *dataset.Store, c dataset.CapacityMeasure) {
				st.Capacity = append(st.Capacity, c)
			}),
		"/v1/devices": decodeApply(
			func(up censusUpload) string {
				if up.Count.RouterID != "" {
					return up.Count.RouterID
				}
				return firstRouter(up.Sightings, func(s dataset.DeviceSighting) string { return s.RouterID })
			},
			func(st *dataset.Store, up censusUpload) {
				// A zero-value count means the upload carries only
				// sightings (cluster rebalancing streams the two row
				// sets separately); appending it would invent a row.
				if up.Count != (dataset.DeviceCount{}) {
					st.Counts = append(st.Counts, up.Count)
				}
				st.Sightings = append(st.Sightings, up.Sightings...)
			}),
		"/v1/wifi": decodeApply(
			func(scans []dataset.WiFiScan) string {
				return firstRouter(scans, func(s dataset.WiFiScan) string { return s.RouterID })
			},
			func(st *dataset.Store, scans []dataset.WiFiScan) {
				st.WiFi = append(st.WiFi, scans...)
			}),
		"/v1/traffic/flows": decodeApply(
			func(fl []dataset.FlowRecord) string {
				return firstRouter(fl, func(f dataset.FlowRecord) string { return f.RouterID })
			},
			func(st *dataset.Store, fl []dataset.FlowRecord) {
				st.Flows = append(st.Flows, fl...)
			}),
		"/v1/traffic/throughput": decodeApply(
			func(ts []dataset.ThroughputSample) string {
				return firstRouter(ts, func(t dataset.ThroughputSample) string { return t.RouterID })
			},
			func(st *dataset.Store, ts []dataset.ThroughputSample) {
				st.Throughput = append(st.Throughput, ts...)
			}),
	}
}

// firstRouter shard-routes a slice payload by its first row's router. A
// payload always carries one router's rows (each gateway uploads its
// own); an empty slice routes to the empty-ID shard, which is safe.
func firstRouter[T any](rows []T, id func(T) string) string {
	if len(rows) == 0 {
		return ""
	}
	return id(rows[0])
}

// decodeApplyRegister validates registration on top of the generic
// decode (a router must have an ID).
func decodeApplyRegister() applyFunc {
	inner := decodeApply(
		func(req registerReq) string { return req.RouterID },
		func(st *dataset.Store, req registerReq) {
			st.RouterCountry[req.RouterID] = req.Country
		})
	return func(body json.RawMessage) (string, func(*dataset.Store), error) {
		var req registerReq
		if err := json.Unmarshal(body, &req); err != nil || req.RouterID == "" {
			return "", nil, fmt.Errorf("bad register")
		}
		return inner(body)
	}
}

// UDPAddr returns the heartbeat address.
func (s *Server) UDPAddr() string { return s.hbRx.Addr().String() }

// HTTPAddr returns the upload API address.
func (s *Server) HTTPAddr() string { return s.ln.Addr().String() }

// Mux exposes the collector's HTTP mux so callers can mount extra
// views (e.g. the incremental figures dashboard). ServeMux registration
// is safe after the server has started serving.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// Store returns a merged point-in-time snapshot of everything the
// server has collected, in global arrival order. The snapshot is safe
// to read (and, after Close, to keep) — it shares nothing with the
// ingest path except the internally-synchronized heartbeat log.
func (s *Server) Store() *dataset.Store { return s.store.Merge() }

// Sharded returns the server's live ingest store, for callers that
// need cheap row counts (RowCounts) or to share the store across a
// server restart.
func (s *Server) Sharded() dataset.IngestStore { return s.store }

// SetMaxInflight replaces the admission limit for data-plane uploads
// (n <= 0 restores DefaultMaxInflight). Requests beyond the limit are
// answered 429 + Retry-After instead of queuing, so a saturated
// collector sheds load onto the clients' spools — which already retry
// any non-2xx with backoff — rather than blocking its accept loop.
func (s *Server) SetMaxInflight(n int) {
	if n <= 0 {
		n = DefaultMaxInflight
	}
	s.admit.Store(make(chan struct{}, n))
}

// TraceRecorder exposes the server's flight recorder (also mounted on
// the API mux at /debug/traces).
func (s *Server) TraceRecorder() *trace.Recorder { return s.rec }

// SetAdvertiseBinary toggles the Accept-Post advertisement through which
// clients discover binary batch support (bismark-server -no-binary).
// With it off, auto-negotiating clients stay on JSON; the server still
// accepts binary requests from clients explicitly configured to send
// them.
func (s *Server) SetAdvertiseBinary(on bool) { s.advertiseBinary.Store(on) }

// SetTraceSampling replaces the tail-sampling knobs: rate is the keep
// probability for healthy traces, slow the always-keep latency threshold
// (zero values keep defaults).
func (s *Server) SetTraceSampling(rate float64, slow time.Duration) {
	s.rec.SetSampling(rate, slow)
}

// SetFaultInjection makes the server fail the given fraction of upload
// requests, deterministically driven by seed. Half of the injected
// failures reject the request before it is applied (503, nothing
// stored); the other half apply the payload and then drop the
// acknowledgment (503 after apply) — the lost-ack case that makes
// idempotency keys necessary. Pass rate 0 to disable.
func (s *Server) SetFaultInjection(rate float64, seed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rate <= 0 {
		s.faults = nil
		return
	}
	s.faults = &faultInjector{rate: rate, rng: rng.New(seed)}
}

type faultInjector struct {
	mu   sync.Mutex
	rate float64
	rng  *rng.Stream
}

type faultMode int

const (
	faultNone    faultMode = iota
	faultReject            // fail before the handler runs
	faultDropAck           // run the handler, then fail the response
)

func (f *faultInjector) roll() faultMode {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.rng.Bool(f.rate) {
		return faultNone
	}
	if f.rng.Bool(0.5) {
		return faultReject
	}
	return faultDropAck
}

func (s *Server) injector() *faultInjector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// discardResponse swallows a handler's response so a drop-ack fault can
// replace it with a 503 after the handler has already mutated the store.
type discardResponse struct{ h http.Header }

func (d *discardResponse) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponse) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponse) WriteHeader(int)             {}

// countingReader counts the bytes actually read from a request body, so
// payload accounting covers chunked uploads (ContentLength == -1) too.
type countingReader struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }

// instrument wraps an endpoint handler with the request/latency/payload
// metrics, bounds the request body, applies admission control, and
// applies fault injection to injectable (data-plane) endpoints. Metric
// handles are resolved once per endpoint at mux build time.
//
// Admission control is non-blocking: when the in-flight limit is
// reached the request is answered 429 + Retry-After immediately — load
// is shed onto the clients' retrying spools instead of parking
// goroutines (and their request bodies) inside the server.
func (s *Server) instrument(endpoint string, injectable bool, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.mReqs.With(endpoint)
	payload := s.mPayload.With(endpoint)
	lat := s.hLatency.With(endpoint)
	reject := s.mInjected.With("reject")
	dropAck := s.mInjected.With("drop-ack")
	throttled := s.mThrottled.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		// Advertise the binary batch encoding; clients capture this from
		// the registration response and switch /v1/batch to NPB1.
		if s.advertiseBinary.Load() {
			w.Header().Set("Accept-Post", wire.ContentTypeBinary+", application/json")
		}
		// The Traceparent header names the batch's representative trace
		// (its first item). It correlates 429s, injected faults, and
		// latency exemplars back to the originating upload.
		traceID, _ := trace.ParseTraceparent(r.Header.Get("Traceparent"))
		if injectable {
			sem := s.admit.Load().(chan struct{})
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			default:
				throttled.Inc()
				if traceID != "" {
					s.rec.AddPending(traceID, trace.Span{
						Name: "collector.throttle", Start: start, End: time.Now(),
						Status: trace.StatusThrottled,
						Attrs:  []trace.Attr{{K: "endpoint", V: endpoint}},
					})
					w.Header().Set("X-Natpeek-Trace", traceID)
				}
				w.Header().Set("Retry-After", "1")
				http.Error(w, "ingest saturated, retry later (trace "+traceID+")", http.StatusTooManyRequests)
				lat.Observe(time.Since(start).Seconds())
				return
			}
		}
		var cr *countingReader
		if r.Body != nil {
			cr = &countingReader{rc: http.MaxBytesReader(w, r.Body, maxUploadBytes)}
			r.Body = cr
		}
		mode := faultNone
		if injectable {
			if f := s.injector(); f != nil {
				mode = f.roll()
			}
		}
		switch mode {
		case faultReject:
			reject.Inc()
			s.faultSpan(traceID, "reject", start)
			http.Error(w, "injected failure (rejected)", http.StatusServiceUnavailable)
		case faultDropAck:
			dropAck.Inc()
			s.faultSpan(traceID, "drop-ack", start)
			h(&discardResponse{}, r)
			http.Error(w, "injected failure (ack dropped)", http.StatusServiceUnavailable)
		default:
			h(w, r)
		}
		if cr != nil {
			payload.Add(cr.n)
		}
		lat.ObserveExemplar(time.Since(start).Seconds(), traceID)
	}
}

// faultSpan records an injected-fault outcome against the batch's trace.
// The span is pending: the batch will be retried, and the retry's
// completion folds the fault history into the final trace.
func (s *Server) faultSpan(traceID, mode string, start time.Time) {
	if traceID == "" {
		return
	}
	s.rec.AddPending(traceID, trace.Span{
		Name: "collector.fault", Start: start, End: time.Now(),
		Status: trace.StatusError,
		Attrs:  []trace.Attr{{K: "mode", V: mode}},
	})
}

// ingest runs one decoded payload against the originating router's
// store shard, honoring its idempotency key. It reports whether the
// payload was applied (false means a deduplicated replay). Uploads for
// different routers take different shard locks and proceed in parallel.
func (s *Server) ingest(endpoint, key, router string, apply func(*dataset.Store)) bool {
	if key != "" {
		if gate := s.ingestGate.Load(); gate != nil {
			(*gate)(router)
		}
	}
	applied := s.store.Apply(router, key, apply)
	if !applied {
		s.mDedupe.With(endpoint).Inc()
	}
	if obs := s.ingestObs.Load(); obs != nil {
		(*obs)(endpoint, key, router, applied)
	}
	return applied
}

// SetIngestObserver registers fn to be called synchronously after every
// ingest decision (applied or deduplicated). Cluster nodes use it to
// maintain the per-router applied-key index that key manifests are
// served from; nil unregisters. The callback runs on the request path —
// it must be cheap and must not call back into the server.
func (s *Server) SetIngestObserver(fn func(endpoint, key, router string, applied bool)) {
	if fn == nil {
		s.ingestObs.Store(nil)
		return
	}
	s.ingestObs.Store(&fn)
}

// SetIngestGate registers fn to be called synchronously before every
// keyed apply, with the originating router ID. Cluster nodes use it to
// finish seeding a router's dedupe index before its first write lands
// (closing the window where a write applied elsewhere during an
// ownership change could re-apply here); nil unregisters. The callback
// runs on the request path and may block that request, but must not
// call back into the server.
func (s *Server) SetIngestGate(fn func(router string)) {
	if fn == nil {
		s.ingestGate.Store(nil)
		return
	}
	s.ingestGate.Store(&fn)
}

// jsonEndpoint serves one logical endpoint directly. Requests may carry
// an Idempotency-Key header; replays of an applied key are acknowledged
// without being re-applied.
func (s *Server) jsonEndpoint(endpoint string) http.HandlerFunc {
	af := s.appliers[endpoint]
	decodeErrs := s.mDecodeErrs.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		bb := s.readBody(w, r, endpoint)
		if bb == nil {
			return
		}
		router, apply, err := af(bb.b)
		// The applier's json.Unmarshal copied everything it decoded, so
		// the pooled buffer is free before the apply runs.
		putBody(bb)
		if err != nil {
			decodeErrs.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key := r.Header.Get("Idempotency-Key")
		applied := s.ingest(endpoint, key, router, apply)
		if key != "" && trace.Enabled() {
			status := trace.StatusOK
			if !applied {
				status = trace.StatusDuplicate
			}
			s.rec.Finish(&trace.Trace{
				ID: trace.IDFromKey(key), Router: router, Endpoint: endpoint,
				Spans: []trace.Span{{
					Name: "collector.apply", Start: start, End: time.Now(), Status: status,
				}},
			})
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// BatchItem is one spooled payload inside a /v1/batch request. The JSON
// shape matches spool.Item's wire encoding.
type BatchItem struct {
	Endpoint string          `json:"endpoint"`
	Key      string          `json:"key"`
	Body     json.RawMessage `json:"body"`
	// Trace carries the client's half of the payload's trace — the
	// gateway export, spool queue-wait, and delivery-attempt spans — so
	// the server can assemble one end-to-end trace per payload.
	Trace *trace.Wire `json:"trace,omitempty"`
}

// BatchResult summarizes one /v1/batch ingestion. Failed reports every
// item the server acknowledged but could not decode, so the client's
// spool can distinguish "applied" from "dropped as malformed" and
// dead-letter the latter instead of silently counting them delivered.
type BatchResult struct {
	Applied    int            `json:"applied"`
	Duplicates int            `json:"duplicates"`
	Rejected   int            `json:"rejected"`
	Failed     []BatchFailure `json:"failed,omitempty"`
}

// BatchFailure names one rejected batch item and why it was refused.
type BatchFailure struct {
	Endpoint string `json:"endpoint"`
	Key      string `json:"key"`
	Reason   string `json:"reason"`
}

// handleBatch ingests a batch of spooled uploads, JSON or binary (NPB1)
// by Content-Type. Items are applied independently: an undecodable item
// is counted, reported in BatchResult.Failed, and skipped without
// failing the batch (the client's payloads are machine-generated, so a
// decode error is a bug, not a retryable condition), and duplicate keys
// are acknowledged without re-applying.
//
// The JSON envelope is decoded with json.Unmarshal, not a Decoder:
// Unmarshal rejects trailing bytes after the array, where the old
// Decoder-based path silently ignored them and acknowledged a request
// whose tail was never applied.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	decodeStart := time.Now()
	bb := s.readBody(w, r, "/v1/batch")
	if bb == nil {
		return
	}
	defer putBody(bb)
	if ct := r.Header.Get("Content-Type"); ct == wire.ContentTypeBinary ||
		strings.HasPrefix(ct, wire.ContentTypeBinary+";") {
		s.handleBatchWire(w, bb.b, decodeStart)
		return
	}
	var items []BatchItem
	if err := json.Unmarshal(bb.b, &items); err != nil {
		s.mDecodeErrs.With("/v1/batch").Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var b batchIngest
	b.begin(s, decodeStart)
	for _, it := range items {
		// Pre-sample: decide keep/drop before paying for trace assembly.
		// Most items are healthy and most healthy traces are sampled away,
		// so on the hot path only the hashed sampling decision runs per
		// item (zero allocations when it says skip); the trace itself is
		// built eagerly when WantTraceKey says keep, or lazily the moment
		// an item goes wrong.
		t, lazyKey := b.pre(it.Key, it.Trace, it.Endpoint)
		s.batchItemJSON(&b, it, t, lazyKey)
	}
	b.finish(w)
}

// itemTrace assembles the server-side trace for one keyed batch item:
// the client's wire spans plus the shared envelope-decode span, sized in
// one allocation with room for the apply span to come. Keep is set —
// the pre-sampler already decided this trace survives, so Finish must
// not flip the sampling coin again.
func itemTrace(id string, w *trace.Wire, endpoint string, decodeStart, decodeEnd time.Time) *trace.Trace {
	t := &trace.Trace{ID: id, Endpoint: endpoint, Keep: true}
	var wire []trace.Span
	if w != nil {
		t.Router = w.Router
		wire = w.Spans
	}
	t.Spans = append(make([]trace.Span, 0, len(wire)+2), wire...)
	t.Spans = append(t.Spans, trace.Span{
		Name: "collector.decode", Start: decodeStart, End: decodeEnd,
	})
	return t
}

// lazyTrace builds the trace for an item the pre-sampler skipped once
// its outcome turns out interesting (rejected or duplicate) — the tail
// contract says those are never sampled away. No-op when the item is
// untraced or its trace already exists.
func lazyTrace(t *trace.Trace, key string, w *trace.Wire, endpoint string, decodeStart, decodeEnd time.Time, traces *[]*trace.Trace) *trace.Trace {
	if t != nil || key == "" {
		return t
	}
	t = itemTrace(trace.IDFromKey(key), w, endpoint, decodeStart, decodeEnd)
	*traces = append(*traces, t)
	return t
}

// addApply appends the per-item apply span (decode + dedupe + shard
// mutation) to a batch item's trace. Safe on a nil trace (untraced item).
func addApply(t *trace.Trace, start time.Time, status, reason string) {
	if t == nil {
		return
	}
	sp := trace.Span{Name: "collector.apply", Start: start, End: time.Now(), Status: status}
	if reason != "" {
		sp.Attrs = []trace.Attr{{K: "reason", V: reason}}
	}
	t.Spans = append(t.Spans, sp)
}

// Close shuts the server down gracefully: the heartbeat socket stops
// immediately, while in-flight uploads get closeTimeout to finish
// decoding before their connections are force-closed. Close is
// idempotent; the TCP listener is closed exactly once (by Shutdown).
func (s *Server) Close() error { return s.shutdown(true) }

// Abort force-closes the server without the graceful drain window:
// listeners and every in-flight connection drop immediately, exactly
// like a crashed process as seen from the network. The cluster chaos
// harness kills nodes with it; production shutdown wants Close.
func (s *Server) Abort() error { return s.shutdown(false) }

func (s *Server) shutdown(graceful bool) error {
	s.closeOnce.Do(func() {
		close(s.closed)
		err := s.hbRx.Close()
		if !graceful {
			if cerr := s.http.Close(); err == nil {
				err = cerr
			}
			s.closeErr = err
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
		defer cancel()
		if serr := s.http.Shutdown(ctx); serr != nil {
			// Drain window expired; drop whatever is still in flight.
			s.log.Warn("graceful shutdown incomplete, force-closing", "err", serr)
			cerr := s.http.Close()
			if err == nil {
				err = serr
			}
			_ = cerr
		}
		s.closeErr = err
	})
	return s.closeErr
}

type registerReq struct {
	RouterID string `json:"router_id"`
	Country  string `json:"country"`
}

type censusUpload struct {
	Count     dataset.DeviceCount      `json:"count"`
	Sightings []dataset.DeviceSighting `json:"sightings"`
}

// Stats summarizes what the server has collected.
type Stats struct {
	Routers    int `json:"routers"`
	Heartbeats int `json:"heartbeats"`
	Uptime     int `json:"uptime"`
	Capacity   int `json:"capacity"`
	Counts     int `json:"device_counts"`
	Sightings  int `json:"device_sightings"`
	WiFi       int `json:"wifi_scans"`
	Flows      int `json:"flows"`
	Throughput int `json:"throughput_samples"`
}

func (s *Server) stats() Stats {
	rc := s.store.RowCounts()
	st := Stats{
		Routers:    rc.Routers,
		Uptime:     rc.Uptime,
		Capacity:   rc.Capacity,
		Counts:     rc.Counts,
		Sightings:  rc.Sightings,
		WiFi:       rc.WiFi,
		Flows:      rc.Flows,
		Throughput: rc.Throughput,
	}
	hb := s.store.HeartbeatLog()
	for _, id := range hb.Routers() {
		st.Heartbeats += hb.Count(id)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.stats())
}

// Health is the /healthz response: liveness plus enough state to see at
// a glance whether the deployment is actually reporting.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	HeartbeatAddr string  `json:"heartbeat_addr"`
	HeartbeatBad  int     `json:"heartbeat_bad_datagrams"`
	HTTPAddr      string  `json:"http_addr"`
	Rows          Stats   `json:"rows"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.startedAt).Seconds(),
		HeartbeatAddr: s.UDPAddr(),
		HeartbeatBad:  s.hbRx.BadDatagrams(),
		HTTPAddr:      s.HTTPAddr(),
		Rows:          s.stats(),
	}
	select {
	case <-s.closed:
		h.Status = "closing"
	default:
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// Client reports a gateway's measurements to a Server over the network.
// It implements gateway.Sink.
//
// Measurement uploads are spooled, not posted inline: each Sink call
// marshals its payload, stamps it with an idempotency key, and enqueues
// it; the spool's drainer delivers batches to /v1/batch with retries
// under exponential backoff. The Sink methods therefore never block on
// the network and never lose rows to a transient failure — matching the
// firmware, which buffered to flash and uploaded opportunistically.
// Heartbeats stay fire-and-forget UDP by design (a lost heartbeat is
// itself the signal the Heartbeats data set measures).
type Client struct {
	routerID string
	baseURL  string
	hb       *heartbeat.Sender
	httpc    *http.Client
	sp       *spool.Spooler
	rec      *trace.Recorder

	mUploads  *telemetry.CounterVec
	mFailures *telemetry.CounterVec

	wireMode WireMode
	gzipOn   bool
	// binary records whether the server advertised NPB1 support
	// (Accept-Post on the registration response); WireAuto keys off it.
	binary atomic.Bool

	mu       sync.Mutex
	lastErr  error
	window   *trace.Span  // open export-window span, nil outside a window
	attempts []trace.Span // failed delivery attempts since the last ack
	encBuf   []byte       // drainer-owned binary encode buffer, reused per batch
	zipBuf   bytes.Buffer // drainer-owned gzip buffer, reused per batch
}

// maxAttemptSpans bounds the retained failed-attempt history per batch;
// a long outage keeps the first few and most recent failures.
const maxAttemptSpans = 16

// WireMode selects the encoding a Client uses for /v1/batch uploads.
type WireMode int

const (
	// WireAuto (the default) uses the binary encoding when the server
	// advertises it on the registration response, JSON otherwise — new
	// clients against old servers degrade to JSON automatically.
	WireAuto WireMode = iota
	// WireJSON always sends the JSON envelope.
	WireJSON
	// WireBinary always sends NPB1, regardless of advertisement.
	WireBinary
)

// Option tunes a Client.
type Option func(*clientOptions)

type clientOptions struct {
	transport http.RoundTripper
	spool     spool.Config
	wire      WireMode
	gzip      bool
}

// WithWireFormat pins the batch encoding instead of auto-negotiating.
func WithWireFormat(m WireMode) Option {
	return func(o *clientOptions) { o.wire = m }
}

// WithGzip compresses batch request bodies (either encoding). Worth it
// on constrained uplinks; the collector always accepts gzip.
func WithGzip(on bool) Option {
	return func(o *clientOptions) { o.gzip = on }
}

// WithTransport installs a custom HTTP transport (e.g. a
// spool.FaultTransport in reliability tests).
func WithTransport(rt http.RoundTripper) Option {
	return func(o *clientOptions) { o.transport = rt }
}

// WithSpool overrides the upload spool configuration (queue capacity,
// batch size, retry backoff, journal directory).
func WithSpool(cfg spool.Config) Option {
	return func(o *clientOptions) { o.spool = cfg }
}

// flushTimeout bounds how long Close waits for the spool to drain.
const flushTimeout = 1500 * time.Millisecond

// NewClient dials the server. udpAddr receives heartbeats, httpAddr the
// uploads.
func NewClient(routerID, country, udpAddr, httpAddr string, opts ...Option) (*Client, error) {
	var o clientOptions
	for _, opt := range opts {
		opt(&o)
	}
	hb, err := heartbeat.NewSender(routerID, udpAddr)
	if err != nil {
		return nil, err
	}
	reg := telemetry.Default
	c := &Client{
		routerID: routerID,
		baseURL:  "http://" + httpAddr,
		hb:       hb,
		httpc:    &http.Client{Timeout: 10 * time.Second, Transport: o.transport},
		rec:      trace.NewRecorder(trace.Config{Capacity: 256}),
		mUploads: reg.CounterVec("natpeek_client_uploads_total",
			"Upload payloads produced by this process's collector clients, per endpoint.", "endpoint"),
		mFailures: reg.CounterVec("natpeek_client_upload_failures_total",
			"Failed upload delivery attempts, per endpoint.", "endpoint"),
		wireMode: o.wire,
		gzipOn:   o.gzip,
	}
	o.spool.KeyPrefix = routerID
	sp, err := spool.New(o.spool, c.sendBatch)
	if err != nil {
		hb.Close()
		return nil, err
	}
	c.sp = sp
	// Registration is the one synchronous call: a client that cannot
	// reach the server at all should fail construction, not queue. A
	// 429, though, is the server's documented "retry later" signal —
	// admission throttling, or a cluster front fencing the router's
	// shard during a rebalance cutover — so it is retried with the
	// advertised backoff for a bounded window rather than failing a
	// healthy deployment.
	deadline := time.Now().Add(registerRetryWindow)
	for {
		err := c.post("/v1/register", registerReq{RouterID: routerID, Country: country})
		if err == nil {
			break
		}
		var se *statusError
		if errors.As(err, &se) && se.status == http.StatusTooManyRequests && time.Now().Before(deadline) {
			wait := se.retryAfter
			if wait <= 0 || wait > 5*time.Second {
				wait = time.Second
			}
			time.Sleep(wait)
			continue
		}
		sp.Close()
		hb.Close()
		return nil, err
	}
	return c, nil
}

// registerRetryWindow bounds how long NewClient keeps retrying a 429'd
// registration before giving up. Rebalance fencing windows last seconds;
// a throttle that persists for half a minute is a capacity problem the
// caller should see.
const registerRetryWindow = 30 * time.Second

// statusError carries a non-2xx upload response, preserving the status
// code and any Retry-After advice for callers that retry.
type statusError struct {
	path       string
	status     int
	retryAfter time.Duration
	msg        string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("collector: POST %s: status %d: %s", e.path, e.status, e.msg)
}

// Close drains the spool (bounded by flushTimeout), stops the drainer,
// and releases the client's sockets. With a journal configured,
// undrained items survive to the next run; without one they are lost
// after the flush window (counted in natpeek_spool_depth at exit).
func (c *Client) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), flushTimeout)
	defer cancel()
	_ = c.sp.Flush(ctx)
	err := c.sp.Close()
	if herr := c.hb.Close(); err == nil {
		err = herr
	}
	return err
}

// Flush blocks until every spooled upload has been acknowledged by the
// server, or ctx is done.
func (c *Client) Flush(ctx context.Context) error { return c.sp.Flush(ctx) }

// TraceRecorder exposes the client's local flight recorder: the
// gateway-side view of each payload's trace, finished when the server
// acknowledges the batch. Mount it on the gateway's debug listener.
func (c *Client) TraceRecorder() *trace.Recorder { return c.rec }

// SpoolHealth samples the client's upload queues (depth, oldest age)
// for ops surfaces.
func (c *Client) SpoolHealth() []spool.EndpointHealth { return c.sp.Health() }

// BeginExportWindow opens a gateway export window: every payload
// enqueued before EndExportWindow carries a span for the window, so
// traces show how long the gateway's measurement pass took before the
// payload entered the spool. The gateway discovers this method by
// structural assertion, keeping gateway.Sink unchanged. The span's time
// axis is wall-clock like every other span; at is the scheduler's
// notion of the window time (simulated in harness runs) and rides as an
// attribute.
func (c *Client) BeginExportWindow(kind string, at time.Time) {
	if !trace.Enabled() {
		return
	}
	c.mu.Lock()
	c.window = &trace.Span{Name: "gateway.export", Start: time.Now(),
		Attrs: []trace.Attr{{K: "kind", V: kind}, {K: "at", V: at.Format(time.RFC3339)}}}
	c.mu.Unlock()
}

// EndExportWindow closes the current export window.
func (c *Client) EndExportWindow(time.Time) {
	c.mu.Lock()
	c.window = nil
	c.mu.Unlock()
}

// SpoolDepth returns the number of uploads still queued for delivery.
func (c *Client) SpoolDepth() int { return c.sp.Depth() }

// Err returns the most recent upload or heartbeat error, or nil if no
// attempt has failed yet. Uploads stay non-blocking on the measurement
// path (gateway.Sink has no error returns, matching the firmware), and
// failed deliveries are retried by the spool — but the failure is not
// invisible: it lands here and in natpeek_client_upload_failures_total.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

func (c *Client) fail(endpoint string, err error) error {
	c.mFailures.With(endpoint).Inc()
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
	return err
}

// drainBody reads a response body to EOF (bounded) so the keep-alive
// connection can be reused, returning the first bytes for error context.
func drainBody(resp *http.Response) string {
	head, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	io.Copy(io.Discard, resp.Body)
	return strings.TrimSpace(string(head))
}

// post performs one synchronous POST (registration only). The error
// body, if any, is drained before close so the connection is reused.
func (c *Client) post(path string, v any) error {
	c.mUploads.With(path).Inc()
	body, err := json.Marshal(v)
	if err != nil {
		return c.fail(path, err)
	}
	resp, err := c.httpc.Post(c.baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return c.fail(path, fmt.Errorf("collector: POST %s: %w", path, err))
	}
	if strings.Contains(resp.Header.Get("Accept-Post"), wire.ContentTypeBinary) {
		c.binary.Store(true)
	}
	msg := drainBody(resp)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		se := &statusError{path: path, status: resp.StatusCode, msg: msg}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra >= 0 {
			se.retryAfter = time.Duration(ra) * time.Second
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Backpressure: counted, retried by the caller, but kept
			// out of Err() — same contract as a throttled batch.
			c.mFailures.With(path).Inc()
			return se
		}
		return c.fail(path, se)
	}
	return nil
}

// sendBatch is the spool's Sender: one POST of a whole batch to
// /v1/batch, JSON or NPB1 per the negotiated wire mode. Any transport
// error or non-2xx status leaves the batch queued; the server's
// idempotency keys make the redelivery safe. On success, per-item
// decode failures from the server's BatchResult come back as the
// spool.Result so malformed payloads dead-letter instead of counting
// as delivered.
func (c *Client) sendBatch(ctx context.Context, items []spool.Item) (spool.Result, error) {
	tracing := trace.Enabled()
	now := time.Now()
	payload := make([]BatchItem, len(items))
	var prior []trace.Span
	if tracing {
		c.mu.Lock()
		prior = append([]trace.Span(nil), c.attempts...)
		c.mu.Unlock()
	}
	for i, it := range items {
		payload[i] = BatchItem{Endpoint: it.Endpoint, Key: it.Key, Body: it.Body}
		if tracing && it.Key != "" {
			w := &trace.Wire{TraceID: trace.IDFromKey(it.Key), Router: c.routerID}
			w.Spans = append(w.Spans, it.Spans...)
			if !it.EnqueuedAt.IsZero() {
				w.Spans = append(w.Spans, trace.Span{Name: "spool.queued", Start: it.EnqueuedAt, End: now})
			}
			w.Spans = append(w.Spans, prior...)
			// Open span: the server sees the in-flight attempt; its own
			// spans bound when the request actually landed.
			w.Spans = append(w.Spans, trace.Span{Name: "spool.send", Start: now,
				Attrs: []trace.Attr{{K: "attempt", V: fmt.Sprint(len(prior) + 1)}}})
			payload[i].Trace = w
		}
	}
	body, contentType, err := c.encodeBatch(payload)
	if err != nil {
		return spool.Result{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return spool.Result{}, err
	}
	req.Header.Set("Content-Type", contentType)
	if c.gzipOn {
		req.Header.Set("Content-Encoding", "gzip")
	}
	if tracing {
		for i := range payload {
			if payload[i].Trace != nil {
				req.Header.Set("Traceparent", trace.FormatTraceparent(payload[i].Trace.TraceID))
				break
			}
		}
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		c.recordAttempt(now, trace.StatusError, err.Error())
		return spool.Result{}, c.failBatch(items, fmt.Errorf("collector: POST /v1/batch: %w", err))
	}
	if resp.StatusCode >= 300 {
		msg := drainBody(resp)
		resp.Body.Close()
		status := trace.StatusError
		if resp.StatusCode == http.StatusTooManyRequests {
			status = trace.StatusThrottled
		}
		c.recordAttempt(now, status, fmt.Sprintf("status %d", resp.StatusCode))
		berr := fmt.Errorf("collector: POST /v1/batch: status %d: %s", resp.StatusCode, msg)
		if resp.StatusCode == http.StatusTooManyRequests {
			// Backpressure, not failure: the server (or a rebalancing
			// front fencing a moving shard) asked us to come back
			// later, the batch stays queued, and the spool redelivers
			// after backoff. The throttle shows in the failure counter
			// and as a throttled span, but Err() keeps reporting only
			// deliveries that actually put data at risk.
			c.countBatchFailures(items)
			return spool.Result{}, berr
		}
		return spool.Result{}, c.failBatch(items, berr)
	}
	// Read the whole acknowledgment: the BatchResult names any items the
	// server refused as malformed.
	var br BatchResult
	raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxUploadBytes))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if rerr == nil {
		// A result that fails to parse is treated as all-applied: the
		// batch was acknowledged, and inventing failures would dead-letter
		// healthy rows.
		_ = json.Unmarshal(raw, &br)
	}
	var res spool.Result
	for _, f := range br.Failed {
		res.Malformed = append(res.Malformed, spool.ItemError{Key: f.Key, Reason: f.Reason})
	}
	if tracing {
		c.finishBatchTraces(payload, time.Now())
	}
	return res, nil
}

// encodeBatch renders one batch request body in the client's negotiated
// encoding, applying gzip when configured. The binary transcode is
// conservative: any body that does not decode cleanly into its
// endpoint's typed rows ships as raw JSON inside the NPB1 envelope, so
// the server's accept/reject outcome matches the JSON path exactly. The
// returned buffer is drainer-owned and valid until the next call.
func (c *Client) encodeBatch(payload []BatchItem) (body []byte, contentType string, err error) {
	useBinary := c.wireMode == WireBinary || (c.wireMode == WireAuto && c.binary.Load())
	if useBinary {
		wireItems := make([]wire.Item, len(payload))
		for i := range payload {
			wireItems[i] = wire.Item{
				Endpoint: payload[i].Endpoint,
				Key:      payload[i].Key,
				Payload:  wire.PayloadFromJSON(payload[i].Endpoint, payload[i].Body),
				Trace:    payload[i].Trace,
			}
		}
		c.encBuf = wire.AppendBatch(c.encBuf[:0], wireItems)
		body, contentType = c.encBuf, wire.ContentTypeBinary
	} else {
		body, err = json.Marshal(payload)
		if err != nil {
			return nil, "", err
		}
		contentType = "application/json"
	}
	if c.gzipOn {
		c.zipBuf.Reset()
		zw := gzip.NewWriter(&c.zipBuf)
		if _, err := zw.Write(body); err != nil {
			return nil, "", err
		}
		if err := zw.Close(); err != nil {
			return nil, "", err
		}
		body = c.zipBuf.Bytes()
	}
	return body, contentType, nil
}

// recordAttempt remembers one failed delivery attempt; the history rides
// on the next retry's wire spans so the server-assembled trace shows
// every backoff round, and on the client's local trace at ack time.
func (c *Client) recordAttempt(start time.Time, status, detail string) {
	if !trace.Enabled() {
		return
	}
	sp := trace.Span{Name: "spool.attempt", Start: start, End: time.Now(), Status: status,
		Attrs: []trace.Attr{{K: "detail", V: detail}}}
	c.mu.Lock()
	if len(c.attempts) < maxAttemptSpans {
		c.attempts = append(c.attempts, sp)
	} else {
		c.attempts[len(c.attempts)-1] = sp // keep the most recent failure
	}
	c.mu.Unlock()
}

// finishBatchTraces completes the client-side trace for every item the
// server just acknowledged and clears the attempt history.
func (c *Client) finishBatchTraces(payload []BatchItem, end time.Time) {
	c.mu.Lock()
	c.attempts = nil
	c.mu.Unlock()
	for i := range payload {
		w := payload[i].Trace
		if w == nil {
			continue
		}
		t := &trace.Trace{ID: w.TraceID, Router: c.routerID, Endpoint: payload[i].Endpoint}
		t.Spans = append(t.Spans, w.Spans...)
		for j := range t.Spans {
			if t.Spans[j].Name == "spool.send" && t.Spans[j].End.IsZero() {
				t.Spans[j].End = end
			}
		}
		c.rec.Finish(t)
	}
}

func (c *Client) failBatch(items []spool.Item, err error) error {
	c.countBatchFailures(items)
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
	return err
}

func (c *Client) countBatchFailures(items []spool.Item) {
	seen := make(map[string]bool, 2)
	for _, it := range items {
		if !seen[it.Endpoint] {
			seen[it.Endpoint] = true
			c.mFailures.With(it.Endpoint).Inc()
		}
	}
}

// enqueue spools one measurement payload for background delivery,
// stamping it with the open export-window span when one is active.
func (c *Client) enqueue(path string, v any) {
	c.mUploads.With(path).Inc()
	body, err := json.Marshal(v)
	if err != nil {
		_ = c.fail(path, err)
		return
	}
	var spans []trace.Span
	if trace.Enabled() {
		c.mu.Lock()
		if c.window != nil {
			sp := *c.window
			sp.End = time.Now()
			spans = []trace.Span{sp}
		}
		c.mu.Unlock()
	}
	c.sp.EnqueueSpans(path, body, spans)
}

// Heartbeat implements gateway.Sink. Errors are dropped by design —
// heartbeats are fire-and-forget — but counted.
func (c *Client) Heartbeat(_ string, at time.Time) {
	c.mUploads.With("heartbeat").Inc()
	if err := c.hb.Send(at); err != nil {
		_ = c.fail("heartbeat", err)
	}
}

// UptimeReport implements gateway.Sink.
func (c *Client) UptimeReport(r dataset.UptimeReport) { c.enqueue("/v1/uptime", r) }

// CapacityMeasure implements gateway.Sink.
func (c *Client) CapacityMeasure(m dataset.CapacityMeasure) { c.enqueue("/v1/capacity", m) }

// DeviceCensus implements gateway.Sink.
func (c *Client) DeviceCensus(count dataset.DeviceCount, sightings []dataset.DeviceSighting) {
	c.enqueue("/v1/devices", censusUpload{Count: count, Sightings: sightings})
}

// WiFiScan implements gateway.Sink.
func (c *Client) WiFiScan(scans []dataset.WiFiScan) { c.enqueue("/v1/wifi", scans) }

// TrafficFlows implements gateway.Sink.
func (c *Client) TrafficFlows(flows []dataset.FlowRecord) {
	if len(flows) > 0 {
		c.enqueue("/v1/traffic/flows", flows)
	}
}

// TrafficThroughput implements gateway.Sink.
func (c *Client) TrafficThroughput(samples []dataset.ThroughputSample) {
	if len(samples) > 0 {
		c.enqueue("/v1/traffic/throughput", samples)
	}
}
