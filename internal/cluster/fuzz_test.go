package cluster

import (
	"bytes"
	"testing"
)

// FuzzControlDecode holds the control plane to the same bar as the data
// plane's NPB1 codec: no input may panic the decoder, and anything that
// decodes must re-encode to a byte-identical buffer (so gossip relays
// and journaled replicate frames are stable across hops).
func FuzzControlDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(AppendMessage(nil, m))
	}
	f.Add([]byte(ctrlMagic))
	f.Add([]byte("NPC2\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		buf := AppendMessage(nil, m)
		m2, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if again := AppendMessage(nil, m2); !bytes.Equal(buf, again) {
			t.Fatalf("encoding is not a fixed point:\nfirst  %x\nsecond %x", buf, again)
		}
	})
}
