// Package cluster scales the collector horizontally: a lightweight
// front tier routes uploads by router-ID consistent hash to N collector
// nodes, replicates every acknowledged write to R-1 successors, and
// hands shard ownership off when a node joins, leaves, or dies. The
// paper's deployment was a few hundred routers behind one collector;
// the ROADMAP north star is millions, and past PR 5's sharded store and
// PR 7's binary ingest the single process itself is the ceiling.
//
// The design leans on two properties the platform already has:
//
//   - Every measurement upload carries a router-prefixed idempotency
//     key, and every store shard keeps a dedupe index. Routing, retry,
//     failover, and handoff therefore never have to be exactly-once
//     themselves — any at-least-once delivery converges to exactly-once
//     rows, which is what the chaos soak's zero-lost/zero-duplicated
//     oracle proves.
//   - Batches already have a compact wire form (NPB1). Replication and
//     handoff move raw NPB1 batch bytes, so a replica journals without
//     decoding rows and a failover replay is a plain /v1/batch POST.
package cluster

import (
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the number of ring points each node projects.
// Enough that removing one of three nodes moves only its own ~1/3 of
// routers (the classic consistent-hashing guarantee) with a spread a
// few percent off even; small enough that ring rebuilds are free.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over collector node IDs.
// Routers map to the first ring point clockwise from their hash; the
// owning node is that point's, and successors are the next distinct
// nodes clockwise (the replica set). Membership changes build a new
// Ring rather than mutating, so lookups are lock-free.
type Ring struct {
	nodes  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring from node IDs (order-insensitive; duplicates
// ignored) with vnodes points per node (DefaultVnodes if <= 0).
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{}
	for _, id := range ids {
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		r.nodes = append(r.nodes, id)
	}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	var buf []byte
	for ni, id := range r.nodes {
		for v := 0; v < vnodes; v++ {
			buf = append(buf[:0], id...)
			buf = append(buf, '#', byte(v), byte(v>>8))
			r.points = append(r.points, ringPoint{hash: hash64(buf), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node
	})
	return r
}

// Nodes returns the distinct node IDs on the ring, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len is the number of distinct nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the replica set for a router: its owner followed by
// up to n-1 distinct successor nodes clockwise. Returns nil on an
// empty ring; fewer than n when the ring is smaller than n.
func (r *Ring) Lookup(router string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64str(router)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// Owner returns the router's owning node ("" on an empty ring).
func (r *Ring) Owner(router string) string {
	set := r.Lookup(router, 1)
	if len(set) == 0 {
		return ""
	}
	return set[0]
}

// hash64 is FNV-1a (the repo-wide pick for non-adversarial placement
// hashing; dataset.Sharded shards routers the same way) run through a
// 64-bit finalizer. The mix matters here where it does not for shard
// selection: sequential IDs like "rt-0001".."rt-0031" leave FNV's
// high-order bits barely dispersed, and the ring positions by range
// over the full word rather than by modulus — without the finalizer,
// whole ID sequences land in one node's arc.
func hash64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return mix64(h.Sum64())
}

func hash64str(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer: full avalanche, so nearby
// inputs spread across the whole ring.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
