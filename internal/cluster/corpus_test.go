package cluster

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteSeedCorpus regenerates the checked-in fuzz seed corpus from
// the canonical encoder, so the seeds track format changes instead of
// rotting. Run with CLUSTER_WRITE_CORPUS=1 after changing the encoding.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("CLUSTER_WRITE_CORPUS") == "" {
		t.Skip("set CLUSTER_WRITE_CORPUS=1 to regenerate testdata/fuzz seeds")
	}
	seeds := map[string][]byte{
		"bad-magic":  []byte("JSON{}"),
		"magic-only": []byte(ctrlMagic),
	}
	for name, m := range sampleMessages() {
		b := AppendMessage(nil, m)
		seeds[name] = b
		seeds[name+"-truncated"] = b[:len(b)*2/3]
	}
	good := AppendMessage(nil, sampleMessages()["gossip"])
	seeds["trailing-garbage"] = append(append([]byte(nil), good...), 0xde, 0xad)

	dir := filepath.Join("testdata", "fuzz", "FuzzControlDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
