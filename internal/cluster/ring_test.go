package cluster

import (
	"fmt"
	"testing"
)

func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"node-a", "node-b", "node-c"}, DefaultVnodes)
	counts := map[string]int{}
	const routers = 9000
	for i := 0; i < routers; i++ {
		counts[r.Owner(fmt.Sprintf("rt-%05d", i))]++
	}
	for _, id := range r.Nodes() {
		share := float64(counts[id]) / routers
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of routers, want a roughly even split", id, 100*share)
		}
	}
}

func TestRingLookupDistinctReplicas(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 16)
	for i := 0; i < 500; i++ {
		router := fmt.Sprintf("rt-%d", i)
		set := r.Lookup(router, 3)
		if len(set) != 3 {
			t.Fatalf("Lookup(%q, 3) = %v, want 3 distinct nodes", router, set)
		}
		seen := map[string]bool{}
		for _, id := range set {
			if seen[id] {
				t.Fatalf("Lookup(%q, 3) repeats node %s: %v", router, id, set)
			}
			seen[id] = true
		}
		if set[0] != r.Owner(router) {
			t.Fatalf("Lookup(%q)[0] = %s, Owner = %s", router, set[0], r.Owner(router))
		}
	}
}

func TestRingLookupClamps(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 8)
	if got := r.Lookup("rt-1", 5); len(got) != 2 {
		t.Fatalf("Lookup with n beyond ring size = %v, want both nodes", got)
	}
	empty := NewRing(nil, 8)
	if got := empty.Lookup("rt-1", 2); got != nil {
		t.Fatalf("Lookup on empty ring = %v, want nil", got)
	}
	if empty.Owner("rt-1") != "" {
		t.Fatal("Owner on empty ring should be empty")
	}
}

// TestRingStabilityOnNodeLoss is the consistent-hashing contract the
// failover design rests on: removing one node must not move routers
// between the surviving nodes — only the dead node's routers reassign.
func TestRingStabilityOnNodeLoss(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"}, DefaultVnodes)
	less := NewRing([]string{"a", "c"}, DefaultVnodes)
	moved := 0
	for i := 0; i < 3000; i++ {
		router := fmt.Sprintf("rt-%d", i)
		before := full.Owner(router)
		after := less.Owner(router)
		if before != "b" && before != after {
			t.Fatalf("router %q moved %s -> %s though neither died", router, before, after)
		}
		if before == "b" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("expected node b to have owned some routers")
	}
}

func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	r1 := NewRing([]string{"a", "b", "c"}, 32)
	r2 := NewRing([]string{"c", "a", "b", "a"}, 32)
	for i := 0; i < 200; i++ {
		router := fmt.Sprintf("rt-%d", i)
		if r1.Owner(router) != r2.Owner(router) {
			t.Fatalf("owner of %q differs across construction order", router)
		}
	}
}
