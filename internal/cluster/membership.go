package cluster

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// GossipConfig tunes the anti-entropy exchange and the local failure
// detector. Tests use millisecond values; production defaults are
// conservative enough that a GC pause never declares anyone dead.
type GossipConfig struct {
	// Interval between gossip rounds (and beat bumps). Default 1s.
	Interval time.Duration
	// SuspectAfter is how long a member's beat may stall before it is
	// locally suspect (still on the ring, flagged in views). Default 3s.
	SuspectAfter time.Duration
	// DeadAfter is how long before a stalled member is locally dead:
	// off the ring, journals replayed. Default 10s.
	DeadAfter time.Duration
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter * 3
	}
	return c
}

// State is a member's locally judged liveness. It is derived, never
// gossiped: each process times members' beat advancement on its own
// clock (see Member).
type State uint8

// Liveness states.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "alive"
}

// MemberView is a membership snapshot entry: the gossiped identity plus
// this process's liveness judgement.
type MemberView struct {
	Member
	State State
	// LastAdvance is when this process last saw the member's beat move.
	LastAdvance time.Time
}

// membership is the gossiped member table plus the local failure
// detector. Shared by nodes and fronts.
type membership struct {
	cfg GossipConfig
	now func() time.Time

	mu    sync.Mutex
	self  Member
	peers map[string]*peerEntry
	// cur is the latest committed ring epoch; next is a pending
	// proposal strictly newer than cur. Both nil until the first
	// planned membership change — epoch-less clusters route purely by
	// gossiped membership, exactly as before epochs existed.
	cur  *RingEpoch
	next *RingEpoch
}

type peerEntry struct {
	m           Member
	lastAdvance time.Time
}

func newMembership(self Member, cfg GossipConfig) *membership {
	return &membership{
		cfg:   cfg.withDefaults(),
		now:   time.Now,
		self:  self,
		peers: make(map[string]*peerEntry),
	}
}

// bump advances the local beat and returns the updated self entry.
func (ms *membership) bump() Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.self.Beat++
	ms.self.EpochVersion = ms.epochVersionLocked()
	return ms.self
}

// epochVersionLocked is the highest epoch version this process has
// seen, pending included. Caller holds mu.
func (ms *membership) epochVersionLocked() uint64 {
	v := uint64(0)
	if ms.cur != nil {
		v = ms.cur.Version
	}
	if ms.next != nil && ms.next.Version > v {
		v = ms.next.Version
	}
	return v
}

// setJoining flips the self entry's Joining flag (cleared when a join
// epoch commits).
func (ms *membership) setJoining(j bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.self.Joining = j
}

// merge folds remote knowledge in. A higher incarnation replaces a
// member wholesale (rejoin with fresh addresses); within an
// incarnation only a strictly newer beat counts as advancement.
func (ms *membership) merge(members []Member) {
	now := ms.now()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, m := range members {
		if m.ID == "" || m.ID == ms.self.ID {
			continue
		}
		pe, ok := ms.peers[m.ID]
		switch {
		case !ok:
			ms.peers[m.ID] = &peerEntry{m: m, lastAdvance: now}
		case m.Incarnation > pe.m.Incarnation,
			m.Incarnation == pe.m.Incarnation && m.Beat > pe.m.Beat:
			pe.m = m
			pe.lastAdvance = now
		}
	}
}

// snapshot is the full member table for a gossip exchange: self first,
// then every peer (including locally-dead ones — their stalled beats
// carry the verdict to anyone who hasn't noticed yet).
func (ms *membership) snapshot() []Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.self.EpochVersion = ms.epochVersionLocked()
	out := make([]Member, 0, 1+len(ms.peers))
	out = append(out, ms.self)
	for _, pe := range ms.peers {
		out = append(out, pe.m)
	}
	return out
}

// mergeEpochs folds a gossiped epoch pair in. Committed epochs win by
// version; a pending proposal is adopted only if strictly newer than
// everything known (with a deterministic node-list tie-break so
// concurrent proposals at the same version converge cluster-wide
// instead of splitting on arrival order). A commit at or past the
// pending version retires the proposal.
func (ms *membership) mergeEpochs(cur, next *RingEpoch) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.mergeEpochLocked(cur)
	ms.mergeEpochLocked(next)
}

func (ms *membership) mergeEpochLocked(e *RingEpoch) {
	if e == nil || len(e.Nodes) == 0 {
		return
	}
	if e.Committed {
		if ms.cur == nil || e.Version > ms.cur.Version {
			ms.cur = e.clone()
		}
	} else if ms.cur == nil || e.Version > ms.cur.Version {
		switch {
		case ms.next == nil || e.Version > ms.next.Version:
			ms.next = e.clone()
		case e.Version == ms.next.Version && nodesKey(e.Nodes) < nodesKey(ms.next.Nodes):
			ms.next = e.clone()
		}
	}
	if ms.cur != nil && ms.next != nil && ms.next.Version <= ms.cur.Version {
		ms.next = nil
	}
}

// nodesKey is the tie-break ordering for same-version proposals.
func nodesKey(nodes []string) string { return strings.Join(nodes, "\x00") }

// proposeEpoch installs a pending epoch over the given ring composition
// at a version past everything seen, and returns it for gossiping.
func (ms *membership) proposeEpoch(nodes []string) *RingEpoch {
	ids := append([]string(nil), nodes...)
	sort.Strings(ids)
	ms.mu.Lock()
	defer ms.mu.Unlock()
	e := &RingEpoch{Version: ms.epochVersionLocked() + 1, Nodes: ids}
	ms.next = e
	return e.clone()
}

// commitEpoch promotes the pending proposal at version to the committed
// ring. It fails (ok=false) if the proposal was superseded while the
// coordinator was transferring — the coordinator must not clear fencing
// for an epoch the cluster no longer agrees on.
func (ms *membership) commitEpoch(version uint64) (*RingEpoch, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if ms.next == nil || ms.next.Version != version {
		return nil, false
	}
	ms.cur = &RingEpoch{Version: version, Committed: true, Nodes: ms.next.Nodes}
	ms.next = nil
	return ms.cur.clone(), true
}

// epochs returns clones of the committed and pending epochs (either may
// be nil).
func (ms *membership) epochs() (cur, next *RingEpoch) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.cur.clone(), ms.next.clone()
}

// view is the judged membership, sorted by ID, self included.
func (ms *membership) view() []MemberView {
	now := ms.now()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]MemberView, 0, 1+len(ms.peers))
	out = append(out, MemberView{Member: ms.self, State: StateAlive, LastAdvance: now})
	for _, pe := range ms.peers {
		mv := MemberView{Member: pe.m, State: StateAlive, LastAdvance: pe.lastAdvance}
		switch age := now.Sub(pe.lastAdvance); {
		case age > ms.cfg.DeadAfter:
			mv.State = StateDead
		case age > ms.cfg.SuspectAfter:
			mv.State = StateSuspect
		}
		out = append(out, mv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ring builds the routing hash ring. With a committed epoch, its node
// list IS the ring — filtered by local liveness so a dead epoch member
// still fails over via journals — and membership only supplies
// addresses. Without one (a cluster that has never resized), the ring
// derives from gossiped membership as before: RoleNode, not locally
// dead, and not mid-join. Suspects stay on the ring — pulling them on
// the first stalled beat would flap ownership under load spikes; only a
// dead verdict moves shards.
func (ms *membership) ring() *Ring {
	views := ms.view()
	cur, _ := ms.epochs()
	if cur != nil {
		alive := make(map[string]bool, len(views))
		for _, mv := range views {
			if mv.Role == RoleNode && mv.State != StateDead {
				alive[mv.ID] = true
			}
		}
		var ids []string
		for _, id := range cur.Nodes {
			if alive[id] {
				ids = append(ids, id)
			}
		}
		return NewRing(ids, DefaultVnodes)
	}
	var ids []string
	for _, mv := range views {
		if mv.Role == RoleNode && mv.State != StateDead && !mv.Joining {
			ids = append(ids, mv.ID)
		}
	}
	return NewRing(ids, DefaultVnodes)
}

// pendingRing is the ring a pending epoch proposes, unfiltered by
// liveness — fencing compares ownership deterministically, the same on
// every front.
func (ms *membership) pendingRing() *Ring {
	_, next := ms.epochs()
	if next == nil {
		return nil
	}
	return NewRing(next.Nodes, DefaultVnodes)
}

// planningNodes is the node set a coordinator starts a membership
// change from: the committed epoch's nodes if one exists, else the
// ring-eligible live members (joiners excluded).
func (ms *membership) planningNodes() []string {
	cur, _ := ms.epochs()
	if cur != nil {
		return append([]string(nil), cur.Nodes...)
	}
	var ids []string
	for _, mv := range ms.view() {
		if mv.Role == RoleNode && mv.State != StateDead && !mv.Joining {
			ids = append(ids, mv.ID)
		}
	}
	return ids
}

// lookup returns a member's current identity.
func (ms *membership) lookup(id string) (Member, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if id == ms.self.ID {
		return ms.self, true
	}
	pe, ok := ms.peers[id]
	if !ok {
		return Member{}, false
	}
	return pe.m, true
}
