package cluster

import (
	"sort"
	"sync"
	"time"
)

// GossipConfig tunes the anti-entropy exchange and the local failure
// detector. Tests use millisecond values; production defaults are
// conservative enough that a GC pause never declares anyone dead.
type GossipConfig struct {
	// Interval between gossip rounds (and beat bumps). Default 1s.
	Interval time.Duration
	// SuspectAfter is how long a member's beat may stall before it is
	// locally suspect (still on the ring, flagged in views). Default 3s.
	SuspectAfter time.Duration
	// DeadAfter is how long before a stalled member is locally dead:
	// off the ring, journals replayed. Default 10s.
	DeadAfter time.Duration
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter * 3
	}
	return c
}

// State is a member's locally judged liveness. It is derived, never
// gossiped: each process times members' beat advancement on its own
// clock (see Member).
type State uint8

// Liveness states.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "alive"
}

// MemberView is a membership snapshot entry: the gossiped identity plus
// this process's liveness judgement.
type MemberView struct {
	Member
	State State
	// LastAdvance is when this process last saw the member's beat move.
	LastAdvance time.Time
}

// membership is the gossiped member table plus the local failure
// detector. Shared by nodes and fronts.
type membership struct {
	cfg GossipConfig
	now func() time.Time

	mu    sync.Mutex
	self  Member
	peers map[string]*peerEntry
}

type peerEntry struct {
	m           Member
	lastAdvance time.Time
}

func newMembership(self Member, cfg GossipConfig) *membership {
	return &membership{
		cfg:   cfg.withDefaults(),
		now:   time.Now,
		self:  self,
		peers: make(map[string]*peerEntry),
	}
}

// bump advances the local beat and returns the updated self entry.
func (ms *membership) bump() Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.self.Beat++
	return ms.self
}

// merge folds remote knowledge in. A higher incarnation replaces a
// member wholesale (rejoin with fresh addresses); within an
// incarnation only a strictly newer beat counts as advancement.
func (ms *membership) merge(members []Member) {
	now := ms.now()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, m := range members {
		if m.ID == "" || m.ID == ms.self.ID {
			continue
		}
		pe, ok := ms.peers[m.ID]
		switch {
		case !ok:
			ms.peers[m.ID] = &peerEntry{m: m, lastAdvance: now}
		case m.Incarnation > pe.m.Incarnation,
			m.Incarnation == pe.m.Incarnation && m.Beat > pe.m.Beat:
			pe.m = m
			pe.lastAdvance = now
		}
	}
}

// snapshot is the full member table for a gossip exchange: self first,
// then every peer (including locally-dead ones — their stalled beats
// carry the verdict to anyone who hasn't noticed yet).
func (ms *membership) snapshot() []Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]Member, 0, 1+len(ms.peers))
	out = append(out, ms.self)
	for _, pe := range ms.peers {
		out = append(out, pe.m)
	}
	return out
}

// view is the judged membership, sorted by ID, self included.
func (ms *membership) view() []MemberView {
	now := ms.now()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]MemberView, 0, 1+len(ms.peers))
	out = append(out, MemberView{Member: ms.self, State: StateAlive, LastAdvance: now})
	for _, pe := range ms.peers {
		mv := MemberView{Member: pe.m, State: StateAlive, LastAdvance: pe.lastAdvance}
		switch age := now.Sub(pe.lastAdvance); {
		case age > ms.cfg.DeadAfter:
			mv.State = StateDead
		case age > ms.cfg.SuspectAfter:
			mv.State = StateSuspect
		}
		out = append(out, mv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ring builds the hash ring over ring-eligible members: RoleNode and
// not locally dead. Suspects stay on the ring — pulling them on the
// first stalled beat would flap ownership under load spikes; only a
// dead verdict moves shards.
func (ms *membership) ring() *Ring {
	var ids []string
	for _, mv := range ms.view() {
		if mv.Role == RoleNode && mv.State != StateDead {
			ids = append(ids, mv.ID)
		}
	}
	return NewRing(ids, DefaultVnodes)
}

// lookup returns a member's current identity.
func (ms *membership) lookup(id string) (Member, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if id == ms.self.ID {
		return ms.self, true
	}
	pe, ok := ms.peers[id]
	if !ok {
		return Member{}, false
	}
	return pe.m, true
}
