package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"natpeek/internal/collector"
	"natpeek/internal/dataset"
	"natpeek/internal/wire"
)

// fastGossip makes the failure detector converge in test time: a dead
// node is detected within ~half a second instead of ten.
var fastGossip = GossipConfig{
	Interval:     20 * time.Millisecond,
	SuspectAfter: 150 * time.Millisecond,
	DeadAfter:    400 * time.Millisecond,
}

type testCluster struct {
	t     *testing.T
	nodes []*Node
	front *Front
}

// startTestCluster brings up n nodes plus one front on loopback and
// waits for the membership to converge everywhere.
func startTestCluster(t *testing.T, n, replication int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	var peers []string
	for i := 0; i < n; i++ {
		nd, err := NewNode(NodeConfig{
			ID:      fmt.Sprintf("node-%d", i),
			UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
			Peers: append([]string(nil), peers...), Gossip: fastGossip,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		tc.nodes = append(tc.nodes, nd)
		peers = append(peers, nd.CtrlAddr())
	}
	front, err := NewFront(FrontConfig{
		ID:      "front-0",
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Peers: peers, Replication: replication, Gossip: fastGossip,
	})
	if err != nil {
		t.Fatalf("front: %v", err)
	}
	tc.front = front
	t.Cleanup(func() {
		front.Close()
		for _, nd := range tc.nodes {
			nd.Close()
		}
	})
	tc.waitAliveNodes(n)
	// The front seeds with every node's address, so it converges first;
	// the nodes learn each other transitively. Rebalance coordinators
	// plan ring changes from a NODE's view, so wait until every node
	// has the full picture too.
	waitFor(t, 10*time.Second, "every node sees the full membership", func() bool {
		for _, nd := range tc.nodes {
			alive := 0
			for _, mv := range nd.View() {
				if mv.Role == RoleNode && mv.State == StateAlive {
					alive++
				}
			}
			if alive != n {
				return false
			}
		}
		return true
	})
	return tc
}

// waitAliveNodes blocks until the front judges exactly want collector
// nodes alive (not suspect, not dead).
func (tc *testCluster) waitAliveNodes(want int) {
	tc.t.Helper()
	waitFor(tc.t, 10*time.Second, fmt.Sprintf("front sees %d alive nodes", want), func() bool {
		alive := 0
		for _, mv := range tc.front.View() {
			if mv.Role == RoleNode && mv.State == StateAlive {
				alive++
			}
		}
		return alive == want
	})
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// uptimeItem builds one typed keyed batch item for a router.
func uptimeItem(router string, seq int) wire.Item {
	return wire.Item{
		Endpoint: "/v1/uptime",
		Key:      fmt.Sprintf("%s:test:%d", router, seq),
		Payload: wire.Payload{Kind: wire.KindUptime, Uptime: dataset.UptimeReport{
			RouterID:   router,
			ReportedAt: time.Date(2013, 4, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Minute),
			Uptime:     time.Duration(seq+1) * time.Hour,
		}},
	}
}

// postBatch delivers one NPB1 batch, failing the test on any error.
func postBatch(t *testing.T, baseURL string, items []wire.Item) collector.BatchResult {
	t.Helper()
	res, status, err := tryPostBatch(baseURL, items)
	if err != nil {
		t.Fatalf("post batch: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("post batch: status %d", status)
	}
	return res
}

func tryPostBatch(baseURL string, items []wire.Item) (collector.BatchResult, int, error) {
	var res collector.BatchResult
	resp, err := http.Post(baseURL+"/v1/batch", wire.ContentTypeBinary,
		bytes.NewReader(wire.AppendBatch(nil, items)))
	if err != nil {
		return res, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return res, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return res, resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return res, resp.StatusCode, json.Unmarshal(body, &res)
}

func frontURL(tc *testCluster) string { return "http://" + tc.front.HTTPAddr() }

func totalRows(tc *testCluster) int {
	total := 0
	for _, nd := range tc.nodes {
		st := nd.Store()
		total += len(st.Uptime) + len(st.Capacity) + len(st.Counts) +
			len(st.Sightings) + len(st.WiFi) + len(st.Flows) + len(st.Throughput)
	}
	return total
}

func TestClusterRoutesAcrossNodes(t *testing.T) {
	tc := startTestCluster(t, 2, 2)
	var items []wire.Item
	const routers = 32
	for i := 0; i < routers; i++ {
		items = append(items, uptimeItem(fmt.Sprintf("rt-route-%03d", i), i))
	}
	res := postBatch(t, frontURL(tc), items)
	if res.Applied != routers || res.Duplicates != 0 || len(res.Failed) != 0 {
		t.Fatalf("batch result %+v, want %d applied", res, routers)
	}
	if got := totalRows(tc); got != routers {
		t.Fatalf("cluster holds %d rows, want %d", got, routers)
	}
	// With enough routers the split must actually engage both nodes.
	for _, nd := range tc.nodes {
		if rows := len(nd.Store().Uptime); rows == 0 {
			t.Errorf("node %s holds no rows; routing did not spread", nd.ID())
		}
	}
	// Replication 2 on a 2-node ring: every batch the front forwarded
	// has a frame in the other node's journal.
	frames := 0
	for _, nd := range tc.nodes {
		f, _, _ := nd.JournalStats()
		frames += f
	}
	if frames == 0 {
		t.Fatal("no replicate frames journaled at replication factor 2")
	}
}

func TestClusterRetryDeduplicates(t *testing.T) {
	tc := startTestCluster(t, 2, 2)
	items := []wire.Item{uptimeItem("rt-dup-1", 1), uptimeItem("rt-dup-2", 2)}
	first := postBatch(t, frontURL(tc), items)
	if first.Applied != 2 {
		t.Fatalf("first post applied %d, want 2", first.Applied)
	}
	second := postBatch(t, frontURL(tc), items)
	if second.Applied != 0 || second.Duplicates != 2 {
		t.Fatalf("replay result %+v, want 2 duplicates", second)
	}
	if got := totalRows(tc); got != 2 {
		t.Fatalf("cluster holds %d rows after replay, want 2", got)
	}
}

func TestClusterJSONBatchEquivalent(t *testing.T) {
	tc := startTestCluster(t, 2, 2)
	jitems := []collector.BatchItem{
		{Endpoint: "/v1/uptime", Key: "rt-json-1:n:1",
			Body: json.RawMessage(`{"router_id":"rt-json-1","reported_at":"2013-04-01T12:00:00Z","uptime_ns":3600000000000}`)},
		{Endpoint: "/v1/register", Key: "",
			Body: json.RawMessage(`{"router_id":"rt-json-1","country":"US"}`)},
	}
	body, err := json.Marshal(jitems)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(frontURL(tc)+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res collector.BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || res.Applied != 2 || len(res.Failed) != 0 {
		t.Fatalf("JSON batch via front: status %d result %+v", resp.StatusCode, res)
	}
	country := ""
	for _, nd := range tc.nodes {
		if cc, ok := nd.Store().RouterCountry["rt-json-1"]; ok {
			country = cc
		}
	}
	if country != "US" {
		t.Fatalf("register did not land: country %q", country)
	}
}

func TestClusterDirectEndpointProxy(t *testing.T) {
	tc := startTestCluster(t, 2, 2)
	body := `{"router_id":"rt-direct-1","reported_at":"2013-04-01T12:00:00Z","uptime_ns":60000000000}`
	req, _ := http.NewRequest(http.MethodPost, frontURL(tc)+"/v1/uptime", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "rt-direct-1:d:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("direct POST via front: status %d, want 204", resp.StatusCode)
	}
	if got := totalRows(tc); got != 1 {
		t.Fatalf("cluster holds %d rows, want 1", got)
	}
	// The direct write was replicated: its frame sits in one journal.
	frames := 0
	for _, nd := range tc.nodes {
		f, _, _ := nd.JournalStats()
		frames += f
	}
	if frames != 1 {
		t.Fatalf("journaled frames = %d, want 1", frames)
	}
}

// TestClusterFailoverReplaysJournal is the handoff contract in
// miniature: kill a node and every row it owned must reappear on its
// successor — exactly once — via the journaled NPB1 frames.
func TestClusterFailoverReplaysJournal(t *testing.T) {
	tc := startTestCluster(t, 2, 2)
	var items []wire.Item
	const routers = 24
	for i := 0; i < routers; i++ {
		items = append(items, uptimeItem(fmt.Sprintf("rt-fail-%03d", i), i))
	}
	postBatch(t, frontURL(tc), items)

	victim := tc.nodes[0]
	survivor := tc.nodes[1]
	lostRows := len(victim.Store().Uptime)
	if lostRows == 0 {
		t.Fatal("victim owned no rows; test cannot exercise failover")
	}
	if err := victim.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}

	waitFor(t, 10*time.Second, "journal replay to restore all rows", func() bool {
		return len(survivor.Store().Uptime) == routers
	})
	// Exactly once: a second scan tick must not re-apply anything.
	time.Sleep(5 * fastGossip.Interval)
	if got := len(survivor.Store().Uptime); got != routers {
		t.Fatalf("survivor holds %d rows after replay, want %d", got, routers)
	}
	// Retries of already-acked keys still dedupe after the handoff.
	res, status, err := tryPostBatch(frontURL(tc), items)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-failover replay: status %d err %v", status, err)
	}
	if res.Applied != 0 || res.Duplicates != routers {
		t.Fatalf("post-failover replay result %+v, want %d duplicates", res, routers)
	}
}

// TestClusterRejoinManifestSeedsDedupe pins the rejoin protocol: a
// node that comes back empty pulls key manifests before taking writes,
// so a retry of a write acked during its absence dedupes instead of
// double-applying.
func TestClusterRejoinManifestSeedsDedupe(t *testing.T) {
	nodeA, err := NewNode(NodeConfig{ID: "node-a",
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Gossip: fastGossip})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()

	// Apply keys for many routers on A (alone, it owns everything).
	var items []wire.Item
	const routers = 64
	for i := 0; i < routers; i++ {
		items = append(items, uptimeItem(fmt.Sprintf("rt-join-%03d", i), i))
	}
	res, status, err := tryPostBatch("http://"+nodeA.DataAddr(), items)
	if err != nil || status != http.StatusOK || res.Applied != routers {
		t.Fatalf("seed writes: status %d result %+v err %v", status, res, err)
	}

	// B joins; the two-node ring hands it roughly half the routers.
	nodeB, err := NewNode(NodeConfig{ID: "node-b",
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Peers: []string{nodeA.CtrlAddr()}, Gossip: fastGossip})
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	ring := NewRing([]string{"node-a", "node-b"}, DefaultVnodes)
	var bItems []wire.Item
	for i := 0; i < routers; i++ {
		router := fmt.Sprintf("rt-join-%03d", i)
		if ring.Owner(router) == "node-b" {
			bItems = append(bItems, uptimeItem(router, i))
		}
	}
	if len(bItems) == 0 {
		t.Fatal("node-b owns no seeded routers; widen the router set")
	}
	// Replaying those keys directly against B must dedupe via the
	// manifest-seeded index, not re-apply.
	res, status, err = tryPostBatch("http://"+nodeB.DataAddr(), bItems)
	if err != nil || status != http.StatusOK {
		t.Fatalf("replay at joiner: status %d err %v", status, err)
	}
	if res.Applied != 0 || res.Duplicates != len(bItems) {
		t.Fatalf("replay at joiner result %+v, want %d duplicates", res, len(bItems))
	}
	if rows := len(nodeB.Store().Uptime); rows != 0 {
		t.Fatalf("joiner applied %d rows from replayed keys, want 0", rows)
	}
}
