package cluster

import (
	"fmt"
	"testing"
	"time"

	"natpeek/internal/wire"
)

// benchItems builds an NPB1-typed batch: `items` uptime rows spread
// across `routers` routers, with empty idempotency keys so the same
// batch re-applies every iteration (dedupe applies only to keyed
// uploads) and the first-write gate never fires.
func benchItems(routers, items int) []wire.Item {
	out := make([]wire.Item, items)
	for i := range out {
		it := uptimeItem(fmt.Sprintf("bench-rt-%03d", i%routers), i)
		it.Key = ""
		out[i] = it
	}
	return out
}

// startBenchCluster is startTestCluster for benchmarks: n nodes plus a
// front on loopback, membership converged before the timer starts.
func startBenchCluster(b *testing.B, n, replication int) (*Front, []*Node) {
	b.Helper()
	var nodes []*Node
	var peers []string
	for i := 0; i < n; i++ {
		nd, err := NewNode(NodeConfig{
			ID:      fmt.Sprintf("bench-node-%d", i),
			UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
			Peers: append([]string(nil), peers...), Gossip: fastGossip,
		})
		if err != nil {
			b.Fatalf("node %d: %v", i, err)
		}
		nodes = append(nodes, nd)
		peers = append(peers, nd.CtrlAddr())
	}
	front, err := NewFront(FrontConfig{
		ID:      "bench-front",
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Peers: peers, Replication: replication, Gossip: fastGossip,
	})
	if err != nil {
		b.Fatalf("front: %v", err)
	}
	b.Cleanup(func() {
		front.Close()
		for _, nd := range nodes {
			nd.Close()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		alive := 0
		for _, mv := range front.View() {
			if mv.Role == RoleNode && mv.State == StateAlive {
				alive++
			}
		}
		if alive == n {
			return front, nodes
		}
		if time.Now().After(deadline) {
			b.Fatalf("membership did not converge to %d nodes", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkRingLookup measures the per-item placement cost the front
// pays while grouping a batch: one consistent-hash lookup returning the
// owner plus successor. This sits on the routing hot path for every
// row of every upload.
func BenchmarkRingLookup(b *testing.B) {
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	ring := NewRing(ids, DefaultVnodes)
	routers := make([]string, 1024)
	for i := range routers {
		routers[i] = fmt.Sprintf("rt-%05d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ring.Lookup(routers[i%len(routers)], 2); len(got) != 2 {
			b.Fatalf("lookup returned %d nodes", len(got))
		}
	}
}

// BenchmarkFrontRouteBatch prices the front tier against a bare
// collector node on the same 64-row batch over real loopback HTTP.
// path=direct POSTs NPB1 straight at a standalone node's data plane —
// the single-node baseline. path=front-r1 adds the front hop: decode,
// per-router placement, per-group NPB1 re-encode, and forwards to a
// 3-node cluster. path=front-r2 adds write replication: every group
// also lands a journal frame on its successor before the ack.
// BENCH_*.json derives cluster_front_route_overhead_r{1,2} from the
// trio; rows/s is the per-front ingest ceiling at each setting.
func BenchmarkFrontRouteBatch(b *testing.B) {
	const routers, items = 16, 64
	batch := benchItems(routers, items)

	run := func(b *testing.B, baseURL string) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, status, err := tryPostBatch(baseURL, batch)
			if err != nil || status != 200 {
				b.Fatalf("post: status %d err %v", status, err)
			}
			if res.Applied != items {
				b.Fatalf("applied %d of %d", res.Applied, items)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)*items/b.Elapsed().Seconds(), "rows/s")
	}

	b.Run("path=direct", func(b *testing.B) {
		nd, err := NewNode(NodeConfig{ID: "bench-solo",
			UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
			Gossip: fastGossip})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { nd.Close() })
		run(b, "http://"+nd.DataAddr())
	})
	for _, r := range []int{1, 2} {
		b.Run(fmt.Sprintf("path=front-r%d", r), func(b *testing.B) {
			front, _ := startBenchCluster(b, 3, r)
			run(b, "http://"+front.HTTPAddr())
		})
	}
}

// BenchmarkHandoffReplay measures failover handoff throughput: a
// journaled NPB1 frame replayed into the successor's own data plane —
// the work a node does per frame while inheriting a dead owner's rows.
// The frame is unkeyed so every iteration pays the full apply cost
// rather than the dedupe short-circuit a second replay of the same
// frame would hit.
func BenchmarkHandoffReplay(b *testing.B) {
	const routers, items = 16, 64
	nd, err := NewNode(NodeConfig{ID: "bench-heir",
		UDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", CtrlAddr: "127.0.0.1:0",
		Gossip: fastGossip})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { nd.Close() })
	e := &journalEntry{
		owner: "bench-dead-owner",
		succs: []string{nd.ID()},
		items: items,
		batch: wire.AppendBatch(nil, benchItems(routers, items)),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nd.replay(e)
		if err != nil {
			b.Fatal(err)
		}
		if res.Applied != items {
			b.Fatalf("replay applied %d of %d", res.Applied, items)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*items/b.Elapsed().Seconds(), "rows/s")
}
